// Segment algebra, FlatType stream mapping, and pack/unpack round trips.
#include <gtest/gtest.h>

#include <numeric>

#include "dtype/flatten.hpp"
#include "dtype/pack.hpp"
#include "dtype/segments.hpp"

namespace parcoll::dtype {
namespace {

TEST(Segments, TotalLength) {
  const std::vector<Segment> segs{{0, 4}, {10, 6}};
  EXPECT_EQ(total_length(segs), 10u);
  EXPECT_EQ(total_length({}), 0u);
}

TEST(Segments, CoalesceMergesAdjacentAndDropsEmpty) {
  std::vector<Segment> segs{{0, 4}, {4, 4}, {8, 0}, {10, 2}, {12, 1}};
  coalesce(segs);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], (Segment{0, 8}));
  EXPECT_EQ(segs[1], (Segment{10, 3}));
}

TEST(Segments, CoalesceKeepsTypeMapOrder) {
  std::vector<Segment> segs{{10, 2}, {0, 2}, {2, 2}};
  coalesce(segs);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], (Segment{10, 2}));
  EXPECT_EQ(segs[1], (Segment{0, 4}));
}

TEST(Segments, MonotoneChecks) {
  EXPECT_TRUE(is_monotone({{0, 4}, {4, 4}, {10, 1}}));
  EXPECT_FALSE(is_monotone({{0, 4}, {2, 4}}));  // overlap
  EXPECT_FALSE(is_monotone({{10, 2}, {0, 2}}));
  EXPECT_TRUE(is_monotone({}));
}

TEST(Segments, ClipWindow) {
  const std::vector<Segment> segs{{0, 10}, {20, 10}};
  const auto clipped = clip(segs, 5, 25);
  ASSERT_EQ(clipped.size(), 2u);
  EXPECT_EQ(clipped[0], (Segment{5, 5}));
  EXPECT_EQ(clipped[1], (Segment{20, 5}));
  EXPECT_TRUE(clip(segs, 10, 20).empty());
}

TEST(FlatType, PrefixAndLookup) {
  const Datatype type = Datatype::vec(3, 1, 3, Datatype::bytes(4));
  const FlatType flat = FlatType::from(type);
  EXPECT_EQ(flat.size, 12u);
  EXPECT_EQ(flat.prefix, (std::vector<std::uint64_t>{0, 4, 8}));
  EXPECT_EQ(flat.segment_at(0), 0u);
  EXPECT_EQ(flat.segment_at(3), 0u);
  EXPECT_EQ(flat.segment_at(4), 1u);
  EXPECT_EQ(flat.segment_at(11), 2u);
  EXPECT_THROW(static_cast<void>(flat.segment_at(12)), std::out_of_range);
}

TEST(FlatType, StreamRangeMidSegment) {
  const Datatype type = Datatype::vec(2, 1, 4, Datatype::bytes(8));
  const FlatType flat = FlatType::from(type);
  // Stream [4, 12): second half of segment 0, first half of segment 1.
  const auto segs = flat.stream_range(4, 12);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], (Segment{4, 4}));
  EXPECT_EQ(segs[1], (Segment{32, 4}));
}

TEST(FlatType, StreamRangeWholeAndEmpty) {
  const Datatype type = Datatype::bytes(10);
  const FlatType flat = FlatType::from(type);
  EXPECT_EQ(flat.stream_range(0, 10).size(), 1u);
  EXPECT_TRUE(flat.stream_range(3, 3).empty());
  EXPECT_THROW(flat.stream_range(0, 11), std::out_of_range);
}

TEST(Pack, ContiguousRoundTrip) {
  const Datatype type = Datatype::bytes(16);
  std::vector<std::byte> src(16);
  std::iota(reinterpret_cast<unsigned char*>(src.data()),
            reinterpret_cast<unsigned char*>(src.data()) + 16, 0);
  std::vector<std::byte> stream(16);
  pack(src.data(), type, 1, stream.data());
  EXPECT_EQ(stream, src);
  std::vector<std::byte> dst(16);
  unpack(stream.data(), type, 1, dst.data());
  EXPECT_EQ(dst, src);
}

TEST(Pack, StridedGathersHolesSkipped) {
  // Memory: 0 1 2 3 4 5 6 7 8 9 ; vector takes bytes {0,1, 4,5, 8,9}.
  const Datatype type = Datatype::vec(3, 1, 2, Datatype::bytes(2));
  std::vector<unsigned char> memory(10);
  std::iota(memory.begin(), memory.end(), 0);
  std::vector<unsigned char> stream(6);
  pack(memory.data(), type, 1, reinterpret_cast<std::byte*>(stream.data()));
  EXPECT_EQ(stream, (std::vector<unsigned char>{0, 1, 4, 5, 8, 9}));

  std::vector<unsigned char> back(10, 0xEE);
  unpack(reinterpret_cast<const std::byte*>(stream.data()), type, 1,
         back.data());
  EXPECT_EQ(back[0], 0);
  EXPECT_EQ(back[1], 1);
  EXPECT_EQ(back[2], 0xEE);  // hole untouched
  EXPECT_EQ(back[4], 4);
  EXPECT_EQ(back[9], 9);
}

TEST(Pack, MultipleCountsAdvanceByExtent) {
  const Datatype type = Datatype::resized(Datatype::bytes(2), 0, 4);
  std::vector<unsigned char> memory{10, 11, 0, 0, 20, 21, 0, 0, 30, 31, 0, 0};
  std::vector<unsigned char> stream(6);
  pack(memory.data(), type, 3, reinterpret_cast<std::byte*>(stream.data()));
  EXPECT_EQ(stream, (std::vector<unsigned char>{10, 11, 20, 21, 30, 31}));
}

TEST(Pack, SubarrayRoundTripPreservesInterior) {
  const std::int64_t sizes[] = {4, 4};
  const std::int64_t subsizes[] = {2, 2};
  const std::int64_t starts[] = {1, 1};
  const Datatype type =
      Datatype::subarray(sizes, subsizes, starts, Datatype::bytes(1));
  std::vector<unsigned char> memory(16);
  std::iota(memory.begin(), memory.end(), 0);
  std::vector<unsigned char> stream(4);
  pack(memory.data(), type, 1, reinterpret_cast<std::byte*>(stream.data()));
  EXPECT_EQ(stream, (std::vector<unsigned char>{5, 6, 9, 10}));
}

TEST(Pack, NegativeDisplacementRejected) {
  const Datatype type = Datatype::vec(2, 1, -3, Datatype::bytes(4));
  std::vector<std::byte> memory(32);
  std::vector<std::byte> stream(8);
  EXPECT_THROW(pack(memory.data(), type, 1, stream.data()),
               std::invalid_argument);
}

}  // namespace
}  // namespace parcoll::dtype
