// Figure 9 — "The Improved Scalability of MPI-Tile-IO".
//
// Best ParColl configuration vs the baseline for collective writes across
// process counts. The paper: the baseline flattens (2.7 GB/s at 1024)
// while ParColl keeps scaling (11.4 GB/s at 1024 — 416% of the baseline).
#include "bench/common.hpp"
#include "workloads/tileio.hpp"

int main(int argc, char** argv) {
  using namespace parcoll;
  using namespace parcoll::bench;
  BenchReport report("fig09_tileio_scalability", argc, argv);

  header("Figure 9", "MPI-Tile-IO collective-write scalability");
  std::printf("  %6s %14s %14s %8s\n", "nprocs", "Cray (MiB/s)",
              "ParColl (MiB/s)", "ratio");
  for (int nprocs : {64, 128, 256, 512, 1024}) {
    const auto config = workloads::TileIOConfig::paper(nprocs);
    const auto base =
        workloads::run_tileio(config, nprocs, baseline_spec(), true);
    // Best group count: one subgroup per tile row (= nprocs/8), the least
    // group size of 8 — the Fig. 7 sweet spot.
    const auto best = workloads::run_tileio(
        config, nprocs, parcoll_spec(nprocs / 8), true);
    std::printf("  %6d %14.1f %14.1f %7.2fx\n", nprocs, base.bandwidth_mib(),
                best.bandwidth_mib(), best.bandwidth() / base.bandwidth());
    report.add("cray", nprocs, base);
    report.add("parcoll-best", nprocs, best);
  }
  footnote("paper: 2.7 GB/s vs 11.4 GB/s at 1024 processes (4.16x)");
  return 0;
}
