# Empty compiler generated dependencies file for abl_lock_model.
# This may be replaced when dependencies are built.
