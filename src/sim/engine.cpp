#include "sim/engine.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace parcoll::sim {

ProcId Engine::spawn(std::function<void()> body, std::size_t stack_bytes) {
  if (stack_bytes == 0) {
    stack_bytes = default_stack_bytes_;
  } else if (stack_bytes < kMinStackBytes) {
    throw std::invalid_argument(
        "Engine::spawn: stack of " + std::to_string(stack_bytes) +
        " bytes is below the " + std::to_string(kMinStackBytes) +
        "-byte safety floor");
  }
  const ProcId pid = static_cast<ProcId>(procs_.size());
  Process proc;
  proc.fiber = std::make_unique<Fiber>(std::move(body), stack_bytes, &stacks_);
  proc.resume_sp = proc.fiber->saved_sp();
  proc.state = ProcState::Runnable;
  procs_.push_back(std::move(proc));
  ++live_;
  ++fibers_spawned_;
  if (live_ > peak_live_) peak_live_ = live_;
  schedule_resume(now_, pid);
  return pid;
}

void Engine::set_default_stack_bytes(std::size_t bytes) {
  if (bytes < kMinStackBytes) {
    throw std::invalid_argument(
        "Engine::set_default_stack_bytes: " + std::to_string(bytes) +
        " bytes is below the " + std::to_string(kMinStackBytes) +
        "-byte safety floor (deep collective call chains overflow smaller "
        "stacks)");
  }
  default_stack_bytes_ = bytes;
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.events_executed = events_executed_;
  s.callback_events = callback_events_;
  s.fibers_spawned = fibers_spawned_;
  s.peak_live_fibers = peak_live_;
  s.stacks_allocated = stacks_.allocated();
  s.stacks_reused = stacks_.reused();
  s.peak_queue_depth = queue_.counters().peak_depth;
  s.queue_overflow_pushes = queue_.counters().overflow_pushes;
  s.queue_retunes = queue_.counters().retunes;
  s.choice_points = choice_log_.size();
  s.default_stack_bytes = default_stack_bytes_;
  s.run_wall_seconds = run_wall_seconds_;
  return s;
}

void Engine::schedule_resume(double t, ProcId pid) {
  queue_.push(QueuedEvent{t, event_seq_++, pid, kNoCallback});
}

void Engine::post(double t, SmallCallback fn) {
  if (t < now_) {
    throw std::logic_error("Engine::post: time in the past");
  }
  const std::uint32_t slot = callbacks_.put(std::move(fn));
  queue_.push(QueuedEvent{t, event_seq_++, kNoProc, slot});
}

void Engine::resume_process(ProcId pid) {
  // Note: the fiber body may spawn new processes, reallocating procs_, so
  // never hold a Process reference across resume(). The Fiber object itself
  // is heap-allocated and stable.
  Fiber* fiber = nullptr;
  {
    Process& proc = procs_[static_cast<std::size_t>(pid)];
    if (proc.state == ProcState::Finished) {
      throw std::logic_error("Engine: resuming finished process");
    }
    proc.state = ProcState::Running;
    fiber = proc.fiber.get();
  }
  current_ = pid;
  try {
    fiber->resume();
  } catch (...) {
    // The body exited with an exception: mark the process dead so the
    // engine stays consistent, then let the error reach run()'s caller.
    current_ = kNoProc;
    Process& failed = procs_[static_cast<std::size_t>(pid)];
    failed.state = ProcState::Finished;
    failed.fiber.reset();
    --live_;
    throw;
  }
  current_ = kNoProc;
  Process& proc = procs_[static_cast<std::size_t>(pid)];
  proc.resume_sp = fiber->saved_sp();
  if (fiber->finished()) {
    const bool intact = fiber->stack_intact();
    proc.state = ProcState::Finished;
    proc.fiber.reset();  // returns the stack to the pool (if intact)
    --live_;
    if (!intact) {
      std::ostringstream message;
      message << "Engine: fiber stack overflow detected for pid " << pid
              << " (stack canary trampled; raise --stack-bytes above "
              << default_stack_bytes_ << ")";
      throw std::runtime_error(message.str());
    }
  }
  // Otherwise the process suspended itself (sleep/suspend set its state).
}

void Engine::set_schedule(SchedulePolicy policy) {
  if (!choice_log_.empty() || now_ != 0.0) {
    throw std::logic_error("Engine::set_schedule: engine already ran");
  }
  policy_ = std::move(policy);
}

QueuedEvent Engine::pop_next() {
  QueuedEvent first = queue_.pop();
  if (policy_.kind == TieBreak::Program) {
    // Historical fast path: (time, seq) queue order is the schedule.
    return first;
  }
  if (queue_.empty() || queue_.min_time() != first.time) {
    return first;  // a single candidate is not a choice point
  }
  // Gather every event tied at the minimal timestamp; queue order leaves
  // them sorted by sequence number, so alternative 0 is program order.
  std::vector<QueuedEvent> ties;
  ties.push_back(first);
  while (!queue_.empty() && queue_.min_time() == ties.front().time) {
    ties.push_back(queue_.pop());
  }
  const auto alternatives = static_cast<std::uint32_t>(ties.size());
  const std::uint32_t chosen =
      policy_.pick(choice_log_.size(), alternatives);
  choice_log_.push_back(ScheduleChoice{chosen, alternatives});
  if (policy_.record != nullptr) {
    policy_.record->push_back(choice_log_.back());
  }
  QueuedEvent next = ties[chosen];
  for (std::uint32_t i = 0; i < alternatives; ++i) {
    if (i != chosen) {
      // Re-pushed with its original seq, so its place in the total order
      // is unchanged.
      queue_.push(ties[i]);
    }
  }
  return next;
}

void Engine::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  while (!queue_.empty()) {
    const QueuedEvent event = pop_next();
    if (!queue_.empty()) {
      // Warm the next fiber's state while this event executes: the switch
      // path is memory-latency bound on cold fiber stacks at high rank
      // counts, and the upcoming restore touches exactly these lines.
      const QueuedEvent next = queue_.peek();
      if (next.pid >= 0) {
        const Process& np = procs_[static_cast<std::size_t>(next.pid)];
        __builtin_prefetch(np.fiber.get());
        if (np.resume_sp != nullptr) {
          __builtin_prefetch(np.resume_sp);
          __builtin_prefetch(static_cast<const char*>(np.resume_sp) + 64);
        }
      }
      // One more ahead, when the serving bucket can say cheaply: by the
      // time that fiber restores, the deeper prefetch has had two event
      // bodies of latency to land.
      if (const int second = queue_.second_pid_hint(); second >= 0) {
        const Process& sp = procs_[static_cast<std::size_t>(second)];
        __builtin_prefetch(sp.fiber.get());
        if (sp.resume_sp != nullptr) {
          __builtin_prefetch(sp.resume_sp);
        }
      }
    }
    now_ = event.time;
    ++events_executed_;
    if (event.pid == kNoProc) {
      SmallCallback fn = callbacks_.take(event.cb);
      ++callback_events_;
      fn();
    } else {
      resume_process(event.pid);
    }
  }
  run_wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (live_ > 0) {
    std::ostringstream message;
    message << "simulation deadlock at t=" << now_
            << "s; schedule=" << schedule_token() << "; blocked processes:";
    for (std::size_t pid = 0; pid < procs_.size(); ++pid) {
      if (procs_[pid].state == ProcState::Blocked) {
        message << " [pid " << pid << ": " << procs_[pid].block_reason << "]";
      }
    }
    throw DeadlockError(message.str());
  }
}

void Engine::sleep(double seconds) {
  if (seconds < 0) {
    throw std::logic_error("Engine::sleep: negative duration");
  }
  sleep_until(now_ + seconds);
}

void Engine::sleep_until(double t) {
  const ProcId pid = current_;
  if (pid == kNoProc) {
    throw std::logic_error("Engine::sleep_until outside a process");
  }
  if (t <= now_) {
    return;  // nothing to wait for; keep running
  }
  Process& proc = procs_[static_cast<std::size_t>(pid)];
  proc.state = ProcState::Runnable;  // will run again without external wake
  schedule_resume(t, pid);
  proc.fiber->yield();
}

void Engine::suspend(const char* why) {
  const ProcId pid = current_;
  if (pid == kNoProc) {
    throw std::logic_error("Engine::suspend outside a process");
  }
  Process& proc = procs_[static_cast<std::size_t>(pid)];
  proc.state = ProcState::Blocked;
  proc.block_reason = why;
  proc.fiber->yield();
}

void Engine::wake_at(double t, ProcId pid) {
  if (t < now_) {
    throw std::logic_error("Engine::wake_at: time in the past");
  }
  Process& proc = procs_.at(static_cast<std::size_t>(pid));
  if (proc.state != ProcState::Blocked) {
    throw std::logic_error("Engine::wake_at: process is not suspended");
  }
  proc.state = ProcState::Runnable;
  proc.block_reason = "";
  schedule_resume(t, pid);
}

void WaitQueue::wait(Engine& engine, const char* why) {
  waiters_.push_back(engine.current());
  engine.suspend(why);
}

bool WaitQueue::notify_one(Engine& engine) {
  if (head_ == waiters_.size()) return false;
  const ProcId pid = waiters_[head_++];
  if (head_ == waiters_.size()) {
    waiters_.clear();
    head_ = 0;
  } else if (head_ > 64 && head_ * 2 > waiters_.size()) {
    // Drop the drained prefix so a long-lived queue doesn't grow unbounded.
    waiters_.erase(waiters_.begin(),
                   waiters_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  engine.wake(pid);
  return true;
}

void WaitQueue::notify_all(Engine& engine) {
  while (notify_one(engine)) {
  }
}

}  // namespace parcoll::sim
