// Intermediate file views: translation correctness and the translated
// IoTarget used for pattern (c).
#include <gtest/gtest.h>

#include "core/intermediate_view.hpp"
#include "mpi/runtime.hpp"
#include "workloads/pattern.hpp"

namespace parcoll::core {
namespace {

IntermediateMap two_member_map() {
  // Member A at intermediate [0, 30): physical {0,10},{100,20}.
  // Member B at intermediate [30, 60): physical {50,15},{200,15}.
  std::vector<MemberSegments> members;
  members.push_back(MemberSegments{0, {{0, 10}, {100, 20}}});
  members.push_back(MemberSegments{30, {{50, 15}, {200, 15}}});
  return IntermediateMap(std::move(members));
}

TEST(IntermediateMap, TotalBytes) {
  EXPECT_EQ(two_member_map().total_bytes(), 60u);
}

TEST(IntermediateMap, TranslateWithinOneSegment) {
  const auto map = two_member_map();
  const auto physical = map.translate(fs::Extent{2, 5});
  ASSERT_EQ(physical.size(), 1u);
  EXPECT_EQ(physical[0], (fs::Extent{2, 5}));
}

TEST(IntermediateMap, TranslateAcrossSegmentsOfOneMember) {
  const auto map = two_member_map();
  const auto physical = map.translate(fs::Extent{5, 10});
  ASSERT_EQ(physical.size(), 2u);
  EXPECT_EQ(physical[0], (fs::Extent{5, 5}));    // tail of {0,10}
  EXPECT_EQ(physical[1], (fs::Extent{100, 5}));  // head of {100,20}
}

TEST(IntermediateMap, TranslateAcrossMembers) {
  const auto map = two_member_map();
  const auto physical = map.translate(fs::Extent{25, 15});
  // Intermediate [25,30) = member A's {100,20} tail: {115,5}.
  // Intermediate [30,40) = member B's {50,15} head: {50,10}.
  ASSERT_EQ(physical.size(), 2u);
  EXPECT_EQ(physical[0], (fs::Extent{115, 5}));
  EXPECT_EQ(physical[1], (fs::Extent{50, 10}));
}

TEST(IntermediateMap, TranslateWholeSpace) {
  const auto map = two_member_map();
  const auto physical = map.translate(fs::Extent{0, 60});
  ASSERT_EQ(physical.size(), 4u);
  EXPECT_EQ(physical[3], (fs::Extent{200, 15}));
}

TEST(IntermediateMap, EmptyExtentTranslatesToNothing) {
  EXPECT_TRUE(two_member_map().translate(fs::Extent{10, 0}).empty());
}

TEST(IntermediateMap, OutOfRangeThrows) {
  EXPECT_THROW(two_member_map().translate(fs::Extent{50, 20}),
               std::out_of_range);
}

TEST(IntermediateMap, NonContiguousMembersRejected) {
  std::vector<MemberSegments> members;
  members.push_back(MemberSegments{0, {{0, 10}}});
  members.push_back(MemberSegments{20, {{50, 10}}});  // gap at [10,20)
  EXPECT_THROW(IntermediateMap(std::move(members)), std::invalid_argument);
}

TEST(IntermediateMap, MembersWithNoDataAreSkipped) {
  std::vector<MemberSegments> members;
  members.push_back(MemberSegments{0, {{0, 10}}});
  members.push_back(MemberSegments{10, {}});  // empty member
  members.push_back(MemberSegments{10, {{40, 10}}});
  const IntermediateMap map(std::move(members));
  const auto physical = map.translate(fs::Extent{5, 10});
  ASSERT_EQ(physical.size(), 2u);
  EXPECT_EQ(physical[1], (fs::Extent{40, 5}));
}

TEST(IntermediateTarget, WriteLandsAtPhysicalOffsets) {
  mpi::World world(machine::MachineModel::jaguar(1));
  bool ok = false;
  world.run([&](mpi::Rank& self) {
    auto& fs = self.world().fs();
    const int fs_id = fs.open("imap.dat", 4, 64);
    std::vector<MemberSegments> members;
    members.push_back(MemberSegments{0, {{100, 8}, {300, 8}}});
    mpiio::DirectTarget direct(fs, fs_id);
    IntermediateTarget target(direct, IntermediateMap(std::move(members)));

    // Writing intermediate [0,16) must hit physical {100,8} and {300,8}.
    const std::vector<fs::Extent> inter{{0, 16}};
    const std::vector<fs::Extent> physical{{100, 8}, {300, 8}};
    std::vector<std::byte> data(16);
    workloads::fill_stream(data.data(), physical, 5);
    target.write(self, inter, data.data());

    auto* store = dynamic_cast<fs::MemoryStore*>(&fs.store());
    ok = store && workloads::verify_store(*store, fs_id, physical, 5);

    // And reading intermediate coordinates returns the same stream.
    std::vector<std::byte> back(16);
    target.read(self, inter, back.data());
    ok = ok && workloads::check_stream(back.data(), physical, 5);
  });
  EXPECT_TRUE(ok);
}

TEST(IntermediateTarget, ChargesIoTime) {
  mpi::World world(machine::MachineModel::jaguar(1));
  world.run([&](mpi::Rank& self) {
    auto& fs = self.world().fs();
    const int fs_id = fs.open("io-time.dat");
    std::vector<MemberSegments> members;
    members.push_back(MemberSegments{0, {{0, 1 << 20}}});
    mpiio::DirectTarget direct(fs, fs_id);
    IntermediateTarget target(direct, IntermediateMap(std::move(members)));
    const std::vector<fs::Extent> inter{{0, 1 << 20}};
    std::vector<std::byte> data(1 << 20);
    target.write(self, inter, data.data());
    EXPECT_GT(self.times().breakdown()[mpi::TimeCat::IO], 0.0);
  });
}

}  // namespace
}  // namespace parcoll::core
