// ucontext fibers: resume/yield mechanics and stack isolation.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sim/fiber.hpp"

namespace parcoll::sim {
namespace {

TEST(Fiber, RunsToCompletionWithoutYield) {
  int state = 0;
  Fiber fiber([&] { state = 42; });
  EXPECT_FALSE(fiber.finished());
  fiber.resume();
  EXPECT_TRUE(fiber.finished());
  EXPECT_EQ(state, 42);
}

TEST(Fiber, YieldReturnsControlAndResumesWhereItLeftOff) {
  std::vector<int> trace;
  Fiber fiber([&] {
    trace.push_back(1);
    Fiber::current()->yield();
    trace.push_back(3);
    Fiber::current()->yield();
    trace.push_back(5);
  });
  fiber.resume();
  trace.push_back(2);
  fiber.resume();
  trace.push_back(4);
  fiber.resume();
  EXPECT_TRUE(fiber.finished());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentIsNullOutsideAndSelfInside) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = nullptr;
  Fiber fiber([&] { seen = Fiber::current(); });
  fiber.resume();
  EXPECT_EQ(seen, &fiber);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, ResumingFinishedFiberThrows) {
  Fiber fiber([] {});
  fiber.resume();
  EXPECT_THROW(fiber.resume(), std::logic_error);
}

TEST(Fiber, LocalStateSurvivesYields) {
  long result = 0;
  Fiber fiber([&] {
    std::vector<int> locals(100);
    std::iota(locals.begin(), locals.end(), 1);
    Fiber::current()->yield();
    result = std::accumulate(locals.begin(), locals.end(), 0L);
  });
  fiber.resume();
  // Disturb the scheduler stack between resumes.
  std::vector<int> noise(4096, 7);
  fiber.resume();
  EXPECT_EQ(result, 5050);
  EXPECT_GT(noise.size(), 0u);
}

TEST(Fiber, ManyFibersInterleave) {
  constexpr int kFibers = 64;
  std::vector<std::unique_ptr<Fiber>> fibers;
  std::vector<int> counters(kFibers, 0);
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&counters, i] {
      for (int round = 0; round < 3; ++round) {
        ++counters[static_cast<std::size_t>(i)];
        Fiber::current()->yield();
      }
    }));
  }
  for (int round = 0; round < 3; ++round) {
    for (auto& fiber : fibers) {
      fiber->resume();
    }
  }
  for (auto& fiber : fibers) {
    fiber->resume();  // let bodies return
    EXPECT_TRUE(fiber->finished());
  }
  for (int count : counters) {
    EXPECT_EQ(count, 3);
  }
}

}  // namespace
}  // namespace parcoll::sim
