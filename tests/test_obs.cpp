// Observability layer: JSON model, span store, metrics registry, Chrome
// trace export, collective-wall attribution, run export, and the
// bit-identity guarantee (observers never perturb simulated time).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/run_export.hpp"
#include "obs/span.hpp"
#include "obs/wall_report.hpp"
#include "workloads/runner.hpp"
#include "workloads/tileio.hpp"

namespace parcoll {
namespace {

using obs::JsonValue;
using obs::SpanKind;
using obs::SpanStore;

// ---------------------------------------------------------------- JSON --

TEST(Json, BuildsAndDumpsCompact) {
  JsonValue doc = JsonValue::object();
  doc.set("name", "parcoll").set("count", 42).set("ratio", 0.5);
  doc.set("flag", true).set("missing", nullptr);
  JsonValue list = JsonValue::array();
  list.push(1);
  list.push(2);
  doc.set("list", std::move(list));
  EXPECT_EQ(doc.dump(),
            "{\"name\":\"parcoll\",\"count\":42,\"ratio\":0.5,"
            "\"flag\":true,\"missing\":null,\"list\":[1,2]}");
}

TEST(Json, RoundTripsThroughParse) {
  JsonValue doc = JsonValue::object();
  doc.set("int", -7).set("uint", 18446744073709551615ull);
  doc.set("pi", 3.141592653589793).set("text", "a \"quoted\"\nline");
  JsonValue inner = JsonValue::object();
  inner.set("deep", JsonValue::array());
  doc.set("inner", std::move(inner));

  const JsonValue parsed = JsonValue::parse(doc.dump());
  EXPECT_EQ(parsed.find("int")->as_int(), -7);
  EXPECT_EQ(parsed.find("uint")->as_uint(), 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(parsed.find("pi")->as_double(), 3.141592653589793);
  EXPECT_EQ(parsed.find("text")->as_string(), "a \"quoted\"\nline");
  ASSERT_NE(parsed.find("inner"), nullptr);
  EXPECT_TRUE(parsed.find("inner")->find("deep")->is_array());
  // The pretty form parses back to the same document too.
  EXPECT_EQ(JsonValue::parse(doc.dump(2)).dump(), parsed.dump());
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1, 2"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("true false"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
}

TEST(Json, ParseHandlesEscapesAndNumbers) {
  const JsonValue doc =
      JsonValue::parse("{\"s\": \"tab\\tnl\\nuni\\u00e9\", \"e\": 1.5e3}");
  EXPECT_EQ(doc.find("s")->as_string(), "tab\tnl\nuni\xc3\xa9");
  EXPECT_DOUBLE_EQ(doc.find("e")->as_double(), 1500.0);
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  JsonValue doc = JsonValue::object();
  doc.set("inf", std::numeric_limits<double>::infinity());
  EXPECT_EQ(doc.dump(), "{\"inf\":null}");
}

TEST(Json, SetOverwritesExistingKey) {
  JsonValue doc = JsonValue::object();
  doc.set("k", 1).set("k", 2);
  EXPECT_EQ(doc.find("k")->as_int(), 2);
  EXPECT_EQ(doc.members().size(), 1u);
}

// ------------------------------------------------------------- metrics --

TEST(Metrics, CountersGaugesHistograms) {
  obs::MetricsRegistry metrics;
  ++metrics.counter("calls");
  metrics.counter("calls") += 2;
  EXPECT_EQ(metrics.counters().at("calls"), 3u);

  metrics.gauge("depth") = 4.5;
  metrics.gauge_max("peak", 2.0);
  metrics.gauge_max("peak", 1.0);  // lower value must not win
  metrics.gauge_max("peak", 7.0);
  EXPECT_DOUBLE_EQ(metrics.gauges().at("depth"), 4.5);
  EXPECT_DOUBLE_EQ(metrics.gauges().at("peak"), 7.0);

  auto& hist = metrics.histogram("lat", {0.1, 1.0});
  hist.observe(0.05);
  hist.observe(0.5);
  hist.observe(10.0);
  EXPECT_EQ(hist.count, 3u);
  EXPECT_EQ(hist.counts[0], 1u);
  EXPECT_EQ(hist.counts[1], 1u);
  EXPECT_EQ(hist.counts[2], 1u);  // overflow bucket
  EXPECT_DOUBLE_EQ(hist.min, 0.05);
  EXPECT_DOUBLE_EQ(hist.max, 10.0);
  EXPECT_NEAR(hist.mean(), 10.55 / 3.0, 1e-12);
}

TEST(Metrics, IndexedNamesSortNumerically) {
  EXPECT_EQ(obs::MetricsRegistry::indexed("fs.ost.bytes", 3),
            "fs.ost.bytes[0003]");
  EXPECT_EQ(obs::MetricsRegistry::indexed("fs.ost.bytes", 41),
            "fs.ost.bytes[0041]");
  obs::MetricsRegistry metrics;
  metrics.counter("c", 10) = 1;
  metrics.counter("c", 2) = 1;
  // Ordered-map iteration yields numeric order thanks to the zero padding.
  EXPECT_EQ(metrics.counters().begin()->first, "c[0002]");
}

// --------------------------------------------------------------- spans --

TEST(SpanStore, NestsAndInheritsLabels) {
  SpanStore store;
  const auto call = store.open(0, 0, SpanKind::Call, "write_at_all", 1.0);
  const auto group =
      store.open(0, 0, SpanKind::Subgroup, "subgroup", 1.5, /*group=*/3);
  const auto cycle = store.open(0, 0, SpanKind::Stage, "cycle", 2.0,
                                /*group=*/-1, /*cycle=*/5);
  store.leaf(0, 0, mpi::TimeCat::Sync, 2.0, 2.5);
  store.close(0, cycle, 3.0);
  store.close(0, group, 3.5);
  store.close(0, call, 4.0);

  ASSERT_EQ(store.spans().size(), 4u);
  const obs::Span& call_span = store.at(call);
  EXPECT_EQ(call_span.parent, obs::kNoSpan);
  EXPECT_EQ(call_span.call, 0);  // first call ordinal on rank 0
  const obs::Span& group_span = store.at(group);
  EXPECT_EQ(group_span.parent, call);
  EXPECT_EQ(group_span.call, 0);
  EXPECT_EQ(group_span.group, 3);
  const obs::Span& cycle_span = store.at(cycle);
  EXPECT_EQ(cycle_span.group, 3);  // inherited from the subgroup span
  EXPECT_EQ(cycle_span.cycle, 5);
  const obs::Span& phase = store.spans().back();
  EXPECT_EQ(phase.kind, SpanKind::Phase);
  EXPECT_EQ(phase.parent, cycle);
  EXPECT_EQ(phase.call, 0);
  EXPECT_EQ(phase.group, 3);
  EXPECT_EQ(phase.cycle, 5);

  // Second call on the same rank gets the next ordinal.
  const auto call2 = store.open(0, 0, SpanKind::Call, "read_at_all", 5.0);
  EXPECT_EQ(store.at(call2).call, 1);
  store.close(0, call2, 6.0);
}

TEST(SpanStore, EnforcesLifoPerStream) {
  SpanStore store;
  const auto outer = store.open(0, 0, SpanKind::Call, "call", 0.0);
  const auto inner = store.open(0, 0, SpanKind::Stage, "stage", 0.5);
  EXPECT_THROW(store.close(0, outer, 1.0), std::logic_error);
  store.close(0, inner, 1.0);
  store.close(0, outer, 1.5);
}

TEST(SpanStore, StreamsNestIndependently) {
  // Two fibers sharing rank 0 (e.g. split-phase helper): each stream keeps
  // its own stack, so interleaved open/close across streams is legal.
  SpanStore store;
  const auto main_span = store.open(7, 0, SpanKind::Call, "call", 0.0);
  const auto helper_span = store.open(9, 0, SpanKind::Stage, "helper", 0.1);
  store.leaf(9, 0, mpi::TimeCat::IO, 0.1, 0.2);
  store.close(7, main_span, 0.3);  // closes fine: stream 7's own top
  store.close(9, helper_span, 0.4);
  const obs::Span& leaf = store.spans()[2];
  EXPECT_EQ(leaf.parent, helper_span);  // parented within its own stream
}

TEST(SpanStore, DropsEmptyLeaves) {
  SpanStore store;
  store.leaf(0, 0, mpi::TimeCat::Sync, 1.0, 1.0);
  store.leaf(0, 0, mpi::TimeCat::Sync, 2.0, 1.5);
  EXPECT_TRUE(store.empty());
}

// -------------------------------------------------------- chrome trace --

TEST(ChromeTrace, EmitsWellFormedTraceEvents) {
  SpanStore store;
  const auto call = store.open(0, 0, SpanKind::Call, "write_at_all", 0.0);
  store.leaf(0, 0, mpi::TimeCat::Sync, 0.25, 1.0);
  store.close(0, call, 1.0);
  store.leaf(1, 1, mpi::TimeCat::IO, 0.0, 0.5);

  std::ostringstream os;
  obs::write_chrome_trace(os, store);
  const JsonValue doc = JsonValue::parse(os.str());

  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 2 thread_name metadata rows (ranks 0, 1) + 3 X span rows.
  ASSERT_EQ(events->items().size(), 5u);
  int metadata = 0;
  int complete = 0;
  for (const JsonValue& event : events->items()) {
    const std::string& ph = event.find("ph")->as_string();
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(event.find("name")->as_string(), "thread_name");
    } else {
      ASSERT_EQ(ph, "X");
      ++complete;
      EXPECT_GE(event.find("dur")->as_double(), 0.0);
      EXPECT_NE(event.find("ts"), nullptr);
      EXPECT_NE(event.find("tid"), nullptr);
    }
  }
  EXPECT_EQ(metadata, 2);
  EXPECT_EQ(complete, 3);
  // Times are exported in microseconds.
  bool found_call = false;
  for (const JsonValue& event : events->items()) {
    if (event.find("ph")->as_string() == "X" &&
        event.find("name")->as_string() == "write_at_all") {
      found_call = true;
      EXPECT_DOUBLE_EQ(event.find("dur")->as_double(), 1e6);
    }
  }
  EXPECT_TRUE(found_call);
}

// --------------------------------------------------------- wall report --

TEST(WallReport, AttributesCycleSyncToStraggler) {
  // Two ranks, one call, one exchange cycle. Rank 1 arrives last (smallest
  // sync wait): the cycle's total sync must be attributed to rank 1.
  SpanStore store;
  for (int rank = 0; rank < 2; ++rank) {
    const std::uint64_t stream = static_cast<std::uint64_t>(rank);
    const auto call =
        store.open(stream, rank, SpanKind::Call, "write_at_all", 0.0);
    const auto cycle = store.open(stream, rank, SpanKind::Stage, "cycle", 0.0,
                                  /*group=*/-1, /*cycle=*/0);
    if (rank == 0) {
      store.leaf(stream, rank, mpi::TimeCat::Sync, 0.0, 0.9);  // waited 0.9
    } else {
      store.leaf(stream, rank, mpi::TimeCat::Sync, 0.8, 0.9);  // waited 0.1
    }
    store.close(stream, cycle, 1.0);
    store.close(stream, call, 1.0);
  }

  const obs::WallReport report = obs::build_wall_report(store);
  EXPECT_NEAR(report.total_sync, 1.0, 1e-12);
  EXPECT_NEAR(report.attributed_sync, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(report.coverage(), 1.0);
  ASSERT_EQ(report.cycles.size(), 1u);
  EXPECT_EQ(report.cycles[0].straggler, 1);
  EXPECT_NEAR(report.cycles[0].sync_seconds, 1.0, 1e-12);
  EXPECT_NEAR(report.cycles[0].straggler_lag, 0.8, 1e-12);
  ASSERT_EQ(report.ranks.size(), 2u);
  EXPECT_NEAR(report.ranks[1].caused, 1.0, 1e-12);
  EXPECT_NEAR(report.ranks[0].caused, 0.0, 1e-12);
  EXPECT_NEAR(report.ranks[0].suffered, 0.9, 1e-12);

  const std::string text = obs::format_wall_report(report);
  EXPECT_NE(text.find("collective wall report"), std::string::npos);
  const JsonValue json = obs::wall_report_json(report);
  EXPECT_NE(json.find("coverage"), nullptr);
}

TEST(WallReport, SyncOutsideCallsIsUnattributed) {
  SpanStore store;
  store.leaf(0, 0, mpi::TimeCat::Sync, 0.0, 1.0);  // no enclosing call
  const obs::WallReport report = obs::build_wall_report(store);
  EXPECT_NEAR(report.total_sync, 1.0, 1e-12);
  EXPECT_NEAR(report.attributed_sync, 0.0, 1e-12);
  EXPECT_NEAR(report.coverage(), 0.0, 1e-12);
}

TEST(WallReport, TileWorkloadCoverageMeetsBar) {
  // The acceptance criterion: on the Fig. 2 tile workload, >= 99 % of all
  // measured Sync time attributes to specific (cycle, rank) pairs.
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::Ext2ph;
  spec.trace = true;
  const int nprocs = 32;
  const auto config = workloads::TileIOConfig::paper(nprocs);
  const auto result =
      workloads::run_tileio(config, nprocs, spec, /*write=*/true);
  ASSERT_NE(result.trace, nullptr);

  const obs::WallReport report =
      obs::build_wall_report(result.trace->spans());
  EXPECT_GT(report.total_sync, 0.0);
  EXPECT_GE(report.coverage(), 0.99);
  // The report's sync total matches the profiler's Sync bucket.
  EXPECT_NEAR(report.total_sync, result.sum[mpi::TimeCat::Sync], 1e-9);
  // Attribution is exhaustive over ranks: caused sums to attributed.
  double caused = 0;
  for (const auto& rank : report.ranks) caused += rank.caused;
  EXPECT_NEAR(caused, report.attributed_sync, 1e-9);
}

TEST(WallReport, ParCollGroupsShowUpInShares) {
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::ParColl;
  spec.parcoll_groups = 4;
  spec.trace = true;
  const int nprocs = 32;
  const auto config = workloads::TileIOConfig::paper(nprocs);
  const auto result =
      workloads::run_tileio(config, nprocs, spec, /*write=*/true);
  ASSERT_NE(result.trace, nullptr);
  const obs::WallReport report =
      obs::build_wall_report(result.trace->spans());
  EXPECT_GE(report.coverage(), 0.99);
  // Partitioned run: at least one named subgroup carries sync share.
  EXPECT_FALSE(report.group_shares.empty());
}

// ---------------------------------------------------------- run export --

TEST(RunExport, MetricsMigrationAndDocument) {
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::Ext2ph;
  spec.metrics = true;
  spec.byte_true = true;
  const int nprocs = 16;
  const auto config = workloads::TileIOConfig::paper(nprocs);
  const auto result =
      workloads::run_tileio(config, nprocs, spec, /*write=*/true);
  ASSERT_NE(result.metrics, nullptr);
  EXPECT_TRUE(result.verified);

  // FileStats migrated into the registry without breaking summary().
  const auto& counters = result.metrics->counters();
  EXPECT_EQ(counters.at("stats.bytes_written"), result.stats.bytes_written);
  EXPECT_EQ(counters.at("stats.collective_writes"),
            result.stats.collective_writes);
  EXPECT_EQ(counters.at("fault.retries"), result.faults.retries);
  EXPECT_FALSE(result.stats.summary("tileio").empty());

  // Collective instrumentation recorded sync waits.
  EXPECT_GT(counters.at("mpi.coll.calls.barrier"), 0u);
  const auto& quants = result.metrics->quantiles();
  ASSERT_TRUE(quants.count("mpi.coll.sync_wait_s"));
  EXPECT_GT(quants.at("mpi.coll.sync_wait_s").count(), 0u);
  ASSERT_TRUE(quants.count("fs.rpc.latency_s"));
  EXPECT_GT(quants.at("fs.rpc.latency_s").count(), 0u);
  ASSERT_TRUE(quants.count("coll.cycle_s"));
  EXPECT_GT(quants.at("coll.cycle_s").count(), 0u);
  // Per-OST I/O series populated.
  bool has_ost_bytes = false;
  for (const auto& [name, value] : counters) {
    if (name.rfind("fs.ost.bytes[", 0) == 0 && value > 0) {
      has_ost_bytes = true;
    }
  }
  EXPECT_TRUE(has_ost_bytes);

  // The run document round-trips through the parser.
  JsonValue doc = obs::run_document("test", JsonValue::object());
  doc.set("result", workloads::run_result_json(result));
  const JsonValue parsed = JsonValue::parse(doc.dump(1));
  EXPECT_EQ(parsed.find("schema")->as_string(), obs::kRunSchema);
  EXPECT_EQ(parsed.find("version")->as_int(), obs::kRunSchemaVersion);
  const JsonValue* result_json = parsed.find("result");
  ASSERT_NE(result_json, nullptr);
  EXPECT_EQ(result_json->find("bytes")->as_uint(), result.bytes);
  ASSERT_NE(result_json->find("metrics"), nullptr);
  EXPECT_EQ(result_json->find("metrics")
                ->find("counters")
                ->find("stats.bytes_written")
                ->as_uint(),
            result.stats.bytes_written);
}

// --------------------------------------------------------- bit identity --

TEST(Observability, DisabledIsBitIdenticalToObserved) {
  // The same run with observability off, with tracing, and with tracing +
  // metrics must produce bit-identical simulated time, per-category
  // breakdowns, file statistics, and (byte-true) verified contents.
  const int nprocs = 16;
  const auto config = workloads::TileIOConfig::paper(nprocs);
  const auto run_with = [&](bool trace, bool metrics) {
    workloads::RunSpec spec;
    spec.impl = workloads::Impl::ParColl;
    spec.parcoll_groups = 4;
    spec.byte_true = true;
    spec.trace = trace;
    spec.metrics = metrics;
    return workloads::run_tileio(config, nprocs, spec, /*write=*/true);
  };
  const auto off = run_with(false, false);
  const auto traced = run_with(true, false);
  const auto full = run_with(true, true);

  for (const auto* observed : {&traced, &full}) {
    EXPECT_EQ(off.elapsed, observed->elapsed);  // exact, not approximate
    EXPECT_EQ(off.bytes, observed->bytes);
    for (std::size_t c = 0; c < mpi::kNumTimeCats; ++c) {
      EXPECT_EQ(off.sum.seconds[c], observed->sum.seconds[c]);
    }
    EXPECT_EQ(off.fs_rpcs, observed->fs_rpcs);
    EXPECT_EQ(off.stats.bytes_written, observed->stats.bytes_written);
    EXPECT_EQ(off.stats.exchange_cycles, observed->stats.exchange_cycles);
    EXPECT_TRUE(observed->verified);
  }
  EXPECT_TRUE(off.verified);
  EXPECT_EQ(off.trace, nullptr);
  EXPECT_EQ(off.metrics, nullptr);
  ASSERT_NE(traced.trace, nullptr);
  EXPECT_FALSE(traced.trace->spans().empty());
}

}  // namespace
}  // namespace parcoll
