// Pack/unpack between a datatype-described memory layout and a contiguous
// byte stream (the data-exchange representation of two-phase I/O).
#pragma once

#include <cstddef>
#include <cstdint>

#include "dtype/datatype.hpp"

namespace parcoll::dtype {

/// Gather `count` instances of `type` from `base` into `out` (which must
/// hold count * type.size() bytes). Displacements are relative to `base`;
/// negative displacements are not supported.
void pack(const void* base, const Datatype& type, std::uint64_t count,
          std::byte* out);

/// Scatter the stream `in` back into `count` instances of `type` at `base`.
void unpack(const std::byte* in, const Datatype& type, std::uint64_t count,
            void* base);

}  // namespace parcoll::dtype
