file(REMOVE_RECURSE
  "CMakeFiles/parcoll_sim.dir/__/tools/parcoll_sim.cpp.o"
  "CMakeFiles/parcoll_sim.dir/__/tools/parcoll_sim.cpp.o.d"
  "parcoll_sim"
  "parcoll_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcoll_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
