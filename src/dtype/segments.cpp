#include "dtype/segments.hpp"

#include <algorithm>

namespace parcoll::dtype {

std::uint64_t total_length(const std::vector<Segment>& segs) {
  std::uint64_t total = 0;
  for (const Segment& seg : segs) total += seg.length;
  return total;
}

void coalesce(std::vector<Segment>& segs) {
  std::vector<Segment> merged;
  merged.reserve(segs.size());
  for (const Segment& seg : segs) {
    if (seg.length == 0) continue;
    if (!merged.empty() && merged.back().end() == seg.disp) {
      merged.back().length += seg.length;
    } else {
      merged.push_back(seg);
    }
  }
  segs = std::move(merged);
}

bool is_monotone(const std::vector<Segment>& segs) {
  for (std::size_t i = 1; i < segs.size(); ++i) {
    if (segs[i].disp < segs[i - 1].end()) {
      return false;
    }
  }
  return true;
}

std::vector<Segment> clip(const std::vector<Segment>& segs, std::int64_t lo,
                          std::int64_t hi) {
  std::vector<Segment> result;
  for (const Segment& seg : segs) {
    const std::int64_t start = std::max(seg.disp, lo);
    const std::int64_t end = std::min(seg.end(), hi);
    if (start < end) {
      result.push_back(Segment{start, static_cast<std::uint64_t>(end - start)});
    }
  }
  return result;
}

}  // namespace parcoll::dtype
