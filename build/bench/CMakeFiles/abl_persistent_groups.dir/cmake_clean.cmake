file(REMOVE_RECURSE
  "CMakeFiles/abl_persistent_groups.dir/abl_persistent_groups.cpp.o"
  "CMakeFiles/abl_persistent_groups.dir/abl_persistent_groups.cpp.o.d"
  "abl_persistent_groups"
  "abl_persistent_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_persistent_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
