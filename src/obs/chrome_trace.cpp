#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "obs/json.hpp"
#include "obs/span.hpp"

namespace parcoll::obs {

void write_chrome_trace(std::ostream& os, const SpanStore& store) {
  JsonValue events = JsonValue::array();

  int nranks = 0;
  for (const Span& span : store.spans()) {
    nranks = std::max(nranks, span.rank + 1);
  }
  // Thread-name metadata rows so the timeline is labeled per rank.
  for (int r = 0; r < nranks; ++r) {
    JsonValue meta = JsonValue::object();
    meta.set("ph", "M")
        .set("name", "thread_name")
        .set("pid", 0)
        .set("tid", r);
    JsonValue args = JsonValue::object();
    args.set("name", "rank " + std::to_string(r));
    meta.set("args", std::move(args));
    events.push(std::move(meta));
  }

  for (const Span& span : store.spans()) {
    JsonValue ev = JsonValue::object();
    ev.set("ph", "X")
        .set("name", span.name)
        .set("cat", to_string(span.kind))
        .set("ts", span.begin * 1e6)
        .set("dur", (span.end - span.begin) * 1e6)
        .set("pid", 0)
        .set("tid", span.rank);
    JsonValue args = JsonValue::object();
    if (span.call >= 0) args.set("call", span.call);
    if (span.group >= 0) args.set("group", span.group);
    if (span.cycle >= 0) args.set("cycle", span.cycle);
    ev.set("args", std::move(args));
    events.push(std::move(ev));
  }

  JsonValue doc = JsonValue::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  os << doc.dump(1) << '\n';
}

}  // namespace parcoll::obs
