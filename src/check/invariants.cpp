#include "check/invariants.hpp"

#include <sstream>
#include <utility>

namespace parcoll::check {

void InvariantChecker::report(std::string invariant, std::string detail) {
  violations_.push_back(Violation{std::move(invariant), std::move(detail)});
}

void InvariantChecker::on_collective(int world_rank, std::uint64_t ctx,
                                     std::uint64_t seq, int kind,
                                     int comm_size,
                                     std::uint64_t members_hash) {
  ++checks_;
  Site& site = colls_[SiteKey{ctx, seq}];
  if (site.arrived == 0) {
    site.kind = kind;
    site.comm_size = comm_size;
    site.hash = members_hash;
  } else if (!site.flagged && (site.kind != kind ||
                               site.comm_size != comm_size ||
                               site.hash != members_hash)) {
    site.flagged = true;
    std::ostringstream detail;
    detail << "rank " << world_rank << " reached ordinal " << seq
           << " on comm ctx " << ctx << " with kind " << kind << "/size "
           << comm_size << ", but an earlier member reached kind "
           << site.kind << "/size " << site.comm_size
           << (site.hash != members_hash ? " (different member sets)" : "");
    report("collective-match", detail.str());
  }
  ++site.arrived;
  if (!site.flagged && site.arrived > site.comm_size) {
    site.flagged = true;
    std::ostringstream detail;
    detail << "comm ctx " << ctx << " ordinal " << seq << ": "
           << site.arrived << " arrivals for a " << site.comm_size
           << "-member communicator (rank " << world_rank
           << " arrived twice?)";
    report("collective-match", detail.str());
  }
}

void InvariantChecker::on_agreement_round(
    const char* invariant, int world_rank, std::uint64_t ctx, int comm_size,
    std::uint64_t hash, std::map<SiteKey, Site>& sites,
    std::map<std::pair<std::uint64_t, int>, std::uint64_t>& rank_rounds) {
  ++checks_;
  const std::uint64_t round = rank_rounds[{ctx, world_rank}]++;
  Site& site = sites[SiteKey{ctx, round}];
  if (site.arrived == 0) {
    site.comm_size = comm_size;
    site.hash = hash;
  } else if (!site.flagged &&
             (site.hash != hash || site.comm_size != comm_size)) {
    site.flagged = true;
    std::ostringstream detail;
    detail << "rank " << world_rank << " disagrees with its peers on comm ctx "
           << ctx << " round " << round
           << " (split-brain: differing plan/roster hashes)";
    report(invariant, detail.str());
  }
  ++site.arrived;
}

void InvariantChecker::on_partition(int world_rank, std::uint64_t ctx,
                                    int comm_size, std::uint64_t plan_hash) {
  on_agreement_round("partition-agreement", world_rank, ctx, comm_size,
                     plan_hash, partitions_, partition_rounds_);
}

void InvariantChecker::on_reelection(int world_rank, std::uint64_t ctx,
                                     int comm_size,
                                     std::uint64_t roster_hash) {
  on_agreement_round("reelection-agreement", world_rank, ctx, comm_size,
                     roster_hash, reelections_, reelection_rounds_);
}

void InvariantChecker::on_error_agreement(int world_rank, std::uint64_t ctx,
                                          int comm_size,
                                          std::uint64_t outcome_word) {
  on_agreement_round("error-agreement", world_rank, ctx, comm_size,
                     outcome_word, error_agreements_, error_rounds_);
}

void InvariantChecker::finalize() {
  const auto flag_incomplete = [&](const char* what,
                                   std::map<SiteKey, Site>& sites) {
    for (auto& [key, site] : sites) {
      ++checks_;
      if (site.flagged || site.arrived == site.comm_size) {
        continue;
      }
      site.flagged = true;
      std::ostringstream detail;
      detail << what << " on comm ctx " << key.first << " ordinal "
             << key.second << ": only " << site.arrived << " of "
             << site.comm_size << " members participated";
      report("collective-complete", detail.str());
    }
  };
  flag_incomplete("collective", colls_);
  flag_incomplete("partition round", partitions_);
  flag_incomplete("re-election round", reelections_);
  flag_incomplete("error-agreement round", error_agreements_);
}

}  // namespace parcoll::check
