file(REMOVE_RECURSE
  "CMakeFiles/group_size_explorer.dir/group_size_explorer.cpp.o"
  "CMakeFiles/group_size_explorer.dir/group_size_explorer.cpp.o.d"
  "group_size_explorer"
  "group_size_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_size_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
