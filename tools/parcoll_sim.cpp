// parcoll_sim — command-line driver for the simulator.
//
// Runs one workload under one I/O implementation on the simulated machine
// and reports bandwidth, the time breakdown, and the file summary.
//
// Examples:
//   parcoll_sim --workload tileio --nprocs 512 --impl parcoll --groups 64
//   parcoll_sim --workload ior --nprocs 128 --impl ext2ph
//   parcoll_sim --workload btio --nprocs 256 --impl parcoll --groups auto 
//               --cb-nodes 16
//   parcoll_sim --workload flash --nprocs 256 --impl sieving
//   parcoll_sim --workload tileio --nprocs 32 --impl parcoll --groups 4
//               --trace trace.csv --gantt
//   parcoll_sim --workload ior --nprocs 64 --impl parcoll
//               --fault "seed=7;ost-outage=3:0.05:0.4;rpc-drop=0.02"
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>

#include "core/file_area.hpp"
#include "fault/fault.hpp"
#include "mpi/trace.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/folded.hpp"
#include "obs/run_export.hpp"
#include "obs/timeseries.hpp"
#include "obs/wall_report.hpp"
#include "workloads/btio.hpp"
#include "workloads/flashio.hpp"
#include "workloads/ior.hpp"
#include "workloads/tileio.hpp"

namespace {

using namespace parcoll;
using workloads::Impl;
using workloads::RunResult;
using workloads::RunSpec;

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --workload tileio|ior|btio|flash|flash-plot   (default tileio)\n"
      "  --nprocs N              simulated MPI processes (default 64)\n"
      "  --impl ext2ph|parcoll|independent|posix|sieving (default ext2ph)\n"
      "  --groups N|auto         ParColl subgroup count (default auto)\n"
      "  --min-group-size N      least subgroup size (default 8)\n"
      "  --no-view-switch        disable the intermediate file view\n"
      "  --no-persistent-groups  re-partition on every collective call\n"
      "  --cb-nodes N            aggregator nodes (default: all processes)\n"
      "  --cb-buffer BYTES       collective buffer size (default 4 MiB)\n"
      "  --cores-per-node N      processes per physical node (default 2)\n"
      "  --mapping block|cyclic  rank-to-node placement (default block)\n"
      "  --intranode MODE        two-level intra-node aggregation:\n"
      "                          on|off|auto (default auto)\n"
      "  --no-intranode          shorthand for --intranode off\n"
      "  --leader lowest|spread  intra-node leader selection (default lowest)\n"
      "  --bb                    enable the node-local burst-buffer staging\n"
      "                          tier (writes return once staged; drains\n"
      "                          write behind to Lustre)\n"
      "  --bb-capacity BYTES     staging capacity per node (default 256 MiB)\n"
      "  --bb-drain POLICY       write-behind policy: immediate|watermark|\n"
      "                          deadline|arbitrate (default immediate)\n"
      "  --integrity LEVEL       end-to-end checksum pipeline: off|detect|\n"
      "                          repair (default off; repair heals detected\n"
      "                          corruption from the retained replica)\n"
      "  --integrity-block BYTES checksum block granularity (default 64 KiB)\n"
      "  --no-scrub              disable the background scrubber that walks\n"
      "                          the store after latent media corruption\n"
      "  --read                  measure collective read instead of write\n"
      "  --steps N               BT-IO time steps (default 3)\n"
      "  --nvars N               Flash variables (default 24)\n"
      "  --osts N                storage targets (default 72)\n"
      "  --seed N                jitter seed (default 42)\n"
      "  --stack-bytes N         per-rank fiber stack size in bytes\n"
      "                          (default 64 KiB; 256 KiB under sanitizers;\n"
      "                          minimum 16 KiB)\n"
      "  --engine-stats          print engine self-instrumentation (events/s,\n"
      "                          queue depth, stack pool, peak RSS)\n"
      "  --schedule-seed N       explore a seeded-random event tie-break\n"
      "                          schedule instead of program order\n"
      "  --schedule-replay TOK   replay a schedule token (p, r<seed>, or\n"
      "                          d<c0>.<c1>..., as printed by failures and\n"
      "                          parcoll_check violations)\n"
      "  --byte-true             store and audit real file bytes (slower;\n"
      "                          enables the content digest in --json)\n"
      "  --trace FILE.csv        write a per-rank interval trace\n"
      "  --trace-json FILE.json  write a Chrome trace-event file (load in\n"
      "                          Perfetto / chrome://tracing; implies tracing)\n"
      "  --gantt                 print a text timeline (implies tracing)\n"
      "  --wall-report           print the collective-wall report: per-cycle\n"
      "                          sync attributed to the straggler rank, the\n"
      "                          busiest OSTs, and the latency quantiles\n"
      "                          (implies tracing and metrics)\n"
      "  --json FILE.json        write the parcoll-run document (result,\n"
      "                          metrics, wall report; implies tracing and\n"
      "                          metrics)\n"
      "  --sample-interval S     sample time-series telemetry every S virtual\n"
      "                          seconds (per-OST queue depth, bb occupancy,\n"
      "                          per-rank time, events/s); 0 = off (default)\n"
      "  --timeline FILE.json    write the sampled timeline document (implies\n"
      "                          --sample-interval 1e-3 if unset)\n"
      "  --top                   print the per-interval parcoll_top report\n"
      "                          (implies --sample-interval 1e-3 if unset)\n"
      "  --folded FILE           write collapsed stacks for flamegraph.pl /\n"
      "                          inferno (implies tracing)\n"
      "  --job NAME              tag every rank with tenant NAME; metrics\n"
      "                          gain {job=NAME} slices and folded stacks a\n"
      "                          job: root frame\n"
      "  --fault SPEC            deterministic fault plan, e.g.\n"
      "                          \"seed=7;ost-outage=3:0.05:0.4;rpc-drop=0.02;"
      "rank-stall=5:0:0.2\"\n"
      "                          (keys: seed, ost-outage=OST:BEGIN:END,\n"
      "                           ost-degrade=OST:BEGIN:END:FACTOR,\n"
      "                           rank-stall=RANK:AT:DURATION, rpc-drop=P,\n"
      "                           rpc-delay=PROB:SECONDS, rpc-corrupt=P,\n"
      "                           bb-corrupt=P, media-corrupt=OST:AT,\n"
      "                           timeout=T, backoff=BASE:MAX, max-retries=N,\n"
      "                           agg-stall-threshold=T)\n",
      argv0);
}

int parse_groups(const std::string& value) {
  if (value == "auto") return core::kAutoGroups;
  return std::stoi(value);
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "tileio";
  std::string impl = "ext2ph";
  int nprocs = 64;
  int groups = core::kAutoGroups;
  int steps = 3;
  int nvars = 24;
  bool write = true;
  bool gantt = false;
  bool wall_report = false;
  bool engine_stats = false;
  bool top = false;
  std::string trace_path;
  std::string trace_json_path;
  std::string json_path;
  std::string timeline_path;
  std::string folded_path;
  RunSpec spec;
  spec.byte_true = false;
  spec.intranode = node::IntranodeMode::Auto;
  int osts = 0;
  std::uint64_t seed = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workload = next();
    } else if (arg == "--nprocs") {
      nprocs = std::stoi(next());
    } else if (arg == "--impl") {
      impl = next();
    } else if (arg == "--groups") {
      groups = parse_groups(next());
    } else if (arg == "--min-group-size") {
      spec.min_group_size = std::stoi(next());
    } else if (arg == "--no-view-switch") {
      spec.view_switch = false;
    } else if (arg == "--no-persistent-groups") {
      spec.persistent_groups = false;
    } else if (arg == "--cb-nodes") {
      spec.cb_nodes = std::stoi(next());
    } else if (arg == "--cb-buffer") {
      spec.cb_buffer_size = std::stoull(next());
    } else if (arg == "--cores-per-node") {
      spec.cores_per_node = std::stoi(next());
    } else if (arg == "--mapping") {
      const std::string value = next();
      if (value == "block") {
        spec.mapping = machine::Mapping::Block;
      } else if (value == "cyclic") {
        spec.mapping = machine::Mapping::Cyclic;
      } else {
        std::fprintf(stderr, "bad --mapping (block|cyclic): %s\n",
                     value.c_str());
        return 2;
      }
    } else if (arg == "--intranode") {
      try {
        spec.intranode = node::parse_intranode_mode(next());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
      }
    } else if (arg == "--no-intranode") {
      spec.intranode = node::IntranodeMode::Off;
    } else if (arg == "--leader") {
      try {
        spec.intranode_leader = node::parse_leader_policy(next());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
      }
    } else if (arg == "--bb") {
      spec.bb.enabled = true;
    } else if (arg == "--bb-capacity") {
      spec.bb.enabled = true;
      spec.bb.capacity = std::stoull(next());
    } else if (arg == "--bb-drain") {
      try {
        spec.bb.enabled = true;
        spec.bb.policy = bb::parse_drain_policy(next());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
      }
    } else if (arg == "--integrity") {
      try {
        spec.integrity.level = fs::parse_integrity_level(next());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
      }
    } else if (arg == "--integrity-block") {
      spec.integrity.block = std::stoull(next());
    } else if (arg == "--no-scrub") {
      spec.integrity.scrub = false;
    } else if (arg == "--read") {
      write = false;
    } else if (arg == "--steps") {
      steps = std::stoi(next());
    } else if (arg == "--nvars") {
      nvars = std::stoi(next());
    } else if (arg == "--osts") {
      osts = std::stoi(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--stack-bytes") {
      spec.stack_bytes = std::stoull(next());
      if (spec.stack_bytes < sim::Engine::kMinStackBytes) {
        std::fprintf(stderr,
                     "--stack-bytes %zu is below the %zu-byte safety floor "
                     "(deep collective call chains overflow smaller stacks)\n",
                     spec.stack_bytes, sim::Engine::kMinStackBytes);
        return 2;
      }
    } else if (arg == "--engine-stats") {
      engine_stats = true;
    } else if (arg == "--schedule-seed") {
      spec.schedule = sim::SchedulePolicy::random(std::stoull(next()));
    } else if (arg == "--schedule-replay") {
      try {
        spec.schedule = sim::SchedulePolicy::parse(next());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
      }
    } else if (arg == "--byte-true") {
      spec.byte_true = true;
    } else if (arg == "--fault") {
      try {
        spec.fault = fault::FaultPlan::parse(next());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
      }
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--trace-json") {
      trace_json_path = next();
    } else if (arg == "--gantt") {
      gantt = true;
    } else if (arg == "--wall-report") {
      wall_report = true;
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--sample-interval") {
      spec.sample_interval = std::stod(next());
      if (spec.sample_interval < 0) {
        std::fprintf(stderr, "--sample-interval must be >= 0\n");
        return 2;
      }
    } else if (arg == "--timeline") {
      timeline_path = next();
    } else if (arg == "--top") {
      top = true;
    } else if (arg == "--folded") {
      folded_path = next();
    } else if (arg == "--job") {
      spec.job = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (impl == "ext2ph") {
    spec.impl = Impl::Ext2ph;
  } else if (impl == "parcoll") {
    spec.impl = Impl::ParColl;
    spec.parcoll_groups = groups;
  } else if (impl == "independent") {
    spec.impl = Impl::Independent;
  } else if (impl == "posix") {
    spec.impl = Impl::PosixIndependent;
  } else if (impl == "sieving") {
    spec.impl = Impl::Sieving;
  } else {
    std::fprintf(stderr, "unknown impl: %s\n", impl.c_str());
    return 2;
  }
  if (osts > 0 || seed > 0) {
    spec.tweak_model = [osts, seed](machine::MachineModel& model) {
      if (osts > 0) {
        model.storage.num_osts = osts;
        model.storage.default_stripe_count = std::min(64, osts);
      }
      if (seed > 0) model.storage.seed = seed;
    };
  }
  spec.trace = gantt || wall_report || !trace_path.empty() ||
               !trace_json_path.empty() || !json_path.empty() ||
               !folded_path.empty();
  if ((!timeline_path.empty() || top) && spec.sample_interval <= 0) {
    spec.sample_interval = 1e-3;  // a sensible default tick for exports
  }
  // Sampling implies metrics so the timeline document can carry the
  // latency quantile summaries next to the series.
  spec.metrics =
      !json_path.empty() || wall_report || spec.sample_interval > 0;

  RunResult result;
  try {
  if (workload == "tileio") {
    result = workloads::run_tileio(workloads::TileIOConfig::paper(nprocs),
                                   nprocs, spec, write);
  } else if (workload == "ior") {
    result = workloads::run_ior(workloads::IorConfig{}, nprocs, spec, write);
  } else if (workload == "btio") {
    workloads::BtIOConfig config;
    config.nsteps = steps;
    result = workloads::run_btio(config, nprocs, spec, write);
  } else if (workload == "flash" || workload == "flash-plot") {
    auto config = workload == "flash"
                      ? workloads::FlashConfig::checkpoint()
                      : workloads::FlashConfig::plotfile_centered();
    config.nvars = std::min(nvars, config.nvars);
    result = workloads::run_flashio(config, nprocs, spec, write);
  } else {
    std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    return 2;
  }
  } catch (const std::exception& error) {
    // Bad hints (validated at open) and model misconfigurations surface
    // here; report them as a usage error instead of terminating.
    std::fprintf(stderr, "%s\n", error.what());
    return 2;
  }

  std::printf("workload  : %s (%s, %d procs)\n", workload.c_str(),
              write ? "write" : "read", nprocs);
  std::printf("impl      : %s", impl.c_str());
  if (spec.impl == Impl::ParColl) {
    std::printf(" (groups used: %d%s)", result.stats.last_num_groups,
                result.stats.view_switches ? ", intermediate views" : "");
  }
  if (result.stats.intranode_calls > 0) {
    std::printf(" (two-level: %llu calls, %.1f MiB intra-node)",
                static_cast<unsigned long long>(result.stats.intranode_calls),
                static_cast<double>(result.stats.intranode_bytes) / (1 << 20));
  }
  std::printf("\n");
  std::printf("bytes     : %.1f MiB\n",
              static_cast<double>(result.bytes) / (1 << 20));
  std::printf("elapsed   : %.4f s (virtual)\n", result.elapsed);
  std::printf("bandwidth : %.1f MiB/s\n", result.bandwidth_mib());
  const double total = result.sum.total();
  std::printf("breakdown : compute %.1f%%  p2p %.1f%%  sync %.1f%%  io %.1f%%"
              "  faulted %.1f%%  intra %.1f%%",
              100 * result.sum[mpi::TimeCat::Compute] / total,
              100 * result.sum[mpi::TimeCat::P2P] / total,
              100 * result.sum[mpi::TimeCat::Sync] / total,
              100 * result.sum[mpi::TimeCat::IO] / total,
              100 * result.sum[mpi::TimeCat::Faulted] / total,
              100 * result.sum[mpi::TimeCat::Intra] / total);
  if (result.sum[mpi::TimeCat::DrainWait] > 0) {
    std::printf("  dwait %.1f%%",
                100 * result.sum[mpi::TimeCat::DrainWait] / total);
  }
  std::printf("  (rank-seconds: %.2f)\n", total);
  if (spec.bb.enabled) {
    std::printf(
        "bb        : %s, staged %llu segs (%.1f MiB), spills %llu, "
        "hidden drain %.4fs, exposed wait %.4fs (%.1f%%), durable at %.4fs\n",
        bb::to_string(spec.bb.policy),
        static_cast<unsigned long long>(result.stats.bb_staged_segments),
        static_cast<double>(result.stats.bb_staged_bytes) / (1 << 20),
        static_cast<unsigned long long>(result.stats.bb_spills),
        result.stats.time[mpi::TimeCat::Drain],
        result.sum[mpi::TimeCat::DrainWait],
        100 * result.sum[mpi::TimeCat::DrainWait] / total,
        result.total_elapsed);
  }
  std::printf("fs        : %llu RPCs, %llu lock revocations\n",
              static_cast<unsigned long long>(result.fs_rpcs),
              static_cast<unsigned long long>(result.fs_lock_switches));
  if (engine_stats) {
    const sim::EngineStats& es = result.engine;
    std::printf(
        "engine    : %llu events (%.0f/s wall), queue peak %llu, "
        "%llu choice points\n",
        static_cast<unsigned long long>(es.events_executed),
        es.events_per_second(),
        static_cast<unsigned long long>(es.peak_queue_depth),
        static_cast<unsigned long long>(es.choice_points));
    std::printf(
        "fibers    : %llu spawned (peak %llu live), stacks %llu KiB: "
        "%llu allocated, %llu pooled; peak RSS %.1f MiB\n",
        static_cast<unsigned long long>(es.fibers_spawned),
        static_cast<unsigned long long>(es.peak_live_fibers),
        static_cast<unsigned long long>(es.default_stack_bytes / 1024),
        static_cast<unsigned long long>(es.stacks_allocated),
        static_cast<unsigned long long>(es.stacks_reused),
        static_cast<double>(sim::peak_rss_bytes()) / (1 << 20));
  }
  if (spec.schedule.kind != sim::TieBreak::Program) {
    std::printf("schedule  : %s (%llu choice points)\n",
                result.schedule_token.c_str(),
                static_cast<unsigned long long>(result.choice_points));
  }
  if (!spec.fault.empty()) {
    std::printf("fault plan: %s\n", spec.fault.describe().c_str());
    std::printf(
        "faults    : retries=%llu failovers=%llu drops=%llu delays=%llu "
        "reelections=%llu stalls=%llu faulted=%.4fs\n",
        static_cast<unsigned long long>(result.faults.retries),
        static_cast<unsigned long long>(result.faults.failovers),
        static_cast<unsigned long long>(result.faults.drops),
        static_cast<unsigned long long>(result.faults.delays),
        static_cast<unsigned long long>(result.faults.reelections),
        static_cast<unsigned long long>(result.faults.stalls),
        result.faults.faulted_seconds);
    if (result.faults.corrupt_injected > 0) {
      std::printf(
          "corruption: injected=%llu detected=%llu repaired=%llu "
          "scrub_repairs=%llu\n",
          static_cast<unsigned long long>(result.faults.corrupt_injected),
          static_cast<unsigned long long>(result.faults.corrupt_detected),
          static_cast<unsigned long long>(result.faults.corrupt_repaired),
          static_cast<unsigned long long>(result.faults.scrub_repairs));
    }
  }
  if (spec.integrity.enabled()) {
    std::printf(
        "integrity : %s, %llu blocks (%.1f MiB checksummed), %.4fs overhead, "
        "errors=%llu\n",
        fs::to_string(spec.integrity.level),
        static_cast<unsigned long long>(result.stats.integrity_blocks),
        static_cast<double>(result.stats.integrity_bytes) / (1 << 20),
        result.sum[mpi::TimeCat::Integrity],
        static_cast<unsigned long long>(result.stats.integrity_errors));
  }
  std::printf("%s\n", result.stats.summary(workload).c_str());
  if (result.trace) {
    if (!trace_path.empty()) {
      std::ofstream os(trace_path);
      result.trace->write_csv(os);
      std::printf("trace     : %zu intervals -> %s\n",
                  result.trace->events().size(), trace_path.c_str());
    }
    if (!trace_json_path.empty()) {
      std::ofstream os(trace_json_path);
      obs::write_chrome_trace(os, result.trace->spans());
      std::printf("trace-json: %zu spans -> %s\n",
                  result.trace->spans().spans().size(),
                  trace_json_path.c_str());
    }
    if (gantt) {
      std::printf("%s", result.trace->gantt(96, 16).c_str());
    }
    if (wall_report) {
      const obs::WallReport report =
          obs::build_wall_report(result.trace->spans(), result.metrics.get());
      std::printf("%s", obs::format_wall_report(report).c_str());
    }
    if (!folded_path.empty()) {
      const std::string folded =
          obs::folded_stacks(result.trace->spans(), &result.jobs);
      std::ofstream os(folded_path);
      os << folded;
      std::printf("folded    : %llu ns total -> %s\n",
                  obs::folded_total_weight(folded), folded_path.c_str());
    }
  }
  if (result.timeline) {
    if (top) {
      std::printf("%s", obs::top_report(*result.timeline).c_str());
    }
    if (!timeline_path.empty()) {
      obs::JsonValue doc = result.timeline->to_json();
      if (result.metrics) {
        obs::JsonValue quantiles = obs::JsonValue::object();
        for (const auto& [name, hist] : result.metrics->quantiles()) {
          quantiles.set(name, hist.summary_json());
        }
        doc.set("quantiles", std::move(quantiles));
      }
      try {
        obs::write_json_file(timeline_path, doc);
      } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
      }
      std::printf("timeline  : %zu samples x %zu series -> %s\n",
                  result.timeline->times_s.size(),
                  result.timeline->series.size(), timeline_path.c_str());
    }
  }
  if (!json_path.empty()) {
    obs::JsonValue config = obs::JsonValue::object();
    config.set("workload", workload)
        .set("impl", impl)
        .set("nprocs", nprocs)
        .set("groups", groups)
        .set("mode", write ? "write" : "read")
        .set("cores_per_node", spec.cores_per_node)
        .set("cb_nodes", spec.cb_nodes);
    if (!spec.fault.empty()) {
      config.set("fault", spec.fault.describe());
    }
    obs::JsonValue doc = obs::run_document("parcoll_sim", std::move(config));
    doc.set("result", workloads::run_result_json(result));
    if (result.trace) {
      doc.set("wall_report",
              obs::wall_report_json(obs::build_wall_report(
                  result.trace->spans(), result.metrics.get())));
    }
    if (result.timeline) {
      doc.set("timeline", result.timeline->to_json());
    }
    try {
      obs::write_json_file(json_path, doc);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s\n", error.what());
      return 1;
    }
    std::printf("json      : %s\n", json_path.c_str());
  }
  return 0;
}
