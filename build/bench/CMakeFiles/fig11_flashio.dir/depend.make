# Empty dependencies file for fig11_flashio.
# This may be replaced when dependencies are built.
