// Figure 1 — "The Collective Wall in Collective IO".
//
// MPI-Tile-IO (1024x768 tiles of 64-byte elements, one tile per process)
// under the plain extended two-phase protocol: the share of total time
// spent in global synchronization grows with the process count until it
// dominates file reads/writes. The paper reports 72% at 512 processes on
// Jaguar; the shape — monotone growth toward dominance — is the target.
#include "bench/common.hpp"
#include "workloads/tileio.hpp"

int main(int argc, char** argv) {
  using namespace parcoll;
  using namespace parcoll::bench;
  BenchReport report("fig01_collective_wall", argc, argv);

  header("Figure 1", "the collective wall: sync share of MPI-Tile-IO time");
  std::printf("  %6s %12s %12s %12s\n", "nprocs", "sync share", "io share",
              "bandwidth");
  for (int nprocs : {32, 64, 128, 256, 512}) {
    const auto config = workloads::TileIOConfig::paper(nprocs);
    const auto result =
        workloads::run_tileio(config, nprocs, baseline_spec(), /*write=*/true);
    const double total = result.sum.total();
    std::printf("  %6d %11.1f%% %11.1f%% %9.1f MiB/s\n", nprocs,
                100.0 * result.sync_fraction(),
                100.0 * result.sum[mpi::TimeCat::IO] / total,
                result.bandwidth_mib());
    report.add("cray", nprocs, result);
  }
  footnote("paper: sync grows to dominance, 72% of total at 512 processes");
  return 0;
}
