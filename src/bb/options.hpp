// Burst-buffer staging knobs, shared between the MPI-IO hints and the bb
// subsystem (dependency-free so mpiio/ can include it without pulling the
// staging layer in).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace parcoll::bb {

/// bb_drain hint: when the node-local drain agent writes staged segments
/// behind to Lustre.
///   Immediate — a drain fiber starts the moment a segment is staged; the
///               write-behind overlaps the foreground collective maximally.
///   Watermark — draining starts when a node arena passes the high
///               watermark and stops once it falls below the low one,
///               batching fs traffic into bursts.
///   Deadline  — each staged segment must start draining within
///               drain_deadline seconds (the "before the next checkpoint"
///               contract); until then the buffer only fills.
///   Arbitrate — drain defers to foreground collective I/O contending for
///               the same OSTs and runs in the gaps, with the high
///               watermark and the deadline as pressure backstops.
enum class DrainPolicy { Immediate, Watermark, Deadline, Arbitrate };

struct BbConfig {
  /// Master switch. Off is the default and keeps every run bit-identical
  /// to a build without the staging tier.
  bool enabled = false;
  /// Node-local arena capacity in bytes (per physical node). Segments that
  /// do not fit spill to the synchronous path.
  std::uint64_t capacity = 256ull << 20;
  DrainPolicy policy = DrainPolicy::Immediate;
  /// Watermark policy: drain starts at used >= hi * capacity and pauses at
  /// used <= lo * capacity. Fractions in [0, 1], lo <= hi.
  double hi_watermark = 0.5;
  double lo_watermark = 0.125;
  /// Deadline/Arbitrate policies: seconds a staged segment may wait before
  /// its node's drain must start.
  double drain_deadline = 0.05;

  [[nodiscard]] std::uint64_t hi_bytes() const {
    return static_cast<std::uint64_t>(hi_watermark *
                                      static_cast<double>(capacity));
  }
  [[nodiscard]] std::uint64_t lo_bytes() const {
    return static_cast<std::uint64_t>(lo_watermark *
                                      static_cast<double>(capacity));
  }
};

[[nodiscard]] inline const char* to_string(DrainPolicy policy) {
  switch (policy) {
    case DrainPolicy::Immediate: return "immediate";
    case DrainPolicy::Watermark: return "watermark";
    case DrainPolicy::Deadline:  return "deadline";
    case DrainPolicy::Arbitrate: return "arbitrate";
  }
  return "?";
}

[[nodiscard]] inline DrainPolicy parse_drain_policy(const std::string& value) {
  if (value == "immediate") return DrainPolicy::Immediate;
  if (value == "watermark") return DrainPolicy::Watermark;
  if (value == "deadline") return DrainPolicy::Deadline;
  if (value == "arbitrate") return DrainPolicy::Arbitrate;
  throw std::invalid_argument(
      "bb_drain: expected immediate|watermark|deadline|arbitrate (got " +
      value + ")");
}

}  // namespace parcoll::bb
