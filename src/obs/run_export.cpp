#include "obs/run_export.hpp"

#include <fstream>
#include <stdexcept>

#include "fault/fault.hpp"
#include "mpi/timecat.hpp"
#include "mpiio/stats.hpp"
#include "obs/metrics.hpp"

namespace parcoll::obs {

JsonValue time_breakdown_json(const mpi::TimeBreakdown& time) {
  JsonValue doc = JsonValue::object();
  for (std::size_t c = 0; c < mpi::kNumTimeCats; ++c) {
    doc.set(std::string(mpi::to_string(static_cast<mpi::TimeCat>(c))) + "_s",
            time.seconds[c]);
  }
  doc.set("total_s", time.total());
  return doc;
}

JsonValue file_stats_json(const mpiio::FileStats& stats) {
  JsonValue doc = JsonValue::object();
  doc.set("time", time_breakdown_json(stats.time));
  doc.set("bytes_written", stats.bytes_written);
  doc.set("bytes_read", stats.bytes_read);
  doc.set("collective_writes", stats.collective_writes);
  doc.set("collective_reads", stats.collective_reads);
  doc.set("independent_writes", stats.independent_writes);
  doc.set("independent_reads", stats.independent_reads);
  doc.set("exchange_cycles", stats.exchange_cycles);
  doc.set("rmw_reads", stats.rmw_reads);
  doc.set("parcoll_calls", stats.parcoll_calls);
  doc.set("intranode_calls", stats.intranode_calls);
  doc.set("intranode_bytes", stats.intranode_bytes);
  doc.set("view_switches", stats.view_switches);
  doc.set("last_num_groups", stats.last_num_groups);
  doc.set("fault_retries", stats.fault_retries);
  doc.set("fault_failovers", stats.fault_failovers);
  doc.set("fault_drops", stats.fault_drops);
  doc.set("fault_reelections", stats.fault_reelections);
  doc.set("fault_stalls", stats.fault_stalls);
  doc.set("bb_staged_segments", stats.bb_staged_segments);
  doc.set("bb_staged_bytes", stats.bb_staged_bytes);
  doc.set("bb_drained_bytes", stats.bb_drained_bytes);
  doc.set("bb_spills", stats.bb_spills);
  doc.set("bb_spill_bytes", stats.bb_spill_bytes);
  doc.set("bb_conflict_flushes", stats.bb_conflict_flushes);
  doc.set("bb_drain_retries", stats.bb_drain_retries);
  doc.set("bb_drain_failovers", stats.bb_drain_failovers);
  doc.set("integrity_blocks", stats.integrity_blocks);
  doc.set("integrity_bytes", stats.integrity_bytes);
  doc.set("corrupt_detected", stats.corrupt_detected);
  doc.set("corrupt_repaired", stats.corrupt_repaired);
  doc.set("scrub_repairs", stats.scrub_repairs);
  doc.set("integrity_errors", stats.integrity_errors);
  return doc;
}

JsonValue fault_counters_json(const fault::FaultCounters& faults) {
  JsonValue doc = JsonValue::object();
  doc.set("retries", faults.retries);
  doc.set("failovers", faults.failovers);
  doc.set("drops", faults.drops);
  doc.set("delays", faults.delays);
  doc.set("reelections", faults.reelections);
  doc.set("stalls", faults.stalls);
  doc.set("corrupt_injected", faults.corrupt_injected);
  doc.set("corrupt_detected", faults.corrupt_detected);
  doc.set("corrupt_repaired", faults.corrupt_repaired);
  doc.set("scrub_repairs", faults.scrub_repairs);
  doc.set("faulted_seconds", faults.faulted_seconds);
  return doc;
}

JsonValue metrics_json(const MetricsRegistry& metrics) {
  JsonValue doc = JsonValue::object();

  JsonValue counters = JsonValue::object();
  for (const auto& [name, value] : metrics.counters()) {
    counters.set(name, value);
  }
  doc.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::object();
  for (const auto& [name, value] : metrics.gauges()) {
    gauges.set(name, value);
  }
  doc.set("gauges", std::move(gauges));

  JsonValue histograms = JsonValue::object();
  for (const auto& [name, hist] : metrics.histograms()) {
    JsonValue entry = JsonValue::object();
    JsonValue bounds = JsonValue::array();
    for (double b : hist.bounds) bounds.push(b);
    JsonValue counts = JsonValue::array();
    for (std::uint64_t c : hist.counts) counts.push(c);
    entry.set("bounds", std::move(bounds))
        .set("counts", std::move(counts))
        .set("count", hist.count)
        .set("sum", hist.sum)
        .set("min", hist.min)
        .set("max", hist.max)
        .set("mean", hist.mean());
    histograms.set(name, std::move(entry));
  }
  doc.set("histograms", std::move(histograms));

  JsonValue quantiles = JsonValue::object();
  for (const auto& [name, q] : metrics.quantiles()) {
    quantiles.set(name, q.summary_json());
  }
  doc.set("quantiles", std::move(quantiles));
  return doc;
}

void export_file_stats(MetricsRegistry& metrics,
                       const mpiio::FileStats& stats) {
  for (std::size_t c = 0; c < mpi::kNumTimeCats; ++c) {
    metrics.gauge(std::string("stats.time.") +
                  mpi::to_string(static_cast<mpi::TimeCat>(c)) + "_s") =
        stats.time.seconds[c];
  }
  metrics.counter("stats.bytes_written") = stats.bytes_written;
  metrics.counter("stats.bytes_read") = stats.bytes_read;
  metrics.counter("stats.collective_writes") = stats.collective_writes;
  metrics.counter("stats.collective_reads") = stats.collective_reads;
  metrics.counter("stats.independent_writes") = stats.independent_writes;
  metrics.counter("stats.independent_reads") = stats.independent_reads;
  metrics.counter("stats.exchange_cycles") = stats.exchange_cycles;
  metrics.counter("stats.rmw_reads") = stats.rmw_reads;
  metrics.counter("stats.parcoll_calls") = stats.parcoll_calls;
  metrics.counter("stats.intranode_calls") = stats.intranode_calls;
  metrics.counter("stats.intranode_bytes") = stats.intranode_bytes;
  metrics.counter("stats.view_switches") = stats.view_switches;
  metrics.counter("stats.bb_staged_segments") = stats.bb_staged_segments;
  metrics.counter("stats.bb_staged_bytes") = stats.bb_staged_bytes;
  metrics.counter("stats.bb_drained_bytes") = stats.bb_drained_bytes;
  metrics.counter("stats.bb_spills") = stats.bb_spills;
  metrics.counter("stats.bb_spill_bytes") = stats.bb_spill_bytes;
  metrics.counter("stats.integrity_blocks") = stats.integrity_blocks;
  metrics.counter("stats.integrity_bytes") = stats.integrity_bytes;
  metrics.counter("stats.corrupt_detected") = stats.corrupt_detected;
  metrics.counter("stats.corrupt_repaired") = stats.corrupt_repaired;
  metrics.counter("stats.scrub_repairs") = stats.scrub_repairs;
  metrics.counter("stats.integrity_errors") = stats.integrity_errors;
  metrics.gauge("stats.last_num_groups") =
      static_cast<double>(stats.last_num_groups);
}

void export_fault_counters(MetricsRegistry& metrics,
                           const fault::FaultCounters& faults) {
  metrics.counter("fault.retries") = faults.retries;
  metrics.counter("fault.failovers") = faults.failovers;
  metrics.counter("fault.drops") = faults.drops;
  metrics.counter("fault.delays") = faults.delays;
  metrics.counter("fault.reelections") = faults.reelections;
  metrics.counter("fault.stalls") = faults.stalls;
  metrics.counter("fault.corrupt_injected") = faults.corrupt_injected;
  metrics.counter("fault.corrupt_detected") = faults.corrupt_detected;
  metrics.counter("fault.corrupt_repaired") = faults.corrupt_repaired;
  metrics.counter("fault.scrub_repairs") = faults.scrub_repairs;
  metrics.gauge("fault.faulted_seconds") = faults.faulted_seconds;
}

JsonValue run_document(const std::string& tool, JsonValue config) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", kRunSchema);
  doc.set("version", kRunSchemaVersion);
  doc.set("tool", tool);
  doc.set("config", std::move(config));
  return doc;
}

void write_json_file(const std::string& path, const JsonValue& doc) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open for writing: " + path);
  }
  os << doc.dump(1) << '\n';
}

}  // namespace parcoll::obs
