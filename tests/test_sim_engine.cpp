// Discrete-event engine: clock, ordering, sleep/suspend/wake, deadlock
// detection, and the WaitQueue primitive.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace parcoll::sim {
namespace {

TEST(Engine, RunsSingleProcessToCompletion) {
  Engine engine;
  bool ran = false;
  engine.spawn([&] { ran = true; });
  engine.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(engine.live_processes(), 0u);
}

TEST(Engine, SleepAdvancesVirtualTime) {
  Engine engine;
  double at_end = -1;
  engine.spawn([&] {
    engine.sleep(1.5);
    engine.sleep(0.25);
    at_end = engine.now();
  });
  engine.run();
  EXPECT_DOUBLE_EQ(at_end, 1.75);
}

TEST(Engine, SleepZeroDoesNotYield) {
  Engine engine;
  engine.spawn([&] {
    const double before = engine.now();
    engine.sleep(0.0);
    EXPECT_DOUBLE_EQ(engine.now(), before);
  });
  engine.run();
}

TEST(Engine, NegativeSleepThrows) {
  Engine engine;
  engine.spawn([&] { EXPECT_THROW(engine.sleep(-1.0), std::logic_error); });
  engine.run();
}

TEST(Engine, ProcessesInterleaveInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.spawn([&] {
    engine.sleep(2.0);
    order.push_back(1);
  });
  engine.spawn([&] {
    engine.sleep(1.0);
    order.push_back(2);
  });
  engine.spawn([&] {
    engine.sleep(3.0);
    order.push_back(3);
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
}

TEST(Engine, EqualTimesResolveInSpawnOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.spawn([&, i] {
      engine.sleep(1.0);
      order.push_back(i);
    });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, SuspendAndWake) {
  Engine engine;
  ProcId sleeper = -1;
  double woke_at = -1;
  sleeper = engine.spawn([&] {
    engine.suspend("waiting for test");
    woke_at = engine.now();
  });
  engine.spawn([&] {
    engine.sleep(4.0);
    engine.wake(sleeper);
  });
  engine.run();
  EXPECT_DOUBLE_EQ(woke_at, 4.0);
}

TEST(Engine, WakeAtFutureTime) {
  Engine engine;
  ProcId sleeper = -1;
  double woke_at = -1;
  sleeper = engine.spawn([&] {
    engine.suspend("waiting");
    woke_at = engine.now();
  });
  engine.spawn([&] {
    engine.sleep(1.0);
    engine.wake_at(10.0, sleeper);
  });
  engine.run();
  EXPECT_DOUBLE_EQ(woke_at, 10.0);
}

TEST(Engine, WakingARunnableProcessThrows) {
  Engine engine;
  const ProcId a = engine.spawn([&] { engine.sleep(1.0); });
  engine.spawn([&] { EXPECT_THROW(engine.wake(a), std::logic_error); });
  engine.run();
}

TEST(Engine, DeadlockIsReportedWithReason) {
  Engine engine;
  engine.spawn([&] { engine.suspend("never woken"); });
  try {
    engine.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& error) {
    EXPECT_NE(std::string(error.what()).find("never woken"), std::string::npos);
  }
}

TEST(Engine, PostedCallbackRunsAtRequestedTime) {
  Engine engine;
  double ran_at = -1;
  engine.spawn([&] {
    engine.post(engine.now() + 2.5, [&] { ran_at = engine.now(); });
    engine.sleep(5.0);
  });
  engine.run();
  EXPECT_DOUBLE_EQ(ran_at, 2.5);
}

TEST(Engine, NestedSpawnStartsAtCurrentTime) {
  Engine engine;
  double child_start = -1;
  engine.spawn([&] {
    engine.sleep(3.0);
    engine.spawn([&] { child_start = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(child_start, 3.0);
}

TEST(Engine, ManyProcessesComplete) {
  Engine engine;
  int done = 0;
  for (int i = 0; i < 1000; ++i) {
    engine.spawn([&, i] {
      engine.sleep(static_cast<double>(i % 7) * 0.001);
      ++done;
    });
  }
  engine.run();
  EXPECT_EQ(done, 1000);
}

TEST(WaitQueue, NotifyOneWakesInFifoOrder) {
  Engine engine;
  WaitQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    engine.spawn([&, i] {
      engine.sleep(static_cast<double>(i) * 0.1);  // stagger arrival
      queue.wait(engine, "queued");
      order.push_back(i);
    });
  }
  engine.spawn([&] {
    engine.sleep(1.0);
    while (queue.notify_one(engine)) {
    }
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(WaitQueue, NotifyAllWakesEveryone) {
  Engine engine;
  WaitQueue queue;
  int woken = 0;
  for (int i = 0; i < 10; ++i) {
    engine.spawn([&] {
      queue.wait(engine, "all");
      ++woken;
    });
  }
  engine.spawn([&] {
    engine.sleep(1.0);
    EXPECT_EQ(queue.size(), 10u);
    queue.notify_all(engine);
  });
  engine.run();
  EXPECT_EQ(woken, 10);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine;
    std::vector<std::pair<int, double>> events;
    for (int i = 0; i < 20; ++i) {
      engine.spawn([&, i] {
        engine.sleep(static_cast<double>((i * 37) % 11) * 0.01);
        events.emplace_back(i, engine.now());
        engine.sleep(0.005);
        events.emplace_back(i + 100, engine.now());
      });
    }
    engine.run();
    return events;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace parcoll::sim
