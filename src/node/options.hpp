// Two-level collective I/O knobs, shared between the MPI-IO hints and the
// node subsystem (dependency-free so mpiio/ can include it without pulling
// the node layer in).
#pragma once

#include <stdexcept>
#include <string>

namespace parcoll::node {

/// cb_intranode hint: whether collective calls aggregate requests inside
/// each physical node before the inter-node two-phase exchange.
///   Off  — single-level protocol, bit-for-bit the historical behaviour.
///   On   — force two-level staging wherever a node hosts >= 2 members.
///   Auto — like On, but the data path additionally declines when staging
///          would shrink the aggregator roster (several aggregators hosted
///          on one node, e.g. the every-process default): losing I/O
///          parallelism usually costs more than the coordination win.
enum class IntranodeMode { Off, On, Auto };

/// cb_intranode_leader hint: which process of a node becomes its leader.
///   Lowest — the smallest communicator rank hosted on the node (matches
///            the historical one-aggregator-per-node selection).
///   Spread — rotate the leader core with the node index, spreading NIC
///            and memory pressure across cores under block mapping.
enum class LeaderPolicy { Lowest, Spread };

[[nodiscard]] inline const char* to_string(IntranodeMode mode) {
  switch (mode) {
    case IntranodeMode::Off:  return "disable";
    case IntranodeMode::On:   return "enable";
    case IntranodeMode::Auto: return "automatic";
  }
  return "?";
}

[[nodiscard]] inline const char* to_string(LeaderPolicy policy) {
  switch (policy) {
    case LeaderPolicy::Lowest: return "lowest";
    case LeaderPolicy::Spread: return "spread";
  }
  return "?";
}

[[nodiscard]] inline IntranodeMode parse_intranode_mode(const std::string& value) {
  if (value == "disable" || value == "off" || value == "false" || value == "0") {
    return IntranodeMode::Off;
  }
  if (value == "enable" || value == "on" || value == "true" || value == "1") {
    return IntranodeMode::On;
  }
  if (value == "automatic" || value == "auto") {
    return IntranodeMode::Auto;
  }
  throw std::invalid_argument(
      "cb_intranode: expected enable|disable|automatic (got " + value + ")");
}

[[nodiscard]] inline LeaderPolicy parse_leader_policy(const std::string& value) {
  if (value == "lowest") return LeaderPolicy::Lowest;
  if (value == "spread") return LeaderPolicy::Spread;
  throw std::invalid_argument(
      "cb_intranode_leader: expected lowest|spread (got " + value + ")");
}

}  // namespace parcoll::node
