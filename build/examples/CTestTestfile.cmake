# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tile_visualization "/root/repo/build/examples/tile_visualization")
set_tests_properties(example_tile_visualization PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_checkpoint_flash "/root/repo/build/examples/checkpoint_flash")
set_tests_properties(example_checkpoint_flash PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_group_size_explorer "/root/repo/build/examples/group_size_explorer" "32")
set_tests_properties(example_group_size_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_timeline_trace "/root/repo/build/examples/timeline_trace")
set_tests_properties(example_timeline_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
