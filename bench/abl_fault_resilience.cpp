// Ablation — degraded-mode resilience under deterministic fault plans.
//
// Runs IOR under ext2ph and ParColl with bit-identical fault plans (same
// seed, same schedule) and compares how each protocol absorbs the damage:
// an OST outage forces timeout/retry then failover to surviving targets, a
// lossy network taxes every BRW RPC, and straggler ranks stall mid-run.
// ParColl's subgroups confine a stall's collective-wall cost to the one
// group that hits it; ext2ph re-couples all processes at every exchange
// cycle, so one rank's misfortune is everyone's. The "faulted" column is
// time charged to TimeCat::Faulted (retry backoff + stall service), summed
// over ranks. (Aggregator re-election needs a restricted aggregator set
// and a stall spanning a call boundary; test_fault.cpp stages that.)
#include <cstdio>
#include <string>

#include "bench/common.hpp"
#include "fault/fault.hpp"
#include "workloads/ior.hpp"

namespace {

using namespace parcoll;
using namespace parcoll::bench;

void fault_row(const std::string& series, const workloads::RunResult& r) {
  const double total = r.sum.total();
  const double faulted =
      total > 0 ? 100.0 * r.sum[mpi::TimeCat::Faulted] / total : 0.0;
  std::printf(
      "  %-16s %9.1f MiB/s  elapsed %8.3f s  sync %5.1f%%  faulted %5.1f%%"
      "  retry=%llu failover=%llu drop=%llu reelect=%llu stall=%llu\n",
      series.c_str(), r.bandwidth_mib(), r.elapsed,
      100.0 * r.sync_fraction(), faulted,
      static_cast<unsigned long long>(r.faults.retries),
      static_cast<unsigned long long>(r.faults.failovers),
      static_cast<unsigned long long>(r.faults.drops),
      static_cast<unsigned long long>(r.faults.reelections),
      static_cast<unsigned long long>(r.faults.stalls));
}

void scenario(BenchReport& report, const std::string& title,
              const workloads::IorConfig& config, int nprocs,
              const fault::FaultPlan& plan) {
  std::printf("%s\n", title.c_str());
  auto cray = baseline_spec();
  cray.fault = plan;
  const auto cray_result = workloads::run_ior(config, nprocs, cray, true);
  fault_row("Cray (ext2ph)", cray_result);
  report.add(title + "/cray", nprocs, cray_result);
  auto parcoll = parcoll_spec(8);
  parcoll.fault = plan;
  const auto parcoll_result = workloads::run_ior(config, nprocs, parcoll, true);
  fault_row("ParColl-8", parcoll_result);
  report.add(title + "/parcoll-8", nprocs, parcoll_result);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = parcoll::bench::smoke_requested(argc, argv);
  const int nprocs = parcoll::bench::scaled(smoke, 128);
  const workloads::IorConfig config;
  BenchReport report("abl_fault_resilience", argc, argv);

  header("Ablation: fault resilience",
         "IOR (P=128), identical deterministic fault plans per scenario");

  scenario(report, "fault-free", config, nprocs, fault::FaultPlan{});

  // One target dark from t=1s on: every chunk aimed at OST 3 times out,
  // retries, then fails over to the next surviving OST.
  scenario(report, "OST 3 outage (t>=1s)", config, nprocs,
           fault::FaultPlan::parse("seed=7;ost-outage=3:1:1e9;"
                                   "timeout=0.01;backoff=0.005:0.04"));

  // Lossy fabric: 2% of RPCs swallowed, 5% delayed by 5 ms.
  scenario(report, "lossy network", config, nprocs,
           fault::FaultPlan::parse("seed=7;rpc-drop=0.02;rpc-delay=0.05:0.005;"
                                   "timeout=0.01;backoff=0.005:0.04"));

  // Straggler ranks: four ranks in four different subgroups each stall
  // 5 s early on. Under ext2ph every exchange cycle waits for the
  // straggler, so all four stalls serialize into the global critical
  // path; under ParColl only the straggler's own subgroup waits and the
  // stalls overlap across drifting groups.
  scenario(report, "rank stalls (4 x 5s)", config, nprocs,
           fault::FaultPlan::parse("seed=7;rank-stall=0:2:5;"
                                   "rank-stall=17:4:5;rank-stall=64:6:5;"
                                   "rank-stall=100:8:5"));

  footnote("same seed + schedule for both series in every scenario; the");
  footnote("counters are summed over all ranks, faulted% over rank-seconds");
  return 0;
}
