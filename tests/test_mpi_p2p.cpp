// Point-to-point messaging: matching, ordering, wildcards, data movement,
// phantom payloads, and P2P time accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "mpi/p2p.hpp"
#include "mpi/runtime.hpp"

namespace parcoll::mpi {
namespace {

World make_world(int nranks) {
  return World(machine::MachineModel::jaguar(nranks));
}

TEST(P2P, BlockingSendRecvMovesBytes) {
  World world(machine::MachineModel::jaguar(2));
  std::vector<unsigned char> received(8, 0);
  world.run([&](Rank& self) {
    auto& p2p = self.world().p2p();
    if (self.rank() == 0) {
      std::vector<unsigned char> data{1, 2, 3, 4, 5, 6, 7, 8};
      p2p.send(self, self.comm_world(), 1, 7, data.data(), data.size());
    } else {
      const auto n = p2p.recv(self, self.comm_world(), 0, 7, received.data(),
                              received.size());
      EXPECT_EQ(n, 8u);
    }
  });
  std::vector<unsigned char> expected{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(received, expected);
}

TEST(P2P, TransferTakesVirtualTime) {
  World world(machine::MachineModel::jaguar(4));  // ranks 0,1 on node 0; 2,3 on node 1
  double recv_done = 0;
  world.run([&](Rank& self) {
    auto& p2p = self.world().p2p();
    if (self.rank() == 0) {
      std::vector<std::byte> data(1 << 20);
      p2p.send(self, self.comm_world(), 2, 0, data.data(), data.size());
    } else if (self.rank() == 2) {
      std::vector<std::byte> buffer(1 << 20);
      p2p.recv(self, self.comm_world(), 0, 0, buffer.data(), buffer.size());
      recv_done = self.now();
    }
  });
  const auto& net = machine::MachineModel::jaguar(4).net;
  EXPECT_GE(recv_done, net.p2p_latency + (1 << 20) / net.p2p_bandwidth);
}

TEST(P2P, MessagesFromSameSenderArriveInOrder) {
  World world = make_world(2);
  std::vector<int> order;
  world.run([&](Rank& self) {
    auto& p2p = self.world().p2p();
    if (self.rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        p2p.send(self, self.comm_world(), 1, 3, &i, sizeof(i));
      }
    } else {
      for (int i = 0; i < 5; ++i) {
        int value = -1;
        p2p.recv(self, self.comm_world(), 0, 3, &value, sizeof(value));
        order.push_back(value);
      }
    }
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(P2P, TagsSelectMessages) {
  World world = make_world(2);
  int got_a = 0;
  int got_b = 0;
  world.run([&](Rank& self) {
    auto& p2p = self.world().p2p();
    if (self.rank() == 0) {
      const int a = 111;
      const int b = 222;
      p2p.send(self, self.comm_world(), 1, /*tag=*/1, &a, sizeof(a));
      p2p.send(self, self.comm_world(), 1, /*tag=*/2, &b, sizeof(b));
    } else {
      // Receive tag 2 first even though tag 1 was sent first.
      p2p.recv(self, self.comm_world(), 0, 2, &got_b, sizeof(got_b));
      p2p.recv(self, self.comm_world(), 0, 1, &got_a, sizeof(got_a));
    }
  });
  EXPECT_EQ(got_a, 111);
  EXPECT_EQ(got_b, 222);
}

TEST(P2P, AnySourceMatchesEarliestArrival) {
  World world = make_world(3);
  std::vector<int> sources;
  world.run([&](Rank& self) {
    auto& p2p = self.world().p2p();
    if (self.rank() != 0) {
      // Rank 2 is farther (different node) but sends first; both arrive.
      const int payload = self.rank();
      p2p.send(self, self.comm_world(), 0, 0, &payload, sizeof(payload));
    } else {
      for (int i = 0; i < 2; ++i) {
        int value = 0;
        Request request = p2p.irecv(self, self.comm_world(), kAnySource, 0,
                                    &value, sizeof(value));
        p2p.wait(self, request);
        sources.push_back(request.source());
        EXPECT_EQ(value, request.source());
      }
    }
  });
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_NE(sources[0], sources[1]);
}

TEST(P2P, IsendIrecvWaitall) {
  World world = make_world(4);
  std::vector<int> sums(4, 0);
  world.run([&](Rank& self) {
    auto& p2p = self.world().p2p();
    const int value = self.rank() + 1;
    std::vector<Request> requests;
    std::vector<int> incoming(4, 0);
    for (int peer = 0; peer < 4; ++peer) {
      if (peer == self.rank()) continue;
      requests.push_back(p2p.irecv(self, self.comm_world(), peer, 0,
                                   &incoming[peer], sizeof(int)));
    }
    for (int peer = 0; peer < 4; ++peer) {
      if (peer == self.rank()) continue;
      requests.push_back(
          p2p.isend(self, self.comm_world(), peer, 0, &value, sizeof(int)));
    }
    p2p.waitall(self, requests);
    sums[self.rank()] = std::accumulate(incoming.begin(), incoming.end(), 0);
  });
  // Each rank receives (1+2+3+4) - own value.
  EXPECT_EQ(sums, (std::vector<int>{9, 8, 7, 6}));
}

TEST(P2P, SelfMessageWorks) {
  World world = make_world(1);
  int got = 0;
  world.run([&](Rank& self) {
    auto& p2p = self.world().p2p();
    const int value = 99;
    Request recv = p2p.irecv(self, self.comm_world(), 0, 0, &got, sizeof(got));
    Request send =
        p2p.isend(self, self.comm_world(), 0, 0, &value, sizeof(value));
    p2p.wait(self, recv);
    p2p.wait(self, send);
  });
  EXPECT_EQ(got, 99);
}

TEST(P2P, PhantomPayloadMovesNoBytesButTakesTime) {
  World world(machine::MachineModel::jaguar(4), /*byte_true=*/false);
  double elapsed = 0;
  world.run([&](Rank& self) {
    auto& p2p = self.world().p2p();
    if (self.rank() == 0) {
      p2p.send(self, self.comm_world(), 2, 0, nullptr, 64ull << 20);
    } else if (self.rank() == 2) {
      const double t0 = self.now();
      p2p.recv(self, self.comm_world(), 0, 0, nullptr, 64ull << 20);
      elapsed = self.now() - t0;
    }
  });
  EXPECT_GT(elapsed, (64ull << 20) / machine::NetworkParams{}.p2p_bandwidth / 2);
}

TEST(P2P, TruncationThrows) {
  World world = make_world(2);
  EXPECT_THROW(
      world.run([&](Rank& self) {
        auto& p2p = self.world().p2p();
        if (self.rank() == 0) {
          std::vector<std::byte> data(100);
          p2p.send(self, self.comm_world(), 1, 0, data.data(), data.size());
        } else {
          std::vector<std::byte> small(10);
          p2p.recv(self, self.comm_world(), 0, 0, small.data(), small.size());
        }
      }),
      std::runtime_error);
}

TEST(P2P, WaitChargesP2PTime) {
  World world = make_world(2);
  world.run([&](Rank& self) {
    auto& p2p = self.world().p2p();
    if (self.rank() == 1) {
      self.busy(TimeCat::Compute, 1.0);  // make the receiver wait
      int value = 5;
      p2p.send(self, self.comm_world(), 0, 0, &value, sizeof(value));
    } else {
      int value = 0;
      p2p.recv(self, self.comm_world(), 1, 0, &value, sizeof(value));
    }
  });
  const auto& t0 = world.rank_times()[0];
  EXPECT_GT(t0[TimeCat::P2P], 0.9);  // blocked ~1s waiting for the sender
  const auto& t1 = world.rank_times()[1];
  EXPECT_GT(t1[TimeCat::Compute], 0.9);
}

TEST(P2P, UnmatchedRecvDeadlocks) {
  World world = make_world(2);
  EXPECT_THROW(world.run([&](Rank& self) {
                 if (self.rank() == 0) {
                   int value;
                   self.world().p2p().recv(self, self.comm_world(), 1, 0,
                                           &value, sizeof(value));
                 }
               }),
               sim::DeadlockError);
}

}  // namespace
}  // namespace parcoll::mpi
