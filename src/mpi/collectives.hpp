// Collective operations: semantic and costed.
//
// Each collective really moves the participants' data (so offsets lists,
// sizes, etc. are exchanged for real), and it really synchronizes: the
// operation completes at max(arrival times) + cost(kind, P, bytes). Each
// rank charges (completion - its own arrival) to TimeCat::Sync — this is
// the quantity whose growth with P the paper names the collective wall.
//
// Cost model (NetworkParams): latency terms follow the usual binomial-tree
// log2(P) shapes; alltoall carries a linear-in-P per-peer term, which is the
// dominant contributor in the two-phase protocol's per-cycle metadata
// exchange.
//
// Implementation note: the engine gathers every rank's contribution and
// hands all of them to every rank; the typed wrappers below then slice or
// reduce locally. Data routing fidelity does not affect timing (costs are
// per-kind), and it keeps the engine to a single code path.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "machine/machine_model.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"

namespace parcoll::mpi {

class Rank;

enum class CollKind {
  Barrier,
  Bcast,
  Gather,     // rootward concatenation (gather/gatherv)
  Allgather,  // includes allgatherv
  Alltoall,
  Allreduce,
  Scan,       // scan/exscan
};

[[nodiscard]] const char* to_string(CollKind kind);

/// Completion cost of a collective over P ranks once everyone has arrived.
/// `max_contrib` is the largest single contribution; `total` the sum.
[[nodiscard]] double coll_cost(const machine::NetworkParams& net,
                               CollKind kind, int nranks,
                               std::uint64_t max_contrib, std::uint64_t total);

using CollContribs = std::vector<std::vector<std::byte>>;

class CollEngine {
 public:
  CollEngine(sim::Engine& engine, const machine::NetworkParams& net);

  /// Core rendezvous: block until all members of `comm` have contributed,
  /// then return (a shared view of) everyone's contributions, ordered by
  /// local rank. Charges Sync time.
  std::shared_ptr<const CollContribs> exchange(Rank& self, const Comm& comm,
                                               CollKind kind,
                                               std::vector<std::byte> contribution);

  /// Allocate a context id for a derived communicator. Must be called in
  /// the same order by all ranks that use the result (comm_split does).
  std::uint64_t derive_context(std::uint64_t parent_ctx, std::uint64_t seq,
                               int color) const;

  /// Deduplicate an identical-on-every-rank computation: each member of
  /// `comm` calls (in the same collective order) with a `build` that
  /// deterministically produces the same value; the first caller runs it
  /// and every member shares the one immutable result. Nothing is
  /// exchanged and no time is charged — real ranks each compute this
  /// locally, the simulator just refuses to hold P copies of it. The
  /// entry retires once every member has fetched.
  std::shared_ptr<const void> shared_fetch(
      Rank& self, const Comm& comm,
      const std::function<std::shared_ptr<const void>()>& build);

  /// comm_split memo: every same-color member of one split builds an
  /// identical communicator, so the first member through publishes the
  /// results by derived context id and the rest alias the member tables.
  [[nodiscard]] const Comm* cached_split(std::uint64_t ctx) const;
  void cache_split(const Comm& comm);

 private:
  struct Op {
    CollKind kind = CollKind::Barrier;
    int expected = 0;
    int arrived = 0;
    int fetched = 0;
    double max_arrival = 0.0;
    CollContribs contribs;
    std::vector<sim::ProcId> waiter_pids;
    std::shared_ptr<const CollContribs> result;
  };
  using OpKey = std::pair<std::uint64_t, std::uint64_t>;  // (ctx, seq)

  struct SharedVal {
    std::shared_ptr<const void> value;
    int fetched = 0;
    int expected = 0;
  };

  sim::Engine& engine_;
  const machine::NetworkParams& net_;
  std::map<OpKey, Op> ops_;
  std::map<OpKey, SharedVal> shared_vals_;
  std::unordered_map<std::uint64_t, Comm> split_cache_;
};

// --- Typed wrappers -------------------------------------------------------

namespace detail {
template <typename T>
std::vector<std::byte> to_bytes(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> bytes(sizeof(T));
  std::memcpy(bytes.data(), &value, sizeof(T));
  return bytes;
}
template <typename T>
std::vector<std::byte> to_bytes(const std::vector<T>& values) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> bytes(values.size() * sizeof(T));
  if (!values.empty()) {
    std::memcpy(bytes.data(), values.data(), bytes.size());
  }
  return bytes;
}
template <typename T>
T scalar_from(const std::vector<std::byte>& bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (bytes.size() != sizeof(T)) {
    throw std::logic_error("collective: contribution size mismatch");
  }
  T value;
  std::memcpy(&value, bytes.data(), sizeof(T));
  return value;
}
template <typename T>
std::vector<T> vector_from(const std::vector<std::byte>& bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (bytes.size() % sizeof(T) != 0) {
    throw std::logic_error("collective: contribution not a whole number of T");
  }
  std::vector<T> values(bytes.size() / sizeof(T));
  if (!values.empty()) {
    std::memcpy(values.data(), bytes.data(), bytes.size());
  }
  return values;
}
}  // namespace detail

void barrier(Rank& self, const Comm& comm);

/// Everyone receives root's value.
template <typename T>
T bcast(Rank& self, const Comm& comm, int root, const T& value);

/// Everyone receives [rank0's value, rank1's value, ...].
template <typename T>
std::vector<T> allgather(Rank& self, const Comm& comm, const T& value);

/// Variable-length allgather; result[i] is rank i's vector.
template <typename T>
std::vector<std::vector<T>> allgatherv(Rank& self, const Comm& comm,
                                       const std::vector<T>& values);

/// Root receives all vectors (result[i] = rank i's); others get empties.
template <typename T>
std::vector<std::vector<T>> gatherv(Rank& self, const Comm& comm, int root,
                                    const std::vector<T>& values);

/// `send` has one element per rank; result[j] = what rank j sent to me.
template <typename T>
std::vector<T> alltoall(Rank& self, const Comm& comm,
                        const std::vector<T>& send);

/// Element-wise reduction of everyone's value with `op`.
template <typename T, typename BinaryOp>
T allreduce(Rank& self, const Comm& comm, const T& value, BinaryOp op);

template <typename T>
T allreduce_sum(Rank& self, const Comm& comm, const T& value);
template <typename T>
T allreduce_max(Rank& self, const Comm& comm, const T& value);
template <typename T>
T allreduce_min(Rank& self, const Comm& comm, const T& value);

/// Exclusive prefix sum: rank r receives sum of values of ranks < r (0 at
/// rank 0).
template <typename T>
T exscan_sum(Rank& self, const Comm& comm, const T& value);

/// Inclusive prefix reduction with `op`.
template <typename T, typename BinaryOp>
T scan(Rank& self, const Comm& comm, const T& value, BinaryOp op);

/// Root receives [rank0's value, ...]; others get an empty vector.
template <typename T>
std::vector<T> gather(Rank& self, const Comm& comm, int root, const T& value);

/// Rootward reduction: root receives the element-wise reduction, others T{}.
template <typename T, typename BinaryOp>
T reduce(Rank& self, const Comm& comm, int root, const T& value, BinaryOp op);

/// Root supplies one value per rank; everyone receives theirs.
template <typename T>
T scatter(Rank& self, const Comm& comm, int root, const std::vector<T>& values);

/// Root supplies one vector per rank; everyone receives theirs.
template <typename T>
std::vector<T> scatterv(Rank& self, const Comm& comm, int root,
                        const std::vector<std::vector<T>>& values);

/// Variable-length personalized exchange: send[j] goes to rank j; the
/// result's j-th entry is what rank j sent to me.
template <typename T>
std::vector<std::vector<T>> alltoallv(Rank& self, const Comm& comm,
                                      const std::vector<std::vector<T>>& send);

/// Combined send+recv (deadlock-free pairwise exchange).
/// Returns the bytes received.
std::uint64_t sendrecv(Rank& self, const Comm& comm, int dst, int send_tag,
                       const void* send_data, std::uint64_t send_bytes,
                       int src, int recv_tag, void* recv_buffer,
                       std::uint64_t recv_capacity);

/// Split `comm` by color; members with the same color form a new
/// communicator ordered by (key, world rank). Collective over `comm`.
Comm comm_split(Rank& self, const Comm& comm, int color, int key);

/// Duplicate `comm`: same members and ordering, fresh context id (its
/// point-to-point and collective traffic is isolated). Collective.
Comm comm_dup(Rank& self, const Comm& comm);

// --- template definitions -------------------------------------------------

std::shared_ptr<const CollContribs> coll_run(Rank& self, const Comm& comm,
                                             CollKind kind,
                                             std::vector<std::byte> contribution);
int coll_local_rank(Rank& self, const Comm& comm);
std::shared_ptr<const void> coll_shared_fetch(
    Rank& self, const Comm& comm,
    const std::function<std::shared_ptr<const void>()>& build);

/// Typed front end to CollEngine::shared_fetch: every member of `comm`
/// calls with a `build` that deterministically computes the same T; one
/// member runs it and all of them receive the same immutable object.
template <typename T, typename Build>
std::shared_ptr<const T> shared_once(Rank& self, const Comm& comm,
                                     Build&& build) {
  auto erased =
      coll_shared_fetch(self, comm, [&]() -> std::shared_ptr<const void> {
        return std::make_shared<const T>(build());
      });
  return std::static_pointer_cast<const T>(erased);
}

/// Like allgather, but every member receives the same shared immutable
/// vector instead of a private copy. The exchange (and its cost) is
/// identical to allgather's; only the per-rank materialization is
/// deduplicated. Use for comm-sized metadata on wide communicators, where
/// P private copies of a P-entry vector are quadratic.
template <typename T>
std::shared_ptr<const std::vector<T>> allgather_shared(Rank& self,
                                                       const Comm& comm,
                                                       const T& value) {
  auto all = coll_run(self, comm, CollKind::Allgather, detail::to_bytes(value));
  return shared_once<std::vector<T>>(self, comm, [&] {
    std::vector<T> result;
    result.reserve(all->size());
    for (const auto& contribution : *all) {
      result.push_back(detail::scalar_from<T>(contribution));
    }
    return result;
  });
}

template <typename T>
T bcast(Rank& self, const Comm& comm, int root, const T& value) {
  const bool is_root = coll_local_rank(self, comm) == root;
  auto all = coll_run(self, comm, CollKind::Bcast,
                      is_root ? detail::to_bytes(value)
                              : std::vector<std::byte>{});
  return detail::scalar_from<T>((*all)[static_cast<std::size_t>(root)]);
}

template <typename T>
std::vector<T> allgather(Rank& self, const Comm& comm, const T& value) {
  auto all = coll_run(self, comm, CollKind::Allgather, detail::to_bytes(value));
  std::vector<T> result;
  result.reserve(all->size());
  for (const auto& contribution : *all) {
    result.push_back(detail::scalar_from<T>(contribution));
  }
  return result;
}

template <typename T>
std::vector<std::vector<T>> allgatherv(Rank& self, const Comm& comm,
                                       const std::vector<T>& values) {
  auto all = coll_run(self, comm, CollKind::Allgather, detail::to_bytes(values));
  std::vector<std::vector<T>> result;
  result.reserve(all->size());
  for (const auto& contribution : *all) {
    result.push_back(detail::vector_from<T>(contribution));
  }
  return result;
}

template <typename T>
std::vector<std::vector<T>> gatherv(Rank& self, const Comm& comm, int root,
                                    const std::vector<T>& values) {
  auto all = coll_run(self, comm, CollKind::Gather, detail::to_bytes(values));
  std::vector<std::vector<T>> result;
  if (coll_local_rank(self, comm) == root) {
    result.reserve(all->size());
    for (const auto& contribution : *all) {
      result.push_back(detail::vector_from<T>(contribution));
    }
  }
  return result;
}

template <typename T>
std::vector<T> alltoall(Rank& self, const Comm& comm,
                        const std::vector<T>& send) {
  if (static_cast<int>(send.size()) != comm.size()) {
    throw std::logic_error("alltoall: send vector must have comm.size() items");
  }
  auto all = coll_run(self, comm, CollKind::Alltoall, detail::to_bytes(send));
  const auto me = static_cast<std::size_t>(coll_local_rank(self, comm));
  // Extract only my column — deserializing whole rows would cost O(P^2)
  // per rank, which matters at 1024 ranks x dozens of cycles.
  std::vector<T> result(all->size());
  for (std::size_t j = 0; j < all->size(); ++j) {
    const auto& row = (*all)[j];
    if (row.size() != static_cast<std::size_t>(comm.size()) * sizeof(T)) {
      throw std::logic_error("alltoall: contribution size mismatch");
    }
    std::memcpy(&result[j], row.data() + me * sizeof(T), sizeof(T));
  }
  return result;
}

template <typename T, typename BinaryOp>
T allreduce(Rank& self, const Comm& comm, const T& value, BinaryOp op) {
  auto all = coll_run(self, comm, CollKind::Allreduce, detail::to_bytes(value));
  T accum = detail::scalar_from<T>((*all)[0]);
  for (std::size_t i = 1; i < all->size(); ++i) {
    accum = op(accum, detail::scalar_from<T>((*all)[i]));
  }
  return accum;
}

template <typename T>
T allreduce_sum(Rank& self, const Comm& comm, const T& value) {
  return allreduce(self, comm, value, [](T a, T b) { return a + b; });
}
template <typename T>
T allreduce_max(Rank& self, const Comm& comm, const T& value) {
  return allreduce(self, comm, value, [](T a, T b) { return a < b ? b : a; });
}
template <typename T>
T allreduce_min(Rank& self, const Comm& comm, const T& value) {
  return allreduce(self, comm, value, [](T a, T b) { return b < a ? b : a; });
}

template <typename T>
T exscan_sum(Rank& self, const Comm& comm, const T& value) {
  auto all = coll_run(self, comm, CollKind::Scan, detail::to_bytes(value));
  const int me = coll_local_rank(self, comm);
  T accum{};
  for (int i = 0; i < me; ++i) {
    accum = accum + detail::scalar_from<T>((*all)[static_cast<std::size_t>(i)]);
  }
  return accum;
}

template <typename T, typename BinaryOp>
T scan(Rank& self, const Comm& comm, const T& value, BinaryOp op) {
  auto all = coll_run(self, comm, CollKind::Scan, detail::to_bytes(value));
  const int me = coll_local_rank(self, comm);
  T accum = detail::scalar_from<T>((*all)[0]);
  for (int i = 1; i <= me; ++i) {
    accum = op(accum, detail::scalar_from<T>((*all)[static_cast<std::size_t>(i)]));
  }
  return accum;
}

template <typename T>
std::vector<T> gather(Rank& self, const Comm& comm, int root, const T& value) {
  auto all = coll_run(self, comm, CollKind::Gather, detail::to_bytes(value));
  std::vector<T> result;
  if (coll_local_rank(self, comm) == root) {
    result.reserve(all->size());
    for (const auto& contribution : *all) {
      result.push_back(detail::scalar_from<T>(contribution));
    }
  }
  return result;
}

template <typename T, typename BinaryOp>
T reduce(Rank& self, const Comm& comm, int root, const T& value, BinaryOp op) {
  auto all = coll_run(self, comm, CollKind::Gather, detail::to_bytes(value));
  T accum{};
  if (coll_local_rank(self, comm) == root) {
    accum = detail::scalar_from<T>((*all)[0]);
    for (std::size_t i = 1; i < all->size(); ++i) {
      accum = op(accum, detail::scalar_from<T>((*all)[i]));
    }
  }
  return accum;
}

template <typename T>
T scatter(Rank& self, const Comm& comm, int root,
          const std::vector<T>& values) {
  const bool is_root = coll_local_rank(self, comm) == root;
  if (is_root && static_cast<int>(values.size()) != comm.size()) {
    throw std::logic_error("scatter: root must supply comm.size() values");
  }
  auto all = coll_run(self, comm, CollKind::Bcast,
                      is_root ? detail::to_bytes(values)
                              : std::vector<std::byte>{});
  const auto row = detail::vector_from<T>((*all)[static_cast<std::size_t>(root)]);
  return row.at(static_cast<std::size_t>(coll_local_rank(self, comm)));
}

template <typename T>
std::vector<T> scatterv(Rank& self, const Comm& comm, int root,
                        const std::vector<std::vector<T>>& values) {
  const bool is_root = coll_local_rank(self, comm) == root;
  // Marshal as: per-rank uint64 lengths, then concatenated payloads.
  std::vector<std::byte> contribution;
  if (is_root) {
    if (static_cast<int>(values.size()) != comm.size()) {
      throw std::logic_error("scatterv: root must supply comm.size() vectors");
    }
    std::vector<std::uint64_t> lengths;
    lengths.reserve(values.size());
    std::size_t payload = 0;
    for (const auto& row : values) {
      lengths.push_back(row.size());
      payload += row.size() * sizeof(T);
    }
    contribution = detail::to_bytes(lengths);
    contribution.reserve(contribution.size() + payload);
    for (const auto& row : values) {
      const auto bytes = detail::to_bytes(row);
      contribution.insert(contribution.end(), bytes.begin(), bytes.end());
    }
  }
  auto all = coll_run(self, comm, CollKind::Bcast, std::move(contribution));
  const auto& packed = (*all)[static_cast<std::size_t>(root)];
  const std::size_t header = static_cast<std::size_t>(comm.size()) * 8;
  std::vector<std::uint64_t> lengths(static_cast<std::size_t>(comm.size()));
  std::memcpy(lengths.data(), packed.data(), header);
  std::uint64_t skip = 0;
  const auto me = static_cast<std::size_t>(coll_local_rank(self, comm));
  for (std::size_t i = 0; i < me; ++i) skip += lengths[i];
  std::vector<T> mine(lengths[me]);
  if (!mine.empty()) {
    std::memcpy(mine.data(), packed.data() + header + skip * sizeof(T),
                lengths[me] * sizeof(T));
  }
  return mine;
}

template <typename T>
std::vector<std::vector<T>> alltoallv(Rank& self, const Comm& comm,
                                      const std::vector<std::vector<T>>& send) {
  if (static_cast<int>(send.size()) != comm.size()) {
    throw std::logic_error("alltoallv: send must have comm.size() vectors");
  }
  // Marshal like scatterv: per-destination lengths header plus payloads.
  std::vector<std::uint64_t> lengths;
  lengths.reserve(send.size());
  for (const auto& row : send) lengths.push_back(row.size());
  std::vector<std::byte> contribution = detail::to_bytes(lengths);
  for (const auto& row : send) {
    const auto bytes = detail::to_bytes(row);
    contribution.insert(contribution.end(), bytes.begin(), bytes.end());
  }
  auto all = coll_run(self, comm, CollKind::Alltoall, std::move(contribution));
  const auto me = static_cast<std::size_t>(coll_local_rank(self, comm));
  const std::size_t header = static_cast<std::size_t>(comm.size()) * 8;
  std::vector<std::vector<T>> result(all->size());
  for (std::size_t j = 0; j < all->size(); ++j) {
    const auto& packed = (*all)[j];
    std::vector<std::uint64_t> row_lengths(static_cast<std::size_t>(comm.size()));
    std::memcpy(row_lengths.data(), packed.data(), header);
    std::uint64_t skip = 0;
    for (std::size_t i = 0; i < me; ++i) skip += row_lengths[i];
    result[j].resize(row_lengths[me]);
    if (row_lengths[me] > 0) {
      std::memcpy(result[j].data(),
                  packed.data() + header + skip * sizeof(T),
                  row_lengths[me] * sizeof(T));
    }
  }
  return result;
}

}  // namespace parcoll::mpi
