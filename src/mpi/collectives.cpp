#include "mpi/collectives.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>
#include <tuple>

#include "check/invariants.hpp"
#include "mpi/p2p.hpp"
#include "mpi/runtime.hpp"
#include "mpi/trace.hpp"
#include "obs/metrics.hpp"
#include "sim/random.hpp"

namespace parcoll::mpi {

namespace {
int ceil_log2(int n) {
  if (n <= 1) return 0;
  return std::bit_width(static_cast<unsigned>(n - 1));
}

/// Order-sensitive digest of a communicator's member list, for the
/// collective-match invariant (two comms with the same context id must
/// also agree on membership).
std::uint64_t members_hash(const Comm& comm) {
  std::uint64_t h = comm.context_id();
  for (int member : comm.members()) {
    h = sim::hash_combine(h, static_cast<std::uint64_t>(member));
  }
  return h;
}
}  // namespace

const char* to_string(CollKind kind) {
  switch (kind) {
    case CollKind::Barrier:   return "barrier";
    case CollKind::Bcast:     return "bcast";
    case CollKind::Gather:    return "gather";
    case CollKind::Allgather: return "allgather";
    case CollKind::Alltoall:  return "alltoall";
    case CollKind::Allreduce: return "allreduce";
    case CollKind::Scan:      return "scan";
  }
  return "?";
}

double coll_cost(const machine::NetworkParams& net, CollKind kind, int nranks,
                 std::uint64_t max_contrib, std::uint64_t total) {
  if (nranks <= 1) return 0.0;
  const double hops = static_cast<double>(ceil_log2(nranks));
  const double lat = net.coll_latency;
  const double bw = net.coll_bandwidth;
  switch (kind) {
    case CollKind::Barrier:
      return 2.0 * hops * lat;
    case CollKind::Bcast:
      return hops * lat + static_cast<double>(total) / bw;
    case CollKind::Gather:
      return hops * lat + static_cast<double>(total) / bw;
    case CollKind::Allgather:
      return hops * lat +
             static_cast<double>(total) * (nranks - 1) / nranks / bw;
    case CollKind::Alltoall:
      // The linear-in-P personalized exchange: each rank handles a message
      // (or its overhead) for every peer, plus moving its contribution.
      return static_cast<double>(nranks) * net.alltoall_per_peer +
             static_cast<double>(nranks) * nranks * net.alltoall_congestion +
             static_cast<double>(max_contrib) * (nranks - 1) / nranks / bw;
    case CollKind::Allreduce:
      return 2.0 * hops * lat +
             2.0 * static_cast<double>(max_contrib) / bw;
    case CollKind::Scan:
      return hops * lat + static_cast<double>(max_contrib) / bw;
  }
  return 0.0;
}

CollEngine::CollEngine(sim::Engine& engine, const machine::NetworkParams& net)
    : engine_(engine), net_(net) {}

std::uint64_t CollEngine::derive_context(std::uint64_t parent_ctx,
                                         std::uint64_t seq, int color) const {
  return sim::hash_combine(sim::hash_combine(parent_ctx, seq),
                           static_cast<std::uint64_t>(color) + 0x1234567ull);
}

std::shared_ptr<const CollContribs> CollEngine::exchange(
    Rank& self, const Comm& comm, CollKind kind,
    std::vector<std::byte> contribution) {
  const int me = comm.local_rank(self.rank());
  if (me < 0) {
    throw std::logic_error("collective: caller is not in the communicator");
  }
  const std::uint64_t seq = self.next_coll_seq(comm.context_id());
  const OpKey key{comm.context_id(), seq};

  if (auto* checker = self.world().checker()) {
    // Report before the kind-match throw below, so a mismatch is recorded
    // as a structured violation even though the run then aborts.
    checker->on_collective(self.rank(), comm.context_id(), seq,
                           static_cast<int>(kind), comm.size(),
                           members_hash(comm));
  }

  auto it = ops_.find(key);
  if (it == ops_.end()) {
    Op op;
    op.kind = kind;
    op.expected = comm.size();
    op.contribs.resize(static_cast<std::size_t>(comm.size()));
    it = ops_.emplace(key, std::move(op)).first;
  }
  Op& op = it->second;
  if (op.kind != kind) {
    throw std::logic_error("collective: mismatched collective kinds at the "
                           "same sequence point (program error); schedule=" +
                           engine_.schedule_token());
  }
  const double arrival = engine_.now();
  op.contribs[static_cast<std::size_t>(me)] = std::move(contribution);
  op.max_arrival = std::max(op.max_arrival, arrival);
  ++op.arrived;

  if (op.arrived < op.expected) {
    // Not everyone is here: block until the last arriver releases us.
    op.waiter_pids.push_back(self.pid());
    engine_.suspend("collective");
    // Woken at the completion time.
  } else {
    // Last arriver: compute cost, publish the result, release everyone.
    std::uint64_t max_contrib = 0;
    std::uint64_t total = 0;
    for (const auto& c : op.contribs) {
      max_contrib = std::max<std::uint64_t>(max_contrib, c.size());
      total += c.size();
    }
    const double completion =
        op.max_arrival + coll_cost(net_, kind, op.expected, max_contrib, total);
    op.result = std::make_shared<const CollContribs>(std::move(op.contribs));
    for (sim::ProcId pid : op.waiter_pids) {
      engine_.wake_at(completion, pid);
    }
    op.waiter_pids.clear();
    engine_.sleep_until(completion);
  }

  // Running again at the completion time: charge the synchronization wait.
  const double sync_wait = engine_.now() - arrival;
  self.times().add(TimeCat::Sync, sync_wait);

  auto result = ops_.at(key).result;
  Op& done = ops_.at(key);
  if (auto* metrics = self.world().metrics()) {
    metrics->quantile("mpi.coll.sync_wait_s").observe(sync_wait);
    // How far behind the last arriver this rank showed up: the straggler
    // itself observes lag 0, everyone it kept waiting observes its slack.
    metrics->quantile("mpi.coll.straggler_lag_s")
        .observe(done.max_arrival - arrival);
    ++metrics->counter(std::string("mpi.coll.calls.") + to_string(kind));
  }
  if (++done.fetched == done.expected) {
    ops_.erase(key);
  }
  return result;
}

std::shared_ptr<const void> CollEngine::shared_fetch(
    Rank& self, const Comm& comm,
    const std::function<std::shared_ptr<const void>()>& build) {
  if (comm.local_rank(self.rank()) < 0) {
    throw std::logic_error("shared_fetch: caller is not in the communicator");
  }
  const std::uint64_t seq = self.next_coll_seq(comm.context_id());
  const OpKey key{comm.context_id(), seq};
  auto it = shared_vals_.find(key);
  if (it == shared_vals_.end()) {
    SharedVal val;
    val.value = build();
    val.expected = comm.size();
    it = shared_vals_.emplace(key, std::move(val)).first;
  }
  auto result = it->second.value;
  if (++it->second.fetched == it->second.expected) {
    shared_vals_.erase(it);
  }
  return result;
}

const Comm* CollEngine::cached_split(std::uint64_t ctx) const {
  const auto it = split_cache_.find(ctx);
  return it == split_cache_.end() ? nullptr : &it->second;
}

void CollEngine::cache_split(const Comm& comm) {
  split_cache_.emplace(comm.context_id(), comm);
}

void barrier(Rank& self, const Comm& comm) {
  coll_run(self, comm, CollKind::Barrier, {});
}

std::shared_ptr<const CollContribs> coll_run(Rank& self, const Comm& comm,
                                             CollKind kind,
                                             std::vector<std::byte> contribution) {
  self.maybe_fault_stall();
  // A standalone collective (one issued outside any collective-I/O call,
  // e.g. a workload-level barrier) opens its own Call span so its sync
  // time stays attributable in the wall report. Inside a call, the
  // enclosing cycle/stage spans already label the wait.
  std::optional<SpanGuard> call_span;
  if (Tracer* tracer = self.world().tracer();
      tracer != nullptr && !tracer->spans().in_call(self.pid())) {
    call_span.emplace(self, obs::SpanKind::Call, to_string(kind));
  }
  return self.world().colls().exchange(self, comm, kind, std::move(contribution));
}

int coll_local_rank(Rank& self, const Comm& comm) {
  const int local = comm.local_rank(self.rank());
  if (local < 0) {
    throw std::logic_error("collective: caller is not in the communicator");
  }
  return local;
}

std::shared_ptr<const void> coll_shared_fetch(
    Rank& self, const Comm& comm,
    const std::function<std::shared_ptr<const void>()>& build) {
  return self.world().colls().shared_fetch(self, comm, build);
}

std::uint64_t sendrecv(Rank& self, const Comm& comm, int dst, int send_tag,
                       const void* send_data, std::uint64_t send_bytes,
                       int src, int recv_tag, void* recv_buffer,
                       std::uint64_t recv_capacity) {
  auto& p2p = self.world().p2p();
  Request requests[2] = {
      p2p.irecv(self, comm, src, recv_tag, recv_buffer, recv_capacity),
      p2p.isend(self, comm, dst, send_tag, send_data, send_bytes),
  };
  p2p.waitall(self, requests);
  return requests[0].transferred();
}

Comm comm_split(Rank& self, const Comm& comm, int color, int key) {
  // Gather (color, key, world rank) from everyone; build my color's comm.
  struct Entry {
    int color;
    int key;
    int world;
  };
  const std::uint64_t seq = self.next_coll_seq(comm.context_id());
  // Reuse the allgather machinery for the split's metadata exchange. Note:
  // the sequence number above is reserved for context derivation; the
  // allgather below consumes the next one, which is fine because all ranks
  // do both in the same order.
  auto all = coll_run(self, comm, CollKind::Allgather,
                      detail::to_bytes(Entry{color, key, self.rank()}));

  auto& colls = self.world().colls();
  const std::uint64_t my_ctx =
      colls.derive_context(comm.context_id(), seq, color);
  // The first member through builds every color's communicator from the
  // shared exchange and publishes them by derived context id; everyone
  // else aliases a published member table. Building per caller would cost
  // an O(P) scan per rank plus an O(group) private copy per member —
  // quadratic on wide communicators.
  if (const Comm* cached = colls.cached_split(my_ctx)) {
    return *cached;
  }
  std::map<int, std::vector<Entry>> by_color;
  for (const auto& bytes : *all) {
    const Entry entry = detail::scalar_from<Entry>(bytes);
    by_color[entry.color].push_back(entry);
  }
  Comm mine;
  for (auto& [group_color, group] : by_color) {
    std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
      return std::tie(a.key, a.world) < std::tie(b.key, b.world);
    });
    std::vector<int> members;
    members.reserve(group.size());
    for (const Entry& entry : group) {
      members.push_back(entry.world);
    }
    Comm built(colls.derive_context(comm.context_id(), seq, group_color),
               std::move(members));
    if (group_color == color) {
      mine = built;
    }
    colls.cache_split(built);
  }
  return mine;
}

Comm comm_dup(Rank& self, const Comm& comm) {
  return comm_split(self, comm, /*color=*/0, comm.local_rank(self.rank()));
}

}  // namespace parcoll::mpi
