#include "workloads/tileio.hpp"

#include <stdexcept>

#include "core/parcoll.hpp"
#include "mpi/collectives.hpp"
#include "mpiio/file.hpp"
#include "mpiio/independent.hpp"
#include "mpiio/sieve.hpp"
#include "workloads/pattern.hpp"

namespace parcoll::workloads {

namespace {
constexpr std::uint64_t kSalt = 0x711E;
}

TileIOConfig TileIOConfig::paper(int nranks) {
  TileIOConfig config;
  config.tiles_x = nranks >= 8 ? 8 : nranks;
  return config;
}

dtype::Datatype TileIOConfig::filetype(int rank, int nranks) const {
  if (tiles_x <= 0 || nranks % tiles_x != 0) {
    throw std::invalid_argument("TileIOConfig: tiles_x must divide nranks");
  }
  const int ty = rank / tiles_x;
  const int tx = rank % tiles_x;
  const std::int64_t rows = static_cast<std::int64_t>(tiles_y(nranks)) *
                            static_cast<std::int64_t>(tile_h);
  const std::int64_t cols = static_cast<std::int64_t>(tiles_x) *
                            static_cast<std::int64_t>(tile_w);
  const std::int64_t sizes[2] = {rows, cols};
  // Overlap extends the sub-block into the neighbours, clamped at edges.
  std::int64_t y0 = static_cast<std::int64_t>(ty) *
                        static_cast<std::int64_t>(tile_h) -
                    static_cast<std::int64_t>(overlap_y);
  std::int64_t x0 = static_cast<std::int64_t>(tx) *
                        static_cast<std::int64_t>(tile_w) -
                    static_cast<std::int64_t>(overlap_x);
  std::int64_t y1 = static_cast<std::int64_t>(ty + 1) *
                        static_cast<std::int64_t>(tile_h) +
                    static_cast<std::int64_t>(overlap_y);
  std::int64_t x1 = static_cast<std::int64_t>(tx + 1) *
                        static_cast<std::int64_t>(tile_w) +
                    static_cast<std::int64_t>(overlap_x);
  y0 = std::max<std::int64_t>(y0, 0);
  x0 = std::max<std::int64_t>(x0, 0);
  y1 = std::min(y1, rows);
  x1 = std::min(x1, cols);
  const std::int64_t subsizes[2] = {y1 - y0, x1 - x0};
  const std::int64_t starts[2] = {y0, x0};
  return dtype::Datatype::subarray(sizes, subsizes, starts,
                                   dtype::Datatype::bytes(elem_size));
}

std::uint64_t TileIOConfig::rank_bytes_overlapped(int rank, int nranks) const {
  return filetype(rank, nranks).size();
}

RunResult run_tileio(const TileIOConfig& config, int nranks,
                     const RunSpec& spec, bool write) {
  mpi::World world(spec.model(nranks), spec.byte_true);
  world.set_fault(spec.fault);
  apply_observability(world, spec);
  const mpiio::Hints hints = spec.hints();
  PhaseClock clock;
  mpiio::FileStats final_stats;
  bool verified = true;

  if (write && (config.overlap_x > 0 || config.overlap_y > 0)) {
    throw std::invalid_argument(
        "run_tileio: overlapped tiles are read-only (overlapping concurrent "
        "writes are ill-defined)");
  }
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "tileio.dat", hints);
    file.set_view(0, config.elem_size, config.filetype(self.rank(), nranks));
    const dtype::Datatype memtype =
        dtype::Datatype::bytes(config.rank_bytes_overlapped(self.rank(),
                                                            nranks));

    const std::uint64_t my_bytes = memtype.size();
    std::vector<std::byte> buffer;
    std::vector<fs::Extent> extents;
    if (spec.byte_true) {
      extents = file.view().map(0, my_bytes);
      buffer.resize(my_bytes);
      if (write) {
        fill_buffer_for_extents(buffer.data(), memtype, 1, extents, kSalt);
      } else {
        // Pre-populate the file (outside the measured phase) so the read
        // has real bytes to fetch.
        fill_buffer_for_extents(buffer.data(), memtype, 1, extents, kSalt);
        file.write_at(0, buffer.data(), 1, memtype);
        std::fill(buffer.begin(), buffer.end(), std::byte{0});
      }
    }
    const void* out_data = buffer.empty() ? nullptr : buffer.data();
    void* in_data = buffer.empty() ? nullptr : buffer.data();

    mpi::barrier(self, file.comm());
    clock.begin(self.now());
    switch (spec.impl) {
      case Impl::PosixIndependent:
        write ? mpiio::posix_write_at(file, 0, out_data, 1, memtype)
              : mpiio::posix_read_at(file, 0, in_data, 1, memtype);
        break;
      case Impl::Sieving:
        write ? mpiio::sieve_write_at(file, 0, out_data, 1, memtype)
              : mpiio::sieve_read_at(file, 0, in_data, 1, memtype);
        break;
      case Impl::Independent:
        write ? file.write_at(0, out_data, 1, memtype)
              : file.read_at(0, in_data, 1, memtype);
        break;
      case Impl::Ext2ph:
      case Impl::ParColl:
        if (write) {
          core::write_at_all(file, 0, out_data, 1, memtype);
        } else {
          core::read_at_all(file, 0, in_data, 1, memtype);
        }
        break;
    }
    mpi::barrier(self, file.comm());
    clock.end(self.now());

    // Close before auditing and snapshotting: close drains any staged
    // burst-buffer data and folds the drain time into the file stats.
    file.close();
    if (spec.byte_true) {
      if (write) {
        auto* store =
            dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
        verified = verified && store != nullptr &&
                   verify_store(*store, file.fs_id(), extents, kSalt);
      } else {
        verified = verified && check_buffer_for_extents(buffer.data(), memtype,
                                                        1, extents, kSalt);
      }
    }
    if (self.rank() == 0) {
      final_stats = file.stats();
    }
  });

  RunResult result = collect(world, clock,
                             config.file_bytes(nranks), final_stats);
  result.verified = verified;
  return result;
}

}  // namespace parcoll::workloads
