# Empty compiler generated dependencies file for group_size_explorer.
# This may be replaced when dependencies are built.
