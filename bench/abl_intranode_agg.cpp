// Ablation — two-level collective I/O (intra-node request aggregation).
//
// The collective wall grows with the number of participants in each
// global exchange. Two-level staging merges the requests of the processes
// sharing a physical node over memory first, so only one leader per node
// joins the inter-node ext2ph — P/c participants instead of P for c cores
// per node. The sweep varies cores per node at fixed P and compares
// ext2ph and ParColl with and without the intra-node stage; the sync
// column is the in-call synchronization time (summed over ranks) that the
// participant reduction attacks, and the intra column is what the extra
// level costs.
//
// All series run the ROMIO/Lustre aggregator layout — one aggregator per
// physical node (cb_nodes = node count) — which is the setting the
// intra-node aggregation design assumes: the node leaders ARE the
// aggregators, so staging changes who coordinates, not who writes. (Under
// the Catamount every-process-aggregates default the comparison would
// instead trade I/O parallelism for coordination, which is the case the
// Auto mode's cost gate declines.)
//
// At one core per node there is nothing to merge: the two-level runs are
// structurally identical to their flat counterparts (the activation rule
// degenerates), which the table shows as matching rows.
#include "bench/common.hpp"
#include "core/file_area.hpp"
#include "workloads/tileio.hpp"

int main(int argc, char** argv) {
  const bool smoke = parcoll::bench::smoke_requested(argc, argv);
  using namespace parcoll;
  using namespace parcoll::bench;

  BenchReport report("abl_intranode_agg", argc, argv);
  const int nprocs = scaled(smoke, 256);
  const auto config = workloads::TileIOConfig::paper(nprocs);

  header("Ablation: intra-node request aggregation",
         "Tile-IO (P=" + std::to_string(nprocs) +
             "), two-level staging vs flat, by cores per node");
  std::printf("  %5s %-22s %10s %10s %10s %10s\n", "c/n", "series",
              "MiB/s", "elapsed s", "sync s", "intra s");

  const auto run = [&](const char* name, int cores, bool intranode,
                       bool use_parcoll) {
    workloads::RunSpec spec = use_parcoll ? parcoll_spec(core::kAutoGroups)
                                          : baseline_spec();
    spec.cores_per_node = cores;
    spec.cb_nodes = (nprocs + cores - 1) / cores;  // one aggregator per node
    spec.intranode = intranode ? node::IntranodeMode::On
                               : node::IntranodeMode::Off;
    const auto result = workloads::run_tileio(config, nprocs, spec, true);
    // In-call times: non-leaders leave the collective early under
    // two-level staging and idle in the workload's closing barrier, so the
    // file's profile (time inside the I/O calls) is the honest comparison.
    std::printf("  %5d %-22s %10.1f %10.3f %10.2f %10.2f\n", cores, name,
                result.bandwidth_mib(), result.elapsed,
                result.stats.time[mpi::TimeCat::Sync],
                result.stats.time[mpi::TimeCat::Intra]);
    report.add(std::string(name) + "/c=" + std::to_string(cores), nprocs,
               result);
    return result;
  };

  for (int cores : {1, 2, 4, 8}) {
    run("ext2ph", cores, false, false);
    run("ext2ph+intranode", cores, true, false);
    run("parcoll", cores, false, true);
    run("parcoll+intranode", cores, true, true);
    std::printf("\n");
  }
  footnote("two-level staging cuts the per-cycle exchange from P to P/c");
  footnote("participants; against plain ext2ph the win grows with cores per");
  footnote("node. Composed with ParColl the sync column still collapses;");
  footnote("elapsed gains peak when subgroups fit one node (collective I/O");
  footnote("degenerates to local I/O) and flatten when groups already sit");
  footnote("below the collective wall");
  return 0;
}
