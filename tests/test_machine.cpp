// Topology (block/cyclic rank->node mapping) and the machine model defaults.
#include <gtest/gtest.h>

#include "machine/machine_model.hpp"
#include "sim/random.hpp"

namespace parcoll::machine {
namespace {

TEST(Topology, BlockMappingMatchesPaperFig5) {
  // Fig. 5 block column: N0(P0,P1) N1(P2,P3) N2(P4,P5) N3(P6,P7).
  const Topology topo(8, 2, Mapping::Block);
  EXPECT_EQ(topo.num_nodes(), 4);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(1), 0);
  EXPECT_EQ(topo.node_of(2), 1);
  EXPECT_EQ(topo.node_of(5), 2);
  EXPECT_EQ(topo.node_of(7), 3);
  EXPECT_EQ(topo.ranks_on_node(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(topo.ranks_on_node(3), (std::vector<int>{6, 7}));
}

TEST(Topology, CyclicMappingMatchesPaperFig5) {
  // Fig. 5 cyclic column: N0(P0,P4) N1(P1,P5) N2(P2,P6) N3(P3,P7).
  const Topology topo(8, 2, Mapping::Cyclic);
  EXPECT_EQ(topo.num_nodes(), 4);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(4), 0);
  EXPECT_EQ(topo.node_of(1), 1);
  EXPECT_EQ(topo.node_of(6), 2);
  EXPECT_EQ(topo.ranks_on_node(0), (std::vector<int>{0, 4}));
  EXPECT_EQ(topo.ranks_on_node(2), (std::vector<int>{2, 6}));
}

TEST(Topology, UnevenLastNode) {
  const Topology topo(7, 2, Mapping::Block);
  EXPECT_EQ(topo.num_nodes(), 4);
  EXPECT_EQ(topo.ranks_on_node(3), (std::vector<int>{6}));
}

TEST(Topology, BadArgumentsThrow) {
  EXPECT_THROW(Topology(0, 2), std::invalid_argument);
  EXPECT_THROW(Topology(4, 0), std::invalid_argument);
  const Topology topo(4, 2);
  EXPECT_THROW(static_cast<void>(topo.node_of(-1)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(topo.node_of(4)), std::out_of_range);
  EXPECT_THROW(topo.ranks_on_node(2), std::out_of_range);
}

TEST(MachineModel, JaguarDefaultsMatchPaperTestbed) {
  const MachineModel model = MachineModel::jaguar(512);
  EXPECT_EQ(model.topology.cores_per_node(), 2);  // dual-core PEs
  EXPECT_EQ(model.topology.num_nodes(), 256);
  EXPECT_EQ(model.storage.num_osts, 72);          // the tested file system
  EXPECT_EQ(model.storage.default_stripe_count, 64);
  EXPECT_EQ(model.storage.default_stripe_size, 4ull << 20);
}

TEST(Random, JitterIsDeterministicAndInRange) {
  for (std::uint64_t seed : {1ull, 42ull, 12345ull}) {
    for (std::uint64_t seq = 0; seq < 100; ++seq) {
      const double a = sim::jitter01(seed, 7, seq);
      const double b = sim::jitter01(seed, 7, seq);
      EXPECT_EQ(a, b);
      EXPECT_GE(a, 0.0);
      EXPECT_LT(a, 1.0);
    }
  }
}

TEST(Random, DistinctStreamsDiffer) {
  int same = 0;
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    if (sim::jitter01(42, 1, seq) == sim::jitter01(42, 2, seq)) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Random, Mix64AvalanchesLowBits) {
  // Consecutive inputs should produce wildly different outputs.
  EXPECT_NE(sim::mix64(1) & 0xffff, sim::mix64(2) & 0xffff);
  EXPECT_NE(sim::mix64(0), sim::mix64(1));
}

TEST(MachineModel, FileSystemPersonalities) {
  const MachineModel gpfs = MachineModel::gpfs_like(64);
  EXPECT_EQ(gpfs.storage.num_osts, 32);
  EXPECT_EQ(gpfs.storage.default_stripe_size, 1ull << 20);
  EXPECT_EQ(gpfs.storage.lock_dirty_cap, 0u);  // token locks, no flush
  const MachineModel pvfs = MachineModel::pvfs_like(64);
  EXPECT_DOUBLE_EQ(pvfs.storage.lock_revoke_overhead, 0.0);  // no locking
  EXPECT_DOUBLE_EQ(pvfs.storage.flock_server_time, 0.0);
  // The compute side stays the Jaguar-like machine.
  EXPECT_EQ(pvfs.topology.cores_per_node(), 2);
}

}  // namespace
}  // namespace parcoll::machine
