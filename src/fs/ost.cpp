#include "fs/ost.hpp"

#include <algorithm>
#include <limits>

#include "sim/random.hpp"

namespace parcoll::fs {

namespace {
constexpr std::uint64_t kInfinity = std::numeric_limits<std::uint64_t>::max();
}

double OstModel::slowdown(double at) const {
  if (params_.slow_epoch_seconds <= 0) return 1.0;
  const auto epoch = static_cast<std::uint64_t>(at / params_.slow_epoch_seconds);
  const std::uint64_t h = sim::hash_combine(
      sim::hash_combine(sim::mix64(params_.seed ^ 0x5105105105105105ull),
                        static_cast<std::uint64_t>(id_)),
      epoch);
  const double u = sim::uniform01(h);
  if (u < 1.0 - params_.slow_prob - params_.very_slow_prob) {
    return 1.0;
  }
  // Reuse more bits of the hash for the factor within the band.
  const double v = sim::uniform01(sim::mix64(h));
  if (u < 1.0 - params_.very_slow_prob) {
    return 1.0 + v * (params_.slow_factor - 1.0);
  }
  return params_.slow_factor +
         v * (params_.very_slow_factor - params_.slow_factor);
}

double OstModel::acquire_write_lock(GrantMap& grants, int client,
                                    std::uint64_t offset, std::uint64_t end,
                                    std::uint64_t bytes) {
  double cost = 0.0;
  // Find every grant overlapping [offset, end); trim or remove the foreign
  // ones (each trim/removal is one revocation: the holder flushes and
  // drops the conflicting part of its lock).
  auto it = grants.upper_bound(offset);
  if (it != grants.begin()) {
    --it;  // may still overlap if its end > offset
  }
  bool already_covered_by_self = false;
  while (it != grants.end() && it->first < end) {
    const std::uint64_t g_start = it->first;
    const std::uint64_t g_end = it->second.end;
    if (g_end <= offset) {
      ++it;
      continue;
    }
    if (it->second.client == client) {
      if (g_start <= offset && g_end >= end) {
        already_covered_by_self = true;
        it->second.dirty =
            std::min<std::uint64_t>(it->second.dirty + bytes,
                                    params_.lock_dirty_cap);
      }
      ++it;
      continue;
    }
    // Foreign overlapping grant: revoke it. The holder flushes its dirty
    // bytes and keeps only the part below the new writer (its actively
    // written range); the speculative forward extension is cancelled
    // outright — retaining it would make every subsequent streaming RPC of
    // the new writer conflict again.
    ++lock_switches_;
    cost += params_.lock_revoke_overhead +
            static_cast<double>(it->second.dirty) / params_.ost_bandwidth;
    const int other = it->second.client;
    const std::uint64_t left_end = std::min(g_end, offset);
    it = grants.erase(it);
    if (g_start < left_end) {
      grants.emplace(g_start, Grant{left_end, other, 0});
    }
  }
  if (already_covered_by_self) {
    return cost;  // nothing to install
  }
  // Install the new grant, extended into the free gap around the request
  // (Lustre hands out as much as it can so streaming writers stop asking).
  std::uint64_t new_start = 0;
  std::uint64_t new_end = kInfinity;
  std::uint64_t dirty = std::min<std::uint64_t>(bytes, params_.lock_dirty_cap);
  auto next = grants.lower_bound(offset);
  if (next != grants.begin()) {
    auto prev = std::prev(next);
    if (prev->second.client == client && prev->second.end >= offset) {
      // Merge with our own adjacent grant.
      new_start = prev->first;
      dirty = std::min<std::uint64_t>(dirty + prev->second.dirty,
                                      params_.lock_dirty_cap);
      grants.erase(prev);
      next = grants.lower_bound(offset);
    } else {
      new_start = prev->second.end;
    }
  }
  if (next != grants.end()) {
    if (next->second.client == client && next->first <= end) {
      new_end = next->second.end;
      dirty = std::min<std::uint64_t>(dirty + next->second.dirty,
                                      params_.lock_dirty_cap);
      grants.erase(next);
    } else {
      new_end = next->first;
    }
  }
  grants.emplace(new_start, Grant{new_end, client, dirty});
  return cost;
}

ServeOutcome OstModel::serve(double ready, int file_id, int client,
                             std::uint64_t lock_lo, std::uint64_t lock_hi,
                             std::uint64_t bytes, bool is_write,
                             std::uint64_t fragments, bool force) {
  double delay = 0.0;
  if (fault_plan_ != nullptr && !force) {
    // A request swallowed by a fault leaves no trace on the OST: no busy
    // time reserved, no request_seq_ advance — only the draw counter moves,
    // so a retry of the same RPC gets fresh randomness.
    if (fault_plan_->ost_down(id_, ready)) {
      return {ready, false};
    }
    const std::uint64_t draw = fault_draws_++;
    if (fault_plan_->drop_rpc(id_, draw)) {
      if (fault_state_ != nullptr) {
        ++fault_state_->of(client).drops;
      }
      return {ready, false};
    }
    if (fault_plan_->delay_rpc(id_, draw)) {
      delay = fault_plan_->rpc_delay_seconds;
      if (fault_state_ != nullptr) {
        ++fault_state_->of(client).delays;
      }
    }
  }
  const double start = std::max(ready, busy_until_);
  double service = params_.request_overhead +
                   static_cast<double>(bytes) / params_.ost_bandwidth;
  if (fragments > 1) {
    service += static_cast<double>(fragments - 1) * params_.fragment_overhead;
  }
  const double jitter = sim::jitter01(params_.seed,
                                      static_cast<std::uint64_t>(id_),
                                      request_seq_);
  service *= 1.0 + params_.jitter_frac * jitter;
  service *= slowdown(start);
  if (fault_plan_ != nullptr && !force) {
    service *= fault_plan_->degrade_factor(id_, start);
    service += delay;
  }
  if (is_write) {
    service += acquire_write_lock(grants_by_file_[file_id], client, lock_lo,
                                  lock_hi, bytes);
  }
  ++request_seq_;
  busy_until_ = start + service;
  service_seconds_ += service;
  bytes_served_ += bytes;
  inflight_.emplace_back(busy_until_, bytes);
  inflight_sum_ += bytes;
  // Amortized prune: RPCs complete in FIFO order, so everything done by
  // `ready` sits at the front.
  while (!inflight_.empty() && inflight_.front().first <= ready) {
    inflight_sum_ -= inflight_.front().second;
    inflight_.pop_front();
  }
  return {busy_until_, true};
}

std::uint64_t OstModel::inflight_bytes(double now) {
  while (!inflight_.empty() && inflight_.front().first <= now) {
    inflight_sum_ -= inflight_.front().second;
    inflight_.pop_front();
  }
  return inflight_sum_;
}

}  // namespace parcoll::fs
