#include "obs/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json.hpp"

namespace parcoll::obs {

namespace {
// 1 / log(kGamma), precomputed once; the bucket index is a single log and
// multiply per observation.
const double kInvLogGamma = 1.0 / std::log(QuantileHistogram::kGamma);
}  // namespace

std::size_t QuantileHistogram::bucket_of(double value) {
  if (value <= kMin) {
    return 0;
  }
  const double index = std::floor(std::log(value / kMin) * kInvLogGamma);
  if (index >= static_cast<double>(kBuckets - 1)) {
    return kBuckets - 1;
  }
  return static_cast<std::size_t>(index);
}

double QuantileHistogram::bucket_value(std::size_t i) {
  // Geometric midpoint of [kMin·γ^i, kMin·γ^(i+1)): the estimate is off by
  // at most a factor of √γ ≈ 1.01 from any value in the bucket.
  return kMin * std::pow(kGamma, static_cast<double>(i) + 0.5);
}

void QuantileHistogram::observe(double value) {
  if (counts_.empty()) {
    counts_.assign(kBuckets + 1, 0);
  }
  if (value <= 0.0) {
    ++counts_[kBuckets];  // non-positive: its own slot, reported as 0
  } else {
    ++counts_[bucket_of(value)];
  }
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void QuantileHistogram::merge(const QuantileHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (counts_.empty()) {
    counts_.assign(kBuckets + 1, 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double QuantileHistogram::quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // The extremes are tracked exactly; don't pay bucket error there.
  if (q <= 0.0) {
    return min_;
  }
  if (q >= 1.0) {
    return max_;
  }
  // The rank of the order statistic we estimate: the smallest observation
  // with at least ⌈q·n⌉ observations at or below it.
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = counts_[kBuckets];  // non-positive values sort first
  if (seen >= target && seen > 0) {
    return std::min(0.0, min_);
  }
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= target) {
      return std::clamp(bucket_value(i), min_, max_);
    }
  }
  return max_;
}

JsonValue QuantileHistogram::summary_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("count", count_);
  doc.set("sum_s", sum_);
  doc.set("min_s", min());
  doc.set("max_s", max());
  doc.set("mean_s", mean());
  doc.set("p50_s", quantile(0.50));
  doc.set("p95_s", quantile(0.95));
  doc.set("p99_s", quantile(0.99));
  doc.set("p999_s", quantile(0.999));
  return doc;
}

}  // namespace parcoll::obs
