# Empty compiler generated dependencies file for abl_adaptive_groups.
# This may be replaced when dependencies are built.
