// Figure 11 — "The Performance of Flash IO".
//
// The Flash I/O checkpoint (24 variables, 80 blocks of 32^3 doubles per
// process — 486 GB at 1024 processes) written at 1024 processes:
//   * default aggregator selection (every process) vs 64 I/O aggregators
//     (the fewer-aggregators configuration recommended for very large
//     scale on the Cray XT),
//   * Cray baseline vs ParColl-64,
//   * and "Cray w/o Coll": independent writes, which collapse.
// The paper: ParColl-64 improves the default-aggregator bandwidth by
// 38.5%; without collective I/O the checkpoint writes at ~60 MB/s.
#include "bench/common.hpp"
#include "workloads/flashio.hpp"

#include <string>

int main(int argc, char** argv) {
  using namespace parcoll;
  using namespace parcoll::bench;
  BenchReport report("fig11_flashio", argc, argv);

  const int nprocs = 1024;
  const workloads::FlashConfig config;  // paper parameters
  header("Figure 11", "Flash I/O checkpoint write, 1024 processes (486 GB)");

  const auto add_row = [&](const std::string& label, const std::string& key,
                           const workloads::RunResult& result) {
    row(label, result);
    report.add(key, nprocs, result);
  };

  std::printf("  --- default I/O aggregator selection ---\n");
  add_row("Cray (ext2ph)", "default/cray",
          workloads::run_flashio(config, nprocs, baseline_spec(), true));
  add_row("ParColl-64", "default/parcoll-64",
          workloads::run_flashio(config, nprocs, parcoll_spec(64), true));

  std::printf("  --- 64 I/O aggregators (cb_nodes = 64) ---\n");
  {
    auto spec = baseline_spec();
    spec.cb_nodes = 64;
    add_row("Cray (ext2ph)", "cb64/cray",
            workloads::run_flashio(config, nprocs, spec, true));
  }
  {
    auto spec = parcoll_spec(64);
    spec.cb_nodes = 64;
    add_row("ParColl-64", "cb64/parcoll-64",
            workloads::run_flashio(config, nprocs, spec, true));
  }

  std::printf("  --- through the HDF5 container (the paper's stack) ---\n");
  {
    // Bulk data plus HDF5 metadata (dataset table flushes, per-block
    // record datasets), as real Flash I/O writes it.
    add_row("Cray (ext2ph, h5)", "h5/cray",
            workloads::run_flashio_h5(config, nprocs, baseline_spec()));
    add_row("ParColl-64 (h5)", "h5/parcoll-64",
            workloads::run_flashio_h5(config, nprocs, parcoll_spec(64)));
  }

  std::printf("  --- without collective I/O ---\n");
  {
    // What MPI-IO/HDF5 independent strided writes really do: data sieving
    // with locked read-modify-write windows.
    auto spec = posix_spec();
    spec.impl = workloads::Impl::Sieving;
    add_row("Cray w/o Coll", "sieving/cray",
            workloads::run_flashio(config, nprocs, spec, true));
  }

  footnote("paper: ParColl-64 +38.5% over the default; w/o collective I/O");
  footnote("the checkpoint writes at ~60 MB/s — collective I/O is essential");
  return 0;
}
