// Subgroup formation: FA partition + sub-communicator + aggregator
// distribution, bundled for one collective call.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/file_area.hpp"
#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "mpiio/hints.hpp"

namespace parcoll::core {

struct SubgroupPlan {
  FileAreaPlan fa;
  /// This rank's subgroup communicator (== the parent comm when the plan
  /// degenerates to a single group).
  mpi::Comm subcomm;
  int my_group = 0;
  /// Aggregators of my subgroup, as subcomm-local ranks (sorted).
  std::vector<int> sub_aggregators;
  /// Aggregators of every group, as parent-comm-local ranks.
  std::vector<std::vector<int>> aggs_per_group;
};

/// Form subgroups for a collective call. Collective over `comm`: every
/// member must call with the same `accesses` (the allgathered per-rank
/// access summaries) and hints, and all of them compute identical plans.
SubgroupPlan form_subgroups(mpi::Rank& self, const mpi::Comm& comm,
                            const std::vector<RankAccess>& accesses,
                            const mpiio::Hints& hints);

}  // namespace parcoll::core
