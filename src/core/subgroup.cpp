#include "core/subgroup.hpp"

#include <stdexcept>

#include "core/aggregator_dist.hpp"
#include "mpi/collectives.hpp"
#include "mpiio/ext2ph.hpp"

namespace parcoll::core {

SubgroupPlan form_subgroups(mpi::Rank& self, const mpi::Comm& comm,
                            const std::vector<RankAccess>& accesses,
                            const mpiio::Hints& hints) {
  const ParcollSettings settings = ParcollSettings::from(hints);
  SubgroupPlan plan;
  plan.fa = partition_file_areas(accesses, settings.num_groups,
                                 settings.min_group_size,
                                 settings.view_switch);
  const int me = comm.local_rank(self.rank());
  const auto& topology = self.world().model().topology;

  if (plan.fa.mode == PartitionMode::SingleGroup) {
    plan.subcomm = comm;
    plan.my_group = 0;
    plan.sub_aggregators = mpiio::default_aggregators(topology, comm, hints);
    plan.aggs_per_group = {plan.sub_aggregators};
    return plan;
  }

  plan.my_group = plan.fa.group_of_rank[static_cast<std::size_t>(me)];
  // The split is itself a (cheap, one-shot) global collective — ParColl
  // reduces synchronization, it does not eliminate the setup exchange.
  plan.subcomm = mpi::comm_split(self, comm, plan.my_group, me);

  if (hints.cb_node_list.empty() && hints.cb_nodes == 0) {
    // No aggregator hints: like the baseline default, every process
    // aggregates — here, within its own subgroup.
    plan.aggs_per_group.assign(static_cast<std::size_t>(plan.fa.num_groups),
                               {});
    for (int local = 0; local < comm.size(); ++local) {
      plan.aggs_per_group[static_cast<std::size_t>(
                              plan.fa.group_of_rank[static_cast<std::size_t>(
                                  local)])]
          .push_back(local);
    }
  } else {
    // Aggregator hints given: re-distribute the node list over subgroups
    // with the paper's Fig. 5 algorithm.
    const std::vector<int> nodes = aggregator_node_list(
        topology, comm, hints.cb_node_list, hints.cb_nodes);
    plan.aggs_per_group = distribute_aggregators(
        topology, comm, nodes, plan.fa.group_of_rank, plan.fa.num_groups);
  }

  // Convert my group's aggregators to subcomm-local ranks.
  for (int local : plan.aggs_per_group[static_cast<std::size_t>(plan.my_group)]) {
    const int sub_local = plan.subcomm.local_rank(comm.world_rank(local));
    if (sub_local < 0) {
      throw std::logic_error("form_subgroups: aggregator not in subgroup");
    }
    plan.sub_aggregators.push_back(sub_local);
  }
  std::sort(plan.sub_aggregators.begin(), plan.sub_aggregators.end());
  return plan;
}

std::vector<int> reelect_stalled_aggregators(
    const mpi::Comm& subcomm, const std::vector<int>& sub_aggregators,
    const fault::FaultPlan& plan, double agreed_now, int* replaced) {
  if (replaced != nullptr) {
    *replaced = 0;
  }
  auto stalled = [&](int sub_local) {
    return plan.stall_remaining(subcomm.world_rank(sub_local), agreed_now) >
           plan.agg_stall_threshold;
  };
  std::vector<int> roster = sub_aggregators;
  std::vector<char> is_agg(static_cast<std::size_t>(subcomm.size()), 0);
  for (int agg : roster) {
    is_agg[static_cast<std::size_t>(agg)] = 1;
  }
  for (int& agg : roster) {
    if (!stalled(agg)) {
      continue;
    }
    // Lowest healthy non-aggregator local rank substitutes — the same
    // deterministic choice on every member of the subgroup.
    for (int candidate = 0; candidate < subcomm.size(); ++candidate) {
      if (is_agg[static_cast<std::size_t>(candidate)] || stalled(candidate)) {
        continue;
      }
      is_agg[static_cast<std::size_t>(agg)] = 0;
      is_agg[static_cast<std::size_t>(candidate)] = 1;
      agg = candidate;
      if (replaced != nullptr) {
        ++*replaced;
      }
      break;
    }
  }
  std::sort(roster.begin(), roster.end());
  return roster;
}

}  // namespace parcoll::core
