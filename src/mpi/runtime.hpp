// SPMD runtime: World owns the simulated machine, Rank is the per-process
// handle a simulated MPI program receives.
//
// Usage:
//   World world(machine::MachineModel::jaguar(64));
//   world.run([&](Rank& self) { ... ordinary blocking MPI-style code ... });
//
// Every rank runs the same function on its own fiber; the World collects
// each rank's time breakdown when the program finishes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "machine/machine_model.hpp"
#include "mpi/comm.hpp"
#include "mpi/timecat.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace parcoll::fs {
class LustreSim;
class IntegrityManager;
struct IntegrityConfig;
enum class StoreMode;
}  // namespace parcoll::fs

namespace parcoll::obs {
class MetricsRegistry;
class TimeSeriesSampler;
}  // namespace parcoll::obs

namespace parcoll::check {
class InvariantChecker;
}  // namespace parcoll::check

namespace parcoll::mpi {

class P2PEngine;
class CollEngine;
class Rank;
class Tracer;

class World {
 public:
  /// `byte_true` selects the file-system payload mode: true stores and
  /// verifies real bytes (tests), false tracks extents only (large benches).
  explicit World(machine::MachineModel model, bool byte_true = true);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Run the SPMD `program` on every rank to completion. One run per World.
  void run(std::function<void(Rank&)> program);

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] P2PEngine& p2p() { return *p2p_; }
  [[nodiscard]] CollEngine& colls() { return *colls_; }
  [[nodiscard]] fs::LustreSim& fs() { return *fs_; }
  [[nodiscard]] const machine::MachineModel& model() const { return model_; }
  [[nodiscard]] Comm world_comm() const { return world_comm_; }
  [[nodiscard]] int nranks() const { return model_.topology.nranks(); }

  /// Virtual time at which the last rank finished (valid after run()).
  [[nodiscard]] double elapsed() const { return elapsed_; }

  /// True when the file system stores real bytes (tests) rather than
  /// phantom extents (benches). Protocol engines consult this to decide
  /// whether to materialize exchange buffers.
  [[nodiscard]] bool byte_true() const { return byte_true_; }

  /// Record per-rank time intervals for this run (call before run()).
  /// Returns the tracer to query afterwards.
  Tracer& enable_tracing();
  [[nodiscard]] Tracer* tracer() { return tracer_.get(); }

  /// Collect counters/gauges/histograms for this run (call before run()).
  /// Null when disabled: every instrumentation site guards with
  /// `if (auto* m = world.metrics())`, so the off path costs one pointer
  /// test and cannot perturb simulated time.
  obs::MetricsRegistry& enable_metrics();
  [[nodiscard]] obs::MetricsRegistry* metrics() { return metrics_.get(); }

  /// Turn on time-series telemetry, sampled every `interval` seconds of
  /// virtual time (call before run()). Registers the standard probes:
  /// engine event throughput, per-OST queue depth / in-flight bytes /
  /// utilization, and per-rank blocked-time categories; model layers
  /// created later (burst-buffer stores) add their own. Null when disabled
  /// — no tick is ever scheduled, so unsampled runs stay bit-identical.
  obs::TimeSeriesSampler& enable_sampler(double interval);
  [[nodiscard]] obs::TimeSeriesSampler* sampler() { return sampler_.get(); }

  /// Per-tenant attribution: name the job that client id `client` (a rank,
  /// or a synthetic drain/scrub client) belongs to. `set_job_all` tags
  /// every rank at once. Tags flow into fs-layer accounting ("{job=...}"
  /// metric slices) and the folded-stack exporter.
  void set_job(int client, const std::string& job);
  void set_job_all(const std::string& job);
  [[nodiscard]] const std::string& job_of(int client) const;
  [[nodiscard]] const std::vector<std::string>& client_jobs() const {
    return client_jobs_;
  }

  /// Live per-rank time-breakdown registry for the sampler (the accounts
  /// live on rank fiber stacks; registration bounds their visibility).
  /// First-wins: a helper Rank sharing the id of a live main Rank is not
  /// registered (returns false), so its teardown cannot blind the sampler.
  bool register_times(int rank, const TimeBreakdown* times);
  void unregister_times(int rank, const TimeBreakdown* times);

  /// Install a collective-correctness observer (non-owning; call before
  /// run()). Null when absent: every hook site guards with
  /// `if (auto* chk = world.checker())`, so normal runs pay one pointer
  /// test and the checker cannot perturb simulated time (it never sleeps).
  void set_checker(check::InvariantChecker* checker) { checker_ = checker; }
  [[nodiscard]] check::InvariantChecker* checker() { return checker_; }

  /// Turn on the end-to-end checksum pipeline (idempotent; the first
  /// caller's config wins, matching MPI-IO hint semantics where the first
  /// opener's hints establish the file's shared state). Null when
  /// disabled: every hook site guards with `if (auto* integ =
  /// world.integrity())`, keeping the off path bit-identical.
  fs::IntegrityManager& enable_integrity(const fs::IntegrityConfig& config);
  [[nodiscard]] fs::IntegrityManager* integrity() { return integrity_.get(); }

  /// Install a fault plan (call before run()). An empty plan is never
  /// installed, so the fault-free path stays free of fault bookkeeping.
  void set_fault(const fault::FaultPlan& plan);
  [[nodiscard]] const fault::FaultPlan* fault_plan() const {
    return fault_plan_.get();
  }
  [[nodiscard]] fault::FaultState& fault_state() { return fault_state_; }
  /// Rank-local fault counters ({} when no plan is installed).
  [[nodiscard]] fault::FaultCounters fault_counters(int rank) const {
    return fault_state_.of(rank);
  }

  /// Per-rank time breakdowns (valid after run()).
  [[nodiscard]] const std::vector<TimeBreakdown>& rank_times() const {
    return rank_times_;
  }

  /// Named shared objects: comm-wide state that all ranks of a collective
  /// operation need to share (e.g. an open file's common info). The first
  /// caller's factory creates the object; later callers get the same one.
  template <typename T>
  std::shared_ptr<T> shared_object(const std::string& key,
                                   const std::function<std::shared_ptr<T>()>& make) {
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      it = objects_.emplace(key, make()).first;
    }
    return std::static_pointer_cast<T>(it->second);
  }

 private:
  void schedule_scrub(double at);
  void schedule_sample(double at);

  machine::MachineModel model_;
  sim::Engine engine_;
  net::Network network_;
  std::unique_ptr<P2PEngine> p2p_;
  std::unique_ptr<CollEngine> colls_;
  std::unique_ptr<fs::LustreSim> fs_;
  Comm world_comm_;
  std::vector<TimeBreakdown> rank_times_;
  // Declared before objects_ so shared model objects (burst-buffer stores)
  // can deregister their probes from a still-alive sampler on teardown.
  std::unique_ptr<obs::TimeSeriesSampler> sampler_;
  std::vector<const TimeBreakdown*> live_times_;
  std::vector<std::string> client_jobs_;
  std::unordered_map<std::string, std::shared_ptr<void>> objects_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  check::InvariantChecker* checker_ = nullptr;
  std::unique_ptr<fs::IntegrityManager> integrity_;
  std::unique_ptr<fault::FaultPlan> fault_plan_;
  fault::FaultState fault_state_;
  double elapsed_ = 0.0;
  bool ran_ = false;
  bool byte_true_ = true;
};

/// The per-process handle: identity, clock access, and time accounting.
/// Constructed by World::run on each rank's fiber; never copied.
class Rank {
 public:
  Rank(World& world, int rank);
  ~Rank();

  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return world_.nranks(); }
  [[nodiscard]] int node() const {
    return world_.model().topology.node_of(rank_);
  }
  [[nodiscard]] World& world() { return world_; }
  [[nodiscard]] sim::Engine& engine() { return world_.engine(); }
  [[nodiscard]] TimeAccount& times() { return times_; }
  [[nodiscard]] Comm comm_world() const { return world_.world_comm(); }
  [[nodiscard]] sim::ProcId pid() const { return pid_; }
  [[nodiscard]] double now() const { return world_.engine().now(); }

  /// Spend `seconds` of virtual time, charged to `cat`.
  void busy(TimeCat cat, double seconds);

  /// Charge a memory-bandwidth-bound operation over `bytes` as Compute.
  void touch_bytes(double bytes);

  /// Per-communicator collective sequence number (MPI ordering guarantee:
  /// all members call collectives on a communicator in the same order).
  std::uint64_t next_coll_seq(std::uint64_t context_id) {
    return coll_seq_[context_id]++;
  }

  /// Apply any scheduled fault-plan stall for this rank that is due at the
  /// current virtual time. Called at synchronization points; each scheduled
  /// stall fires at most once. No-op without an installed plan.
  void maybe_fault_stall();

 private:
  World& world_;
  int rank_;
  sim::ProcId pid_;
  TimeAccount times_;
  std::unordered_map<std::uint64_t, std::uint64_t> coll_seq_;
  std::vector<char> stalls_applied_;
};

}  // namespace parcoll::mpi
