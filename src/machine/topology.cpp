#include "machine/topology.hpp"

namespace parcoll::machine {

Topology::Topology(int nranks, int cores_per_node, Mapping mapping)
    : nranks_(nranks), cores_per_node_(cores_per_node), mapping_(mapping) {
  if (nranks <= 0 || cores_per_node <= 0) {
    throw std::invalid_argument("Topology: nranks and cores_per_node must be positive");
  }
  num_nodes_ = (nranks + cores_per_node - 1) / cores_per_node;

  // Precompute the per-node rank lists (counting sort by node, which keeps
  // each node's ranks in increasing order for both mappings).
  std::vector<int> count(static_cast<std::size_t>(num_nodes_), 0);
  for (int r = 0; r < nranks_; ++r) {
    ++count[static_cast<std::size_t>(node_of(r))];
  }
  node_begin_.resize(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (int n = 0; n < num_nodes_; ++n) {
    node_begin_[static_cast<std::size_t>(n) + 1] =
        node_begin_[static_cast<std::size_t>(n)] +
        count[static_cast<std::size_t>(n)];
  }
  node_ranks_.resize(static_cast<std::size_t>(nranks_));
  std::vector<int> cursor(node_begin_.begin(), node_begin_.end() - 1);
  for (int r = 0; r < nranks_; ++r) {
    const int n = node_of(r);
    node_ranks_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(n)]++)] = r;
  }
}

int Topology::node_of(int rank) const {
  if (rank < 0 || rank >= nranks_) {
    throw std::out_of_range("Topology::node_of: bad rank");
  }
  if (mapping_ == Mapping::Block) {
    return rank / cores_per_node_;
  }
  return rank % num_nodes_;
}

std::span<const int> Topology::ranks_on_node(int node) const {
  if (node < 0 || node >= num_nodes_) {
    throw std::out_of_range("Topology::ranks_on_node: bad node");
  }
  const auto begin = static_cast<std::size_t>(node_begin_[static_cast<std::size_t>(node)]);
  const auto end = static_cast<std::size_t>(node_begin_[static_cast<std::size_t>(node) + 1]);
  return std::span<const int>(node_ranks_).subspan(begin, end - begin);
}

}  // namespace parcoll::machine
