#include "fault/fault.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "sim/random.hpp"

namespace parcoll::fault {

namespace {

constexpr std::uint64_t kDropStream = 0xD509;
constexpr std::uint64_t kDelayStream = 0xDE1A;
constexpr std::uint64_t kCorruptStream = 0xC0DE;
constexpr std::uint64_t kBbCorruptStream = 0xB0BB;
constexpr std::uint64_t kSiteStream = 0x517E;

double fault_draw(std::uint64_t seed, std::uint64_t stream, int ost,
                  std::uint64_t draw) {
  const std::uint64_t h = sim::hash_combine(
      sim::hash_combine(sim::mix64(seed ^ stream),
                        static_cast<std::uint64_t>(ost)),
      draw);
  return sim::uniform01(h);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("FaultPlan::parse: " + what);
}

double to_double(const std::string& value, const std::string& key) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) bad("trailing characters in " + key);
    return parsed;
  } catch (const std::invalid_argument&) {
    bad("bad number for " + key + ": " + value);
  } catch (const std::out_of_range&) {
    bad("out-of-range number for " + key + ": " + value);
  }
}

std::uint64_t to_uint64(const std::string& value, const std::string& key) {
  try {
    std::size_t used = 0;
    const unsigned long long parsed = std::stoull(value, &used);
    if (used != value.size()) bad("trailing characters in " + key);
    if (!value.empty() && value[0] == '-') bad(key + " must be >= 0");
    return static_cast<std::uint64_t>(parsed);
  } catch (const std::invalid_argument&) {
    bad("bad number for " + key + ": " + value);
  } catch (const std::out_of_range&) {
    bad("out-of-range number for " + key + ": " + value);
  }
}

int to_int(const std::string& value, const std::string& key) {
  const double parsed = to_double(value, key);
  const int as_int = static_cast<int>(parsed);
  if (static_cast<double>(as_int) != parsed) bad(key + " must be an integer");
  return as_int;
}

}  // namespace

bool FaultPlan::empty() const {
  return outages.empty() && degrades.empty() && stalls.empty() &&
         media.empty() && rpc_drop_prob <= 0.0 && rpc_delay_prob <= 0.0 &&
         rpc_corrupt_prob <= 0.0 && bb_corrupt_prob <= 0.0;
}

bool FaultPlan::ost_down(int ost, double at) const {
  for (const OstOutage& outage : outages) {
    if (outage.ost == ost && at >= outage.begin && at < outage.end) {
      return true;
    }
  }
  return false;
}

double FaultPlan::degrade_factor(int ost, double at) const {
  double factor = 1.0;
  for (const OstDegrade& degrade : degrades) {
    if (degrade.ost == ost && at >= degrade.begin && at < degrade.end) {
      factor *= std::max(1.0, degrade.factor);
    }
  }
  return factor;
}

bool FaultPlan::drop_rpc(int ost, std::uint64_t draw) const {
  if (rpc_drop_prob <= 0.0) return false;
  return fault_draw(seed, kDropStream, ost, draw) < rpc_drop_prob;
}

bool FaultPlan::delay_rpc(int ost, std::uint64_t draw) const {
  if (rpc_delay_prob <= 0.0) return false;
  return fault_draw(seed, kDelayStream, ost, draw) < rpc_delay_prob;
}

bool FaultPlan::corrupt_rpc(int ost, std::uint64_t draw) const {
  if (rpc_corrupt_prob <= 0.0) return false;
  return fault_draw(seed, kCorruptStream, ost, draw) < rpc_corrupt_prob;
}

bool FaultPlan::corrupt_bb(int rank, std::uint64_t draw) const {
  if (bb_corrupt_prob <= 0.0) return false;
  return fault_draw(seed, kBbCorruptStream, rank, draw) < bb_corrupt_prob;
}

std::uint64_t FaultPlan::corrupt_site(std::uint64_t a, std::uint64_t b) const {
  return sim::hash_combine(
      sim::hash_combine(sim::mix64(seed ^ kSiteStream), a), b);
}

double FaultPlan::stall_remaining(int rank, double at) const {
  double remaining = 0.0;
  for (const RankStall& stall : stalls) {
    if (stall.rank != rank) continue;
    const double end = stall.at + stall.duration;
    if (at >= stall.at && at < end) {
      remaining = std::max(remaining, end - at);
    }
  }
  return remaining;
}

double FaultPlan::backoff(int attempt) const {
  double wait = retry.backoff_base;
  for (int i = 0; i < attempt && wait < retry.backoff_max; ++i) {
    wait *= 2.0;
  }
  return std::min(wait, retry.backoff_max);
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& entry : split(spec, ';')) {
    const auto eq = entry.find('=');
    if (eq == std::string::npos) bad("expected key=value, got: " + entry);
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    const auto fields = split(value, ':');
    if (key == "seed") {
      plan.seed = to_uint64(value, key);
    } else if (key == "ost-outage") {
      if (fields.size() != 3) bad("ost-outage wants OST:BEGIN:END");
      OstOutage outage;
      outage.ost = to_int(fields[0], key);
      outage.begin = to_double(fields[1], key);
      outage.end = to_double(fields[2], key);
      if (outage.end <= outage.begin) bad("ost-outage window is empty");
      plan.outages.push_back(outage);
    } else if (key == "ost-degrade") {
      if (fields.size() != 4) bad("ost-degrade wants OST:BEGIN:END:FACTOR");
      OstDegrade degrade;
      degrade.ost = to_int(fields[0], key);
      degrade.begin = to_double(fields[1], key);
      degrade.end = to_double(fields[2], key);
      degrade.factor = to_double(fields[3], key);
      if (degrade.end <= degrade.begin) bad("ost-degrade window is empty");
      if (degrade.factor < 1.0) bad("ost-degrade factor must be >= 1");
      plan.degrades.push_back(degrade);
    } else if (key == "rank-stall") {
      if (fields.size() != 3) bad("rank-stall wants RANK:AT:DURATION");
      RankStall stall;
      stall.rank = to_int(fields[0], key);
      stall.at = to_double(fields[1], key);
      stall.duration = to_double(fields[2], key);
      if (stall.duration <= 0) bad("rank-stall duration must be > 0");
      plan.stalls.push_back(stall);
    } else if (key == "media-corrupt") {
      if (fields.size() != 2) bad("media-corrupt wants OST:AT");
      MediaCorrupt event;
      event.ost = to_int(fields[0], key);
      event.at = to_double(fields[1], key);
      if (event.at < 0) bad("media-corrupt time must be >= 0");
      plan.media.push_back(event);
    } else if (key == "rpc-drop") {
      plan.rpc_drop_prob = to_double(value, key);
      if (plan.rpc_drop_prob < 0 || plan.rpc_drop_prob > 1) {
        bad("rpc-drop must be a probability");
      }
    } else if (key == "rpc-delay") {
      if (fields.size() != 2) bad("rpc-delay wants PROB:SECONDS");
      plan.rpc_delay_prob = to_double(fields[0], key);
      plan.rpc_delay_seconds = to_double(fields[1], key);
      if (plan.rpc_delay_prob < 0 || plan.rpc_delay_prob > 1) {
        bad("rpc-delay probability out of range");
      }
    } else if (key == "rpc-corrupt") {
      plan.rpc_corrupt_prob = to_double(value, key);
      if (plan.rpc_corrupt_prob < 0 || plan.rpc_corrupt_prob > 1) {
        bad("rpc-corrupt must be a probability");
      }
    } else if (key == "bb-corrupt") {
      plan.bb_corrupt_prob = to_double(value, key);
      if (plan.bb_corrupt_prob < 0 || plan.bb_corrupt_prob > 1) {
        bad("bb-corrupt must be a probability");
      }
    } else if (key == "timeout") {
      plan.retry.timeout = to_double(value, key);
      if (plan.retry.timeout <= 0) bad("timeout must be > 0");
    } else if (key == "backoff") {
      if (fields.size() != 2) bad("backoff wants BASE:MAX");
      plan.retry.backoff_base = to_double(fields[0], key);
      plan.retry.backoff_max = to_double(fields[1], key);
      if (plan.retry.backoff_base < 0 ||
          plan.retry.backoff_max < plan.retry.backoff_base) {
        bad("backoff wants 0 <= BASE <= MAX");
      }
    } else if (key == "max-retries") {
      plan.retry.max_retries = to_int(value, key);
      if (plan.retry.max_retries < 0) bad("max-retries must be >= 0");
    } else if (key == "agg-stall-threshold") {
      plan.agg_stall_threshold = to_double(value, key);
      if (plan.agg_stall_threshold < 0) bad("agg-stall-threshold must be >= 0");
    } else {
      bad("unknown key: " + key);
    }
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  // Shortest-exact double rendering so parse(describe()) round-trips the
  // plan bit-for-bit (the default 6 significant digits truncate).
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "seed=" << seed;
  for (const OstOutage& outage : outages) {
    os << ";ost-outage=" << outage.ost << ":" << outage.begin << ":"
       << outage.end;
  }
  for (const OstDegrade& degrade : degrades) {
    os << ";ost-degrade=" << degrade.ost << ":" << degrade.begin << ":"
       << degrade.end << ":" << degrade.factor;
  }
  for (const RankStall& stall : stalls) {
    os << ";rank-stall=" << stall.rank << ":" << stall.at << ":"
       << stall.duration;
  }
  for (const MediaCorrupt& event : media) {
    os << ";media-corrupt=" << event.ost << ":" << event.at;
  }
  if (rpc_drop_prob > 0) os << ";rpc-drop=" << rpc_drop_prob;
  if (rpc_delay_prob > 0) {
    os << ";rpc-delay=" << rpc_delay_prob << ":" << rpc_delay_seconds;
  }
  if (rpc_corrupt_prob > 0) os << ";rpc-corrupt=" << rpc_corrupt_prob;
  if (bb_corrupt_prob > 0) os << ";bb-corrupt=" << bb_corrupt_prob;
  os << ";timeout=" << retry.timeout << ";backoff=" << retry.backoff_base
     << ":" << retry.backoff_max << ";max-retries=" << retry.max_retries
     << ";agg-stall-threshold=" << agg_stall_threshold;
  return os.str();
}

FaultCounters& FaultCounters::operator+=(const FaultCounters& other) {
  retries += other.retries;
  failovers += other.failovers;
  drops += other.drops;
  delays += other.delays;
  reelections += other.reelections;
  stalls += other.stalls;
  corrupt_injected += other.corrupt_injected;
  corrupt_detected += other.corrupt_detected;
  corrupt_repaired += other.corrupt_repaired;
  scrub_repairs += other.scrub_repairs;
  faulted_seconds += other.faulted_seconds;
  return *this;
}

FaultCounters& FaultState::of(int client) {
  const auto index = static_cast<std::size_t>(client < 0 ? 0 : client);
  if (index >= by_client_.size()) {
    by_client_.resize(index + 1);
  }
  return by_client_[index];
}

FaultCounters FaultState::of(int client) const {
  const auto index = static_cast<std::size_t>(client < 0 ? 0 : client);
  if (index >= by_client_.size()) return {};
  return by_client_[index];
}

FaultCounters FaultState::total() const {
  FaultCounters sum;
  for (const FaultCounters& counters : by_client_) {
    sum += counters;
  }
  return sum;
}

}  // namespace parcoll::fault
