#include "core/split.hpp"

#include <stdexcept>

#include "mpi/collectives.hpp"

namespace parcoll::core {

namespace detail {

struct SplitState {
  mpiio::PreparedRequest prep;
  mpi::Comm helper_comm;
  void* user_buffer = nullptr;  // reads: unpack destination
  std::uint64_t count = 0;
  dtype::Datatype memtype;
  bool is_write = true;
  bool done = false;
  CollectiveOutcome outcome;
  mpi::TimeBreakdown helper_time;
  std::vector<sim::ProcId> waiters;
};

}  // namespace detail

bool SplitRequest::done() const { return state_ && state_->done; }

namespace {

SplitRequest split_begin(mpiio::FileHandle& file, std::uint64_t offset,
                         const void* wbuffer, void* rbuffer,
                         std::uint64_t count, const dtype::Datatype& memtype,
                         bool is_write) {
  auto& self = file.self();
  auto& world = self.world();

  auto state = std::make_shared<detail::SplitState>();
  state->is_write = is_write;
  state->user_buffer = rbuffer;
  state->count = count;
  state->memtype = memtype;
  state->prep = is_write
                    ? file.prepare_write(offset, wbuffer, count, memtype)
                    : file.prepare_read(offset, rbuffer, count, memtype);

  // The helper "progress threads" get their own communicator so their
  // collective sequence numbers never interleave with the main threads'.
  state->helper_comm =
      mpi::comm_split(self, file.comm(), 0, file.comm().local_rank(self.rank()));

  const int rank_id = self.rank();
  const mpiio::Hints hints = file.hints();
  const int fs_id = file.fs_id();
  world.engine().spawn([state, &world, rank_id, hints, fs_id] {
    mpi::Rank helper(world, rank_id);
    state->outcome = run_collective_engine(
        helper, state->helper_comm, hints, fs_id, state->prep,
        state->is_write, /*cache_slot=*/nullptr);
    state->helper_time = helper.times().breakdown();
    state->done = true;
    for (sim::ProcId pid : state->waiters) {
      world.engine().wake(pid);
    }
    state->waiters.clear();
  });

  return SplitRequest(std::move(state));
}

}  // namespace

SplitRequest write_at_all_begin(mpiio::FileHandle& file, std::uint64_t offset,
                                const void* buffer, std::uint64_t count,
                                const dtype::Datatype& memtype) {
  file.require_writable();
  return split_begin(file, offset, buffer, nullptr, count, memtype, true);
}

SplitRequest read_at_all_begin(mpiio::FileHandle& file, std::uint64_t offset,
                               void* buffer, std::uint64_t count,
                               const dtype::Datatype& memtype) {
  file.require_readable();
  return split_begin(file, offset, nullptr, buffer, count, memtype, false);
}

CollectiveOutcome split_end(mpiio::FileHandle& file, SplitRequest& request) {
  if (!request.valid()) {
    throw std::logic_error("split_end: invalid request");
  }
  auto& state = *request.state_;
  auto& self = file.self();
  if (!state.done) {
    const double blocked_at = self.now();
    state.waiters.push_back(self.pid());
    self.engine().suspend("split collective end");
    self.times().add(mpi::TimeCat::Sync, self.now() - blocked_at);
  }
  if (!state.is_write) {
    file.finish_read(state.prep, state.user_buffer, state.count,
                     state.memtype);
  }

  mpiio::FileStats delta;
  delta.time = state.helper_time;  // the progress thread's work
  if (state.is_write) {
    delta.bytes_written = state.prep.bytes;
  } else {
    delta.bytes_read = state.prep.bytes;
  }
  delta.exchange_cycles = state.outcome.cycles;
  delta.rmw_reads = state.outcome.rmw_reads;
  if (file.comm().local_rank(self.rank()) == 0) {
    if (state.is_write) {
      delta.collective_writes = 1;
    } else {
      delta.collective_reads = 1;
    }
  }
  file.add_stats(delta);
  const CollectiveOutcome outcome = state.outcome;
  request.state_.reset();
  return outcome;
}

}  // namespace parcoll::core
