// Hierarchical spans: the structured backbone of the tracing layer.
//
// A span is a (rank, begin, end) interval in virtual time with a kind, a
// static name, and a parent. Collective-I/O calls open Call spans; ParColl
// opens a Subgroup span per subgroup membership; the ext2ph engine opens a
// Stage span per plan/exchange-cycle/finalize step; every TimeAccount
// charge lands as a Phase leaf under whatever span is open on that rank.
// The flat per-rank TraceEvent list of the original profiler is now just a
// projection of the Phase leaves (see mpi::Tracer).
//
// Identifiers are 1-based; parent 0 means "root" (no enclosing span).
// Spans never affect simulated time: opening/closing reads the clock, it
// does not advance it.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "mpi/timecat.hpp"

namespace parcoll::obs {

enum class SpanKind : std::uint8_t {
  Call = 0,      // one collective-I/O call (write_at_all / read_at_all)
  Subgroup = 1,  // ParColl subgroup-local collective under a call
  Stage = 2,     // plan / exchange-I/O cycle / finalize / intra step
  Phase = 3,     // leaf: a TimeCat charge (sync, p2p, io, intra, faulted)
  Drain = 4,     // burst-buffer write-behind of one staged segment
  Scrub = 5,     // background integrity scrub walking the object store
};

[[nodiscard]] const char* to_string(SpanKind kind);

using SpanId = std::uint32_t;
inline constexpr SpanId kNoSpan = 0;

struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  int rank = 0;
  SpanKind kind = SpanKind::Phase;
  mpi::TimeCat cat = mpi::TimeCat::Compute;  // Phase leaves only
  const char* name = "";                     // static string, never owned
  std::int64_t call = -1;   // per-rank call ordinal (aligned across ranks)
  std::int64_t group = -1;  // ParColl subgroup index, -1 outside subgroups
  std::int64_t cycle = -1;  // exchange/I-O cycle index, -1 outside cycles
  double begin = 0;
  double end = 0;
};

/// Append-only store of spans with per-stream open-span stacks. A stream
/// is one fiber of execution (the simulator's ProcId): a rank's main fiber
/// is one stream, an async-I/O or split-collective helper fiber sharing
/// the rank id is another, so concurrent fibers can never corrupt each
/// other's LIFO nesting. Structural spans (Call/Subgroup/Stage) are opened
/// and closed around protocol code; Phase leaves are recorded complete.
/// Copyable (plain data) so a Tracer can be snapshotted out of a finished
/// World.
class SpanStore {
 public:
  /// Open a structural span on `rank` starting at time `at`. The new span
  /// is parented to the stream's innermost open span and inherits its call
  /// / group / cycle labels unless overridden. Call spans are
  /// automatically numbered with a per-rank ordinal; SPMD execution makes
  /// the ordinal line up across ranks, which is what lets the wall report
  /// correlate "cycle 3 of call 2" between ranks.
  SpanId open(std::uint64_t stream, int rank, SpanKind kind, const char* name,
              double at, std::int64_t group = -1, std::int64_t cycle = -1);

  /// Close the innermost open span of `stream`. `id` must be the value
  /// returned by the matching open() (enforced: spans close LIFO per
  /// stream).
  void close(std::uint64_t stream, SpanId id, double at);

  /// Record a completed Phase leaf under the stream's innermost open span.
  /// Zero- and negative-length intervals are dropped, matching the old
  /// Tracer::record contract.
  void leaf(std::uint64_t stream, int rank, mpi::TimeCat cat, double begin,
            double end);

  /// Is the stream's innermost open span inside a collective call (i.e.
  /// does it carry a call ordinal)? Lets standalone collectives decide
  /// whether to open their own Call span for wall attribution.
  [[nodiscard]] bool in_call(std::uint64_t stream) const;

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] const Span& at(SpanId id) const {
    return spans_[static_cast<std::size_t>(id - 1)];
  }
  [[nodiscard]] bool empty() const { return spans_.empty(); }

  void clear();

 private:
  Span& grow(int rank);

  std::vector<Span> spans_;
  std::map<std::uint64_t, std::vector<SpanId>> stacks_;  // per-stream
  std::vector<std::int64_t> call_ordinals_;              // per-rank
};

}  // namespace parcoll::obs
