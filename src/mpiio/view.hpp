// File views: (displacement, etype, filetype), MPI_File_set_view semantics.
//
// The view defines a data stream: the filetype is tiled end to end starting
// at `disp`, and the stream consists of the bytes the filetype's segments
// select from each tile. Offsets in read/write calls count etypes within
// that stream. map() converts a stream range into absolute file extents —
// always monotone, because file views require monotone filetypes.
#pragma once

#include <cstdint>
#include <vector>

#include "dtype/datatype.hpp"
#include "dtype/flatten.hpp"
#include "fs/stripe.hpp"

namespace parcoll::mpiio {

class FileView {
 public:
  /// Default view: byte stream starting at offset 0.
  FileView();

  FileView(std::uint64_t disp, std::uint64_t etype_size,
           const dtype::Datatype& filetype);

  [[nodiscard]] std::uint64_t disp() const { return disp_; }
  [[nodiscard]] std::uint64_t etype_size() const { return etype_size_; }
  /// Data bytes per filetype tile.
  [[nodiscard]] std::uint64_t tile_size() const { return flat_.size; }
  /// File bytes per filetype tile.
  [[nodiscard]] std::uint64_t tile_extent() const {
    return static_cast<std::uint64_t>(flat_.extent);
  }
  /// True if the view is a dense byte stream (no holes).
  [[nodiscard]] bool contiguous() const { return contiguous_; }

  /// Absolute file extents covering stream bytes
  /// [offset_etypes * etype_size, + nbytes), coalesced and monotone.
  /// The k-th byte of the stream range corresponds to the k-th byte of the
  /// returned extents walked in order.
  [[nodiscard]] std::vector<fs::Extent> map(std::uint64_t offset_etypes,
                                            std::uint64_t nbytes) const;

 private:
  std::uint64_t disp_ = 0;
  std::uint64_t etype_size_ = 1;
  dtype::FlatType flat_;
  bool contiguous_ = true;
};

}  // namespace parcoll::mpiio
