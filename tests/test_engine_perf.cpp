// Engine scaling layer: calendar queue order exactness, golden
// bit-identity pins, stack-pool reuse under churn, WaitQueue FIFO at
// depth, deadlock message stability, and stack-size knob validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "sim/callback.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "workloads/ior.hpp"
#include "workloads/tileio.hpp"

namespace parcoll {
namespace {

using sim::CalendarQueue;
using sim::Engine;
using sim::QueuedEvent;
using sim::WaitQueue;

bool ordered_before(const QueuedEvent& a, const QueuedEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

/// Drive the calendar queue and a sorted reference through the same
/// push/pop trace; every pop must return the exact (time, seq) minimum.
void check_against_reference(const std::vector<QueuedEvent>& pushes,
                             std::mt19937_64& rng) {
  CalendarQueue queue;
  std::vector<QueuedEvent> reference;  // kept sorted descending
  std::size_t fed = 0;
  std::uint64_t popped = 0;
  while (fed < pushes.size() || !queue.empty()) {
    const bool can_push = fed < pushes.size();
    const bool do_push = can_push && (queue.empty() || (rng() & 1) != 0);
    if (do_push) {
      queue.push(pushes[fed]);
      reference.push_back(pushes[fed]);
      std::push_heap(reference.begin(), reference.end(),
                     [](const QueuedEvent& a, const QueuedEvent& b) {
                       return !ordered_before(a, b);
                     });
      ++fed;
    } else {
      ASSERT_FALSE(reference.empty());
      std::pop_heap(reference.begin(), reference.end(),
                    [](const QueuedEvent& a, const QueuedEvent& b) {
                      return !ordered_before(a, b);
                    });
      const QueuedEvent want = reference.back();
      reference.pop_back();
      const QueuedEvent peeked = queue.peek();
      const QueuedEvent got = queue.pop();
      ASSERT_EQ(got.time, want.time) << "after " << popped << " pops";
      ASSERT_EQ(got.seq, want.seq) << "after " << popped << " pops";
      EXPECT_EQ(peeked.time, got.time);
      EXPECT_EQ(peeked.seq, got.seq);
      ++popped;
    }
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(CalendarQueue, MatchesReferenceOrderAcrossRegimes) {
  std::mt19937_64 rng(20260808);
  std::uint64_t seq = 0;
  std::vector<QueuedEvent> pushes;
  // Dense cluster of near-equal times, including exact duplicates (the
  // choice-point regime where only seq breaks ties).
  for (int i = 0; i < 2000; ++i) {
    const double t = 1e-6 * static_cast<double>(rng() % 64);
    pushes.push_back({t, seq++, static_cast<int>(i), 0});
    if ((rng() & 3) == 0) {
      pushes.push_back({t, seq++, static_cast<int>(i), 0});
    }
  }
  // Mixed mid-range horizon.
  for (int i = 0; i < 2000; ++i) {
    const double t = 1e-3 * std::uniform_real_distribution<>(0.0, 50.0)(rng);
    pushes.push_back({t, seq++, i, 0});
  }
  // Far-future spikes that must ride the overflow tier, plus events pushed
  // "behind" them that still pop first.
  for (int i = 0; i < 500; ++i) {
    pushes.push_back({1e6 + static_cast<double>(rng() % 1000), seq++, i, 0});
    pushes.push_back({1e-4 * static_cast<double>(rng() % 100), seq++, i, 0});
  }
  std::shuffle(pushes.begin(), pushes.end(), rng);
  check_against_reference(pushes, rng);
}

TEST(CalendarQueue, RepushWithOriginalSeqKeepsPlaceInOrder) {
  // The schedule-exploration path pops tied events and re-pushes the losers
  // with their original seq; they must re-emerge exactly where they were.
  CalendarQueue queue;
  const double t = 0.5;
  for (std::uint64_t s = 0; s < 10; ++s) {
    queue.push({t, s, static_cast<int>(s), 0});
  }
  std::vector<QueuedEvent> ties;
  for (int i = 0; i < 10; ++i) {
    ties.push_back(queue.pop());
  }
  // Re-push all but the chosen one (say we scheduled seq 7 first).
  for (const QueuedEvent& event : ties) {
    if (event.seq != 7) queue.push(event);
  }
  std::uint64_t expect = 0;
  while (!queue.empty()) {
    const QueuedEvent got = queue.pop();
    if (expect == 7) ++expect;  // 7 already ran
    EXPECT_EQ(got.seq, expect);
    ++expect;
  }
}

TEST(CalendarQueue, FarFuturePostsPopInOrder) {
  // Horizon spread wide enough that the calendar cannot cover it: the
  // overflow tier and window slides must preserve the total order.
  Engine engine;
  std::vector<int> order;
  // First post anchors the bucket window near t=0; each later one lands
  // ever deeper in the overflow tier.
  engine.post(1e-9, [&order] { order.push_back(-1); });
  for (int i = 0; i < 10; ++i) {
    engine.post(static_cast<double>(i + 1) * 1e5,
                [&order, i] { order.push_back(i); });
  }
  engine.run();
  ASSERT_EQ(order.size(), 11u);
  EXPECT_EQ(order.front(), -1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i) + 1], i);
  }
  EXPECT_GT(engine.stats().queue_overflow_pushes, 0u);
}

// Golden values captured from the pre-calendar-queue engine (binary-heap
// queue, ucontext fibers, 256 KiB per-fiber stacks). The same pins guard
// bench/micro_engine; here they run under ctest so a plain test pass
// catches schedule drift without the bench.
TEST(EngineGolden, TileIoBitIdenticalToPrePrEngine) {
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::ParColl;
  spec.parcoll_groups = 4;
  spec.min_group_size = 2;
  spec.byte_true = true;
  workloads::TileIOConfig tile;
  tile.tiles_x = 8;
  tile.tile_w = 16;
  tile.tile_h = 8;
  tile.elem_size = 8;
  const workloads::RunResult got = workloads::run_tileio(tile, 32, spec, true);
  EXPECT_EQ(got.file_digest, 2837233136922917773ull);
  EXPECT_EQ(got.schedule_token, "p");
  EXPECT_EQ(got.elapsed, 0.062553776237471187);
  EXPECT_EQ(got.total_elapsed, 0.063203776237471185);
  EXPECT_EQ(got.bytes, 32768u);
  EXPECT_EQ(got.fs_rpcs, 32u);
  EXPECT_TRUE(got.verified);
}

TEST(EngineGolden, IorBitIdenticalToPrePrEngine) {
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::Ext2ph;
  spec.byte_true = true;
  workloads::IorConfig config;
  config.block_size = 256 << 10;
  config.xfer_size = 64 << 10;
  const workloads::RunResult got = workloads::run_ior(config, 32, spec, true);
  EXPECT_EQ(got.file_digest, 372189963690044911ull);
  EXPECT_EQ(got.schedule_token, "p");
  EXPECT_EQ(got.elapsed, 0.11984201252554912);
  EXPECT_EQ(got.total_elapsed, 0.12049201252554911);
  EXPECT_EQ(got.bytes, 8388608u);
  EXPECT_EQ(got.fs_rpcs, 128u);
  EXPECT_TRUE(got.verified);
}

TEST(StackPool, ChurnOfFiftyThousandFibersReusesStacks) {
  Engine engine;
  const int total = 50000;
  const int width = 32;
  int next = width;
  std::function<void()> body = [&engine, &body, &next, total] {
    engine.sleep(1e-6);
    if (next < total) {
      ++next;
      engine.spawn(body);
    }
  };
  for (int i = 0; i < width; ++i) {
    engine.spawn(body);
  }
  engine.run();
  const sim::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.fibers_spawned, static_cast<std::uint64_t>(total));
  // Steady state serves stacks from the pool: fresh allocations stay near
  // the live width, nowhere near the spawn count.
  EXPECT_LE(stats.stacks_allocated, static_cast<std::uint64_t>(4 * width));
  EXPECT_EQ(stats.stacks_allocated + stats.stacks_reused,
            static_cast<std::uint64_t>(total));
  EXPECT_GE(stats.stacks_reused, static_cast<std::uint64_t>(total - 4 * width));
  EXPECT_LE(stats.peak_live_fibers, static_cast<std::uint64_t>(width) + 1);
}

TEST(WaitQueueDepth, FifoHoldsAcrossRingCompaction) {
  // notify_one compacts its drained prefix once the head passes 64; wake
  // order must stay strictly FIFO through the compaction boundary.
  Engine engine;
  WaitQueue wq;
  std::vector<int> woken;
  const int waiters = 200;
  for (int i = 0; i < waiters; ++i) {
    engine.spawn([&engine, &wq, &woken, i] {
      wq.wait(engine, "fifo-test");
      woken.push_back(i);
    });
  }
  engine.spawn([&engine, &wq, waiters] {
    engine.sleep(1.0);
    // 200 queued waiters: the head crosses the >64 compaction threshold
    // while a long live tail is still parked behind it.
    for (int i = 0; i < waiters; ++i) {
      ASSERT_TRUE(wq.notify_one(engine));
      engine.sleep(1e-6);
    }
    ASSERT_FALSE(wq.notify_one(engine));
  });
  engine.run();
  ASSERT_EQ(woken.size(), static_cast<std::size_t>(waiters));
  for (int i = 0; i < waiters; ++i) {
    EXPECT_EQ(woken[static_cast<std::size_t>(i)], i) << "wake order broke";
  }
  EXPECT_TRUE(wq.empty());
}

TEST(Deadlock, MessageFormatIsStable) {
  // The exact text is load-bearing: operators grep for it, and the replay
  // token inside it feeds parcoll_sim --schedule-replay.
  Engine engine;
  engine.spawn([&engine] { engine.suspend("waiting for data"); });
  engine.spawn([&engine] {
    engine.sleep(2.5);
    engine.suspend("collective");
  });
  try {
    engine.run();
    FAIL() << "expected DeadlockError";
  } catch (const sim::DeadlockError& err) {
    EXPECT_STREQ(err.what(),
                 "simulation deadlock at t=2.5s; schedule=p; blocked "
                 "processes: [pid 0: waiting for data] [pid 1: collective]");
  }
}

TEST(StackKnobs, EngineRejectsBelowFloor) {
  Engine engine;
  EXPECT_THROW(engine.set_default_stack_bytes(Engine::kMinStackBytes - 1),
               std::invalid_argument);
  EXPECT_THROW(engine.spawn([] {}, 1024), std::invalid_argument);
  // At the floor and above: accepted.
  engine.set_default_stack_bytes(Engine::kMinStackBytes);
  engine.spawn([] {}, Engine::kMinStackBytes);
  engine.run();
}

TEST(StackKnobs, RunSpecRejectsBelowFloor) {
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::Ext2ph;
  spec.stack_bytes = Engine::kMinStackBytes / 2;
  workloads::IorConfig config;
  config.block_size = 64 << 10;
  config.xfer_size = 64 << 10;
  EXPECT_THROW(workloads::run_ior(config, 4, spec, true),
               std::invalid_argument);
}

TEST(StackKnobs, ExplicitStackBytesRunsIdentically) {
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::Ext2ph;
  spec.byte_true = true;
  workloads::IorConfig config;
  config.block_size = 256 << 10;
  config.xfer_size = 64 << 10;
  const workloads::RunResult base = workloads::run_ior(config, 8, spec, true);
  spec.stack_bytes = 128 * 1024;
  const workloads::RunResult big = workloads::run_ior(config, 8, spec, true);
  // Stack size is host plumbing; the simulation must not notice.
  EXPECT_EQ(big.file_digest, base.file_digest);
  EXPECT_EQ(big.elapsed, base.elapsed);
  EXPECT_EQ(big.schedule_token, base.schedule_token);
  EXPECT_EQ(big.engine.default_stack_bytes, 128u * 1024u);
}

TEST(SmallCallback, OversizedCaptureTakesHeapPathAndRuns) {
  struct Big {
    char payload[200];
    int* out;
    int value;
  };
  static_assert(sizeof(Big) > sim::SmallCallback::kInlineBytes);
  int result = 0;
  Big big{};
  big.out = &result;
  big.value = 42;
  Engine engine;
  engine.post(1.0, [big] { *big.out = big.value; });
  // And an inline-sized one alongside, same event path.
  int small_result = 0;
  engine.post(2.0, [&small_result] { small_result = 7; });
  engine.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(small_result, 7);
  EXPECT_EQ(engine.stats().callback_events, 2u);
}

}  // namespace
}  // namespace parcoll
