# Empty dependencies file for abl_intermediate_view.
# This may be replaced when dependencies are built.
