#include "mpiio/hints.hpp"

#include <sstream>
#include <stdexcept>

namespace parcoll::mpiio {

namespace {
std::vector<int> parse_int_list(const std::string& value) {
  std::vector<int> out;
  std::stringstream stream(value);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) {
      out.push_back(std::stoi(item));
    }
  }
  return out;
}
std::string format_int_list(const std::vector<int>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  return out;
}
}  // namespace

void Hints::set(const std::string& key, const std::string& value) {
  if (key == "cb_buffer_size") {
    cb_buffer_size = std::stoull(value);
    if (cb_buffer_size == 0) {
      throw std::invalid_argument(
          "Hints::set: cb_buffer_size must be positive (got 0)");
    }
  } else if (key == "cb_nodes") {
    cb_nodes = std::stoi(value);
  } else if (key == "cb_node_list") {
    cb_node_list = parse_int_list(value);
  } else if (key == "striping_factor") {
    striping_factor = std::stoi(value);
  } else if (key == "striping_unit") {
    striping_unit = std::stoull(value);
  } else if (key == "romio_cb_write" || key == "romio_cb_read") {
    bool enabled;
    if (value == "enable" || value == "automatic") {
      enabled = true;
    } else if (value == "disable") {
      enabled = false;
    } else {
      throw std::invalid_argument("Hints::set: bad " + key + " value");
    }
    (key == "romio_cb_write" ? cb_write_enabled : cb_read_enabled) = enabled;
  } else if (key == "cb_fd_align") {
    cb_fd_align = (value == "true" || value == "1" || value == "enable");
  } else if (key == "cb_intranode") {
    cb_intranode = node::parse_intranode_mode(value);
  } else if (key == "cb_intranode_leader") {
    cb_intranode_leader = node::parse_leader_policy(value);
  } else if (key == "romio_no_indep_rw") {
    no_indep_rw = (value == "true" || value == "1" || value == "enable");
  } else if (key == "parcoll_num_groups") {
    if (value == "auto") {
      parcoll_num_groups = -1;
    } else {
      const int groups = std::stoi(value);
      if (groups <= 0) {
        // Via the string interface the documented spellings are a positive
        // count or "auto"; leave the struct default (0) to disable.
        throw std::invalid_argument(
            "Hints::set: parcoll_num_groups must be a positive count or "
            "\"auto\" (got " + value + ")");
      }
      parcoll_num_groups = groups;
    }
  } else if (key == "parcoll_min_group_size") {
    parcoll_min_group_size = std::stoi(value);
    if (parcoll_min_group_size < 1) {
      throw std::invalid_argument(
          "Hints::set: parcoll_min_group_size must be >= 1 (got " + value +
          ")");
    }
  } else if (key == "bb") {
    if (value == "enable" || value == "true" || value == "1") {
      bb.enabled = true;
    } else if (value == "disable" || value == "false" || value == "0") {
      bb.enabled = false;
    } else {
      throw std::invalid_argument("Hints::set: bad bb value: " + value);
    }
  } else if (key == "bb_capacity") {
    // stoull silently wraps a negative string around to a huge arena;
    // reject the sign explicitly so "-1" cannot masquerade as ~2^64 bytes.
    if (value.find('-') != std::string::npos) {
      throw std::invalid_argument(
          "Hints::set: bb_capacity must be positive (got " + value + ")");
    }
    bb.capacity = std::stoull(value);
    if (bb.capacity == 0) {
      throw std::invalid_argument(
          "Hints::set: bb_capacity must be positive (got 0)");
    }
  } else if (key == "bb_drain") {
    bb.policy = bb::parse_drain_policy(value);
  } else if (key == "bb_hi_watermark") {
    bb.hi_watermark = std::stod(value);
    if (bb.hi_watermark < 0 || bb.hi_watermark > 1) {
      throw std::invalid_argument(
          "Hints::set: bb_hi_watermark must be a capacity fraction in "
          "[0, 1] (got " + value + ")");
    }
  } else if (key == "bb_lo_watermark") {
    bb.lo_watermark = std::stod(value);
    if (bb.lo_watermark < 0 || bb.lo_watermark > 1) {
      throw std::invalid_argument(
          "Hints::set: bb_lo_watermark must be a capacity fraction in "
          "[0, 1] (got " + value + ")");
    }
  } else if (key == "integrity") {
    integrity.level = fs::parse_integrity_level(value);
  } else if (key == "integrity_block") {
    if (value.find('-') != std::string::npos) {
      throw std::invalid_argument(
          "Hints::set: integrity_block must be positive (got " + value + ")");
    }
    integrity.block = std::stoull(value);
    if (integrity.block == 0) {
      throw std::invalid_argument(
          "Hints::set: integrity_block must be positive (got 0)");
    }
  } else if (key == "scrub") {
    if (value == "enable" || value == "true" || value == "1") {
      integrity.scrub = true;
    } else if (value == "disable" || value == "false" || value == "0") {
      integrity.scrub = false;
    } else {
      throw std::invalid_argument("Hints::set: bad scrub value: " + value);
    }
  } else if (key == "bb_deadline") {
    bb.drain_deadline = std::stod(value);
    if (bb.drain_deadline <= 0) {
      throw std::invalid_argument(
          "Hints::set: bb_deadline must be positive (got " + value + ")");
    }
  } else if (key == "parcoll_view_switch") {
    parcoll_view_switch = (value == "true" || value == "1");
  } else if (key == "parcoll_persistent_groups") {
    parcoll_persistent_groups = (value == "true" || value == "1");
  } else {
    throw std::invalid_argument("Hints::set: unknown hint key: " + key);
  }
}

void Hints::validate(int comm_size) const {
  if (cb_buffer_size == 0) {
    throw std::invalid_argument("Hints: cb_buffer_size must be positive");
  }
  if (parcoll_num_groups < -1) {
    throw std::invalid_argument(
        "Hints: parcoll_num_groups must be a positive count, 0 (disabled), "
        "or -1/\"auto\" (got " + std::to_string(parcoll_num_groups) + ")");
  }
  if (parcoll_num_groups > comm_size) {
    throw std::invalid_argument(
        "Hints: parcoll_num_groups (" + std::to_string(parcoll_num_groups) +
        ") exceeds the communicator size (" + std::to_string(comm_size) +
        ")");
  }
  if (parcoll_min_group_size < 1) {
    throw std::invalid_argument(
        "Hints: parcoll_min_group_size must be >= 1 (got " +
        std::to_string(parcoll_min_group_size) + ")");
  }
  if (cb_nodes < 0) {
    throw std::invalid_argument("Hints: cb_nodes must be >= 0 (got " +
                                std::to_string(cb_nodes) + ")");
  }
  if (bb.capacity == 0) {
    throw std::invalid_argument("Hints: bb_capacity must be positive");
  }
  if (bb.hi_watermark < 0 || bb.hi_watermark > 1 || bb.lo_watermark < 0 ||
      bb.lo_watermark > 1 || bb.lo_watermark >= bb.hi_watermark) {
    // lo == hi would make the watermark drainer start and stop at the same
    // fill level (it could never hold hysteresis), so require lo < hi.
    throw std::invalid_argument(
        "Hints: bb watermarks must satisfy 0 <= lo < hi <= 1 (got lo=" +
        std::to_string(bb.lo_watermark) + " hi=" +
        std::to_string(bb.hi_watermark) + ")");
  }
  if (bb.drain_deadline <= 0) {
    throw std::invalid_argument("Hints: bb_deadline must be positive");
  }
  if (integrity.block == 0) {
    throw std::invalid_argument("Hints: integrity_block must be positive");
  }
}

std::string Hints::get(const std::string& key) const {
  if (key == "cb_buffer_size") return std::to_string(cb_buffer_size);
  if (key == "cb_nodes") return std::to_string(cb_nodes);
  if (key == "cb_node_list") return format_int_list(cb_node_list);
  if (key == "striping_factor") return std::to_string(striping_factor);
  if (key == "striping_unit") return std::to_string(striping_unit);
  if (key == "romio_cb_write") return cb_write_enabled ? "enable" : "disable";
  if (key == "romio_cb_read") return cb_read_enabled ? "enable" : "disable";
  if (key == "romio_no_indep_rw") return no_indep_rw ? "true" : "false";
  if (key == "cb_fd_align") return cb_fd_align ? "true" : "false";
  if (key == "cb_intranode") return node::to_string(cb_intranode);
  if (key == "cb_intranode_leader") {
    return node::to_string(cb_intranode_leader);
  }
  if (key == "parcoll_num_groups") return std::to_string(parcoll_num_groups);
  if (key == "parcoll_min_group_size") {
    return std::to_string(parcoll_min_group_size);
  }
  if (key == "bb") return bb.enabled ? "enable" : "disable";
  if (key == "bb_capacity") return std::to_string(bb.capacity);
  if (key == "bb_drain") return bb::to_string(bb.policy);
  if (key == "bb_hi_watermark") return std::to_string(bb.hi_watermark);
  if (key == "bb_lo_watermark") return std::to_string(bb.lo_watermark);
  if (key == "bb_deadline") return std::to_string(bb.drain_deadline);
  if (key == "integrity") return fs::to_string(integrity.level);
  if (key == "integrity_block") return std::to_string(integrity.block);
  if (key == "scrub") return integrity.scrub ? "enable" : "disable";
  if (key == "parcoll_view_switch") return parcoll_view_switch ? "true" : "false";
  if (key == "parcoll_persistent_groups") {
    return parcoll_persistent_groups ? "true" : "false";
  }
  throw std::invalid_argument("Hints::get: unknown hint key: " + key);
}

}  // namespace parcoll::mpiio
