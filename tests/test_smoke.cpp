#include <gtest/gtest.h>
TEST(Smoke, Builds) { SUCCEED(); }
