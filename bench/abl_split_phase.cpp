// Ablation — split-phase collective I/O (the paper's §2.3 discussion).
//
// On Catamount, single-threaded processes could not run split-phase
// collective I/O. The paper predicts that even with threading (the CNL
// era), overlapping I/O with computation "does not do away with the need
// of synchronization": the I/O cost can hide behind compute, but the sync
// share of the remaining (non-hidden) collective cost becomes MORE
// pronounced — and ParColl still helps on top of the overlap.
//
// Workload: tile-io-style collective writes interleaved with a fixed
// compute phase per step, run three ways: blocking baseline, split-phase
// baseline, and split-phase + ParColl.
#include "bench/common.hpp"
#include "core/split.hpp"
#include "mpi/collectives.hpp"
#include "mpiio/file.hpp"
#include "workloads/tileio.hpp"

namespace {

using namespace parcoll;

struct Outcome {
  double elapsed;
  double sync_share;
};

Outcome run(int nprocs, bool split, int groups, double compute_seconds,
            workloads::RunResult* out = nullptr) {
  mpi::World world(machine::MachineModel::jaguar(nprocs), /*byte_true=*/false);
  const auto config = workloads::TileIOConfig::paper(nprocs);
  mpiio::Hints hints;
  hints.parcoll_num_groups = groups;
  double elapsed = 0;
  constexpr int kSteps = 4;

  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "split-abl.dat", hints);
    file.set_view(0, config.elem_size, config.filetype(self.rank(), nprocs));
    const dtype::Datatype memtype =
        dtype::Datatype::bytes(config.rank_bytes());
    const std::uint64_t step_etypes = config.rank_bytes() / config.elem_size;
    mpi::barrier(self, self.comm_world());
    const double t0 = self.now();
    core::SplitRequest pending;
    for (int step = 0; step < kSteps; ++step) {
      const std::uint64_t offset =
          static_cast<std::uint64_t>(step) * step_etypes;
      if (split) {
        pending = core::write_at_all_begin(file, offset, nullptr, 1, memtype);
        self.busy(mpi::TimeCat::Compute, compute_seconds);
        core::split_end(file, pending);
      } else {
        self.busy(mpi::TimeCat::Compute, compute_seconds);
        core::write_at_all(file, offset, nullptr, 1, memtype);
      }
    }
    mpi::barrier(self, self.comm_world());
    if (self.rank() == 0) elapsed = self.now() - t0;
    file.close();
  });

  // Sync share of the *file's* time (main thread wait + helper breakdown).
  double total = 0;
  for (const auto& breakdown : world.rank_times()) total += breakdown.total();
  double sync = 0;
  for (const auto& breakdown : world.rank_times()) {
    sync += breakdown[mpi::TimeCat::Sync];
  }
  if (out != nullptr) {
    out->elapsed = elapsed;
    out->bytes = config.rank_bytes() * static_cast<std::uint64_t>(nprocs) *
                 static_cast<std::uint64_t>(kSteps);
    for (const auto& breakdown : world.rank_times()) out->sum += breakdown;
  }
  return Outcome{elapsed, total > 0 ? sync / total : 0};
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = parcoll::bench::smoke_requested(argc, argv);
  using namespace parcoll::bench;
  BenchReport report("abl_split_phase", argc, argv);
  header("Ablation: split-phase collective I/O",
         "overlap hides I/O, not synchronization (paper §2.3)");
  const int nprocs = parcoll::bench::scaled(smoke, 256);
  const double compute = 1.0;  // seconds of computation per step

  std::printf("  %-34s %10s %12s\n", "configuration", "elapsed", "sync share");
  const auto measure = [&](const char* name, const std::string& series,
                           bool split, int groups) {
    workloads::RunResult result;
    const Outcome outcome = run(nprocs, split, groups, compute, &result);
    std::printf("  %-34s %8.2f s %11.1f%%\n", name, outcome.elapsed,
                100.0 * outcome.sync_share);
    report.add(series, nprocs, result);
  };
  measure("blocking, baseline", "blocking/baseline", false, 0);
  measure("split-phase, baseline", "split/baseline", true, 0);
  measure("split-phase, ParColl-32", "split/parcoll-32", true, 32);
  measure("blocking, ParColl-32", "blocking/parcoll-32", false, 32);

  footnote("split-phase shortens elapsed time by hiding I/O behind compute,");
  footnote("but the synchronization inside the collective remains; ParColl");
  footnote("still reduces it — the two techniques compose");
  return 0;
}
