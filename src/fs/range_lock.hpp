// Whole-file byte-range locks (fcntl analogue).
//
// ROMIO's data-sieving writes bracket their read-modify-write windows with
// advisory file locks to stay atomic against other writers. The lock
// service serializes overlapping windows — which, for interleaved
// shared-file access, is precisely what collapses un-aggregated
// independent I/O on a parallel file system.
//
// Calls block the calling fiber; each acquire/release costs a lock-server
// round trip of virtual time.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fs/stripe.hpp"
#include "sim/engine.hpp"

namespace parcoll::fs {

class RangeLockManager {
 public:
  RangeLockManager(sim::Engine& engine, double roundtrip_seconds,
                   double server_op_seconds)
      : engine_(engine),
        roundtrip_(roundtrip_seconds),
        server_op_(server_op_seconds) {}

  /// Acquire an exclusive lock on `range` of `file_id` for `owner`.
  /// Blocks until no conflicting lock is held.
  void lock(int owner, int file_id, const Extent& range);

  /// Release a previously acquired lock (must match exactly).
  void unlock(int owner, int file_id, const Extent& range);

  [[nodiscard]] std::size_t held_count(int file_id) const;

 private:
  struct Held {
    Extent range;
    int owner;
  };
  bool conflicts(int file_id, int owner, const Extent& range) const;

  /// One lock-server transaction: client round trip plus a slot in the
  /// server's serial queue.
  void server_transaction();

  sim::Engine& engine_;
  double roundtrip_;
  double server_op_;
  double server_busy_until_ = 0.0;
  std::map<int, std::vector<Held>> held_;
  sim::WaitQueue waiters_;
};

}  // namespace parcoll::fs
