#include "workloads/runner.hpp"

#include "fs/lustre.hpp"

namespace parcoll::workloads {

const char* to_string(Impl impl) {
  switch (impl) {
    case Impl::PosixIndependent:
      return "posix-independent";
    case Impl::Sieving:
      return "sieving";
    case Impl::Independent:
      return "independent";
    case Impl::Ext2ph:
      return "ext2ph";
    case Impl::ParColl:
      return "parcoll";
  }
  return "?";
}

mpiio::Hints RunSpec::hints() const {
  mpiio::Hints hints;
  hints.cb_buffer_size = cb_buffer_size;
  hints.cb_nodes = cb_nodes;
  hints.cb_node_list = cb_node_list;
  if (impl == Impl::ParColl) {
    hints.parcoll_num_groups = parcoll_groups;
  }
  hints.parcoll_min_group_size = min_group_size;
  hints.parcoll_view_switch = view_switch;
  hints.parcoll_persistent_groups = persistent_groups;
  hints.cb_intranode = intranode;
  hints.cb_intranode_leader = intranode_leader;
  return hints;
}

machine::MachineModel RunSpec::model(int nranks) const {
  machine::MachineModel model =
      machine::MachineModel::jaguar(nranks, mapping, cores_per_node);
  if (tweak_model) {
    tweak_model(model);
  }
  return model;
}

RunResult collect(const mpi::World& world, const PhaseClock& clock,
                  std::uint64_t bytes, const mpiio::FileStats& stats) {
  RunResult result;
  result.elapsed = clock.elapsed();
  result.bytes = bytes;
  for (const mpi::TimeBreakdown& breakdown : world.rank_times()) {
    result.sum += breakdown;
  }
  result.stats = stats;
  auto& mutable_world = const_cast<mpi::World&>(world);
  auto& fs = mutable_world.fs();
  result.fs_rpcs = fs.total_rpcs();
  result.fs_lock_switches = fs.total_lock_switches();
  if (mutable_world.tracer() != nullptr) {
    result.trace = std::make_shared<mpi::Tracer>(*mutable_world.tracer());
  }
  result.faults = mutable_world.fault_state().total();
  return result;
}

}  // namespace parcoll::workloads
