// Ablation — how much of each result comes from the Lustre DLM lock model
// vs pure synchronization effects. Re-runs key configurations with extent
// lock revocation made free (no revocation overhead, no dirty flush).
//
// Expectation: the tile-io baseline/ParColl gap survives without the lock
// model (it is a synchronization phenomenon), while the Flash "w/o Coll"
// collapse and part of the BT-IO intermediate-view cost are lock-driven.
#include "bench/common.hpp"
#include "workloads/btio.hpp"
#include "workloads/flashio.hpp"
#include "workloads/tileio.hpp"

namespace {
void disable_locks(parcoll::machine::MachineModel& model) {
  model.storage.lock_revoke_overhead = 0;
  model.storage.lock_dirty_cap = 0;
}
}  // namespace

int main(int argc, char** argv) {
  const bool smoke = parcoll::bench::smoke_requested(argc, argv);
  using namespace parcoll;
  using namespace parcoll::bench;

  BenchReport report("abl_lock_model", argc, argv);
  header("Ablation: lock model", "with vs without DLM revocation costs");
  std::printf("  %-34s %12s %12s\n", "configuration", "with locks",
              "lock-free");

  const int nprocs = parcoll::bench::scaled(smoke, 256);
  const auto compare = [&](const std::string& name,
                           const std::function<workloads::RunResult(
                               const workloads::RunSpec&)>& run,
                           workloads::RunSpec spec, int run_nprocs) {
    const auto with = run(spec);
    spec.tweak_model = disable_locks;
    const auto without = run(spec);
    std::printf("  %-34s %10.1f %12.1f  MiB/s\n", name.c_str(),
                with.bandwidth_mib(), without.bandwidth_mib());
    report.add(name + "/locks", run_nprocs, with);
    report.add(name + "/lock-free", run_nprocs, without);
  };

  const auto tile_config = workloads::TileIOConfig::paper(nprocs);
  const auto tile = [&](const workloads::RunSpec& spec) {
    return workloads::run_tileio(tile_config, nprocs, spec, true);
  };
  compare("tile-io baseline", tile, baseline_spec(), nprocs);
  compare("tile-io ParColl-32", tile, parcoll_spec(32), nprocs);

  workloads::BtIOConfig bt_config;
  bt_config.nsteps = 2;
  const int bt_nprocs = parcoll::bench::scaled_square(smoke, 256);
  const auto bt = [&](const workloads::RunSpec& spec) {
    return workloads::run_btio(bt_config, bt_nprocs, spec, true);
  };
  auto bt_spec = parcoll_spec(16);
  bt_spec.cb_nodes = 16;
  compare("bt-io baseline", bt, baseline_spec(), bt_nprocs);
  compare("bt-io ParColl-16 (interm.)", bt, bt_spec, bt_nprocs);

  workloads::FlashConfig flash_config;
  flash_config.nvars = 6;  // scaled
  const auto flash = [&](const workloads::RunSpec& spec) {
    return workloads::run_flashio(flash_config, nprocs, spec, true);
  };
  compare("flash posix (w/o coll)", flash, posix_spec(), nprocs);
  compare("flash ParColl-32", flash, parcoll_spec(32), nprocs);

  footnote("sync-driven gaps survive lock-free; independent-write collapse");
  footnote("and part of the intermediate-view cost are lock-driven");
  return 0;
}
