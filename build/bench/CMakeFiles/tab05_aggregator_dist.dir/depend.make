# Empty dependencies file for tab05_aggregator_dist.
# This may be replaced when dependencies are built.
