// ParColl run configuration and per-call decision record.
#pragma once

#include <string>
#include <vector>

#include "core/file_area.hpp"
#include "mpiio/hints.hpp"

namespace parcoll::core {

/// The ParColl-relevant subset of the MPI-IO hints.
struct ParcollSettings {
  int num_groups = 0;
  int min_group_size = 8;
  bool view_switch = true;

  static ParcollSettings from(const mpiio::Hints& hints);

  /// ParColl partitioning is in effect when more than one group is asked
  /// for, or when the adaptive choice (kAutoGroups) is requested.
  [[nodiscard]] bool enabled() const {
    return num_groups > 1 || num_groups == kAutoGroups;
  }
};

/// What a collective call actually did — exposed for tests, benches, and
/// the close-time summary.
struct ParcollDecision {
  PartitionMode mode = PartitionMode::SingleGroup;
  int num_groups = 1;
  /// Comm-local aggregator ranks per group.
  std::vector<std::vector<int>> aggregators_per_group;

  [[nodiscard]] std::string describe() const;
};

[[nodiscard]] const char* to_string(PartitionMode mode);

}  // namespace parcoll::core
