// Collective-wall attribution: who caused the synchronization time?
//
// The paper's headline measurement is that process synchronization — the
// "collective wall" — dominates collective I/O at scale (72 % of
// MPI-Tile-IO at 512 processes, Fig. 2). This pass walks the span tree
// and, for every exchange/I-O cycle of every collective call, attributes
// the cycle's total sync time to its straggler: the rank that arrived
// last, i.e. the rank with the *smallest* sync wait in that cycle
// (everyone else was waiting for it). The result names the top straggler
// ranks, the wall share per ParColl subgroup, per protocol stage, and per
// time category — turning "sync is 72 %" into "sync is 72 % and rank 17
// caused a third of it in the exchange cycles of subgroup 2".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace parcoll::obs {

class SpanStore;
class JsonValue;
class MetricsRegistry;

/// One attribution unit: all sync recorded under a single
/// (call, subgroup, cycle, stage) key across ranks.
struct WallCycle {
  std::int64_t call = -1;
  std::int64_t group = -1;
  std::int64_t cycle = -1;
  std::string stage;        // enclosing stage/subgroup/call span name
  double sync_seconds = 0;  // summed over all ranks in this key
  int straggler = -1;       // rank that arrived last (min sync wait)
  double straggler_lag = 0; // max minus min sync wait within the key
  int nranks = 0;
  /// Burst-buffer drain work running inside this cycle's sync window —
  /// collective wall the write-behind hid (0 without bb).
  double hidden_by_bb = 0;
};

struct RankWall {
  int rank = 0;
  double caused = 0;    // sync time attributed to this rank as straggler
  double suffered = 0;  // sync time this rank itself spent waiting
  int cycles_caused = 0;
};

struct WallShare {
  std::string key;  // subgroup id, stage name, or time category
  double seconds = 0;
};

/// Per-OST load summary, from the fs-layer metrics (empty without them).
struct OstWall {
  int ost = 0;
  double service_s = 0;       // cumulative busy time served
  double peak_queue_s = 0;    // worst backlog seen at RPC issue
  std::uint64_t rpcs = 0;
  std::uint64_t bytes = 0;
};

/// p50/p95/p99/p99.9 summary of one latency instrument.
struct LatencySummary {
  std::string name;
  std::uint64_t count = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double p999 = 0;
  double max = 0;
};

struct WallReport {
  double total_seconds = 0;       // wall-clock span of all traced activity
  double total_sync = 0;          // all Sync phase time, everywhere
  double attributed_sync = 0;     // Sync inside an attributable cycle key
  std::vector<WallCycle> cycles;          // sorted by sync_seconds desc
  std::vector<RankWall> ranks;            // every rank, indexed by rank id
  std::vector<WallShare> group_shares;    // sync per ParColl subgroup
  std::vector<WallShare> stage_shares;    // sync per protocol stage
  std::vector<WallShare> category_shares; // total time per TimeCat
  /// Burst-buffer write-behind attribution (all 0 without bb):
  /// drain_seconds splits into the part no rank was blocked on
  /// (drain_hidden) and the part overlapping some rank's DrainWait.
  double drain_seconds = 0;       // total Drain-span work
  double drain_hidden = 0;        // drain work hidden behind the foreground
  double drain_exposed_wait = 0;  // summed DrainWait (ranks blocked on bb)
  /// Busiest OSTs by service time (from metrics; empty without them).
  std::vector<OstWall> osts;
  /// Tail-latency summaries of the quantile instruments (RPC latency,
  /// collective cycles, sync waits, drain waits; empty without metrics).
  std::vector<LatencySummary> latencies;

  [[nodiscard]] double coverage() const {
    return total_sync > 0 ? attributed_sync / total_sync : 1.0;
  }
};

[[nodiscard]] WallReport build_wall_report(const SpanStore& store);

/// As above, and additionally fold in the fs-layer metrics: per-OST load
/// (service time, peak queue, RPCs, bytes) and the tail-latency quantile
/// summaries. `metrics` may be null (plain span-only report).
[[nodiscard]] WallReport build_wall_report(const SpanStore& store,
                                           const MetricsRegistry* metrics);

/// Human-readable report (the `--wall-report` output): coverage line, top
/// stragglers, worst cycles, and the share tables.
[[nodiscard]] std::string format_wall_report(const WallReport& report,
                                             int top = 10);

[[nodiscard]] JsonValue wall_report_json(const WallReport& report,
                                         int top = 10);

}  // namespace parcoll::obs
