file(REMOVE_RECURSE
  "CMakeFiles/fig09_tileio_scalability.dir/fig09_tileio_scalability.cpp.o"
  "CMakeFiles/fig09_tileio_scalability.dir/fig09_tileio_scalability.cpp.o.d"
  "fig09_tileio_scalability"
  "fig09_tileio_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_tileio_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
