#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

#include "obs/json.hpp"

namespace parcoll::obs {

inline constexpr std::string_view kTimelineSchema = "parcoll-timeline";
inline constexpr int kTimelineVersion = 1;

TimeSeriesSampler::TimeSeriesSampler(double interval, std::size_t max_samples)
    : interval_(interval), max_samples_(std::max<std::size_t>(max_samples, 8)) {
  if (interval <= 0.0) {
    throw std::invalid_argument("TimeSeriesSampler: interval must be > 0");
  }
}

TimeSeriesSampler::ProbeId TimeSeriesSampler::add_probe(
    std::string name, std::function<double()> probe, bool rate) {
  ProbeEntry entry;
  entry.name = std::move(name);
  entry.probe = std::move(probe);
  entry.rate = rate;
  // Late registration (an object created mid-run): zero backfill so the
  // series stays aligned with the shared time axis.
  entry.values.assign(times_.size(), 0.0);
  probes_.push_back(std::move(entry));
  return probes_.size() - 1;
}

void TimeSeriesSampler::remove_probe(ProbeId id) {
  if (id < probes_.size()) {
    probes_[id].probe = nullptr;
  }
}

void TimeSeriesSampler::sample(double now) {
  const bool record = ticks_ % stride_ == 0;
  ++ticks_;
  if (!record) {
    return;
  }
  times_.push_back(now);
  for (ProbeEntry& entry : probes_) {
    double value = 0.0;
    if (entry.probe) {
      value = entry.probe();
    } else if (!entry.values.empty()) {
      value = entry.values.back();  // detached probe holds its last level
    }
    entry.values.push_back(value);
  }
  if (times_.size() > max_samples_) {
    // Decimate: keep even-indexed samples. Retained ticks stay multiples
    // of the doubled stride, so future recording aligns with the survivors.
    const auto keep_even = [](std::vector<double>& v) {
      std::size_t out = 0;
      for (std::size_t i = 0; i < v.size(); i += 2) {
        v[out++] = v[i];
      }
      v.resize(out);
    };
    keep_even(times_);
    for (ProbeEntry& entry : probes_) {
      keep_even(entry.values);
    }
    stride_ *= 2;
  }
}

std::shared_ptr<TimeSeries> TimeSeriesSampler::snapshot() const {
  auto out = std::make_shared<TimeSeries>();
  out->interval_s = interval_;
  out->stride = stride_;
  out->times_s = times_;
  out->series.reserve(probes_.size());
  for (const ProbeEntry& entry : probes_) {
    TimeSeries::Series series;
    series.name = entry.name;
    series.rate = entry.rate;
    series.values = entry.values;
    out->series.push_back(std::move(series));
  }
  return out;
}

const TimeSeries::Series* TimeSeries::find(const std::string& name) const {
  for (const Series& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

JsonValue TimeSeries::to_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("schema", kTimelineSchema);
  doc.set("version", kTimelineVersion);
  doc.set("interval_s", interval_s);
  doc.set("stride", stride);
  JsonValue times = JsonValue::array();
  for (double t : times_s) times.push(t);
  doc.set("times_s", std::move(times));
  JsonValue out_series = JsonValue::array();
  for (const Series& s : series) {
    JsonValue entry = JsonValue::object();
    entry.set("name", s.name);
    entry.set("kind", s.rate ? "rate" : "sample");
    JsonValue values = JsonValue::array();
    if (s.rate) {
      // Cumulative counter -> per-second rate over each recorded step.
      values.push(0.0);
      for (std::size_t i = 1; i < s.values.size(); ++i) {
        const double dt = times_s[i] - times_s[i - 1];
        values.push(dt > 0.0 ? (s.values[i] - s.values[i - 1]) / dt : 0.0);
      }
    } else {
      for (double v : s.values) values.push(v);
    }
    entry.set("values", std::move(values));
    out_series.push(std::move(entry));
  }
  doc.set("series", std::move(out_series));
  return doc;
}

namespace {

/// "prefix[0007]" -> 7; -1 when the name is not an indexed member of the
/// series family.
int indexed_suffix(const std::string& name, std::string_view prefix) {
  if (name.size() < prefix.size() + 2 ||
      name.compare(0, prefix.size(), prefix) != 0 ||
      name[prefix.size()] != '[' || name.back() != ']') {
    return -1;
  }
  int index = 0;
  for (std::size_t i = prefix.size() + 1; i + 1 < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    index = index * 10 + (name[i] - '0');
  }
  return index;
}

struct Ranked {
  int index;
  double value;
};

/// Top-n indexed series members by value at sample `at`.
std::vector<Ranked> top_at(const TimeSeries& series, std::string_view prefix,
                           std::size_t at, int top_n) {
  std::vector<Ranked> ranked;
  for (const TimeSeries::Series& s : series.series) {
    const int index = indexed_suffix(s.name, prefix);
    if (index < 0 || at >= s.values.size()) continue;
    ranked.push_back({index, s.values[at]});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    return a.value != b.value ? a.value > b.value : a.index < b.index;
  });
  if (static_cast<int>(ranked.size()) > top_n) {
    ranked.resize(static_cast<std::size_t>(top_n));
  }
  return ranked;
}

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string top_report(const TimeSeries& series, int top_n) {
  std::string out;
  out += "parcoll top: one line per sample (interval ";
  append(out, "%g s, stride %llu)\n", series.interval_s,
         static_cast<unsigned long long>(series.stride));
  const TimeSeries::Series* events = series.find("engine.events");
  for (std::size_t i = 0; i < series.times_s.size(); ++i) {
    append(out, "t=%12.6fs", series.times_s[i]);
    if (events != nullptr && i < events->values.size()) {
      const double dt = i > 0 ? series.times_s[i] - series.times_s[i - 1] : 0;
      const double rate =
          i > 0 && dt > 0
              ? (events->values[i] - events->values[i - 1]) / dt
              : 0.0;
      append(out, "  ev/s=%11.3e", rate);
    }
    const auto osts = top_at(series, "fs.ost.queue_depth_s", i, top_n);
    if (!osts.empty()) {
      out += "  ost_q:";
      for (const Ranked& r : osts) {
        append(out, " %d=%.3fms", r.index, r.value * 1e3);
      }
    }
    // Busiest ranks by total accrued time over the last step, summed over
    // all per-category series of the rank.
    std::vector<double> rank_delta;
    for (const TimeSeries::Series& s : series.series) {
      const std::size_t dot = s.name.rfind("_s[");
      if (s.name.rfind("mpi.rank.", 0) != 0 || dot == std::string::npos) {
        continue;
      }
      const int rank = indexed_suffix(s.name, s.name.substr(0, dot + 2));
      if (rank < 0 || i >= s.values.size()) continue;
      if (rank_delta.size() <= static_cast<std::size_t>(rank)) {
        rank_delta.resize(static_cast<std::size_t>(rank) + 1, 0.0);
      }
      const double prev = i > 0 ? s.values[i - 1] : 0.0;
      rank_delta[static_cast<std::size_t>(rank)] += s.values[i] - prev;
    }
    if (!rank_delta.empty()) {
      int busiest = 0;
      for (std::size_t r = 1; r < rank_delta.size(); ++r) {
        if (rank_delta[r] > rank_delta[static_cast<std::size_t>(busiest)]) {
          busiest = static_cast<int>(r);
        }
      }
      append(out, "  busiest_rank=%d (%.3fms)", busiest,
             rank_delta[static_cast<std::size_t>(busiest)] * 1e3);
    }
    const auto bb = top_at(series, "bb.node.used_bytes", i, top_n);
    double bb_total = 0.0;
    for (const TimeSeries::Series& s : series.series) {
      if (indexed_suffix(s.name, "bb.node.used_bytes") >= 0 &&
          i < s.values.size()) {
        bb_total += s.values[i];
      }
    }
    if (!bb.empty()) {
      append(out, "  bb=%.1fMiB", bb_total / (1024.0 * 1024.0));
    }
    out += '\n';
  }
  return out;
}

}  // namespace parcoll::obs
