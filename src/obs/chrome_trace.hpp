// Chrome trace-event (a.k.a. Perfetto legacy JSON) export of a span tree.
//
// Emits "X" complete events — one per span, timestamps in microseconds,
// tid = rank — so a traced run loads directly in chrome://tracing or
// ui.perfetto.dev. Structural spans nest by containment within a tid;
// Phase leaves carry their TimeCat as the event category.
#pragma once

#include <iosfwd>

namespace parcoll::obs {

class SpanStore;

void write_chrome_trace(std::ostream& os, const SpanStore& store);

}  // namespace parcoll::obs
