#include "sim/engine.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace parcoll::sim {

ProcId Engine::spawn(std::function<void()> body, std::size_t stack_bytes) {
  const ProcId pid = static_cast<ProcId>(procs_.size());
  Process proc;
  proc.fiber = std::make_unique<Fiber>(std::move(body), stack_bytes);
  proc.state = ProcState::Runnable;
  procs_.push_back(std::move(proc));
  ++live_;
  schedule_resume(now_, pid);
  return pid;
}

void Engine::schedule_resume(double t, ProcId pid) {
  queue_.push(Event{t, event_seq_++, pid, nullptr});
}

void Engine::post(double t, std::function<void()> fn) {
  if (t < now_) {
    throw std::logic_error("Engine::post: time in the past");
  }
  queue_.push(Event{t, event_seq_++, kNoProc, std::move(fn)});
}

void Engine::resume_process(ProcId pid) {
  // Note: the fiber body may spawn new processes, reallocating procs_, so
  // never hold a Process reference across resume(). The Fiber object itself
  // is heap-allocated and stable.
  Fiber* fiber = nullptr;
  {
    Process& proc = procs_.at(static_cast<std::size_t>(pid));
    if (proc.state == ProcState::Finished) {
      throw std::logic_error("Engine: resuming finished process");
    }
    proc.state = ProcState::Running;
    fiber = proc.fiber.get();
  }
  current_ = pid;
  try {
    fiber->resume();
  } catch (...) {
    // The body exited with an exception: mark the process dead so the
    // engine stays consistent, then let the error reach run()'s caller.
    current_ = kNoProc;
    Process& failed = procs_[static_cast<std::size_t>(pid)];
    failed.state = ProcState::Finished;
    failed.fiber.reset();
    --live_;
    throw;
  }
  current_ = kNoProc;
  Process& proc = procs_[static_cast<std::size_t>(pid)];
  if (fiber->finished()) {
    proc.state = ProcState::Finished;
    proc.fiber.reset();  // release the stack eagerly
    --live_;
  }
  // Otherwise the process suspended itself (sleep/suspend set its state).
}

void Engine::set_schedule(SchedulePolicy policy) {
  if (!choice_log_.empty() || now_ != 0.0) {
    throw std::logic_error("Engine::set_schedule: engine already ran");
  }
  policy_ = std::move(policy);
}

Engine::Event Engine::pop_next() {
  Event first = queue_.top();
  queue_.pop();
  if (policy_.kind == TieBreak::Program) {
    // Historical fast path: (time, seq) heap order is the schedule.
    return first;
  }
  if (queue_.empty() || queue_.top().time != first.time) {
    return first;  // a single candidate is not a choice point
  }
  // Gather every event tied at the minimal timestamp; heap order leaves
  // them sorted by sequence number, so alternative 0 is program order.
  std::vector<Event> ties;
  ties.push_back(std::move(first));
  while (!queue_.empty() && queue_.top().time == ties.front().time) {
    ties.push_back(queue_.top());
    queue_.pop();
  }
  const auto alternatives = static_cast<std::uint32_t>(ties.size());
  const std::uint32_t chosen =
      policy_.pick(choice_log_.size(), alternatives);
  choice_log_.push_back(ScheduleChoice{chosen, alternatives});
  if (policy_.record != nullptr) {
    policy_.record->push_back(choice_log_.back());
  }
  Event next = std::move(ties[chosen]);
  for (std::uint32_t i = 0; i < alternatives; ++i) {
    if (i != chosen) {
      queue_.push(std::move(ties[i]));
    }
  }
  return next;
}

void Engine::run() {
  while (!queue_.empty()) {
    Event event = pop_next();
    now_ = event.time;
    if (event.pid == kNoProc) {
      event.callback();
    } else {
      resume_process(event.pid);
    }
  }
  if (live_ > 0) {
    std::ostringstream message;
    message << "simulation deadlock at t=" << now_
            << "s; schedule=" << schedule_token() << "; blocked processes:";
    for (std::size_t pid = 0; pid < procs_.size(); ++pid) {
      if (procs_[pid].state == ProcState::Blocked) {
        message << " [pid " << pid << ": " << procs_[pid].block_reason << "]";
      }
    }
    throw DeadlockError(message.str());
  }
}

void Engine::sleep(double seconds) {
  if (seconds < 0) {
    throw std::logic_error("Engine::sleep: negative duration");
  }
  sleep_until(now_ + seconds);
}

void Engine::sleep_until(double t) {
  const ProcId pid = current_;
  if (pid == kNoProc) {
    throw std::logic_error("Engine::sleep_until outside a process");
  }
  if (t <= now_) {
    return;  // nothing to wait for; keep running
  }
  Process& proc = procs_[static_cast<std::size_t>(pid)];
  proc.state = ProcState::Runnable;  // will run again without external wake
  schedule_resume(t, pid);
  proc.fiber->yield();
}

void Engine::suspend(const char* why) {
  const ProcId pid = current_;
  if (pid == kNoProc) {
    throw std::logic_error("Engine::suspend outside a process");
  }
  Process& proc = procs_[static_cast<std::size_t>(pid)];
  proc.state = ProcState::Blocked;
  proc.block_reason = why;
  proc.fiber->yield();
}

void Engine::wake_at(double t, ProcId pid) {
  if (t < now_) {
    throw std::logic_error("Engine::wake_at: time in the past");
  }
  Process& proc = procs_.at(static_cast<std::size_t>(pid));
  if (proc.state != ProcState::Blocked) {
    throw std::logic_error("Engine::wake_at: process is not suspended");
  }
  proc.state = ProcState::Runnable;
  proc.block_reason.clear();
  schedule_resume(t, pid);
}

void WaitQueue::wait(Engine& engine, const char* why) {
  waiters_.push_back(engine.current());
  engine.suspend(why);
}

bool WaitQueue::notify_one(Engine& engine) {
  if (waiters_.empty()) return false;
  const ProcId pid = waiters_.front();
  waiters_.erase(waiters_.begin());
  engine.wake(pid);
  return true;
}

void WaitQueue::notify_all(Engine& engine) {
  while (notify_one(engine)) {
  }
}

}  // namespace parcoll::sim
