// MPI-style derived datatypes.
//
// A Datatype is an immutable value (shared state) describing a byte layout:
// its flattened segment list (type-map order), data size, and extent
// [lb, ub). Constructors mirror the MPI type constructors the paper's
// workloads need: contiguous, vector/hvector, indexed/hindexed, struct,
// subarray (MPI_Type_create_subarray, the workhorse of MPI-Tile-IO and
// BT-IO), and resized.
//
// Flattening is eager: every constructor materializes the segments, since
// the I/O layers need them anyway. Adjacent segments are coalesced.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <span>
#include <vector>

#include "dtype/segments.hpp"

namespace parcoll::dtype {

struct IndexedBlock {
  std::int64_t disp = 0;     // element (indexed) or byte (hindexed) displacement
  std::uint64_t count = 0;   // number of base elements in the block
};

class Datatype;

struct StructField {
  std::int64_t disp = 0;  // byte displacement
  std::uint64_t count = 0;
  const Datatype* type = nullptr;
};

class Datatype {
 public:
  /// Default: an empty (size-0, extent-0) type.
  Datatype();

  /// `n` contiguous bytes (the elementary building block; an MPI_DOUBLE is
  /// bytes(8) for layout purposes).
  static Datatype bytes(std::uint64_t n);

  static Datatype contiguous(std::uint64_t count, const Datatype& base);

  /// `count` blocks of `blocklen` base elements, block starts separated by
  /// `stride` base *elements* (may be negative).
  static Datatype vec(std::uint64_t count, std::uint64_t blocklen,
                      std::int64_t stride, const Datatype& base);

  /// Like vec but the stride is in bytes.
  static Datatype hvector(std::uint64_t count, std::uint64_t blocklen,
                          std::int64_t stride_bytes, const Datatype& base);

  /// Blocks of base elements at element displacements.
  static Datatype indexed(std::span<const IndexedBlock> blocks,
                          const Datatype& base);

  /// Blocks of base elements at byte displacements.
  static Datatype hindexed(std::span<const IndexedBlock> blocks,
                           const Datatype& base);

  static Datatype structured(std::span<const StructField> fields);

  enum class Order { C, Fortran };

  /// An ndims-dimensional subarray of `subsizes` starting at `starts`
  /// within a global array of `sizes`, of `element` items. The extent is
  /// the full global array, so tiling the type as a file view walks the
  /// global array — exactly MPI_Type_create_subarray semantics.
  static Datatype subarray(std::span<const std::int64_t> sizes,
                           std::span<const std::int64_t> subsizes,
                           std::span<const std::int64_t> starts,
                           const Datatype& element, Order order = Order::C);

  /// Same layout, new lower bound and extent (MPI_Type_create_resized).
  static Datatype resized(const Datatype& base, std::int64_t lb,
                          std::uint64_t extent);

  /// Build directly from byte segments in type-map order with an explicit
  /// [lb, ub). The efficient path for workloads that compute their layout
  /// themselves (e.g. BT-IO's diagonal multi-partitioning).
  static Datatype from_segments(std::vector<Segment> segments, std::int64_t lb,
                                std::int64_t ub);

  enum class Distribution { Block, Cyclic, None };

  /// MPI_Type_create_darray: this process's piece of an ndims-dimensional
  /// global array distributed over a process grid (HPF-style). `dargs[d]`
  /// is the blocking factor per dimension (0 = default: ceil(size/psize)
  /// for Block, 1 for Cyclic). C order. The extent is the full array.
  static Datatype darray(int rank, std::span<const std::int64_t> sizes,
                         std::span<const Distribution> dists,
                         std::span<const std::int64_t> dargs,
                         std::span<const std::int64_t> psizes,
                         const Datatype& element);

  /// Bytes of actual data.
  [[nodiscard]] std::uint64_t size() const { return state_->size; }
  /// ub - lb: the stride when the type is repeated.
  [[nodiscard]] std::int64_t extent() const { return state_->ub - state_->lb; }
  [[nodiscard]] std::int64_t lb() const { return state_->lb; }
  [[nodiscard]] std::int64_t ub() const { return state_->ub; }

  /// Flattened segments in type-map order, displacements relative to origin.
  [[nodiscard]] const std::vector<Segment>& segments() const {
    return state_->segments;
  }

  /// Segments of `count` repetitions (each shifted by k * extent), coalesced.
  [[nodiscard]] std::vector<Segment> tiled_segments(std::uint64_t count) const;

  /// True if this type can serve as a file view filetype (monotone map).
  [[nodiscard]] bool monotone() const;

  /// Human-readable one-line summary: size, extent, segment count, and the
  /// first few segments. For debugging and error messages.
  [[nodiscard]] std::string describe() const;

 private:
  struct State {
    std::vector<Segment> segments;
    std::uint64_t size = 0;
    std::int64_t lb = 0;
    std::int64_t ub = 0;
  };
  explicit Datatype(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}
  static Datatype make(std::vector<Segment> segments, std::int64_t lb,
                       std::int64_t ub);

  std::shared_ptr<const State> state_;
};

}  // namespace parcoll::dtype
