// Schedule-space exploration: run one workload configuration under many
// event tie-break schedules (seeded-random probes and bounded DFS over
// choice points) and check that every schedule satisfies the collective
// invariants and produces byte-identical file contents.
//
// The reference outcome is the clean program-order run of the same
// configuration with the fault plan stripped. Lustre failover redirects
// only the *timing* of service — bytes land at identical logical offsets —
// so a degraded or permuted run that completes must reproduce the clean
// run's content digest exactly; anything else is a protocol bug.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "sim/schedule.hpp"
#include "workloads/runner.hpp"

namespace parcoll::check {

/// One workload configuration the checker probes. Workload shapes are
/// deliberately tiny (a few KB per rank) so a single schedule runs in
/// milliseconds and a smoke budget covers hundreds of schedules.
struct CheckConfig {
  std::string name;             // stable id, used by --config and replay lines
  std::string workload = "tileio";  // tileio | ior | btio | flashio
  int nprocs = 8;
  workloads::Impl impl = workloads::Impl::Ext2ph;
  int groups = 0;               // ParColl-N (0 = auto partitioning)
  int cb_nodes = 0;             // 0 = all nodes
  int min_group_size = 1;
  bool intranode = false;       // two-level intra-node aggregation
  std::string fault_spec;       // FaultPlan::parse input; empty = clean
  // Burst-buffer staging tier (bb=enable). Schedules and fault plans must
  // not change the bytes the drains eventually land.
  bool bb = false;
  std::uint64_t bb_capacity = 256ull << 20;
  std::string bb_drain = "immediate";
  // Checksum pipeline level (off|detect|repair). Corruption configs run at
  // repair so every injected flip heals and the content-equivalence check
  // against the clean reference still applies.
  std::string integrity = "off";
  bool scrub = true;

  /// The byte-true RunSpec this configuration describes (before the
  /// schedule policy and checker are attached).
  [[nodiscard]] workloads::RunSpec spec() const;
};

/// What one schedule of one configuration did.
struct ScheduleOutcome {
  bool completed = false;       // the run finished (no exception)
  bool deadlock = false;        // sim::DeadlockError escaped
  std::string error;            // what() of the escaping exception, if any
  std::string token;            // replay token of the schedule that ran
  std::vector<sim::ScheduleChoice> log;  // executed choice points
  std::uint64_t digest = 0;     // file-content digest (completed runs)
  bool verified = false;        // byte-true file audit passed
  std::uint64_t invariant_checks = 0;
  std::vector<Violation> violations;
  fault::FaultCounters faults;
};

/// Run `config` once under `policy`. Never throws: deadlocks and protocol
/// errors come back as outcome fields so the explorer can keep going.
[[nodiscard]] ScheduleOutcome run_schedule(const CheckConfig& config,
                                           const sim::SchedulePolicy& policy);

enum class ExploreMode { Random, Dfs, Both };

struct ExploreOptions {
  ExploreMode mode = ExploreMode::Both;
  std::uint64_t seed = 1;   // base seed for the random probes
  int budget = 64;          // schedules to run for this configuration
  int dfs_depth = 8;        // bounded-DFS backtrack horizon (choice points)
  bool stop_on_violation = true;
};

/// A violation found during exploration, with enough context to replay it.
struct ExploreViolation {
  std::string config;       // CheckConfig::name
  std::string invariant;    // which invariant (or "deadlock"/"error"/...)
  std::string detail;
  std::string token;        // schedule token that triggered it
};

struct ExploreStats {
  std::uint64_t schedules = 0;         // runs executed
  std::uint64_t distinct = 0;          // distinct schedule signatures seen
  std::uint64_t invariant_checks = 0;  // checker observations, summed
  std::uint64_t faulted_runs = 0;      // runs where degraded-mode engaged
  std::vector<ExploreViolation> violations;
  [[nodiscard]] bool ok() const { return violations.empty(); }
  ExploreStats& operator+=(const ExploreStats& other);
};

/// Explore `config` under `options`. The clean program-order reference run
/// is executed first (it counts toward `schedules`); every subsequent
/// schedule is checked against its digest.
[[nodiscard]] ExploreStats explore(const CheckConfig& config,
                                   const ExploreOptions& options);

/// The checker's standing smoke matrix: workloads x implementations x
/// fault plans, all tiny. Fault plans are tuned so degraded mode actually
/// engages (retries, failovers, re-elections) on the program-order run.
[[nodiscard]] std::vector<CheckConfig> smoke_configs();

/// Render the one-line replay command for a violation.
[[nodiscard]] std::string replay_command(const ExploreViolation& violation);

// --- Deliberate bug injection (self-test) ----------------------------------

/// Which bug run_bug_schedule plants in its 4-rank probe program.
enum class InjectedBug {
  None,      // correct program: barrier then allreduce on every rank
  Mismatch,  // schedule-dependent collective-kind mismatch
  Deadlock,  // schedule-dependent missing collective call
};

/// Run a small hand-written SPMD program whose bug (when injected) only
/// fires on schedules where the second fiber to start at t=0 is not rank 1
/// — i.e. never under program order, deterministically under permuted
/// schedules. Used to prove the checker catches real interleaving bugs and
/// that the printed replay token reproduces them.
[[nodiscard]] ScheduleOutcome run_bug_schedule(
    const sim::SchedulePolicy& policy, InjectedBug bug);

/// Planted-bug self-test for the checksum pipeline (--inject-bug
/// corruption): the same silently-corrupting fault plan is run three ways.
/// The clean reference pins the expected bytes; with integrity off the
/// corruption must slip through (digest diverges / audit fails — proving
/// the injection is real and silent); with integrity=repair every flip
/// must be detected and healed so the run matches the reference exactly.
/// The returned stats carry a violation for each expectation that failed
/// (empty violations = the demonstration holds).
[[nodiscard]] ExploreStats corruption_selftest();

}  // namespace parcoll::check
