// Topology (block/cyclic rank->node mapping) and the machine model defaults.
#include <gtest/gtest.h>

#include <vector>

#include "machine/machine_model.hpp"
#include "sim/random.hpp"

namespace parcoll::machine {
namespace {

std::vector<int> as_vector(std::span<const int> ranks) {
  return {ranks.begin(), ranks.end()};
}

TEST(Topology, BlockMappingMatchesPaperFig5) {
  // Fig. 5 block column: N0(P0,P1) N1(P2,P3) N2(P4,P5) N3(P6,P7).
  const Topology topo(8, 2, Mapping::Block);
  EXPECT_EQ(topo.num_nodes(), 4);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(1), 0);
  EXPECT_EQ(topo.node_of(2), 1);
  EXPECT_EQ(topo.node_of(5), 2);
  EXPECT_EQ(topo.node_of(7), 3);
  EXPECT_EQ(as_vector(topo.ranks_on_node(0)), (std::vector<int>{0, 1}));
  EXPECT_EQ(as_vector(topo.ranks_on_node(3)), (std::vector<int>{6, 7}));
}

TEST(Topology, CyclicMappingMatchesPaperFig5) {
  // Fig. 5 cyclic column: N0(P0,P4) N1(P1,P5) N2(P2,P6) N3(P3,P7).
  const Topology topo(8, 2, Mapping::Cyclic);
  EXPECT_EQ(topo.num_nodes(), 4);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(4), 0);
  EXPECT_EQ(topo.node_of(1), 1);
  EXPECT_EQ(topo.node_of(6), 2);
  EXPECT_EQ(as_vector(topo.ranks_on_node(0)), (std::vector<int>{0, 4}));
  EXPECT_EQ(as_vector(topo.ranks_on_node(2)), (std::vector<int>{2, 6}));
}

TEST(Topology, UnevenLastNode) {
  const Topology topo(7, 2, Mapping::Block);
  EXPECT_EQ(topo.num_nodes(), 4);
  EXPECT_EQ(as_vector(topo.ranks_on_node(3)), (std::vector<int>{6}));
}

TEST(Topology, CyclicUnevenTailWrapsShortNodes) {
  // 7 ranks over 4 nodes, cyclic: node_of(r) = r % 4, so node 3 only sees
  // the first pass (no rank 7 to wrap around onto it).
  const Topology topo(7, 2, Mapping::Cyclic);
  EXPECT_EQ(topo.num_nodes(), 4);
  EXPECT_EQ(as_vector(topo.ranks_on_node(0)), (std::vector<int>{0, 4}));
  EXPECT_EQ(as_vector(topo.ranks_on_node(2)), (std::vector<int>{2, 6}));
  EXPECT_EQ(as_vector(topo.ranks_on_node(3)), (std::vector<int>{3}));
}

TEST(Topology, SingleCorePlacesOneRankPerNode) {
  const Topology topo(5, 1, Mapping::Cyclic);
  EXPECT_EQ(topo.num_nodes(), 5);
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(topo.node_of(r), r);
    EXPECT_EQ(as_vector(topo.ranks_on_node(r)), (std::vector<int>{r}));
  }
}

TEST(Topology, RanksOnNodePartitionsAllRanks) {
  // The precomputed per-node lists must partition [0, nranks) for both
  // mappings, including non-divisible counts.
  for (const Mapping mapping : {Mapping::Block, Mapping::Cyclic}) {
    const Topology topo(11, 4, mapping);
    std::vector<int> seen;
    for (int n = 0; n < topo.num_nodes(); ++n) {
      const auto ranks = topo.ranks_on_node(n);
      for (std::size_t i = 0; i < ranks.size(); ++i) {
        EXPECT_EQ(topo.node_of(ranks[i]), n);
        if (i > 0) EXPECT_LT(ranks[i - 1], ranks[i]);  // ascending
        seen.push_back(ranks[i]);
      }
    }
    EXPECT_EQ(seen.size(), 11u);
  }
}

TEST(Topology, BadArgumentsThrow) {
  EXPECT_THROW(Topology(0, 2), std::invalid_argument);
  EXPECT_THROW(Topology(4, 0), std::invalid_argument);
  const Topology topo(4, 2);
  EXPECT_THROW(static_cast<void>(topo.node_of(-1)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(topo.node_of(4)), std::out_of_range);
  EXPECT_THROW(topo.ranks_on_node(2), std::out_of_range);
}

TEST(MachineModel, JaguarDefaultsMatchPaperTestbed) {
  const MachineModel model = MachineModel::jaguar(512);
  EXPECT_EQ(model.topology.cores_per_node(), 2);  // dual-core PEs
  EXPECT_EQ(model.topology.num_nodes(), 256);
  EXPECT_EQ(model.storage.num_osts, 72);          // the tested file system
  EXPECT_EQ(model.storage.default_stripe_count, 64);
  EXPECT_EQ(model.storage.default_stripe_size, 4ull << 20);
}

TEST(Random, JitterIsDeterministicAndInRange) {
  for (std::uint64_t seed : {1ull, 42ull, 12345ull}) {
    for (std::uint64_t seq = 0; seq < 100; ++seq) {
      const double a = sim::jitter01(seed, 7, seq);
      const double b = sim::jitter01(seed, 7, seq);
      EXPECT_EQ(a, b);
      EXPECT_GE(a, 0.0);
      EXPECT_LT(a, 1.0);
    }
  }
}

TEST(Random, DistinctStreamsDiffer) {
  int same = 0;
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    if (sim::jitter01(42, 1, seq) == sim::jitter01(42, 2, seq)) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Random, Mix64AvalanchesLowBits) {
  // Consecutive inputs should produce wildly different outputs.
  EXPECT_NE(sim::mix64(1) & 0xffff, sim::mix64(2) & 0xffff);
  EXPECT_NE(sim::mix64(0), sim::mix64(1));
}

TEST(MachineModel, FileSystemPersonalities) {
  const MachineModel gpfs = MachineModel::gpfs_like(64);
  EXPECT_EQ(gpfs.storage.num_osts, 32);
  EXPECT_EQ(gpfs.storage.default_stripe_size, 1ull << 20);
  EXPECT_EQ(gpfs.storage.lock_dirty_cap, 0u);  // token locks, no flush
  const MachineModel pvfs = MachineModel::pvfs_like(64);
  EXPECT_DOUBLE_EQ(pvfs.storage.lock_revoke_overhead, 0.0);  // no locking
  EXPECT_DOUBLE_EQ(pvfs.storage.flock_server_time, 0.0);
  // The compute side stays the Jaguar-like machine.
  EXPECT_EQ(pvfs.topology.cores_per_node(), 2);
}

}  // namespace
}  // namespace parcoll::machine
