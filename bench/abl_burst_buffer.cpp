// Ablation — burst-buffer staging tier (asynchronous write-behind drain).
//
// With bb=enable the aggregators' collective writes land in a per-node
// staging arena and return; background drain fibers write the staged
// segments behind to Lustre. The foreground run therefore stops paying
// the filesystem's service time inside the collective — it moves into
// hidden drain seconds — until the arena fills and stage() has to spill
// to the synchronous path.
//
// The sweep crosses drain policy x arena capacity (as a multiple of the
// bytes each node stages per run) against the bb-off baseline. Columns:
// durable = time until the last drain lands (time-to-durability; elapsed
// is the foreground span), drain = hidden background drain seconds,
// dwait = exposed foreground blocking on drains (summed over ranks),
// spills = capacity-pressure fallbacks to the synchronous path.
//
// Every run is byte-true and must reproduce the bb-off baseline's
// content digest exactly — write-behind may only move time, never bytes.
// A digest mismatch fails the bench (nonzero exit).
#include <cinttypes>

#include "bench/common.hpp"
#include "core/file_area.hpp"
#include "workloads/tileio.hpp"

int main(int argc, char** argv) {
  const bool smoke = parcoll::bench::smoke_requested(argc, argv);
  using namespace parcoll;
  using namespace parcoll::bench;

  BenchReport report("abl_burst_buffer", argc, argv);
  const int nprocs = scaled(smoke, 128);
  const auto config = workloads::TileIOConfig::paper(nprocs);

  header("Ablation: burst-buffer staging tier",
         "Tile-IO (P=" + std::to_string(nprocs) +
             "), write-behind drain by policy and arena capacity");
  std::printf("  %-28s %9s %9s %9s %6s %8s %8s %7s\n", "series", "MiB/s",
              "elapsed s", "durable s", "sync%", "drain s", "dwait s",
              "spills");

  const auto make_spec = [&]() {
    workloads::RunSpec spec = parcoll_spec(core::kAutoGroups);
    spec.byte_true = true;  // digests must be meaningful
    return spec;
  };
  const auto print_row = [&](const std::string& series,
                             const workloads::RunResult& result) {
    std::printf("  %-28s %9.1f %9.3f %9.3f %5.1f%% %8.3f %8.3f %7" PRIu64
                "\n",
                series.c_str(), result.bandwidth_mib(), result.elapsed,
                result.total_elapsed, 100.0 * result.sync_fraction(),
                result.stats.time[mpi::TimeCat::Drain],
                result.sum[mpi::TimeCat::DrainWait], result.stats.bb_spills);
    report.add(series, nprocs, result);
  };

  const workloads::RunResult base =
      workloads::run_tileio(config, nprocs, make_spec(), true);
  print_row("bb-off", base);
  std::printf("\n");

  // Capacity as a multiple of the bytes each node stages per run, so the
  // x1/4 point is guaranteed capacity pressure (spills engage) and the x4
  // point is guaranteed headroom regardless of the smoke shrink.
  const auto nnodes = static_cast<std::uint64_t>(
      (nprocs + make_spec().cores_per_node - 1) / make_spec().cores_per_node);
  const std::uint64_t per_node = std::max<std::uint64_t>(
      base.bytes / std::max<std::uint64_t>(nnodes, 1), 1);

  bool digests_ok = true;
  const bb::DrainPolicy policies[] = {
      bb::DrainPolicy::Immediate, bb::DrainPolicy::Watermark,
      bb::DrainPolicy::Deadline, bb::DrainPolicy::Arbitrate};
  const struct {
    const char* label;
    double factor;
  } capacities[] = {{"x1/4", 0.25}, {"x1", 1.0}, {"x4", 4.0}};

  for (const bb::DrainPolicy policy : policies) {
    for (const auto& cap : capacities) {
      workloads::RunSpec spec = make_spec();
      spec.bb.enabled = true;
      spec.bb.policy = policy;
      spec.bb.capacity = std::max<std::uint64_t>(
          static_cast<std::uint64_t>(cap.factor *
                                     static_cast<double>(per_node)),
          64 << 10);
      const auto result = workloads::run_tileio(config, nprocs, spec, true);
      const std::string series =
          std::string("bb-") + bb::to_string(policy) + "/cap" + cap.label;
      print_row(series, result);
      if (result.file_digest != base.file_digest) {
        digests_ok = false;
        std::fprintf(stderr,
                     "DIGEST MISMATCH: %s produced %016" PRIx64
                     ", bb-off baseline %016" PRIx64 "\n",
                     series.c_str(), result.file_digest, base.file_digest);
      }
    }
    std::printf("\n");
  }

  footnote("write-behind converts foreground fs service time into hidden");
  footnote("drain seconds: elapsed and sync% drop vs bb-off while durable");
  footnote("(time-to-durability) absorbs the deferred work. Undersized");
  footnote("arenas (x1/4) spill back to the synchronous path and give the");
  footnote("win back; all digests must equal the bb-off baseline");
  if (!digests_ok) {
    std::fprintf(stderr, "abl_burst_buffer: content digest check FAILED\n");
    return 1;
  }
  return 0;
}
