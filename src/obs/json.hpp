// Minimal JSON document model: build, serialize, parse.
//
// The observability exporters (Chrome trace, run/bench JSON, the wall
// report) and the trajectory tooling all speak JSON; this keeps the repo
// dependency-free. Objects preserve insertion order so exported documents
// are deterministic and diff-friendly; integers are kept exact (separate
// from doubles) so counters round-trip bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace parcoll::obs {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  enum class Type { Null, Bool, Int, Uint, Double, String, Array, Object };

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(int v) : value_(static_cast<std::int64_t>(v)) {}
  JsonValue(long v) : value_(static_cast<std::int64_t>(v)) {}
  JsonValue(long long v) : value_(static_cast<std::int64_t>(v)) {}
  JsonValue(unsigned v) : value_(static_cast<std::uint64_t>(v)) {}
  JsonValue(unsigned long v) : value_(static_cast<std::uint64_t>(v)) {}
  JsonValue(unsigned long long v) : value_(static_cast<std::uint64_t>(v)) {}
  JsonValue(double v) : value_(v) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(std::string_view s) : value_(std::string(s)) {}

  static JsonValue object() { return JsonValue(Object{}); }
  static JsonValue array() { return JsonValue(Array{}); }

  [[nodiscard]] Type type() const {
    return static_cast<Type>(value_.index());
  }
  [[nodiscard]] bool is_object() const { return type() == Type::Object; }
  [[nodiscard]] bool is_array() const { return type() == Type::Array; }
  [[nodiscard]] bool is_number() const {
    return type() == Type::Int || type() == Type::Uint ||
           type() == Type::Double;
  }

  /// Object: append (or overwrite) a member. Returns *this for chaining.
  JsonValue& set(std::string key, JsonValue value);
  /// Array: append an element.
  void push(JsonValue value);

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  /// Numeric value as double, whatever the underlying numeric type.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(value_);
  }
  [[nodiscard]] const Array& items() const { return std::get<Array>(value_); }
  [[nodiscard]] const Object& members() const {
    return std::get<Object>(value_);
  }

  /// Serialize. `indent < 0` emits the compact form; `indent >= 0` pretty
  /// prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse a complete JSON document (throws std::runtime_error with a
  /// character position on malformed input or trailing garbage).
  static JsonValue parse(std::string_view text);

 private:
  explicit JsonValue(Array a) : value_(std::move(a)) {}
  explicit JsonValue(Object o) : value_(std::move(o)) {}

  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
               std::string, Array, Object>
      value_;
};

}  // namespace parcoll::obs
