#include "mpiio/view.hpp"

#include <stdexcept>

namespace parcoll::mpiio {

FileView::FileView() {
  flat_ = dtype::FlatType::from(dtype::Datatype::bytes(1));
}

FileView::FileView(std::uint64_t disp, std::uint64_t etype_size,
                   const dtype::Datatype& filetype)
    : disp_(disp), etype_size_(etype_size) {
  if (etype_size == 0) {
    throw std::invalid_argument("FileView: etype size must be positive");
  }
  if (!filetype.monotone()) {
    throw std::invalid_argument(
        "FileView: filetype displacements must be monotonically "
        "non-decreasing");
  }
  if (filetype.size() == 0) {
    throw std::invalid_argument("FileView: filetype has no data");
  }
  if (filetype.lb() < 0) {
    throw std::invalid_argument("FileView: negative lower bound");
  }
  if (filetype.size() % etype_size != 0) {
    throw std::invalid_argument(
        "FileView: filetype size must be a multiple of the etype size");
  }
  flat_ = dtype::FlatType::from(filetype);
  contiguous_ = flat_.segs.size() == 1 && flat_.segs[0].disp == 0 &&
                flat_.size == static_cast<std::uint64_t>(flat_.extent);
}

std::vector<fs::Extent> FileView::map(std::uint64_t offset_etypes,
                                      std::uint64_t nbytes) const {
  std::vector<fs::Extent> extents;
  if (nbytes == 0) return extents;
  const std::uint64_t begin = offset_etypes * etype_size_;
  const std::uint64_t end = begin + nbytes;

  if (contiguous_) {
    extents.push_back(fs::Extent{disp_ + begin, nbytes});
    return extents;
  }

  const std::uint64_t tile_bytes = flat_.size;
  const auto tile_span = static_cast<std::uint64_t>(flat_.extent);
  auto emit = [&](std::uint64_t offset, std::uint64_t length) {
    if (length == 0) return;
    if (!extents.empty() &&
        extents.back().offset + extents.back().length == offset) {
      extents.back().length += length;
    } else {
      extents.push_back(fs::Extent{offset, length});
    }
  };

  std::uint64_t pos = begin;
  while (pos < end) {
    const std::uint64_t tile = pos / tile_bytes;
    const std::uint64_t in_tile_begin = pos - tile * tile_bytes;
    const std::uint64_t in_tile_end =
        std::min<std::uint64_t>(end - tile * tile_bytes, tile_bytes);
    for (const dtype::Segment& seg :
         flat_.stream_range(in_tile_begin, in_tile_end)) {
      emit(disp_ + tile * tile_span + static_cast<std::uint64_t>(seg.disp),
           seg.length);
    }
    pos = (tile + 1) * tile_bytes;
  }
  return extents;
}

}  // namespace parcoll::mpiio
