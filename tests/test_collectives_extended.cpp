// The extended collective set: scatter(v), gather, reduce, scan,
// alltoallv, sendrecv — data semantics and synchronization behaviour.
#include <gtest/gtest.h>

#include "mpi/collectives.hpp"
#include "mpi/runtime.hpp"

namespace parcoll::mpi {
namespace {

World make_world(int nranks) {
  return World(machine::MachineModel::jaguar(nranks));
}

TEST(CollectivesExt, ScatterDistributesRootValues) {
  World world = make_world(4);
  std::vector<int> got(4, -1);
  world.run([&](Rank& self) {
    std::vector<int> values;
    if (self.rank() == 1) values = {10, 11, 12, 13};
    got[self.rank()] = scatter(self, self.comm_world(), 1, values);
  });
  EXPECT_EQ(got, (std::vector<int>{10, 11, 12, 13}));
}

TEST(CollectivesExt, ScatterValidatesRootCount) {
  World world = make_world(2);
  EXPECT_THROW(world.run([&](Rank& self) {
                 std::vector<int> values{1};  // too short at root
                 scatter(self, self.comm_world(), 0,
                         self.rank() == 0 ? values : std::vector<int>{});
               }),
               std::logic_error);
}

TEST(CollectivesExt, ScattervVariableLengths) {
  World world = make_world(3);
  std::vector<std::vector<int>> got(3);
  world.run([&](Rank& self) {
    std::vector<std::vector<int>> rows;
    if (self.rank() == 0) {
      rows = {{}, {5}, {6, 7, 8}};
    }
    got[self.rank()] = scatterv(self, self.comm_world(), 0, rows);
  });
  EXPECT_TRUE(got[0].empty());
  EXPECT_EQ(got[1], (std::vector<int>{5}));
  EXPECT_EQ(got[2], (std::vector<int>{6, 7, 8}));
}

TEST(CollectivesExt, GatherOnlyRootReceives) {
  World world = make_world(4);
  std::vector<std::size_t> sizes(4, 99);
  std::vector<int> at_root;
  world.run([&](Rank& self) {
    const auto gathered = gather(self, self.comm_world(), 2, self.rank() * 3);
    sizes[self.rank()] = gathered.size();
    if (self.rank() == 2) at_root = gathered;
  });
  EXPECT_EQ(sizes, (std::vector<std::size_t>{0, 0, 4, 0}));
  EXPECT_EQ(at_root, (std::vector<int>{0, 3, 6, 9}));
}

TEST(CollectivesExt, ReduceAtRoot) {
  World world = make_world(5);
  std::vector<long> results(5, -1);
  world.run([&](Rank& self) {
    results[self.rank()] = reduce(self, self.comm_world(), 0,
                                  static_cast<long>(self.rank() + 1),
                                  [](long a, long b) { return a * b; });
  });
  EXPECT_EQ(results[0], 120);  // 5!
  EXPECT_EQ(results[3], 0);    // non-roots get T{}
}

TEST(CollectivesExt, InclusiveScan) {
  World world = make_world(4);
  std::vector<int> results(4);
  world.run([&](Rank& self) {
    results[self.rank()] = scan(self, self.comm_world(), self.rank() + 1,
                                [](int a, int b) { return a + b; });
  });
  EXPECT_EQ(results, (std::vector<int>{1, 3, 6, 10}));
}

TEST(CollectivesExt, AlltoallvExchangesRaggedRows) {
  World world = make_world(3);
  std::vector<std::vector<std::vector<int>>> results(3);
  world.run([&](Rank& self) {
    // Rank r sends j copies of (r*10 + j) to rank j.
    std::vector<std::vector<int>> send(3);
    for (int j = 0; j < 3; ++j) {
      send[j].assign(static_cast<std::size_t>(j), self.rank() * 10 + j);
    }
    results[self.rank()] = alltoallv(self, self.comm_world(), send);
  });
  for (int r = 0; r < 3; ++r) {
    for (int j = 0; j < 3; ++j) {
      // What j sent to r: r copies of (j*10 + r).
      EXPECT_EQ(results[r][j].size(), static_cast<std::size_t>(r));
      for (int value : results[r][j]) {
        EXPECT_EQ(value, j * 10 + r);
      }
    }
  }
}

TEST(CollectivesExt, SendrecvRingShiftsWithoutDeadlock) {
  constexpr int kRanks = 8;
  World world = make_world(kRanks);
  std::vector<int> got(kRanks, -1);
  world.run([&](Rank& self) {
    const int to = (self.rank() + 1) % kRanks;
    const int from = (self.rank() + kRanks - 1) % kRanks;
    const int payload = self.rank() * 100;
    int incoming = -1;
    const auto n = sendrecv(self, self.comm_world(), to, 5, &payload,
                            sizeof(payload), from, 5, &incoming,
                            sizeof(incoming));
    EXPECT_EQ(n, sizeof(int));
    got[self.rank()] = incoming;
  });
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(got[r], ((r + kRanks - 1) % kRanks) * 100);
  }
}

TEST(CollectivesExt, CollectivesComposeAcrossSubcommunicators) {
  World world = make_world(8);
  std::vector<int> results(8);
  world.run([&](Rank& self) {
    const Comm half =
        comm_split(self, self.comm_world(), self.rank() % 2, self.rank());
    // Scatter within the half, then reduce the results globally.
    std::vector<int> values;
    if (half.local_rank(self.rank()) == 0) {
      values = {1, 2, 3, 4};
    }
    const int mine = scatter(self, half, 0, values);
    results[self.rank()] =
        allreduce_sum(self, self.comm_world(), mine);
  });
  // Both halves scatter {1,2,3,4}: global sum = 2 * 10.
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(results[r], 20);
  }
}

TEST(CollectivesExt, CommDupIsolatesTraffic) {
  World world = make_world(4);
  world.run([&](Rank& self) {
    const Comm dup = comm_dup(self, self.comm_world());
    EXPECT_EQ(dup.size(), 4);
    EXPECT_EQ(dup.local_rank(self.rank()), self.rank());
    EXPECT_NE(dup.context_id(), self.comm_world().context_id());
    // Collectives on the two communicators interleave freely.
    const auto a = allgather(self, dup, self.rank());
    const auto b = allgather(self, self.comm_world(), self.rank() * 2);
    EXPECT_EQ(a[2], 2);
    EXPECT_EQ(b[2], 4);
  });
}

}  // namespace
}  // namespace parcoll::mpi
