// bench_to_trajectory — fold per-bench JSON documents into a trajectory
// file (BENCH_smoke.json) that accumulates one entry per recorded run.
//
// Each input is a "parcoll-run" document written by a bench's --json flag
// (bench/common.hpp BenchReport). The trajectory keeps only the trend
// signal per point — series, nprocs, bandwidth, elapsed, sync share — so
// the file stays small as history accumulates.
//
// Usage:
//   bench_to_trajectory --out BENCH_smoke.json --label pr5 \
//       abl_group_size.json abl_seeds.json ...
//   bench_to_trajectory --check-regression BENCH_smoke.json 2 \
//       abl_group_size.json abl_seeds.json ...
//
// When --out already exists and is a valid trajectory document, the new
// entry is appended to its "runs" array; otherwise a fresh document is
// started. Exit status 0 on success, 2 on usage errors, 1 when an input
// cannot be read or parsed.
//
// --check-regression BASELINE.json PCT compares the inputs against the
// *last* run recorded in the baseline trajectory and exits non-zero when
// any deterministic perf key worsened by more than PCT percent. Only
// virtual-time metrics are gated (bandwidth, elapsed, durability, latency
// quantiles) — host-wall throughput (events_per_s, wall_s, ...) varies
// machine to machine and is reported but never gated. Points or keys the
// baseline lacks are skipped, so new benches and new keys land cleanly.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <cstdlib>

#include "obs/json.hpp"
#include "obs/run_export.hpp"

namespace {

using parcoll::obs::JsonValue;

constexpr const char* kTrajectorySchema = "parcoll-bench-trajectory";
constexpr int kTrajectoryVersion = 1;

JsonValue load_json(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open: " + path);
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return JsonValue::parse(buffer.str());
}

/// The trajectory entry for one bench document: bench name plus the
/// compact per-point trend row.
JsonValue fold_bench(const JsonValue& doc) {
  JsonValue entry = JsonValue::object();
  const JsonValue* tool = doc.find("tool");
  entry.set("bench", tool != nullptr ? tool->as_string() : "?");
  const JsonValue* config = doc.find("config");
  if (config != nullptr) {
    const JsonValue* smoke = config->find("smoke");
    if (smoke != nullptr) entry.set("smoke", smoke->as_bool());
  }
  JsonValue points = JsonValue::array();
  const JsonValue* in_points = doc.find("points");
  if (in_points != nullptr) {
    for (const JsonValue& point : in_points->items()) {
      JsonValue row = JsonValue::object();
      for (const char* key :
           {"series", "nprocs", "bandwidth_mib_s", "elapsed_s",
            "sync_fraction",
            // tail-latency rows: virtual-time quantile trend signal.
            "rpc_p50_s", "rpc_p99_s", "cycle_p50_s", "cycle_p99_s",
            // burst-buffer rows: write-behind trend signal.
            "durable_elapsed_s", "drain_s", "drain_wait_s", "bb_spills",
            // integrity rows: corruption-handling trend signal.
            "detected", "repaired", "scrub_repairs", "checksum_overhead_pct",
            // parcoll_check rows: checker throughput and coverage.
            "schedules", "distinct_schedules", "invariant_checks",
            "schedules_per_s", "violations",
            // micro_engine rows: DES engine scaling trend signal.
            "events_per_s", "wall_s", "peak_queue_depth",
            "stacks_allocated", "stacks_reused", "peak_rss_mib",
            "speedup_vs_seed", "bit_identical"}) {
        const JsonValue* value = point.find(key);
        if (value != nullptr) row.set(key, *value);
      }
      points.push(std::move(row));
    }
  }
  entry.set("points", std::move(points));
  return entry;
}

/// Gated keys: deterministic virtual-time metrics only. `higher_better`
/// says which direction is an improvement. Host-wall keys (events_per_s,
/// wall_s, schedules_per_s, peak_rss_mib, speedup_vs_seed) are not listed:
/// they depend on the machine running the bench, so gating them would make
/// CI flaky by construction.
struct GatedKey {
  const char* key;
  bool higher_better;
};

constexpr GatedKey kGatedKeys[] = {
    {"bandwidth_mib_s", true},  {"elapsed_s", false},
    {"durable_elapsed_s", false}, {"rpc_p99_s", false},
    {"cycle_p99_s", false},
};

const JsonValue* find_bench(const JsonValue& run, const std::string& name) {
  const JsonValue* benches = run.find("benches");
  if (benches == nullptr) return nullptr;
  for (const JsonValue& bench : benches->items()) {
    const JsonValue* bench_name = bench.find("bench");
    if (bench_name != nullptr && bench_name->as_string() == name) {
      return &bench;
    }
  }
  return nullptr;
}

const JsonValue* find_point(const JsonValue& bench, const std::string& series,
                            double nprocs) {
  const JsonValue* points = bench.find("points");
  if (points == nullptr) return nullptr;
  for (const JsonValue& point : points->items()) {
    const JsonValue* point_series = point.find("series");
    const JsonValue* point_nprocs = point.find("nprocs");
    if (point_series != nullptr && point_series->as_string() == series &&
        point_nprocs != nullptr && point_nprocs->as_double() == nprocs) {
      return &point;
    }
  }
  return nullptr;
}

/// Compare the freshly-folded run against the baseline's last run. Returns
/// the number of regressions beyond `pct` percent.
int check_regression(const JsonValue& fresh, const JsonValue& baseline_run,
                     double pct) {
  int regressions = 0;
  int compared = 0;
  int skipped = 0;
  const JsonValue* benches = fresh.find("benches");
  if (benches == nullptr) return 0;
  for (const JsonValue& bench : benches->items()) {
    const std::string name = bench.find("bench")->as_string();
    const JsonValue* base_bench = find_bench(baseline_run, name);
    if (base_bench == nullptr) {
      std::printf("  %s: no baseline bench, skipping\n", name.c_str());
      continue;
    }
    const JsonValue* points = bench.find("points");
    if (points == nullptr) continue;
    for (const JsonValue& point : points->items()) {
      const JsonValue* series = point.find("series");
      const JsonValue* nprocs = point.find("nprocs");
      if (series == nullptr || nprocs == nullptr) continue;
      const JsonValue* base_point =
          find_point(*base_bench, series->as_string(), nprocs->as_double());
      if (base_point == nullptr) {
        ++skipped;
        continue;
      }
      for (const GatedKey& gated : kGatedKeys) {
        const JsonValue* fresh_value = point.find(gated.key);
        const JsonValue* base_value = base_point->find(gated.key);
        if (fresh_value == nullptr || base_value == nullptr) continue;
        const double now = fresh_value->as_double();
        const double base = base_value->as_double();
        ++compared;
        if (base == 0.0) continue;
        // Worsening as a fraction of the baseline, signed so that
        // improvement is negative in either direction convention.
        const double worse = gated.higher_better ? (base - now) / base
                                                 : (now - base) / std::abs(base);
        if (worse * 100.0 > pct) {
          ++regressions;
          std::printf("  REGRESSION %s %s[n=%g] %s: %g -> %g (%.2f%% worse, "
                      "gate %.2f%%)\n",
                      name.c_str(), series->as_string().c_str(),
                      nprocs->as_double(), gated.key, base, now, worse * 100.0,
                      pct);
        }
      }
    }
  }
  std::printf("  %d value(s) compared, %d point(s) without baseline, "
              "%d regression(s) beyond %.2f%%\n",
              compared, skipped, regressions, pct);
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string label;
  std::string baseline_path;
  double regression_pct = 0;
  bool check_mode = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (arg == "--check-regression" && i + 2 < argc) {
      check_mode = true;
      baseline_path = argv[++i];
      regression_pct = std::strtod(argv[++i], nullptr);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s --out TRAJECTORY.json [--label NAME] INPUT.json...\n"
          "       %s --check-regression BASELINE.json PCT INPUT.json...\n",
          argv[0], argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if ((out_path.empty() && !check_mode) || inputs.empty()) {
    std::fprintf(stderr,
                 "usage: %s --out TRAJECTORY.json [--label NAME] "
                 "INPUT.json...\n"
                 "       %s --check-regression BASELINE.json PCT "
                 "INPUT.json...\n",
                 argv[0], argv[0]);
    return 2;
  }

  JsonValue run = JsonValue::object();
  if (!label.empty()) run.set("label", label);
  JsonValue benches = JsonValue::array();
  for (const std::string& input : inputs) {
    try {
      const JsonValue doc = load_json(input);
      const JsonValue* schema = doc.find("schema");
      if (schema == nullptr ||
          schema->as_string() != parcoll::obs::kRunSchema) {
        std::fprintf(stderr, "%s: not a parcoll-run document, skipping\n",
                     input.c_str());
        continue;
      }
      benches.push(fold_bench(doc));
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s: %s\n", input.c_str(), error.what());
      return 1;
    }
  }
  run.set("benches", std::move(benches));

  if (check_mode) {
    JsonValue baseline = JsonValue::object();
    try {
      baseline = load_json(baseline_path);
    } catch (const std::exception& error) {
      // A missing baseline is not a regression: the first run on a fresh
      // branch has nothing to compare against.
      std::printf("no baseline (%s), skipping regression check\n",
                  error.what());
      return 0;
    }
    const JsonValue* schema = baseline.find("schema");
    const JsonValue* runs = baseline.find("runs");
    if (schema == nullptr || schema->as_string() != kTrajectorySchema ||
        runs == nullptr || runs->items().empty()) {
      std::fprintf(stderr, "%s: not a trajectory document\n",
                   baseline_path.c_str());
      return 1;
    }
    const JsonValue& last = runs->items().back();
    const JsonValue* last_label = last.find("label");
    std::printf("checking against baseline run \"%s\" (gate %.2f%%):\n",
                last_label != nullptr ? last_label->as_string().c_str() : "?",
                regression_pct);
    const int regressions = check_regression(run, last, regression_pct);
    return regressions > 0 ? 1 : 0;
  }

  // Append to an existing trajectory when the out file already holds one.
  JsonValue trajectory = JsonValue::object();
  trajectory.set("schema", kTrajectorySchema);
  trajectory.set("version", kTrajectoryVersion);
  JsonValue runs = JsonValue::array();
  {
    std::ifstream probe(out_path);
    if (probe) {
      try {
        JsonValue existing = load_json(out_path);
        const JsonValue* schema = existing.find("schema");
        const JsonValue* old_runs = existing.find("runs");
        if (schema != nullptr && schema->as_string() == kTrajectorySchema &&
            old_runs != nullptr) {
          for (const JsonValue& old_run : old_runs->items()) {
            runs.push(old_run);
          }
        }
      } catch (const std::exception&) {
        // Unreadable/foreign file: start a fresh trajectory rather than
        // failing the CI step that calls us.
      }
    }
  }
  runs.push(std::move(run));
  trajectory.set("runs", std::move(runs));

  try {
    parcoll::obs::write_json_file(out_path, trajectory);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }
  std::printf("%s: %zu run(s)\n", out_path.c_str(),
              trajectory.find("runs")->items().size());
  return 0;
}
