#include "dtype/pack.hpp"

#include <cstring>
#include <stdexcept>

namespace parcoll::dtype {

namespace {
void check_displacement(std::int64_t disp) {
  if (disp < 0) {
    throw std::invalid_argument("pack/unpack: negative displacement");
  }
}
}  // namespace

void pack(const void* base, const Datatype& type, std::uint64_t count,
          std::byte* out) {
  const auto* src = static_cast<const std::byte*>(base);
  std::uint64_t pos = 0;
  for (std::uint64_t k = 0; k < count; ++k) {
    const std::int64_t shift = static_cast<std::int64_t>(k) * type.extent();
    for (const Segment& seg : type.segments()) {
      check_displacement(seg.disp + shift);
      std::memcpy(out + pos, src + seg.disp + shift, seg.length);
      pos += seg.length;
    }
  }
}

void unpack(const std::byte* in, const Datatype& type, std::uint64_t count,
            void* base) {
  auto* dst = static_cast<std::byte*>(base);
  std::uint64_t pos = 0;
  for (std::uint64_t k = 0; k < count; ++k) {
    const std::int64_t shift = static_cast<std::int64_t>(k) * type.extent();
    for (const Segment& seg : type.segments()) {
      check_displacement(seg.disp + shift);
      std::memcpy(dst + seg.disp + shift, in + pos, seg.length);
      pos += seg.length;
    }
  }
}

}  // namespace parcoll::dtype
