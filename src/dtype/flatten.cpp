#include "dtype/flatten.hpp"

#include <algorithm>
#include <stdexcept>

namespace parcoll::dtype {

FlatType FlatType::from(const Datatype& type) {
  FlatType flat;
  flat.segs = type.segments();
  flat.prefix.reserve(flat.segs.size());
  std::uint64_t pos = 0;
  for (const Segment& seg : flat.segs) {
    flat.prefix.push_back(pos);
    pos += seg.length;
  }
  flat.size = pos;
  flat.extent = type.extent();
  return flat;
}

std::size_t FlatType::segment_at(std::uint64_t pos) const {
  if (pos >= size) {
    throw std::out_of_range("FlatType::segment_at: position beyond type size");
  }
  // First segment whose stream start is > pos, minus one.
  auto it = std::upper_bound(prefix.begin(), prefix.end(), pos);
  return static_cast<std::size_t>(it - prefix.begin()) - 1;
}

std::vector<Segment> FlatType::stream_range(std::uint64_t begin,
                                            std::uint64_t end) const {
  std::vector<Segment> result;
  if (begin >= end) return result;
  if (end > size) {
    throw std::out_of_range("FlatType::stream_range: range beyond type size");
  }
  for (std::size_t i = segment_at(begin); i < segs.size() && prefix[i] < end;
       ++i) {
    const std::uint64_t seg_begin = std::max(begin, prefix[i]);
    const std::uint64_t seg_end = std::min(end, prefix[i] + segs[i].length);
    result.push_back(
        Segment{segs[i].disp + static_cast<std::int64_t>(seg_begin - prefix[i]),
                seg_end - seg_begin});
  }
  return result;
}

}  // namespace parcoll::dtype
