// Machine model: every calibration parameter of the simulated platform.
//
// Defaults approximate the paper's testbed — Jaguar, a Cray XT3/XT4 at ORNL:
// dual-core compute PEs running Catamount, a SeaStar 3-D torus, and a Lustre
// file system with 72 OSTs of which the paper's experiments stripe files
// over 64 with a 4 MB stripe size. Absolute figures need not match Jaguar;
// see DESIGN.md §6 for the shape targets the defaults are calibrated to.
#pragma once

#include <cstdint>

#include "machine/topology.hpp"

namespace parcoll::machine {

/// Point-to-point and collective communication parameters (SeaStar-like).
struct NetworkParams {
  /// One-way small-message latency between two nodes, seconds.
  double p2p_latency = 6e-6;
  /// Per-NIC injection/extraction bandwidth, bytes/second.
  double p2p_bandwidth = 1.6e9;
  /// CPU time charged to a process for posting one send or receive.
  double cpu_msg_overhead = 1.0e-6;
  /// Sends of at most this many bytes complete locally once buffered
  /// (eager protocol); larger sends complete at delivery (rendezvous).
  std::uint64_t eager_threshold = 64 * 1024;
  /// Per-hop latency inside collective algorithm trees (log2 P hops).
  double coll_latency = 5e-6;
  /// Bandwidth term for data-bearing collectives, bytes/second.
  double coll_bandwidth = 1.2e9;
  /// Per-peer cost of alltoall-style personalized exchanges.
  double alltoall_per_peer = 60e-6;
  /// Quadratic congestion term of the personalized exchange: dense P-way
  /// traffic congests the torus superlinearly, so the per-cycle alltoall is
  /// what turns into the collective wall as P grows (paper Figs. 1-2).
  double alltoall_congestion = 0.5e-6;
  /// Intra-node transfer calibration: a message between two processes of
  /// the same physical node is a user-space memory copy (Catamount delivers
  /// without kernel buffering). Fixed per-message handoff latency, seconds.
  double intranode_latency = 0.0;
  /// Intra-node copy bandwidth, bytes/second; 0 = inherit
  /// MemoryParams::memcpy_bandwidth (the historical behaviour).
  double intranode_bandwidth = 0.0;
};

/// Lustre-like storage parameters.
struct StorageParams {
  /// Number of object storage targets available (paper: 72 on the tested FS).
  int num_osts = 72;
  /// Default stripe count for new files (paper: 64).
  int default_stripe_count = 64;
  /// Default stripe size (paper: 4 MB).
  std::uint64_t default_stripe_size = 4ull << 20;
  /// Sustained per-OST bandwidth, bytes/second (streaming, per target).
  double ost_bandwidth = 450e6;
  /// Fixed service overhead per RPC at the OST (seek + RPC handling).
  double request_overhead = 0.4e-3;
  /// CPU time charged to the client for issuing one RPC.
  double client_rpc_overhead = 12e-6;
  /// Lustre splits bulk I/O into RPCs of at most this size.
  std::uint64_t max_rpc_size = 1ull << 20;
  /// Extra service time per discontiguous fragment beyond the first in one
  /// RPC (back-end fragmentation: the target turns a scattered page list
  /// into multiple disk operations).
  double fragment_overhead = 5e-6;
  /// Fixed cost of revoking one conflicting DLM extent grant (lock server
  /// round trips). Paid by writes that overlap another client's — possibly
  /// extended — grant.
  double lock_revoke_overhead = 1.0e-3;
  /// Revocation additionally flushes the holder's dirty bytes under the
  /// grant (written since acquisition, capped by the client cache) at
  /// ost_bandwidth. Streaming writers with fat grants pay real flush time;
  /// fine-grained interleaved grants revoke cheaply.
  std::uint64_t lock_dirty_cap = 4ull << 20;
  /// Per-RPC service-time jitter: multiplied by U[1, 1 + jitter_frac].
  double jitter_frac = 0.3;
  /// Heavy-tailed, time-correlated slowdowns: in each epoch of
  /// slow_epoch_seconds an OST independently runs degraded with probability
  /// slow_prob (factor up to slow_factor) or badly degraded with
  /// probability very_slow_prob (factor up to very_slow_factor). The
  /// slowest OST of the moment is what a globally synchronized two-phase
  /// cycle waits for.
  double slow_epoch_seconds = 0.25;
  double slow_prob = 0.05;
  double slow_factor = 2.5;
  double very_slow_prob = 0.005;
  double very_slow_factor = 8.0;
  /// Round-trip time of the advisory file-lock server (fcntl analogue)
  /// used by data-sieving writes.
  double flock_roundtrip = 0.5e-3;
  /// Server-side processing time per lock/unlock operation. The lock
  /// service is a single serialization point, so thousands of clients
  /// sieving concurrently queue up here — the documented reason
  /// un-aggregated strided writes collapse on shared files.
  double flock_server_time = 400e-6;
  /// Seed for all deterministic jitter streams.
  std::uint64_t seed = 42;
};

/// Node-local memory parameters.
struct MemoryParams {
  /// memcpy/pack bandwidth, bytes/second (DDR2-era Opteron).
  double memcpy_bandwidth = 2.5e9;
};

struct MachineModel {
  Topology topology;
  NetworkParams net;
  StorageParams storage;
  MemoryParams mem;

  /// Jaguar-like model: `nranks` processes, two cores per node (the
  /// paper's dual-core PEs, overridable for multi-core what-ifs), block
  /// mapping (the Cray XT default placement), Lustre-like storage.
  static MachineModel jaguar(int nranks, Mapping mapping = Mapping::Block,
                             int cores_per_node = 2);

  /// The paper's future work asks how the collective wall behaves "over
  /// other massively parallel platforms with different underlying file
  /// systems, such as GPFS and PVFS". These presets re-skin the storage
  /// personality while keeping the compute side fixed:
  ///
  /// GPFS-like: shared-disk with distributed token (byte-range) locking —
  /// fewer, larger servers (NSD-style), bigger blocks, cheaper lock
  /// revocation (token passing, no client cache flush), stronger
  /// fragmentation penalty (block-granular back end).
  static MachineModel gpfs_like(int nranks, Mapping mapping = Mapping::Block);

  /// PVFS-like: no client locking at all (PVFS serializes at the servers
  /// and offers no overlapping-write guarantees), modest per-server
  /// bandwidth, higher request overhead.
  static MachineModel pvfs_like(int nranks, Mapping mapping = Mapping::Block);
};

}  // namespace parcoll::machine
