// Cooperative fibers built on POSIX ucontext.
//
// Every simulated process (an MPI rank in this codebase) runs ordinary
// blocking C++ code on its own fiber stack. The discrete-event engine owns
// the scheduler context; a fiber runs until it blocks (yield) and is later
// resumed at a new point in virtual time. Everything is single-threaded, so
// no locking is needed anywhere in the simulator.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <ucontext.h>

namespace parcoll::sim {

/// A single cooperative execution context with its own stack.
///
/// Lifecycle: construct with a body, call resume() repeatedly from the
/// scheduler until finished(). The body calls yield() to give control back.
/// Fibers are not copyable or movable (the ucontext points into the stack).
class Fiber {
 public:
  using Body = std::function<void()>;

  explicit Fiber(Body body, std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the caller into the fiber. Returns when the fiber yields
  /// or its body returns. Must not be called on a finished fiber, nor from
  /// inside any fiber (only the scheduler resumes). If the body exited with
  /// an exception, it is rethrown here (exceptions cannot unwind across a
  /// context switch) with the fiber marked finished.
  void resume();

  /// Switch from inside the fiber back to whoever resumed it.
  void yield();

  /// True once the body has returned. A finished fiber must not be resumed.
  [[nodiscard]] bool finished() const { return finished_; }

  /// The fiber currently executing on this thread, or nullptr when the
  /// scheduler context is running.
  static Fiber* current() { return current_; }

  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

 private:
  static void trampoline(unsigned int ptr_hi, unsigned int ptr_lo);
  void run_body();

  ucontext_t context_{};
  ucontext_t return_point_{};
  std::unique_ptr<char[]> stack_;
  std::size_t stack_bytes_ = 0;
  Body body_;
  std::exception_ptr exception_;
  bool started_ = false;
  bool finished_ = false;
  // Bookkeeping for the AddressSanitizer fiber-switch annotations (unused in
  // non-sanitized builds): the fiber's saved fake stack and the scheduler
  // stack bounds learned on first entry, needed to switch back legally.
  void* asan_fake_stack_ = nullptr;
  const void* asan_sched_stack_bottom_ = nullptr;
  std::size_t asan_sched_stack_size_ = 0;

  static thread_local Fiber* current_;
};

}  // namespace parcoll::sim
