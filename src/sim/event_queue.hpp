// Calendar (bucket) event queue and the event/callback arenas.
//
// The engine's old std::priority_queue paid O(log n) comparisons and a
// 56-byte element move per operation, with every posted callback dragging a
// std::function through the heap. This queue keeps events as 24-byte PODs
// in an array of time buckets: push is O(1) amortized (bucket index is one
// subtract/divide), pop is O(log b) in the *bucket* occupancy b, and
// callbacks live in a freelist arena of SmallCallback slots so the dominant
// wake/sleep events carry nothing but {time, seq, pid}.
//
// Ordering is exact, not approximate: within the serving bucket events form
// a binary min-heap on (time, seq), buckets partition time, and far-future
// events wait in an overflow min-heap until the window slides over them.
// Every pop therefore returns precisely the (time, seq)-minimal event — the
// same total order as the old heap — so schedules, digests, and
// SchedulePolicy choice points are bit-identical by construction. The
// bucket-width tuning below affects only speed, never order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/callback.hpp"

namespace parcoll::sim {

/// One pending engine event. `pid >= 0` is a process resume; kNoProc (-1)
/// marks a callback event whose body sits in the CallbackArena at `cb`.
struct QueuedEvent {
  double time;
  std::uint64_t seq;
  int pid;
  std::uint32_t cb;
};

inline constexpr std::uint32_t kNoCallback = 0xffffffffu;

/// Freelist arena for posted callbacks: slots are reused, so steady-state
/// posting allocates nothing (beyond a capture too big for SmallCallback's
/// inline buffer).
class CallbackArena {
 public:
  std::uint32_t put(SmallCallback fn) {
    if (free_.empty()) {
      slots_.push_back(std::move(fn));
      return static_cast<std::uint32_t>(slots_.size() - 1);
    }
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    slots_[slot] = std::move(fn);
    return slot;
  }

  /// Move the callback out and recycle its slot.
  SmallCallback take(std::uint32_t slot) {
    SmallCallback fn = std::move(slots_[slot]);
    free_.push_back(slot);
    return fn;
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<SmallCallback> slots_;
  std::vector<std::uint32_t> free_;
};

/// Perf counters the queue maintains for engine self-instrumentation.
struct QueueCounters {
  std::uint64_t peak_depth = 0;
  std::uint64_t overflow_pushes = 0;
  std::uint64_t retunes = 0;
};

class CalendarQueue {
 public:
  CalendarQueue();

  /// Insert `event` (seq already assigned by the engine; re-pushing a
  /// popped event — the choice-point path — keeps its original seq, and
  /// with it its exact place in the total order).
  void push(const QueuedEvent& event);

  /// Remove and return the (time, seq)-minimal event.
  QueuedEvent pop();

  /// The (time, seq)-minimal event without removing it (queue must be
  /// non-empty). The engine uses this to prefetch the next fiber's state
  /// while the current event executes.
  [[nodiscard]] QueuedEvent peek();

  /// Best-effort pid of the event after the minimal one, or -1 when it
  /// is not cheaply known (outside the serving bucket, or a callback).
  /// Prefetch hint only — never consulted for ordering. Valid right after
  /// peek()/min_time() (the serving bucket is settled and heaped).
  [[nodiscard]] int second_pid_hint() const;

  /// Timestamp of the minimal event (queue must be non-empty).
  [[nodiscard]] double min_time();

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] const QueueCounters& counters() const { return counters_; }

 private:
  static constexpr std::size_t kMinBuckets = 64;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 17;
  static constexpr double kMinWidth = 1e-12;

  /// Advance to the non-empty bucket holding the minimal event, sliding
  /// the window over the overflow tier when the current one is drained.
  void settle();
  void place(const QueuedEvent& event);
  /// Rebuild buckets around `anchor` time with `nbuckets` buckets and a
  /// width tuned from the observed inter-event gap.
  void retune(std::size_t nbuckets, double anchor);
  void overflow_push(const QueuedEvent& event);
  QueuedEvent overflow_pop();

  // Occupancy bitmap (one bit per bucket) so settle() skips runs of empty
  // buckets with a ctz scan instead of touching each one.
  void mark_live(std::size_t idx) { live_[idx >> 6] |= 1ull << (idx & 63); }
  void mark_dead(std::size_t idx) { live_[idx >> 6] &= ~(1ull << (idx & 63)); }
  [[nodiscard]] std::size_t next_live(std::size_t from) const;

  std::vector<std::vector<QueuedEvent>> buckets_;
  std::vector<std::uint64_t> live_;
  std::vector<QueuedEvent> overflow_;  // min-heap on (time, seq)
  double width_ = 1e-6;
  double inv_width_ = 1e6;  // cached 1/width_: place() multiplies, never divides
  double w0_ = 0.0;         // window start: bucket i covers [w0_+i*w, ...)
  std::size_t cur_ = 0;     // serving bucket
  bool cur_heaped_ = false;
  std::size_t count_ = 0;
  double last_pop_time_ = 0.0;
  double avg_gap_ = 0.0;    // EMA of nonzero inter-pop gaps, drives width_
  QueueCounters counters_;
};

/// Peak resident set size of the calling process in bytes (VmHWM), 0 when
/// unavailable. Host-side instrumentation only — never feeds the model.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace parcoll::sim
