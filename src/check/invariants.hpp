// Collective-correctness invariants, checked online during a simulated run.
//
// The InvariantChecker is an observer the model checker (tools/parcoll_check)
// installs on a World. Hooks in mpi::CollEngine and core::run_collective_engine
// report what each rank believes is happening; the checker cross-checks the
// reports and records a Violation whenever ranks disagree:
//
//   collective-match      every member of a communicator reaches the same
//                         (kind, member set) at the same per-comm ordinal,
//                         and exactly comm-size members arrive.
//   partition-agreement   all members of a collective call compute the
//                         identical subgroup partition (groups, File Areas,
//                         aggregator roster).
//   reelection-agreement  all members of a subgroup agree on the agreed
//                         time and the re-elected aggregator roster
//                         (no split-brain), and every member participates.
//   error-agreement       after a collective error-reduction, every member
//                         holds the same outcome word (the same
//                         unrecoverable-corruption extent, or none), so a
//                         collective call throws on all ranks or on none.
//   collective-complete   finalize(): no collective op was left with some
//                         members arrived and others missing.
//
// Deadlock-freedom and file-content durability are whole-run properties the
// driver checks around the run (DeadlockError never thrown; the byte-true
// store audit passes and the content digest matches the clean reference).
//
// This header is free of simulator dependencies on purpose: hooks pass
// plain integers and precomputed hashes, so the checker can sit below
// mpi::/core:: without cycles and unit tests can drive it directly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace parcoll::check {

struct Violation {
  std::string invariant;  // e.g. "collective-match"
  std::string detail;     // human-readable one-liner
};

class InvariantChecker {
 public:
  /// A rank enters a collective: `seq` is its per-communicator ordinal,
  /// `kind` the CollKind, `members_hash` a hash of the member list.
  void on_collective(int world_rank, std::uint64_t ctx, std::uint64_t seq,
                     int kind, int comm_size, std::uint64_t members_hash);

  /// A rank established a subgroup partition on communicator `ctx`;
  /// `plan_hash` digests the comm-global plan (mode, groups, FAs, rosters).
  void on_partition(int world_rank, std::uint64_t ctx, int comm_size,
                    std::uint64_t plan_hash);

  /// A rank finished a re-election round on subgroup communicator `ctx`;
  /// `roster_hash` digests (agreed time, resulting aggregator roster).
  void on_reelection(int world_rank, std::uint64_t ctx, int comm_size,
                     std::uint64_t roster_hash);

  /// A rank finished a collective error-agreement round on communicator
  /// `ctx`; `outcome_word` is the reduced error word (0 = no error).
  void on_error_agreement(int world_rank, std::uint64_t ctx, int comm_size,
                          std::uint64_t outcome_word);

  /// Call after World::run returns normally: flags collectives and
  /// agreement rounds where members are still missing.
  void finalize();

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  /// Number of invariant evaluations performed (throughput metric).
  [[nodiscard]] std::uint64_t checks() const { return checks_; }

 private:
  /// State of one matching site: whatever the first reporter claimed, plus
  /// the arrival count. Mismatches are recorded once per site.
  struct Site {
    int kind = 0;
    int comm_size = 0;
    std::uint64_t hash = 0;
    int arrived = 0;
    bool flagged = false;
  };
  using SiteKey = std::pair<std::uint64_t, std::uint64_t>;  // (ctx, ordinal)

  void report(std::string invariant, std::string detail);
  /// Shared match-or-flag logic for partition/re-election rounds, which are
  /// keyed by (ctx, per-rank round counter).
  void on_agreement_round(const char* invariant, int world_rank,
                          std::uint64_t ctx, int comm_size,
                          std::uint64_t hash,
                          std::map<SiteKey, Site>& sites,
                          std::map<std::pair<std::uint64_t, int>,
                                   std::uint64_t>& rank_rounds);

  std::map<SiteKey, Site> colls_;
  std::map<SiteKey, Site> partitions_;
  std::map<SiteKey, Site> reelections_;
  std::map<SiteKey, Site> error_agreements_;
  /// Per (ctx, rank) round counters for partition/re-election ordinals.
  std::map<std::pair<std::uint64_t, int>, std::uint64_t> partition_rounds_;
  std::map<std::pair<std::uint64_t, int>, std::uint64_t> reelection_rounds_;
  std::map<std::pair<std::uint64_t, int>, std::uint64_t> error_rounds_;
  std::vector<Violation> violations_;
  std::uint64_t checks_ = 0;
};

}  // namespace parcoll::check
