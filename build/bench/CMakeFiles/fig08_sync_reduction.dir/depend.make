# Empty dependencies file for fig08_sync_reduction.
# This may be replaced when dependencies are built.
