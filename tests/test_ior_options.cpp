// IOR option fidelity: random transfer ordering (-z), fsync (-e), task
// reordering on read (-C), and the cb_read hint.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/parcoll.hpp"
#include "workloads/ior.hpp"

namespace parcoll::workloads {
namespace {

RunSpec byte_true(Impl impl, int groups = 0) {
  RunSpec spec;
  spec.impl = impl;
  spec.parcoll_groups = groups;
  spec.min_group_size = 2;
  spec.byte_true = true;
  spec.cb_buffer_size = 4096;
  return spec;
}

IorConfig small() {
  IorConfig config;
  config.block_size = 64 << 10;
  config.xfer_size = 8 << 10;
  return config;
}

TEST(IorOptions, TransferOrderIsAPermutation) {
  IorConfig config = small();
  config.random_offsets = true;
  const auto order = config.transfer_order(3);
  EXPECT_EQ(order.size(), config.transfers());
  auto sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint64_t t = 0; t < sorted.size(); ++t) {
    EXPECT_EQ(sorted[t], t);
  }
  // Deterministic per (seed, rank); different ranks differ.
  EXPECT_EQ(order, config.transfer_order(3));
  EXPECT_NE(order, config.transfer_order(4));
  // Sequential when the option is off.
  config.random_offsets = false;
  const auto seq = config.transfer_order(0);
  for (std::uint64_t t = 0; t < seq.size(); ++t) {
    EXPECT_EQ(seq[t], t);
  }
}

TEST(IorOptions, RandomOrderStillVerifies) {
  IorConfig config = small();
  config.random_offsets = true;
  for (int groups : {0, 4}) {
    const auto result = run_ior(
        config, 8, byte_true(groups ? Impl::ParColl : Impl::Ext2ph, groups),
        true);
    EXPECT_TRUE(result.verified) << "groups=" << groups;
  }
}

TEST(IorOptions, RandomOrderReadVerifies) {
  IorConfig config = small();
  config.random_offsets = true;
  const auto result = run_ior(config, 8, byte_true(Impl::Ext2ph), false);
  EXPECT_TRUE(result.verified);
}

TEST(IorOptions, ReorderedReadBackVerifies) {
  IorConfig config = small();
  config.reorder_tasks = 3;  // read the block written 3 tasks away
  const auto result = run_ior(config, 8, byte_true(Impl::Ext2ph), false);
  EXPECT_TRUE(result.verified);
}

TEST(IorOptions, FsyncAddsTime) {
  IorConfig config = small();
  const auto plain = run_ior(config, 4, byte_true(Impl::Ext2ph), true);
  config.fsync_per_phase = true;
  const auto synced = run_ior(config, 4, byte_true(Impl::Ext2ph), true);
  EXPECT_TRUE(synced.verified);
  EXPECT_GT(synced.elapsed, plain.elapsed);
}

TEST(CbRead, DisableDegradesReadsOnly) {
  mpi::World world(machine::MachineModel::jaguar(4));
  mpiio::Hints hints;
  hints.set("romio_cb_read", "disable");
  EXPECT_FALSE(hints.cb_read_enabled);
  EXPECT_TRUE(hints.cb_write_enabled);
  std::uint64_t write_cycles = 0;
  std::uint64_t read_cycles = 0;
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "cbr.dat", hints);
    const auto slot = dtype::Datatype::resized(dtype::Datatype::bytes(64), 0,
                                               256);
    file.set_view(static_cast<std::uint64_t>(self.rank()) * 64, 64, slot);
    std::vector<std::byte> data(8 * 64);
    const auto w = core::write_at_all(file, 0, data.data(), 1,
                                      dtype::Datatype::bytes(8 * 64));
    const auto r = core::read_at_all(file, 0, data.data(), 1,
                                     dtype::Datatype::bytes(8 * 64));
    if (self.rank() == 0) {
      write_cycles = w.cycles;
      read_cycles = r.cycles;
    }
    file.close();
  });
  EXPECT_GT(write_cycles, 0u);  // write went through the collective engine
  EXPECT_EQ(read_cycles, 0u);   // read was serviced locally (sieving)
}

}  // namespace
}  // namespace parcoll::workloads
