file(REMOVE_RECURSE
  "CMakeFiles/abl_split_phase.dir/abl_split_phase.cpp.o"
  "CMakeFiles/abl_split_phase.dir/abl_split_phase.cpp.o.d"
  "abl_split_phase"
  "abl_split_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_split_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
