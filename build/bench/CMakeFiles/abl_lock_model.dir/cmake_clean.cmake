file(REMOVE_RECURSE
  "CMakeFiles/abl_lock_model.dir/abl_lock_model.cpp.o"
  "CMakeFiles/abl_lock_model.dir/abl_lock_model.cpp.o.d"
  "abl_lock_model"
  "abl_lock_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lock_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
