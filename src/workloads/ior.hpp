// IOR: segmented contiguous access to a shared file (paper §5.1).
//
// Each process writes a contiguous block of block_size bytes at offset
// rank * block_size, in xfer_size units — one collective (or independent)
// call per transfer, exactly as the IOR benchmark issues them. The paper's
// parameters: 512 MB blocks in 4 MB transfers. Contiguous I/O gains nothing
// from aggregation, so the per-call synchronization of the global two-phase
// protocol dominates — the scenario where ParColl's 12.8x IOR improvement
// comes from.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/runner.hpp"

namespace parcoll::workloads {

struct IorConfig {
  std::uint64_t block_size = 512ull << 20;  // per process
  std::uint64_t xfer_size = 4ull << 20;     // per call
  /// IOR -z: visit the transfers of each block in a random order.
  bool random_offsets = false;
  /// IOR -e: fsync after each write phase.
  bool fsync_per_phase = false;
  /// IOR -C: on read, shift tasks so nobody reads what it wrote
  /// (defeats client caching; here it changes the access pattern).
  int reorder_tasks = 0;
  /// Seed for the random ordering.
  std::uint64_t order_seed = 1;

  [[nodiscard]] std::uint64_t transfers() const {
    return block_size / xfer_size;
  }
  [[nodiscard]] std::uint64_t file_bytes(int nranks) const {
    return block_size * static_cast<std::uint64_t>(nranks);
  }
  /// The transfer order for `rank` (indices into [0, transfers())).
  [[nodiscard]] std::vector<std::uint64_t> transfer_order(int rank) const;
};

RunResult run_ior(const IorConfig& config, int nranks, const RunSpec& spec,
                  bool write);

}  // namespace parcoll::workloads
