#include "fs/stripe.hpp"

#include <algorithm>
#include <stdexcept>

namespace parcoll::fs {

void for_each_stripe_chunk(const Extent& extent, std::uint64_t stripe_size,
                           int stripe_count,
                           const std::function<void(const StripeChunk&)>& fn) {
  if (stripe_size == 0 || stripe_count <= 0) {
    throw std::invalid_argument("for_each_stripe_chunk: bad striping");
  }
  std::uint64_t pos = extent.offset;
  const std::uint64_t end = extent.end();
  while (pos < end) {
    const std::uint64_t stripe_number = pos / stripe_size;
    const std::uint64_t stripe_end = (stripe_number + 1) * stripe_size;
    StripeChunk chunk;
    chunk.stripe_index =
        static_cast<int>(stripe_number % static_cast<std::uint64_t>(stripe_count));
    chunk.file_offset = pos;
    chunk.length = std::min(end, stripe_end) - pos;
    fn(chunk);
    pos += chunk.length;
  }
}

std::vector<StripeChunk> stripe_chunks(const Extent& extent,
                                       std::uint64_t stripe_size,
                                       int stripe_count) {
  std::vector<StripeChunk> chunks;
  for_each_stripe_chunk(extent, stripe_size, stripe_count,
                        [&](const StripeChunk& chunk) { chunks.push_back(chunk); });
  return chunks;
}

std::uint64_t stripe_floor(std::uint64_t offset, std::uint64_t stripe_size) {
  return offset - offset % stripe_size;
}

std::uint64_t stripe_ceil(std::uint64_t offset, std::uint64_t stripe_size) {
  const std::uint64_t rem = offset % stripe_size;
  return rem == 0 ? offset : offset + (stripe_size - rem);
}

}  // namespace parcoll::fs
