#include "mpiio/stats.hpp"

#include <ostream>
#include <sstream>

namespace parcoll::mpiio {

FileStats& FileStats::operator+=(const FileStats& other) {
  time += other.time;
  bytes_written += other.bytes_written;
  bytes_read += other.bytes_read;
  collective_writes += other.collective_writes;
  collective_reads += other.collective_reads;
  independent_writes += other.independent_writes;
  independent_reads += other.independent_reads;
  exchange_cycles += other.exchange_cycles;
  rmw_reads += other.rmw_reads;
  parcoll_calls += other.parcoll_calls;
  intranode_calls += other.intranode_calls;
  intranode_bytes += other.intranode_bytes;
  view_switches += other.view_switches;
  last_num_groups = other.last_num_groups ? other.last_num_groups
                                          : last_num_groups;
  fault_retries += other.fault_retries;
  fault_failovers += other.fault_failovers;
  fault_drops += other.fault_drops;
  fault_reelections += other.fault_reelections;
  fault_stalls += other.fault_stalls;
  bb_staged_segments += other.bb_staged_segments;
  bb_staged_bytes += other.bb_staged_bytes;
  bb_drained_bytes += other.bb_drained_bytes;
  bb_spills += other.bb_spills;
  bb_spill_bytes += other.bb_spill_bytes;
  bb_conflict_flushes += other.bb_conflict_flushes;
  bb_drain_retries += other.bb_drain_retries;
  bb_drain_failovers += other.bb_drain_failovers;
  integrity_blocks += other.integrity_blocks;
  integrity_bytes += other.integrity_bytes;
  corrupt_detected += other.corrupt_detected;
  corrupt_repaired += other.corrupt_repaired;
  scrub_repairs += other.scrub_repairs;
  integrity_errors += other.integrity_errors;
  return *this;
}

std::string FileStats::summary(const std::string& name) const {
  std::ostringstream os;
  os << "file \"" << name << "\" summary:\n";
  os << "  time:   compute=" << time[mpi::TimeCat::Compute]
     << "s p2p=" << time[mpi::TimeCat::P2P]
     << "s sync=" << time[mpi::TimeCat::Sync]
     << "s io=" << time[mpi::TimeCat::IO]
     << "s faulted=" << time[mpi::TimeCat::Faulted]
     << "s intra=" << time[mpi::TimeCat::Intra];
  if (time[mpi::TimeCat::Drain] > 0 || time[mpi::TimeCat::DrainWait] > 0) {
    os << "s drain=" << time[mpi::TimeCat::Drain]
       << "s dwait=" << time[mpi::TimeCat::DrainWait];
  }
  if (time[mpi::TimeCat::Integrity] > 0) {
    os << "s integrity=" << time[mpi::TimeCat::Integrity];
  }
  os << "s (sum over ranks)\n";
  os << "  data:   written=" << bytes_written << "B read=" << bytes_read
     << "B\n";
  os << "  calls:  coll_w=" << collective_writes << " coll_r="
     << collective_reads << " indep_w=" << independent_writes << " indep_r="
     << independent_reads << "\n";
  os << "  cycles: " << exchange_cycles << " (rmw_reads=" << rmw_reads
     << ")\n";
  os << "  parcoll: calls=" << parcoll_calls << " view_switches="
     << view_switches << " last_groups=" << last_num_groups;
  if (intranode_calls || intranode_bytes) {
    os << "\n  intra:  calls=" << intranode_calls
       << " bytes=" << intranode_bytes << "B";
  }
  if (fault_retries || fault_failovers || fault_drops || fault_reelections ||
      fault_stalls) {
    os << "\n  faults: retries=" << fault_retries
       << " failovers=" << fault_failovers << " drops=" << fault_drops
       << " reelections=" << fault_reelections
       << " stalls=" << fault_stalls;
  }
  if (bb_staged_segments || bb_spills) {
    os << "\n  bb:     staged=" << bb_staged_segments << " ("
       << bb_staged_bytes << "B) drained=" << bb_drained_bytes
       << "B spills=" << bb_spills << " (" << bb_spill_bytes
       << "B) conflict_flushes=" << bb_conflict_flushes
       << " drain_retries=" << bb_drain_retries
       << " drain_failovers=" << bb_drain_failovers;
  }
  if (integrity_blocks || corrupt_detected || integrity_errors) {
    os << "\n  integrity: blocks=" << integrity_blocks << " ("
       << integrity_bytes << "B) detected=" << corrupt_detected
       << " repaired=" << corrupt_repaired
       << " scrub_repairs=" << scrub_repairs
       << " errors=" << integrity_errors;
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const FileStats& stats) {
  return os << stats.summary("");
}

}  // namespace parcoll::mpiio
