// Adaptive group selection (parcoll_num_groups = auto) and the
// romio_cb_write hint, plus the Flash plotfile configurations.
#include <gtest/gtest.h>

#include <cmath>

#include "core/file_area.hpp"
#include "core/parcoll.hpp"
#include "mpi/collectives.hpp"
#include "mpiio/file.hpp"
#include "workloads/btio.hpp"
#include "workloads/flashio.hpp"
#include "workloads/pattern.hpp"
#include "workloads/tileio.hpp"

namespace parcoll {
namespace {

using core::kAutoGroups;
using core::PartitionMode;
using core::RankAccess;

std::vector<RankAccess> serial_ranks(int n, std::uint64_t bytes) {
  std::vector<RankAccess> ranks;
  for (int r = 0; r < n; ++r) {
    ranks.push_back(RankAccess{static_cast<std::uint64_t>(r) * bytes,
                               static_cast<std::uint64_t>(r + 1) * bytes,
                               bytes});
  }
  return ranks;
}

std::vector<RankAccess> scattered_ranks(int n, std::uint64_t file_bytes) {
  std::vector<RankAccess> ranks;
  for (int r = 0; r < n; ++r) {
    ranks.push_back(RankAccess{static_cast<std::uint64_t>(r) * 8,
                               file_bytes - static_cast<std::uint64_t>(n - r) * 8,
                               file_bytes / n});
  }
  return ranks;
}

TEST(AutoGroups, SerialPatternTakesEveryCleanSplitUpToMinSize) {
  const auto plan =
      core::partition_file_areas(serial_ranks(32, 1000), kAutoGroups, 4, true);
  EXPECT_EQ(plan.mode, PartitionMode::Direct);
  EXPECT_EQ(plan.num_groups, 8);  // 32 ranks / min size 4
}

TEST(AutoGroups, ScatteredPatternPicksSqrtP) {
  const auto plan = core::partition_file_areas(scattered_ranks(64, 1 << 20),
                                               kAutoGroups, 2, true);
  EXPECT_EQ(plan.mode, PartitionMode::Intermediate);
  EXPECT_EQ(plan.num_groups, 8);  // sqrt(64)
}

TEST(AutoGroups, ScatteredWithoutViewSwitchStaysSingle) {
  const auto plan = core::partition_file_areas(scattered_ranks(64, 1 << 20),
                                               kAutoGroups, 2, false);
  EXPECT_EQ(plan.mode, PartitionMode::SingleGroup);
}

TEST(AutoGroups, MinGroupSizeStillCaps) {
  const auto plan =
      core::partition_file_areas(serial_ranks(16, 100), kAutoGroups, 8, true);
  EXPECT_EQ(plan.num_groups, 2);
}

TEST(AutoGroups, TileIoAutoMatchesTheFig7SweetSpot) {
  // At 128 ranks with 8-wide tiles there are 16 tile rows: auto should use
  // all 16 clean splits (min group size 8 -> cap 16).
  const auto config = workloads::TileIOConfig::paper(128);
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::ParColl;
  spec.parcoll_groups = kAutoGroups;
  spec.byte_true = false;
  const auto result = workloads::run_tileio(config, 128, spec, true);
  EXPECT_EQ(result.stats.last_num_groups, 16);
  EXPECT_EQ(result.stats.view_switches, 0u);  // direct mode

  workloads::RunSpec base;
  base.impl = workloads::Impl::Ext2ph;
  base.byte_true = false;
  const auto baseline = workloads::run_tileio(config, 128, base, true);
  EXPECT_GT(result.bandwidth(), 2.0 * baseline.bandwidth());
}

TEST(AutoGroups, BtioAutoUsesSqrtPIntermediateGroups) {
  workloads::BtIOConfig config;
  config.grid = 24;
  config.nsteps = 1;
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::ParColl;
  spec.parcoll_groups = kAutoGroups;
  spec.min_group_size = 2;
  spec.byte_true = false;
  const auto result = workloads::run_btio(config, 16, spec, true);
  EXPECT_EQ(result.stats.last_num_groups, 4);  // sqrt(16)
  EXPECT_EQ(result.stats.view_switches, 1u);
}

TEST(AutoGroups, HintStringAutoParses) {
  mpiio::Hints hints;
  hints.set("parcoll_num_groups", "auto");
  EXPECT_EQ(hints.parcoll_num_groups, kAutoGroups);
}

TEST(CbWrite, HintRoundTrips) {
  mpiio::Hints hints;
  EXPECT_TRUE(hints.cb_write_enabled);
  hints.set("romio_cb_write", "disable");
  EXPECT_FALSE(hints.cb_write_enabled);
  EXPECT_EQ(hints.get("romio_cb_write"), "disable");
  hints.set("romio_cb_write", "enable");
  EXPECT_TRUE(hints.cb_write_enabled);
  EXPECT_THROW(hints.set("romio_cb_write", "maybe"), std::invalid_argument);
}

TEST(CbWrite, DisabledCollectiveStillWritesCorrectBytes) {
  mpi::World world(machine::MachineModel::jaguar(4));
  mpiio::Hints hints;
  hints.cb_write_enabled = false;
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "nocb.dat", hints);
    const auto slot = dtype::Datatype::resized(dtype::Datatype::bytes(64), 0,
                                               256);
    file.set_view(static_cast<std::uint64_t>(self.rank()) * 64, 64, slot);
    const std::uint64_t bytes = 8 * 64;
    const auto extents = file.view().map(0, bytes);
    std::vector<std::byte> data(bytes);
    workloads::fill_buffer_for_extents(data.data(),
                                       dtype::Datatype::bytes(bytes), 1,
                                       extents, 31);
    core::write_at_all(file, 0, data.data(), 1, dtype::Datatype::bytes(bytes));
    mpi::barrier(self, self.comm_world());
    auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
    ok = ok && store &&
         workloads::verify_store(*store, file.fs_id(), extents, 31);
    // And the read path with cb disabled.
    std::vector<std::byte> back(bytes);
    core::read_at_all(file, 0, back.data(), 1, dtype::Datatype::bytes(bytes));
    ok = ok && workloads::check_buffer_for_extents(
                   back.data(), dtype::Datatype::bytes(bytes), 1, extents, 31);
    file.close();
  });
  EXPECT_TRUE(ok);
}

TEST(CbWrite, DisabledIsSlowerForInterleavedPatterns) {
  const auto run = [](bool cb) {
    workloads::FlashConfig config;
    config.nxb = 8;
    config.nguard = 1;
    config.nblocks = 4;
    config.nvars = 2;
    mpi::World world(machine::MachineModel::jaguar(16), /*byte_true=*/false);
    mpiio::Hints hints;
    hints.cb_write_enabled = cb;
    double elapsed = 0;
    world.run([&](mpi::Rank& self) {
      mpiio::FileHandle file(self, self.comm_world(), "cbcmp.dat", hints);
      file.set_view(0, config.zone_bytes(),
                    config.filetype(self.rank(), 16));
      const auto memtype = config.block_memtype();
      const double t0 = self.now();
      core::write_at_all(file, 0, nullptr,
                         static_cast<std::uint64_t>(config.nblocks), memtype);
      mpi::barrier(self, self.comm_world());
      if (self.rank() == 0) elapsed = self.now() - t0;
      file.close();
    });
    return elapsed;
  };
  EXPECT_GT(run(false), run(true));
}

TEST(FlashPlotfiles, ConfigurationsMatchTheBenchmark) {
  const auto centered = workloads::FlashConfig::plotfile_centered();
  EXPECT_EQ(centered.zone_bytes(), 4u);
  EXPECT_EQ(centered.nvars, 4);
  EXPECT_EQ(centered.block_side(), 32);
  EXPECT_EQ(centered.block_memtype().size(), centered.block_bytes());
  const auto corner = workloads::FlashConfig::plotfile_corner();
  EXPECT_EQ(corner.block_side(), 33);
  EXPECT_EQ(corner.block_bytes(), 33ull * 33 * 33 * 4);
}

TEST(FlashPlotfiles, CenteredPlotfileWritesVerify) {
  auto config = workloads::FlashConfig::plotfile_centered();
  config.nxb = 4;
  config.nblocks = 3;
  config.nvars = 2;
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::ParColl;
  spec.parcoll_groups = 2;
  spec.min_group_size = 2;
  spec.byte_true = true;
  spec.cb_buffer_size = 4096;
  const auto result = workloads::run_flashio(config, 8, spec, true);
  EXPECT_TRUE(result.verified);
}

TEST(FlashPlotfiles, CornerPlotfileWritesVerify) {
  auto config = workloads::FlashConfig::plotfile_corner();
  config.nxb = 4;
  config.nblocks = 2;
  config.nvars = 2;
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::Ext2ph;
  spec.byte_true = true;
  spec.cb_buffer_size = 4096;
  const auto result = workloads::run_flashio(config, 8, spec, true);
  EXPECT_TRUE(result.verified);
}

TEST(FlashPlotfiles, PlotfilesAreSmallerThanCheckpoints) {
  const auto checkpoint = workloads::FlashConfig::checkpoint();
  const auto plot = workloads::FlashConfig::plotfile_centered();
  EXPECT_LT(plot.checkpoint_bytes(128), checkpoint.checkpoint_bytes(128) / 10);
}

}  // namespace
}  // namespace parcoll
