#include "workloads/flashio.hpp"

#include <stdexcept>

#include "core/parcoll.hpp"
#include "mpi/collectives.hpp"
#include "mpiio/file.hpp"
#include "mpiio/independent.hpp"
#include "mpiio/sieve.hpp"
#include "h5lite/h5lite.hpp"
#include "workloads/pattern.hpp"

namespace parcoll::workloads {

namespace {
constexpr std::uint64_t kSalt = 0xF1A5;
}

FlashConfig FlashConfig::plotfile_centered() {
  FlashConfig config;
  config.nvars = 4;       // plot_var_1..4
  config.zone_size = 4;   // single precision
  config.dense_memory = true;
  return config;
}

FlashConfig FlashConfig::plotfile_corner() {
  FlashConfig config = plotfile_centered();
  config.corner = true;
  return config;
}

dtype::Datatype FlashConfig::block_memtype() const {
  if (dense_memory) {
    // Plotfiles stage converted data into a dense scratch buffer.
    return dtype::Datatype::bytes(block_bytes());
  }
  const std::int64_t g = nguard;
  const std::int64_t full = nxb + 2 * g;
  const std::int64_t sizes[3] = {full, full, full};
  const std::int64_t subsizes[3] = {nxb, nxb, nxb};
  const std::int64_t starts[3] = {g, g, g};
  return dtype::Datatype::subarray(sizes, subsizes, starts,
                                   dtype::Datatype::bytes(zone_bytes()));
}

dtype::Datatype FlashConfig::filetype(int rank, int nranks) const {
  std::vector<dtype::Segment> slots;
  slots.reserve(static_cast<std::size_t>(nblocks));
  for (int b = 0; b < nblocks; ++b) {
    const std::int64_t slot =
        interleaved_blocks
            ? static_cast<std::int64_t>(b) * nranks + rank
            : static_cast<std::int64_t>(rank) * nblocks + b;
    slots.push_back(dtype::Segment{
        slot * static_cast<std::int64_t>(block_bytes()), block_bytes()});
  }
  const std::int64_t dataset_bytes =
      static_cast<std::int64_t>(nranks) *
      static_cast<std::int64_t>(rank_var_bytes());
  return dtype::Datatype::from_segments(std::move(slots), 0, dataset_bytes);
}

RunResult run_flashio(const FlashConfig& config, int nranks,
                      const RunSpec& spec, bool write) {
  mpi::World world(spec.model(nranks), spec.byte_true);
  world.set_fault(spec.fault);
  apply_observability(world, spec);
  const mpiio::Hints hints = spec.hints();
  PhaseClock clock;
  mpiio::FileStats final_stats;
  bool verified = true;

  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "flash.chk", hints);
    file.set_view(0, config.zone_bytes(),
                  config.filetype(self.rank(), nranks));
    const dtype::Datatype memtype = config.block_memtype();
    const auto nblocks = static_cast<std::uint64_t>(config.nblocks);
    const std::uint64_t var_bytes = config.rank_var_bytes();
    const std::uint64_t var_etypes = var_bytes / config.zone_bytes();

    std::vector<std::byte> buffer;
    if (spec.byte_true) {
      buffer.resize(static_cast<std::uint64_t>(memtype.extent()) * nblocks);
      if (!write) {
        for (int v = 0; v < config.nvars; ++v) {
          const std::uint64_t offset =
              static_cast<std::uint64_t>(v) * var_etypes;
          const auto extents = file.view().map(offset, var_bytes);
          fill_buffer_for_extents(buffer.data(), memtype, nblocks, extents,
                                  kSalt);
          file.write_at(offset, buffer.data(), nblocks, memtype);
        }
        std::fill(buffer.begin(), buffer.end(), std::byte{0});
      }
    }

    mpi::barrier(self, file.comm());
    clock.begin(self.now());
    for (int v = 0; v < config.nvars; ++v) {
      const std::uint64_t offset = static_cast<std::uint64_t>(v) * var_etypes;
      std::vector<fs::Extent> extents;
      if (spec.byte_true) {
        extents = file.view().map(offset, var_bytes);
        if (write) {
          fill_buffer_for_extents(buffer.data(), memtype, nblocks, extents,
                                  kSalt);
        }
      }
      void* data = buffer.empty() ? nullptr : buffer.data();
      switch (spec.impl) {
        case Impl::PosixIndependent:
          write
              ? mpiio::posix_write_at(file, offset, data, nblocks, memtype)
              : mpiio::posix_read_at(file, offset, data, nblocks, memtype);
          break;
        case Impl::Sieving:
          write
              ? mpiio::sieve_write_at(file, offset, data, nblocks, memtype)
              : mpiio::sieve_read_at(file, offset, data, nblocks, memtype);
          break;
        case Impl::Independent:
          write ? file.write_at(offset, data, nblocks, memtype)
                : file.read_at(offset, data, nblocks, memtype);
          break;
        case Impl::Ext2ph:
        case Impl::ParColl:
          if (write) {
            core::write_at_all(file, offset, data, nblocks, memtype);
          } else {
            core::read_at_all(file, offset, data, nblocks, memtype);
          }
          break;
      }
      if (spec.byte_true && !write) {
        verified = verified &&
                   check_buffer_for_extents(buffer.data(), memtype, nblocks,
                                            extents, kSalt);
      }
    }
    mpi::barrier(self, file.comm());
    clock.end(self.now());

    // Close before auditing and snapshotting: close drains any staged
    // burst-buffer data and folds the drain time into the file stats.
    file.close();
    if (spec.byte_true && write) {
      auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
      bool ok = store != nullptr;
      for (int v = 0; ok && v < config.nvars; ++v) {
        const auto extents = file.view().map(
            static_cast<std::uint64_t>(v) * var_etypes, var_bytes);
        ok = verify_store(*store, file.fs_id(), extents, kSalt);
      }
      verified = verified && ok;
    }
    if (self.rank() == 0) {
      final_stats = file.stats();
    }
  });

  RunResult result =
      collect(world, clock, config.checkpoint_bytes(nranks), final_stats);
  result.verified = verified;
  return result;
}

namespace {

/// Selection of this rank's blocks within a per-block record dataset of
/// `rec_bytes` per block (AMR-interleaved slots, like the variables).
dtype::Datatype block_record_selection(const FlashConfig& config, int rank,
                                       int nranks, std::uint64_t rec_bytes) {
  std::vector<dtype::Segment> slots;
  slots.reserve(static_cast<std::size_t>(config.nblocks));
  for (int b = 0; b < config.nblocks; ++b) {
    const std::int64_t slot =
        config.interleaved_blocks
            ? static_cast<std::int64_t>(b) * nranks + rank
            : static_cast<std::int64_t>(rank) * config.nblocks + b;
    slots.push_back(dtype::Segment{
        slot * static_cast<std::int64_t>(rec_bytes), rec_bytes});
  }
  const std::int64_t total = static_cast<std::int64_t>(rec_bytes) * nranks *
                             config.nblocks;
  return dtype::Datatype::from_segments(std::move(slots), 0, total);
}

}  // namespace

RunResult run_flashio_h5(const FlashConfig& config, int nranks,
                         const RunSpec& spec) {
  mpi::World world(spec.model(nranks), spec.byte_true);
  world.set_fault(spec.fault);
  apply_observability(world, spec);
  const mpiio::Hints hints = spec.hints();
  PhaseClock clock;
  mpiio::FileStats final_stats;
  bool verified = true;
  constexpr std::uint64_t kSalt = 0xF1A6;

  world.run([&](mpi::Rank& self) {
    auto file = h5::H5File::create(self, self.comm_world(), "flash_h5.chk",
                                   hints);
    const auto total_blocks =
        static_cast<std::uint64_t>(nranks) * config.nblocks;
    const auto n = static_cast<std::uint64_t>(config.block_side());

    mpi::barrier(self, file.raw().comm());
    clock.begin(self.now());

    // File-level attributes (simulation metadata), then the per-block
    // bookkeeping datasets — the small-record HDF5 overhead.
    file.write_attribute("file format version",
                         {std::byte{7}, std::byte{0}, std::byte{0},
                          std::byte{0}});
    struct Record {
      const char* name;
      std::uint64_t bytes;
    };
    const Record records[] = {
        {"lrefine", 4}, {"node type", 4},   {"coordinates", 24},
        {"block size", 24}, {"bounding box", 48},
    };
    for (const Record& record : records) {
      file.create_dataset(record.name, {total_blocks}, record.bytes);
      const auto selection =
          block_record_selection(config, self.rank(), nranks, record.bytes);
      const std::uint64_t bytes = record.bytes * config.nblocks;
      std::vector<std::byte> data;
      if (spec.byte_true) {
        data.resize(bytes);
      }
      file.write_dataset(record.name, selection,
                         data.empty() ? nullptr : data.data(),
                         spec.byte_true ? 1 : 0,
                         dtype::Datatype::bytes(bytes));
    }

    // The unknowns: one dataset per variable, AMR-interleaved block slots.
    const dtype::Datatype memtype = config.block_memtype();
    const auto nblocks = static_cast<std::uint64_t>(config.nblocks);
    std::vector<std::byte> buffer;
    if (spec.byte_true) {
      buffer.resize(static_cast<std::uint64_t>(memtype.extent()) * nblocks);
    }
    std::vector<std::string> var_names;
    for (int v = 0; v < config.nvars; ++v) {
      char name[16];
      std::snprintf(name, sizeof(name), "var%02d", v);
      var_names.push_back(name);
      const auto& info = file.create_dataset(
          name, {total_blocks, n, n, n}, config.zone_bytes());
      const auto selection = config.filetype(self.rank(), nranks);
      if (spec.byte_true) {
        // Fill so that the bytes landing in the file match the pattern at
        // their absolute offsets.
        std::vector<fs::Extent> extents;
        for (const auto& seg : selection.segments()) {
          extents.push_back(fs::Extent{
              info.data_offset + static_cast<std::uint64_t>(seg.disp),
              seg.length});
        }
        fill_buffer_for_extents(buffer.data(), memtype, nblocks, extents,
                                kSalt);
      }
      file.write_dataset(name, selection,
                         buffer.empty() ? nullptr : buffer.data(), nblocks,
                         memtype);
    }
    mpi::barrier(self, file.raw().comm());
    clock.end(self.now());

    // Close before auditing and snapshotting: close drains any staged
    // burst-buffer data and folds the drain time into the file stats.
    file.close();
    if (spec.byte_true) {
      auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
      bool ok = store != nullptr;
      for (const std::string& name : var_names) {
        if (!ok) break;
        const auto& info = file.dataset(name);
        const auto selection = config.filetype(self.rank(), nranks);
        std::vector<fs::Extent> extents;
        for (const auto& seg : selection.segments()) {
          extents.push_back(fs::Extent{
              info.data_offset + static_cast<std::uint64_t>(seg.disp),
              seg.length});
        }
        ok = verify_store(*store, file.raw().fs_id(), extents, kSalt);
      }
      verified = verified && ok;
    }
    if (self.rank() == 0) {
      final_stats = file.raw().stats();
    }
  });

  RunResult result =
      collect(world, clock, config.checkpoint_bytes(nranks), final_stats);
  result.verified = verified;
  return result;
}

}  // namespace parcoll::workloads
