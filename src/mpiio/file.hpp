// MPI-IO file handles.
//
// A FileHandle is one rank's handle to a collectively opened file: it holds
// the rank's file view and a pointer to comm-wide shared state (hints,
// statistics, the underlying Lustre file). Independent reads/writes live
// here; collective reads/writes are entered through core/parcoll.hpp
// (parcoll::core::write_at_all / read_at_all), which dispatch to plain
// ext2ph or to ParColl partitioning according to the hints.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dtype/datatype.hpp"
#include "fs/lustre.hpp"
#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "mpiio/hints.hpp"
#include "mpiio/stats.hpp"
#include "mpiio/view.hpp"

namespace parcoll::bb {
class StagingStore;
}

namespace parcoll::mpiio {

/// Comm-wide shared state of an open file.
struct FileCommon {
  int fs_id = -1;
  std::string name;
  Hints hints;
  FileStats stats;
  mpi::Comm comm;
  /// The shared file pointer (etypes). Guarded by fetch-and-add semantics:
  /// each shared-pointer operation pays a metadata round trip.
  std::uint64_t shared_position = 0;
  /// Burst-buffer staging store (null unless the bb hint enables it).
  /// Collective writes land here and drain behind; independent I/O and
  /// close/sync flush through it for consistency.
  std::shared_ptr<bb::StagingStore> bb;
};

/// A request prepared for the I/O engines: absolute file extents plus the
/// matching packed byte stream (empty in phantom mode).
struct PreparedRequest {
  std::vector<fs::Extent> extents;
  std::vector<std::byte> packed;
  std::uint64_t bytes = 0;
  [[nodiscard]] std::byte* data() {
    return packed.empty() ? nullptr : packed.data();
  }
};

/// MPI_File_open access modes (combinable bit flags).
enum AccessMode : unsigned {
  kModeRdonly = 1u << 0,
  kModeWronly = 1u << 1,
  kModeRdwr = 1u << 2,
  kModeCreate = 1u << 3,
  kModeExcl = 1u << 4,   // with kModeCreate: error if the file exists
  kModeAppend = 1u << 5, // file pointer starts at end of file
};

class FileHandle {
 public:
  /// Collective open (creates the file if needed, applying the hints'
  /// striping). All members of `comm` must call with identical arguments.
  FileHandle(mpi::Rank& self, const mpi::Comm& comm, const std::string& name,
             const Hints& hints = {},
             unsigned amode = kModeRdwr | kModeCreate);

  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;

  /// MPI_File_set_view: offsets in subsequent calls count etypes within
  /// the stream the (disp, etype, filetype) triple defines. Local call.
  /// Resets the collective engine's cached partition (the paper ties
  /// pattern detection to file-view initiation).
  void set_view(std::uint64_t disp, std::uint64_t etype_size,
                const dtype::Datatype& filetype);

  /// Opaque per-handle state owned by the collective engine (core/):
  /// caches the ParColl subgroup partition across calls so repeated
  /// collectives need no global re-synchronization. Cleared by set_view.
  [[nodiscard]] std::shared_ptr<void>& engine_cache() { return engine_cache_; }

  // --- Independent I/O (offsets in etypes, relative to the view) ---

  void write_at(std::uint64_t offset, const void* buffer, std::uint64_t count,
                const dtype::Datatype& memtype);
  void read_at(std::uint64_t offset, void* buffer, std::uint64_t count,
               const dtype::Datatype& memtype);

  // --- Individual file pointer (per handle, in etypes) ---

  enum class Whence { Set, Cur, End };

  /// MPI_File_seek. `End` is supported for contiguous views only (the end
  /// of a holey view is not well-defined from the file size alone).
  void seek(std::int64_t offset, Whence whence);
  [[nodiscard]] std::uint64_t position() const { return position_; }
  /// Advance the pointer by a completed transfer of `bytes` of data.
  void advance_bytes(std::uint64_t bytes);

  /// Pointer-based independent I/O: read/write at position(), then advance.
  void write(const void* buffer, std::uint64_t count,
             const dtype::Datatype& memtype);
  void read(void* buffer, std::uint64_t count, const dtype::Datatype& memtype);

  /// MPI_File_sync: flush/visibility round trip (local metadata cost).
  void sync();

  /// MPI_File_set_atomicity: in atomic mode, independent writes bracket
  /// their covering range with an exclusive file lock (sequential
  /// consistency for overlapping writers), at the usual locking cost.
  void set_atomicity(bool atomic) { atomic_ = atomic; }
  [[nodiscard]] bool atomicity() const { return atomic_; }

  // --- Shared file pointer (one per file, MPI_File_*_shared) ---

  /// Atomically claim `count * memtype.size()` bytes worth of etypes at
  /// the shared pointer (a fetch-and-add round trip) and write there.
  void write_shared(const void* buffer, std::uint64_t count,
                    const dtype::Datatype& memtype);
  void read_shared(void* buffer, std::uint64_t count,
                   const dtype::Datatype& memtype);
  [[nodiscard]] std::uint64_t shared_position() const {
    return common_->shared_position;
  }

  /// Collective close: merges statistics and synchronizes. The close-time
  /// summary (the paper's per-file profile report) is available via
  /// stats().summary(name()).
  void close();

  // --- Accessors (used by the collective engines in core/) ---

  [[nodiscard]] mpi::Rank& self() { return self_; }
  [[nodiscard]] const mpi::Comm& comm() const { return common_->comm; }
  [[nodiscard]] const Hints& hints() const { return common_->hints; }
  [[nodiscard]] const FileView& view() const { return view_; }
  [[nodiscard]] int fs_id() const { return common_->fs_id; }
  [[nodiscard]] const std::string& name() const { return common_->name; }
  [[nodiscard]] unsigned amode() const { return amode_; }
  /// Throws if the access mode forbids the operation.
  void require_writable() const;
  void require_readable() const;
  [[nodiscard]] const FileStats& stats() const { return common_->stats; }
  /// The burst-buffer staging store, or null when bb is off.
  [[nodiscard]] bb::StagingStore* bb_store() const {
    return common_->bb.get();
  }
  [[nodiscard]] std::uint64_t size() const {
    return self_.world().fs().file_size(common_->fs_id);
  }

  /// Map a request through the view and, for writes with a real buffer,
  /// pack the data (charging memcpy time). `buffer` may be nullptr.
  PreparedRequest prepare_write(std::uint64_t offset, const void* buffer,
                                std::uint64_t count,
                                const dtype::Datatype& memtype);
  /// Map a read request; allocates the packed landing buffer when `buffer`
  /// is real.
  PreparedRequest prepare_read(std::uint64_t offset, const void* buffer,
                               std::uint64_t count,
                               const dtype::Datatype& memtype);
  /// Unpack a completed read's packed stream into the user buffer.
  void finish_read(PreparedRequest& request, void* buffer, std::uint64_t count,
                   const dtype::Datatype& memtype);

  /// Merge an operation's statistics into the shared per-file stats.
  void add_stats(const FileStats& delta) { common_->stats += delta; }

  /// Snapshot of this rank's time breakdown, for charging deltas to stats.
  [[nodiscard]] mpi::TimeBreakdown time_snapshot() const {
    return self_.times().breakdown();
  }
  [[nodiscard]] static mpi::TimeBreakdown time_delta(
      const mpi::TimeBreakdown& before, const mpi::TimeBreakdown& after);

 private:
  mpi::Rank& self_;
  std::shared_ptr<FileCommon> common_;
  FileView view_;
  std::shared_ptr<void> engine_cache_;
  std::uint64_t position_ = 0;  // individual file pointer, in etypes
  unsigned amode_ = kModeRdwr | kModeCreate;
  bool atomic_ = false;
  bool open_ = true;
};

}  // namespace parcoll::mpiio
