// Figure 5 (table) — "Distribution of I/O Aggregators".
//
// Reproduces the paper's worked example verbatim: 8 processes on 4
// dual-core nodes, two subgroups {P0..P3} and {P4..P7}, under block and
// cyclic process mappings. Block uses the full default node list (N0..N3);
// cyclic uses the explicit aggregator list {N0, N2, N3} — the paper's
// "each group first gets one I/O aggregator, the third one is then left to
// Subgroup 1" case.
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/aggregator_dist.hpp"
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace parcoll;
  using namespace parcoll::bench;
  // Structural table (no timed runs): --json still writes a valid document
  // with an empty points array, so tooling can treat every bench uniformly.
  BenchReport report("tab05_aggregator_dist", argc, argv);

  header("Figure 5", "distribution of I/O aggregators (paper's example)");

  const std::vector<int> groups{0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<int> members(8);
  std::iota(members.begin(), members.end(), 0);
  const mpi::Comm comm(1, members);

  struct Case {
    const char* name;
    machine::Mapping mapping;
    std::vector<int> nodes;
  };
  const Case cases[] = {
      {"Block", machine::Mapping::Block, {0, 1, 2, 3}},
      {"Cyclic", machine::Mapping::Cyclic, {0, 2, 3}},
  };
  for (const Case& c : cases) {
    const machine::Topology topo(8, 2, c.mapping);
    std::printf("  %s mapping, aggregator nodes {", c.name);
    for (std::size_t i = 0; i < c.nodes.size(); ++i) {
      std::printf("%sN%d", i ? "," : "", c.nodes[i]);
    }
    std::printf("}\n");
    std::printf("    processes per node: ");
    for (int n = 0; n < topo.num_nodes(); ++n) {
      std::printf("N%d(", n);
      const auto ranks = topo.ranks_on_node(n);
      for (std::size_t i = 0; i < ranks.size(); ++i) {
        std::printf("%sP%d", i ? "," : "", ranks[i]);
      }
      std::printf(") ");
    }
    std::printf("\n");
    const auto result =
        core::distribute_aggregators(topo, comm, c.nodes, groups, 2);
    for (std::size_t g = 0; g < result.size(); ++g) {
      std::printf("    SubGroup %zu aggregators: ", g + 1);
      for (int local : result[g]) {
        std::printf("N%d(P%d) ", topo.node_of(local), local);
      }
      std::printf("\n");
    }
  }
  footnote("paper block:  SG1 = N0(P0), N1(P2); SG2 = N2(P4), N3(P6)");
  footnote("paper cyclic: SG1 = N0(P0), N3(P3); SG2 = N2(P6)");
  return 0;
}
