file(REMOVE_RECURSE
  "CMakeFiles/fig01_collective_wall.dir/fig01_collective_wall.cpp.o"
  "CMakeFiles/fig01_collective_wall.dir/fig01_collective_wall.cpp.o.d"
  "fig01_collective_wall"
  "fig01_collective_wall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_collective_wall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
