#include "check/explore.hpp"

#include <set>
#include <stdexcept>
#include <utility>

#include "fs/integrity.hpp"
#include "fs/lustre.hpp"
#include "fs/object_store.hpp"
#include "mpi/collectives.hpp"
#include "mpi/runtime.hpp"
#include "sim/random.hpp"
#include "workloads/btio.hpp"
#include "workloads/flashio.hpp"
#include "workloads/ior.hpp"
#include "workloads/tileio.hpp"

namespace parcoll::check {

namespace {

/// Tiny workload shapes: a schedule probe must run in milliseconds, so the
/// checker trades paper-scale payloads for schedule coverage. The access
/// patterns (tiled subarray, segmented contiguous, diagonal multipartition,
/// interleaved AMR blocks) are the real ones.
workloads::TileIOConfig tiny_tileio() {
  workloads::TileIOConfig config;
  config.tiles_x = 4;
  config.tile_w = 4;
  config.tile_h = 4;
  config.elem_size = 8;
  return config;
}

workloads::IorConfig tiny_ior() {
  workloads::IorConfig config;
  config.block_size = 16 << 10;
  config.xfer_size = 4 << 10;
  return config;
}

workloads::BtIOConfig tiny_btio() {
  workloads::BtIOConfig config;
  config.grid = 12;
  config.nsteps = 2;
  return config;
}

workloads::FlashConfig tiny_flashio() {
  workloads::FlashConfig config;
  config.nxb = 4;
  config.nguard = 1;
  config.nblocks = 2;
  config.nvars = 2;
  return config;
}

workloads::RunResult dispatch(const CheckConfig& config,
                              const workloads::RunSpec& spec) {
  if (config.workload == "tileio") {
    return workloads::run_tileio(tiny_tileio(), config.nprocs, spec,
                                 /*write=*/true);
  }
  if (config.workload == "ior") {
    return workloads::run_ior(tiny_ior(), config.nprocs, spec, /*write=*/true);
  }
  if (config.workload == "btio") {
    return workloads::run_btio(tiny_btio(), config.nprocs, spec,
                               /*write=*/true);
  }
  if (config.workload == "flashio") {
    return workloads::run_flashio(tiny_flashio(), config.nprocs, spec,
                                  /*write=*/true);
  }
  throw std::invalid_argument("unknown checker workload: " + config.workload);
}

}  // namespace

workloads::RunSpec CheckConfig::spec() const {
  workloads::RunSpec spec;
  spec.impl = impl;
  spec.parcoll_groups = groups;
  spec.min_group_size = min_group_size;
  spec.cb_nodes = cb_nodes;
  spec.byte_true = true;  // the content-equivalence invariant needs bytes
  if (intranode) {
    spec.intranode = node::IntranodeMode::On;
  }
  if (bb) {
    spec.bb.enabled = true;
    spec.bb.capacity = bb_capacity;
    spec.bb.policy = bb::parse_drain_policy(bb_drain);
  }
  if (!fault_spec.empty()) {
    spec.fault = fault::FaultPlan::parse(fault_spec);
  }
  if (integrity != "off") {
    spec.integrity.level = fs::parse_integrity_level(integrity);
    spec.integrity.scrub = scrub;
  }
  return spec;
}

ScheduleOutcome run_schedule(const CheckConfig& config,
                             const sim::SchedulePolicy& policy) {
  ScheduleOutcome outcome;
  outcome.token = policy.token();

  InvariantChecker checker;
  workloads::RunSpec spec = config.spec();
  spec.checker = &checker;
  spec.schedule = policy;
  // The log must survive the World when a schedule dies mid-run: the
  // policy's record sink points at the outcome, not at engine state.
  spec.schedule.record = &outcome.log;

  try {
    workloads::RunResult result = dispatch(config, spec);
    outcome.completed = true;
    outcome.digest = result.file_digest;
    outcome.verified = result.verified;
    outcome.faults = result.faults;
  } catch (const sim::DeadlockError& error) {
    outcome.deadlock = true;
    outcome.error = error.what();
  } catch (const std::exception& error) {
    outcome.error = error.what();
  }
  checker.finalize();
  outcome.invariant_checks = checker.checks();
  outcome.violations = checker.violations();
  return outcome;
}

ExploreStats& ExploreStats::operator+=(const ExploreStats& other) {
  schedules += other.schedules;
  distinct += other.distinct;
  invariant_checks += other.invariant_checks;
  faulted_runs += other.faulted_runs;
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
  return *this;
}

ExploreStats explore(const CheckConfig& config, const ExploreOptions& options) {
  ExploreStats stats;
  std::set<std::uint64_t> signatures;

  // The clean program-order run is the oracle every schedule must match.
  CheckConfig clean = config;
  clean.fault_spec.clear();
  const ScheduleOutcome reference =
      run_schedule(clean, sim::SchedulePolicy::program());
  ++stats.schedules;
  signatures.insert(sim::schedule_signature(reference.log));
  stats.invariant_checks += reference.invariant_checks;
  for (const Violation& violation : reference.violations) {
    stats.violations.push_back(
        {config.name, violation.invariant, violation.detail, reference.token});
  }
  if (!reference.completed) {
    stats.violations.push_back({config.name,
                                reference.deadlock ? "deadlock" : "error",
                                reference.error, reference.token});
  } else if (!reference.verified) {
    stats.violations.push_back(
        {config.name, "file-audit",
         "clean reference run failed its byte audit", reference.token});
  }
  if (!stats.violations.empty() && options.stop_on_violation) {
    stats.distinct = signatures.size();
    return stats;
  }
  const std::uint64_t ref_digest = reference.digest;

  // Returns true when exploration should stop.
  const auto consider = [&](const ScheduleOutcome& outcome) {
    ++stats.schedules;
    signatures.insert(sim::schedule_signature(outcome.log));
    stats.invariant_checks += outcome.invariant_checks;
    if (outcome.faults.any()) {
      ++stats.faulted_runs;
    }
    const std::size_t before = stats.violations.size();
    for (const Violation& violation : outcome.violations) {
      stats.violations.push_back(
          {config.name, violation.invariant, violation.detail, outcome.token});
    }
    if (outcome.deadlock) {
      stats.violations.push_back(
          {config.name, "deadlock", outcome.error, outcome.token});
    } else if (!outcome.completed) {
      stats.violations.push_back(
          {config.name, "error", outcome.error, outcome.token});
    } else {
      if (outcome.digest != ref_digest) {
        stats.violations.push_back(
            {config.name, "content-equivalence",
             "file digest differs from the clean program-order run",
             outcome.token});
      }
      if (!outcome.verified) {
        stats.violations.push_back({config.name, "file-audit",
                                    "byte audit failed", outcome.token});
      }
    }
    return options.stop_on_violation && stats.violations.size() > before;
  };

  int budget = options.budget > 0 ? options.budget : 0;
  int dfs_budget = 0;
  int random_budget = 0;
  switch (options.mode) {
    case ExploreMode::Random:
      random_budget = budget;
      break;
    case ExploreMode::Dfs:
      dfs_budget = budget;
      break;
    case ExploreMode::Both:
      dfs_budget = budget / 2;
      random_budget = budget - dfs_budget;
      break;
  }

  // Bounded DFS: systematic neighborhood of program order. When the
  // frontier exhausts before its budget, the remainder goes to random
  // probes (deep-schedule coverage DFS's horizon cannot reach).
  std::vector<std::uint32_t> prefix;
  bool stop = false;
  for (int i = 0; i < dfs_budget && !stop; ++i) {
    const ScheduleOutcome outcome =
        run_schedule(config, sim::SchedulePolicy::dfs(prefix));
    stop = consider(outcome);
    if (stop) {
      break;
    }
    auto next = sim::dfs_next(outcome.log, options.dfs_depth);
    if (!next) {
      random_budget += dfs_budget - i - 1;
      break;
    }
    prefix = std::move(*next);
  }
  for (int i = 0; i < random_budget && !stop; ++i) {
    const std::uint64_t seed =
        sim::hash_combine(options.seed, static_cast<std::uint64_t>(i));
    const ScheduleOutcome outcome =
        run_schedule(config, sim::SchedulePolicy::random(seed));
    stop = consider(outcome);
  }

  stats.distinct = signatures.size();
  return stats;
}

std::vector<CheckConfig> smoke_configs() {
  std::vector<CheckConfig> configs;
  // Clean runs: schedule permutations alone must not change file contents
  // or trip a collective-ordering invariant.
  configs.push_back({"tileio-ext2ph", "tileio", 8, workloads::Impl::Ext2ph});
  configs.push_back(
      {"tileio-parcoll2", "tileio", 8, workloads::Impl::ParColl, 2});
  configs.push_back({"ior-parcoll-auto", "ior", 8, workloads::Impl::ParColl, 0,
                     /*cb_nodes=*/0, /*min_group_size=*/2});
  configs.push_back({"btio-parcoll2", "btio", 9, workloads::Impl::ParColl, 2,
                     /*cb_nodes=*/0, /*min_group_size=*/2});
  {
    CheckConfig config{"flashio-intranode", "flashio", 8,
                       workloads::Impl::Ext2ph};
    config.intranode = true;
    configs.push_back(config);
  }
  // Degraded runs: every schedule must survive the fault plan and still
  // produce the clean run's bytes. Windows cover the whole (tiny) run so
  // the plans engage regardless of how a schedule shifts timings.
  {
    CheckConfig config{"tileio-outage", "tileio", 8, workloads::Impl::Ext2ph};
    config.fault_spec =
        "seed=11;ost-outage=0:0:0.02;rpc-drop=0.02;timeout=0.005;"
        "backoff=0.001:0.01;max-retries=2";
    configs.push_back(config);
  }
  {
    CheckConfig config{"ior-degrade-drop", "ior", 8, workloads::Impl::ParColl,
                       2, /*cb_nodes=*/0, /*min_group_size=*/2};
    config.fault_spec =
        "seed=7;ost-degrade=1:0:1:8.0;rpc-drop=0.05;timeout=0.005;"
        "backoff=0.001:0.01";
    configs.push_back(config);
  }
  {
    // Aggregator stall long past the re-election threshold with cb_nodes
    // limited, so healthy non-aggregator substitutes exist in the subgroup.
    // IOR's multiple transfers give the stall a sync point to fire at
    // mid-run (at=0.015 lands between collective calls on the program-order
    // run, where rank 0 is a group aggregator) with later calls still to
    // come — the shape re-election needs.
    CheckConfig config{"ior-reelection", "ior", 8, workloads::Impl::ParColl,
                       2, /*cb_nodes=*/2, /*min_group_size=*/2};
    config.fault_spec =
        "seed=3;rank-stall=0:0.015:2.0;agg-stall-threshold=0.01";
    configs.push_back(config);
  }
  {
    // Burst-buffer staging, clean: writes return once staged and drain
    // behind. Every schedule must keep the collective-complete invariants
    // across drains and land the program-order run's exact bytes.
    CheckConfig config{"tileio-bb", "tileio", 8, workloads::Impl::ParColl, 2};
    config.bb = true;
    config.bb_drain = "watermark";  // exercises the hi/lo gating + flushes
    configs.push_back(config);
  }
  {
    // Drain failure: an OST outage covering the drain window pushes the
    // background drains themselves into retries/failover. The staged data
    // must replay until durable — no loss, no divergent double-write.
    CheckConfig config{"ior-bb-drain-fault", "ior", 8, workloads::Impl::Ext2ph};
    config.bb = true;
    config.fault_spec =
        "seed=5;ost-outage=0:0:0.05;rpc-drop=0.02;timeout=0.005;"
        "backoff=0.001:0.01;max-retries=2";
    configs.push_back(config);
  }
  // Silent-corruption runs at integrity=repair: every injected flip must be
  // detected and healed, so the content-equivalence check against the clean
  // reference still holds on every schedule.
  {
    // Wire corruption: corrupted write RPCs fail the OST's ingest checksum
    // and retransmit until a clean copy lands.
    CheckConfig config{"tileio-corrupt-rpc", "tileio", 8,
                       workloads::Impl::ParColl, 2};
    config.integrity = "repair";
    config.fault_spec =
        "seed=13;rpc-corrupt=0.1;timeout=0.005;backoff=0.001:0.01;"
        "max-retries=8";
    configs.push_back(config);
  }
  {
    // Staged-segment decay: resident bb segments flip while parked; the
    // pre-drain verification must heal them from the checksum replicas
    // before anything lands on an OST.
    CheckConfig config{"ior-bb-corrupt", "ior", 8, workloads::Impl::Ext2ph};
    config.bb = true;
    config.integrity = "repair";
    config.fault_spec = "seed=17;bb-corrupt=0.25";
    configs.push_back(config);
  }
  {
    // Latent media corruption: bytes already landed on OSTs flip mid-run;
    // the scrubber (and the close-time sweep backstop) must repair them.
    CheckConfig config{"tileio-media-scrub", "tileio", 8,
                       workloads::Impl::Ext2ph};
    config.integrity = "repair";
    config.fault_spec = "seed=19;media-corrupt=0:0.003;media-corrupt=1:0.004";
    configs.push_back(config);
  }
  return configs;
}

std::string replay_command(const ExploreViolation& violation) {
  return "parcoll_check --config " + violation.config + " --schedule '" +
         violation.token + "'";
}

ScheduleOutcome run_bug_schedule(const sim::SchedulePolicy& policy,
                                 InjectedBug bug) {
  ScheduleOutcome outcome;
  outcome.token = policy.token();

  machine::MachineModel model = machine::MachineModel::jaguar(4);
  mpi::World world(std::move(model), /*byte_true=*/true);
  sim::SchedulePolicy installed = policy;
  installed.record = &outcome.log;
  if (installed.kind != sim::TieBreak::Program) {
    world.engine().set_schedule(installed);
  }
  InvariantChecker checker;
  world.set_checker(&checker);

  // All four fibers start at t=0, so their start order is the engine's
  // first choice point. Under program order the second fiber to start is
  // rank 1 and the bug stays dormant; a permuted schedule puts another
  // rank second and the bug fires — deterministically, per schedule.
  auto arrivals = std::make_shared<int>(0);
  try {
    world.run([&checker, arrivals, bug](mpi::Rank& self) {
      (void)checker;
      const int order = (*arrivals)++;
      const bool triggered =
          bug != InjectedBug::None && order == 1 && self.rank() != 1;
      if (triggered && bug == InjectedBug::Deadlock) {
        return;  // never joins the collectives below: peers wait forever
      }
      if (triggered && bug == InjectedBug::Mismatch) {
        // Wrong collective kind at this communicator's sequence point 0.
        mpi::barrier(self, self.comm_world());
      }
      mpi::allreduce_sum(self, self.comm_world(), self.rank());
      mpi::barrier(self, self.comm_world());
    });
    outcome.completed = true;
    outcome.verified = true;
    outcome.digest = 0;
  } catch (const sim::DeadlockError& error) {
    outcome.deadlock = true;
    outcome.error = error.what();
  } catch (const std::exception& error) {
    outcome.error = error.what();
  }
  checker.finalize();
  outcome.invariant_checks = checker.checks();
  outcome.violations = checker.violations();
  return outcome;
}

ExploreStats corruption_selftest() {
  ExploreStats stats;
  const auto policy = sim::SchedulePolicy::program();

  // A plan dense enough that the program-order run is guaranteed to inject:
  // half the write RPCs flip a bit on the wire, and two latent media events
  // flip stored bytes mid-run.
  CheckConfig config{"tileio-corruption-selftest", "tileio", 8,
                     workloads::Impl::Ext2ph};
  config.fault_spec =
      "seed=21;rpc-corrupt=0.5;media-corrupt=0:0.003;timeout=0.005;"
      "backoff=0.001:0.01;max-retries=16";

  const auto expect = [&](bool ok, const std::string& invariant,
                          const std::string& detail,
                          const std::string& token) {
    if (!ok) {
      stats.violations.push_back({config.name, invariant, detail, token});
    }
  };

  // 1. Clean reference pins the expected bytes.
  CheckConfig clean = config;
  clean.fault_spec.clear();
  const ScheduleOutcome reference = run_schedule(clean, policy);
  ++stats.schedules;
  stats.invariant_checks += reference.invariant_checks;
  expect(reference.completed && reference.verified, "selftest-reference",
         "clean reference run failed: " + reference.error, reference.token);
  if (stats.violations.empty()) {
    // 2. Checksums off: the corruption must actually land and slip through
    // silently — the run completes, but the bytes are wrong.
    const ScheduleOutcome unprotected = run_schedule(config, policy);
    ++stats.schedules;
    ++stats.faulted_runs;
    expect(unprotected.completed, "selftest-unprotected",
           "corrupted run with checksums off did not complete: " +
               unprotected.error,
           unprotected.token);
    expect(unprotected.faults.corrupt_injected > 0, "selftest-unprotected",
           "fault plan injected no corruption", unprotected.token);
    expect(unprotected.faults.corrupt_detected == 0, "selftest-unprotected",
           "corruption was detected with checksums off", unprotected.token);
    expect(!unprotected.completed ||
               unprotected.digest != reference.digest || !unprotected.verified,
           "selftest-unprotected",
           "injected corruption left the file bit-identical to the clean "
           "run: the planted bug did not reproduce",
           unprotected.token);

    // 3. integrity=repair: same plan, but every flip is detected and healed
    // and the file comes out bit-identical to the clean reference.
    CheckConfig repaired = config;
    repaired.integrity = "repair";
    const ScheduleOutcome protected_run = run_schedule(repaired, policy);
    ++stats.schedules;
    ++stats.faulted_runs;
    stats.invariant_checks += protected_run.invariant_checks;
    for (const Violation& violation : protected_run.violations) {
      stats.violations.push_back({repaired.name, violation.invariant,
                                  violation.detail, protected_run.token});
    }
    expect(protected_run.completed, "selftest-repair",
           "corrupted run with integrity=repair did not complete: " +
               protected_run.error,
           protected_run.token);
    expect(protected_run.faults.corrupt_injected > 0, "selftest-repair",
           "fault plan injected no corruption", protected_run.token);
    expect(protected_run.faults.corrupt_detected > 0, "selftest-repair",
           "no injected corruption was detected", protected_run.token);
    expect(!protected_run.completed ||
               (protected_run.digest == reference.digest &&
                protected_run.verified),
           "selftest-repair",
           "integrity=repair did not restore the clean run's bytes",
           protected_run.token);
  }
  stats.distinct = stats.schedules;
  return stats;
}

}  // namespace parcoll::check
