// Group-size explorer: sweep ParColl-N over a workload and report, for each
// N, the partition the planner actually chose (mode, groups, aggregators)
// and the resulting bandwidth — the empirical tuning loop the paper
// recommends ("we empirically evaluate the impact of the group size...
// leaving the examination of an optimal group size to a future study").
//
// Usage: group_size_explorer [nranks]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/parcoll.hpp"
#include "workloads/tileio.hpp"

int main(int argc, char** argv) {
  using namespace parcoll;
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 128;
  const auto config = workloads::TileIOConfig::paper(nranks);

  std::printf("MPI-Tile-IO, %d ranks, %.1f MiB per rank\n", nranks,
              static_cast<double>(config.rank_bytes()) / (1 << 20));
  std::printf("%-10s %-18s %10s %8s\n", "requested", "mode/groups",
              "MiB/s", "sync%");

  workloads::RunSpec base;
  base.impl = workloads::Impl::Ext2ph;
  base.byte_true = false;
  const auto baseline = workloads::run_tileio(config, nranks, base, true);
  std::printf("%-10s %-18s %10.1f %7.1f%%\n", "baseline", "-",
              baseline.bandwidth_mib(), 100 * baseline.sync_fraction());

  for (int groups = 2; groups <= nranks / 2; groups *= 2) {
    workloads::RunSpec spec;
    spec.impl = workloads::Impl::ParColl;
    spec.parcoll_groups = groups;
    spec.min_group_size = 2;
    spec.byte_true = false;
    const auto result = workloads::run_tileio(config, nranks, spec, true);
    char mode[32];
    std::snprintf(mode, sizeof(mode), "%s/%d",
                  result.stats.view_switches ? "intermediate" : "direct",
                  result.stats.last_num_groups);
    std::printf("%-10d %-18s %10.1f %7.1f%%\n", groups, mode,
                result.bandwidth_mib(), 100 * result.sync_fraction());
  }
  std::printf("pick the knee: more groups cut synchronization until\n"
              "over-partitioning forfeits aggregation (paper Fig. 7)\n");
  return 0;
}
