#include "sim/fiber.hpp"

#include <cstdint>
#include <stdexcept>
#include <utility>

namespace parcoll::sim {

thread_local Fiber* Fiber::current_ = nullptr;

Fiber::Fiber(Body body, std::size_t stack_bytes)
    : stack_(new char[stack_bytes]), body_(std::move(body)) {
  if (getcontext(&context_) != 0) {
    throw std::runtime_error("Fiber: getcontext failed");
  }
  context_.uc_stack.ss_sp = stack_.get();
  context_.uc_stack.ss_size = stack_bytes;
  context_.uc_link = &return_point_;
  // makecontext only passes ints, so smuggle `this` through two halves.
  auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned int>(self >> 32),
              static_cast<unsigned int>(self & 0xffffffffu));
}

Fiber::~Fiber() = default;

void Fiber::trampoline(unsigned int ptr_hi, unsigned int ptr_lo) {
  auto self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(ptr_hi) << 32) |
      static_cast<std::uintptr_t>(ptr_lo));
  self->run_body();
  // Returning lets ucontext follow uc_link back to return_point_.
}

void Fiber::run_body() {
  try {
    body_();
  } catch (...) {
    exception_ = std::current_exception();
  }
  finished_ = true;
  current_ = nullptr;
}

void Fiber::resume() {
  if (finished_) {
    throw std::logic_error("Fiber::resume on finished fiber");
  }
  if (current_ != nullptr) {
    throw std::logic_error("Fiber::resume called from inside a fiber");
  }
  started_ = true;
  current_ = this;
  swapcontext(&return_point_, &context_);
  // Back on the scheduler: either the fiber yielded or it finished.
  if (finished_ && exception_) {
    std::exception_ptr rethrown = std::exchange(exception_, nullptr);
    std::rethrow_exception(rethrown);
  }
}

void Fiber::yield() {
  if (current_ != this) {
    throw std::logic_error("Fiber::yield called from the wrong context");
  }
  current_ = nullptr;
  swapcontext(&context_, &return_point_);
  current_ = this;
}

}  // namespace parcoll::sim
