file(REMOVE_RECURSE
  "CMakeFiles/fig07_tileio_groups.dir/fig07_tileio_groups.cpp.o"
  "CMakeFiles/fig07_tileio_groups.dir/fig07_tileio_groups.cpp.o.d"
  "fig07_tileio_groups"
  "fig07_tileio_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_tileio_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
