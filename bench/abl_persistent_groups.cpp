// Ablation — persistent subgroup partitions.
//
// This implementation ties the partition to file-view initiation (as the
// paper does for pattern detection) and caches it across collective calls.
// Re-partitioning on every call inserts a global exchange per call, which
// re-synchronizes all subgroups and forfeits the inter-group drift that
// lets ParColl pipeline around slow storage epochs. IOR (many collective
// calls) makes the difference stark.
#include "bench/common.hpp"
#include "workloads/ior.hpp"

int main(int argc, char** argv) {
  const bool smoke = parcoll::bench::smoke_requested(argc, argv);
  using namespace parcoll;
  using namespace parcoll::bench;

  const int nprocs = parcoll::bench::scaled(smoke, 256);
  workloads::IorConfig config;
  config.block_size = 256ull << 20;  // 64 collective calls per process

  BenchReport report("abl_persistent_groups", argc, argv);
  header("Ablation: persistent subgroups",
         "IOR, 64 collective calls per process (P=256)");
  const auto base = workloads::run_ior(config, nprocs, baseline_spec(), true);
  row("Cray (ext2ph)", base);
  report.add("cray", nprocs, base);
  for (int groups : {8, 32}) {
    auto persistent = parcoll_spec(groups);
    const auto kept = workloads::run_ior(config, nprocs, persistent, true);
    row("ParColl-" + std::to_string(groups) + " persistent", kept);
    report.add("parcoll-" + std::to_string(groups) + "/persistent", nprocs,
               kept);
    auto per_call = parcoll_spec(groups);
    per_call.persistent_groups = false;
    const auto fresh = workloads::run_ior(config, nprocs, per_call, true);
    row("ParColl-" + std::to_string(groups) + " per-call", fresh);
    report.add("parcoll-" + std::to_string(groups) + "/per-call", nprocs,
               fresh);
  }
  footnote("per-call partitioning re-couples all groups on every call and");
  footnote("loses most of the drift benefit");
  return 0;
}
