// Rank-to-node topology.
//
// The Cray XT places multiple MPI processes on each physical node (dual-core
// compute PEs in the paper). ParColl's aggregator-distribution rules are
// expressed in terms of physical nodes (paper Fig. 5), so the simulator
// needs an explicit rank->node mapping supporting the two common schemes:
//   block : N0(P0,P1) N1(P2,P3) ...
//   cyclic: N0(P0,P4) N1(P1,P5) ...
#pragma once

#include <stdexcept>
#include <vector>

namespace parcoll::machine {

enum class Mapping { Block, Cyclic };

class Topology {
 public:
  Topology() = default;
  Topology(int nranks, int cores_per_node, Mapping mapping = Mapping::Block);

  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] int cores_per_node() const { return cores_per_node_; }
  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  [[nodiscard]] Mapping mapping() const { return mapping_; }

  /// Physical node hosting `rank`.
  [[nodiscard]] int node_of(int rank) const;

  /// Ranks hosted on `node`, in increasing rank order.
  [[nodiscard]] std::vector<int> ranks_on_node(int node) const;

 private:
  int nranks_ = 0;
  int cores_per_node_ = 1;
  int num_nodes_ = 0;
  Mapping mapping_ = Mapping::Block;
};

}  // namespace parcoll::machine
