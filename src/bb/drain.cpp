#include "bb/drain.hpp"

#include <utility>

#include "bb/staging.hpp"
#include "fs/integrity.hpp"
#include "fs/lustre.hpp"
#include "mpi/trace.hpp"
#include "obs/metrics.hpp"

namespace parcoll::bb {

void DrainScheduler::on_stage(int node) {
  StagingStore::NodeArena& arena =
      store_.arenas_[static_cast<std::size_t>(node)];
  const BbConfig& config = store_.config_;
  switch (config.policy) {
    case DrainPolicy::Immediate:
      kick(node);
      break;
    case DrainPolicy::Watermark:
      if (arena.used >= config.hi_bytes()) {
        kick(node);
      }
      break;
    case DrainPolicy::Deadline:
      arm_deadline(node, store_.world_.engine().now() + config.drain_deadline);
      break;
    case DrainPolicy::Arbitrate:
      // Start the fiber now — it parks while the foreground is busy — and
      // back it with the deadline so parked data cannot wait unboundedly.
      kick(node);
      arm_deadline(node, store_.world_.engine().now() + config.drain_deadline);
      break;
  }
}

void DrainScheduler::kick(int node) {
  StagingStore::NodeArena& arena =
      store_.arenas_[static_cast<std::size_t>(node)];
  if (arena.drainer_active || arena.queue.empty()) {
    return;
  }
  arena.drainer_active = true;
  store_.world_.engine().spawn([this, node] { drain_loop(node); });
}

void DrainScheduler::kick_all() {
  for (std::size_t node = 0; node < store_.arenas_.size(); ++node) {
    kick(static_cast<int>(node));
  }
}

void DrainScheduler::poke() { arbitration_.notify_all(store_.world_.engine()); }

void DrainScheduler::arm_deadline(int node, double at) {
  StagingStore::NodeArena& arena =
      store_.arenas_[static_cast<std::size_t>(node)];
  if (arena.timer_armed) {
    return;  // coalesced: the pending timer covers this segment's deadline
  }
  arena.timer_armed = true;
  store_.world_.engine().post(at, [this, node] {
    StagingStore::NodeArena& fired =
        store_.arenas_[static_cast<std::size_t>(node)];
    fired.timer_armed = false;
    if (!fired.queue.empty()) {
      fired.overdue = true;
      kick(node);
      poke();
    }
  });
}

void DrainScheduler::drain_loop(int node) {
  StagingStore::NodeArena& arena =
      store_.arenas_[static_cast<std::size_t>(node)];
  sim::Engine& engine = store_.world_.engine();
  const BbConfig& config = store_.config_;
  while (!arena.queue.empty()) {
    // Policy gates — all overridden while a flush waits or the arena is
    // overdue, so neither durability nor deadline depends on the policy.
    if (store_.flush_waiters_ == 0 && !arena.overdue) {
      if (config.policy == DrainPolicy::Watermark &&
          arena.used <= config.lo_bytes()) {
        break;  // drained down to the low watermark; stop the burst
      }
      if (config.policy == DrainPolicy::Arbitrate && store_.foreground_ > 0 &&
          arena.used < config.hi_bytes()) {
        arbitration_.wait(engine, "bb drain arbitration");
        continue;  // re-evaluate everything after the wake
      }
    }
    write_segment(node);
    store_.drained_.notify_all(engine);
  }
  arena.drainer_active = false;
  if (arena.queue.empty()) {
    arena.overdue = false;
  }
}

void DrainScheduler::write_segment(int node) {
  StagingStore::NodeArena& arena =
      store_.arenas_[static_cast<std::size_t>(node)];
  mpi::World& world = store_.world_;
  sim::Engine& engine = world.engine();

  StagingStore::StagedSegment seg = std::move(arena.queue.front());
  arena.queue.pop_front();
  arena.in_flight = seg.extents;
  arena.in_flight_bytes = seg.bytes;

  // Synthetic fs client id: the node's drain agent, distinct from every
  // rank so per-rank fault counters (snapshot-and-diff around collective
  // calls) never see interleaved drain activity.
  const int client = world.nranks() + node;
  const auto stream = static_cast<std::uint64_t>(engine.current());

  mpi::Tracer* tracer = world.tracer();
  obs::SpanId span = obs::kNoSpan;
  const double begin = engine.now();
  if (tracer != nullptr) {
    span = tracer->spans().open(stream, seg.client, obs::SpanKind::Drain,
                                "drain", begin);
  }
  // Pre-drain integrity audit: a segment that decayed while resident is
  // healed from the checksum replica (Repair) or reported for collective
  // agreement (Detect) before its bytes go durable. Only records fully
  // inside the segment are checkable here; straddlers are caught by the
  // store-side passes (read-verify, scrub, close sweep).
  if (auto* integ = world.integrity()) {
    double seconds = 0.0;
    if (!seg.data.empty()) {
      seconds = integ->verify_buffer(seg.client, store_.fs_id_, seg.extents,
                                     seg.data.data());
    } else if (seg.corrupted) {
      // Phantom arenas keep no bytes; account the detection by draw.
      fault::FaultCounters& mine = world.fault_state().of(seg.client);
      ++mine.corrupt_detected;
      if (integ->config().level == fs::IntegrityLevel::Repair) {
        ++mine.corrupt_repaired;
      } else {
        integ->record_error(store_.fs_id_, seg.extents.front().offset,
                            seg.extents.front().length);
      }
    }
    if (seconds > 0) {
      engine.sleep(seconds);
      store_.drain_time_
          .seconds[static_cast<std::size_t>(mpi::TimeCat::Integrity)] +=
          seconds;
    }
  }
  const fault::FaultCounters before = world.fault_state().of(client);
  const fs::IoResult result =
      world.fs().write(client, store_.fs_id_, seg.extents,
                       seg.data.empty() ? nullptr : seg.data.data());
  const fault::FaultCounters after = world.fault_state().of(client);
  const double end = engine.now();

  store_.drain_time_.seconds[static_cast<std::size_t>(mpi::TimeCat::Drain)] +=
      end - begin - result.faulted_seconds;
  store_.drain_time_
      .seconds[static_cast<std::size_t>(mpi::TimeCat::Faulted)] +=
      result.faulted_seconds;
  store_.counters_.drain_retries += after.retries - before.retries;
  store_.counters_.drain_failovers += after.failovers - before.failovers;
  ++store_.counters_.drained_segments;
  store_.counters_.drained_bytes += seg.bytes;
  if (tracer != nullptr) {
    tracer->record(stream, seg.client, mpi::TimeCat::Drain, begin, end);
    tracer->spans().close(stream, span, end);
  }
  if (auto* metrics = world.metrics()) {
    ++metrics->counter("bb.drains");
    metrics->counter("bb.drained_bytes") += seg.bytes;
    metrics->counter("bb.drain.retries") += after.retries - before.retries;
    metrics->counter("bb.drain.failovers") +=
        after.failovers - before.failovers;
    metrics->quantile("bb.drain_seconds").observe(end - begin);
  }

  arena.used -= seg.bytes;
  arena.in_flight.clear();
  arena.in_flight_bytes = 0;
}

}  // namespace parcoll::bb
