// Simulated-time telemetry: periodic sampling of model state into
// bounded-memory ring series.
//
// A TimeSeriesSampler holds named probes (plain `double()` callbacks
// registered by the World and the model layers) and is ticked from an
// engine timer every `interval` seconds of *virtual* time. Each tick
// appends one value per probe, so all series stay aligned with one shared
// time axis. Memory is bounded: past `max_samples` ticks the sampler
// decimates (keeps every other retained sample and doubles its stride), so
// a run of any length keeps whole-run coverage at halving resolution —
// deterministically, since decimation depends only on the tick count.
//
// Two probe kinds:
//  - Sample: the probe value is recorded as-is (a level: queue depth,
//    occupancy, cumulative seconds).
//  - Rate: the probe returns a cumulative counter; the exporter converts
//    adjacent samples into a per-second rate (events/s, utilization).
//
// Sampling never sleeps and never advances the clock. With the sampler off
// (the default) nothing is scheduled, so runs are bit-identical to
// pre-telemetry builds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace parcoll::obs {

class JsonValue;

/// Plain-data snapshot of a sampler: the shared time axis plus one value
/// row per series. This is what RunResult carries and the timeline
/// exporter serializes; it has no callbacks and no engine references.
struct TimeSeries {
  struct Series {
    std::string name;
    bool rate = false;  // values are cumulative; export as deltas / dt
    std::vector<double> values;  // aligned with `times_s`
  };

  double interval_s = 0.0;   // configured base sampling interval
  std::uint64_t stride = 1;  // decimation stride, in base intervals
  std::vector<double> times_s;
  std::vector<Series> series;

  /// Versioned "parcoll-timeline" document. Rate series are exported as
  /// per-second rates over each recorded step (first element 0).
  [[nodiscard]] JsonValue to_json() const;

  /// The series named exactly `name`, or null.
  [[nodiscard]] const Series* find(const std::string& name) const;
};

class TimeSeriesSampler {
 public:
  using ProbeId = std::size_t;

  /// `interval` is the virtual-time spacing of ticks (> 0); `max_samples`
  /// caps retained samples per series before decimation kicks in.
  explicit TimeSeriesSampler(double interval, std::size_t max_samples = 4096);

  /// Register a probe. Probes registered after sampling started get zero
  /// backfill for the ticks they missed. Registration order is the export
  /// order, so deterministic setup yields a deterministic timeline.
  ProbeId add_probe(std::string name, std::function<double()> probe,
                    bool rate = false);

  /// Detach the probe's callback (its recorded history is kept; later
  /// ticks repeat the last recorded value). Safe to call from model-object
  /// destructors during World teardown.
  void remove_probe(ProbeId id);

  /// Record one tick at virtual time `now`. Called from the engine timer;
  /// reads probes, never sleeps.
  void sample(double now);

  [[nodiscard]] double interval() const { return interval_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

  /// Deep-copy snapshot of everything recorded so far.
  [[nodiscard]] std::shared_ptr<TimeSeries> snapshot() const;

 private:
  struct ProbeEntry {
    std::string name;
    std::function<double()> probe;  // null once removed
    bool rate = false;
    std::vector<double> values;
  };

  double interval_;
  std::size_t max_samples_;
  std::uint64_t ticks_ = 0;    // ticks seen (recorded or skipped)
  std::uint64_t stride_ = 1;   // record every stride-th tick
  std::vector<double> times_;
  std::vector<ProbeEntry> probes_;
};

/// `parcoll_top`-style text report: one line per recorded sample listing
/// engine throughput, the `top_n` busiest OSTs by queue depth, the busiest
/// rank by time accrued over the step, and burst-buffer occupancy. Series
/// the run did not record are simply omitted from the line.
[[nodiscard]] std::string top_report(const TimeSeries& series, int top_n = 3);

}  // namespace parcoll::obs
