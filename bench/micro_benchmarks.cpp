// Microbenchmarks (google-benchmark) for the library's hot paths: datatype
// flattening, pack/unpack, file-view mapping, segment clipping, the DES
// engine, collective rendezvous, and the OST model. These measure the
// simulator's own real-time costs (not virtual time) — they bound how much
// wall clock the figure benches burn per simulated operation.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "dtype/datatype.hpp"
#include "dtype/pack.hpp"
#include "fs/ost.hpp"
#include "mpi/collectives.hpp"
#include "mpi/runtime.hpp"
#include "mpiio/view.hpp"
#include "sim/engine.hpp"
#include "core/intermediate_view.hpp"
#include "fs/lustre.hpp"
#include "workloads/btio.hpp"
#include "workloads/tileio.hpp"

namespace {

using namespace parcoll;

void BM_SubarrayFlatten(benchmark::State& state) {
  const auto rows = state.range(0);
  const std::int64_t sizes[2] = {rows * 4, 1024};
  const std::int64_t subsizes[2] = {rows, 256};
  const std::int64_t starts[2] = {rows, 512};
  for (auto _ : state) {
    auto type = dtype::Datatype::subarray(sizes, subsizes, starts,
                                          dtype::Datatype::bytes(8));
    benchmark::DoNotOptimize(type.segments().data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_SubarrayFlatten)->Arg(64)->Arg(768);

void BM_BtioFiletype(benchmark::State& state) {
  const workloads::BtIOConfig config;
  const int nranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto type = config.filetype(0, nranks);
    benchmark::DoNotOptimize(type.segments().data());
  }
}
BENCHMARK(BM_BtioFiletype)->Arg(256)->Arg(1024);

void BM_Pack(benchmark::State& state) {
  const auto bytes = state.range(0);
  const dtype::Datatype type =
      dtype::Datatype::vec(bytes / 64, 1, 2, dtype::Datatype::bytes(64));
  std::vector<std::byte> memory(static_cast<std::size_t>(type.extent()));
  std::vector<std::byte> stream(static_cast<std::size_t>(bytes));
  for (auto _ : state) {
    dtype::pack(memory.data(), type, 1, stream.data());
    benchmark::DoNotOptimize(stream.data());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_Pack)->Arg(1 << 12)->Arg(1 << 20);

void BM_ViewMap(benchmark::State& state) {
  const int nranks = 512;
  const auto config = workloads::TileIOConfig::paper(nranks);
  const mpiio::FileView view(0, config.elem_size, config.filetype(7, nranks));
  for (auto _ : state) {
    auto extents = view.map(0, config.rank_bytes());
    benchmark::DoNotOptimize(extents.data());
  }
}
BENCHMARK(BM_ViewMap);

void BM_SegmentClip(benchmark::State& state) {
  std::vector<dtype::Segment> segs;
  for (int i = 0; i < 1000; ++i) {
    segs.push_back(dtype::Segment{i * 100, 50});
  }
  for (auto _ : state) {
    auto clipped = dtype::clip(segs, 25'000, 75'000);
    benchmark::DoNotOptimize(clipped.data());
  }
}
BENCHMARK(BM_SegmentClip);

void BM_EngineSleepWake(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < nprocs; ++i) {
      engine.spawn([&engine] {
        for (int k = 0; k < 10; ++k) {
          engine.sleep(1e-6);
        }
      });
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * nprocs * 10);
}
BENCHMARK(BM_EngineSleepWake)->Arg(64)->Arg(1024);

void BM_CollectiveRound(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::World world(machine::MachineModel::jaguar(nprocs));
    world.run([&](mpi::Rank& self) {
      std::vector<std::uint32_t> sizes(
          static_cast<std::size_t>(self.size()), 1);
      for (int round = 0; round < 4; ++round) {
        mpi::alltoall(self, self.comm_world(), sizes);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_CollectiveRound)->Arg(64)->Arg(512);

void BM_OstServe(benchmark::State& state) {
  machine::StorageParams params;
  fs::OstModel ost(0, params);
  std::uint64_t pos = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ost.serve(0.0, 0, static_cast<int>(pos % 7), pos, pos + 4096, 4096,
                  true));
    pos += 4096;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OstServe);

void BM_IntermediateTranslate(benchmark::State& state) {
  // Translation of a window through a many-member intermediate map.
  std::vector<core::MemberSegments> members;
  std::uint64_t inter = 0;
  for (int m = 0; m < 64; ++m) {
    core::MemberSegments member;
    member.inter_start = inter;
    for (int k = 0; k < 32; ++k) {
      member.extents.push_back(
          fs::Extent{static_cast<std::uint64_t>((k * 64 + m)) * 4096, 1024});
      inter += 1024;
    }
    members.push_back(std::move(member));
  }
  const core::IntermediateMap map(std::move(members));
  for (auto _ : state) {
    auto physical = map.translate(fs::Extent{123456, 1 << 20});
    benchmark::DoNotOptimize(physical.data());
  }
}
BENCHMARK(BM_IntermediateTranslate);

void BM_LustreCoalescedWrite(benchmark::State& state) {
  // Client-side cost of a scattered write (coalescing + reservations).
  const int pieces = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine;
    machine::StorageParams params;
    fs::LustreSim lustre(engine, params, fs::StoreMode::Phantom);
    state.ResumeTiming();
    engine.spawn([&] {
      const int id = lustre.open("bench");
      std::vector<fs::Extent> extents;
      extents.reserve(static_cast<std::size_t>(pieces));
      for (int i = 0; i < pieces; ++i) {
        extents.push_back(
            fs::Extent{static_cast<std::uint64_t>(i) * 8192, 4096});
      }
      lustre.write(0, id, extents, nullptr);
    });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * pieces);
}
BENCHMARK(BM_LustreCoalescedWrite)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
