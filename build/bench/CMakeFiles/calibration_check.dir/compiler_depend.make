# Empty compiler generated dependencies file for calibration_check.
# This may be replaced when dependencies are built.
