// Two-level collective I/O: NodeComm structure, hierarchical collective
// equivalence, and the bit-identity guarantees of the intra-node
// aggregation stage (off — or structurally inapplicable — must be
// indistinguishable from the historical single-level protocol).
#include <gtest/gtest.h>

#include <vector>

#include "core/parcoll.hpp"
#include "machine/machine_model.hpp"
#include "mpi/collectives.hpp"
#include "mpi/runtime.hpp"
#include "mpiio/hints.hpp"
#include "node/hier_coll.hpp"
#include "node/nodecomm.hpp"
#include "node/options.hpp"
#include "workloads/btio.hpp"
#include "workloads/ior.hpp"
#include "workloads/tileio.hpp"

namespace parcoll {
namespace {

using machine::Mapping;

mpi::World make_world(int nranks, Mapping mapping = Mapping::Block,
                      int cores_per_node = 2) {
  return mpi::World(machine::MachineModel::jaguar(nranks, mapping,
                                                  cores_per_node));
}

node::NodeComm node_comm_of(mpi::Rank& self,
                            node::LeaderPolicy policy = node::LeaderPolicy::Lowest) {
  return node::make_node_comm(self, self.comm_world(),
                              self.world().model().topology, policy);
}

TEST(NodeComm, BlockMappingStructure) {
  auto world = make_world(8, Mapping::Block, 2);
  std::vector<node::NodeComm> ncs(8);
  world.run([&](mpi::Rank& self) {
    ncs[static_cast<std::size_t>(self.rank())] = node_comm_of(self);
  });
  for (int r = 0; r < 8; ++r) {
    const auto& nc = ncs[static_cast<std::size_t>(r)];
    EXPECT_TRUE(nc.multi);
    EXPECT_EQ(nc.num_nodes(), 4);
    EXPECT_EQ(nc.leaders, (std::vector<int>{0, 2, 4, 6}));
    EXPECT_EQ(nc.node_members[1], (std::vector<int>{2, 3}));
    EXPECT_EQ(nc.node_index_of[5], 2);
    EXPECT_EQ(nc.my_parent_local(), r);
    EXPECT_EQ(nc.my_node_index, r / 2);
    EXPECT_EQ(nc.i_lead(), r % 2 == 0);
    EXPECT_EQ(nc.is_leader(r), r % 2 == 0);
    // node_comm holds my node's members; leader_comm one rank per node.
    EXPECT_EQ(nc.node_comm.members(),
              (std::vector<int>{r / 2 * 2, r / 2 * 2 + 1}));
    EXPECT_EQ(nc.leader_comm.members(), (std::vector<int>{0, 2, 4, 6}));
  }
}

TEST(NodeComm, CyclicMappingStructure) {
  auto world = make_world(8, Mapping::Cyclic, 2);
  std::vector<node::NodeComm> ncs(8);
  world.run([&](mpi::Rank& self) {
    ncs[static_cast<std::size_t>(self.rank())] = node_comm_of(self);
  });
  // node_of(r) = r % 4: N0(0,4) N1(1,5) N2(2,6) N3(3,7).
  const auto& nc = ncs[5];
  EXPECT_EQ(nc.num_nodes(), 4);
  EXPECT_EQ(nc.leaders, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(nc.node_members[1], (std::vector<int>{1, 5}));
  EXPECT_EQ(nc.node_members[3], (std::vector<int>{3, 7}));
  EXPECT_EQ(nc.my_node_index, 1);
  EXPECT_FALSE(nc.i_lead());
  EXPECT_EQ(nc.node_comm.members(), (std::vector<int>{1, 5}));
}

TEST(NodeComm, SpreadPolicyRotatesLeadersAcrossNodeLocals) {
  auto world = make_world(8, Mapping::Block, 2);
  std::vector<int> leader_of(8, -1);
  world.run([&](mpi::Rank& self) {
    const auto nc = node_comm_of(self, node::LeaderPolicy::Spread);
    leader_of[static_cast<std::size_t>(self.rank())] =
        nc.leaders[static_cast<std::size_t>(nc.my_node_index)];
  });
  // Node n elects members[n % node_size]: 0, 3, 4, 7 — the leader role
  // rotates across core slots instead of always hitting core 0.
  EXPECT_EQ(leader_of, (std::vector<int>{0, 0, 3, 3, 4, 4, 7, 7}));
}

TEST(NodeComm, UnevenTailLeavesSingleRankNode) {
  auto world = make_world(7, Mapping::Block, 2);
  std::vector<node::NodeComm> ncs(7);
  world.run([&](mpi::Rank& self) {
    ncs[static_cast<std::size_t>(self.rank())] = node_comm_of(self);
  });
  const auto& nc = ncs[6];
  EXPECT_EQ(nc.num_nodes(), 4);
  EXPECT_EQ(nc.node_members[3], (std::vector<int>{6}));
  EXPECT_TRUE(nc.i_lead());
  EXPECT_EQ(nc.node_comm.size(), 1);
  EXPECT_TRUE(nc.multi);  // other nodes still host pairs
}

TEST(NodeComm, ApplicabilityFollowsCohabitation) {
  {
    auto world = make_world(4, Mapping::Block, 1);
    world.run([&](mpi::Rank& self) {
      const auto& topo = self.world().model().topology;
      EXPECT_FALSE(node::two_level_applicable(topo, self.comm_world()));
      // On/Auto degenerate at one core per node; Off always declines.
      for (auto mode : {node::IntranodeMode::Off, node::IntranodeMode::On,
                        node::IntranodeMode::Auto}) {
        EXPECT_FALSE(node::two_level_active(mode, topo, self.comm_world()));
      }
      const auto nc = node_comm_of(self);
      EXPECT_FALSE(nc.multi);
    });
  }
  {
    auto world = make_world(8, Mapping::Block, 2);
    world.run([&](mpi::Rank& self) {
      const auto& topo = self.world().model().topology;
      EXPECT_TRUE(node::two_level_applicable(topo, self.comm_world()));
      EXPECT_FALSE(node::two_level_active(node::IntranodeMode::Off, topo,
                                          self.comm_world()));
      EXPECT_TRUE(node::two_level_active(node::IntranodeMode::Auto, topo,
                                         self.comm_world()));
      // A subgroup with at most one member per node has nothing to merge,
      // even though the machine is multi-core.
      const mpi::Comm spread_sub(0x5u, {0, 2, 4});
      EXPECT_FALSE(node::two_level_applicable(topo, spread_sub));
      // A subgroup keeping node pairs together stays applicable, and its
      // NodeComm speaks parent-local ranks.
      const mpi::Comm paired_sub(0x6u, {4, 5, 6, 7});
      EXPECT_TRUE(node::two_level_applicable(topo, paired_sub));
    });
  }
}

TEST(NodeComm, SubCommunicatorUsesParentLocalRanks) {
  auto world = make_world(8, Mapping::Block, 2);
  world.run([&](mpi::Rank& self) {
    if (self.rank() < 4) return;  // only the subgroup builds the NodeComm
    const mpi::Comm sub(0x7u, {4, 5, 6, 7});
    const auto nc = node::make_node_comm(self, sub,
                                         self.world().model().topology,
                                         node::LeaderPolicy::Lowest);
    EXPECT_EQ(nc.num_nodes(), 2);
    EXPECT_EQ(nc.leaders, (std::vector<int>{0, 2}));  // parent locals
    EXPECT_EQ(nc.node_members[0], (std::vector<int>{0, 1}));
    EXPECT_EQ(nc.node_members[1], (std::vector<int>{2, 3}));
    EXPECT_EQ(nc.my_parent_local(), self.rank() - 4);
    EXPECT_EQ(nc.i_lead(), self.rank() == 4 || self.rank() == 6);
  });
}

TEST(NodeComm, ToLeaderLocalsMapsAggregatorRosters) {
  auto world = make_world(8, Mapping::Block, 2);
  world.run([&](mpi::Rank& self) {
    const auto nc = node_comm_of(self);
    // Hosts of {0,1,2,5} are nodes {0,0,1,2} -> leader locals {0,1,2}.
    EXPECT_EQ(nc.to_leader_locals({0, 1, 2, 5}), (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(nc.to_leader_locals({7}), (std::vector<int>{3}));
    // Output is sorted and deduplicated regardless of input order.
    EXPECT_EQ(nc.to_leader_locals({5, 2, 4}), (std::vector<int>{1, 2}));
  });
}

void expect_hier_collectives_match_flat(Mapping mapping, int cores_per_node) {
  const int P = 8;
  auto world = make_world(P, mapping, cores_per_node);
  world.run([&](mpi::Rank& self) {
    const auto nc = node_comm_of(self);
    const int r = self.rank();

    const auto gathered = node::hier_allgather(self, nc, r * 10 + 1);
    ASSERT_EQ(gathered.size(), static_cast<std::size_t>(P));
    for (int j = 0; j < P; ++j) {
      EXPECT_EQ(gathered[static_cast<std::size_t>(j)], j * 10 + 1);
    }

    EXPECT_EQ(node::hier_allreduce_max(self, nc, r % 5), 4);
    EXPECT_EQ(node::hier_allreduce_sum(self, nc, r), P * (P - 1) / 2);

    std::vector<int> send(static_cast<std::size_t>(P));
    for (int j = 0; j < P; ++j) {
      send[static_cast<std::size_t>(j)] = r * 100 + j;
    }
    const auto recv = node::hier_alltoall(self, nc, send);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(P));
    for (int j = 0; j < P; ++j) {
      EXPECT_EQ(recv[static_cast<std::size_t>(j)], j * 100 + r);
    }

    node::hier_barrier(self, nc);
  });
}

TEST(HierColl, MatchesFlatResultsBlockMapping) {
  expect_hier_collectives_match_flat(Mapping::Block, 2);
}

TEST(HierColl, MatchesFlatResultsCyclicMapping) {
  expect_hier_collectives_match_flat(Mapping::Cyclic, 2);
}

TEST(HierColl, MatchesFlatResultsWideNodes) {
  expect_hier_collectives_match_flat(Mapping::Block, 4);
}

TEST(HierColl, DegeneratesOnSingleCoreNodes) {
  expect_hier_collectives_match_flat(Mapping::Block, 1);
}

TEST(IntranodeHints, RoundTripThroughInfoInterface) {
  mpiio::Hints hints;
  EXPECT_EQ(hints.get("cb_intranode"), "disable");
  EXPECT_EQ(hints.get("cb_intranode_leader"), "lowest");
  hints.set("cb_intranode", "enable");
  EXPECT_EQ(hints.cb_intranode, node::IntranodeMode::On);
  hints.set("cb_intranode", "automatic");
  EXPECT_EQ(hints.cb_intranode, node::IntranodeMode::Auto);
  EXPECT_EQ(hints.get("cb_intranode"), "automatic");
  hints.set("cb_intranode_leader", "spread");
  EXPECT_EQ(hints.cb_intranode_leader, node::LeaderPolicy::Spread);
  EXPECT_THROW(hints.set("cb_intranode", "sideways"), std::invalid_argument);
  EXPECT_THROW(hints.set("cb_intranode_leader", "tallest"),
               std::invalid_argument);
}

workloads::RunSpec byte_true_spec(workloads::Impl impl, int groups,
                                  node::IntranodeMode intranode,
                                  int cores_per_node = 2) {
  workloads::RunSpec spec;
  spec.impl = impl;
  spec.parcoll_groups = groups;
  spec.min_group_size = 2;
  spec.byte_true = true;
  spec.cb_buffer_size = 4096;
  spec.cores_per_node = cores_per_node;
  spec.intranode = intranode;
  return spec;
}

workloads::TileIOConfig small_tileio() {
  workloads::TileIOConfig config;
  config.tiles_x = 4;
  config.tile_w = 8;
  config.tile_h = 4;
  config.elem_size = 8;
  return config;
}

TEST(IntranodeEquivalence, TileIoWriteBitIdenticalAndCounted) {
  const auto config = small_tileio();
  const auto off = workloads::run_tileio(
      config, 8,
      byte_true_spec(workloads::Impl::Ext2ph, 0, node::IntranodeMode::Off),
      true);
  const auto on = workloads::run_tileio(
      config, 8,
      byte_true_spec(workloads::Impl::Ext2ph, 0, node::IntranodeMode::On),
      true);
  EXPECT_TRUE(off.verified);
  EXPECT_TRUE(on.verified);  // byte-identical file contents either way
  EXPECT_EQ(on.bytes, off.bytes);
  EXPECT_EQ(on.stats.bytes_written, off.stats.bytes_written);
  EXPECT_EQ(on.stats.collective_writes, off.stats.collective_writes);
  EXPECT_EQ(off.stats.intranode_calls, 0u);
  EXPECT_GT(on.stats.intranode_calls, 0u);
  EXPECT_GT(on.stats.intranode_bytes, 0u);
}

TEST(IntranodeEquivalence, TileIoReadRoundTrips) {
  const auto config = small_tileio();
  const auto result = workloads::run_tileio(
      config, 8,
      byte_true_spec(workloads::Impl::Ext2ph, 0, node::IntranodeMode::On),
      false);
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.stats.intranode_calls, 0u);
}

TEST(IntranodeEquivalence, ComposesWithParCollSubgroups) {
  workloads::BtIOConfig config;
  config.grid = 12;
  config.nsteps = 2;
  const auto off = workloads::run_btio(
      config, 9,
      byte_true_spec(workloads::Impl::ParColl, 2, node::IntranodeMode::Off),
      true);
  const auto on = workloads::run_btio(
      config, 9,
      byte_true_spec(workloads::Impl::ParColl, 2, node::IntranodeMode::On),
      true);
  EXPECT_TRUE(off.verified);
  EXPECT_TRUE(on.verified);
  EXPECT_EQ(on.stats.bytes_written, off.stats.bytes_written);
  EXPECT_GT(on.stats.parcoll_calls, 0u);
  EXPECT_GT(on.stats.intranode_calls, 0u);
}

TEST(IntranodeEquivalence, IorVerifiesUnderCyclicMapping) {
  workloads::IorConfig config;
  config.block_size = 32 << 10;
  config.xfer_size = 8 << 10;
  auto spec =
      byte_true_spec(workloads::Impl::Ext2ph, 0, node::IntranodeMode::On);
  spec.mapping = Mapping::Cyclic;
  const auto result = workloads::run_ior(config, 8, spec, true);
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.stats.intranode_calls, 0u);
}

TEST(IntranodeEquivalence, OffIsBitIdenticalToHistoricalRuns) {
  // Off must not change a single scheduling decision: identical virtual
  // elapsed time and identical profile, not merely identical bytes.
  const auto config = small_tileio();
  workloads::RunSpec historical;
  historical.impl = workloads::Impl::Ext2ph;
  historical.byte_true = true;
  historical.cb_buffer_size = 4096;
  auto off = historical;
  off.intranode = node::IntranodeMode::Off;
  const auto a = workloads::run_tileio(config, 8, historical, true);
  const auto b = workloads::run_tileio(config, 8, off, true);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.sum.total(), b.sum.total());
  EXPECT_EQ(a.stats.exchange_cycles, b.stats.exchange_cycles);
}

TEST(IntranodeEquivalence, SingleCoreNodesNeverActivate) {
  // On a one-process-per-node machine the activation rule degenerates, so
  // enabling the hint is a structural no-op: same timing, zero counters.
  const auto config = small_tileio();
  const auto off = workloads::run_tileio(
      config, 8,
      byte_true_spec(workloads::Impl::Ext2ph, 0, node::IntranodeMode::Off, 1),
      true);
  const auto on = workloads::run_tileio(
      config, 8,
      byte_true_spec(workloads::Impl::Ext2ph, 0, node::IntranodeMode::On, 1),
      true);
  EXPECT_TRUE(on.verified);
  EXPECT_EQ(on.elapsed, off.elapsed);
  EXPECT_EQ(on.sum.total(), off.sum.total());
  EXPECT_EQ(on.stats.intranode_calls, 0u);
  EXPECT_EQ(on.stats.intranode_bytes, 0u);
}

}  // namespace
}  // namespace parcoll
