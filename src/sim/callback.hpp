// Small-buffer callback for engine events.
//
// std::function is the wrong shape for the event hot path: it is copyable
// (so every capture must be copyable), its small-buffer window is
// implementation-defined and narrow, and a miss costs a heap allocation per
// posted event. SmallCallback is move-only with a 64-byte inline buffer —
// sized for the engine's real posting sites (a this-pointer plus a handful
// of scalars) — and falls back to the heap only for oversized captures.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace parcoll::sim {

class SmallCallback {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  SmallCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallback>>>
  SmallCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(fn));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallCallback(SmallCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, kill src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) {
        Fn* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) {
        *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
      },
      [](void* p) { delete *static_cast<Fn**>(p); },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace parcoll::sim
