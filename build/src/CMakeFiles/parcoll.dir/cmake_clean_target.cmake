file(REMOVE_RECURSE
  "libparcoll.a"
)
