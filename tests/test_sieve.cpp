// Data sieving and the byte-range lock service: correctness of the locked
// read-modify-write under interleaved concurrent writers, window planning,
// and the serialization behaviour.
#include <gtest/gtest.h>

#include "fs/range_lock.hpp"
#include "mpi/collectives.hpp"
#include "mpiio/sieve.hpp"
#include "workloads/flashio.hpp"
#include "workloads/pattern.hpp"

namespace parcoll::mpiio {
namespace {

using dtype::Datatype;

TEST(RangeLock, NonOverlappingLocksProceedConcurrently) {
  sim::Engine engine;
  fs::RangeLockManager locks(engine, 1e-4, 1e-5);
  int holders = 0;
  int max_holders = 0;
  for (int i = 0; i < 4; ++i) {
    engine.spawn([&, i] {
      const fs::Extent range{static_cast<std::uint64_t>(i) * 100, 100};
      locks.lock(i, 0, range);
      ++holders;
      max_holders = std::max(max_holders, holders);
      engine.sleep(1.0);
      --holders;
      locks.unlock(i, 0, range);
    });
  }
  engine.run();
  EXPECT_EQ(max_holders, 4);  // all held simultaneously
}

TEST(RangeLock, OverlappingLocksSerialize) {
  sim::Engine engine;
  fs::RangeLockManager locks(engine, 1e-4, 1e-5);
  int holders = 0;
  int max_holders = 0;
  for (int i = 0; i < 4; ++i) {
    engine.spawn([&, i] {
      const fs::Extent range{static_cast<std::uint64_t>(i) * 50, 100};
      locks.lock(i, 0, range);  // each overlaps its neighbour
      ++holders;
      max_holders = std::max(max_holders, holders);
      engine.sleep(0.5);
      --holders;
      locks.unlock(i, 0, range);
    });
  }
  engine.run();
  // Each lock overlaps its neighbours, so at most the two non-adjacent
  // ranges ({0,2} or {1,3}) can be held together, in two serialized waves.
  EXPECT_LE(max_holders, 2);
  EXPECT_GE(engine.now(), 1.0);
}

TEST(RangeLock, DifferentFilesDoNotConflict) {
  sim::Engine engine;
  fs::RangeLockManager locks(engine, 1e-4, 1e-5);
  int max_holders = 0;
  int holders = 0;
  for (int i = 0; i < 2; ++i) {
    engine.spawn([&, i] {
      locks.lock(i, /*file=*/i, fs::Extent{0, 100});
      ++holders;
      max_holders = std::max(max_holders, holders);
      engine.sleep(1.0);
      --holders;
      locks.unlock(i, i, fs::Extent{0, 100});
    });
  }
  engine.run();
  EXPECT_EQ(max_holders, 2);
}

TEST(RangeLock, UnlockOfUnheldThrows) {
  sim::Engine engine;
  fs::RangeLockManager locks(engine, 1e-4, 1e-5);
  engine.spawn([&] {
    EXPECT_THROW(locks.unlock(0, 0, fs::Extent{0, 1}), std::logic_error);
  });
  engine.run();
}

TEST(RangeLock, ServerSerializesOperations) {
  // 100 non-conflicting lock/unlock pairs through a 1 ms server take at
  // least 200 ms of virtual time even though no locks ever conflict.
  sim::Engine engine;
  fs::RangeLockManager locks(engine, 0.0, 1e-3);
  for (int i = 0; i < 100; ++i) {
    engine.spawn([&, i] {
      const fs::Extent range{static_cast<std::uint64_t>(i) * 10, 10};
      locks.lock(i, 0, range);
      locks.unlock(i, 0, range);
    });
  }
  engine.run();
  EXPECT_GE(engine.now(), 0.2);
}

TEST(Sieve, ContiguousWriteBypassesSieve) {
  mpi::World world(machine::MachineModel::jaguar(1));
  bool ok = false;
  world.run([&](mpi::Rank& self) {
    FileHandle file(self, self.comm_world(), "sv0.dat");
    std::vector<std::byte> data(4096);
    const fs::Extent extent{0, 4096};
    workloads::fill_stream(data.data(), std::span(&extent, 1), 9);
    sieve_write_at(file, 0, data.data(), 1, Datatype::bytes(4096));
    auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
    ok = store && workloads::verify_store(*store, file.fs_id(),
                                          std::span(&extent, 1), 9);
    file.close();
  });
  EXPECT_TRUE(ok);
}

TEST(Sieve, StridedWritePreservesUntouchedBytes) {
  mpi::World world(machine::MachineModel::jaguar(1));
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    auto& fs = self.world().fs();
    FileHandle file(self, self.comm_world(), "sv1.dat");
    // Pre-fill [0, 4096) with pattern A.
    {
      std::vector<std::byte> base(4096);
      const fs::Extent whole{0, 4096};
      workloads::fill_stream(base.data(), std::span(&whole, 1), 1);
      fs.write(0, file.fs_id(), std::span(&whole, 1), base.data());
    }
    // Sieved strided write of pattern B into every other 256B slot.
    const Datatype ftype = Datatype::resized(Datatype::bytes(256), 0, 512);
    file.set_view(0, 256, ftype);
    const auto extents = file.view().map(0, 2048);
    std::vector<std::byte> data(2048);
    workloads::fill_stream(data.data(), extents, 2);
    sieve_write_at(file, 0, data.data(), 1, Datatype::bytes(2048),
                   /*sieve_buffer_size=*/1024);
    auto* store = dynamic_cast<fs::MemoryStore*>(&fs.store());
    ASSERT_NE(store, nullptr);
    const auto& bytes = store->contents(file.fs_id());
    for (std::uint64_t pos = 0; pos < 4096; ++pos) {
      const bool written = (pos / 256) % 2 == 0 && pos < 3840;
      const std::byte expected = workloads::pattern_byte(written ? 2 : 1, pos);
      if (bytes[pos] != expected) {
        ok = false;
        break;
      }
    }
    file.close();
  });
  EXPECT_TRUE(ok);
}

TEST(Sieve, InterleavedConcurrentWritersStayConsistent) {
  // Four ranks write interleaved 128B slots through overlapping sieve
  // windows; the range locks must keep every byte correct.
  mpi::World world(machine::MachineModel::jaguar(4));
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    FileHandle file(self, self.comm_world(), "sv2.dat");
    const Datatype slot = Datatype::resized(Datatype::bytes(128), 0, 512);
    file.set_view(static_cast<std::uint64_t>(self.rank()) * 128, 128, slot);
    const auto extents = file.view().map(0, 16 * 128);
    std::vector<std::byte> data(16 * 128);
    workloads::fill_stream(data.data(), extents, 3);
    sieve_write_at(file, 0, data.data(), 1, Datatype::bytes(16 * 128),
                   /*sieve_buffer_size=*/1024);
    mpi::barrier(self, self.comm_world());
    auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
    ok = ok && store &&
         workloads::verify_store(*store, file.fs_id(), extents, 3);
    file.close();
  });
  EXPECT_TRUE(ok);
}

TEST(Sieve, ReadExtractsStridedPieces) {
  mpi::World world(machine::MachineModel::jaguar(1));
  bool ok = false;
  world.run([&](mpi::Rank& self) {
    auto& fs = self.world().fs();
    FileHandle file(self, self.comm_world(), "sv3.dat");
    const fs::Extent whole{0, 8192};
    std::vector<std::byte> base(8192);
    workloads::fill_stream(base.data(), std::span(&whole, 1), 4);
    fs.write(0, file.fs_id(), std::span(&whole, 1), base.data());

    const Datatype ftype = Datatype::resized(Datatype::bytes(64), 0, 256);
    file.set_view(32, 64, ftype);
    const auto extents = file.view().map(0, 1024);
    std::vector<std::byte> out(1024);
    sieve_read_at(file, 0, out.data(), 1, Datatype::bytes(1024),
                  /*sieve_buffer_size=*/512);
    ok = workloads::check_stream(out.data(), extents, 4);
    file.close();
  });
  EXPECT_TRUE(ok);
}

TEST(Sieve, SievedWriteCostsMoreThanCollective) {
  // The point of Fig. 11's "w/o Coll" series: interleaved sieving is far
  // slower than aggregation for the same bytes.
  const auto run = [](workloads::Impl impl) {
    workloads::FlashConfig config;
    config.nxb = 8;
    config.nguard = 1;
    config.nblocks = 4;
    config.nvars = 2;
    workloads::RunSpec spec;
    spec.impl = impl;
    spec.byte_true = false;
    return workloads::run_flashio(config, 32, spec, true).elapsed;
  };
  EXPECT_GT(run(workloads::Impl::Sieving), run(workloads::Impl::Ext2ph));
}

}  // namespace
}  // namespace parcoll::mpiio
