// FlatType: a datatype's segments with stream-offset prefix sums.
//
// The k-th byte of a packed stream of a datatype lands at a displacement
// found by locating the segment whose prefix covers k. This is the lookup
// structure used by file views (tiling) and the intermediate-view mapping.
#pragma once

#include <cstdint>
#include <vector>

#include "dtype/datatype.hpp"
#include "dtype/segments.hpp"

namespace parcoll::dtype {

struct FlatType {
  std::vector<Segment> segs;          // coalesced, type-map order
  std::vector<std::uint64_t> prefix;  // prefix[i] = stream offset of segs[i]
  std::uint64_t size = 0;             // total data bytes
  std::int64_t extent = 0;

  static FlatType from(const Datatype& type);

  /// Index of the segment containing stream offset `pos` (< size).
  [[nodiscard]] std::size_t segment_at(std::uint64_t pos) const;

  /// Map the stream range [begin, end) (within one instance of the type)
  /// to displacement segments, in stream order.
  [[nodiscard]] std::vector<Segment> stream_range(std::uint64_t begin,
                                                  std::uint64_t end) const;
};

}  // namespace parcoll::dtype
