// ParColl end-to-end: partitioned collective writes/reads must be
// byte-identical to the plain protocol across access patterns and group
// counts. ParColl instruments the internals only — it must not alter
// MPI-IO semantics (paper §4).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "core/parcoll.hpp"
#include "core/subgroup.hpp"
#include "mpi/collectives.hpp"
#include "mpiio/file.hpp"
#include "workloads/pattern.hpp"

namespace parcoll::core {
namespace {

constexpr std::uint64_t kSalt = 0xAB;

enum class Pattern { Serial, Tiled, Scattered };

const char* to_string(Pattern pattern) {
  switch (pattern) {
    case Pattern::Serial:
      return "Serial";
    case Pattern::Tiled:
      return "Tiled";
    case Pattern::Scattered:
      return "Scattered";
  }
  return "?";
}

/// Set a file view producing the requested pattern for `rank`; returns the
/// bytes this rank moves per call.
std::uint64_t apply_pattern(mpiio::FileHandle& file, Pattern pattern, int rank,
                            int nranks) {
  using dtype::Datatype;
  switch (pattern) {
    case Pattern::Serial: {
      // Rank r owns a contiguous 4 KiB block.
      file.set_view(static_cast<std::uint64_t>(rank) * 4096, 1,
                    Datatype::bytes(4096));
      return 4096;
    }
    case Pattern::Tiled: {
      // 2-D tiles: rows of `per_row` tiles of 4x(64B) rows.
      const int per_row = 4;
      const int rows = nranks / per_row;
      const std::int64_t sizes[2] = {4 * rows, 64 * per_row};
      const std::int64_t subsizes[2] = {4, 64};
      const std::int64_t starts[2] = {(rank / per_row) * 4,
                                      (rank % per_row) * 64};
      file.set_view(0, 1,
                    Datatype::subarray(sizes, subsizes, starts,
                                       Datatype::bytes(1)));
      return 4 * 64;
    }
    case Pattern::Scattered: {
      // Rank r owns every nranks-th 128B slot: spans the whole file.
      const Datatype slot = Datatype::resized(
          Datatype::bytes(128), 0, static_cast<std::uint64_t>(nranks) * 128);
      file.set_view(static_cast<std::uint64_t>(rank) * 128, 1, slot);
      return 16 * 128;  // 16 slots
    }
  }
  return 0;
}

struct PatternRun {
  bool write_verified = true;
  bool read_verified = true;
  mpiio::FileStats stats;
  CollectiveOutcome outcome;
};

PatternRun run_pattern(Pattern pattern, int nranks, int groups,
                       bool view_switch = true) {
  mpi::World world(machine::MachineModel::jaguar(nranks));
  mpiio::Hints hints;
  hints.parcoll_num_groups = groups;
  hints.parcoll_min_group_size = 2;
  hints.parcoll_view_switch = view_switch;
  hints.cb_buffer_size = 1024;  // small buffer: several cycles per call
  PatternRun result;

  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "parcoll.dat", hints);
    const std::uint64_t bytes =
        apply_pattern(file, pattern, self.rank(), nranks);
    const dtype::Datatype memtype = dtype::Datatype::bytes(bytes);
    const auto extents = file.view().map(0, bytes);

    std::vector<std::byte> buffer(bytes);
    workloads::fill_buffer_for_extents(buffer.data(), memtype, 1, extents,
                                       kSalt);
    const auto outcome = write_at_all(file, 0, buffer.data(), 1, memtype);
    if (self.rank() == 0) result.outcome = outcome;
    mpi::barrier(self, self.comm_world());

    auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
    result.write_verified =
        result.write_verified && store != nullptr &&
        workloads::verify_store(*store, file.fs_id(), extents, kSalt);

    std::vector<std::byte> back(bytes);
    read_at_all(file, 0, back.data(), 1, memtype);
    result.read_verified =
        result.read_verified &&
        workloads::check_buffer_for_extents(back.data(), memtype, 1, extents,
                                            kSalt);
    mpi::barrier(self, self.comm_world());  // all deltas recorded
    if (self.rank() == 0) result.stats = file.stats();
    file.close();
  });
  return result;
}

class ParcollPatternTest
    : public ::testing::TestWithParam<std::tuple<Pattern, int, int>> {};

TEST_P(ParcollPatternTest, WriteAndReadAreByteCorrect) {
  const auto [pattern, nranks, groups] = GetParam();
  const PatternRun run = run_pattern(pattern, nranks, groups);
  EXPECT_TRUE(run.write_verified);
  EXPECT_TRUE(run.read_verified);
}

INSTANTIATE_TEST_SUITE_P(
    PatternsByGroups, ParcollPatternTest,
    ::testing::Combine(::testing::Values(Pattern::Serial, Pattern::Tiled,
                                         Pattern::Scattered),
                       ::testing::Values(8, 16),
                       ::testing::Values(0, 2, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<Pattern, int, int>>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_P" +
             std::to_string(std::get<1>(info.param)) + "_G" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Parcoll, SerialPatternUsesDirectMode) {
  const PatternRun run = run_pattern(Pattern::Serial, 8, 4);
  EXPECT_EQ(run.outcome.mode, PartitionMode::Direct);
  EXPECT_EQ(run.outcome.num_groups, 4);
  EXPECT_EQ(run.stats.view_switches, 0u);
  EXPECT_EQ(run.stats.parcoll_calls, 2u);  // write + read
}

TEST(Parcoll, ScatteredPatternSwitchesViews) {
  const PatternRun run = run_pattern(Pattern::Scattered, 8, 4);
  EXPECT_EQ(run.outcome.mode, PartitionMode::Intermediate);
  EXPECT_EQ(run.stats.view_switches, 2u);  // write + read
}

TEST(Parcoll, ScatteredWithoutViewSwitchFallsBackToSingleGroup) {
  const PatternRun run =
      run_pattern(Pattern::Scattered, 8, 4, /*view_switch=*/false);
  EXPECT_TRUE(run.write_verified);
  EXPECT_TRUE(run.read_verified);
  EXPECT_EQ(run.outcome.mode, PartitionMode::SingleGroup);
}

TEST(Parcoll, BaselineWithoutGroupsIsSingleGroup) {
  const PatternRun run = run_pattern(Pattern::Tiled, 8, 0);
  EXPECT_EQ(run.outcome.mode, PartitionMode::SingleGroup);
  EXPECT_EQ(run.stats.parcoll_calls, 0u);
}

TEST(Parcoll, TiledMoreGroupsThanRowsSwitchesViews) {
  // 16 ranks in 4 rows: 8 groups exceed the 3 clean splits.
  const PatternRun run = run_pattern(Pattern::Tiled, 16, 8);
  EXPECT_TRUE(run.write_verified);
  EXPECT_EQ(run.outcome.mode, PartitionMode::Intermediate);
}

TEST(Parcoll, DecisionIntrospectionMatchesRun) {
  mpi::World world(machine::MachineModel::jaguar(8));
  mpiio::Hints hints;
  hints.parcoll_num_groups = 4;
  hints.parcoll_min_group_size = 2;
  ParcollDecision decision;
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "decide.dat", hints);
    apply_pattern(file, Pattern::Serial, self.rank(), 8);
    const auto local = plan_decision(file, 0, 1, dtype::Datatype::bytes(4096));
    if (self.rank() == 0) decision = local;
    file.close();
  });
  EXPECT_EQ(decision.mode, PartitionMode::Direct);
  EXPECT_EQ(decision.num_groups, 4);
  ASSERT_EQ(decision.aggregators_per_group.size(), 4u);
  for (const auto& aggregators : decision.aggregators_per_group) {
    EXPECT_FALSE(aggregators.empty());  // requirement (a)
  }
  const std::string text = decision.describe();
  EXPECT_NE(text.find("mode=direct"), std::string::npos);
  EXPECT_NE(text.find("groups=4"), std::string::npos);
}

TEST(Parcoll, SubgroupFormationAssignsSubcommAndAggregators) {
  mpi::World world(machine::MachineModel::jaguar(8));
  std::vector<int> sub_sizes(8, 0);
  std::vector<int> my_groups(8, -1);
  world.run([&](mpi::Rank& self) {
    std::vector<RankAccess> accesses;
    for (int r = 0; r < 8; ++r) {
      accesses.push_back(RankAccess{static_cast<std::uint64_t>(r) * 100,
                                    static_cast<std::uint64_t>(r + 1) * 100,
                                    100});
    }
    mpiio::Hints hints;
    hints.parcoll_num_groups = 2;
    hints.parcoll_min_group_size = 2;
    const auto plan = form_subgroups(
        self, self.comm_world(),
        std::make_shared<const std::vector<RankAccess>>(accesses), hints);
    sub_sizes[self.rank()] = plan.subcomm.size();
    my_groups[self.rank()] = plan.my_group;
    EXPECT_FALSE(plan.sub_aggregators.empty());
    // The subgroup communicator contains exactly my group's members.
    for (int local = 0; local < plan.subcomm.size(); ++local) {
      const int world_rank = plan.subcomm.world_rank(local);
      EXPECT_EQ(plan.fa().group_of_rank[static_cast<std::size_t>(world_rank)],
                plan.my_group);
    }
  });
  EXPECT_EQ(sub_sizes, std::vector<int>(8, 4));
  EXPECT_EQ(my_groups, (std::vector<int>{0, 0, 0, 0, 1, 1, 1, 1}));
}

TEST(Parcoll, UniformResultAcrossGroupCountsMatchesBaselineBytes) {
  // The file contents must be identical whatever G is.
  const auto contents_for = [](int groups) {
    mpi::World world(machine::MachineModel::jaguar(8));
    mpiio::Hints hints;
    hints.parcoll_num_groups = groups;
    hints.parcoll_min_group_size = 2;
    std::vector<std::byte> snapshot;
    world.run([&](mpi::Rank& self) {
      mpiio::FileHandle file(self, self.comm_world(), "uniform.dat", hints);
      apply_pattern(file, Pattern::Tiled, self.rank(), 8);
      const std::uint64_t bytes = 4 * 64;
      std::vector<std::byte> buffer(bytes);
      const auto extents = file.view().map(0, bytes);
      workloads::fill_buffer_for_extents(buffer.data(),
                                         dtype::Datatype::bytes(bytes), 1,
                                         extents, kSalt);
      write_at_all(file, 0, buffer.data(), 1, dtype::Datatype::bytes(bytes));
      mpi::barrier(self, self.comm_world());
      if (self.rank() == 0) {
        auto* store =
            dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
        snapshot = store->contents(file.fs_id());
      }
      file.close();
    });
    return snapshot;
  };
  const auto baseline = contents_for(0);
  EXPECT_EQ(contents_for(2), baseline);
  EXPECT_EQ(contents_for(4), baseline);
}

TEST(Parcoll, PartitionedRunSynchronizesLessThanBaseline) {
  // The point of the paper: same bytes, less Sync time.
  const auto sync_of = [](int groups) {
    mpi::World world(machine::MachineModel::jaguar(32));
    mpiio::Hints hints;
    hints.parcoll_num_groups = groups;
    hints.parcoll_min_group_size = 4;
    hints.cb_buffer_size = 512;  // many cycles -> many syncs
    world.run([&](mpi::Rank& self) {
      mpiio::FileHandle file(self, self.comm_world(), "sync.dat", hints);
      file.set_view(static_cast<std::uint64_t>(self.rank()) * 8192, 1,
                    dtype::Datatype::bytes(8192));
      std::vector<std::byte> buffer(8192);
      write_at_all(file, 0, buffer.data(), 1, dtype::Datatype::bytes(8192));
      file.close();
    });
    double sync = 0;
    for (const auto& breakdown : world.rank_times()) {
      sync += breakdown[mpi::TimeCat::Sync];
    }
    return sync;
  };
  EXPECT_LT(sync_of(8), sync_of(0));
}

}  // namespace
}  // namespace parcoll::core
