// End-to-end data integrity: the checksum pipeline, scrub-and-repair, and
// collective error agreement.
//
// Layers under test:
//  - crc32c itself (known vectors, incremental chaining).
//  - IntegrityManager in isolation: block registration, store verification
//    at Detect vs Repair, partial-overwrite record splitting, buffer
//    healing, and the pending-error word the collective agreement reduces.
//  - The planted-bug contrast that gates this feature: an injected silent
//    corruption must change the stored bytes when checksums are off, and
//    must never survive when integrity=repair is on.
//  - Retry exhaustion: with every retransmit corrupted, recovery runs out
//    deterministically and every rank of the communicator throws the
//    identical CollectiveIoError carrying the failing extent.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "core/parcoll.hpp"
#include "fault/fault.hpp"
#include "fs/integrity.hpp"
#include "fs/object_store.hpp"
#include "mpi/collectives.hpp"
#include "mpiio/file.hpp"
#include "workloads/pattern.hpp"

namespace parcoll {
namespace {

constexpr std::uint64_t kSalt = 0xC4;

std::vector<std::byte> bytes_of(const std::string& text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

std::vector<std::byte> pattern_bytes(std::size_t n, unsigned salt = 1) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((i * 131 + salt) & 0xFF);
  }
  return out;
}

// ---------------------------------------------------------------------------
// CRC-32C
// ---------------------------------------------------------------------------

TEST(Crc32c, MatchesKnownVectors) {
  // The iSCSI / RFC 3720 check value.
  const auto check = bytes_of("123456789");
  EXPECT_EQ(fs::crc32c(check.data(), check.size()), 0xE3069283u);
  EXPECT_EQ(fs::crc32c(nullptr, 0), 0u);
  // 32 zero bytes, another standard vector.
  const std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(fs::crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32c, ChainsIncrementally) {
  const auto data = pattern_bytes(1000);
  const std::uint32_t whole = fs::crc32c(data.data(), data.size());
  for (const std::size_t split : {std::size_t{0}, std::size_t{1},
                                  std::size_t{500}, std::size_t{999}}) {
    const std::uint32_t head = fs::crc32c(data.data(), split);
    EXPECT_EQ(fs::crc32c(data.data() + split, data.size() - split, head),
              whole)
        << "split at " << split;
  }
}

TEST(IntegrityLevel, ParsesAndRendersAllLevels) {
  using fs::IntegrityLevel;
  EXPECT_EQ(fs::parse_integrity_level("off"), IntegrityLevel::Off);
  EXPECT_EQ(fs::parse_integrity_level("disable"), IntegrityLevel::Off);
  EXPECT_EQ(fs::parse_integrity_level("detect"), IntegrityLevel::Detect);
  EXPECT_EQ(fs::parse_integrity_level("repair"), IntegrityLevel::Repair);
  EXPECT_EQ(fs::parse_integrity_level("enable"), IntegrityLevel::Repair);
  EXPECT_THROW(static_cast<void>(fs::parse_integrity_level("paranoid")),
               std::invalid_argument);
  for (const auto level : {IntegrityLevel::Off, IntegrityLevel::Detect,
                           IntegrityLevel::Repair}) {
    EXPECT_EQ(fs::parse_integrity_level(fs::to_string(level)), level);
  }
}

// ---------------------------------------------------------------------------
// IntegrityManager unit tests
// ---------------------------------------------------------------------------

fs::IntegrityConfig tiny_config(fs::IntegrityLevel level,
                                std::uint64_t block = 64) {
  fs::IntegrityConfig config;
  config.level = level;
  config.block = block;  // small blocks so a few hundred bytes split
  return config;
}

TEST(IntegrityManager, CleanRoundTripDetectsNothing) {
  fault::FaultState faults;
  fs::IntegrityManager manager(tiny_config(fs::IntegrityLevel::Detect),
                               &faults);
  fs::MemoryStore store;
  const auto data = pattern_bytes(300);
  const fs::Extent extents[] = {{0, 300}};
  const double cost = manager.register_write(0, 1, extents, data.data());
  EXPECT_GT(cost, 0.0);
  store.write(1, 0, data.data(), data.size());
  manager.mark_landed(1, 0, data.size());  // the store commit reports in
  manager.verify_ranges(0, 1, extents, store);
  manager.scrub_all(0, store, /*by_scrubber=*/false);
  EXPECT_FALSE(manager.has_error());
  EXPECT_EQ(manager.counters().detected, 0u);
  // 300 bytes at block=64 -> 5 blocks.
  EXPECT_EQ(manager.counters().blocks, 5u);
  EXPECT_EQ(manager.counters().bytes_checksummed, 300u);
}

TEST(IntegrityManager, DetectRecordsUnrecoverableError) {
  fault::FaultState faults;
  fs::IntegrityManager manager(tiny_config(fs::IntegrityLevel::Detect),
                               &faults);
  fs::MemoryStore store;
  const auto data = pattern_bytes(128);
  const fs::Extent extents[] = {{0, 128}};
  manager.register_write(0, 1, extents, data.data());
  auto tampered = data;
  tampered[70] ^= std::byte{0x10};  // second block
  store.write(1, 0, tampered.data(), tampered.size());

  manager.verify_ranges(0, 1, extents, store);
  EXPECT_TRUE(manager.has_error());
  EXPECT_EQ(manager.counters().detected, 1u);
  EXPECT_EQ(manager.counters().repaired, 0u);
  EXPECT_EQ(manager.counters().errors, 1u);
  EXPECT_EQ(faults.of(0).corrupt_detected, 1u);

  // The pending word decodes back to the failing extent.
  const std::uint64_t word = manager.pending_word();
  ASSERT_NE(word, 0u);
  const fs::CollectiveIoError error = manager.error_of(word);
  EXPECT_EQ(error.fs_id, 1);
  EXPECT_EQ(error.offset, 64u);
  EXPECT_EQ(error.length, 64u);
  // The corrupted store byte was left untouched at Detect level.
  EXPECT_EQ(store.contents(1)[70], tampered[70]);
}

TEST(IntegrityManager, RepairHealsStoreFromReplica) {
  fault::FaultState faults;
  fs::IntegrityManager manager(tiny_config(fs::IntegrityLevel::Repair),
                               &faults);
  fs::MemoryStore store;
  const auto data = pattern_bytes(128);
  const fs::Extent extents[] = {{0, 128}};
  manager.register_write(3, 1, extents, data.data());
  auto tampered = data;
  tampered[5] ^= std::byte{0x80};
  tampered[100] ^= std::byte{0x01};  // both blocks corrupted
  store.write(1, 0, tampered.data(), tampered.size());
  manager.mark_landed(1, 0, tampered.size());

  manager.verify_ranges(3, 1, extents, store);
  EXPECT_FALSE(manager.has_error());
  EXPECT_EQ(manager.counters().detected, 2u);
  EXPECT_EQ(manager.counters().repaired, 2u);
  EXPECT_EQ(faults.of(3).corrupt_repaired, 2u);
  std::vector<std::byte> back(data.size());
  store.read(1, 0, back.data(), back.size());
  EXPECT_EQ(back, data);

  // A scrubber pass over the healed store finds nothing further, and
  // scrubber-attributed heals are counted separately.
  manager.scrub_all(3, store, /*by_scrubber=*/true);
  EXPECT_EQ(manager.counters().scrub_repairs, 0u);
  const std::byte recorrupted = data[30] ^ std::byte{0x40};
  store.write(1, 30, &recorrupted, 1);  // re-corrupt one byte
  manager.scrub_all(3, store, /*by_scrubber=*/true);
  EXPECT_EQ(manager.counters().scrub_repairs, 1u);
  store.read(1, 0, back.data(), back.size());
  EXPECT_EQ(back, data);
}

TEST(IntegrityManager, PartialOverwriteSplitsRecords) {
  fault::FaultState faults;
  fs::IntegrityManager manager(tiny_config(fs::IntegrityLevel::Repair),
                               &faults);
  fs::MemoryStore store;
  const auto first = pattern_bytes(256, 1);
  const fs::Extent whole[] = {{0, 256}};
  manager.register_write(0, 1, whole, first.data());
  store.write(1, 0, first.data(), first.size());
  manager.mark_landed(1, 0, first.size());

  // Overwrite an unaligned middle range: the straddled records must be
  // split so the surviving head/tail still verify and the new range
  // carries fresh checksums.
  const auto second = pattern_bytes(100, 2);
  const fs::Extent middle[] = {{90, 100}};
  manager.register_write(0, 1, middle, second.data());
  store.write(1, 90, second.data(), second.size());
  manager.mark_landed(1, 90, second.size());

  manager.verify_ranges(0, 1, whole, store);
  manager.scrub_all(0, store, /*by_scrubber=*/false);
  EXPECT_FALSE(manager.has_error());
  EXPECT_EQ(manager.counters().detected, 0u);

  // Corruption in each region is still caught after the split.
  auto expected = first;
  std::memcpy(expected.data() + 90, second.data(), second.size());
  for (const std::uint64_t site : {std::uint64_t{10}, std::uint64_t{120},
                                   std::uint64_t{230}}) {
    std::byte flipped = expected[site];
    flipped ^= std::byte{0x40};
    store.write(1, site, &flipped, 1);
  }
  manager.scrub_all(0, store, /*by_scrubber=*/false);
  EXPECT_EQ(manager.counters().detected, 3u);
  EXPECT_EQ(manager.counters().repaired, 3u);
  std::vector<std::byte> back(expected.size());
  store.read(1, 0, back.data(), back.size());
  EXPECT_EQ(back, expected);
}

TEST(IntegrityManager, VerifyBufferHealsInPlace) {
  fault::FaultState faults;
  fs::IntegrityManager manager(tiny_config(fs::IntegrityLevel::Repair),
                               &faults);
  const auto data = pattern_bytes(128);
  const fs::Extent extents[] = {{4096, 128}};
  manager.register_write(0, 7, extents, data.data());

  auto staged = data;
  staged[64] ^= std::byte{0x08};
  manager.verify_buffer(0, 7, extents, staged.data());
  EXPECT_EQ(staged, data);  // healed in place from the replica
  EXPECT_EQ(manager.counters().detected, 1u);
  EXPECT_EQ(manager.counters().repaired, 1u);
}

TEST(IntegrityManager, PendingWordPicksOneErrorForAgreement) {
  fault::FaultState faults;
  fs::IntegrityManager manager(tiny_config(fs::IntegrityLevel::Detect),
                               &faults);
  EXPECT_EQ(manager.pending_word(), 0u);
  manager.record_error(2, 100, 64);
  manager.record_error(5, 7, 64);  // higher fs_id dominates the max-encode
  manager.record_error(5, 3, 64);
  const std::uint64_t word = manager.pending_word();
  const fs::CollectiveIoError error = manager.error_of(word);
  EXPECT_EQ(error.fs_id, 5);
  EXPECT_EQ(error.offset, 7u);
  // The word is what allreduce_max reduces: any rank holding a smaller
  // word decodes the winner identically.
  EXPECT_EQ(manager.error_of(word).fs_id, error.fs_id);
  EXPECT_EQ(std::string(error.what()).find("unrecoverable") !=
                std::string::npos,
            true);
}

TEST(IntegrityManager, HarvestReturnsDeltasOnly) {
  fault::FaultState faults;
  fs::IntegrityManager manager(tiny_config(fs::IntegrityLevel::Repair),
                               &faults);
  const auto data = pattern_bytes(64);
  const fs::Extent extents[] = {{0, 64}};
  manager.register_write(0, 1, extents, data.data());
  const fs::IntegrityCounters first = manager.harvest();
  EXPECT_EQ(first.blocks, 1u);
  const fs::IntegrityCounters second = manager.harvest();
  EXPECT_EQ(second.blocks, 0u);  // nothing new since the last harvest
  EXPECT_EQ(second.bytes_checksummed, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: collective writes under injected silent corruption
// ---------------------------------------------------------------------------

struct IntegrityRun {
  bool write_verified = false;
  bool read_verified = false;
  bool threw_collective_error = false;
  std::vector<fs::CollectiveIoError> errors;  // one per throwing rank
  fault::FaultCounters faults;
  mpiio::FileStats stats;
};

/// Serial pattern (rank r owns a contiguous 4 KiB block), one collective
/// write then one collective read, bytes verified against the store —
/// under a corruption plan and a chosen integrity level.
IntegrityRun run_corrupted(int nranks, const fault::FaultPlan& plan,
                           fs::IntegrityLevel level, int num_osts = 0) {
  machine::MachineModel model = machine::MachineModel::jaguar(nranks);
  if (num_osts > 0) {
    model.storage.num_osts = num_osts;
    model.storage.default_stripe_count =
        std::min(model.storage.default_stripe_count, num_osts);
  }
  mpi::World world(std::move(model));
  world.set_fault(plan);
  mpiio::Hints hints;
  hints.cb_buffer_size = 1024;
  hints.integrity.level = level;
  hints.integrity.block = 512;
  IntegrityRun result;
  result.write_verified = true;
  result.read_verified = true;
  result.errors.resize(static_cast<std::size_t>(nranks), {0, 0, 0});

  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "integ.dat", hints);
    const std::uint64_t bytes = 4096;
    file.set_view(static_cast<std::uint64_t>(self.rank()) * bytes, 1,
                  dtype::Datatype::bytes(bytes));
    const dtype::Datatype memtype = dtype::Datatype::bytes(bytes);
    const auto extents = file.view().map(0, bytes);
    std::vector<std::byte> buffer(bytes);
    workloads::fill_buffer_for_extents(buffer.data(), memtype, 1, extents,
                                       kSalt);
    try {
      core::write_at_all(file, 0, buffer.data(), 1, memtype);
      mpi::barrier(self, self.comm_world());

      auto* store =
          dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
      result.write_verified =
          result.write_verified && store != nullptr &&
          workloads::verify_store(*store, file.fs_id(), extents, kSalt);

      std::vector<std::byte> back(bytes);
      core::read_at_all(file, 0, back.data(), 1, memtype);
      result.read_verified =
          result.read_verified &&
          workloads::check_buffer_for_extents(back.data(), memtype, 1,
                                              extents, kSalt);
      mpi::barrier(self, self.comm_world());
      file.close();  // the close-time sweep harvests the integrity stats
      if (self.rank() == 0) result.stats = file.stats();
    } catch (const fs::CollectiveIoError& error) {
      // Every rank must land here with the identical agreed error; nobody
      // is left waiting in a collective.
      result.threw_collective_error = true;
      result.errors[static_cast<std::size_t>(self.rank())] = error;
    }
  });
  result.faults = world.fault_state().total();
  return result;
}

/// The planted-bug contrast: the identical corruption plan silently
/// corrupts the file with checksums off and never survives at repair.
TEST(IntegrityEndToEnd, CorruptionSlipsThroughOffAndNeverThroughRepair) {
  const fault::FaultPlan plan = fault::FaultPlan::parse(
      "seed=21;rpc-corrupt=0.5;timeout=0.002;backoff=0.001:0.004;"
      "max-retries=16");

  const IntegrityRun off = run_corrupted(8, plan, fs::IntegrityLevel::Off);
  EXPECT_FALSE(off.threw_collective_error);
  EXPECT_GT(off.faults.corrupt_injected, 0u);
  EXPECT_EQ(off.faults.corrupt_detected, 0u);  // nobody was looking
  EXPECT_FALSE(off.write_verified);  // the silent corruption landed

  const IntegrityRun repair =
      run_corrupted(8, plan, fs::IntegrityLevel::Repair);
  EXPECT_FALSE(repair.threw_collective_error);
  EXPECT_GT(repair.faults.corrupt_injected, 0u);
  EXPECT_GT(repair.faults.corrupt_detected, 0u);
  EXPECT_TRUE(repair.write_verified);  // every flip was caught and healed
  EXPECT_TRUE(repair.read_verified);
  // The file's close-time summary carries the pipeline's work.
  EXPECT_GT(repair.stats.integrity_blocks, 0u);
  EXPECT_GT(repair.stats.corrupt_detected, 0u);
  EXPECT_EQ(repair.stats.integrity_errors, 0u);
}

TEST(IntegrityEndToEnd, BbCorruptionIsHealedBeforeDrain) {
  const fault::FaultPlan plan =
      fault::FaultPlan::parse("seed=23;bb-corrupt=0.5");
  mpi::World world(machine::MachineModel::jaguar(8));
  world.set_fault(plan);
  mpiio::Hints hints;
  hints.cb_buffer_size = 1024;
  hints.integrity.level = fs::IntegrityLevel::Repair;
  hints.integrity.block = 512;
  hints.bb.enabled = true;
  bool verified = false;
  fault::FaultCounters faults;
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "bb.dat", hints);
    const std::uint64_t bytes = 4096;
    file.set_view(static_cast<std::uint64_t>(self.rank()) * bytes, 1,
                  dtype::Datatype::bytes(bytes));
    const dtype::Datatype memtype = dtype::Datatype::bytes(bytes);
    const auto extents = file.view().map(0, bytes);
    std::vector<std::byte> buffer(bytes);
    workloads::fill_buffer_for_extents(buffer.data(), memtype, 1, extents,
                                       kSalt);
    core::write_at_all(file, 0, buffer.data(), 1, memtype);
    file.close();  // drains everything durably
    if (self.rank() == 0) {
      auto* store =
          dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
      fs::Extent all{0, static_cast<std::uint64_t>(8) * bytes};
      verified = store != nullptr &&
                 workloads::verify_store(*store, file.fs_id(), {&all, 1},
                                         kSalt);
    }
  });
  faults = world.fault_state().total();
  EXPECT_GT(faults.corrupt_injected, 0u);
  EXPECT_GT(faults.corrupt_repaired, 0u);
  EXPECT_TRUE(verified);
}

// ---------------------------------------------------------------------------
// Retry exhaustion and collective error agreement
// ---------------------------------------------------------------------------

/// Every retransmit corrupted: recovery must exhaust deterministically and
/// every rank throws the identical agreed error carrying a failing extent.
TEST(IntegrityAgreement, ExhaustedRecoveryThrowsIdenticallyOnAllRanks) {
  const int nranks = 8;
  const fault::FaultPlan plan = fault::FaultPlan::parse(
      "seed=25;rpc-corrupt=1.0;timeout=0.002;backoff=0.001:0.004;"
      "max-retries=2");
  const IntegrityRun run =
      run_corrupted(nranks, plan, fs::IntegrityLevel::Detect);
  EXPECT_TRUE(run.threw_collective_error);
  EXPECT_GT(run.faults.corrupt_injected, 0u);
  EXPECT_GT(run.faults.retries, 0u);
  const fs::CollectiveIoError& agreed = run.errors[0];
  EXPECT_GT(agreed.length, 0u);
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(run.errors[static_cast<std::size_t>(r)].fs_id, agreed.fs_id)
        << "rank " << r;
    EXPECT_EQ(run.errors[static_cast<std::size_t>(r)].offset, agreed.offset)
        << "rank " << r;
    EXPECT_EQ(run.errors[static_cast<std::size_t>(r)].length, agreed.length)
        << "rank " << r;
  }
}

TEST(IntegrityAgreement, ZeroRetriesExhaustImmediately) {
  const fault::FaultPlan plan = fault::FaultPlan::parse(
      "seed=27;rpc-corrupt=1.0;timeout=0.002;backoff=0.001:0.004;"
      "max-retries=0");
  const IntegrityRun run =
      run_corrupted(8, plan, fs::IntegrityLevel::Detect);
  EXPECT_TRUE(run.threw_collective_error);
  // No retransmit budget: the first corrupt landing is final, so nothing
  // was ever resent.
  EXPECT_EQ(run.faults.retries, 0u);
  EXPECT_GT(run.faults.corrupt_detected, 0u);
}

TEST(IntegrityAgreement, BackoffCapSaturatesDuringRetransmits) {
  // backoff base == cap: every retransmit waits exactly timeout + cap, so
  // the faulted seconds are an exact multiple and the cap demonstrably
  // bounds the wait. Repair level: with fresh randomness per retransmit
  // (corrupt probability 0.5) the run still completes with clean bytes.
  const fault::FaultPlan plan = fault::FaultPlan::parse(
      "seed=29;rpc-corrupt=0.5;timeout=0.002;backoff=0.003:0.003;"
      "max-retries=24");
  const IntegrityRun run =
      run_corrupted(8, plan, fs::IntegrityLevel::Repair);
  EXPECT_FALSE(run.threw_collective_error);
  EXPECT_TRUE(run.write_verified);
  ASSERT_GT(run.faults.retries, 0u);
  const double per_wait = 0.002 + 0.003;
  const double waits = run.faults.faulted_seconds / per_wait;
  EXPECT_NEAR(waits, std::round(waits), 1e-6)
      << "faulted time is not a whole number of capped waits";
}

TEST(IntegrityAgreement, AllOstsDownStillRecoversAfterTheWindow) {
  // Every OST dark for a finite window while payloads also corrupt on the
  // wire: failover has nowhere to land until the window passes, then the
  // retransmit pipeline cleans everything up. The run must complete with
  // the clean bytes — integrity only ever surfaces *unrecoverable* loss.
  const fault::FaultPlan plan = fault::FaultPlan::parse(
      "seed=31;ost-outage=0:0:0.05;ost-outage=1:0:0.05;ost-outage=2:0:0.05;"
      "ost-outage=3:0:0.05;rpc-corrupt=0.25;timeout=0.002;"
      "backoff=0.001:0.004;max-retries=2");
  const IntegrityRun run =
      run_corrupted(8, plan, fs::IntegrityLevel::Repair, /*num_osts=*/4);
  EXPECT_FALSE(run.threw_collective_error);
  EXPECT_TRUE(run.write_verified);
  EXPECT_TRUE(run.read_verified);
  EXPECT_GT(run.faults.failovers, 0u);
  EXPECT_GT(run.faults.corrupt_injected, 0u);
}

/// Off-level runs are bit-identical to the pre-integrity path: no manager
/// is constructed and the time breakdown has no Integrity seconds.
TEST(IntegrityEndToEnd, DisabledLevelInstallsNothing) {
  mpi::World world(machine::MachineModel::jaguar(4));
  mpiio::Hints hints;  // integrity defaults to Off
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "plain.dat", hints);
    EXPECT_EQ(self.world().integrity(), nullptr);
    const std::uint64_t bytes = 1024;
    file.set_view(static_cast<std::uint64_t>(self.rank()) * bytes, 1,
                  dtype::Datatype::bytes(bytes));
    std::vector<std::byte> buffer(bytes, std::byte{0x5A});
    core::write_at_all(file, 0, buffer.data(), 1,
                       dtype::Datatype::bytes(bytes));
    file.close();
  });
  EXPECT_EQ(world.integrity(), nullptr);
  for (const mpi::TimeBreakdown& breakdown : world.rank_times()) {
    EXPECT_DOUBLE_EQ(
        breakdown.seconds[static_cast<std::size_t>(mpi::TimeCat::Integrity)],
        0.0);
  }
}

}  // namespace
}  // namespace parcoll
