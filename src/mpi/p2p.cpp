#include "mpi/p2p.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "mpi/runtime.hpp"

namespace parcoll::mpi {

namespace {
bool tag_matches(int posted_tag, int msg_tag) {
  return posted_tag == kAnyTag || posted_tag == msg_tag;
}
bool src_matches(int posted_src, int msg_src) {
  return posted_src == kAnySource || posted_src == msg_src;
}
}  // namespace

P2PEngine::P2PEngine(sim::Engine& engine, net::Network& network,
                     const machine::Topology& topology)
    : engine_(engine), network_(network), topology_(topology) {}

void P2PEngine::finish(sim::Engine& engine,
                       const std::shared_ptr<detail::ReqState>& state) {
  if (state->complete) {
    return;  // eager sends are already locally complete
  }
  state->complete = true;
  state->complete_time = engine.now();
  for (sim::ProcId pid : state->waiters) {
    engine.wake(pid);
  }
  state->waiters.clear();
}

void P2PEngine::complete_pair(const PendingSend& send,
                              const PendingRecv& recv) {
  const double delivered = network_.transfer(engine_.now(), send.src_node,
                                             recv.dst_node, send.bytes);
  if (send.bytes > recv.capacity) {
    throw std::runtime_error("P2P: message truncation (recv buffer too small)");
  }
  recv.state->transferred = send.bytes;
  recv.state->matched_source = send.src_local;
  recv.state->matched_tag = send.tag;
  auto send_state = send.state;
  auto recv_state = recv.state;
  auto data = send.data;
  void* buffer = recv.buffer;
  const std::uint64_t bytes = send.bytes;
  engine_.post(delivered, [this, send_state, recv_state, data, buffer, bytes] {
    if (data != nullptr && buffer != nullptr && bytes > 0) {
      std::memcpy(buffer, data->data(), bytes);
    }
    finish(engine_, send_state);
    finish(engine_, recv_state);
  });
}

Request P2PEngine::isend(Rank& self, const Comm& comm, int dst, int tag,
                         const void* data, std::uint64_t bytes, TimeCat cat) {
  if (dst < 0 || dst >= comm.size()) {
    throw std::out_of_range("isend: bad destination rank");
  }
  self.busy(cat, network_.params().cpu_msg_overhead);

  auto state = std::make_shared<detail::ReqState>();
  PendingSend send;
  send.src_local = comm.local_rank(self.rank());
  send.tag = tag;
  send.bytes = bytes;
  if (data != nullptr && bytes > 0) {
    const auto* begin = static_cast<const std::byte*>(data);
    send.data = std::make_shared<std::vector<std::byte>>(begin, begin + bytes);
  }
  send.src_node = self.node();
  send.state = state;
  if (send.src_local < 0) {
    throw std::logic_error("isend: sender is not a member of the communicator");
  }
  if (bytes <= network_.params().eager_threshold) {
    // Eager protocol: the payload is buffered (copied above), so the send
    // is locally complete; the wire transfer still happens at match time.
    state->complete = true;
    state->complete_time = engine_.now();
  }

  const Key key{comm.context_id(), comm.world_rank(dst)};
  auto posted_it = posted_.find(key);
  if (posted_it != posted_.end()) {
    auto& queue = posted_it->second;
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (src_matches(it->src_local, send.src_local) &&
          tag_matches(it->tag, send.tag)) {
        PendingRecv recv = std::move(*it);
        queue.erase(it);
        complete_pair(send, recv);
        return Request(state);
      }
    }
  }
  unexpected_[key].push_back(std::move(send));
  return Request(state);
}

Request P2PEngine::irecv(Rank& self, const Comm& comm, int src, int tag,
                         void* buffer, std::uint64_t capacity, TimeCat cat) {
  if (src != kAnySource && (src < 0 || src >= comm.size())) {
    throw std::out_of_range("irecv: bad source rank");
  }
  self.busy(cat, network_.params().cpu_msg_overhead);

  auto state = std::make_shared<detail::ReqState>();
  PendingRecv recv;
  recv.src_local = src;
  recv.tag = tag;
  recv.buffer = buffer;
  recv.capacity = capacity;
  recv.dst_node = self.node();
  recv.state = state;

  const Key key{comm.context_id(), self.rank()};
  auto unexpected_it = unexpected_.find(key);
  if (unexpected_it != unexpected_.end()) {
    auto& queue = unexpected_it->second;
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (src_matches(recv.src_local, it->src_local) &&
          tag_matches(recv.tag, it->tag)) {
        PendingSend send = std::move(*it);
        queue.erase(it);
        complete_pair(send, recv);
        return Request(state);
      }
    }
  }
  posted_[key].push_back(std::move(recv));
  return Request(state);
}

void P2PEngine::wait(Rank& self, Request& request, TimeCat cat) {
  if (!request.valid()) {
    throw std::logic_error("wait: invalid request");
  }
  if (request.state_->complete) {
    return;
  }
  const double blocked_at = engine_.now();
  request.state_->waiters.push_back(self.pid());
  engine_.suspend("p2p wait");
  self.times().add(cat, engine_.now() - blocked_at);
}

void P2PEngine::waitall(Rank& self, std::span<Request> requests, TimeCat cat) {
  for (Request& request : requests) {
    wait(self, request, cat);
  }
}

void P2PEngine::send(Rank& self, const Comm& comm, int dst, int tag,
                     const void* data, std::uint64_t bytes, TimeCat cat) {
  Request request = isend(self, comm, dst, tag, data, bytes, cat);
  wait(self, request, cat);
}

std::uint64_t P2PEngine::recv(Rank& self, const Comm& comm, int src, int tag,
                              void* buffer, std::uint64_t capacity,
                              TimeCat cat) {
  Request request = irecv(self, comm, src, tag, buffer, capacity, cat);
  wait(self, request, cat);
  return request.transferred();
}

}  // namespace parcoll::mpi
