# Empty dependencies file for tile_visualization.
# This may be replaced when dependencies are built.
