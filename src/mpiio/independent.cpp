#include "mpiio/independent.hpp"

#include "mpiio/ext2ph.hpp"

namespace parcoll::mpiio {

void posix_write_at(FileHandle& file, std::uint64_t offset, const void* buffer,
                    std::uint64_t count, const dtype::Datatype& memtype) {
  const auto before = file.time_snapshot();
  PreparedRequest request = file.prepare_write(offset, buffer, count, memtype);
  DirectTarget target(file.self().world().fs(), file.fs_id());
  std::uint64_t stream_pos = 0;
  for (const fs::Extent& extent : request.extents) {
    const std::byte* data =
        request.packed.empty() ? nullptr : request.packed.data() + stream_pos;
    target.write(file.self(), std::span(&extent, 1), data);
    stream_pos += extent.length;
  }
  FileStats delta;
  delta.time = FileHandle::time_delta(before, file.time_snapshot());
  delta.bytes_written = request.bytes;
  delta.independent_writes = 1;
  file.add_stats(delta);
}

void posix_read_at(FileHandle& file, std::uint64_t offset, void* buffer,
                   std::uint64_t count, const dtype::Datatype& memtype) {
  const auto before = file.time_snapshot();
  PreparedRequest request = file.prepare_read(offset, buffer, count, memtype);
  DirectTarget target(file.self().world().fs(), file.fs_id());
  std::uint64_t stream_pos = 0;
  for (const fs::Extent& extent : request.extents) {
    std::byte* out =
        request.packed.empty() ? nullptr : request.packed.data() + stream_pos;
    target.read(file.self(), std::span(&extent, 1), out);
    stream_pos += extent.length;
  }
  file.finish_read(request, buffer, count, memtype);
  FileStats delta;
  delta.time = FileHandle::time_delta(before, file.time_snapshot());
  delta.bytes_read = request.bytes;
  delta.independent_reads = 1;
  file.add_stats(delta);
}

}  // namespace parcoll::mpiio
