// Ablation — the group-size tradeoff (paper §4: "There is a tradeoff
// between synchronization cost and the I/O aggregation when choosing an
// optimal group size... we empirically evaluate the impact").
//
// Sweeps the subgroup count across three workloads at 256 processes. The
// sweet spot differs by access pattern — which is the paper's argument for
// leaving the optimal group size to per-application tuning.
#include "bench/common.hpp"
#include "workloads/flashio.hpp"
#include "workloads/ior.hpp"
#include "workloads/tileio.hpp"

int main(int argc, char** argv) {
  const bool smoke = parcoll::bench::smoke_requested(argc, argv);
  using namespace parcoll;
  using namespace parcoll::bench;

  BenchReport report("abl_group_size", argc, argv);
  const int nprocs = parcoll::bench::scaled(smoke, 256);
  header("Ablation: group size",
         "bandwidth (MiB/s) vs subgroup count, 256 processes");

  const auto tile_config = workloads::TileIOConfig::paper(nprocs);
  workloads::IorConfig ior_config;
  ior_config.block_size = 128ull << 20;  // scaled for simulation time
  workloads::FlashConfig flash_config;
  flash_config.nvars = 8;  // scaled

  std::printf("  %-10s %12s %12s %12s\n", "groups", "tile-io", "ior", "flash");
  const auto run_all = [&](const std::string& label,
                           const workloads::RunSpec& spec) {
    const auto tile = workloads::run_tileio(tile_config, nprocs, spec, true);
    const auto ior = workloads::run_ior(ior_config, nprocs, spec, true);
    const auto flash = workloads::run_flashio(flash_config, nprocs, spec, true);
    std::printf("%12.1f %12.1f %12.1f\n", tile.bandwidth_mib(),
                ior.bandwidth_mib(), flash.bandwidth_mib());
    report.add("tileio/" + label, nprocs, tile);
    report.add("ior/" + label, nprocs, ior);
    report.add("flash/" + label, nprocs, flash);
  };

  std::printf("  %-10s ", "baseline");
  run_all("baseline", baseline_spec());
  for (int groups : {2, 4, 8, 16, 32, 64, 128}) {
    if (groups > nprocs) continue;  // smoke runs shrink the sweep with P
    std::printf("  %-10d ", groups);
    run_all("groups=" + std::to_string(groups),
            parcoll_spec(groups, /*min_group_size=*/2));
  }
  footnote("over-partitioning eventually hurts every workload; the knee");
  footnote("depends on the access pattern (clean-split structure)");
  return 0;
}
