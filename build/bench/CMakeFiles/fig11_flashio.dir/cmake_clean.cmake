file(REMOVE_RECURSE
  "CMakeFiles/fig11_flashio.dir/fig11_flashio.cpp.o"
  "CMakeFiles/fig11_flashio.dir/fig11_flashio.cpp.o.d"
  "fig11_flashio"
  "fig11_flashio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_flashio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
