// Ablation — the intermediate file view (paper mechanism 3, Fig. 4c).
//
// With the view switch disabled, scattered patterns cannot be partitioned:
// ParColl degenerates to a single group (the plain protocol). BT-IO shows
// the mechanism is what makes partitioning possible at all for pattern
// (c); over-partitioned tile-io shows the cost side of the same mechanism.
#include "bench/common.hpp"
#include "workloads/btio.hpp"
#include "workloads/tileio.hpp"

int main(int argc, char** argv) {
  const bool smoke = parcoll::bench::smoke_requested(argc, argv);
  using namespace parcoll;
  using namespace parcoll::bench;

  BenchReport report("abl_intermediate_view", argc, argv);
  header("Ablation: intermediate file views", "view switch on vs off");

  {
    workloads::BtIOConfig config;
    config.nsteps = 2;
    const int nprocs = parcoll::bench::scaled_square(smoke, 256);
    auto spec = parcoll_spec(std::min(16, nprocs / 2), /*min_group_size=*/2);
    spec.cb_nodes = 16;
    std::printf("  BT-IO class C, 256 procs, ParColl-16:\n");
    const auto base = workloads::run_btio(config, nprocs, baseline_spec(), true);
    row("baseline (ext2ph)", base);
    report.add("btio/baseline", nprocs, base);
    spec.view_switch = true;
    const auto on = workloads::run_btio(config, nprocs, spec, true);
    row("view switch on", on);
    report.add("btio/view-on", nprocs, on);
    spec.view_switch = false;
    const auto off = workloads::run_btio(config, nprocs, spec, true);
    row("view switch off", off);
    report.add("btio/view-off", nprocs, off);
    std::printf("    (off -> %d group(s): partitioning impossible)\n",
                off.stats.last_num_groups);
  }

  {
    const int nprocs = parcoll::bench::scaled(smoke, 512);
    const auto config = workloads::TileIOConfig::paper(nprocs);
    std::printf("  MPI-Tile-IO, 512 procs, ParColl-128 (only 64 clean"
                " splits):\n");
    auto spec = parcoll_spec(std::min(128, nprocs / 2), /*min_group_size=*/2);
    spec.view_switch = true;
    const auto on = workloads::run_tileio(config, nprocs, spec, true);
    row("view switch on (interm.)", on);
    report.add("tileio/view-on", nprocs, on);
    spec.view_switch = false;
    const auto off = workloads::run_tileio(config, nprocs, spec, true);
    row("view switch off", off);
    report.add("tileio/view-off", nprocs, off);
    std::printf("    (off falls back to %d direct groups)\n",
                off.stats.last_num_groups);
  }
  footnote("the switch enables partitioning for pattern (c); forcing it");
  footnote("past the clean-split count trades aggregation for group count");
  return 0;
}
