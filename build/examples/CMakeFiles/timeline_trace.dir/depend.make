# Empty dependencies file for timeline_trace.
# This may be replaced when dependencies are built.
