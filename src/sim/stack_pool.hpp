// Fiber stack pool.
//
// Spawning one fiber per simulated rank used to allocate (and at 256 KiB,
// mmap) a fresh stack per process and free it at exit. At 100k ranks that
// is 100k mmap/munmap round trips and a cold page walk per fiber. The pool
// recycles the stacks of finished fibers keyed by size, so a run's steady
// state allocates only as many stacks as are ever live at once.
//
// Stacks are carved sequentially from large slabs instead of allocated one
// by one. Beyond saving the per-stack allocator round trip, the slabs are
// 2 MiB-aligned and marked MADV_HUGEPAGE: with tens of thousands of live
// fibers the working set is one or two touched pages per scattered stack,
// and the resulting dTLB miss per context switch is a measurable slice of
// the event loop. Huge-page-backed contiguous stacks cut the TLB footprint
// by ~512x. Slab memory is returned to the OS only when the pool dies
// (with the engine that owns it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <new>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#define PARCOLL_STACK_SLABS 1
#endif

namespace parcoll::sim {

class FiberStackPool {
 public:
  FiberStackPool() = default;
  FiberStackPool(const FiberStackPool&) = delete;
  FiberStackPool& operator=(const FiberStackPool&) = delete;

  ~FiberStackPool() {
#if defined(PARCOLL_STACK_SLABS)
    for (const Slab& slab : slabs_) {
      ::munmap(slab.base, slab.bytes);
    }
#else
    for (char* slab : slabs_) {
      delete[] slab;
    }
#endif
  }

  /// A recycled stack of exactly `bytes`, or a fresh carve from a slab.
  char* acquire(std::size_t bytes) {
    std::vector<char*>& shelf = free_[bytes];
    if (!shelf.empty()) {
      char* stack = shelf.back();
      shelf.pop_back();
      ++reused_;
      return stack;
    }
    ++allocated_;
    return carve(bytes);
  }

  void release(std::size_t bytes, char* stack) {
    free_[bytes].push_back(stack);
  }

  /// Stacks that had to be newly carved (pool misses).
  [[nodiscard]] std::uint64_t allocated() const { return allocated_; }
  /// Stacks served from the freelist (pool hits).
  [[nodiscard]] std::uint64_t reused() const { return reused_; }

 private:
  static constexpr std::size_t kSlabAlign = 2 * 1024 * 1024;  // THP size
  static constexpr std::size_t kSlabBytes = 8 * 1024 * 1024;

  char* carve(std::size_t bytes) {
    // Page-granular stride keeps every stack's deep end (the canary page)
    // page-aligned within the slab.
    const std::size_t stride = (bytes + 4095) / 4096 * 4096;
    if (cursor_remaining_ < stride) {
      new_slab(stride);
    }
    char* stack = cursor_;
    cursor_ += stride;
    cursor_remaining_ -= stride;
    return stack;
  }

  void new_slab(std::size_t at_least) {
    std::size_t slab_bytes = kSlabBytes;
    while (slab_bytes < at_least) {
      slab_bytes += kSlabAlign;
    }
#if defined(PARCOLL_STACK_SLABS)
    // Over-map by one alignment unit and trim so the kept range is 2 MiB-
    // aligned; only aligned ranges are eligible for huge-page collapse.
    const std::size_t mapped = slab_bytes + kSlabAlign;
    void* raw = ::mmap(nullptr, mapped, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (raw == MAP_FAILED) {
      throw std::bad_alloc();
    }
    auto addr = reinterpret_cast<std::uintptr_t>(raw);
    const std::uintptr_t aligned = (addr + kSlabAlign - 1) & ~(kSlabAlign - 1);
    if (aligned > addr) {
      ::munmap(raw, aligned - addr);
    }
    const std::uintptr_t tail = aligned + slab_bytes;
    const std::uintptr_t mapped_end = addr + mapped;
    if (mapped_end > tail) {
      ::munmap(reinterpret_cast<void*>(tail), mapped_end - tail);
    }
    char* base = reinterpret_cast<char*>(aligned);
    ::madvise(base, slab_bytes, MADV_HUGEPAGE);
    slabs_.push_back(Slab{base, slab_bytes});
#else
    char* base = new char[slab_bytes];
    slabs_.push_back(base);
#endif
    cursor_ = base;
    cursor_remaining_ = slab_bytes;
  }

#if defined(PARCOLL_STACK_SLABS)
  struct Slab {
    void* base;
    std::size_t bytes;
  };
  std::vector<Slab> slabs_;
#else
  std::vector<char*> slabs_;
#endif
  std::map<std::size_t, std::vector<char*>> free_;
  char* cursor_ = nullptr;
  std::size_t cursor_remaining_ = 0;
  std::uint64_t allocated_ = 0;
  std::uint64_t reused_ = 0;
};

}  // namespace parcoll::sim
