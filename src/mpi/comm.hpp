// Communicators for the simulated MPI.
//
// A communicator is an ordered set of world ranks plus a context id that
// isolates its point-to-point and collective traffic, just as in MPI.
// Comm is a cheap value type (shared immutable state).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace parcoll::mpi {

class Comm {
 public:
  Comm() = default;

  /// Build a communicator over `members` (world ranks; index = local rank).
  Comm(std::uint64_t context_id, std::vector<int> members);

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] std::uint64_t context_id() const { return state_->context_id; }
  [[nodiscard]] int size() const { return static_cast<int>(state_->members.size()); }

  /// World rank of local rank `local`.
  [[nodiscard]] int world_rank(int local) const;

  /// Local rank of `world` within this communicator, or -1 if not a member.
  [[nodiscard]] int local_rank(int world) const;

  [[nodiscard]] const std::vector<int>& members() const { return state_->members; }

  friend bool operator==(const Comm& a, const Comm& b) {
    return a.state_ == b.state_;
  }

 private:
  struct State {
    std::uint64_t context_id = 0;
    std::vector<int> members;
    std::unordered_map<int, int> local_of_world;
  };
  std::shared_ptr<const State> state_;
};

}  // namespace parcoll::mpi
