#include "mpi/comm.hpp"

#include <stdexcept>

namespace parcoll::mpi {

Comm::Comm(std::uint64_t context_id, std::vector<int> members) {
  auto state = std::make_shared<State>();
  state->context_id = context_id;
  state->members = std::move(members);
  for (std::size_t local = 0; local < state->members.size(); ++local) {
    auto [it, inserted] = state->local_of_world.emplace(
        state->members[local], static_cast<int>(local));
    if (!inserted) {
      throw std::invalid_argument("Comm: duplicate member rank");
    }
  }
  state_ = std::move(state);
}

int Comm::world_rank(int local) const {
  return state_->members.at(static_cast<std::size_t>(local));
}

int Comm::local_rank(int world) const {
  auto it = state_->local_of_world.find(world);
  return it == state_->local_of_world.end() ? -1 : it->second;
}

}  // namespace parcoll::mpi
