// Workload generators: byte-true runs of IOR, MPI-Tile-IO, BT-IO and
// Flash I/O at small scale, across every I/O implementation.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "workloads/btio.hpp"
#include "workloads/flashio.hpp"
#include "workloads/ior.hpp"
#include "workloads/tileio.hpp"

namespace parcoll::workloads {
namespace {

RunSpec byte_true_spec(Impl impl, int groups = 0) {
  RunSpec spec;
  spec.impl = impl;
  spec.parcoll_groups = groups;
  spec.min_group_size = 2;
  spec.byte_true = true;
  spec.cb_buffer_size = 4096;
  return spec;
}

TileIOConfig small_tileio() {
  TileIOConfig config;
  config.tiles_x = 4;
  config.tile_w = 16;
  config.tile_h = 8;
  config.elem_size = 8;
  return config;
}

IorConfig small_ior() {
  IorConfig config;
  config.block_size = 64 << 10;
  config.xfer_size = 16 << 10;
  return config;
}

BtIOConfig small_btio() {
  BtIOConfig config;
  config.grid = 12;
  config.nsteps = 2;
  return config;
}

FlashConfig small_flash() {
  FlashConfig config;
  config.nxb = 4;
  config.nguard = 1;
  config.nblocks = 3;
  config.nvars = 4;
  return config;
}

class WorkloadImplTest
    : public ::testing::TestWithParam<std::tuple<std::string, Impl, int>> {};

TEST_P(WorkloadImplTest, WriteVerifies) {
  const auto [workload, impl, groups] = GetParam();
  const RunSpec spec = byte_true_spec(impl, groups);
  RunResult result;
  if (workload == "tileio") {
    result = run_tileio(small_tileio(), 8, spec, /*write=*/true);
  } else if (workload == "ior") {
    result = run_ior(small_ior(), 8, spec, /*write=*/true);
  } else if (workload == "btio") {
    result = run_btio(small_btio(), 9, spec, /*write=*/true);
  } else {
    result = run_flashio(small_flash(), 8, spec, /*write=*/true);
  }
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.elapsed, 0.0);
  EXPECT_GT(result.bandwidth(), 0.0);
}

TEST_P(WorkloadImplTest, ReadVerifies) {
  const auto [workload, impl, groups] = GetParam();
  const RunSpec spec = byte_true_spec(impl, groups);
  RunResult result;
  if (workload == "tileio") {
    result = run_tileio(small_tileio(), 8, spec, /*write=*/false);
  } else if (workload == "ior") {
    result = run_ior(small_ior(), 8, spec, /*write=*/false);
  } else if (workload == "btio") {
    result = run_btio(small_btio(), 9, spec, /*write=*/false);
  } else {
    result = run_flashio(small_flash(), 8, spec, /*write=*/false);
  }
  EXPECT_TRUE(result.verified);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllImpls, WorkloadImplTest,
    ::testing::Values(
        std::make_tuple("tileio", Impl::PosixIndependent, 0),
        std::make_tuple("tileio", Impl::Independent, 0),
        std::make_tuple("tileio", Impl::Ext2ph, 0),
        std::make_tuple("tileio", Impl::ParColl, 2),
        std::make_tuple("tileio", Impl::ParColl, 4),
        std::make_tuple("ior", Impl::Independent, 0),
        std::make_tuple("ior", Impl::Ext2ph, 0),
        std::make_tuple("ior", Impl::ParColl, 4),
        std::make_tuple("btio", Impl::Ext2ph, 0),
        std::make_tuple("btio", Impl::ParColl, 3),
        std::make_tuple("flash", Impl::PosixIndependent, 0),
        std::make_tuple("flash", Impl::Ext2ph, 0),
        std::make_tuple("flash", Impl::ParColl, 4)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::string(to_string(std::get<1>(info.param))) +
                         "_G" + std::to_string(std::get<2>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(TileIO, GeometryMatchesPaperParameters) {
  const TileIOConfig config = TileIOConfig::paper(512);
  EXPECT_EQ(config.tiles_x, 8);
  EXPECT_EQ(config.tiles_y(512), 64);
  EXPECT_EQ(config.rank_bytes(), 48ull << 20);          // 48 MB per process
  EXPECT_EQ(config.file_bytes(512), 512 * (48ull << 20));  // 48*N MB
}

TEST(TileIO, FiletypeCoversExactlyTheTile) {
  const auto config = small_tileio();
  const auto type = config.filetype(5, 8);  // tile (1,1) of 4x2 grid
  EXPECT_EQ(type.size(), config.rank_bytes());
  EXPECT_EQ(static_cast<std::uint64_t>(type.extent()), config.file_bytes(8));
  EXPECT_EQ(type.segments().size(), config.tile_h);  // one run per tile row
  EXPECT_TRUE(type.monotone());
}

TEST(TileIO, BadGridRejected) {
  TileIOConfig config = small_tileio();
  config.tiles_x = 3;  // does not divide 8
  EXPECT_THROW(config.filetype(0, 8), std::invalid_argument);
}

TEST(Ior, ConfigArithmetic) {
  const IorConfig config;  // paper defaults
  EXPECT_EQ(config.block_size, 512ull << 20);
  EXPECT_EQ(config.xfer_size, 4ull << 20);
  EXPECT_EQ(config.transfers(), 128u);
  EXPECT_EQ(config.file_bytes(512), 256ull << 30);
}

TEST(BtIO, RankBytesSumToStep) {
  const auto config = small_btio();
  for (int nranks : {4, 9}) {
    std::uint64_t total = 0;
    for (int r = 0; r < nranks; ++r) {
      total += config.rank_bytes(r, nranks);
    }
    EXPECT_EQ(total, config.step_bytes());
  }
}

TEST(BtIO, FiletypesPartitionTheCube) {
  // Each byte of the step must belong to exactly one rank.
  const auto config = small_btio();
  const int nranks = 4;
  std::vector<int> owner(config.step_bytes(), -1);
  for (int r = 0; r < nranks; ++r) {
    const auto type = config.filetype(r, nranks);
    for (const auto& seg : type.segments()) {
      for (std::uint64_t i = 0; i < seg.length; ++i) {
        const auto pos = static_cast<std::size_t>(seg.disp) + i;
        EXPECT_EQ(owner[pos], -1) << "byte " << pos << " double-owned";
        owner[pos] = r;
      }
    }
  }
  for (std::size_t pos = 0; pos < owner.size(); ++pos) {
    EXPECT_NE(owner[pos], -1) << "byte " << pos << " unowned";
  }
}

TEST(BtIO, ScatteredAcrossWholeStep) {
  // Diagonal multipartitioning: every rank's range spans most of the cube,
  // so no clean FA split exists (the paper's pattern c).
  const auto config = small_btio();
  const auto type = config.filetype(0, 9);
  const auto& segs = type.segments();
  EXPECT_LT(segs.front().disp, static_cast<std::int64_t>(config.step_bytes()) / 4);
  EXPECT_GT(segs.back().end(), static_cast<std::int64_t>(config.step_bytes()) * 3 / 4);
}

TEST(BtIO, NonSquareRankCountRejected) {
  const auto config = small_btio();
  EXPECT_THROW(config.filetype(0, 8), std::invalid_argument);
}

TEST(Flash, PaperScaleArithmetic) {
  const FlashConfig config;  // paper defaults
  EXPECT_EQ(config.block_bytes(), 32ull * 32 * 32 * 8);
  EXPECT_EQ(config.rank_var_bytes(), 80 * config.block_bytes());
  // ~60.8 GB at 128 procs, ~486 GB at 1024 (paper §5.4).
  EXPECT_NEAR(static_cast<double>(config.checkpoint_bytes(128)) / 1e9, 64.4,
              4.0);
  EXPECT_NEAR(static_cast<double>(config.checkpoint_bytes(1024)) / 1e9, 515.4,
              32.0);
}

TEST(Flash, MemtypeSelectsInteriorZones) {
  const auto config = small_flash();
  const auto type = config.block_memtype();
  EXPECT_EQ(type.size(), config.block_bytes());
  const auto guarded = static_cast<std::uint64_t>(config.nxb + 2 * config.nguard);
  EXPECT_EQ(static_cast<std::uint64_t>(type.extent()),
            guarded * guarded * guarded * 8);
  EXPECT_EQ(type.segments().size(),
            static_cast<std::size_t>(config.nxb) * config.nxb);
}

TEST(Runner, HintsReflectSpec) {
  RunSpec spec;
  spec.impl = Impl::ParColl;
  spec.parcoll_groups = 16;
  spec.cb_nodes = 64;
  spec.cb_buffer_size = 1 << 20;
  const auto hints = spec.hints();
  EXPECT_EQ(hints.parcoll_num_groups, 16);
  EXPECT_EQ(hints.cb_nodes, 64);
  EXPECT_EQ(hints.cb_buffer_size, 1u << 20);
  spec.impl = Impl::Ext2ph;
  EXPECT_EQ(spec.hints().parcoll_num_groups, 0);  // groups only under ParColl
}

TEST(Runner, DeterministicAcrossRepeats) {
  const auto spec = byte_true_spec(Impl::ParColl, 4);
  const auto a = run_tileio(small_tileio(), 8, spec, true);
  const auto b = run_tileio(small_tileio(), 8, spec, true);
  EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
  EXPECT_DOUBLE_EQ(a.sum.total(), b.sum.total());
}

}  // namespace
}  // namespace parcoll::workloads
