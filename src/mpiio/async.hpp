// Nonblocking independent I/O (MPI_File_iwrite_at / MPI_File_iread_at).
//
// The operation proceeds on a helper fiber (Catamount could not do this —
// no threads — but the simulator models the threaded machine, as for split
// collectives). The buffer must stay valid until the matching wait.
#pragma once

#include <memory>

#include "dtype/datatype.hpp"
#include "mpiio/file.hpp"

namespace parcoll::mpiio {

namespace detail {
struct AsyncIoState;
}

/// Handle to an outstanding nonblocking independent operation.
class IoRequest {
 public:
  IoRequest() = default;
  /// Internal: wraps the engine's state record (use iwrite_at/iread_at).
  explicit IoRequest(std::shared_ptr<detail::AsyncIoState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool done() const;

 private:
  friend void io_wait(FileHandle&, IoRequest&);
  std::shared_ptr<detail::AsyncIoState> state_;
};

/// Start an independent write at `offset` (etypes in the view).
IoRequest iwrite_at(FileHandle& file, std::uint64_t offset, const void* buffer,
                    std::uint64_t count, const dtype::Datatype& memtype);

/// Start an independent read at `offset`.
IoRequest iread_at(FileHandle& file, std::uint64_t offset, void* buffer,
                   std::uint64_t count, const dtype::Datatype& memtype);

/// Block until the operation completes (wait charged to IO); for reads,
/// unpacks into the user buffer.
void io_wait(FileHandle& file, IoRequest& request);

}  // namespace parcoll::mpiio
