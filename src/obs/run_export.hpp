// Machine-readable run export: the versioned "parcoll-run" JSON schema.
//
// One document per run: tool + config, the measured result (elapsed,
// bytes, bandwidth), the per-category time breakdown, the file's
// close-time statistics, fault counters, the metrics registry dump, and —
// when tracing was on — the collective-wall report. The schema tag and
// version let downstream tooling (tools/bench_to_trajectory, CI trend
// jobs) validate documents before folding them into BENCH_*.json.
//
// This header is also where FileStats and FaultCounters "migrate" into
// the metrics registry: export_file_stats / export_fault_counters mirror
// every legacy counter as a registry counter at collect time, so the
// registry is the superset view while FileStats::summary() keeps printing
// the exact historical text.
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.hpp"

namespace parcoll::mpi {
struct TimeBreakdown;
}
namespace parcoll::mpiio {
struct FileStats;
}
namespace parcoll::fault {
struct FaultCounters;
}

namespace parcoll::obs {

class MetricsRegistry;

inline constexpr const char* kRunSchema = "parcoll-run";
inline constexpr int kRunSchemaVersion = 1;

[[nodiscard]] JsonValue time_breakdown_json(const mpi::TimeBreakdown& time);
[[nodiscard]] JsonValue file_stats_json(const mpiio::FileStats& stats);
[[nodiscard]] JsonValue fault_counters_json(const fault::FaultCounters& faults);
[[nodiscard]] JsonValue metrics_json(const MetricsRegistry& metrics);

/// Mirror the legacy aggregates into the registry ("stats.*", "fault.*").
void export_file_stats(MetricsRegistry& metrics, const mpiio::FileStats& stats);
void export_fault_counters(MetricsRegistry& metrics,
                           const fault::FaultCounters& faults);

/// Envelope: {"schema": "parcoll-run", "version": 1, "tool": tool,
/// "config": config, ...} — callers then set "result", "metrics",
/// "wall_report", ... on the returned object.
[[nodiscard]] JsonValue run_document(const std::string& tool,
                                     JsonValue config);

/// Write `doc` to `path` (pretty-printed, trailing newline). Throws
/// std::runtime_error when the file cannot be opened.
void write_json_file(const std::string& path, const JsonValue& doc);

}  // namespace parcoll::obs
