file(REMOVE_RECURSE
  "CMakeFiles/fig10_btio.dir/fig10_btio.cpp.o"
  "CMakeFiles/fig10_btio.dir/fig10_btio.cpp.o.d"
  "fig10_btio"
  "fig10_btio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_btio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
