# Empty dependencies file for fig07_tileio_groups.
# This may be replaced when dependencies are built.
