// Figure 8 — "Reduction of Synchronization Cost".
//
// The same MPI-Tile-IO sweep as Figure 7, reporting the synchronization
// cost in absolute terms (seconds summed over ranks) and as a share of
// total time. ParColl must reduce both, until extreme over-partitioning
// trades the win away.
#include "bench/common.hpp"
#include "workloads/tileio.hpp"

int main(int argc, char** argv) {
  using namespace parcoll;
  using namespace parcoll::bench;
  BenchReport report("fig08_sync_reduction", argc, argv);

  const int nprocs = 512;
  const auto config = workloads::TileIOConfig::paper(nprocs);
  header("Figure 8", "synchronization cost vs number of subgroups (P=512)");
  std::printf("  %-22s %14s %12s\n", "series", "sync (rank-s)", "sync share");

  const auto print = [&](const std::string& series, const std::string& key,
                         const workloads::RunResult& result) {
    std::printf("  %-22s %12.2f s %11.1f%%\n", series.c_str(),
                result.sum[mpi::TimeCat::Sync],
                100.0 * result.sync_fraction());
    report.add(key, nprocs, result);
  };
  print("Cray (ext2ph)", "cray",
        workloads::run_tileio(config, nprocs, baseline_spec(), true));
  for (int groups : {2, 4, 8, 16, 32, 64}) {
    print("ParColl-" + std::to_string(groups),
          "parcoll-" + std::to_string(groups),
          workloads::run_tileio(config, nprocs, parcoll_spec(groups), true));
  }
  footnote("paper: sync reduced in both absolute value and relative ratio");
  return 0;
}
