#include "fs/integrity.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace parcoll::fs {

namespace {

std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  // Reflected CRC-32C (Castagnoli) polynomial.
  constexpr std::uint32_t kPoly = 0x82F63B78u;
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t crc32c(const std::byte* data, std::size_t length,
                     std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = make_crc32c_table();
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < length; ++i) {
    crc = kTable[(crc ^ static_cast<std::uint32_t>(data[i])) & 0xFFu] ^
          (crc >> 8);
  }
  return ~crc;
}

const char* to_string(IntegrityLevel level) {
  switch (level) {
    case IntegrityLevel::Off:
      return "off";
    case IntegrityLevel::Detect:
      return "detect";
    case IntegrityLevel::Repair:
      return "repair";
  }
  return "?";
}

IntegrityLevel parse_integrity_level(const std::string& text) {
  if (text == "off" || text == "disable") return IntegrityLevel::Off;
  if (text == "detect") return IntegrityLevel::Detect;
  if (text == "repair" || text == "enable") return IntegrityLevel::Repair;
  throw std::invalid_argument("integrity level must be off|detect|repair: " +
                              text);
}

CollectiveIoError::CollectiveIoError(int fs_id_in, std::uint64_t offset_in,
                                     std::uint64_t length_in)
    : std::runtime_error("collective I/O integrity error: file " +
                         std::to_string(fs_id_in) + " extent [" +
                         std::to_string(offset_in) + ", " +
                         std::to_string(offset_in + length_in) +
                         ") has unrecoverable corruption"),
      fs_id(fs_id_in),
      offset(offset_in),
      length(length_in) {}

IntegrityManager::IntegrityManager(IntegrityConfig config,
                                   fault::FaultState* faults)
    : config_(config), faults_(faults) {}

void IntegrityManager::erase_range(FileMap& map, std::uint64_t lo,
                                   std::uint64_t hi) {
  auto it = map.lower_bound(lo);
  if (it != map.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.length > lo) it = prev;
  }
  while (it != map.end() && it->first < hi) {
    const std::uint64_t rec_lo = it->first;
    const std::uint64_t rec_hi = rec_lo + it->second.length;
    Record old = std::move(it->second);
    it = map.erase(it);
    // An overwrite that only partially covers a record keeps the survivor
    // pieces verifiable: re-derive their checksums from the replica (or
    // keep phantom coverage as-is).
    if (rec_lo < lo) {
      Record left;
      left.length = lo - rec_lo;
      left.landed = old.landed >= old.length ? left.length : 0;
      left.phantom = old.phantom;
      if (!old.replica.empty()) {
        left.replica.assign(old.replica.begin(),
                            old.replica.begin() +
                                static_cast<std::ptrdiff_t>(left.length));
        left.crc = crc32c(left.replica.data(), left.replica.size());
      } else if (!old.phantom) {
        left.length = 0;  // no way to recompute the checksum: drop coverage
      }
      if (left.length > 0) map.emplace(rec_lo, std::move(left));
    }
    if (rec_hi > hi) {
      Record right;
      right.length = rec_hi - hi;
      right.landed = old.landed >= old.length ? right.length : 0;
      right.phantom = old.phantom;
      if (!old.replica.empty()) {
        right.replica.assign(old.replica.end() -
                                 static_cast<std::ptrdiff_t>(right.length),
                             old.replica.end());
        right.crc = crc32c(right.replica.data(), right.replica.size());
      } else if (!old.phantom) {
        right.length = 0;
      }
      if (right.length > 0) map.emplace(hi, std::move(right));
    }
  }
}

double IntegrityManager::register_write(int client, int fs_id,
                                        std::span<const Extent> extents,
                                        const std::byte* data) {
  FileMap& map = files_[fs_id];
  std::uint64_t total = 0;
  std::uint64_t pos = 0;  // cursor into the concatenated payload
  for (const Extent& extent : extents) {
    if (extent.length == 0) continue;
    erase_range(map, extent.offset, extent.end());
    std::uint64_t off = extent.offset;
    std::uint64_t left = extent.length;
    while (left > 0) {
      const std::uint64_t len = std::min(left, config_.block);
      Record record;
      record.length = len;
      if (data != nullptr) {
        const std::byte* src = data + pos;
        record.crc = crc32c(src, len);
        record.replica.assign(src, src + len);
      } else {
        record.phantom = true;
      }
      map.emplace(off, std::move(record));
      ++counters_.blocks;
      off += len;
      pos += len;
      left -= len;
    }
    total += extent.length;
  }
  counters_.bytes_checksummed += total;
  (void)client;
  return static_cast<double>(total) / config_.checksum_bw;
}

template <typename Heal>
bool IntegrityManager::check_record(int client, int fs_id,
                                    std::uint64_t offset,
                                    const Record& record,
                                    const std::byte* actual, bool by_scrubber,
                                    Heal&& heal) {
  if (record.phantom || actual == nullptr) return true;
  if (crc32c(actual, record.length) == record.crc) return true;
  fault::FaultCounters& mine = faults_->of(client);
  ++mine.corrupt_detected;
  ++counters_.detected;
  if (config_.level == IntegrityLevel::Repair && !record.replica.empty()) {
    heal(record.replica);
    ++mine.corrupt_repaired;
    ++counters_.repaired;
    if (by_scrubber) {
      ++mine.scrub_repairs;
      ++counters_.scrub_repairs;
    }
    return true;
  }
  record_error(fs_id, offset, record.length);
  return false;
}

double IntegrityManager::verify_buffer(int client, int fs_id,
                                       std::span<const Extent> extents,
                                       std::byte* data) {
  const auto found = files_.find(fs_id);
  if (found == files_.end()) return 0.0;
  FileMap& map = found->second;
  std::uint64_t scanned = 0;
  std::uint64_t pos = 0;
  for (const Extent& extent : extents) {
    auto it = map.lower_bound(extent.offset);
    for (; it != map.end() && it->first + it->second.length <= extent.end();
         ++it) {
      // Only records fully inside this extent are verifiable here: a
      // straddling record's remaining bytes live in another segment (or
      // already on the OST), so its audit waits for the store-side passes.
      const std::uint64_t at = pos + (it->first - extent.offset);
      std::byte* actual = data == nullptr ? nullptr : data + at;
      check_record(client, fs_id, it->first, it->second, actual,
                   /*by_scrubber=*/false, [&](const std::vector<std::byte>& r) {
                     std::memcpy(actual, r.data(), r.size());
                   });
      scanned += it->second.length;
    }
    pos += extent.length;
  }
  return static_cast<double>(scanned) / config_.checksum_bw;
}

double IntegrityManager::verify_ranges(int client, int fs_id,
                                       std::span<const Extent> extents,
                                       ObjectStore& store) {
  const auto found = files_.find(fs_id);
  if (found == files_.end()) return 0.0;
  FileMap& map = found->second;
  std::uint64_t scanned = 0;
  std::vector<std::byte> actual;
  for (const Extent& extent : extents) {
    if (extent.length == 0) continue;
    auto it = map.lower_bound(extent.offset);
    if (it != map.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second.length > extent.offset) it = prev;
    }
    for (; it != map.end() && it->first < extent.end(); ++it) {
      const Record& record = it->second;
      if (record.phantom) continue;
      actual.resize(record.length);
      store.read(fs_id, it->first, actual.data(), record.length);
      check_record(client, fs_id, it->first, record, actual.data(),
                   /*by_scrubber=*/false, [&](const std::vector<std::byte>& r) {
                     store.write(fs_id, it->first, r.data(), r.size());
                   });
      scanned += record.length;
    }
  }
  return static_cast<double>(scanned) / config_.checksum_bw;
}

double IntegrityManager::scrub_all(int client, ObjectStore& store,
                                   bool by_scrubber) {
  std::uint64_t scanned = 0;
  std::vector<std::byte> actual;
  for (auto& [fs_id, map] : files_) {
    for (auto& [offset, record] : map) {
      // Skip phantom coverage and blocks still staged/in flight: the store
      // does not hold their bytes yet, so an audit would misread pending
      // data as corruption.
      if (record.phantom || record.landed < record.length) continue;
      actual.resize(record.length);
      store.read(fs_id, offset, actual.data(), record.length);
      check_record(client, fs_id, offset, record, actual.data(), by_scrubber,
                   [&, off = offset](const std::vector<std::byte>& r) {
                     store.write(fs_id, off, r.data(), r.size());
                   });
      scanned += record.length;
    }
  }
  return static_cast<double>(scanned) / config_.checksum_bw;
}

void IntegrityManager::mark_landed(int fs_id, std::uint64_t offset,
                                   std::uint64_t length) {
  const auto found = files_.find(fs_id);
  if (found == files_.end() || length == 0) return;
  FileMap& map = found->second;
  const std::uint64_t hi = offset + length;
  auto it = map.lower_bound(offset);
  if (it != map.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.length > offset) it = prev;
  }
  for (; it != map.end() && it->first < hi; ++it) {
    Record& record = it->second;
    const std::uint64_t lo = std::max(offset, it->first);
    const std::uint64_t cap = std::min(hi, it->first + record.length);
    // Accumulate landed coverage; a block split across write pieces (or
    // OSTs) only becomes scrubbable once every piece has committed.
    record.landed = std::min(record.length, record.landed + (cap - lo));
  }
}

void IntegrityManager::record_error(int fs_id, std::uint64_t offset,
                                    std::uint64_t length) {
  errors_.emplace_back(fs_id, offset, length);
  ++counters_.errors;
}

std::uint64_t IntegrityManager::pending_word() const {
  // Encode (file, offset) so the max across ranks picks one deterministic
  // error. Offsets fit comfortably in 48 bits at simulated scales.
  std::uint64_t word = 0;
  for (const CollectiveIoError& error : errors_) {
    const std::uint64_t encoded =
        (static_cast<std::uint64_t>(error.fs_id + 1) << 48) |
        (error.offset & 0xFFFFFFFFFFFFull);
    word = std::max(word, encoded);
  }
  return word;
}

CollectiveIoError IntegrityManager::error_of(std::uint64_t word) const {
  const int fs_id = static_cast<int>(word >> 48) - 1;
  const std::uint64_t offset = word & 0xFFFFFFFFFFFFull;
  for (const CollectiveIoError& error : errors_) {
    if (error.fs_id == fs_id && error.offset == offset) return error;
  }
  // Another rank recorded it (should not happen with a world-global log,
  // but keep the agreement total anyway).
  return CollectiveIoError(fs_id, offset, 0);
}

IntegrityCounters IntegrityManager::harvest() {
  IntegrityCounters delta;
  delta.blocks = counters_.blocks - harvested_.blocks;
  delta.bytes_checksummed =
      counters_.bytes_checksummed - harvested_.bytes_checksummed;
  delta.detected = counters_.detected - harvested_.detected;
  delta.repaired = counters_.repaired - harvested_.repaired;
  delta.scrub_repairs = counters_.scrub_repairs - harvested_.scrub_repairs;
  delta.errors = counters_.errors - harvested_.errors;
  harvested_ = counters_;
  return delta;
}

}  // namespace parcoll::fs
