// File-system substrate: striping math, object stores, the OST service
// model (FIFO, jitter, lock switching), and the Lustre client.
#include <gtest/gtest.h>

#include <cstring>

#include "fs/lustre.hpp"
#include "fs/object_store.hpp"
#include "fs/ost.hpp"
#include "fs/stripe.hpp"
#include "sim/engine.hpp"

namespace parcoll::fs {
namespace {

TEST(Stripe, SingleChunkWithinStripe) {
  const auto chunks = stripe_chunks(Extent{100, 50}, 1024, 4);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].stripe_index, 0);
  EXPECT_EQ(chunks[0].file_offset, 100u);
  EXPECT_EQ(chunks[0].length, 50u);
}

TEST(Stripe, SplitsAtStripeBoundaries) {
  const auto chunks = stripe_chunks(Extent{1000, 2100}, 1024, 4);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0].stripe_index, 0);
  EXPECT_EQ(chunks[0].length, 24u);  // to offset 1024
  EXPECT_EQ(chunks[1].stripe_index, 1);
  EXPECT_EQ(chunks[1].length, 1024u);
  EXPECT_EQ(chunks[2].stripe_index, 2);
  EXPECT_EQ(chunks[2].length, 1024u);
  EXPECT_EQ(chunks[3].stripe_index, 3);
  EXPECT_EQ(chunks[3].length, 28u);  // ends at 3100
}

TEST(Stripe, WrapsAroundStripeCount) {
  const auto chunks = stripe_chunks(Extent{0, 5 * 1024}, 1024, 4);
  ASSERT_EQ(chunks.size(), 5u);
  EXPECT_EQ(chunks[4].stripe_index, 0);  // stripe 4 wraps to index 0
}

TEST(Stripe, FloorCeilHelpers) {
  EXPECT_EQ(stripe_floor(1000, 256), 768u);
  EXPECT_EQ(stripe_ceil(1000, 256), 1024u);
  EXPECT_EQ(stripe_ceil(1024, 256), 1024u);
}

TEST(MemoryStore, WriteReadRoundTrip) {
  MemoryStore store;
  const char data[] = "hello";
  store.write(1, 100, reinterpret_cast<const std::byte*>(data), 5);
  char out[6] = {};
  store.read(1, 100, reinterpret_cast<std::byte*>(out), 5);
  EXPECT_STREQ(out, "hello");
  EXPECT_EQ(store.size(1), 105u);
}

TEST(MemoryStore, GapsAndBeyondEofReadAsZero) {
  MemoryStore store;
  const char data[] = "x";
  store.write(1, 10, reinterpret_cast<const std::byte*>(data), 1);
  std::byte out[20];
  std::memset(out, 0xAB, sizeof(out));
  store.read(1, 0, out, 20);
  EXPECT_EQ(out[0], std::byte{0});
  EXPECT_EQ(out[10], std::byte{'x'});
  EXPECT_EQ(out[11], std::byte{0});  // beyond EOF
}

TEST(MemoryStore, UnknownFileReadsZeros) {
  MemoryStore store;
  std::byte out[4];
  std::memset(out, 0xFF, sizeof(out));
  store.read(99, 0, out, 4);
  EXPECT_EQ(out[0], std::byte{0});
  EXPECT_EQ(store.size(99), 0u);
}

TEST(PhantomStore, TracksBookkeepingOnly) {
  PhantomStore store;
  store.write(1, 1000, nullptr, 500);
  store.write(1, 0, nullptr, 10);
  store.read(1, 0, nullptr, 100);
  EXPECT_EQ(store.size(1), 1500u);
  EXPECT_EQ(store.bytes_written(), 510u);
  EXPECT_EQ(store.bytes_read(), 100u);
  EXPECT_EQ(store.write_ops(), 2u);
  EXPECT_EQ(store.read_ops(), 1u);
}

machine::StorageParams no_jitter_params() {
  machine::StorageParams params;
  params.jitter_frac = 0.0;
  params.slow_epoch_seconds = 0.0;  // disable heavy-tail slowdowns
  return params;
}

TEST(Ost, FifoReservation) {
  const auto params = no_jitter_params();
  OstModel ost(0, params);
  const double service =
      params.request_overhead + 1e6 / params.ost_bandwidth;
  const double first = ost.serve(0.0, 0, 1, 0, 0 + 1'000'000, 1'000'000, false).done;
  const double second = ost.serve(0.0, 0, 1, 0, 0 + 1'000'000, 1'000'000, false).done;
  EXPECT_DOUBLE_EQ(first, service);
  EXPECT_DOUBLE_EQ(second, 2 * service);
}

TEST(Ost, StreamingWriterAcquiresOnceThenRunsFree) {
  const auto params = no_jitter_params();
  OstModel ost(0, params);
  for (int i = 0; i < 10; ++i) {
    const auto pos = static_cast<std::uint64_t>(i) * 1000;
    ost.serve(0.0, 0, 1, pos, pos + 1000, 1000, true);
  }
  EXPECT_EQ(ost.lock_switches(), 0u);  // grant extension covers the stream
}

TEST(Ost, NewWriterRevokesExtendedGrant) {
  const auto params = no_jitter_params();
  OstModel ost(0, params);
  // Writer 1's grant extends to infinity; writer 2's first write must
  // revoke it, then writer 1 writing *behind its own remaining range* is
  // free but writing into 2's extended region revokes again.
  ost.serve(0.0, 0, 1, 0, 0 + 1000, 1000, true);
  EXPECT_EQ(ost.lock_switches(), 0u);
  ost.serve(0.0, 0, 2, 100000, 100000 + 1000, 1000, true);
  EXPECT_EQ(ost.lock_switches(), 1u);
  ost.serve(0.0, 0, 1, 1000, 1000 + 1000, 1000, true);  // inside 1's trimmed grant
  EXPECT_EQ(ost.lock_switches(), 1u);
  ost.serve(0.0, 0, 2, 101000, 101000 + 1000, 1000, true);  // inside 2's own extension
  EXPECT_EQ(ost.lock_switches(), 1u);
  ost.serve(0.0, 0, 1, 200000, 200000 + 1000, 1000, true);  // revokes 2's extension
  EXPECT_EQ(ost.lock_switches(), 2u);
}

TEST(Ost, InterleavedWritersPingPong) {
  const auto params = no_jitter_params();
  OstModel ost(0, params);
  // Clients alternate fine-grained writes walking up the file: each write
  // lands in the previous writer's forward extension, so every write after
  // the first revokes a grant.
  std::uint64_t pos = 0;
  for (int i = 0; i < 10; ++i) {
    ost.serve(0.0, 0, i % 2, pos, pos + 512, 512, true);
    pos += 512;
  }
  EXPECT_EQ(ost.lock_switches(), 9u);
}

TEST(Ost, DisjointFilesDoNotConflict) {
  const auto params = no_jitter_params();
  OstModel ost(0, params);
  ost.serve(0.0, /*file=*/0, 1, 0, 0 + 1000, 1000, true);
  ost.serve(0.0, /*file=*/1, 2, 0, 0 + 1000, 1000, true);  // other file: no conflict
  EXPECT_EQ(ost.lock_switches(), 0u);
}

TEST(Ost, ReadsDoNotPayOrTriggerLockSwitch) {
  const auto params = no_jitter_params();
  OstModel ost(0, params);
  ost.serve(0.0, 0, 1, 0, 0 + 1000, 1000, true);
  ost.serve(0.0, 0, 2, 0, 0 + 1000, 1000, false);  // read by another client
  ost.serve(0.0, 0, 1, 5000, 5000 + 1000, 1000, true);
  EXPECT_EQ(ost.lock_switches(), 0u);
}

TEST(Ost, JitterIsBoundedAndDeterministic) {
  machine::StorageParams params;
  params.jitter_frac = 0.5;
  params.slow_epoch_seconds = 0.0;
  OstModel a(3, params);
  OstModel b(3, params);
  for (int i = 0; i < 50; ++i) {
    const double ta = a.serve(0.0, 0, 1, 0, 0 + 1000, 1000, false).done;
    const double tb = b.serve(0.0, 0, 1, 0, 0 + 1000, 1000, false).done;
    EXPECT_DOUBLE_EQ(ta, tb);  // same id, same seq -> same jitter
  }
  const double base = params.request_overhead + 1000 / params.ost_bandwidth;
  OstModel c(5, params);
  const double t = c.serve(0.0, 0, 1, 0, 0 + 1000, 1000, false).done;
  EXPECT_GE(t, base);
  EXPECT_LE(t, base * 1.5 + 1e-12);
}

TEST(Ost, SlowdownIsEpochStableHeavyTailed) {
  machine::StorageParams params;  // defaults: slowdowns enabled
  OstModel ost(7, params);
  // Within one epoch the factor is constant.
  const double f0 = ost.slowdown(0.01);
  EXPECT_DOUBLE_EQ(f0, ost.slowdown(params.slow_epoch_seconds * 0.9));
  // Across many epochs: mostly 1.0, occasionally large, never below 1.
  int slow = 0;
  double max_factor = 0;
  for (int e = 0; e < 2000; ++e) {
    const double f = ost.slowdown((e + 0.5) * params.slow_epoch_seconds);
    EXPECT_GE(f, 1.0);
    if (f > 1.0) ++slow;
    max_factor = std::max(max_factor, f);
  }
  EXPECT_GT(slow, 2000 * (params.slow_prob + params.very_slow_prob) / 3);
  EXPECT_LT(slow, 2000 * (params.slow_prob + params.very_slow_prob) * 3);
  EXPECT_GT(max_factor, params.slow_factor);  // the tail exists
  EXPECT_LE(max_factor, params.very_slow_factor);
}

TEST(Lustre, OpenIsIdempotentAndChargesMetadataTime) {
  sim::Engine engine;
  LustreSim fs(engine, no_jitter_params(), StoreMode::Memory);
  engine.spawn([&] {
    const double t0 = engine.now();
    const int a = fs.open("file-a", 4, 1024);
    EXPECT_GT(engine.now(), t0);
    const int b = fs.open("file-a", 8, 2048);  // striping immutable
    EXPECT_EQ(a, b);
    EXPECT_EQ(fs.meta(a).stripe_count, 4);
    EXPECT_EQ(fs.meta(a).stripe_size, 1024u);
    const int c = fs.open("file-c");
    EXPECT_NE(a, c);
    EXPECT_EQ(fs.meta(c).stripe_count,
              no_jitter_params().default_stripe_count);
  });
  engine.run();
}

TEST(Lustre, WriteReadRoundTripAcrossStripes) {
  sim::Engine engine;
  LustreSim fs(engine, no_jitter_params(), StoreMode::Memory);
  engine.spawn([&] {
    const int id = fs.open("data", 4, 16);  // tiny stripes to force splits
    std::vector<std::byte> data(100);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::byte>(i);
    }
    const Extent extents[] = {{0, 60}, {200, 40}};
    fs.write(0, id, extents, data.data());
    std::vector<std::byte> back(100);
    fs.read(0, id, extents, back.data());
    EXPECT_EQ(back, data);
    EXPECT_EQ(fs.file_size(id), 240u);
  });
  engine.run();
}

TEST(Lustre, LargeWriteSplitsIntoMaxRpcSizeRequests) {
  sim::Engine engine;
  auto params = no_jitter_params();
  params.max_rpc_size = 1 << 20;
  LustreSim fs(engine, params, StoreMode::Phantom);
  engine.spawn([&] {
    const int id = fs.open("big", 4, 4 << 20);
    const Extent extent{0, 8ull << 20};  // 8 MB = 2 stripes = 8 RPCs
    fs.write(0, id, std::span(&extent, 1), nullptr);
    EXPECT_EQ(fs.total_rpcs(), 8u);
  });
  engine.run();
}

TEST(Lustre, ParallelStripesBeatSingleStripe) {
  // The same 8 MB write must finish faster striped over 8 OSTs than 1.
  const auto run = [](int stripes) {
    sim::Engine engine;
    LustreSim fs(engine, no_jitter_params(), StoreMode::Phantom);
    double elapsed = 0;
    engine.spawn([&] {
      const int id = fs.open("f", stripes, 1 << 20);
      const Extent extent{0, 8ull << 20};
      const double t0 = engine.now();
      fs.write(0, id, std::span(&extent, 1), nullptr);
      elapsed = engine.now() - t0;
    });
    engine.run();
    return elapsed;
  };
  EXPECT_LT(run(8), run(1) / 3.0);
}

TEST(Lustre, InterleavedWritersPayLockSwitches) {
  sim::Engine engine;
  auto params = no_jitter_params();
  LustreSim fs(engine, params, StoreMode::Phantom);
  engine.spawn([&] {
    const int id = fs.open("shared", 1, 1 << 20);  // one OST
    for (int round = 0; round < 5; ++round) {
      for (int client = 0; client < 4; ++client) {
        const Extent extent{
            static_cast<std::uint64_t>(round * 4 + client) * 1024, 1024};
        fs.write(client, id, std::span(&extent, 1), nullptr);
      }
    }
    // Round-robin upward walk: every write after the first lands in the
    // previous writer's forward extension and revokes it.
    EXPECT_EQ(fs.total_lock_switches(), 19u);
  });
  engine.run();
}

}  // namespace
}  // namespace parcoll::fs
