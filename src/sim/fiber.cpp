#include "sim/fiber.hpp"

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "sim/stack_pool.hpp"

// Context switches move stacks behind AddressSanitizer's back. Without the
// fiber annotations ASan believes the OS thread stack is still current, so
// an exception thrown on a fiber stack (__asan_handle_no_return) unpoisons
// the wrong region and aborts with a bogus stack-use-after-scope. Announce
// every switch when compiled with ASan; plain builds compile the hooks away.
#if defined(__SANITIZE_ADDRESS__)
#define PARCOLL_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PARCOLL_ASAN_FIBERS 1
#endif
#endif

#if defined(PARCOLL_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

namespace parcoll::sim {
namespace {

inline void asan_start_switch([[maybe_unused]] void** save,
                              [[maybe_unused]] const void* target_bottom,
                              [[maybe_unused]] std::size_t target_size) {
#if defined(PARCOLL_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(save, target_bottom, target_size);
#endif
}

inline void asan_finish_switch([[maybe_unused]] void* saved,
                               [[maybe_unused]] const void** old_bottom,
                               [[maybe_unused]] std::size_t* old_size) {
#if defined(PARCOLL_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(saved, old_bottom, old_size);
#endif
}

constexpr unsigned char kCanaryByte = 0x5a;

}  // namespace

thread_local Fiber* Fiber::current_ = nullptr;

#if defined(PARCOLL_FAST_CONTEXT)

// The switch saves the SysV callee-saved registers plus the SSE/x87 control
// words on the outgoing stack, stores the stack pointer through the first
// argument, and restores the incoming stack the same way. No signal-mask
// syscalls — the whole reason this path exists.
extern "C" void parcoll_ctx_swap(void** save_sp, void* restore_sp);
extern "C" void parcoll_ctx_entry();

asm(R"(
    .text
    .align 16
    .globl parcoll_ctx_swap
    .type parcoll_ctx_swap, @function
parcoll_ctx_swap:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    subq $8, %rsp
    stmxcsr (%rsp)
    fnstcw 4(%rsp)
    movq %rsp, (%rdi)
    movq %rsi, %rsp
    ldmxcsr (%rsp)
    fldcw 4(%rsp)
    addq $8, %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    ret
    .size parcoll_ctx_swap, .-parcoll_ctx_swap

    .align 16
    .globl parcoll_ctx_entry
    .type parcoll_ctx_entry, @function
parcoll_ctx_entry:
    movq %r12, %rdi
    callq parcoll_fiber_entry
    ud2
    .size parcoll_ctx_entry, .-parcoll_ctx_entry

    .section .note.GNU-stack,"",@progbits
    .text
)");

void fiber_entry_thunk(Fiber* self) {
  // First time on this stack: complete the switch the scheduler started and
  // learn the scheduler stack bounds for the trips back.
  asan_finish_switch(nullptr, &self->asan_sched_stack_bottom_,
                     &self->asan_sched_stack_size_);
  self->run_body();
  // The fiber is done for good, so pass no save slot: ASan frees its fake
  // stack. The final swap never returns here.
  asan_start_switch(nullptr, self->asan_sched_stack_bottom_,
                    self->asan_sched_stack_size_);
  parcoll_ctx_swap(&self->ctx_sp_, self->link_sp_);
}

extern "C" void parcoll_fiber_entry(void* self) {
  fiber_entry_thunk(static_cast<Fiber*>(self));
  __builtin_unreachable();
}

Fiber::Fiber(Body body, std::size_t stack_bytes, FiberStackPool* pool)
    : stack_(pool != nullptr ? pool->acquire(stack_bytes) : nullptr),
      stack_bytes_(stack_bytes),
      pool_(pool),
      body_(std::move(body)) {
  if (stack_ == nullptr) {
    owned_stack_.reset(new char[stack_bytes]);
    stack_ = owned_stack_.get();
  }
  std::memset(stack_, kCanaryByte, kCanaryBytes);
  // Build the frame parcoll_ctx_swap restores from: control words, six
  // callee-saved registers (r12 carries `this` into parcoll_ctx_entry), and
  // a return address. The return-address slot sits at top-8 so the entry
  // thunk observes the 16-byte alignment the SysV ABI promises at a call.
  auto top = reinterpret_cast<std::uintptr_t>(stack_) + stack_bytes;
  top &= ~static_cast<std::uintptr_t>(15);
  auto* frame = reinterpret_cast<std::uint64_t*>(top - 64);
  std::uint32_t mxcsr = 0;
  std::uint16_t fcw = 0;
  asm volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fcw));
  frame[0] = (static_cast<std::uint64_t>(fcw) << 32) | mxcsr;
  frame[1] = 0;                                      // r15
  frame[2] = 0;                                      // r14
  frame[3] = 0;                                      // r13
  frame[4] = reinterpret_cast<std::uint64_t>(this);  // r12
  frame[5] = 0;                                      // rbx
  frame[6] = 0;                                      // rbp
  frame[7] = reinterpret_cast<std::uint64_t>(&parcoll_ctx_entry);
  ctx_sp_ = frame;
}

void Fiber::resume() {
  if (finished_) {
    throw std::logic_error("Fiber::resume on finished fiber");
  }
  if (current_ != nullptr) {
    throw std::logic_error("Fiber::resume called from inside a fiber");
  }
  started_ = true;
  current_ = this;
  void* sched_fake_stack = nullptr;
  asan_start_switch(&sched_fake_stack, stack_, stack_bytes_);
  parcoll_ctx_swap(&link_sp_, ctx_sp_);
  asan_finish_switch(sched_fake_stack, nullptr, nullptr);
  // Back on the scheduler: either the fiber yielded or it finished.
  if (finished_ && exception_) {
    std::exception_ptr rethrown = std::exchange(exception_, nullptr);
    std::rethrow_exception(rethrown);
  }
}

void Fiber::yield() {
  if (current_ != this) {
    throw std::logic_error("Fiber::yield called from the wrong context");
  }
  current_ = nullptr;
  asan_start_switch(&asan_fake_stack_, asan_sched_stack_bottom_,
                    asan_sched_stack_size_);
  parcoll_ctx_swap(&ctx_sp_, link_sp_);
  asan_finish_switch(asan_fake_stack_, &asan_sched_stack_bottom_,
                     &asan_sched_stack_size_);
  current_ = this;
}

#else  // ucontext fallback

Fiber::Fiber(Body body, std::size_t stack_bytes, FiberStackPool* pool)
    : stack_(pool != nullptr ? pool->acquire(stack_bytes) : nullptr),
      stack_bytes_(stack_bytes),
      pool_(pool),
      body_(std::move(body)) {
  if (stack_ == nullptr) {
    owned_stack_.reset(new char[stack_bytes]);
    stack_ = owned_stack_.get();
  }
  std::memset(stack_, kCanaryByte, kCanaryBytes);
  if (getcontext(&context_) != 0) {
    throw std::runtime_error("Fiber: getcontext failed");
  }
  context_.uc_stack.ss_sp = stack_;
  context_.uc_stack.ss_size = stack_bytes;
  context_.uc_link = &return_point_;
  // makecontext only passes ints, so smuggle `this` through two halves.
  auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned int>(self >> 32),
              static_cast<unsigned int>(self & 0xffffffffu));
}

void Fiber::trampoline(unsigned int ptr_hi, unsigned int ptr_lo) {
  auto self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(ptr_hi) << 32) |
      static_cast<std::uintptr_t>(ptr_lo));
  // First time on this stack: complete the switch the scheduler started and
  // learn the scheduler stack bounds for the trips back.
  asan_finish_switch(nullptr, &self->asan_sched_stack_bottom_,
                     &self->asan_sched_stack_size_);
  self->run_body();
  // Returning lets ucontext follow uc_link back to return_point_. The fiber
  // is done for good, so pass no save slot: ASan frees its fake stack.
  asan_start_switch(nullptr, self->asan_sched_stack_bottom_,
                    self->asan_sched_stack_size_);
}

void Fiber::resume() {
  if (finished_) {
    throw std::logic_error("Fiber::resume on finished fiber");
  }
  if (current_ != nullptr) {
    throw std::logic_error("Fiber::resume called from inside a fiber");
  }
  started_ = true;
  current_ = this;
  void* sched_fake_stack = nullptr;
  asan_start_switch(&sched_fake_stack, stack_, stack_bytes_);
  swapcontext(&return_point_, &context_);
  asan_finish_switch(sched_fake_stack, nullptr, nullptr);
  // Back on the scheduler: either the fiber yielded or it finished.
  if (finished_ && exception_) {
    std::exception_ptr rethrown = std::exchange(exception_, nullptr);
    std::rethrow_exception(rethrown);
  }
}

void Fiber::yield() {
  if (current_ != this) {
    throw std::logic_error("Fiber::yield called from the wrong context");
  }
  current_ = nullptr;
  asan_start_switch(&asan_fake_stack_, asan_sched_stack_bottom_,
                    asan_sched_stack_size_);
  swapcontext(&context_, &return_point_);
  asan_finish_switch(asan_fake_stack_, &asan_sched_stack_bottom_,
                     &asan_sched_stack_size_);
  current_ = this;
}

#endif  // PARCOLL_FAST_CONTEXT

Fiber::~Fiber() {
  // A trampled (overflowed) stack is never recycled; its slab memory is
  // reclaimed when the pool itself is destroyed.
  if (pool_ != nullptr && stack_ != nullptr && stack_intact()) {
    pool_->release(stack_bytes_, stack_);
  }
}

void Fiber::run_body() {
  try {
    body_();
  } catch (...) {
    exception_ = std::current_exception();
  }
  finished_ = true;
  current_ = nullptr;
}

bool Fiber::stack_intact() const {
  for (std::size_t i = 0; i < kCanaryBytes; ++i) {
    if (static_cast<unsigned char>(stack_[i]) != kCanaryByte) return false;
  }
  return true;
}

}  // namespace parcoll::sim
