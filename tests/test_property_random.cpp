// Randomized property tests: arbitrary per-rank access patterns pushed
// through every I/O implementation must land (and read back) the right
// bytes, and ParColl must always produce a file identical to the plain
// protocol's. Patterns are generated from seeded hashes, so failures
// reproduce exactly.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <tuple>

#include "core/parcoll.hpp"
#include "mpi/collectives.hpp"
#include "mpiio/ext2ph.hpp"
#include "mpiio/file.hpp"
#include "sim/random.hpp"
#include "workloads/pattern.hpp"

namespace parcoll {
namespace {

/// Deterministic random extents for one rank: non-overlapping across ranks
/// by construction (each rank draws pieces from its own slot lattice).
/// `style` selects the global shape: 0 = serial blocks, 1 = interleaved
/// slots (tiled-ish), 2 = scattered slots spanning the whole file.
std::vector<fs::Extent> random_extents(std::uint64_t seed, int rank,
                                       int nranks, int style) {
  std::vector<fs::Extent> extents;
  const std::uint64_t h0 = sim::hash_combine(seed, static_cast<std::uint64_t>(rank));
  switch (style) {
    case 0: {  // serial: one or two pieces inside a private block
      const std::uint64_t block = 8192;
      const std::uint64_t base = static_cast<std::uint64_t>(rank) * block;
      const int pieces = 1 + static_cast<int>(sim::mix64(h0) % 3);
      std::uint64_t pos = base;
      for (int i = 0; i < pieces; ++i) {
        const std::uint64_t gap = sim::mix64(h0 + i) % 512;
        const std::uint64_t len = 64 + sim::mix64(h0 ^ (i + 1)) % 1024;
        pos += gap;
        if (pos + len > base + block) break;
        extents.push_back(fs::Extent{pos, len});
        pos += len;
      }
      break;
    }
    case 1: {  // interleaved: every nranks-th 256B slot, random subset
      const std::uint64_t slot = 256;
      for (int k = 0; k < 24; ++k) {
        if (sim::mix64(h0 + static_cast<std::uint64_t>(k)) % 3 == 0) continue;
        const std::uint64_t offset =
            (static_cast<std::uint64_t>(k) * nranks + rank) * slot;
        extents.push_back(fs::Extent{offset, slot});
      }
      break;
    }
    default: {  // scattered: random-length pieces on a rank-owned lattice
      const std::uint64_t stripe = 128;
      for (int k = 0; k < 16; ++k) {
        const std::uint64_t cell =
            sim::mix64(h0 + static_cast<std::uint64_t>(k)) % 64;
        const std::uint64_t offset =
            (cell * nranks + rank) * stripe;
        const std::uint64_t len = 32 + sim::mix64(h0 ^ (k * 7 + 1)) % (stripe - 32);
        extents.push_back(fs::Extent{offset, len});
      }
      // Sort/merge to a monotone request; drop duplicate cells.
      std::sort(extents.begin(), extents.end(),
                [](const fs::Extent& a, const fs::Extent& b) {
                  return a.offset < b.offset;
                });
      std::vector<fs::Extent> clean;
      for (const auto& extent : extents) {
        if (!clean.empty() && extent.offset < clean.back().end()) continue;
        clean.push_back(extent);
      }
      extents = std::move(clean);
      break;
    }
  }
  return extents;
}

struct Param {
  std::uint64_t seed;
  int style;
  int nranks;
  int groups;  // 0 = baseline ext2ph
};

class RandomPatternTest : public ::testing::TestWithParam<Param> {};

TEST_P(RandomPatternTest, CollectiveWriteThenReadRoundTrips) {
  const auto [seed, style, nranks, groups] = GetParam();
  mpi::World world(machine::MachineModel::jaguar(nranks));
  mpiio::Hints hints;
  hints.parcoll_num_groups = groups;
  hints.parcoll_min_group_size = 2;
  hints.cb_buffer_size = 2048;  // several cycles
  bool ok = true;

  world.run([&](mpi::Rank& self) {
    const auto extents = random_extents(seed, self.rank(), nranks, style);
    std::uint64_t bytes = 0;
    for (const auto& extent : extents) bytes += extent.length;

    const int fs_id = self.world().fs().open("prop.dat", 8, 4096);
    mpiio::DirectTarget target(self.world().fs(), fs_id);
    mpiio::Ext2phOptions options;
    options.cb_buffer_size = hints.cb_buffer_size;

    std::vector<std::byte> packed(bytes);
    workloads::fill_stream(packed.data(), extents, seed);
    if (groups == 0) {
      // Plain ext2ph straight at the engine.
      std::vector<int> all(static_cast<std::size_t>(nranks));
      std::iota(all.begin(), all.end(), 0);
      options.aggregators = all;
      ext2ph_write(self, self.comm_world(), target,
                   mpiio::CollRequest{extents, packed.data()}, options);
    } else {
      // Through the full ParColl stack with a synthetic per-rank view.
      mpiio::FileHandle file(self, self.comm_world(), "prop-view.dat", hints);
      std::vector<dtype::Segment> segs;
      for (const auto& extent : extents) {
        segs.push_back(dtype::Segment{
            static_cast<std::int64_t>(extent.offset), extent.length});
      }
      std::uint64_t span = 1;
      for (const auto& extent : extents) span = std::max(span, extent.end());
      // All ranks must agree on nothing here: views are per rank.
      if (!segs.empty()) {
        file.set_view(0, 1,
                      dtype::Datatype::from_segments(
                          std::move(segs), 0, static_cast<std::int64_t>(span)));
      }
      std::vector<std::byte> user(bytes);
      if (bytes > 0) {
        workloads::fill_buffer_for_extents(user.data(),
                                           dtype::Datatype::bytes(bytes), 1,
                                           extents, seed);
      }
      core::write_at_all(file, 0, user.empty() ? nullptr : user.data(),
                         bytes > 0 ? 1 : 0, dtype::Datatype::bytes(bytes));
      mpi::barrier(self, self.comm_world());
      auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
      ok = ok && store &&
           workloads::verify_store(*store, file.fs_id(), extents, seed);
      // Collective read-back through the same stack.
      std::vector<std::byte> back(bytes);
      core::read_at_all(file, 0, back.empty() ? nullptr : back.data(),
                        bytes > 0 ? 1 : 0, dtype::Datatype::bytes(bytes));
      ok = ok && (bytes == 0 ||
                  workloads::check_buffer_for_extents(
                      back.data(), dtype::Datatype::bytes(bytes), 1, extents,
                      seed));
      file.close();
      return;
    }
    mpi::barrier(self, self.comm_world());
    auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
    ok = ok && store && workloads::verify_store(*store, fs_id, extents, seed);
  });
  EXPECT_TRUE(ok) << "seed=" << seed << " style=" << style
                  << " nranks=" << nranks << " groups=" << groups;
}

std::vector<Param> make_params() {
  std::vector<Param> params;
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    for (int style : {0, 1, 2}) {
      for (int nranks : {5, 12}) {
        for (int groups : {0, 3, core::kAutoGroups}) {
          params.push_back(Param{seed, style, nranks, groups});
        }
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomPatternTest, ::testing::ValuesIn(make_params()),
    [](const ::testing::TestParamInfo<Param>& info) {
      const auto& p = info.param;
      return "s" + std::to_string(p.seed) + "_y" + std::to_string(p.style) +
             "_n" + std::to_string(p.nranks) + "_g" +
             std::to_string(p.groups < 0 ? 999 : p.groups);
    });

TEST(RandomPatternEquivalence, ParcollFileEqualsBaselineFile) {
  // For a fixed random pattern, the bytes on disk must be identical under
  // the baseline, ParColl-4, and ParColl-auto.
  const auto snapshot = [&](int groups) {
    mpi::World world(machine::MachineModel::jaguar(8));
    mpiio::Hints hints;
    hints.parcoll_num_groups = groups;
    hints.parcoll_min_group_size = 2;
    hints.cb_buffer_size = 1024;
    std::vector<std::byte> contents;
    world.run([&](mpi::Rank& self) {
      const auto extents = random_extents(77, self.rank(), 8, 1);
      std::uint64_t bytes = 0;
      for (const auto& extent : extents) bytes += extent.length;
      mpiio::FileHandle file(self, self.comm_world(), "equiv.dat", hints);
      std::vector<dtype::Segment> segs;
      std::uint64_t span = 1;
      for (const auto& extent : extents) {
        segs.push_back(dtype::Segment{
            static_cast<std::int64_t>(extent.offset), extent.length});
        span = std::max(span, extent.end());
      }
      file.set_view(0, 1,
                    dtype::Datatype::from_segments(
                        std::move(segs), 0, static_cast<std::int64_t>(span)));
      std::vector<std::byte> user(bytes);
      workloads::fill_buffer_for_extents(
          user.data(), dtype::Datatype::bytes(bytes), 1, extents, 77);
      core::write_at_all(file, 0, user.data(), 1,
                         dtype::Datatype::bytes(bytes));
      mpi::barrier(self, self.comm_world());
      if (self.rank() == 0) {
        auto* store =
            dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
        contents = store->contents(file.fs_id());
      }
      file.close();
    });
    return contents;
  };
  const auto baseline = snapshot(0);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(snapshot(4), baseline);
  EXPECT_EQ(snapshot(core::kAutoGroups), baseline);
}

}  // namespace
}  // namespace parcoll
