// Model-sanity regression tests: the physical properties and calibration
// shapes the figure benches depend on, encoded as assertions so future
// changes cannot silently break the reproduction. These use reduced scales
// to stay fast; the figure benches exercise the paper-scale versions.
#include <gtest/gtest.h>

#include <numeric>

#include "fs/lustre.hpp"
#include "mpiio/ext2ph.hpp"
#include "mpi/collectives.hpp"
#include "sim/engine.hpp"
#include "workloads/btio.hpp"
#include "workloads/flashio.hpp"
#include "workloads/ior.hpp"
#include "workloads/tileio.hpp"

namespace parcoll {
namespace {

using workloads::Impl;
using workloads::RunSpec;

RunSpec phantom(Impl impl, int groups = 0) {
  RunSpec spec;
  spec.impl = impl;
  spec.parcoll_groups = groups;
  spec.byte_true = false;
  return spec;
}

TEST(ModelSanity, MoreOstsMeanMoreBandwidth) {
  const auto bandwidth = [](int osts) {
    sim::Engine engine;
    machine::StorageParams params;
    params.num_osts = osts;
    params.default_stripe_count = osts;
    params.slow_epoch_seconds = 0;
    params.jitter_frac = 0;
    fs::LustreSim fs(engine, params, fs::StoreMode::Phantom);
    double elapsed = 0;
    engine.spawn([&] {
      const int id = fs.open("f");
      const fs::Extent extent{0, 256ull << 20};
      const double t0 = engine.now();
      fs.write(0, id, std::span(&extent, 1), nullptr);
      elapsed = engine.now() - t0;
    });
    engine.run();
    return static_cast<double>(256ull << 20) / elapsed;
  };
  EXPECT_GT(bandwidth(16), 1.9 * bandwidth(8));
  // A single client cannot drive many OSTs at full speed (RPC issue
  // serialization), so wide stripes scale sublinearly — but still up.
  EXPECT_GT(bandwidth(64), 1.5 * bandwidth(32));
}

TEST(ModelSanity, CollectiveCostsAreMonotoneInGroupSize) {
  const machine::NetworkParams net;
  for (auto kind : {mpi::CollKind::Barrier, mpi::CollKind::Allgather,
                    mpi::CollKind::Alltoall, mpi::CollKind::Allreduce}) {
    double previous = -1;
    for (int nranks : {2, 8, 32, 128, 512}) {
      const double cost = mpi::coll_cost(net, kind, nranks, 64,
                                         64ull * nranks);
      EXPECT_GT(cost, previous) << mpi::to_string(kind) << " at " << nranks;
      previous = cost;
    }
  }
}

TEST(ModelSanity, AlltoallGrowsSuperlinearly) {
  // The wall's driver: per-rank alltoall cost grows faster than linearly.
  const machine::NetworkParams net;
  const double at128 = mpi::coll_cost(net, mpi::CollKind::Alltoall, 128,
                                      4 * 128, 4ull * 128 * 128);
  const double at512 = mpi::coll_cost(net, mpi::CollKind::Alltoall, 512,
                                      4 * 512, 4ull * 512 * 512);
  EXPECT_GT(at512, 4.5 * at128);  // superlinear (x4 ranks -> >x4.5 cost)
}

TEST(ModelSanity, TileIoParcollBeatsBaselineAndPeaksAtCleanSplits) {
  // Reduced-scale Fig 7: 64 ranks, 8 tile rows.
  const int nprocs = 64;
  const auto config = workloads::TileIOConfig::paper(nprocs);
  const auto base = workloads::run_tileio(config, nprocs,
                                          phantom(Impl::Ext2ph), true);
  const auto at8 = workloads::run_tileio(config, nprocs,
                                         phantom(Impl::ParColl, 8), true);
  EXPECT_GT(at8.bandwidth(), 1.5 * base.bandwidth());
  // Sync share falls under partitioning (Fig 8's claim).
  EXPECT_LT(at8.sum[mpi::TimeCat::Sync], base.sum[mpi::TimeCat::Sync]);
}

TEST(ModelSanity, IorParcollScalesWithGroups) {
  workloads::IorConfig config;
  config.block_size = 64ull << 20;
  const int nprocs = 64;
  const auto base = workloads::run_ior(config, nprocs,
                                       phantom(Impl::Ext2ph), true);
  const auto at2 = workloads::run_ior(config, nprocs,
                                      phantom(Impl::ParColl, 2), true);
  const auto at8 = workloads::run_ior(config, nprocs,
                                      phantom(Impl::ParColl, 8), true);
  EXPECT_GT(at2.bandwidth(), base.bandwidth());
  EXPECT_GT(at8.bandwidth(), at2.bandwidth());
}

TEST(ModelSanity, BtioParcollWithRowGroupsBeatsBaseline) {
  // Needs the paper's scale: class-C granularity (grid 162) and enough
  // ranks for the baseline's wall to bite (the crossover sits near 200
  // ranks — the same granularity tradeoff the paper reports).
  workloads::BtIOConfig config;
  config.nsteps = 1;
  const int nprocs = 256;  // nc = 16
  const auto base = workloads::run_btio(config, nprocs,
                                        phantom(Impl::Ext2ph), true);
  auto spec = phantom(Impl::ParColl, 16);
  spec.cb_nodes = 16;
  const auto parcoll = workloads::run_btio(config, nprocs, spec, true);
  EXPECT_GT(parcoll.bandwidth(), base.bandwidth());
  EXPECT_EQ(parcoll.stats.view_switches, 1u);  // pattern (c)
}

TEST(ModelSanity, FlashSievingIsSlowerThanCollective) {
  workloads::FlashConfig config;
  config.nvars = 4;
  config.nblocks = 16;
  config.nxb = 16;
  const int nprocs = 64;
  const auto coll = workloads::run_flashio(config, nprocs,
                                           phantom(Impl::Ext2ph), true);
  const auto sieved = workloads::run_flashio(config, nprocs,
                                             phantom(Impl::Sieving), true);
  EXPECT_GT(sieved.elapsed, 2.0 * coll.elapsed);
}

TEST(ModelSanity, HeavierTailsSlowTheBaselineMore) {
  const auto config = workloads::TileIOConfig::paper(32);
  const auto with_tails = workloads::run_tileio(config, 32,
                                                phantom(Impl::Ext2ph), true);
  auto calm = phantom(Impl::Ext2ph);
  calm.tweak_model = [](machine::MachineModel& model) {
    model.storage.slow_epoch_seconds = 0;
    model.storage.jitter_frac = 0;
  };
  const auto without = workloads::run_tileio(config, 32, calm, true);
  EXPECT_GT(with_tails.elapsed, without.elapsed);
  // And the tails specifically inflate synchronization (straggler waits).
  EXPECT_GT(with_tails.sum[mpi::TimeCat::Sync],
            without.sum[mpi::TimeCat::Sync]);
}

TEST(ModelSanity, StripeAlignedDomainsReduceLockRevocations) {
  // With unaligned domains, neighbouring aggregators share boundary
  // stripes and revoke each other's grants; alignment removes that.
  const auto run = [](std::uint64_t alignment) {
    mpi::World world(machine::MachineModel::jaguar(16), false);
    std::uint64_t locks = 0;
    world.run([&](mpi::Rank& self) {
      const int fs_id = self.world().fs().open("align.dat");
      mpiio::DirectTarget target(self.world().fs(), fs_id);
      // Each rank writes a large contiguous block; unaligned domains make
      // neighbours share stripes.
      const std::vector<fs::Extent> extents{
          {static_cast<std::uint64_t>(self.rank()) * (9ull << 20), 9ull << 20}};
      mpiio::Ext2phOptions options;
      options.cb_buffer_size = 16ull << 20;
      options.fd_alignment = alignment;
      std::vector<int> all(16);
      std::iota(all.begin(), all.end(), 0);
      options.aggregators = all;
      ext2ph_write(self, self.comm_world(), target,
                   mpiio::CollRequest{extents, nullptr}, options);
      mpi::barrier(self, self.comm_world());
      if (self.rank() == 0) locks = self.world().fs().total_lock_switches();
    });
    return locks;
  };
  EXPECT_LT(run(4ull << 20), run(0));
}

TEST(ModelSanity, NetworkSerializationCausesIncast) {
  // Many-to-one transfers take ~N times one transfer (receiver NIC).
  auto model = machine::MachineModel::jaguar(16);
  net::Network network(model.topology, model.net, model.mem);
  double last = 0;
  for (int src = 1; src < 8; ++src) {
    last = network.transfer(0.0, src, 0, 1 << 20);
  }
  const double single =
      model.net.p2p_latency + (1 << 20) / model.net.p2p_bandwidth;
  EXPECT_NEAR(last, 7 * single, single * 0.01);
}

}  // namespace
}  // namespace parcoll
