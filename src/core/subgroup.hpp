// Subgroup formation: FA partition + sub-communicator + aggregator
// distribution, bundled for one collective call.
#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/file_area.hpp"
#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "mpiio/hints.hpp"

namespace parcoll::core {

/// The comm-global part of a subgroup plan — identical on every member of
/// the establishing collective, so every member shares one immutable copy
/// instead of holding its own P-sized vectors (quadratic on wide comms).
struct SharedGroupInfo {
  FileAreaPlan fa;
  /// Aggregators of every group, as parent-comm-local ranks.
  std::vector<std::vector<int>> aggs_per_group;
};

struct SubgroupPlan {
  /// Comm-global plan parts, one copy shared by all members.
  std::shared_ptr<const SharedGroupInfo> global;
  /// This rank's subgroup communicator (== the parent comm when the plan
  /// degenerates to a single group).
  mpi::Comm subcomm;
  int my_group = 0;
  /// Aggregators of my subgroup, as subcomm-local ranks (sorted).
  std::vector<int> sub_aggregators;

  [[nodiscard]] const FileAreaPlan& fa() const { return global->fa; }
  [[nodiscard]] const std::vector<std::vector<int>>& aggs_per_group() const {
    return global->aggs_per_group;
  }
};

/// Form subgroups for a collective call. Collective over `comm`: every
/// member must call with the same `accesses` (the allgathered per-rank
/// access summaries, typically the shared view from allgather_shared) and
/// hints; they all receive the identical plan, with the comm-global parts
/// computed once and shared.
SubgroupPlan form_subgroups(
    mpi::Rank& self, const mpi::Comm& comm,
    const std::shared_ptr<const std::vector<RankAccess>>& accesses,
    const mpiio::Hints& hints);

/// Degraded-mode aggregator re-election: replace every aggregator whose
/// remaining scheduled stall at `agreed_now` exceeds
/// plan.agg_stall_threshold by the first healthy non-aggregator member of
/// the subgroup (falling back to keeping the stalled one when no healthy
/// substitute exists). `sub_aggregators` and the result are subcomm-local
/// ranks. Pure function of its arguments, so every subgroup member that
/// calls it with the same agreed time computes the identical roster;
/// `replaced` (optional) receives the number of substitutions.
std::vector<int> reelect_stalled_aggregators(
    const mpi::Comm& subcomm, const std::vector<int>& sub_aggregators,
    const fault::FaultPlan& plan, double agreed_now, int* replaced = nullptr);

}  // namespace parcoll::core
