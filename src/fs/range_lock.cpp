#include "fs/range_lock.hpp"

#include <algorithm>
#include <stdexcept>

namespace parcoll::fs {

bool RangeLockManager::conflicts(int file_id, int owner,
                                 const Extent& range) const {
  auto it = held_.find(file_id);
  if (it == held_.end()) return false;
  for (const Held& held : it->second) {
    if (held.owner == owner) continue;
    if (held.range.offset < range.end() && range.offset < held.range.end()) {
      return true;
    }
  }
  return false;
}

void RangeLockManager::server_transaction() {
  // The lock service is a single server: operations queue serially.
  const double start = std::max(engine_.now(), server_busy_until_);
  server_busy_until_ = start + server_op_;
  engine_.sleep_until(server_busy_until_ + roundtrip_);
}

void RangeLockManager::lock(int owner, int file_id, const Extent& range) {
  server_transaction();
  while (conflicts(file_id, owner, range)) {
    waiters_.wait(engine_, "file range lock");
  }
  held_[file_id].push_back(Held{range, owner});
}

void RangeLockManager::unlock(int owner, int file_id, const Extent& range) {
  server_transaction();
  auto it = held_.find(file_id);
  if (it == held_.end()) {
    throw std::logic_error("RangeLockManager::unlock: nothing held");
  }
  auto& locks = it->second;
  const auto match = std::find_if(locks.begin(), locks.end(),
                                  [&](const Held& held) {
                                    return held.owner == owner &&
                                           held.range == range;
                                  });
  if (match == locks.end()) {
    throw std::logic_error("RangeLockManager::unlock: lock not held");
  }
  locks.erase(match);
  // Wake everyone; non-eligible waiters re-check and re-sleep.
  waiters_.notify_all(engine_);
}

std::size_t RangeLockManager::held_count(int file_id) const {
  auto it = held_.find(file_id);
  return it == held_.end() ? 0 : it->second.size();
}

}  // namespace parcoll::fs
