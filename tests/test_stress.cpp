// Stress tests: high message counts, deep collective sequences over
// randomly nested communicators, thousands of fibers, and a full-stack
// soak combining every layer.
#include <gtest/gtest.h>

#include <numeric>

#include "core/parcoll.hpp"
#include "mpi/collectives.hpp"
#include "mpi/p2p.hpp"
#include "mpiio/file.hpp"
#include "sim/random.hpp"
#include "workloads/pattern.hpp"

namespace parcoll {
namespace {

TEST(Stress, ThousandsOfFibers) {
  sim::Engine engine;
  long sum = 0;
  for (int i = 0; i < 4000; ++i) {
    engine.spawn(
        [&, i] {
          engine.sleep((i % 13) * 1e-6);
          sum += i;
        },
        /*stack_bytes=*/64 * 1024);
  }
  engine.run();
  EXPECT_EQ(sum, 4000L * 3999 / 2);
}

TEST(Stress, ManyMessagesAllToAllPairs) {
  // Every rank sends 50 messages to every other rank; ordering per pair
  // must hold and every payload must arrive exactly once.
  constexpr int kRanks = 8;
  constexpr int kMsgs = 50;
  mpi::World world(machine::MachineModel::jaguar(kRanks));
  std::vector<long> sums(kRanks, 0);
  world.run([&](mpi::Rank& self) {
    auto& p2p = self.world().p2p();
    std::vector<mpi::Request> requests;
    std::vector<int> inbox(static_cast<std::size_t>(kRanks) * kMsgs, -1);
    std::vector<int> outbox(static_cast<std::size_t>(kRanks) * kMsgs);
    for (int peer = 0; peer < kRanks; ++peer) {
      if (peer == self.rank()) continue;
      for (int m = 0; m < kMsgs; ++m) {
        auto& slot = inbox[static_cast<std::size_t>(peer) * kMsgs + m];
        requests.push_back(
            p2p.irecv(self, self.comm_world(), peer, m, &slot, sizeof(int)));
      }
    }
    for (int peer = 0; peer < kRanks; ++peer) {
      if (peer == self.rank()) continue;
      for (int m = 0; m < kMsgs; ++m) {
        auto& value = outbox[static_cast<std::size_t>(peer) * kMsgs + m];
        value = self.rank() * 10000 + peer * 100 + m;
        requests.push_back(
            p2p.isend(self, self.comm_world(), peer, m, &value, sizeof(int)));
      }
    }
    p2p.waitall(self, requests);
    long sum = 0;
    for (int peer = 0; peer < kRanks; ++peer) {
      if (peer == self.rank()) continue;
      for (int m = 0; m < kMsgs; ++m) {
        EXPECT_EQ(inbox[static_cast<std::size_t>(peer) * kMsgs + m],
                  peer * 10000 + self.rank() * 100 + m);
        sum += inbox[static_cast<std::size_t>(peer) * kMsgs + m];
      }
    }
    sums[self.rank()] = sum;
  });
  for (long sum : sums) EXPECT_GT(sum, 0);
}

TEST(Stress, DeepCollectiveSequencesOverNestedComms) {
  // 200 collectives interleaved across the world comm and two generations
  // of nested splits; sequence bookkeeping must never cross wires.
  constexpr int kRanks = 12;
  mpi::World world(machine::MachineModel::jaguar(kRanks));
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    const mpi::Comm half =
        mpi::comm_split(self, self.comm_world(), self.rank() % 2, self.rank());
    const mpi::Comm quarter =
        mpi::comm_split(self, half, self.rank() % 4 / 2, self.rank());
    for (int round = 0; round < 200; ++round) {
      switch (round % 3) {
        case 0: {
          const auto all =
              mpi::allgather(self, self.comm_world(), round * 100 + self.rank());
          if (all[3] != round * 100 + 3) ok = false;
          break;
        }
        case 1: {
          const int expected_size = half.size();
          const int sum = mpi::allreduce_sum(self, half, 1);
          if (sum != expected_size) ok = false;
          break;
        }
        default: {
          const int max = mpi::allreduce_max(self, quarter, self.rank());
          if (max < self.rank()) ok = false;
          break;
        }
      }
    }
  });
  EXPECT_TRUE(ok);
}

TEST(Stress, CollectiveKindMismatchIsDetected) {
  mpi::World world(machine::MachineModel::jaguar(2));
  EXPECT_THROW(world.run([&](mpi::Rank& self) {
                 if (self.rank() == 0) {
                   mpi::barrier(self, self.comm_world());
                 } else {
                   mpi::allreduce_sum(self, self.comm_world(), 1);
                 }
               }),
               std::logic_error);
}

TEST(Stress, FullStackSoak) {
  // Every layer in one program: splits, collectives, sieving, async I/O,
  // collective I/O with ParColl-auto across three files, byte-verified.
  constexpr int kRanks = 12;
  mpi::World world(machine::MachineModel::jaguar(kRanks));
  mpiio::Hints hints;
  hints.set("parcoll_num_groups", "auto");
  hints.parcoll_min_group_size = 2;
  hints.cb_buffer_size = 2048;
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    for (int round = 0; round < 3; ++round) {
      const std::string name = "soak_" + std::to_string(round);
      mpiio::FileHandle file(self, self.comm_world(), name, hints);
      const auto slot = dtype::Datatype::resized(
          dtype::Datatype::bytes(96), 0, 96ull * kRanks);
      file.set_view(static_cast<std::uint64_t>(self.rank()) * 96, 96, slot);
      const std::uint64_t bytes = 96 * 8;
      const auto extents = file.view().map(0, bytes);
      std::vector<std::byte> data(bytes);
      const std::uint64_t salt = 900 + round;
      workloads::fill_buffer_for_extents(
          data.data(), dtype::Datatype::bytes(bytes), 1, extents, salt);
      core::write_at_all(file, 0, data.data(), 1,
                         dtype::Datatype::bytes(bytes));
      mpi::barrier(self, self.comm_world());
      auto* store =
          dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
      ok = ok && store &&
           workloads::verify_store(*store, file.fs_id(), extents, salt);
      std::vector<std::byte> back(bytes);
      core::read_at_all(file, 0, back.data(), 1,
                        dtype::Datatype::bytes(bytes));
      ok = ok && workloads::check_buffer_for_extents(
                     back.data(), dtype::Datatype::bytes(bytes), 1, extents,
                     salt);
      file.close();
    }
  });
  EXPECT_TRUE(ok);
}

TEST(Stress, DeterministicUnderHeavyConcurrency) {
  const auto run_once = [] {
    mpi::World world(machine::MachineModel::jaguar(24));
    world.run([&](mpi::Rank& self) {
      auto& p2p = self.world().p2p();
      std::vector<mpi::Request> requests;
      std::vector<int> inbox(24, 0);
      for (int peer = 0; peer < 24; ++peer) {
        if (peer == self.rank()) continue;
        requests.push_back(p2p.irecv(self, self.comm_world(), peer, 0,
                                     &inbox[peer], sizeof(int)));
      }
      const int value = self.rank();
      for (int peer = 0; peer < 24; ++peer) {
        if (peer == self.rank()) continue;
        requests.push_back(
            p2p.isend(self, self.comm_world(), peer, 0, &value, sizeof(int)));
      }
      p2p.waitall(self, requests);
      mpi::barrier(self, self.comm_world());
    });
    return world.elapsed();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace parcoll
