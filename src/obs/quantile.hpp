// Log-bucketed quantile histogram (HDR-histogram style).
//
// The fixed-bucket HistogramData of the original metrics layer answers
// "how many observations fell under 1 ms" but cannot answer "what is the
// p99.9" with useful precision: the decade buckets are a factor of 10
// wide. QuantileHistogram keeps geometrically spaced buckets a factor of
// kGamma = 1.02 apart, so any reported quantile is within ~1% relative
// error of the true order statistic, at a fixed memory cost (~1.6k
// buckets spanning 1 ns .. ~22 h). The latency instrumentation on the
// RPC, OST-service, collective-cycle, and drain-wait paths records into
// these; the run export, wall report, and timeline carry the
// p50/p95/p99/p99.9 summaries.
//
// Recording is pure arithmetic on host memory: it never reads or advances
// the simulated clock, so instrumented runs stay bit-identical.
#pragma once

#include <cstdint>
#include <vector>

namespace parcoll::obs {

class JsonValue;

class QuantileHistogram {
 public:
  /// Bucket width factor: bucket i spans [kMin * γ^i, kMin * γ^(i+1)),
  /// giving a worst-case relative error of (γ-1)/2 ≈ 1% at the midpoint.
  static constexpr double kGamma = 1.02;
  /// Smallest resolvable value (seconds): anything in (0, kMin] lands in
  /// bucket 0. Values <= 0 are counted separately.
  static constexpr double kMin = 1e-9;
  /// log(kMax/kMin)/log(γ) buckets cover kMin .. ~8e4 s (a full day of
  /// virtual time); larger values clamp into the last bucket.
  static constexpr std::size_t kBuckets = 1552;

  void observe(double value);
  void merge(const QuantileHistogram& other);

  /// The value at quantile `q` in [0, 1]: an upper-ish estimate within
  /// ~1% relative error, clamped to the observed [min, max]. Returns 0
  /// for an empty histogram.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// {"count":…, "sum_s":…, "min_s":…, "max_s":…, "p50_s":…, "p95_s":…,
  ///  "p99_s":…, "p999_s":…} — the summary the exporters embed.
  [[nodiscard]] JsonValue summary_json() const;

 private:
  [[nodiscard]] static std::size_t bucket_of(double value);
  /// Representative value of bucket i (geometric midpoint).
  [[nodiscard]] static double bucket_value(std::size_t i);

  /// Sparse until first use past the zero bucket; sized kBuckets + 1 with
  /// the extra slot counting non-positive observations.
  std::vector<std::uint32_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace parcoll::obs
