// Ablation — the collective wall on other file systems (the paper's future
// work: "a comprehensive study on the collective wall problem over other
// massively parallel platforms with different underlying file systems,
// such as GPFS and PVFS").
//
// Re-runs the Tile-IO comparison on three storage personalities. The wall
// is a synchronization phenomenon, so ParColl should help everywhere; the
// file-system-specific effects (lock revocation style, fragmentation
// penalty) shift the magnitude.
#include "bench/common.hpp"
#include "workloads/tileio.hpp"

int main(int argc, char** argv) {
  const bool smoke = parcoll::bench::smoke_requested(argc, argv);
  using namespace parcoll;
  using namespace parcoll::bench;

  BenchReport report("abl_filesystems", argc, argv);
  header("Ablation: file systems",
         "Tile-IO (P=256), baseline vs ParColl-32 per storage personality");
  std::printf("  %-12s %14s %14s %8s\n", "storage", "Cray (MiB/s)",
              "ParColl (MiB/s)", "ratio");

  const int nprocs = parcoll::bench::scaled(smoke, 256);
  const auto config = workloads::TileIOConfig::paper(nprocs);

  struct Personality {
    const char* name;
    machine::MachineModel (*make)(int, machine::Mapping);
  };
  const Personality personalities[] = {
      {"lustre",
       +[](int n, machine::Mapping m) {
         return machine::MachineModel::jaguar(n, m);
       }},
      {"gpfs", &machine::MachineModel::gpfs_like},
      {"pvfs", &machine::MachineModel::pvfs_like},
  };
  for (const auto& personality : personalities) {
    auto base = baseline_spec();
    auto make = personality.make;
    base.tweak_model = [make](machine::MachineModel& model) {
      model = make(model.topology.nranks(), model.topology.mapping());
    };
    auto parcoll = parcoll_spec(32);
    parcoll.tweak_model = base.tweak_model;
    const auto b = workloads::run_tileio(config, nprocs, base, true);
    const auto p = workloads::run_tileio(config, nprocs, parcoll, true);
    std::printf("  %-12s %14.1f %14.1f %7.2fx\n", personality.name,
                b.bandwidth_mib(), p.bandwidth_mib(),
                p.bandwidth() / b.bandwidth());
    report.add(std::string(personality.name) + "/cray", nprocs, b);
    report.add(std::string(personality.name) + "/parcoll-32", nprocs, p);
  }
  footnote("the wall is synchronization: partitioning pays on every");
  footnote("storage personality, with file-system-specific magnitudes");
  return 0;
}
