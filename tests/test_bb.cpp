// Burst-buffer staging tier: bb-off inertness, content equivalence of
// write-behind against the synchronous path across workloads and drain
// policies, capacity-pressure spill accounting, drain-failure replay
// (staged data survives OST outages with no loss and no double-write),
// and the wall report's hidden/exposed drain attribution.
#include <gtest/gtest.h>

#include <string>

#include "bb/options.hpp"
#include "core/file_area.hpp"
#include "fault/fault.hpp"
#include "mpiio/hints.hpp"
#include "obs/wall_report.hpp"
#include "workloads/btio.hpp"
#include "workloads/flashio.hpp"
#include "workloads/ior.hpp"
#include "workloads/tileio.hpp"

namespace parcoll::workloads {
namespace {

RunSpec tiny_spec() {
  RunSpec spec;
  spec.impl = Impl::ParColl;
  spec.parcoll_groups = 2;
  spec.min_group_size = 2;
  spec.byte_true = true;
  return spec;
}

TileIOConfig tiny_tileio() {
  TileIOConfig config;
  config.tiles_x = 4;
  config.tile_w = 8;
  config.tile_h = 4;
  config.elem_size = 8;
  return config;
}

// --- hints plumbing --------------------------------------------------------

TEST(BbHints, ParseRoundTripAndValidation) {
  mpiio::Hints hints;
  hints.set("bb", "enable");
  hints.set("bb_capacity", "1048576");
  hints.set("bb_drain", "watermark");
  hints.set("bb_hi_watermark", "0.75");
  hints.set("bb_lo_watermark", "0.25");
  hints.set("bb_deadline", "0.01");
  EXPECT_TRUE(hints.bb.enabled);
  EXPECT_EQ(hints.bb.capacity, 1048576u);
  EXPECT_EQ(hints.bb.policy, bb::DrainPolicy::Watermark);
  EXPECT_EQ(hints.get("bb"), "enable");
  EXPECT_EQ(hints.get("bb_drain"), "watermark");
  hints.validate(8);

  hints.set("bb", "disable");
  EXPECT_FALSE(hints.bb.enabled);

  EXPECT_THROW(hints.set("bb", "maybe"), std::invalid_argument);
  EXPECT_THROW(hints.set("bb_drain", "psychic"), std::invalid_argument);
  EXPECT_THROW(hints.set("bb_capacity", "0"), std::invalid_argument);
  EXPECT_THROW(hints.set("bb_deadline", "0"), std::invalid_argument);

  // Inverted watermarks only surface at validate time (set order free).
  mpiio::Hints inverted;
  inverted.set("bb", "enable");
  inverted.set("bb_hi_watermark", "0.2");
  inverted.set("bb_lo_watermark", "0.8");
  EXPECT_THROW(inverted.validate(8), std::invalid_argument);
}

TEST(BbHints, RejectsImpossibleValuesWithClearMessages) {
  mpiio::Hints hints;
  // Negative and zero capacities are rejected at set time — stoull would
  // silently wrap a negative string to a huge arena, so the sign is
  // checked before parsing.
  for (const char* bad : {"0", "-1", "-1048576"}) {
    try {
      hints.set("bb_capacity", bad);
      FAIL() << "bb_capacity accepted " << bad;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("bb_capacity"),
                std::string::npos)
          << error.what();
      EXPECT_NE(std::string(error.what()).find("positive"), std::string::npos)
          << error.what();
    }
  }
  // Deadlines must be strictly positive.
  for (const char* bad : {"0", "-0.5"}) {
    EXPECT_THROW(hints.set("bb_deadline", bad), std::invalid_argument)
        << "bb_deadline accepted " << bad;
  }
  // Watermarks are fractions of the arena: [0, 1] at set time.
  for (const char* bad : {"-0.1", "1.5"}) {
    EXPECT_THROW(hints.set("bb_hi_watermark", bad), std::invalid_argument);
    EXPECT_THROW(hints.set("bb_lo_watermark", bad), std::invalid_argument);
  }
  // Equal watermarks leave no hysteresis band: rejected like inversion.
  mpiio::Hints equal;
  equal.set("bb", "enable");
  equal.set("bb_hi_watermark", "0.5");
  equal.set("bb_lo_watermark", "0.5");
  try {
    equal.validate(8);
    FAIL() << "equal watermarks validated";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("watermark"), std::string::npos)
        << error.what();
  }
  // The boundary values themselves are fine.
  mpiio::Hints ok;
  ok.set("bb", "enable");
  ok.set("bb_lo_watermark", "0.0");
  ok.set("bb_hi_watermark", "1.0");
  EXPECT_NO_THROW(ok.validate(8));
}

// --- bb off: bit-identity --------------------------------------------------

TEST(BurstBuffer, DisabledIsBitIdenticalAndInert) {
  const auto config = tiny_tileio();
  const auto base = run_tileio(config, 8, tiny_spec(), true);

  // Disabled bb with wild knob values must not perturb the run at all:
  // same bytes, same digest, same simulated clock.
  RunSpec knobs = tiny_spec();
  knobs.bb.enabled = false;
  knobs.bb.capacity = 1;  // would spill everything if it were live
  knobs.bb.policy = bb::DrainPolicy::Deadline;
  const auto off = run_tileio(config, 8, knobs, true);
  EXPECT_EQ(off.file_digest, base.file_digest);
  EXPECT_DOUBLE_EQ(off.elapsed, base.elapsed);
  EXPECT_DOUBLE_EQ(off.total_elapsed, base.total_elapsed);

  // No staging artifacts anywhere in the off run.
  EXPECT_EQ(base.stats.bb_staged_segments, 0u);
  EXPECT_EQ(base.stats.bb_spills, 0u);
  EXPECT_DOUBLE_EQ(base.stats.time[mpi::TimeCat::Drain], 0.0);
  EXPECT_DOUBLE_EQ(base.sum[mpi::TimeCat::DrainWait], 0.0);
  const std::string summary = base.stats.summary("tile.out");
  EXPECT_EQ(summary.find("bb:"), std::string::npos);
  EXPECT_EQ(summary.find("drain="), std::string::npos);
}

// --- content equivalence ---------------------------------------------------

TEST(BurstBuffer, DigestEqualAcrossWorkloads) {
  const auto with_bb = [](RunSpec spec) {
    spec.bb.enabled = true;
    return spec;
  };
  {
    const auto config = tiny_tileio();
    const auto off = run_tileio(config, 8, tiny_spec(), true);
    const auto on = run_tileio(config, 8, with_bb(tiny_spec()), true);
    EXPECT_TRUE(on.verified);
    EXPECT_EQ(on.file_digest, off.file_digest) << "tileio";
    EXPECT_GT(on.stats.bb_staged_segments, 0u);
  }
  {
    IorConfig config;
    config.block_size = 16 << 10;
    config.xfer_size = 4 << 10;
    const auto off = run_ior(config, 8, tiny_spec(), true);
    const auto on = run_ior(config, 8, with_bb(tiny_spec()), true);
    EXPECT_TRUE(on.verified);
    EXPECT_EQ(on.file_digest, off.file_digest) << "ior";
  }
  {
    BtIOConfig config;
    config.grid = 12;
    config.nsteps = 2;
    const auto off = run_btio(config, 9, tiny_spec(), true);
    const auto on = run_btio(config, 9, with_bb(tiny_spec()), true);
    EXPECT_TRUE(on.verified);
    EXPECT_EQ(on.file_digest, off.file_digest) << "btio";
  }
  {
    FlashConfig config;
    config.nxb = 4;
    config.nguard = 1;
    config.nblocks = 2;
    config.nvars = 2;
    const auto off = run_flashio(config, 8, tiny_spec(), true);
    const auto on = run_flashio(config, 8, with_bb(tiny_spec()), true);
    EXPECT_TRUE(on.verified);
    EXPECT_EQ(on.file_digest, off.file_digest) << "flashio";
  }
}

TEST(BurstBuffer, EveryDrainPolicyLandsTheSameBytes) {
  const auto config = tiny_tileio();
  const auto off = run_tileio(config, 8, tiny_spec(), true);
  for (const bb::DrainPolicy policy :
       {bb::DrainPolicy::Immediate, bb::DrainPolicy::Watermark,
        bb::DrainPolicy::Deadline, bb::DrainPolicy::Arbitrate}) {
    RunSpec spec = tiny_spec();
    spec.bb.enabled = true;
    spec.bb.policy = policy;
    const auto on = run_tileio(config, 8, spec, true);
    EXPECT_TRUE(on.verified) << bb::to_string(policy);
    EXPECT_EQ(on.file_digest, off.file_digest) << bb::to_string(policy);
  }
}

// --- capacity pressure -----------------------------------------------------

TEST(BurstBuffer, CapacityPressureSpillsAndStaysCorrect) {
  const auto config = tiny_tileio();
  const auto off = run_tileio(config, 8, tiny_spec(), true);

  RunSpec spec = tiny_spec();
  spec.bb.enabled = true;
  spec.bb.capacity = 64;  // below a single aggregator's file-domain write
  const auto on = run_tileio(config, 8, spec, true);
  EXPECT_TRUE(on.verified);
  EXPECT_EQ(on.file_digest, off.file_digest);
  EXPECT_GT(on.stats.bb_spills, 0u);
  // Conservation: every byte the collective path produced either staged
  // (and later drained) or spilled straight to the synchronous path.
  EXPECT_EQ(on.stats.bb_drained_bytes, on.stats.bb_staged_bytes);
}

// --- drain failure replay --------------------------------------------------

TEST(BurstBuffer, DrainFailureReplaysWithoutLoss) {
  const auto config = tiny_tileio();
  const auto clean = run_tileio(config, 8, tiny_spec(), true);

  RunSpec spec = tiny_spec();
  spec.bb.enabled = true;
  spec.fault = fault::FaultPlan::parse(
      "seed=5;ost-outage=0:0:0.05;rpc-drop=0.05;timeout=0.005;"
      "backoff=0.001:0.01;max-retries=2");
  const auto faulted = run_tileio(config, 8, spec, true);
  EXPECT_TRUE(faulted.verified);
  // Failover redirects timing, never bytes: the faulted drains must land
  // the clean run's exact contents (no loss, no divergent double-write).
  EXPECT_EQ(faulted.file_digest, clean.file_digest);
  // The drains themselves hit the outage and replayed.
  EXPECT_GT(faulted.stats.bb_drain_retries + faulted.stats.bb_drain_failovers,
            0u);
  EXPECT_EQ(faulted.stats.bb_drained_bytes, faulted.stats.bb_staged_bytes);
}

// --- the point of the tier -------------------------------------------------

TEST(BurstBuffer, WriteBehindShrinksForegroundElapsed) {
  const int nprocs = 16;
  const auto config = TileIOConfig::paper(nprocs);
  RunSpec off = tiny_spec();
  off.parcoll_groups = core::kAutoGroups;
  const auto base = run_tileio(config, nprocs, off, true);

  RunSpec spec = off;
  spec.bb.enabled = true;  // default capacity dwarfs the tiny working set
  const auto on = run_tileio(config, nprocs, spec, true);
  EXPECT_TRUE(on.verified);
  EXPECT_EQ(on.file_digest, base.file_digest);
  // Foreground span shrinks (fs service time became hidden drain work)...
  EXPECT_LT(on.elapsed, base.elapsed);
  EXPECT_GT(on.stats.time[mpi::TimeCat::Drain], 0.0);
  // ...while time-to-durability still accounts for the deferred drains.
  EXPECT_GE(on.total_elapsed, on.elapsed);
}

// --- wall report attribution -----------------------------------------------

TEST(BurstBuffer, WallReportCarriesDrainAttribution) {
  const int nprocs = 16;
  const auto config = TileIOConfig::paper(nprocs);
  RunSpec spec = tiny_spec();
  spec.parcoll_groups = core::kAutoGroups;
  spec.trace = true;
  spec.bb.enabled = true;
  const auto result = run_tileio(config, nprocs, spec, true);
  ASSERT_NE(result.trace, nullptr);

  const obs::WallReport report =
      obs::build_wall_report(result.trace->spans());
  EXPECT_GT(report.drain_seconds, 0.0);
  EXPECT_GE(report.drain_hidden, 0.0);
  EXPECT_GE(report.drain_exposed_wait, 0.0);
  // Hidden + exposed partitions the drain work against foreground waiting;
  // hidden alone can never exceed the total drain seconds.
  EXPECT_LE(report.drain_hidden, report.drain_seconds + 1e-9);

  const std::string text = obs::format_wall_report(report);
  EXPECT_NE(text.find("bb drain work"), std::string::npos);
  const obs::JsonValue json = obs::wall_report_json(report);
  ASSERT_NE(json.find("drain_s"), nullptr);
  EXPECT_GT(json.find("drain_s")->as_double(), 0.0);

  // A bb-off trace keeps the report (and its rendering) drain-free.
  RunSpec off = tiny_spec();
  off.parcoll_groups = core::kAutoGroups;
  off.trace = true;
  const auto base = run_tileio(config, nprocs, off, true);
  ASSERT_NE(base.trace, nullptr);
  const obs::WallReport plain = obs::build_wall_report(base.trace->spans());
  EXPECT_DOUBLE_EQ(plain.drain_seconds, 0.0);
  EXPECT_EQ(obs::format_wall_report(plain).find("bb drain work"),
            std::string::npos);
}

}  // namespace
}  // namespace parcoll::workloads
