// Network model: alpha-beta transfers and per-NIC serialization.
#include <gtest/gtest.h>

#include "net/network.hpp"

namespace parcoll::net {
namespace {

machine::MachineModel model4() {
  return machine::MachineModel::jaguar(8);  // 4 nodes
}

TEST(Network, AlphaBetaCost) {
  auto model = model4();
  Network network(model.topology, model.net, model.mem);
  const double done = network.transfer(0.0, 0, 1, 1'000'000);
  EXPECT_DOUBLE_EQ(done,
                   model.net.p2p_latency + 1e6 / model.net.p2p_bandwidth);
}

TEST(Network, ReceiverNicSerializesConcurrentSenders) {
  auto model = model4();
  Network network(model.topology, model.net, model.mem);
  const double per_msg = model.net.p2p_latency + 1e6 / model.net.p2p_bandwidth;
  const double first = network.transfer(0.0, 0, 2, 1'000'000);
  const double second = network.transfer(0.0, 1, 2, 1'000'000);
  EXPECT_DOUBLE_EQ(first, per_msg);
  // The second transfer must queue behind the first at node 2's RX.
  EXPECT_DOUBLE_EQ(second, 2 * per_msg);
}

TEST(Network, SenderNicSerializesConcurrentDestinations) {
  auto model = model4();
  Network network(model.topology, model.net, model.mem);
  const double per_msg = model.net.p2p_latency + 1e6 / model.net.p2p_bandwidth;
  const double first = network.transfer(0.0, 0, 1, 1'000'000);
  const double second = network.transfer(0.0, 0, 2, 1'000'000);
  EXPECT_DOUBLE_EQ(first, per_msg);
  EXPECT_DOUBLE_EQ(second, 2 * per_msg);
}

TEST(Network, DisjointPairsDoNotInterfere) {
  auto model = model4();
  Network network(model.topology, model.net, model.mem);
  const double a = network.transfer(0.0, 0, 1, 1'000'000);
  const double b = network.transfer(0.0, 2, 3, 1'000'000);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Network, IntraNodeUsesMemoryBandwidthAndNoLatency) {
  auto model = model4();
  Network network(model.topology, model.net, model.mem);
  const double done = network.transfer(0.0, 1, 1, 2'000'000);
  EXPECT_DOUBLE_EQ(done, 2e6 / model.mem.memcpy_bandwidth);
  // Intra-node copies do not occupy the NIC.
  const double wire = network.transfer(0.0, 1, 2, 1'000'000);
  EXPECT_DOUBLE_EQ(wire,
                   model.net.p2p_latency + 1e6 / model.net.p2p_bandwidth);
}

TEST(Network, ReadyTimeDelaysStart) {
  auto model = model4();
  Network network(model.topology, model.net, model.mem);
  const double done = network.transfer(5.0, 0, 1, 0);
  EXPECT_DOUBLE_EQ(done, 5.0 + model.net.p2p_latency);
}

TEST(Network, BadNodeThrows) {
  auto model = model4();
  Network network(model.topology, model.net, model.mem);
  EXPECT_THROW(network.transfer(0.0, -1, 0, 1), std::out_of_range);
  EXPECT_THROW(network.transfer(0.0, 0, 99, 1), std::out_of_range);
}

}  // namespace
}  // namespace parcoll::net
