// The extended two-phase engine: byte-level correctness of collective
// writes and reads across patterns, aggregator sets, and cycle counts.
#include <gtest/gtest.h>

#include <functional>
#include <numeric>

#include "mpi/collectives.hpp"
#include "mpiio/ext2ph.hpp"
#include "mpiio/file.hpp"
#include "workloads/pattern.hpp"

namespace parcoll::mpiio {
namespace {

constexpr std::uint64_t kSalt = 0xE2;

/// Run ext2ph_write on `nranks` ranks, rank r contributing `extents_of(r)`,
/// then verify every extent landed with the right bytes. Returns rank 0's
/// outcome.
Ext2phOutcome run_write(int nranks,
                        const std::function<std::vector<fs::Extent>(int)>&
                            extents_of,
                        Ext2phOptions options) {
  mpi::World world(machine::MachineModel::jaguar(nranks));
  Ext2phOutcome outcome0;
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    const int fs_id = self.world().fs().open("ext2ph.dat", 8, 1 << 16);
    DirectTarget target(self.world().fs(), fs_id);
    const auto extents = extents_of(self.rank());
    std::uint64_t bytes = 0;
    for (const auto& extent : extents) bytes += extent.length;
    std::vector<std::byte> packed(bytes);
    workloads::fill_stream(packed.data(), extents, kSalt);
    const CollRequest request{extents, packed.empty() ? nullptr : packed.data()};
    const auto outcome =
        ext2ph_write(self, self.comm_world(), target, request, options);
    if (self.rank() == 0) outcome0 = outcome;
    mpi::barrier(self, self.comm_world());
    auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
    ok = ok && store &&
         workloads::verify_store(*store, fs_id, extents, kSalt);
  });
  EXPECT_TRUE(ok);
  return outcome0;
}

/// Prewrite the pattern with direct fs writes, then collectively read
/// rank-specific extents and check the received stream.
void run_read(int nranks,
              const std::function<std::vector<fs::Extent>(int)>& extents_of,
              Ext2phOptions options) {
  mpi::World world(machine::MachineModel::jaguar(nranks));
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    const int fs_id = self.world().fs().open("ext2ph-r.dat", 8, 1 << 16);
    const auto extents = extents_of(self.rank());
    std::uint64_t bytes = 0;
    for (const auto& extent : extents) bytes += extent.length;
    {
      // Seed the file (every rank writes its own region directly).
      std::vector<std::byte> seed(bytes);
      workloads::fill_stream(seed.data(), extents, kSalt);
      self.world().fs().write(self.rank(), fs_id, extents, seed.data());
    }
    mpi::barrier(self, self.comm_world());
    DirectTarget target(self.world().fs(), fs_id);
    std::vector<std::byte> packed(bytes);
    const CollRequest request{extents, packed.empty() ? nullptr : packed.data()};
    ext2ph_read(self, self.comm_world(), target, request, options);
    ok = ok && workloads::check_stream(packed.data(), extents, kSalt);
  });
  EXPECT_TRUE(ok);
}

Ext2phOptions opts(std::vector<int> aggregators,
                   std::uint64_t cb = 4ull << 20) {
  Ext2phOptions options;
  options.aggregators = std::move(aggregators);
  options.cb_buffer_size = cb;
  return options;
}

TEST(Ext2ph, ContiguousSegmentedWrite) {
  run_write(4,
            [](int r) {
              return std::vector<fs::Extent>{
                  {static_cast<std::uint64_t>(r) * 4096, 4096}};
            },
            opts({0, 1, 2, 3}));
}

TEST(Ext2ph, SingleAggregatorHandlesEverything) {
  run_write(4,
            [](int r) {
              return std::vector<fs::Extent>{
                  {static_cast<std::uint64_t>(r) * 1000, 1000}};
            },
            opts({2}));
}

TEST(Ext2ph, InterleavedStridedWriteNoHoles) {
  // Rank r owns every 4th 64-byte slot starting at slot r: dense overall.
  run_write(4,
            [](int r) {
              std::vector<fs::Extent> extents;
              for (int k = 0; k < 16; ++k) {
                extents.push_back(fs::Extent{
                    static_cast<std::uint64_t>(k * 4 + r) * 64, 64});
              }
              return extents;
            },
            opts({0, 1}));
}

TEST(Ext2ph, WriteWithHolesTriggersRmw) {
  // Only half the slots are written: holes inside every window.
  const auto outcome = run_write(
      2,
      [](int r) {
        std::vector<fs::Extent> extents;
        for (int k = 0; k < 8; ++k) {
          extents.push_back(fs::Extent{
              static_cast<std::uint64_t>(k * 4 + r) * 128, 128});
        }
        return extents;
      },
      opts({0}));
  EXPECT_GT(outcome.rmw_reads, 0u);
}

TEST(Ext2ph, RmwPreservesPreexistingBytes) {
  // Write pattern A everywhere, then a sparse collective write of pattern
  // B; the untouched bytes must still read pattern A.
  mpi::World world(machine::MachineModel::jaguar(2));
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    auto& fs = self.world().fs();
    const int fs_id = fs.open("rmw.dat", 4, 1 << 16);
    const fs::Extent whole{0, 8192};
    if (self.rank() == 0) {
      std::vector<std::byte> base(8192);
      workloads::fill_stream(base.data(), std::span(&whole, 1), 111);
      fs.write(0, fs_id, std::span(&whole, 1), base.data());
    }
    mpi::barrier(self, self.comm_world());

    // Sparse collective write: rank r owns bytes [2048r + 512, +256).
    const std::vector<fs::Extent> extents{
        {static_cast<std::uint64_t>(self.rank()) * 2048 + 512, 256}};
    std::vector<std::byte> packed(256);
    workloads::fill_stream(packed.data(), extents, 222);
    DirectTarget target(fs, fs_id);
    ext2ph_write(self, self.comm_world(), target,
                 CollRequest{extents, packed.data()}, opts({0, 1}));
    mpi::barrier(self, self.comm_world());

    if (self.rank() == 0) {
      auto* store = dynamic_cast<fs::MemoryStore*>(&fs.store());
      ok = ok && store != nullptr;
      if (store) {
        const auto& bytes = store->contents(fs_id);
        for (std::uint64_t pos = 0; pos < 8192; ++pos) {
          const bool in_b = (pos >= 512 && pos < 768) ||
                            (pos >= 2560 && pos < 2816);
          const std::byte expected =
              workloads::pattern_byte(in_b ? 222 : 111, pos);
          if (bytes[pos] != expected) {
            ok = false;
            break;
          }
        }
      }
    }
  });
  EXPECT_TRUE(ok);
}

TEST(Ext2ph, SmallCollectiveBufferForcesManyCycles) {
  const auto outcome = run_write(
      2,
      [](int r) {
        return std::vector<fs::Extent>{
            {static_cast<std::uint64_t>(r) * 65536, 65536}};
      },
      opts({0, 1}, /*cb=*/4096));
  // Each aggregator's 64 KiB domain in 4 KiB windows: 16 cycles.
  EXPECT_EQ(outcome.cycles, 16u);
}

TEST(Ext2ph, RanksWithNoDataStillParticipate) {
  run_write(4,
            [](int r) {
              if (r % 2 == 1) return std::vector<fs::Extent>{};
              return std::vector<fs::Extent>{
                  {static_cast<std::uint64_t>(r) * 512, 512}};
            },
            opts({0, 1, 2, 3}));
}

TEST(Ext2ph, AllEmptyIsANoop) {
  const auto outcome = run_write(
      3, [](int) { return std::vector<fs::Extent>{}; }, opts({0}));
  EXPECT_EQ(outcome.cycles, 0u);
}

TEST(Ext2ph, NoAggregatorsThrows) {
  mpi::World world(machine::MachineModel::jaguar(1));
  EXPECT_THROW(
      world.run([&](mpi::Rank& self) {
        const int fs_id = self.world().fs().open("x.dat");
        DirectTarget target(self.world().fs(), fs_id);
        const std::vector<fs::Extent> extents{{0, 16}};
        std::vector<std::byte> packed(16);
        ext2ph_write(self, self.comm_world(), target,
                     CollRequest{extents, packed.data()}, Ext2phOptions{});
      }),
      std::invalid_argument);
}

TEST(Ext2ph, ReadContiguousSegments) {
  run_read(4,
           [](int r) {
             return std::vector<fs::Extent>{
                 {static_cast<std::uint64_t>(r) * 2048, 2048}};
           },
           opts({0, 2}));
}

TEST(Ext2ph, ReadInterleavedStrides) {
  run_read(4,
           [](int r) {
             std::vector<fs::Extent> extents;
             for (int k = 0; k < 12; ++k) {
               extents.push_back(fs::Extent{
                   static_cast<std::uint64_t>(k * 4 + r) * 96, 96});
             }
             return extents;
           },
           opts({1, 3}, /*cb=*/1024));
}

TEST(Ext2ph, ReadWithSingleAggregatorManyCycles) {
  run_read(3,
           [](int r) {
             return std::vector<fs::Extent>{
                 {static_cast<std::uint64_t>(r) * 10000, 10000}};
           },
           opts({0}, /*cb=*/2048));
}

TEST(Ext2ph, PhantomModeCountsCyclesAndTime) {
  mpi::World world(machine::MachineModel::jaguar(4), /*byte_true=*/false);
  Ext2phOutcome outcome;
  double elapsed = 0;
  world.run([&](mpi::Rank& self) {
    const int fs_id = self.world().fs().open("phantom.dat");
    DirectTarget target(self.world().fs(), fs_id);
    const std::vector<fs::Extent> extents{
        {static_cast<std::uint64_t>(self.rank()) * (8ull << 20), 8ull << 20}};
    const double t0 = self.now();
    const auto result = ext2ph_write(self, self.comm_world(), target,
                                     CollRequest{extents, nullptr},
                                     opts({0, 2}));
    if (self.rank() == 0) {
      outcome = result;
      elapsed = self.now() - t0;
    }
  });
  EXPECT_EQ(outcome.cycles, 4u);  // 16 MB per domain / 4 MB windows
  EXPECT_GT(elapsed, 0.0);
}

TEST(DefaultAggregators, NoHintsMeansEveryProcess) {
  // The AD_sysio default on Catamount: all processes aggregate.
  const machine::Topology topo(8, 2, machine::Mapping::Block);
  std::vector<int> members(8);
  std::iota(members.begin(), members.end(), 0);
  const mpi::Comm comm(99, members);
  Hints hints;
  const auto aggregators = default_aggregators(topo, comm, hints);
  EXPECT_EQ(aggregators, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(DefaultAggregators, CbNodesSelectsOnePerNodeLowestRank) {
  const machine::Topology topo(8, 2, machine::Mapping::Block);
  std::vector<int> members(8);
  std::iota(members.begin(), members.end(), 0);
  const mpi::Comm comm(99, members);
  Hints hints;
  hints.cb_nodes = 4;  // all nodes, node-based selection
  const auto aggregators = default_aggregators(topo, comm, hints);
  EXPECT_EQ(aggregators, (std::vector<int>{0, 2, 4, 6}));
}

TEST(DefaultAggregators, CbNodesTruncates) {
  const machine::Topology topo(8, 2, machine::Mapping::Block);
  std::vector<int> members(8);
  std::iota(members.begin(), members.end(), 0);
  const mpi::Comm comm(99, members);
  Hints hints;
  hints.cb_nodes = 2;
  EXPECT_EQ(default_aggregators(topo, comm, hints),
            (std::vector<int>{0, 2}));
}

TEST(DefaultAggregators, ExplicitNodeListRespected) {
  const machine::Topology topo(8, 2, machine::Mapping::Cyclic);
  std::vector<int> members(8);
  std::iota(members.begin(), members.end(), 0);
  const mpi::Comm comm(99, members);
  Hints hints;
  hints.cb_node_list = {3, 1};
  // Cyclic: node 3 hosts {3,7}, node 1 hosts {1,5}.
  EXPECT_EQ(default_aggregators(topo, comm, hints),
            (std::vector<int>{1, 3}));
}

TEST(DefaultAggregators, SubcommunicatorOnlySeesItsNodes) {
  const machine::Topology topo(8, 2, machine::Mapping::Block);
  const mpi::Comm comm(99, {4, 5, 6, 7});  // nodes 2 and 3 only
  Hints hints;
  hints.cb_nodes = 4;  // node-based selection; only 2 nodes host members
  const auto aggregators = default_aggregators(topo, comm, hints);
  EXPECT_EQ(aggregators, (std::vector<int>{0, 2}));  // local ranks of 4 and 6
}

}  // namespace
}  // namespace parcoll::mpiio
