// Discrete-event simulation engine.
//
// The engine owns a virtual clock and a time-ordered event queue. Simulated
// processes are fibers (sim/fiber.hpp) that run ordinary blocking code and
// interact with the engine through sleep()/suspend(); resources such as
// network links and storage servers are modeled analytically by the layers
// above (they reserve busy time and put the caller to sleep until the
// reservation completes), so the engine itself stays tiny.
//
// Hot-path layout (see docs/PERFORMANCE.md): events are 24-byte PODs in a
// calendar queue (sim/event_queue.hpp), posted callbacks live in a freelist
// arena, and rank fibers draw small pooled stacks (sim/stack_pool.hpp)
// instead of a fresh 256 KiB allocation each.
//
// Determinism: events with equal timestamps are ordered by a monotone
// sequence number, so a given program produces an identical schedule on
// every run. A SchedulePolicy (sim/schedule.hpp) can replace that default
// tie-break to explore other interleavings; every policy is itself
// deterministic and replayable from a compact token.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fiber.hpp"
#include "sim/schedule.hpp"
#include "sim/stack_pool.hpp"

namespace parcoll::sim {

/// Identifier of a simulated process (dense, starting at 0).
using ProcId = int;
inline constexpr ProcId kNoProc = -1;

/// Thrown by Engine::run when no event is pending but processes are still
/// blocked — i.e. the simulated program deadlocked. The message lists each
/// blocked process with the reason string it passed to suspend(), plus the
/// engine's schedule token, so the failing interleaving can be replayed
/// verbatim (e.g. parcoll_sim --schedule-replay <token>).
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Engine self-instrumentation, collected for free on the hot path and
/// surfaced through `parcoll_sim --json` and bench/micro_engine. Host-side
/// observability only: nothing here feeds back into the model.
struct EngineStats {
  std::uint64_t events_executed = 0;   // fiber resumes + callbacks
  std::uint64_t callback_events = 0;   // post()-ed callbacks among them
  std::uint64_t fibers_spawned = 0;
  std::uint64_t peak_live_fibers = 0;
  std::uint64_t stacks_allocated = 0;  // pool misses (fresh allocations)
  std::uint64_t stacks_reused = 0;     // pool hits
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t queue_overflow_pushes = 0;  // far-future tier entries
  std::uint64_t queue_retunes = 0;          // calendar resize/re-width ops
  std::uint64_t choice_points = 0;          // equal-time ties policy resolved
  std::uint64_t default_stack_bytes = 0;
  double run_wall_seconds = 0.0;  // host wall clock spent inside run()

  /// Events executed per host-wall second (0 before run()).
  [[nodiscard]] double events_per_second() const {
    return run_wall_seconds > 0.0
               ? static_cast<double>(events_executed) / run_wall_seconds
               : 0.0;
  }
};

class Engine {
 public:
  Engine() = default;

  /// Default stack for engine-spawned fibers. Rank bodies block a few
  /// frames deep (collective -> protocol -> fs -> network), far from the
  /// historical 256 KiB; sanitized builds keep the old size because ASan
  /// redzones inflate every frame.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;
#else
  static constexpr std::size_t kDefaultStackBytes = 64 * 1024;
#endif
#else
  static constexpr std::size_t kDefaultStackBytes = 64 * 1024;
#endif

  /// Safety floor for any stack knob: below this, deep collective call
  /// chains overrun even simple bodies and the canary trips.
  static constexpr std::size_t kMinStackBytes = 16 * 1024;

  /// Create a process whose body starts executing at the current virtual
  /// time (time 0 if called before run()). May be called from inside a
  /// running process to spawn dynamically. `stack_bytes` 0 means the
  /// engine default (set_default_stack_bytes).
  ProcId spawn(std::function<void()> body, std::size_t stack_bytes = 0);

  /// Run events until every spawned process has finished.
  /// Throws DeadlockError if progress stops with processes still blocked.
  void run();

  /// Current virtual time, seconds.
  [[nodiscard]] double now() const { return now_; }

  /// Stable address of the clock, for observers recording timestamps
  /// without holding an Engine reference (e.g. the tracer).
  [[nodiscard]] const double* now_address() const { return &now_; }

  /// The process currently executing, or kNoProc from scheduler context.
  [[nodiscard]] ProcId current() const { return current_; }

  /// Number of processes that have been spawned but not yet finished.
  [[nodiscard]] std::size_t live_processes() const { return live_; }

  /// Override the default stack size for subsequently spawned fibers.
  /// Throws std::invalid_argument below kMinStackBytes — a too-small stack
  /// is silent memory corruption, not a tuning knob.
  void set_default_stack_bytes(std::size_t bytes);
  [[nodiscard]] std::size_t default_stack_bytes() const {
    return default_stack_bytes_;
  }

  /// Self-instrumentation snapshot (valid any time; wall seconds and
  /// events/s are complete after run() returns).
  [[nodiscard]] EngineStats stats() const;

  // --- Calls below are only valid from inside a process fiber. ---

  /// Advance this process's virtual time by `seconds` (>= 0).
  void sleep(double seconds);

  /// Sleep until absolute virtual time `t` (no-op if t <= now()).
  void sleep_until(double t);

  /// Block until another process (or event) calls wake() on us.
  /// `why` is reported in the deadlock message if we never wake; it must
  /// point at storage that outlives the block (in practice: a literal).
  void suspend(const char* why);

  // --- Calls below are valid from anywhere. ---

  /// Make a blocked process runnable again at virtual time `t` (>= now).
  /// It is an error to wake a process that is not suspended.
  void wake_at(double t, ProcId pid);

  /// Make a blocked process runnable at the current virtual time.
  void wake(ProcId pid) { wake_at(now_, pid); }

  /// Run `fn` on the scheduler context at virtual time `t` (>= now).
  void post(double t, SmallCallback fn);

  /// Monotone counter; used by models that need a deterministic
  /// per-engine sequence (e.g. jitter streams).
  std::uint64_t next_stream_seq() { return stream_seq_++; }

  // --- Schedule exploration -----------------------------------------------

  /// Replace the tie-break policy (call before run()). The default Program
  /// policy keeps the engine on the historical fast path: equal-time events
  /// run in push order and no choice points are recorded.
  void set_schedule(SchedulePolicy policy);
  [[nodiscard]] const SchedulePolicy& schedule_policy() const {
    return policy_;
  }

  /// The decisions taken at choice points so far (empty under Program).
  [[nodiscard]] const std::vector<ScheduleChoice>& choice_log() const {
    return choice_log_;
  }

  /// Replayable token of the schedule this engine is executing.
  [[nodiscard]] std::string schedule_token() const { return policy_.token(); }

 private:
  enum class ProcState { Runnable, Running, Blocked, Finished };

  struct Process {
    std::unique_ptr<Fiber> fiber;
    // Where the suspended fiber will resume from, mirrored out of the
    // Fiber after every switch so run()'s prefetch of the next event's
    // fiber needs no dependent load through the Fiber object.
    void* resume_sp = nullptr;
    ProcState state = ProcState::Runnable;
    const char* block_reason = "";  // literal passed to suspend()
  };

  void schedule_resume(double t, ProcId pid);
  void resume_process(ProcId pid);
  /// Pop the next event to run, consulting the schedule policy when
  /// several events are tied at the minimal timestamp.
  QueuedEvent pop_next();

  // Note: stacks_ is declared before procs_ so the pool outlives the
  // fibers, which release their stacks into it from ~Fiber.
  FiberStackPool stacks_;
  CalendarQueue queue_;
  CallbackArena callbacks_;
  std::vector<Process> procs_;
  double now_ = 0.0;
  std::uint64_t event_seq_ = 0;
  std::uint64_t stream_seq_ = 0;
  ProcId current_ = kNoProc;
  std::size_t live_ = 0;
  std::size_t default_stack_bytes_ = kDefaultStackBytes;
  std::uint64_t events_executed_ = 0;
  std::uint64_t callback_events_ = 0;
  std::uint64_t fibers_spawned_ = 0;
  std::uint64_t peak_live_ = 0;
  double run_wall_seconds_ = 0.0;
  SchedulePolicy policy_;
  std::vector<ScheduleChoice> choice_log_;
};

/// Condition-variable analogue for simulated processes: a FIFO of blocked
/// process ids. Wait/notify are instantaneous in virtual time. Woken ids
/// advance a ring head instead of shifting the vector — notify_one on a
/// deep queue (an OST service queue at 100k ranks) is O(1), not O(n).
class WaitQueue {
 public:
  /// Suspend the calling process until notified.
  void wait(Engine& engine, const char* why);

  /// Wake the oldest waiter, if any. Returns true if one was woken.
  bool notify_one(Engine& engine);

  /// Wake all waiters.
  void notify_all(Engine& engine);

  [[nodiscard]] bool empty() const { return head_ == waiters_.size(); }
  [[nodiscard]] std::size_t size() const { return waiters_.size() - head_; }

 private:
  std::vector<ProcId> waiters_;
  std::size_t head_ = 0;  // index of the oldest un-woken waiter
};

}  // namespace parcoll::sim
