// File views: stream-to-file mapping, tiling, validation.
#include <gtest/gtest.h>

#include "mpiio/view.hpp"

namespace parcoll::mpiio {
namespace {

using dtype::Datatype;

TEST(FileView, DefaultViewIsContiguousBytes) {
  const FileView view;
  EXPECT_TRUE(view.contiguous());
  const auto extents = view.map(100, 50);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0], (fs::Extent{100, 50}));
}

TEST(FileView, DisplacementShiftsEverything) {
  const FileView view(1000, 1, Datatype::bytes(1));
  const auto extents = view.map(5, 10);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0], (fs::Extent{1005, 10}));
}

TEST(FileView, EtypeScalesOffsets) {
  const FileView view(0, 8, Datatype::bytes(8));
  const auto extents = view.map(3, 16);  // 3 etypes of 8B -> byte 24
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0], (fs::Extent{24, 16}));
}

TEST(FileView, StridedFiletypeTiles) {
  // Filetype: 4 data bytes then 12-byte hole (extent 16).
  const Datatype ftype = Datatype::resized(Datatype::bytes(4), 0, 16);
  const FileView view(0, 4, ftype);
  EXPECT_FALSE(view.contiguous());
  EXPECT_EQ(view.tile_size(), 4u);
  EXPECT_EQ(view.tile_extent(), 16u);
  // 12 stream bytes = 3 tiles.
  const auto extents = view.map(0, 12);
  ASSERT_EQ(extents.size(), 3u);
  EXPECT_EQ(extents[0], (fs::Extent{0, 4}));
  EXPECT_EQ(extents[1], (fs::Extent{16, 4}));
  EXPECT_EQ(extents[2], (fs::Extent{32, 4}));
}

TEST(FileView, MidTileStartAndEnd) {
  const Datatype ftype = Datatype::resized(Datatype::bytes(4), 0, 16);
  const FileView view(0, 1, ftype);
  // Stream [2, 9): last 2B of tile 0, all of tile 1, first 1B of tile 2.
  const auto extents = view.map(2, 7);
  ASSERT_EQ(extents.size(), 3u);
  EXPECT_EQ(extents[0], (fs::Extent{2, 2}));
  EXPECT_EQ(extents[1], (fs::Extent{16, 4}));
  EXPECT_EQ(extents[2], (fs::Extent{32, 1}));
}

TEST(FileView, AdjacentTilesCoalesceWhenDense) {
  // A subarray covering a full row tiles densely within a row band.
  const Datatype ftype = Datatype::resized(Datatype::bytes(16), 0, 16);
  const FileView view(0, 1, ftype);
  const auto extents = view.map(0, 64);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0], (fs::Extent{0, 64}));
}

TEST(FileView, SubarrayViewMapsTileRows) {
  // 2x2 tile grid of 2x3-element tiles (1B elements); rank at tile (1,0).
  const std::int64_t sizes[] = {4, 6};
  const std::int64_t subsizes[] = {2, 3};
  const std::int64_t starts[] = {2, 0};
  const Datatype ftype =
      Datatype::subarray(sizes, subsizes, starts, Datatype::bytes(1));
  const FileView view(0, 1, ftype);
  const auto extents = view.map(0, 6);
  ASSERT_EQ(extents.size(), 2u);
  EXPECT_EQ(extents[0], (fs::Extent{12, 3}));  // row 2
  EXPECT_EQ(extents[1], (fs::Extent{18, 3}));  // row 3
}

TEST(FileView, ZeroLengthMapsToNothing) {
  const FileView view;
  EXPECT_TRUE(view.map(123, 0).empty());
}

TEST(FileView, RejectsNonMonotoneFiletype) {
  const dtype::IndexedBlock blocks[] = {{10, 1}, {0, 1}};
  const Datatype bad = Datatype::hindexed(blocks, Datatype::bytes(4));
  EXPECT_THROW(FileView(0, 1, bad), std::invalid_argument);
}

TEST(FileView, RejectsEmptyFiletypeAndBadEtype) {
  EXPECT_THROW(FileView(0, 0, Datatype::bytes(4)), std::invalid_argument);
  EXPECT_THROW(FileView(0, 1, Datatype()), std::invalid_argument);
  // Filetype size not a multiple of etype.
  EXPECT_THROW(FileView(0, 3, Datatype::bytes(4)), std::invalid_argument);
}

TEST(FileView, MapBytesCorrespondToStreamOrder) {
  // Walking the extents in order must visit the stream in order: verify
  // total length and monotonicity for a gappy view.
  const Datatype ftype = Datatype::vec(3, 1, 2, Datatype::bytes(4));
  const FileView view(8, 4, Datatype::resized(ftype, 0, 24));
  const auto extents = view.map(1, 20);
  std::uint64_t total = 0;
  std::uint64_t last_end = 0;
  for (const auto& extent : extents) {
    EXPECT_GE(extent.offset, last_end);
    last_end = extent.end();
    total += extent.length;
  }
  EXPECT_EQ(total, 20u);
}

}  // namespace
}  // namespace parcoll::mpiio
