// Intermediate file views — paper §4.1, Fig. 4(c).
//
// For scattered access patterns (e.g. BT-IO's diagonal multi-partitioning),
// no direct file split yields non-overlapping FAs. ParColl then builds a
// logical re-linearization of the file: each rank's segments are virtually
// concatenated, rank-major. In that intermediate space each rank owns one
// contiguous range, so partitioning reduces to the serial pattern (a).
//
// Aggregation (the ext2ph engine) runs entirely in intermediate
// coordinates; only at the file-I/O step does the aggregator resolve an
// intermediate extent back to the physical segments it represents — "the
// original file view is still needed to provide the physical layout".
// Consistency holds because each rank's physical segments belong to exactly
// one subgroup.
#pragma once

#include <cstdint>
#include <vector>

#include "fs/lustre.hpp"
#include "fs/stripe.hpp"
#include "mpiio/ext2ph.hpp"

namespace parcoll::core {

/// The physical segments of one rank, anchored at its intermediate start.
struct MemberSegments {
  std::uint64_t inter_start = 0;
  std::vector<fs::Extent> extents;  // monotone physical extents
};

/// Maps intermediate-space extents back to physical extents.
class IntermediateMap {
 public:
  /// `members` must be sorted by inter_start and contiguous (each member's
  /// range starts where the previous ends).
  explicit IntermediateMap(std::vector<MemberSegments> members);

  /// Physical extents for the intermediate range [span.offset, span.end()),
  /// in intermediate order. The k-th byte of the returned extents (walked
  /// in list order) is the k-th byte of the intermediate range.
  [[nodiscard]] std::vector<fs::Extent> translate(const fs::Extent& span) const;

  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  struct Member {
    std::uint64_t inter_start;
    std::uint64_t inter_end;
    std::vector<fs::Extent> extents;
    std::vector<std::uint64_t> prefix;  // stream offset of each extent
  };
  std::vector<Member> members_;
  std::uint64_t total_bytes_ = 0;
};

/// IoTarget that resolves intermediate extents through an IntermediateMap
/// before delegating to the wrapped physical target (DirectTarget, or the
/// burst-buffer staging target — the translation layer does not care).
class IntermediateTarget final : public mpiio::IoTarget {
 public:
  IntermediateTarget(mpiio::IoTarget& inner, IntermediateMap map)
      : inner_(inner), map_(std::move(map)) {}

  void write(mpi::Rank& self, std::span<const fs::Extent> extents,
             const std::byte* data) override;
  void read(mpi::Rank& self, std::span<const fs::Extent> extents,
            std::byte* out) override;

  [[nodiscard]] const IntermediateMap& map() const { return map_; }

 private:
  std::vector<fs::Extent> translate_all(
      std::span<const fs::Extent> extents) const;

  mpiio::IoTarget& inner_;
  IntermediateMap map_;
};

}  // namespace parcoll::core
