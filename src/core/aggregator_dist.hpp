// I/O aggregator distribution — paper §4.2, Fig. 5.
//
// ParColl must stay compatible with the existing aggregator hints (a count
// taken from the default node list, or an explicit node list) while
// partitioning processes into subgroups. The distribution algorithm
// traverses the subgroups round-robin; each subgroup in turn takes the
// first not-yet-assigned aggregator node that hosts one of its processes,
// and the chosen aggregator is that node's lowest-ranked process in the
// subgroup. This satisfies the paper's three requirements:
//   (a) every subgroup gets at least one aggregator (a fallback promotes a
//       subgroup's lowest rank when the node list cannot serve it);
//   (b) no physical node aggregates for two different subgroups;
//   (c) aggregators are spread as evenly as the grouping permits.
#pragma once

#include <vector>

#include "machine/topology.hpp"
#include "mpi/comm.hpp"

namespace parcoll::core {

/// For each group, the comm-local ranks serving as I/O aggregators (sorted
/// ascending). `aggregator_nodes` is the ordered node list (from hints or
/// the default); `group_of_rank` maps comm-local ranks to group ids.
std::vector<std::vector<int>> distribute_aggregators(
    const machine::Topology& topology, const mpi::Comm& comm,
    const std::vector<int>& aggregator_nodes,
    const std::vector<int>& group_of_rank, int num_groups);

/// The ordered aggregator-node list for `comm` under the hints' cb_nodes /
/// cb_node_list semantics: the explicit list if given, else every node
/// hosting a comm member (ascending), truncated to cb_nodes when positive.
std::vector<int> aggregator_node_list(const machine::Topology& topology,
                                      const mpi::Comm& comm,
                                      const std::vector<int>& explicit_nodes,
                                      int cb_nodes);

}  // namespace parcoll::core
