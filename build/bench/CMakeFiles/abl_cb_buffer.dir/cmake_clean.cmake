file(REMOVE_RECURSE
  "CMakeFiles/abl_cb_buffer.dir/abl_cb_buffer.cpp.o"
  "CMakeFiles/abl_cb_buffer.dir/abl_cb_buffer.cpp.o.d"
  "abl_cb_buffer"
  "abl_cb_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cb_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
