#include "bb/target.hpp"

namespace parcoll::bb {

void BbTarget::write(mpi::Rank& self, std::span<const fs::Extent> extents,
                     const std::byte* data) {
  if (store_ == nullptr) {
    direct_.write(self, extents, data);
    return;
  }
  std::uint64_t bytes = 0;
  for (const fs::Extent& extent : extents) {
    bytes += extent.length;
  }
  if (bytes == 0) {
    return;
  }
  // Another node holding overlapping staged data must reach the file
  // before this write is ordered after it (its drain could otherwise
  // complete later and clobber us).
  if (store_->conflicts_elsewhere(self.node(), extents)) {
    store_->note_conflict_flush();
    store_->flush_overlapping(self, extents);
  }
  if (store_->stage(self, extents, data)) {
    return;
  }
  // Capacity pressure: fall back to the synchronous path. Same-node
  // overlapping segments are older (FIFO), so flush them first to keep
  // program order.
  store_->note_spill(bytes);
  store_->flush_overlapping(self, extents);
  direct_.write(self, extents, data);
}

void BbTarget::read(mpi::Rank& self, std::span<const fs::Extent> extents,
                    std::byte* out) {
  if (store_ != nullptr && !store_->idle()) {
    if (store_->conflicts_elsewhere(-1, extents)) {
      store_->note_conflict_flush();
    }
    store_->flush_overlapping(self, extents);
  }
  direct_.read(self, extents, out);
}

}  // namespace parcoll::bb
