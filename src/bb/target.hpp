// IoTarget that fronts the physical file with the burst-buffer staging
// tier. With a null store (bb disabled) it delegates straight to
// DirectTarget, keeping the off path identical to a build without bb.
#pragma once

#include "bb/staging.hpp"
#include "mpiio/ext2ph.hpp"

namespace parcoll::bb {

class BbTarget final : public mpiio::IoTarget {
 public:
  /// `store` may be null: every call then delegates to the direct target.
  BbTarget(fs::LustreSim& fs, int file_id, StagingStore* store)
      : direct_(fs, file_id), store_(store) {}

  /// Stage the write into the node arena and return (write-behind); spill
  /// to the synchronous path when the arena is full. Cross-node overlaps
  /// are flushed first so the later writer still wins.
  void write(mpi::Rank& self, std::span<const fs::Extent> extents,
             const std::byte* data) override;

  /// Read-your-writes: flush overlapping staged data, then read the file.
  void read(mpi::Rank& self, std::span<const fs::Extent> extents,
            std::byte* out) override;

 private:
  mpiio::DirectTarget direct_;
  StagingStore* store_;
};

}  // namespace parcoll::bb
