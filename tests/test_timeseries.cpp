// Time-series telemetry, quantile histograms, per-job attribution, and
// the exporters (timeline JSON, folded stacks, top report, per-OST wall
// section) — plus the bit-identity guarantee: with the sampler off, a
// fully-observed run matches the pre-telemetry goldens exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "machine/machine_model.hpp"
#include "mpi/runtime.hpp"
#include "mpi/trace.hpp"
#include "mpiio/file.hpp"
#include "obs/folded.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/quantile.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/wall_report.hpp"
#include "workloads/ior.hpp"
#include "workloads/runner.hpp"
#include "workloads/tileio.hpp"

namespace parcoll {
namespace {

// ------------------------------------------------------------ quantile --

/// Deterministic 64-bit LCG; the test needs reproducible draws, not
/// statistical quality.
std::uint64_t lcg(std::uint64_t& state) {
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  return state >> 11;
}

TEST(QuantileHistogram, AccuracyWithinOnePercentOfSortedReference) {
  obs::QuantileHistogram hist;
  std::vector<double> reference;
  std::uint64_t state = 42;
  // Log-uniform latencies spanning microseconds to ~10 s: the range the
  // log-bucketed layout must resolve at ~1% everywhere.
  for (int i = 0; i < 20000; ++i) {
    const double u =
        static_cast<double>(lcg(state) % 1000000) / 1000000.0;
    const double value = 1e-6 * std::pow(1e7, u);
    hist.observe(value);
    reference.push_back(value);
  }
  std::sort(reference.begin(), reference.end());
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const std::size_t target = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(reference.size())));
    const double exact = reference[target - 1];
    const double approx = hist.quantile(q);
    EXPECT_NEAR(approx, exact, 0.0101 * exact)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
  EXPECT_EQ(hist.count(), reference.size());
  EXPECT_DOUBLE_EQ(hist.min(), reference.front());
  EXPECT_DOUBLE_EQ(hist.max(), reference.back());
  // p0/p100 clamp to the exact extremes.
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), reference.front());
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), reference.back());
}

TEST(QuantileHistogram, MergeEqualsCombinedObservations) {
  obs::QuantileHistogram a;
  obs::QuantileHistogram b;
  obs::QuantileHistogram all;
  std::uint64_t state = 7;
  for (int i = 0; i < 5000; ++i) {
    const double value =
        1e-4 * (1.0 + static_cast<double>(lcg(state) % 10000));
    ((i % 2) == 0 ? a : b).observe(value);
    all.observe(value);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  // Sums accumulate in a different order, so only near-equality holds.
  EXPECT_NEAR(a.sum(), all.sum(), 1e-9 * all.sum());
  for (const double q : {0.01, 0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q));
  }
}

TEST(Metrics, HistogramBoundsMismatchThrows) {
  obs::MetricsRegistry metrics;
  metrics.histogram("lat", {0.1, 1.0}).observe(0.5);
  // Same bounds: the same histogram comes back.
  EXPECT_EQ(metrics.histogram("lat", {0.1, 1.0}).count, 1u);
  // Mismatched bounds are a call-site bug, not data to misfile.
  EXPECT_THROW(metrics.histogram("lat", {0.2, 1.0}), std::invalid_argument);
  EXPECT_THROW(metrics.histogram("lat", {0.1}), std::invalid_argument);
}

// -------------------------------------------------------------- sampler --

workloads::RunSpec golden_ior_spec() {
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::Ext2ph;
  spec.byte_true = true;
  return spec;
}

workloads::IorConfig golden_ior_config() {
  workloads::IorConfig config;
  config.block_size = 256 << 10;
  config.xfer_size = 64 << 10;
  return config;
}

TEST(Sampler, OffKeepsFullyObservedRunBitIdentical) {
  // Every observer on (trace, metrics, job tags) but the sampler off: the
  // run must still match the pre-telemetry goldens bit for bit.
  workloads::RunSpec spec = golden_ior_spec();
  spec.trace = true;
  spec.metrics = true;
  spec.job = "golden";
  spec.sample_interval = 0;
  const workloads::RunResult got =
      workloads::run_ior(golden_ior_config(), 32, spec, true);
  EXPECT_EQ(got.file_digest, 372189963690044911ull);
  EXPECT_EQ(got.schedule_token, "p");
  EXPECT_EQ(got.elapsed, 0.11984201252554912);
  EXPECT_EQ(got.total_elapsed, 0.12049201252554911);
  EXPECT_TRUE(got.verified);
  EXPECT_EQ(got.timeline, nullptr);
}

TEST(Sampler, TimelineByteIdenticalAcrossRuns) {
  workloads::RunSpec spec = golden_ior_spec();
  spec.sample_interval = 1e-3;
  const workloads::RunResult first =
      workloads::run_ior(golden_ior_config(), 32, spec, true);
  const workloads::RunResult second =
      workloads::run_ior(golden_ior_config(), 32, spec, true);
  ASSERT_NE(first.timeline, nullptr);
  ASSERT_NE(second.timeline, nullptr);
  EXPECT_EQ(first.timeline->to_json().dump(2),
            second.timeline->to_json().dump(2));
  EXPECT_FALSE(first.timeline->times_s.empty());
  // The headline series the telemetry exists for.
  EXPECT_NE(first.timeline->find("engine.events"), nullptr);
  EXPECT_NE(first.timeline->find("fs.ost.queue_depth_s[0000]"), nullptr);
  EXPECT_NE(first.timeline->find("mpi.rank.sync_s[0000]"), nullptr);
  // Sampling must not move the measured phase.
  EXPECT_EQ(first.elapsed, 0.11984201252554912);
}

TEST(Sampler, BbOccupancySeriesRecorded) {
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::Ext2ph;
  spec.byte_true = false;
  spec.bb.enabled = true;
  spec.sample_interval = 1e-3;
  workloads::TileIOConfig tile;
  tile.tiles_x = 4;
  tile.tile_w = 16;
  tile.tile_h = 8;
  tile.elem_size = 8;
  const workloads::RunResult got =
      workloads::run_tileio(tile, 16, spec, true);
  ASSERT_NE(got.timeline, nullptr);
  bool used = false;
  bool backlog = false;
  for (const obs::TimeSeries::Series& series : got.timeline->series) {
    used = used || series.name.rfind("bb.node.used_bytes[", 0) == 0;
    backlog = backlog || series.name.rfind("bb.node.backlog_bytes[", 0) == 0;
  }
  EXPECT_TRUE(used);
  EXPECT_TRUE(backlog);
}

TEST(Sampler, DecimationBoundsMemoryDeterministically) {
  obs::TimeSeriesSampler sampler(1.0, /*max_samples=*/16);
  double level = 0;
  sampler.add_probe("level", [&level] { return level; });
  for (int tick = 0; tick < 1000; ++tick) {
    level = static_cast<double>(tick);
    sampler.sample(static_cast<double>(tick));
  }
  const auto snap = sampler.snapshot();
  ASSERT_NE(snap, nullptr);
  // Bounded: decimation keeps the sample count inside (max/2, max].
  EXPECT_LE(snap->times_s.size(), 16u);
  EXPECT_GT(snap->times_s.size(), 8u);
  // Whole-run coverage at a uniform stride, recorded values intact.
  ASSERT_EQ(snap->series.size(), 1u);
  const auto& values = snap->series[0].values;
  ASSERT_EQ(values.size(), snap->times_s.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ(values[i], snap->times_s[i]);
    if (i > 0) {
      EXPECT_DOUBLE_EQ(snap->times_s[i] - snap->times_s[i - 1],
                       static_cast<double>(snap->stride));
    }
  }
}

// ------------------------------------------------------------ job tags --

TEST(JobTags, TwoJobMetricsSlice) {
  mpi::World world(machine::MachineModel::jaguar(4), /*byte_true=*/false);
  world.enable_metrics();
  // Two tenants sharing the file system: ranks 0-1 are "astro", 2-3
  // "clima". Every RPC must land in exactly one job slice.
  world.set_job(0, "astro");
  world.set_job(1, "astro");
  world.set_job(2, "clima");
  world.set_job(3, "clima");
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "jobs.dat");
    const std::uint64_t offset =
        static_cast<std::uint64_t>(self.rank()) * (1 << 20);
    file.write_at(offset, nullptr, 1, dtype::Datatype::bytes(1 << 20));
    file.close();
  });
  const auto& counters = world.metrics()->counters();
  ASSERT_TRUE(counters.count("fs.rpcs{job=astro}"));
  ASSERT_TRUE(counters.count("fs.rpcs{job=clima}"));
  EXPECT_GT(counters.at("fs.rpcs{job=astro}"), 0u);
  EXPECT_GT(counters.at("fs.rpcs{job=clima}"), 0u);
  ASSERT_TRUE(counters.count("fs.bytes{job=astro}"));
  EXPECT_EQ(counters.at("fs.bytes{job=astro}"), 2u << 20);
  EXPECT_EQ(counters.at("fs.bytes{job=clima}"), 2u << 20);
  // The per-job latency slices partition the global instrument.
  const auto& quantiles = world.metrics()->quantiles();
  ASSERT_TRUE(quantiles.count("fs.rpc.latency_s"));
  ASSERT_TRUE(quantiles.count("fs.rpc.latency_s{job=astro}"));
  ASSERT_TRUE(quantiles.count("fs.rpc.latency_s{job=clima}"));
  EXPECT_EQ(quantiles.at("fs.rpc.latency_s{job=astro}").count() +
                quantiles.at("fs.rpc.latency_s{job=clima}").count(),
            quantiles.at("fs.rpc.latency_s").count());
}

// ------------------------------------------------------- folded stacks --

TEST(FoldedStacks, TotalWeightMatchesSpanTreeWithinOnePercent) {
  workloads::RunSpec spec = golden_ior_spec();
  spec.trace = true;
  const workloads::RunResult got =
      workloads::run_ior(golden_ior_config(), 32, spec, true);
  ASSERT_NE(got.trace, nullptr);
  const obs::SpanStore& spans = got.trace->spans();
  double tree_seconds = 0;
  for (const obs::Span& span : spans.spans()) {
    if (span.parent == obs::kNoSpan) {
      tree_seconds += span.end - span.begin;
    }
  }
  ASSERT_GT(tree_seconds, 0.0);
  const std::string folded = obs::folded_stacks(spans);
  const double folded_seconds =
      static_cast<double>(obs::folded_total_weight(folded)) * 1e-9;
  EXPECT_NEAR(folded_seconds, tree_seconds, 0.01 * tree_seconds);
}

TEST(FoldedStacks, JobTableAddsTenantRootFrame) {
  workloads::RunSpec spec = golden_ior_spec();
  spec.trace = true;
  spec.job = "astro";
  const workloads::RunResult got =
      workloads::run_ior(golden_ior_config(), 32, spec, true);
  ASSERT_NE(got.trace, nullptr);
  ASSERT_FALSE(got.jobs.empty());
  const std::string folded =
      obs::folded_stacks(got.trace->spans(), &got.jobs);
  ASSERT_FALSE(folded.empty());
  EXPECT_NE(folded.find("job:astro;rank_0000;"), std::string::npos);
  // Weight is invariant under relabeling the roots.
  EXPECT_EQ(obs::folded_total_weight(folded),
            obs::folded_total_weight(obs::folded_stacks(got.trace->spans())));
}

// ------------------------------------------------ top report and walls --

TEST(TopReport, ListsEngineRateAndOstQueues) {
  workloads::RunSpec spec = golden_ior_spec();
  spec.sample_interval = 1e-3;
  const workloads::RunResult got =
      workloads::run_ior(golden_ior_config(), 32, spec, true);
  ASSERT_NE(got.timeline, nullptr);
  const std::string report = obs::top_report(*got.timeline);
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report.find("t="), std::string::npos);
  EXPECT_NE(report.find("ev/s="), std::string::npos);
  EXPECT_NE(report.find("ost_q:"), std::string::npos);
}

TEST(WallReport, PerOstSectionAndLatencyQuantiles) {
  workloads::RunSpec spec = golden_ior_spec();
  spec.trace = true;
  spec.metrics = true;
  const workloads::RunResult got =
      workloads::run_ior(golden_ior_config(), 32, spec, true);
  ASSERT_NE(got.trace, nullptr);
  ASSERT_NE(got.metrics, nullptr);
  const obs::WallReport report =
      obs::build_wall_report(got.trace->spans(), got.metrics.get());
  ASSERT_FALSE(report.osts.empty());
  for (std::size_t i = 1; i < report.osts.size(); ++i) {
    EXPECT_GE(report.osts[i - 1].service_s, report.osts[i].service_s);
  }
  EXPECT_GT(report.osts.front().rpcs, 0u);
  EXPECT_GT(report.osts.front().bytes, 0u);
  bool rpc_latency = false;
  for (const obs::LatencySummary& lat : report.latencies) {
    if (lat.name == "fs.rpc.latency_s") {
      rpc_latency = true;
      EXPECT_GT(lat.count, 0u);
      EXPECT_LE(lat.p50, lat.p99);
      EXPECT_LE(lat.p99, lat.max);
    }
    // Per-job slices stay out of the wall report.
    EXPECT_EQ(lat.name.find("{job="), std::string::npos);
  }
  EXPECT_TRUE(rpc_latency);
  const std::string text = obs::format_wall_report(report);
  EXPECT_NE(text.find("busiest OSTs"), std::string::npos);
  EXPECT_NE(text.find("latency quantiles"), std::string::npos);
  // The span-only overload stays metrics-free.
  const obs::WallReport plain = obs::build_wall_report(got.trace->spans());
  EXPECT_TRUE(plain.osts.empty());
  EXPECT_TRUE(plain.latencies.empty());
  EXPECT_EQ(plain.total_sync, report.total_sync);
}

}  // namespace
}  // namespace parcoll
