// h5lite: the HDF5-like container — metadata round trips, dataset
// allocation, collective dataset I/O through ParColl, attributes, and the
// Flash-through-h5 runner.
#include <gtest/gtest.h>

#include "h5lite/h5lite.hpp"
#include "mpi/collectives.hpp"
#include "workloads/flashio.hpp"
#include "workloads/pattern.hpp"

namespace parcoll::h5 {
namespace {

using dtype::Datatype;

TEST(H5Lite, CreateDatasetAllocatesSequentially) {
  mpi::World world(machine::MachineModel::jaguar(2));
  world.run([&](mpi::Rank& self) {
    auto file = H5File::create(self, self.comm_world(), "h5a.h5");
    const auto& a = file.create_dataset("a", {10, 10}, 8);
    const auto& b = file.create_dataset("b", {100}, 4);
    EXPECT_EQ(a.data_offset, H5File::kMetadataBytes);
    EXPECT_EQ(a.bytes(), 800u);
    EXPECT_EQ(b.data_offset, a.data_offset + 800);
    EXPECT_TRUE(file.has_dataset("a"));
    EXPECT_FALSE(file.has_dataset("c"));
    EXPECT_THROW(static_cast<void>(file.dataset("c")), std::invalid_argument);
    EXPECT_EQ(file.dataset_names().size(), 2u);
    // Mismatched re-creation is rejected.
    EXPECT_THROW(file.create_dataset("a", {10, 11}, 8),
                 std::invalid_argument);
    file.close();
  });
}

TEST(H5Lite, DatasetWriteReadRoundTripThroughParColl) {
  mpi::World world(machine::MachineModel::jaguar(8));
  mpiio::Hints hints;
  hints.parcoll_num_groups = 2;
  hints.parcoll_min_group_size = 2;
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    auto file = H5File::create(self, self.comm_world(), "h5b.h5", hints);
    // 8x32 doubles; rank r owns row r (subarray selection).
    file.create_dataset("grid", {8, 32}, 8);
    const std::int64_t sizes[] = {8, 32};
    const std::int64_t subsizes[] = {1, 32};
    const std::int64_t starts[] = {self.rank(), 0};
    const Datatype selection =
        Datatype::subarray(sizes, subsizes, starts, Datatype::bytes(8));

    std::vector<double> row(32);
    for (int i = 0; i < 32; ++i) row[i] = self.rank() * 100.0 + i;
    file.write_dataset("grid", selection, row.data(), 1,
                       Datatype::bytes(256));
    mpi::barrier(self, self.comm_world());

    // Read a neighbour's row back.
    const std::int64_t other_starts[] = {(self.rank() + 3) % 8, 0};
    const Datatype other =
        Datatype::subarray(sizes, subsizes, other_starts, Datatype::bytes(8));
    std::vector<double> got(32);
    file.read_dataset("grid", other, got.data(), 1, Datatype::bytes(256));
    for (int i = 0; i < 32; ++i) {
      if (got[i] != ((self.rank() + 3) % 8) * 100.0 + i) ok = false;
    }
    file.close();
  });
  EXPECT_TRUE(ok);
}

TEST(H5Lite, SelectionEscapingDatasetThrows) {
  mpi::World world(machine::MachineModel::jaguar(1));
  world.run([&](mpi::Rank& self) {
    auto file = H5File::create(self, self.comm_world(), "h5c.h5");
    file.create_dataset("small", {4}, 8);
    std::vector<dtype::Segment> segs{{0, 64}};  // 64 > 32 bytes
    const Datatype bad = Datatype::from_segments(std::move(segs), 0, 64);
    std::vector<std::byte> data(64);
    EXPECT_THROW(file.write_dataset("small", bad, data.data(), 1,
                                    Datatype::bytes(64)),
                 std::invalid_argument);
    file.close();
  });
}

TEST(H5Lite, MetadataSurvivesReopen) {
  mpi::World world(machine::MachineModel::jaguar(2));
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    {
      auto file = H5File::create(self, self.comm_world(), "h5d.h5");
      file.create_dataset("payload", {16}, 4);
      file.write_attribute("creator", {std::byte{'p'}, std::byte{'c'}});
      if (self.rank() == 0) {
        std::vector<std::byte> data(32);
        const fs::Extent where{file.dataset("payload").data_offset, 32};
        workloads::fill_stream(data.data(), std::span(&where, 1), 61);
        std::vector<dtype::Segment> segs{{0, 32}};
        file.write_dataset("payload",
                           Datatype::from_segments(std::move(segs), 0, 64),
                           data.data(), 1, Datatype::bytes(32));
      } else {
        // Collective call: other ranks contribute nothing.
        file.write_dataset("payload", Datatype(), nullptr, 0, Datatype());
      }
      file.close();
    }
    {
      // Fresh world-shared metadata is rebuilt from disk on open... the
      // shared object persists within one World, so force a re-decode by
      // checking contents through a reopened handle.
      auto file = H5File::open(self, self.comm_world(), "h5d.h5");
      ok = ok && file.has_dataset("payload");
      ok = ok && file.dataset("payload").elem_size == 4;
      ok = ok && file.has_attribute("creator");
      ok = ok && file.attribute("creator").size() == 2;
      file.close();
    }
  });
  EXPECT_TRUE(ok);
}

TEST(H5Lite, EncodeDecodeRoundTrip) {
  // Pure serialization check, independent of any world.
  mpi::World world(machine::MachineModel::jaguar(1));
  world.run([&](mpi::Rank& self) {
    auto file = H5File::create(self, self.comm_world(), "h5e.h5");
    file.create_dataset("alpha", {3, 4, 5}, 8);
    file.create_dataset("beta", {7}, 2);
    file.write_attribute("answer", {std::byte{42}});
    file.close();

    auto reopened = H5File::open(self, self.comm_world(), "h5e.h5");
    EXPECT_EQ(reopened.dataset("alpha").dims,
              (std::vector<std::uint64_t>{3, 4, 5}));
    EXPECT_EQ(reopened.dataset("beta").data_offset,
              H5File::kMetadataBytes + 3 * 4 * 5 * 8);
    EXPECT_EQ(reopened.attribute("answer")[0], std::byte{42});
    reopened.close();
  });
}

TEST(H5Lite, FlashCheckpointThroughH5Verifies) {
  workloads::FlashConfig config;
  config.nxb = 4;
  config.nguard = 1;
  config.nblocks = 3;
  config.nvars = 3;
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::ParColl;
  spec.parcoll_groups = 2;
  spec.min_group_size = 2;
  spec.byte_true = true;
  spec.cb_buffer_size = 4096;
  const auto result = workloads::run_flashio_h5(config, 8, spec);
  EXPECT_TRUE(result.verified);
  // The metadata datasets show up as collective writes too: 5 records +
  // nvars variables.
  EXPECT_EQ(result.stats.collective_writes,
            5u + static_cast<unsigned>(config.nvars));
}

TEST(H5Lite, H5OverheadIsVisibleButSmall) {
  // The HDF5 path costs more than the raw path (metadata flushes + small
  // record datasets) but the bulk dominates.
  workloads::FlashConfig config;
  config.nvars = 4;
  config.nblocks = 8;
  config.nxb = 16;
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::Ext2ph;
  spec.byte_true = false;
  const auto raw = workloads::run_flashio(config, 32, spec, true);
  const auto h5 = workloads::run_flashio_h5(config, 32, spec);
  // Same bulk data, plus metadata flushes and five small record datasets:
  // comparable magnitude, not a blow-up.
  EXPECT_GT(h5.elapsed, 0.7 * raw.elapsed);
  EXPECT_LT(h5.elapsed, 2.5 * raw.elapsed);
  EXPECT_GT(h5.stats.independent_writes, 0u);  // the metadata flushes
}

}  // namespace
}  // namespace parcoll::h5
