// Folded-stack flamegraph export from the span tree.
//
// Emits the classic collapsed-stack format consumed by flamegraph.pl and
// inferno ("frame;frame;frame weight" per line), with virtual-time weights
// in integer nanoseconds. Each span contributes its *self* time (duration
// minus enclosed children), so the summed weight of the file equals the
// root spans' total duration up to rounding — the whole-tree invariant the
// tests pin within 1%.
//
// Stack roots are "rank_0003" frames (the span's recording rank), with an
// optional "job:NAME" frame above them when a rank→job table is supplied,
// so a flamegraph of a multi-tenant run splits by tenant at the top.
#pragma once

#include <string>
#include <vector>

namespace parcoll::obs {

class SpanStore;

/// Collapsed stacks of the whole span tree. `rank_jobs` (optional) maps
/// rank id -> job name ("" for untagged); out-of-range ranks (drain/scrub
/// helper clients) are untagged. Identical stacks are merged; lines are
/// sorted, so output is deterministic.
[[nodiscard]] std::string folded_stacks(
    const SpanStore& spans,
    const std::vector<std::string>* rank_jobs = nullptr);

/// Total weight (nanoseconds) of a folded-stack document, for validation.
[[nodiscard]] unsigned long long folded_total_weight(const std::string& text);

}  // namespace parcoll::obs
