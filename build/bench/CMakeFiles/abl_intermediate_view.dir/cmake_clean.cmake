file(REMOVE_RECURSE
  "CMakeFiles/abl_intermediate_view.dir/abl_intermediate_view.cpp.o"
  "CMakeFiles/abl_intermediate_view.dir/abl_intermediate_view.cpp.o.d"
  "abl_intermediate_view"
  "abl_intermediate_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_intermediate_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
