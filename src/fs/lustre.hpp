// Lustre-like parallel file system simulation.
//
// Files are striped over a subset of the OSTs (default: 64 targets, 4 MB
// stripes, matching the paper's configuration). A client read/write of an
// extent list is split at stripe boundaries and into max_rpc_size RPCs,
// each issued to its OST (costing client CPU per RPC) and served in FIFO
// order by the OST model; the call returns when the last RPC completes —
// i.e. the client pipelines RPCs, as liblustre does.
//
// Data semantics: `data` is the concatenation of the extents' payloads in
// list order (nullptr for phantom mode). Bytes land in / come from the
// ObjectStore, so tests can verify protocol correctness end to end.
//
// This layer deliberately knows nothing about MPI; callers are identified
// by an integer client id (the rank), and time is charged by the caller.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "fs/object_store.hpp"
#include "fs/ost.hpp"
#include "fs/range_lock.hpp"
#include "fs/stripe.hpp"
#include "machine/machine_model.hpp"
#include "sim/engine.hpp"

namespace parcoll::obs {
class MetricsRegistry;
}  // namespace parcoll::obs

namespace parcoll::fs {

class IntegrityManager;

struct FileMeta {
  std::string name;
  int stripe_count = 0;
  std::uint64_t stripe_size = 0;
  int ost_start = 0;  // stripe index i lives on OST (ost_start + i) % num_osts
};

/// Degraded-mode outcome of one client I/O call. `faulted_seconds` is the
/// virtual time this client spent in timeouts and retry backoff during the
/// call (0 on the fault-free path), so callers can charge it to
/// TimeCat::Faulted instead of TimeCat::IO.
struct IoResult {
  double faulted_seconds = 0.0;
};

class LustreSim {
 public:
  LustreSim(sim::Engine& engine, const machine::StorageParams& params,
            StoreMode mode);

  /// Open (creating if needed) a file. Charges a metadata RTT of virtual
  /// time to the calling process. Zero stripe_count / stripe_size mean the
  /// file-system defaults. Striping of an existing file is immutable.
  int open(const std::string& name, int stripe_count = 0,
           std::uint64_t stripe_size = 0, bool charge_metadata = true);

  /// True if `name` has been created. Free (no simulated time).
  [[nodiscard]] bool exists(const std::string& name) const {
    return by_name_.count(name) > 0;
  }

  /// MPI_File_delete analogue: drop the name (ids are never reused).
  /// Charges a metadata RTT.
  void remove(const std::string& name);

  /// Write the extent list. `data` is the concatenated payload (or nullptr).
  /// Blocks the calling fiber until the last RPC completes.
  IoResult write(int client, int file_id, std::span<const Extent> extents,
                 const std::byte* data);

  /// Read the extent list into `out` (concatenated; nullptr allowed).
  IoResult read(int client, int file_id, std::span<const Extent> extents,
                std::byte* out);

  /// Attach a fault plan; forwarded to every OST (nulls detach).
  void set_fault(const fault::FaultPlan* plan, fault::FaultState* state);

  /// Attach the integrity manager (null detaches). With it attached, a
  /// write RPC whose payload the fault plan corrupts is caught by the wire
  /// checksum at OST ingest and retransmitted under the retry policy;
  /// without it the corruption lands silently.
  void set_integrity(IntegrityManager* integrity) { integrity_ = integrity; }

  /// Apply one latent media-corruption event: flip a bit of a seeded byte
  /// among those OST `event.ost` currently holds (no-op while it holds
  /// nothing, and in phantom mode). Called from an engine timer; never
  /// sleeps. `client` attributes the injection counter.
  void corrupt_media(const fault::MediaCorrupt& event,
                     std::uint64_t event_index, int client);

  /// Attach a metrics registry (null detaches). Recording observes the
  /// clock and OST backlog but never sleeps, so timing is unchanged.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Attach the per-client job table (null detaches): jobs->at(client) is
  /// the tenant name of that client id, "" for untagged. The vector is
  /// owned by the caller (the World) and may grow while attached; it is
  /// re-read on every RPC. With it attached and metrics on, fs-layer
  /// traffic is additionally accounted under "...{job=NAME}" slices.
  void set_jobs(const std::vector<std::string>* jobs) { jobs_ = jobs; }

  [[nodiscard]] int num_osts() const { return params_.num_osts; }
  /// Mutable access for samplers (inflight_bytes prunes internally).
  [[nodiscard]] OstModel& ost(std::size_t i) { return osts_[i]; }
  [[nodiscard]] const OstModel& ost(std::size_t i) const { return osts_[i]; }

  [[nodiscard]] std::uint64_t file_size(int file_id) const {
    return store_->size(file_id);
  }
  [[nodiscard]] const FileMeta& meta(int file_id) const;
  [[nodiscard]] const machine::StorageParams& params() const { return params_; }
  [[nodiscard]] ObjectStore& store() { return *store_; }

  /// Advisory byte-range locks (fcntl analogue) for data-sieving writers.
  [[nodiscard]] RangeLockManager& range_locks() { return range_locks_; }

  /// Totals across OSTs, for model validation in tests.
  [[nodiscard]] std::uint64_t total_rpcs() const;
  [[nodiscard]] std::uint64_t total_lock_switches() const;

 private:
  double submit(int client, int file_id, std::span<const Extent> extents,
                const std::byte* in, std::byte* out, bool is_write,
                double& faulted_seconds);
  /// Corruption/ingest-verification loop for one stored write piece.
  void ingest_piece(int client, int file_id, int ost_index, std::uint64_t pos,
                    const std::byte* src, std::uint64_t piece_len,
                    double& faulted_seconds);

  sim::Engine& engine_;
  const fault::FaultPlan* fault_plan_ = nullptr;
  fault::FaultState* fault_state_ = nullptr;
  IntegrityManager* integrity_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  const std::vector<std::string>* jobs_ = nullptr;
  machine::StorageParams params_;
  StoreMode mode_;
  RangeLockManager range_locks_;
  std::unique_ptr<ObjectStore> store_;
  std::vector<OstModel> osts_;
  /// Per-OST monotone draw counters for the payload-corruption process
  /// (fresh randomness per transmission, like the OSTs' drop/delay draws).
  std::vector<std::uint64_t> corrupt_draws_;
  std::vector<FileMeta> files_;
  std::unordered_map<std::string, int> by_name_;
  /// Metadata (MDS) round-trip for open.
  static constexpr double kMetadataLatency = 0.5e-3;
};

}  // namespace parcoll::fs
