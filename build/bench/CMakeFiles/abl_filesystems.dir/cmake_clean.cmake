file(REMOVE_RECURSE
  "CMakeFiles/abl_filesystems.dir/abl_filesystems.cpp.o"
  "CMakeFiles/abl_filesystems.dir/abl_filesystems.cpp.o.d"
  "abl_filesystems"
  "abl_filesystems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_filesystems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
