# Empty compiler generated dependencies file for abl_persistent_groups.
# This may be replaced when dependencies are built.
