// MPI-Tile-IO: tiled access to a 2-D dense dataset (paper §5.2).
//
// Each process renders one tile of tile_w x tile_h elements; tiles form a
// tiles_x x tiles_y grid over the global array, accessed through a subarray
// file view in a single collective call. The paper's parameters: 1024 x 768
// tiles of 64-byte elements, giving 48 MB per process.
//
// FA structure: a tile row is a contiguous file region, so clean split
// points exist between tile rows (pattern b); asking for more subgroups
// than tile rows triggers the intermediate-view switch.
#pragma once

#include <cstdint>

#include "dtype/datatype.hpp"
#include "workloads/runner.hpp"

namespace parcoll::workloads {

struct TileIOConfig {
  int tiles_x = 0;  // grid width; height = nranks / tiles_x
  std::uint64_t tile_w = 1024;
  std::uint64_t tile_h = 768;
  std::uint64_t elem_size = 64;
  /// mpi-tile-io's overlap option: each tile's read region extends this
  /// many elements into its neighbours (halo exchange via the file).
  /// Overlapping regions make concurrent *writes* ill-defined, so the
  /// overlap applies to reads; run_tileio rejects overlapped writes.
  std::uint64_t overlap_x = 0;
  std::uint64_t overlap_y = 0;

  /// The paper-style grid for `nranks`: 8 tiles wide (so tile rows — the
  /// clean FA boundaries — are plentiful), nranks/8 tall.
  static TileIOConfig paper(int nranks);

  [[nodiscard]] int tiles_y(int nranks) const { return nranks / tiles_x; }
  [[nodiscard]] std::uint64_t rank_bytes() const {
    return tile_w * tile_h * elem_size;
  }
  /// This rank's (possibly overlapped, edge-clamped) data bytes.
  [[nodiscard]] std::uint64_t rank_bytes_overlapped(int rank,
                                                    int nranks) const;
  [[nodiscard]] std::uint64_t file_bytes(int nranks) const {
    return rank_bytes() * static_cast<std::uint64_t>(nranks);
  }
  /// The rank's tile as a subarray filetype over the global array.
  [[nodiscard]] dtype::Datatype filetype(int rank, int nranks) const;
};

/// Run one collective tile write (write=true) or read. Returns bandwidth
/// and breakdown of the measured phase.
RunResult run_tileio(const TileIOConfig& config, int nranks,
                     const RunSpec& spec, bool write);

}  // namespace parcoll::workloads
