// End-to-end data integrity for the simulated I/O stack.
//
// When a collective write is prepared, the user's bytes are chunked into
// fixed-size blocks and checksummed (CRC-32C) where they enter the
// pipeline. The block records ride alongside the data through intra-node
// staging, the exchange phase, bb drains, and write RPCs; the stored bytes
// are re-verified against them at the OST on ingest, before a bb segment
// drains, at the client on read, and by a background scrubber that walks
// the ObjectStore for latent media corruption. At IntegrityLevel::Repair
// each record also retains a replica of the source bytes, so a detected
// mismatch can be healed in place; at Detect a mismatch is only recorded,
// and the pending error is surfaced through a collective error-reduction
// so every rank of the communicator throws the identical CollectiveIoError.
//
// Like LustreSim, this layer knows nothing about MPI: callers are integer
// client ids and every method returns the seconds of checksum work it
// modeled, for the caller to charge (TimeCat::Integrity). With the level
// Off no manager is ever constructed, so the disabled path stays
// bit-identical to a build without the integrity layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "fs/object_store.hpp"
#include "fs/stripe.hpp"

namespace parcoll::fs {

/// CRC-32C (Castagnoli), software table-driven; `seed` chains incremental
/// updates (pass the previous return value).
[[nodiscard]] std::uint32_t crc32c(const std::byte* data, std::size_t length,
                                   std::uint32_t seed = 0);

enum class IntegrityLevel {
  Off,     // no checksums; corruption is silent (pre-PR behavior)
  Detect,  // verify everywhere, report unrecoverable corruption collectively
  Repair,  // Detect + heal mismatches from the retained source replica
};

[[nodiscard]] const char* to_string(IntegrityLevel level);
[[nodiscard]] IntegrityLevel parse_integrity_level(const std::string& text);

struct IntegrityConfig {
  IntegrityLevel level = IntegrityLevel::Off;
  /// Checksum block granularity: registered extents are chunked to this.
  std::uint64_t block = 64ull << 10;
  /// Modeled client-side checksum throughput (bytes/s) — the "overhead"
  /// the abl_integrity ablation charts.
  double checksum_bw = 4.0 * static_cast<double>(1ull << 30);
  /// Run the background scrubber after each latent media-corruption event.
  bool scrub = true;
  /// Delay between a media event and the scrubber's visit.
  double scrub_delay = 0.005;

  [[nodiscard]] bool enabled() const { return level != IntegrityLevel::Off; }
  bool operator==(const IntegrityConfig&) const = default;
};

/// Checksum-pipeline totals (world-global; FaultCounters carries the
/// per-client injected/detected/repaired view).
struct IntegrityCounters {
  std::uint64_t blocks = 0;
  std::uint64_t bytes_checksummed = 0;
  std::uint64_t detected = 0;
  std::uint64_t repaired = 0;
  std::uint64_t scrub_repairs = 0;
  std::uint64_t errors = 0;  // unrecoverable, pending collective agreement
};

/// The error every rank of the communicator throws after the collective
/// error-reduction agrees recovery is exhausted for an extent.
class CollectiveIoError : public std::runtime_error {
 public:
  CollectiveIoError(int fs_id, std::uint64_t offset, std::uint64_t length);

  int fs_id;
  std::uint64_t offset;
  std::uint64_t length;
};

class IntegrityManager {
 public:
  IntegrityManager(IntegrityConfig config, fault::FaultState* faults);

  [[nodiscard]] const IntegrityConfig& config() const { return config_; }

  /// Checksum (and, at Repair, retain) the payload entering a collective
  /// write. `data` is the extents' concatenated payload; nullptr (phantom
  /// mode) registers coverage and models cost without bytes. Returns the
  /// modeled checksum seconds for the caller to charge.
  double register_write(int client, int fs_id, std::span<const Extent> extents,
                        const std::byte* data);

  /// Verify an in-memory buffer (a bb staging segment about to drain)
  /// against the records fully contained in `extents`; heals the buffer in
  /// place at Repair level. `data` is the concatenated payload.
  double verify_buffer(int client, int fs_id, std::span<const Extent> extents,
                       std::byte* data);

  /// Verify the stored bytes of every record overlapping `extents`
  /// (client-on-read / OST ingest audit); heals the store at Repair level.
  double verify_ranges(int client, int fs_id, std::span<const Extent> extents,
                       ObjectStore& store);

  /// Verify every record of every registered file (the scrubber's walk and
  /// the close-time sweep). `by_scrubber` additionally counts heals as
  /// scrub repairs. Records whose bytes have not fully landed on the store
  /// yet (registered at collective entry, still staged or in flight) are
  /// skipped — auditing them against the store would "detect" every
  /// pending block.
  double scrub_all(int client, ObjectStore& store, bool by_scrubber);

  /// LustreSim calls this when a write piece commits to the object store:
  /// records fully covered by landed bytes become scrubbable.
  void mark_landed(int fs_id, std::uint64_t offset, std::uint64_t length);

  /// Record an unrecoverable corruption, pending collective agreement.
  void record_error(int fs_id, std::uint64_t offset, std::uint64_t length);

  /// Wire-level pipeline outcomes: the OST ingest checksum (LustreSim)
  /// rejected a corrupted RPC payload / a retransmit delivered the clean
  /// bytes. Folded into the same counters as store-audit outcomes so the
  /// close-time harvest sees every detection the pipeline made.
  void note_wire_detected() { ++counters_.detected; }
  void note_wire_repaired() { ++counters_.repaired; }

  /// Nonzero word encoding the highest-priority pending error (0 = none);
  /// ranks agree via allreduce_max over this word.
  [[nodiscard]] std::uint64_t pending_word() const;

  /// Build the agreed error from a nonzero word.
  [[nodiscard]] CollectiveIoError error_of(std::uint64_t word) const;

  [[nodiscard]] bool has_error() const { return !errors_.empty(); }
  [[nodiscard]] const IntegrityCounters& counters() const { return counters_; }

  /// Delta since the previous harvest (close-time stats attribution).
  IntegrityCounters harvest();

 private:
  struct Record {
    std::uint64_t length = 0;
    std::uint64_t landed = 0;        // bytes committed to the store so far
    std::uint32_t crc = 0;
    bool phantom = false;           // registered without bytes
    std::vector<std::byte> replica;  // retained source (memory mode)
  };
  using FileMap = std::map<std::uint64_t, Record>;

  void erase_range(FileMap& map, std::uint64_t lo, std::uint64_t hi);
  /// Verify one record against `actual` (record-length bytes); returns
  /// true when the bytes now match the record (clean or healed). `heal`
  /// writes the replica back through the callback on repair.
  template <typename Heal>
  bool check_record(int client, int fs_id, std::uint64_t offset,
                    const Record& record, const std::byte* actual,
                    bool by_scrubber, Heal&& heal);

  IntegrityConfig config_;
  fault::FaultState* faults_;
  std::unordered_map<int, FileMap> files_;
  std::vector<CollectiveIoError> errors_;
  IntegrityCounters counters_;
  IntegrityCounters harvested_;
};

}  // namespace parcoll::fs
