#include "core/parcoll.hpp"

#include <cstring>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "bb/staging.hpp"
#include "bb/target.hpp"
#include "check/invariants.hpp"
#include "core/intermediate_view.hpp"
#include "core/subgroup.hpp"
#include "fs/integrity.hpp"
#include "mpi/collectives.hpp"
#include "mpi/trace.hpp"
#include "mpiio/ext2ph.hpp"
#include "obs/metrics.hpp"
#include "mpiio/sieve.hpp"
#include "node/hier_coll.hpp"
#include "node/intra_agg.hpp"
#include "node/nodecomm.hpp"
#include "sim/random.hpp"

namespace parcoll::core {

namespace {

/// Digest of the comm-global part of a subgroup plan. Every member of the
/// establishing collective must compute the identical value, or subgroups
/// would silently disagree on boundaries/rosters (the failure PARCOACH-style
/// checking exists to catch).
std::uint64_t plan_hash(const SubgroupPlan& plan) {
  std::uint64_t h = static_cast<std::uint64_t>(plan.fa().mode);
  h = sim::hash_combine(h, static_cast<std::uint64_t>(plan.fa().num_groups));
  for (int group : plan.fa().group_of_rank) {
    h = sim::hash_combine(h, static_cast<std::uint64_t>(group));
  }
  for (const auto& [lo, hi] : plan.fa().areas) {
    h = sim::hash_combine(sim::hash_combine(h, lo), hi);
  }
  for (const auto& aggs : plan.aggs_per_group()) {
    h = sim::hash_combine(h, aggs.size());
    for (int agg : aggs) {
      h = sim::hash_combine(h, static_cast<std::uint64_t>(agg));
    }
  }
  return h;
}

/// Digest of a re-election round's outcome: the agreed clock and the
/// roster every subgroup member will aggregate through for this call.
std::uint64_t roster_hash(double agreed, const std::vector<int>& roster) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(agreed));
  std::memcpy(&bits, &agreed, sizeof(bits));
  std::uint64_t h = sim::mix64(bits);
  for (int agg : roster) {
    h = sim::hash_combine(h, static_cast<std::uint64_t>(agg));
  }
  return h;
}

using Ext2phOutcomePair = std::pair<std::uint64_t, std::uint64_t>;

RankAccess access_of(const mpiio::PreparedRequest& request) {
  RankAccess access;
  if (!request.extents.empty()) {
    access.st = request.extents.front().offset;
    access.end = request.extents.back().end();
  }
  access.bytes = request.bytes;
  return access;
}

/// The per-handle cached partition: established by the first ParColl call
/// after a view is set, reused by later calls so that subgroups only ever
/// synchronize among themselves and drift independently through time.
struct PlanCache {
  SubgroupPlan plan;
};

Ext2phOutcomePair run_ext2ph(mpi::Rank& self, const mpi::Comm& comm,
                             mpiio::IoTarget& target,
                             const mpiio::CollRequest& request,
                             const mpiio::Ext2phOptions& options,
                             bool is_write) {
  const auto result = is_write
                          ? mpiio::ext2ph_write(self, comm, target, request,
                                                options)
                          : mpiio::ext2ph_read(self, comm, target, request,
                                               options);
  return {result.cycles, result.rmw_reads};
}

/// Run one two-phase exchange over `comm`, either flat or — when the
/// cb_intranode hint activates and some node hosts >= 2 members — staged
/// two-level: requests aggregate within each node first and only the node
/// leaders join the inter-node ext2ph. `options.aggregators` is comm-local
/// on entry; under two-level staging it is mapped onto the leaders of the
/// nodes hosting those ranks, so ParColl's aggregator distribution (and
/// any fault re-election) carries through to the leader stage.
void run_two_phase(mpi::Rank& self, const mpi::Comm& comm,
                   const mpiio::Hints& hints, mpiio::IoTarget& target,
                   const mpiio::CollRequest& request,
                   mpiio::Ext2phOptions options, bool is_write,
                   CollectiveOutcome& outcome) {
  const machine::Topology& topo = self.world().model().topology;
  if (node::two_level_active(hints.cb_intranode, topo, comm)) {
    const node::NodeComm nodes =
        node::make_node_comm(self, comm, topo, hints.cb_intranode_leader);
    auto leader_aggs = nodes.to_leader_locals(options.aggregators);
    // Auto's cost gate: staging funnels all file traffic through the node
    // leaders, so a roster with several aggregators on one node (e.g. the
    // Catamount every-process default) would lose I/O parallelism to buy
    // the coordination win. Auto declines then; On trusts the user.
    if (hints.cb_intranode == node::IntranodeMode::Auto &&
        leader_aggs.size() != options.aggregators.size()) {
      std::tie(outcome.cycles, outcome.rmw_reads) =
          run_ext2ph(self, comm, target, request, options, is_write);
      return;
    }
    options.aggregators = std::move(leader_aggs);
    const auto result =
        is_write
            ? node::two_level_write(self, nodes, target, request, options)
            : node::two_level_read(self, nodes, target, request, options);
    outcome.cycles = result.cycles;
    outcome.rmw_reads = result.rmw_reads;
    outcome.intra_bytes = result.intra_bytes;
    outcome.two_level = true;
    return;
  }
  std::tie(outcome.cycles, outcome.rmw_reads) =
      run_ext2ph(self, comm, target, request, options, is_write);
}

}  // namespace

/// Everything write and read share: plan (or reuse) the partition, build
/// the target, and run ext2ph in the right space. Handle-independent: the
/// cache slot may be null (no partition reuse), which is how split
/// collectives' helper fibers call it.
CollectiveOutcome run_collective_engine(mpi::Rank& self, const mpi::Comm& comm,
                                        const mpiio::Hints& hints, int fs_id,
                                        mpiio::PreparedRequest& prep,
                                        bool is_write,
                                        std::shared_ptr<void>* cache_slot) {
  auto& fs = self.world().fs();

  // Burst-buffer staging: with bb=enable every write target below becomes
  // a BbTarget, so aggregator writes land in the per-node staging store
  // and drain to Lustre in the background. The foreground guard tells the
  // arbitrate drain policy that ranks are inside a collective call.
  std::shared_ptr<bb::StagingStore> bb_store;
  if (hints.bb.enabled) {
    bb_store =
        bb::shared_store(self.world(), comm.context_id(), fs_id, hints.bb);
  }
  bb::ForegroundGuard foreground(bb_store.get());

  mpiio::Ext2phOptions options;
  options.cb_buffer_size = hints.cb_buffer_size;
  if (hints.cb_fd_align) {
    options.fd_alignment = fs.meta(fs_id).stripe_size;
  }

  CollectiveOutcome outcome;
  outcome.bytes = prep.bytes;

  const bool cb_enabled = is_write ? hints.cb_write_enabled
                                   : hints.cb_read_enabled;
  if (!cb_enabled) {
    // romio_cb_write/read=disable: the collective call is serviced locally
    // with data sieving, exactly as ROMIO degrades it. No coordination.
    bb::BbTarget target(fs, fs_id, bb_store.get());
    if (prep.extents.size() <= 1) {
      if (is_write) {
        target.write(self, prep.extents, prep.data());
      } else {
        target.read(self, prep.extents,
                    prep.packed.empty() ? nullptr : prep.packed.data());
      }
    } else {
      if (bb_store != nullptr) {
        // Sieving read-modify-writes the filesystem directly; staged data
        // covering these extents must land first.
        bb_store->flush_overlapping(self, prep.extents);
      }
      mpiio::sieve_rmw(self, fs_id, prep, is_write);
    }
    return outcome;
  }

  const ParcollSettings settings = ParcollSettings::from(hints);
  if (!settings.enabled()) {
    // Plain extended two-phase over the whole group (the baseline).
    options.aggregators = mpiio::default_aggregators(
        self.world().model().topology, comm, hints);
    bb::BbTarget target(fs, fs_id, bb_store.get());
    const mpiio::CollRequest request{prep.extents, prep.data()};
    run_two_phase(self, comm, hints, target, request, options, is_write,
                  outcome);
    return outcome;
  }

  // Establish (or reuse) the partition. Only the establishing call pays a
  // global exchange; with persistent groups, later calls on the same view
  // go straight to their subgroup.
  std::shared_ptr<PlanCache> cache;
  if (cache_slot != nullptr) {
    cache = std::static_pointer_cast<PlanCache>(*cache_slot);
  }
  if (!cache || !hints.parcoll_persistent_groups) {
    // The pattern-detection allgather is the one remaining global exchange;
    // under two-level staging it funnels through the node leaders, so the
    // inter-node stage involves num_nodes participants instead of P.
    mpi::SpanGuard partition_span(self, obs::SpanKind::Stage, "partition");
    const machine::Topology& topo = self.world().model().topology;
    const auto accesses =
        node::two_level_active(hints.cb_intranode, topo, comm)
            ? std::make_shared<const std::vector<RankAccess>>(
                  node::hier_allgather(
                      self,
                      node::make_node_comm(self, comm, topo,
                                           hints.cb_intranode_leader),
                      access_of(prep)))
            : mpi::allgather_shared(self, comm, access_of(prep));
    auto fresh = std::make_shared<PlanCache>();
    fresh->plan = form_subgroups(self, comm, accesses, hints);
    if (fresh->plan.fa().mode == PartitionMode::Direct) {
      // Establishing-call invariant: my extents lie in my File Area (the
      // partition was built from clean split points).
      const auto [fa_lo, fa_hi] =
          fresh->plan.fa()
              .areas[static_cast<std::size_t>(fresh->plan.my_group)];
      if (!prep.extents.empty() &&
          (prep.extents.front().offset < fa_lo ||
           prep.extents.back().end() > fa_hi)) {
        throw std::logic_error("parcoll: request escapes its File Area");
      }
    }
    cache = fresh;
    if (cache_slot != nullptr) {
      *cache_slot = cache;
    }
    if (auto* checker = self.world().checker()) {
      checker->on_partition(self.rank(), comm.context_id(), comm.size(),
                            plan_hash(fresh->plan));
    }
  }
  const SubgroupPlan& plan = cache->plan;
  outcome.mode = plan.fa().mode;
  outcome.num_groups = plan.fa().num_groups;
  options.aggregators = plan.sub_aggregators;
  // Everything from here runs subgroup-local; the span labels descendants
  // (re-election, exchange cycles, I/O) with this rank's subgroup.
  mpi::SpanGuard subgroup_span(self, obs::SpanKind::Subgroup, "subgroup",
                               plan.my_group);
  // Per-subgroup call/cycle counters, recorded once per call by the
  // subgroup's first rank (mirrors the FileStats call-level convention).
  auto record_group_metrics = [&](const CollectiveOutcome& out) {
    auto* metrics = self.world().metrics();
    if (metrics == nullptr ||
        plan.subcomm.local_rank(self.rank()) != 0) {
      return;
    }
    const auto group = static_cast<std::size_t>(
        plan.my_group >= 0 ? plan.my_group : 0);
    ++metrics->counter("parcoll.group.calls", group);
    metrics->counter("parcoll.group.cycles", group) += out.cycles;
  };

  // Degraded mode: when the fault plan schedules rank stalls, the subgroup
  // agrees on a common time (a max-reduction over its members' clocks) and
  // replaces any aggregator stalled past the threshold for this call. The
  // cached roster is never mutated: a recovered aggregator is reinstated
  // on the next call. Gated on has_rank_stalls() so the extra reduction
  // cannot perturb fault-free timing.
  const fault::FaultPlan* fplan = self.world().fault_plan();
  if (fplan != nullptr && fplan->has_rank_stalls()) {
    mpi::SpanGuard reelect_span(self, obs::SpanKind::Stage, "reelect");
    const machine::Topology& topo = self.world().model().topology;
    const double agreed =
        node::two_level_active(hints.cb_intranode, topo, plan.subcomm)
            ? node::hier_allreduce_max(
                  self,
                  node::make_node_comm(self, plan.subcomm, topo,
                                       hints.cb_intranode_leader),
                  self.now())
            : mpi::allreduce_max(self, plan.subcomm, self.now());
    int replaced = 0;
    options.aggregators = reelect_stalled_aggregators(
        plan.subcomm, plan.sub_aggregators, *fplan, agreed, &replaced);
    if (auto* checker = self.world().checker()) {
      checker->on_reelection(self.rank(), plan.subcomm.context_id(),
                             plan.subcomm.size(),
                             roster_hash(agreed, options.aggregators));
    }
    if (replaced > 0 && plan.subcomm.local_rank(self.rank()) == 0) {
      self.world().fault_state().of(self.rank()).reelections +=
          static_cast<std::uint64_t>(replaced);
    }
  }

  if (plan.fa().mode == PartitionMode::SingleGroup) {
    bb::BbTarget target(fs, fs_id, bb_store.get());
    const mpiio::CollRequest request{prep.extents, prep.data()};
    run_two_phase(self, comm, hints, target, request, options, is_write,
                  outcome);
    record_group_metrics(outcome);
    return outcome;
  }

  if (plan.fa().mode == PartitionMode::Direct) {
    bb::BbTarget target(fs, fs_id, bb_store.get());
    const mpiio::CollRequest request{prep.extents, prep.data()};
    run_two_phase(self, plan.subcomm, hints, target, request, options,
                  is_write, outcome);
    record_group_metrics(outcome);
    return outcome;
  }

  // Intermediate view (pattern c). Share the members' physical extents
  // within the subgroup so aggregators can resolve intermediate ranges.
  // The intermediate coordinate space is subgroup-local (each group's
  // space starts at 0): groups touch disjoint physical segments, so their
  // spaces are independent and no global exchange is needed per call.
  const auto member_extents =
      mpi::allgatherv(self, plan.subcomm, prep.extents);
  std::vector<MemberSegments> members;
  members.reserve(member_extents.size());
  std::uint64_t inter_pos = 0;
  std::uint64_t my_inter_start = 0;
  const int sub_me = plan.subcomm.local_rank(self.rank());
  for (int sub_local = 0; sub_local < plan.subcomm.size(); ++sub_local) {
    MemberSegments member;
    member.inter_start = inter_pos;
    member.extents = member_extents[static_cast<std::size_t>(sub_local)];
    if (sub_local == sub_me) {
      my_inter_start = inter_pos;
    }
    for (const fs::Extent& extent : member.extents) {
      inter_pos += extent.length;
    }
    members.push_back(std::move(member));
  }
  bb::BbTarget physical(fs, fs_id, bb_store.get());
  IntermediateTarget target(physical, IntermediateMap(std::move(members)));

  mpiio::CollRequest request;
  if (prep.bytes > 0) {
    request.extents.push_back(fs::Extent{my_inter_start, prep.bytes});
  }
  request.data = prep.data();
  run_two_phase(self, plan.subcomm, hints, target, request, options, is_write,
                outcome);
  record_group_metrics(outcome);
  return outcome;
}

namespace {
CollectiveOutcome run_partitioned(mpiio::FileHandle& file,
                                  mpiio::PreparedRequest& prep,
                                  bool is_write) {
  return run_collective_engine(file.self(), file.comm(), file.hints(),
                               file.fs_id(), prep, is_write,
                               &file.engine_cache());
}

/// Attribute this rank's degraded-mode events during one collective call
/// to the call's stats delta. Valid because a rank's counters only change
/// while its own fiber runs.
void record_fault_delta(mpiio::FileStats& delta,
                        const fault::FaultCounters& before,
                        const fault::FaultCounters& after) {
  delta.fault_retries = after.retries - before.retries;
  delta.fault_failovers = after.failovers - before.failovers;
  delta.fault_drops = after.drops - before.drops;
  delta.fault_reelections = after.reelections - before.reelections;
  delta.fault_stalls = after.stalls - before.stalls;
}

/// Collective error agreement at the end of a collective call (integrity
/// on only): reduce the highest-priority pending unrecoverable-corruption
/// word over the call's communicator; a nonzero maximum makes every rank
/// throw the identical CollectiveIoError. With integrity off this is never
/// reached, so the default path stays free of the extra reduction.
void agree_on_errors(mpiio::FileHandle& file) {
  auto* integ = file.self().world().integrity();
  if (integ == nullptr) {
    return;
  }
  const std::uint64_t word = mpi::allreduce_max(file.self(), file.comm(),
                                                integ->pending_word());
  if (auto* checker = file.self().world().checker()) {
    checker->on_error_agreement(file.self().rank(), file.comm().context_id(),
                                file.comm().size(), word);
  }
  if (word != 0) {
    throw integ->error_of(word);
  }
}
}  // namespace

CollectiveOutcome write_at_all(mpiio::FileHandle& file, std::uint64_t offset,
                               const void* buffer, std::uint64_t count,
                               const dtype::Datatype& memtype) {
  file.require_writable();
  mpi::SpanGuard call_span(file.self(), obs::SpanKind::Call, "write_at_all");
  const auto before = file.time_snapshot();
  const fault::FaultCounters faults_before =
      file.self().world().fault_counters(file.self().rank());
  mpiio::PreparedRequest prep =
      file.prepare_write(offset, buffer, count, memtype);
  // Checksum the payload where it enters the pipeline: from here the block
  // records ride alongside the data through staging, exchange, and drains.
  if (auto* integ = file.self().world().integrity()) {
    const double seconds = integ->register_write(
        file.self().rank(), file.fs_id(), prep.extents, prep.data());
    if (seconds > 0) file.self().busy(mpi::TimeCat::Integrity, seconds);
  }
  const CollectiveOutcome outcome = run_partitioned(file, prep, true);
  agree_on_errors(file);

  mpiio::FileStats delta;
  delta.time = mpiio::FileHandle::time_delta(before, file.time_snapshot());
  record_fault_delta(delta, faults_before,
                     file.self().world().fault_counters(file.self().rank()));
  delta.bytes_written = outcome.bytes;
  delta.exchange_cycles = outcome.cycles;
  delta.rmw_reads = outcome.rmw_reads;
  delta.intranode_bytes = outcome.intra_bytes;
  // Call-level counters are recorded once per collective call, by the
  // call's first rank; per-rank quantities (time, bytes, cycles) sum.
  if (file.comm().local_rank(file.self().rank()) == 0) {
    delta.collective_writes = 1;
    delta.intranode_calls = outcome.two_level ? 1 : 0;
    delta.parcoll_calls =
        ParcollSettings::from(file.hints()).enabled() ? 1 : 0;
    delta.view_switches = outcome.mode == PartitionMode::Intermediate ? 1 : 0;
    delta.last_num_groups = outcome.num_groups;
  }
  file.add_stats(delta);
  return outcome;
}

CollectiveOutcome read_at_all(mpiio::FileHandle& file, std::uint64_t offset,
                              void* buffer, std::uint64_t count,
                              const dtype::Datatype& memtype) {
  file.require_readable();
  mpi::SpanGuard call_span(file.self(), obs::SpanKind::Call, "read_at_all");
  const auto before = file.time_snapshot();
  const fault::FaultCounters faults_before =
      file.self().world().fault_counters(file.self().rank());
  mpiio::PreparedRequest prep =
      file.prepare_read(offset, buffer, count, memtype);
  // Client-side read verification: staged-undrained bb data would mismatch
  // the registered checksums, so overlapping segments land first; then
  // latent store corruption under this rank's extents is healed (Repair)
  // or recorded (Detect) before any aggregator serves the bytes.
  if (auto* integ = file.self().world().integrity()) {
    if (auto* bb = file.bb_store(); bb != nullptr && !bb->idle()) {
      bb->flush_overlapping(file.self(), prep.extents);
    }
    const double seconds =
        integ->verify_ranges(file.self().rank(), file.fs_id(), prep.extents,
                             file.self().world().fs().store());
    if (seconds > 0) file.self().busy(mpi::TimeCat::Integrity, seconds);
  }
  const CollectiveOutcome outcome = run_partitioned(file, prep, false);
  agree_on_errors(file);
  file.finish_read(prep, buffer, count, memtype);

  mpiio::FileStats delta;
  delta.time = mpiio::FileHandle::time_delta(before, file.time_snapshot());
  record_fault_delta(delta, faults_before,
                     file.self().world().fault_counters(file.self().rank()));
  delta.bytes_read = outcome.bytes;
  delta.exchange_cycles = outcome.cycles;
  delta.rmw_reads = outcome.rmw_reads;
  delta.intranode_bytes = outcome.intra_bytes;
  if (file.comm().local_rank(file.self().rank()) == 0) {
    delta.collective_reads = 1;
    delta.intranode_calls = outcome.two_level ? 1 : 0;
    delta.parcoll_calls =
        ParcollSettings::from(file.hints()).enabled() ? 1 : 0;
    delta.view_switches = outcome.mode == PartitionMode::Intermediate ? 1 : 0;
    delta.last_num_groups = outcome.num_groups;
  }
  file.add_stats(delta);
  return outcome;
}

CollectiveOutcome write_all(mpiio::FileHandle& file, const void* buffer,
                            std::uint64_t count,
                            const dtype::Datatype& memtype) {
  const auto outcome =
      write_at_all(file, file.position(), buffer, count, memtype);
  file.advance_bytes(count * memtype.size());
  return outcome;
}

CollectiveOutcome read_all(mpiio::FileHandle& file, void* buffer,
                           std::uint64_t count, const dtype::Datatype& memtype) {
  const auto outcome =
      read_at_all(file, file.position(), buffer, count, memtype);
  file.advance_bytes(count * memtype.size());
  return outcome;
}

ParcollDecision plan_decision(mpiio::FileHandle& file, std::uint64_t offset,
                              std::uint64_t count,
                              const dtype::Datatype& memtype) {
  auto& self = file.self();
  const mpi::Comm& comm = file.comm();
  mpiio::PreparedRequest prep =
      file.prepare_read(offset, nullptr, count, memtype);
  const auto accesses = mpi::allgather_shared(self, comm, access_of(prep));
  const SubgroupPlan plan = form_subgroups(self, comm, accesses, file.hints());
  ParcollDecision decision;
  decision.mode = plan.fa().mode;
  decision.num_groups = plan.fa().num_groups;
  decision.aggregators_per_group = plan.aggs_per_group();
  return decision;
}

}  // namespace parcoll::core
