// Node-local burst-buffer staging store.
//
// A StagingStore keeps one capacity-limited arena per physical node (keyed
// by machine::Topology). Collective writes land in the arena at memory
// speed and return; a per-node drain agent (bb/drain.hpp) writes the
// staged segments behind to the simulated Lustre backend under a pluggable
// policy. The store is the single consistency authority:
//
//   * Same-node program order — each arena is a FIFO served by one drain
//     fiber at a time, so a rank's overlapping writes reach the file in
//     issue order.
//   * Cross-node overlaps — a stage or spill that overlaps another node's
//     staged/in-flight data first flushes that data synchronously, so the
//     later writer still wins.
//   * Read-your-writes — reads through BbTarget flush overlapping staged
//     data before touching the file.
//
// Crash consistency under the fault model: a staged segment is freed only
// after LustreSim::write returns, and that call internally retries, backs
// off, and fails over per the installed FaultPlan. A drain hit by an OST
// outage therefore replays the same staged bytes until they are durable —
// no loss, and no double-apply beyond idempotent overwrite of the same
// extents. All staged data is durable by FileHandle::close().
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "bb/options.hpp"
#include "fs/stripe.hpp"
#include "mpi/runtime.hpp"
#include "sim/engine.hpp"

namespace parcoll::bb {

/// Lifetime event counters, reported in FileStats / metrics.
struct BbCounters {
  std::uint64_t staged_segments = 0;
  std::uint64_t staged_bytes = 0;
  std::uint64_t drained_segments = 0;
  std::uint64_t drained_bytes = 0;
  /// Writes that did not fit the arena and fell back to the sync path.
  std::uint64_t spills = 0;
  std::uint64_t spill_bytes = 0;
  /// Synchronous flushes forced by cross-node overlap or read-through.
  std::uint64_t conflict_flushes = 0;
  /// Degraded-mode events during drain writes (fault plan installed).
  std::uint64_t drain_retries = 0;
  std::uint64_t drain_failovers = 0;
};

class DrainScheduler;

class StagingStore {
 public:
  StagingStore(mpi::World& world, int fs_id, BbConfig config);
  ~StagingStore();

  StagingStore(const StagingStore&) = delete;
  StagingStore& operator=(const StagingStore&) = delete;

  /// Absorb `extents` (+ concatenated payload, may be null in phantom
  /// mode) into the calling rank's node arena, charging memcpy time.
  /// Returns false — staging nothing — when the segment does not fit.
  bool stage(mpi::Rank& self, std::span<const fs::Extent> extents,
             const std::byte* data);

  /// Block until no staged or in-flight segment overlaps `extents`
  /// (any node). Wait time is charged to TimeCat::DrainWait.
  void flush_overlapping(mpi::Rank& self, std::span<const fs::Extent> extents);

  /// Block until every arena is empty and nothing is in flight.
  void flush_all(mpi::Rank& self);

  /// Does any node other than `node` hold staged/in-flight data
  /// overlapping `extents`? (Same-node overlaps are ordered by the FIFO.)
  [[nodiscard]] bool conflicts_elsewhere(
      int node, std::span<const fs::Extent> extents) const;

  /// Foreground-activity bracket, used by the Arbitrate policy: drains
  /// defer while any rank is inside a collective I/O call.
  void foreground_begin() { ++foreground_; }
  void foreground_end();

  void note_spill(std::uint64_t bytes);
  void note_conflict_flush();

  [[nodiscard]] bool idle() const;
  [[nodiscard]] std::uint64_t pending_bytes() const;
  [[nodiscard]] const BbCounters& counters() const { return counters_; }
  /// Drain-fiber time, summed: Drain (hidden fs writes) and Faulted
  /// (degraded-mode retries during drains). Merged into FileStats at close.
  [[nodiscard]] const mpi::TimeBreakdown& drain_time() const {
    return drain_time_;
  }
  /// Counters / drain time accumulated since the previous harvest. The
  /// store outlives file handles (shared_object), so close-time stats
  /// merging takes deltas to stay correct across repeated open/close.
  [[nodiscard]] BbCounters harvest_counters();
  [[nodiscard]] mpi::TimeBreakdown harvest_drain_time();
  [[nodiscard]] const BbConfig& config() const { return config_; }
  [[nodiscard]] mpi::World& world() { return world_; }
  [[nodiscard]] int fs_id() const { return fs_id_; }

 private:
  friend class DrainScheduler;

  struct StagedSegment {
    int client = -1;        // staging rank (labels drain spans)
    double staged_at = 0;   // deadline bookkeeping
    std::uint64_t bytes = 0;
    std::vector<fs::Extent> extents;
    std::vector<std::byte> data;  // empty in phantom mode
    /// The fault plan decayed this segment while resident (phantom mode
    /// keeps no bytes, so the pre-drain audit keys off this flag instead).
    bool corrupted = false;
  };

  struct NodeArena {
    std::uint64_t used = 0;  // queued + in-flight bytes
    std::deque<StagedSegment> queue;
    /// Extents of the segment the drain fiber is currently writing (empty
    /// when none): flushes must wait for these too, or a later overlapping
    /// write could complete before an older one.
    std::vector<fs::Extent> in_flight;
    std::uint64_t in_flight_bytes = 0;
    bool drainer_active = false;
    /// A deadline timer fired with data still queued: policy gates are
    /// overridden until the arena empties.
    bool overdue = false;
    bool timer_armed = false;
  };

  [[nodiscard]] static bool overlaps(std::span<const fs::Extent> a,
                                     std::span<const fs::Extent> b);
  [[nodiscard]] bool arena_overlaps(const NodeArena& arena,
                                    std::span<const fs::Extent> extents) const;
  [[nodiscard]] bool any_overlap(std::span<const fs::Extent> extents) const;
  /// Shared flush loop: kick every drainer and wait on segment completions
  /// until `extents` is clear (or, with empty extents, everything is).
  void flush_until_clear(mpi::Rank& self, std::span<const fs::Extent> extents);

  mpi::World& world_;
  int fs_id_;
  BbConfig config_;
  std::vector<NodeArena> arenas_;  // one per topology node
  std::unique_ptr<DrainScheduler> sched_;
  BbCounters counters_;
  mpi::TimeBreakdown drain_time_;
  BbCounters harvested_counters_;
  mpi::TimeBreakdown harvested_time_;
  int foreground_ = 0;
  int flush_waiters_ = 0;
  /// Per-rank monotone draw counters for the bb decay process (keyed by
  /// the staging rank, so draws are schedule-independent).
  std::vector<std::uint64_t> bb_draws_;
  /// Sampler probes registered by the constructor (occupancy and drain
  /// backlog per node); detached in the destructor.
  std::vector<std::size_t> probe_ids_;
  /// Notified after every completed drain segment; flush waiters recheck.
  sim::WaitQueue drained_;
};

/// RAII foreground-activity bracket (no-op on a null store).
class ForegroundGuard {
 public:
  explicit ForegroundGuard(StagingStore* store) : store_(store) {
    if (store_ != nullptr) store_->foreground_begin();
  }
  ~ForegroundGuard() {
    if (store_ != nullptr) store_->foreground_end();
  }
  ForegroundGuard(const ForegroundGuard&) = delete;
  ForegroundGuard& operator=(const ForegroundGuard&) = delete;

 private:
  StagingStore* store_;
};

/// The comm-wide shared store of an open file, created by the first opener
/// (shared_object key "bb:<context>:<fs_id>"). Helper fibers re-entering
/// the collective engine without a handle find the same store by key.
std::shared_ptr<StagingStore> shared_store(mpi::World& world,
                                           std::uint64_t context_id, int fs_id,
                                           const BbConfig& config);

}  // namespace parcoll::bb
