// Hierarchical (two-level) coordination collectives.
//
// Each operation is staged: members funnel their contributions to the node
// leader over the node communicator, leaders run the inter-node exchange
// over the leader communicator, and results fan back out within the node.
// The expensive stage therefore runs over num_nodes participants instead of
// P — the same participant reduction the intra-node aggregation applies to
// the two-phase data exchange, applied to ext2ph's coordination traffic.
//
// Every variant degenerates to the flat collective when no node hosts two
// members (NodeComm::multi == false), so results — and, in that case, the
// timing — are identical to the single-level protocol.
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "mpi/collectives.hpp"
#include "mpi/runtime.hpp"
#include "node/nodecomm.hpp"

namespace parcoll::node {

/// Allgather of one value per rank, staged through the node leaders.
/// Result is ordered by parent local rank, exactly like mpi::allgather
/// over the parent communicator.
template <typename T>
std::vector<T> hier_allgather(mpi::Rank& self, const NodeComm& nc,
                              const T& value) {
  if (!nc.multi) {
    return mpi::allgather(self, nc.parent, value);
  }
  // Stage 1: node members deposit their values at the leader.
  auto node_vals =
      mpi::gather(self, nc.node_comm, nc.leader_node_local, value);
  std::vector<T> result(static_cast<std::size_t>(nc.parent.size()));
  if (nc.i_lead()) {
    // Stage 2: leaders exchange whole node vectors.
    auto per_node = mpi::allgatherv(self, nc.leader_comm, node_vals);
    for (std::size_t n = 0; n < per_node.size(); ++n) {
      for (std::size_t i = 0; i < per_node[n].size(); ++i) {
        result[static_cast<std::size_t>(nc.node_members[n][i])] =
            per_node[n][i];
      }
    }
  }
  // Stage 3: the leader rebroadcasts the assembled vector within the node.
  auto all = mpi::coll_run(
      self, nc.node_comm, mpi::CollKind::Bcast,
      nc.i_lead() ? mpi::detail::to_bytes(result) : std::vector<std::byte>{});
  return mpi::detail::vector_from<T>(
      (*all)[static_cast<std::size_t>(nc.leader_node_local)]);
}

/// Allreduce staged through the node leaders: reduce within the node,
/// allreduce across leaders, broadcast back.
template <typename T, typename BinaryOp>
T hier_allreduce(mpi::Rank& self, const NodeComm& nc, const T& value,
                 BinaryOp op) {
  if (!nc.multi) {
    return mpi::allreduce(self, nc.parent, value, op);
  }
  auto node_vals =
      mpi::gather(self, nc.node_comm, nc.leader_node_local, value);
  T accum = value;
  if (nc.i_lead()) {
    accum = node_vals[0];
    for (std::size_t i = 1; i < node_vals.size(); ++i) {
      accum = op(accum, node_vals[i]);
    }
    accum = mpi::allreduce(self, nc.leader_comm, accum, op);
  }
  return mpi::bcast(self, nc.node_comm, nc.leader_node_local, accum);
}

template <typename T>
T hier_allreduce_max(mpi::Rank& self, const NodeComm& nc, const T& value) {
  return hier_allreduce(self, nc, value,
                        [](T a, T b) { return a < b ? b : a; });
}

template <typename T>
T hier_allreduce_sum(mpi::Rank& self, const NodeComm& nc, const T& value) {
  return hier_allreduce(self, nc, value, [](T a, T b) { return a + b; });
}

/// Barrier staged through the node leaders: arrive at the leader, leaders
/// synchronize, leader releases the node.
inline void hier_barrier(mpi::Rank& self, const NodeComm& nc) {
  if (!nc.multi) {
    mpi::barrier(self, nc.parent);
    return;
  }
  (void)mpi::gather(self, nc.node_comm, nc.leader_node_local, char{0});
  if (nc.i_lead()) {
    mpi::barrier(self, nc.leader_comm);
  }
  (void)mpi::bcast(self, nc.node_comm, nc.leader_node_local, char{0});
}

/// Personalized exchange staged leader-only: each rank supplies one value
/// per parent rank; the result's j-th entry is what parent rank j sent to
/// me. Only leaders participate in the inter-node alltoall, over blocks of
/// node-pair traffic.
template <typename T>
std::vector<T> hier_alltoall(mpi::Rank& self, const NodeComm& nc,
                             const std::vector<T>& send) {
  if (!nc.multi) {
    return mpi::alltoall(self, nc.parent, send);
  }
  const auto P = static_cast<std::size_t>(nc.parent.size());
  if (send.size() != P) {
    throw std::logic_error("hier_alltoall: send must have parent.size() items");
  }
  // Stage 1: members deposit their whole send vector at the leader.
  auto member_rows =
      mpi::gatherv(self, nc.node_comm, nc.leader_node_local, send);
  std::vector<std::vector<T>> mine;
  if (nc.i_lead()) {
    // Stage 2: leaders exchange per-node-pair blocks. The block my node m
    // sends node n is [send_s[d] for s in members(m), d in members(n)],
    // source-major.
    const auto num_nodes = static_cast<std::size_t>(nc.num_nodes());
    const auto& my_members =
        nc.node_members[static_cast<std::size_t>(nc.my_node_index)];
    std::vector<std::vector<T>> blocks(num_nodes);
    for (std::size_t n = 0; n < num_nodes; ++n) {
      const auto& dst_members = nc.node_members[n];
      blocks[n].reserve(my_members.size() * dst_members.size());
      for (std::size_t s = 0; s < my_members.size(); ++s) {
        for (int d : dst_members) {
          blocks[n].push_back(member_rows[s][static_cast<std::size_t>(d)]);
        }
      }
    }
    auto received = mpi::alltoallv(self, nc.leader_comm, blocks);
    // Stage 3a: reassemble each local member's result row, ordered by
    // parent local rank of the source.
    mine.resize(my_members.size());
    for (std::size_t di = 0; di < my_members.size(); ++di) {
      auto& row = mine[di];
      row.resize(P);
      for (std::size_t j = 0; j < P; ++j) {
        const auto m = static_cast<std::size_t>(nc.node_index_of[j]);
        const auto& src_members = nc.node_members[m];
        const auto si = static_cast<std::size_t>(
            std::find(src_members.begin(), src_members.end(),
                      static_cast<int>(j)) -
            src_members.begin());
        row[j] = received[m][si * my_members.size() + di];
      }
    }
  }
  // Stage 3b: the leader hands each member its row.
  return mpi::scatterv(self, nc.node_comm, nc.leader_node_local, mine);
}

}  // namespace parcoll::node
