// ParColl: partitioned collective I/O — the public collective entry points.
//
// write_at_all / read_at_all are the MPI_File_write_at_all /
// MPI_File_read_at_all analogues. With hints.parcoll_num_groups <= 1 they
// run the plain extended two-phase protocol over the whole communicator
// (the paper's "Cray implementation" baseline). With N > 1 they run the
// ParColl protocol: the process group and the file are consistently divided
// into subgroups and File Areas, aggregators are re-distributed (Fig. 5),
// an intermediate file view is switched in when the pattern requires it
// (Fig. 4c), and each subgroup then runs ext2ph privately — replacing one
// global synchronization domain by N small ones.
//
// ParColl instruments the internals only; it does not alter MPI-IO
// semantics. The bytes that land in the file are identical either way
// (asserted by the test suite).
#pragma once

#include <cstdint>
#include <memory>

#include "core/config.hpp"
#include "dtype/datatype.hpp"
#include "mpiio/file.hpp"

namespace parcoll::core {

struct CollectiveOutcome {
  std::uint64_t bytes = 0;  // this rank's contribution
  PartitionMode mode = PartitionMode::SingleGroup;
  int num_groups = 1;
  std::uint64_t cycles = 0;     // exchange/I-O cycles this rank executed
  std::uint64_t rmw_reads = 0;  // aggregator RMW fills on this rank
  /// True when the call used two-level (intra-node aggregated) staging.
  bool two_level = false;
  /// Bytes this rank shipped over the intra-node path.
  std::uint64_t intra_bytes = 0;
};

/// Collective write through the file's view. All members of the file's
/// communicator must call, with matching (offset, count, memtype).
CollectiveOutcome write_at_all(mpiio::FileHandle& file, std::uint64_t offset,
                               const void* buffer, std::uint64_t count,
                               const dtype::Datatype& memtype);

/// Collective read through the file's view.
CollectiveOutcome read_at_all(mpiio::FileHandle& file, std::uint64_t offset,
                              void* buffer, std::uint64_t count,
                              const dtype::Datatype& memtype);

/// MPI_File_write_all / read_all: collective I/O at the handle's individual
/// file pointer, advancing it by the transfer.
CollectiveOutcome write_all(mpiio::FileHandle& file, const void* buffer,
                            std::uint64_t count, const dtype::Datatype& memtype);
CollectiveOutcome read_all(mpiio::FileHandle& file, void* buffer,
                           std::uint64_t count, const dtype::Datatype& memtype);

/// The collective engine entry used by write_at_all/read_at_all and by the
/// split-collective helper fibers: plan (or reuse via `cache_slot`) the
/// partition and run the protocol. Collective over `comm`.
CollectiveOutcome run_collective_engine(mpi::Rank& self, const mpi::Comm& comm,
                                        const mpiio::Hints& hints, int fs_id,
                                        mpiio::PreparedRequest& prep,
                                        bool is_write,
                                        std::shared_ptr<void>* cache_slot);

/// The partitioning decision the hints + this request would produce, from
/// the calling rank's perspective — runs the same collective planning
/// steps, so it must be called by every member. For introspection.
ParcollDecision plan_decision(mpiio::FileHandle& file, std::uint64_t offset,
                              std::uint64_t count,
                              const dtype::Datatype& memtype);

}  // namespace parcoll::core
