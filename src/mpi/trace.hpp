// Execution tracing: per-rank timelines of where virtual time goes.
//
// When enabled on a World, every charge to a rank's TimeAccount also
// records an interval (rank, category, begin, end). The trace can be
// exported as CSV for external tooling, or rendered as a text Gantt chart
// — which makes the collective wall visible: synchronization intervals
// piling up behind the slowest rank of each cycle.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mpi/timecat.hpp"

namespace parcoll::mpi {

struct TraceEvent {
  int rank = 0;
  TimeCat cat = TimeCat::Compute;
  double begin = 0;
  double end = 0;
};

class Tracer {
 public:
  void record(int rank, TimeCat cat, double begin, double end) {
    if (end > begin) {
      events_.push_back(TraceEvent{rank, cat, begin, end});
    }
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  void clear() { events_.clear(); }

  /// CSV: rank,category,begin,end (header included).
  void write_csv(std::ostream& os) const;

  /// Text Gantt chart: one row per rank (up to `max_ranks`), `width` time
  /// bins from 0 to the last event. Each cell shows the category that
  /// dominates the bin: '.' idle, 'c' compute, 'p' p2p, 'S' sync, 'I' io,
  /// 'F' faulted, 'n' intra-node aggregation.
  [[nodiscard]] std::string gantt(int width = 72, int max_ranks = 16) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace parcoll::mpi
