# Empty dependencies file for abl_cb_buffer.
# This may be replaced when dependencies are built.
