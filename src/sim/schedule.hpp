// Schedule (tie-break) policies for the DES engine.
//
// Events with equal virtual timestamps have no causal order; which one the
// engine runs first is a *schedule choice*. The default policy replays the
// historical program order (monotone sequence numbers). The two other
// policies systematically vary the choice — seeded-random permutation and
// DFS over explicit choice points — so a model checker can drive the same
// simulated program through many interleavings.
//
// Every policy is replayable from a compact token:
//   "p"            program order (the default)
//   "r<seed>"      seeded random, e.g. "r42"
//   "d<c0>.<c1>…"  DFS: forced choice c_i at the i-th choice point; choice
//                  points beyond the list take alternative 0 (which equals
//                  program order), so "d" alone is the DFS root schedule.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace parcoll::sim {

enum class TieBreak { Program, Random, Dfs };

/// One decision the engine took at a choice point: which of the
/// `alternatives` equal-time events (ordered by sequence number) ran next.
struct ScheduleChoice {
  std::uint32_t chosen = 0;
  std::uint32_t alternatives = 0;

  friend bool operator==(const ScheduleChoice& a,
                         const ScheduleChoice& b) = default;
};

struct SchedulePolicy {
  TieBreak kind = TieBreak::Program;
  /// Random: every pick is a pure hash of (seed, choice-point index).
  std::uint64_t seed = 0;
  /// Dfs: forced picks for the first choices.size() choice points.
  std::vector<std::uint32_t> choices;
  /// Optional external sink the engine appends every ScheduleChoice to.
  /// Outlives the engine, so exploration drivers keep the executed log
  /// even when the run dies in an exception. Not part of the token.
  std::vector<ScheduleChoice>* record = nullptr;

  [[nodiscard]] static SchedulePolicy program() { return {}; }
  [[nodiscard]] static SchedulePolicy random(std::uint64_t seed);
  [[nodiscard]] static SchedulePolicy dfs(std::vector<std::uint32_t> choices);

  /// Parse a schedule token (see the header comment for the grammar).
  /// Throws std::invalid_argument on malformed input.
  [[nodiscard]] static SchedulePolicy parse(const std::string& token);

  /// The replayable token for this policy.
  [[nodiscard]] std::string token() const;

  /// The event index (in [0, alternatives)) to run at choice point `step`.
  [[nodiscard]] std::uint32_t pick(std::uint64_t step,
                                   std::uint32_t alternatives) const;
};

/// Depth-first successor: given the executed choice log of a run, the next
/// forced-choice prefix in DFS order, branching only at the first
/// `depth_limit` choice points. Empty when the (bounded) tree is exhausted.
[[nodiscard]] std::optional<std::vector<std::uint32_t>> dfs_next(
    const std::vector<ScheduleChoice>& log, std::size_t depth_limit);

/// Order-sensitive signature of an executed choice log, for counting
/// distinct schedules.
[[nodiscard]] std::uint64_t schedule_signature(
    const std::vector<ScheduleChoice>& log);

}  // namespace parcoll::sim
