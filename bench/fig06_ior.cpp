// Figure 6 — "Benefits of ParColl to IOR collective I/O".
//
// IOR: every process collectively writes a contiguous 512 MB block in 4 MB
// transfers into a shared file (segmented layout), at 128 and 512
// processes, with a least group size of 8. Contiguous I/O gains nothing
// from aggregation, so the per-call global synchronization dominates the
// baseline; ParColl-N breaks the group apart. The paper reports
// 380 MB/s -> 5301 MB/s (12.8x) at 512 processes.
#include "bench/common.hpp"
#include "workloads/ior.hpp"

int main(int argc, char** argv) {
  using namespace parcoll;
  using namespace parcoll::bench;
  BenchReport report("fig06_ior", argc, argv);

  header("Figure 6", "IOR collective write, 512 MB/process in 4 MB transfers");
  const workloads::IorConfig config;  // paper parameters

  for (int nprocs : {128, 512}) {
    std::printf("  --- %d processes ---\n", nprocs);
    const auto base =
        workloads::run_ior(config, nprocs, baseline_spec(), /*write=*/true);
    row("Cray (ext2ph)", base);
    report.add("cray", nprocs, base);
    for (int groups : {2, 8, 16, 32, 64}) {
      if (groups * 8 > nprocs) continue;  // least group size of 8
      const auto result = workloads::run_ior(config, nprocs,
                                             parcoll_spec(groups), true);
      row("ParColl-" + std::to_string(groups), result);
      report.add("parcoll-" + std::to_string(groups), nprocs, result);
    }
  }
  footnote("paper: 380 MB/s -> 5301 MB/s at 512 procs (12.8x) with ParColl");
  return 0;
}
