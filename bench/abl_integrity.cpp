// Ablation — end-to-end checksum pipeline (detect / repair / scrub).
//
// With integrity=detect every block entering a collective write is
// CRC-32C'd where the user buffer is first touched; OSTs verify write
// RPCs at ingest, drains verify staged segments before they land, and
// reads/close sweeps verify stored bytes. integrity=repair adds healing:
// corrupted RPCs retransmit, decayed staging segments are rebuilt from
// the checksum replicas, and latent media flips are scrubbed back.
//
// The sweep crosses integrity level x corruption source against the
// integrity-off clean baseline. Columns: integ = seconds charged to
// TimeCat::Integrity (summed over ranks), ovh% = elapsed overhead vs the
// clean integrity-off run (the price of the checksum pipeline), then the
// corruption counters (injected / detected / repaired / scrub repairs).
//
// Every run is byte-true and must reproduce the baseline's content
// digest exactly — at repair level even the corrupted runs, since every
// injected flip has to be detected and healed before the file settles.
// A digest mismatch fails the bench (nonzero exit).
#include <cinttypes>
#include <string>

#include "bench/common.hpp"
#include "fault/fault.hpp"
#include "workloads/tileio.hpp"

int main(int argc, char** argv) {
  const bool smoke = parcoll::bench::smoke_requested(argc, argv);
  using namespace parcoll;
  using namespace parcoll::bench;

  BenchReport report("abl_integrity", argc, argv);
  const int nprocs = scaled(smoke, 128);
  const auto config = workloads::TileIOConfig::paper(nprocs);

  header("Ablation: end-to-end data integrity",
         "Tile-IO (P=" + std::to_string(nprocs) +
             "), checksum pipeline by level and corruption source");
  std::printf("  %-24s %9s %9s %8s %6s %8s %8s %8s %6s\n", "series", "MiB/s",
              "elapsed s", "integ s", "ovh%", "injected", "detected",
              "repaired", "scrub");

  const auto make_spec = [&](fs::IntegrityLevel level) {
    workloads::RunSpec spec = baseline_spec();
    spec.byte_true = true;  // digests must be meaningful
    spec.integrity.level = level;
    return spec;
  };

  const workloads::RunResult base =
      workloads::run_tileio(config, nprocs, make_spec(fs::IntegrityLevel::Off),
                            true);

  bool digests_ok = true;
  const auto run_row = [&](const std::string& series,
                           const workloads::RunSpec& spec) {
    const auto result = workloads::run_tileio(config, nprocs, spec, true);
    const double overhead_pct =
        base.elapsed > 0
            ? 100.0 * (result.elapsed - base.elapsed) / base.elapsed
            : 0.0;
    std::printf("  %-24s %9.1f %9.3f %8.3f %5.1f%% %8" PRIu64 " %8" PRIu64
                " %8" PRIu64 " %6" PRIu64 "\n",
                series.c_str(), result.bandwidth_mib(), result.elapsed,
                result.sum[mpi::TimeCat::Integrity], overhead_pct,
                result.faults.corrupt_injected, result.faults.corrupt_detected,
                result.faults.corrupt_repaired, result.faults.scrub_repairs);
    report.add(series, nprocs, result,
               {{"detected",
                 static_cast<double>(result.faults.corrupt_detected)},
                {"repaired",
                 static_cast<double>(result.faults.corrupt_repaired)},
                {"scrub_repairs",
                 static_cast<double>(result.faults.scrub_repairs)},
                {"checksum_overhead_pct", overhead_pct}});
    if (result.file_digest != base.file_digest) {
      digests_ok = false;
      std::fprintf(stderr,
                   "DIGEST MISMATCH: %s produced %016" PRIx64
                   ", integrity-off baseline %016" PRIx64 "\n",
                   series.c_str(), result.file_digest, base.file_digest);
    }
    return result;
  };

  std::printf("  %-24s %9.1f %9.3f %8.3f %6s %8s %8s %8s %6s\n", "off/clean",
              base.bandwidth_mib(), base.elapsed, 0.0, "-", "-", "-", "-",
              "-");
  report.add("off/clean", nprocs, base);

  // Clean runs: the pipeline's cost with nothing to find.
  run_row("detect/clean", make_spec(fs::IntegrityLevel::Detect));
  run_row("repair/clean", make_spec(fs::IntegrityLevel::Repair));
  std::printf("\n");

  // Corrupted runs at repair level: each source must be fully healed.
  {
    // Wire corruption: flipped write RPCs fail ingest and retransmit.
    workloads::RunSpec spec = make_spec(fs::IntegrityLevel::Repair);
    spec.fault = fault::FaultPlan::parse(
        "seed=29;rpc-corrupt=0.01;timeout=0.005;backoff=0.001:0.01;"
        "max-retries=8");
    run_row("repair/rpc-corrupt", spec);
  }
  {
    // Latent media flips mid-run, placed relative to the measured clean
    // span so they land on bytes that have already been written; the
    // scrubber (plus the close-time sweep backstop) heals them.
    workloads::RunSpec spec = make_spec(fs::IntegrityLevel::Repair);
    spec.fault = fault::FaultPlan::parse(
        "seed=31;media-corrupt=0:" + std::to_string(0.25 * base.elapsed) +
        ";media-corrupt=1:" + std::to_string(0.5 * base.elapsed));
    run_row("repair/media-corrupt", spec);
  }
  {
    // Staged-segment decay: resident bb segments flip while parked and
    // the pre-drain verification rebuilds them before anything lands.
    workloads::RunSpec spec = make_spec(fs::IntegrityLevel::Repair);
    spec.bb.enabled = true;
    spec.fault = fault::FaultPlan::parse("seed=37;bb-corrupt=0.05");
    run_row("repair/bb-corrupt", spec);
  }

  footnote("ovh% is elapsed overhead vs the integrity-off clean run: the");
  footnote("price of checksumming every block through staging, exchange,");
  footnote("ingest and the close sweep. Corrupted repair runs must end");
  footnote("bit-identical to the clean baseline — injected counts what the");
  footnote("plan flipped, detected/repaired/scrub what the pipeline caught");
  if (!digests_ok) {
    std::fprintf(stderr, "abl_integrity: content digest check FAILED\n");
    return 1;
  }
  return 0;
}
