// Write-behind drain scheduling for the burst-buffer staging tier.
//
// One DrainScheduler serves a StagingStore. Each node arena is drained by
// at most one fiber at a time (spawned on demand, exiting when the queue
// empties), so same-node segments reach the file strictly in FIFO order.
// The drain fiber rides the same split-phase machinery as mpiio/async.*:
// a helper fiber spawned at the current virtual time that blocks in
// LustreSim::write while the foreground ranks keep running.
//
// Policy gates (see bb::DrainPolicy) decide when the fiber starts and
// whether it pauses; all of them are overridden while a flush is waiting
// or after a deadline timer marks the arena overdue, so flushes never
// stall behind a policy and staged data never waits unboundedly.
#pragma once

#include "sim/engine.hpp"

namespace parcoll::bb {

class StagingStore;

class DrainScheduler {
 public:
  explicit DrainScheduler(StagingStore& store) : store_(store) {}

  /// Policy trigger after a segment lands in `node`'s arena.
  void on_stage(int node);

  /// Ensure a drain fiber is running for `node` (no-op if one is active
  /// or the queue is empty).
  void kick(int node);
  void kick_all();

  /// Wake drain fibers parked on foreground arbitration.
  void poke();

 private:
  void drain_loop(int node);
  /// Arm the node's (coalesced) deadline timer: at `at`, a still-nonempty
  /// queue is marked overdue and drained regardless of policy gates.
  void arm_deadline(int node, double at);
  /// Write one segment to the backend on the current (drain) fiber,
  /// charging time/counters to the store. The fs client id is synthetic
  /// (nranks + node) so per-rank fault attribution stays clean.
  void write_segment(int node);

  StagingStore& store_;
  sim::WaitQueue arbitration_;
};

}  // namespace parcoll::bb
