#include "fs/lustre.hpp"

#include <algorithm>
#include <stdexcept>

#include "fs/integrity.hpp"
#include "obs/metrics.hpp"

namespace parcoll::fs {

LustreSim::LustreSim(sim::Engine& engine,
                     const machine::StorageParams& params, StoreMode mode)
    : engine_(engine),
      params_(params),
      mode_(mode),
      range_locks_(engine, params.flock_roundtrip, params.flock_server_time) {
  if (params_.num_osts <= 0) {
    throw std::invalid_argument("LustreSim: need at least one OST");
  }
  if (mode == StoreMode::Memory) {
    store_ = std::make_unique<MemoryStore>();
  } else {
    store_ = std::make_unique<PhantomStore>();
  }
  osts_.reserve(static_cast<std::size_t>(params_.num_osts));
  for (int i = 0; i < params_.num_osts; ++i) {
    osts_.emplace_back(i, params_);
  }
  corrupt_draws_.resize(static_cast<std::size_t>(params_.num_osts), 0);
}

int LustreSim::open(const std::string& name, int stripe_count,
                    std::uint64_t stripe_size, bool charge_metadata) {
  if (charge_metadata) {
    engine_.sleep(kMetadataLatency);
  }
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    return it->second;
  }
  FileMeta meta;
  meta.name = name;
  meta.stripe_count =
      stripe_count > 0 ? std::min(stripe_count, params_.num_osts)
                       : params_.default_stripe_count;
  meta.stripe_count = std::min(meta.stripe_count, params_.num_osts);
  meta.stripe_size = stripe_size > 0 ? stripe_size : params_.default_stripe_size;
  meta.ost_start = static_cast<int>(files_.size()) % params_.num_osts;
  const int id = static_cast<int>(files_.size());
  files_.push_back(meta);
  by_name_.emplace(name, id);
  return id;
}

void LustreSim::remove(const std::string& name) {
  engine_.sleep(kMetadataLatency);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw std::invalid_argument("LustreSim::remove: no such file: " + name);
  }
  by_name_.erase(it);
}

const FileMeta& LustreSim::meta(int file_id) const {
  return files_.at(static_cast<std::size_t>(file_id));
}

double LustreSim::submit(int client, int file_id,
                         std::span<const Extent> extents, const std::byte* in,
                         std::byte* out, bool is_write,
                         double& faulted_seconds) {
  const FileMeta& file = meta(file_id);
  double last_completion = engine_.now();

  // Per-OST accumulation of pieces into BRW RPCs: Lustre RPCs carry up to
  // max_rpc_size of payload as a (possibly discontiguous) page list, so
  // small strided pieces on the same target coalesce into one request.
  struct PendingRpc {
    std::uint64_t lock_lo = 0;
    std::uint64_t lock_hi = 0;
    std::uint64_t bytes = 0;
    std::uint64_t fragments = 0;
  };
  std::vector<PendingRpc> pending(static_cast<std::size_t>(params_.num_osts));

  // The job this client's traffic is accounted to ("" / null = untagged).
  const std::string* job = nullptr;
  if (jobs_ != nullptr && client >= 0 &&
      static_cast<std::size_t>(client) < jobs_->size() &&
      !(*jobs_)[static_cast<std::size_t>(client)].empty()) {
    job = &(*jobs_)[static_cast<std::size_t>(client)];
  }

  // Records completion of one served RPC: end-to-end latency from issue to
  // service completion (including any retry/backoff time the caller
  // burned), plus the cumulative per-OST service clock the wall report and
  // sampler read.
  auto note_served = [&](int ost_index, std::uint64_t bytes, double issue,
                         double done) {
    if (metrics_ == nullptr) return;
    const double latency = done - issue;
    metrics_->quantile("fs.rpc.latency_s").observe(latency);
    metrics_->gauge("fs.ost.service_s", static_cast<std::size_t>(ost_index)) =
        osts_[static_cast<std::size_t>(ost_index)].service_seconds();
    if (job != nullptr) {
      metrics_->quantile(obs::MetricsRegistry::job_key("fs.rpc.latency_s",
                                                       *job))
          .observe(latency);
      ++metrics_->counter(obs::MetricsRegistry::job_key("fs.rpcs", *job));
      metrics_->counter(obs::MetricsRegistry::job_key("fs.bytes", *job)) +=
          bytes;
    }
  };

  auto flush = [&](int ost_index) {
    PendingRpc& rpc = pending[static_cast<std::size_t>(ost_index)];
    if (rpc.bytes == 0) return;
    // Client CPU to build and issue the RPC.
    engine_.sleep(params_.client_rpc_overhead);
    if (metrics_ != nullptr) {
      // OST backlog at issue time: how long this RPC will queue behind
      // already-accepted work (a seconds-denominated queue depth).
      const double backlog = std::max(
          0.0, osts_[static_cast<std::size_t>(ost_index)].busy_until() -
                   engine_.now());
      metrics_->quantile("fs.ost.queue_wait_s").observe(backlog);
      metrics_->gauge_max("fs.ost.queue_depth_s",
                          static_cast<std::size_t>(ost_index), backlog);
      ++metrics_->counter("fs.ost.rpcs", static_cast<std::size_t>(ost_index));
      metrics_->counter("fs.ost.bytes", static_cast<std::size_t>(ost_index)) +=
          rpc.bytes;
    }
    const double issue = engine_.now();
    if (fault_plan_ == nullptr) {
      const ServeOutcome outcome =
          osts_[static_cast<std::size_t>(ost_index)].serve(
              engine_.now(), file_id, client, rpc.lock_lo, rpc.lock_hi,
              rpc.bytes, is_write, rpc.fragments);
      last_completion = std::max(last_completion, outcome.done);
      note_served(ost_index, rpc.bytes, issue, outcome.done);
      rpc = PendingRpc{};
      return;
    }
    // Degraded mode: detect a swallowed RPC after the timeout, resend with
    // capped exponential backoff, and after the retry budget is exhausted
    // fail over to the next surviving OST. Data already sits in the
    // ObjectStore (written in the chunk loop), so failover only redirects
    // the *timing* of service — stripe placement of bytes is unchanged,
    // matching a degraded Lustre client writing through a backup target.
    int target = ost_index;
    int attempt = 0;
    int hops = 0;
    for (;;) {
      // After a full lap over the OSTs, force service so pathological
      // plans (every target down forever) cannot hang the simulation.
      const bool force = hops >= params_.num_osts;
      const ServeOutcome outcome =
          osts_[static_cast<std::size_t>(target)].serve(
              engine_.now(), file_id, client, rpc.lock_lo, rpc.lock_hi,
              rpc.bytes, is_write, rpc.fragments, force);
      if (outcome.ok) {
        last_completion = std::max(last_completion, outcome.done);
        note_served(target, rpc.bytes, issue, outcome.done);
        break;
      }
      const double wait =
          fault_plan_->retry.timeout + fault_plan_->backoff(attempt);
      engine_.sleep(wait);
      faulted_seconds += wait;
      fault::FaultCounters& mine = fault_state_->of(client);
      mine.faulted_seconds += wait;
      if (attempt < fault_plan_->retry.max_retries) {
        ++attempt;
        ++mine.retries;
        continue;
      }
      // Retry budget exhausted on this target: fail over to the next OST
      // that is up right now (or the neighbour, if all are down — time
      // advances each lap, so finite outage windows eventually pass).
      int next = (target + 1) % params_.num_osts;
      for (int probe = 0; probe < params_.num_osts; ++probe) {
        const int candidate = (target + 1 + probe) % params_.num_osts;
        if (!fault_plan_->ost_down(candidate, engine_.now())) {
          next = candidate;
          break;
        }
      }
      target = next;
      attempt = 0;
      ++hops;
      ++mine.failovers;
    }
    rpc = PendingRpc{};
  };

  std::uint64_t data_pos = 0;
  for (const Extent& extent : extents) {
    if (extent.length == 0) continue;
    for_each_stripe_chunk(
        extent, file.stripe_size, file.stripe_count,
        [&](const StripeChunk& chunk) {
          std::uint64_t pos = chunk.file_offset;
          const std::uint64_t end = chunk.file_offset + chunk.length;
          const int ost_index =
              (file.ost_start + chunk.stripe_index) % params_.num_osts;
          while (pos < end) {
            PendingRpc& rpc = pending[static_cast<std::size_t>(ost_index)];
            const std::uint64_t room = params_.max_rpc_size - rpc.bytes;
            const std::uint64_t piece_len =
                std::min<std::uint64_t>(end - pos, room);
            if (piece_len == 0) {
              flush(ost_index);
              continue;
            }
            if (rpc.bytes == 0) {
              rpc.lock_lo = pos;
              rpc.lock_hi = pos + piece_len;
              rpc.fragments = 1;
            } else {
              // A piece extending the previous one is not a new fragment.
              if (pos != rpc.lock_hi) {
                ++rpc.fragments;
              }
              rpc.lock_lo = std::min(rpc.lock_lo, pos);
              rpc.lock_hi = std::max(rpc.lock_hi, pos + piece_len);
            }
            rpc.bytes += piece_len;
            // Data moves through the store piece by piece, in stream order.
            if (is_write) {
              const std::byte* src = in == nullptr ? nullptr : in + data_pos;
              store_->write(file_id, pos, src, piece_len);
              if (integrity_ != nullptr) {
                integrity_->mark_landed(file_id, pos, piece_len);
              }
              if (fault_plan_ != nullptr &&
                  fault_plan_->rpc_corrupt_prob > 0.0) {
                ingest_piece(client, file_id, ost_index, pos, src, piece_len,
                             faulted_seconds);
              }
            } else {
              store_->read(file_id, pos,
                           out == nullptr ? nullptr : out + data_pos,
                           piece_len);
            }
            data_pos += piece_len;
            pos += piece_len;
            if (rpc.bytes == params_.max_rpc_size) {
              flush(ost_index);
            }
          }
        });
  }
  for (int ost = 0; ost < params_.num_osts; ++ost) {
    flush(ost);
  }
  return last_completion;
}

void LustreSim::ingest_piece(int client, int file_id, int ost_index,
                             std::uint64_t pos, const std::byte* src,
                             std::uint64_t piece_len,
                             double& faulted_seconds) {
  // of(client) is re-fetched at every use: the counter vector reallocates
  // when another fiber first touches a higher client id, which can happen
  // during any sleep below — a reference held across a yield dangles.
  int attempt = 0;
  bool was_corrupt = false;
  for (;;) {
    const bool corrupted = fault_plan_->corrupt_rpc(
        ost_index, corrupt_draws_[static_cast<std::size_t>(ost_index)]++);
    if (corrupted) {
      ++fault_state_->of(client).corrupt_injected;
      // Flip one bit of a seeded byte of the stored piece.
      const std::uint64_t site = fault_plan_->corrupt_site(
          pos, piece_len + static_cast<std::uint64_t>(attempt));
      if (mode_ == StoreMode::Memory) {
        const std::uint64_t at = pos + site % piece_len;
        std::byte b{};
        store_->read(file_id, at, &b, 1);
        b ^= static_cast<std::byte>(1u << ((site >> 32) & 7));
        store_->write(file_id, at, &b, 1);
      }
    }
    if (integrity_ == nullptr) {
      return;  // no wire checksum: corruption (if any) lands silently
    }
    if (!corrupted) {
      if (was_corrupt) {
        // A retransmit delivered the clean payload.
        ++fault_state_->of(client).corrupt_repaired;
        integrity_->note_wire_repaired();
      }
      return;
    }
    // The OST's ingest checksum rejects the payload; the client resends
    // under the same timeout/backoff policy as a swallowed RPC.
    was_corrupt = true;
    ++fault_state_->of(client).corrupt_detected;
    integrity_->note_wire_detected();
    if (attempt >= fault_plan_->retry.max_retries) {
      // Retransmit budget exhausted. At Repair level the pipeline retains
      // the clean source bytes, so the extent is healed in place rather
      // than declared lost; at Detect there is no replica and the failing
      // extent goes to collective agreement.
      if (integrity_->config().level == IntegrityLevel::Repair) {
        store_->write(file_id, pos, src, piece_len);
        ++fault_state_->of(client).corrupt_repaired;
        integrity_->note_wire_repaired();
        return;
      }
      integrity_->record_error(file_id, pos, piece_len);
      return;
    }
    const double wait =
        fault_plan_->retry.timeout + fault_plan_->backoff(attempt);
    engine_.sleep(wait);
    faulted_seconds += wait;
    fault::FaultCounters& mine = fault_state_->of(client);
    mine.faulted_seconds += wait;
    ++attempt;
    ++mine.retries;
    store_->write(file_id, pos, src, piece_len);  // resend the clean payload
  }
}

void LustreSim::corrupt_media(const fault::MediaCorrupt& event,
                              std::uint64_t event_index, int client) {
  if (fault_plan_ == nullptr || mode_ != StoreMode::Memory) {
    return;  // phantom stores hold no bytes to decay
  }
  if (event.ost < 0 || event.ost >= params_.num_osts) return;
  // How many stored bytes the target OST holds, per file, right now.
  const auto bytes_on_ost = [&](const FileMeta& file, std::uint64_t size) {
    std::uint64_t held = 0;
    for (std::uint64_t lo = 0; lo < size; lo += file.stripe_size) {
      const int stripe =
          static_cast<int>((lo / file.stripe_size) %
                           static_cast<std::uint64_t>(file.stripe_count));
      if ((file.ost_start + stripe) % params_.num_osts == event.ost) {
        held += std::min(file.stripe_size, size - lo);
      }
    }
    return held;
  };
  std::vector<std::pair<int, std::uint64_t>> holdings;
  std::uint64_t total = 0;
  for (int id = 0; id < static_cast<int>(files_.size()); ++id) {
    const std::uint64_t held = bytes_on_ost(files_[static_cast<std::size_t>(id)],
                                            store_->size(id));
    if (held > 0) {
      holdings.emplace_back(id, held);
      total += held;
    }
  }
  if (total == 0) return;  // the OST holds nothing yet: the event is a no-op
  const std::uint64_t site = fault_plan_->corrupt_site(
      event_index, static_cast<std::uint64_t>(event.ost));
  std::uint64_t nth = site % total;
  for (const auto& [id, held] : holdings) {
    if (nth >= held) {
      nth -= held;
      continue;
    }
    // Walk this file's stripes on the target OST to the nth held byte.
    const FileMeta& file = files_[static_cast<std::size_t>(id)];
    const std::uint64_t size = store_->size(id);
    for (std::uint64_t lo = 0; lo < size; lo += file.stripe_size) {
      const int stripe =
          static_cast<int>((lo / file.stripe_size) %
                           static_cast<std::uint64_t>(file.stripe_count));
      if ((file.ost_start + stripe) % params_.num_osts != event.ost) continue;
      const std::uint64_t len = std::min(file.stripe_size, size - lo);
      if (nth >= len) {
        nth -= len;
        continue;
      }
      std::byte b{};
      store_->read(id, lo + nth, &b, 1);
      b ^= static_cast<std::byte>(1u << ((site >> 32) & 7));
      store_->write(id, lo + nth, &b, 1);
      ++fault_state_->of(client).corrupt_injected;
      return;
    }
  }
}

IoResult LustreSim::write(int client, int file_id,
                          std::span<const Extent> extents,
                          const std::byte* data) {
  IoResult result;
  const double done = submit(client, file_id, extents, data, nullptr, true,
                             result.faulted_seconds);
  engine_.sleep_until(done);
  return result;
}

IoResult LustreSim::read(int client, int file_id,
                         std::span<const Extent> extents, std::byte* out) {
  IoResult result;
  const double done = submit(client, file_id, extents, nullptr, out, false,
                             result.faulted_seconds);
  engine_.sleep_until(done);
  return result;
}

void LustreSim::set_fault(const fault::FaultPlan* plan,
                          fault::FaultState* state) {
  fault_plan_ = plan;
  fault_state_ = state;
  for (OstModel& ost : osts_) {
    ost.set_fault(plan, state);
  }
}

std::uint64_t LustreSim::total_rpcs() const {
  std::uint64_t total = 0;
  for (const OstModel& ost : osts_) total += ost.rpcs_served();
  return total;
}

std::uint64_t LustreSim::total_lock_switches() const {
  std::uint64_t total = 0;
  for (const OstModel& ost : osts_) total += ost.lock_switches();
  return total;
}

}  // namespace parcoll::fs
