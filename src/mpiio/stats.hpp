// Per-file I/O statistics, mirroring the paper's profiler: "we profiled
// these processing tasks at run-time. When a file is closed, a summary is
// reported." The breakdown categories are the paper's Fig. 2 series.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "mpi/timecat.hpp"

namespace parcoll::mpiio {

struct FileStats {
  /// Time spent inside this file's I/O operations, summed over all ranks.
  mpi::TimeBreakdown time;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t collective_writes = 0;
  std::uint64_t collective_reads = 0;
  std::uint64_t independent_writes = 0;
  std::uint64_t independent_reads = 0;
  /// Total data-exchange/file-I/O cycles executed across collective calls.
  std::uint64_t exchange_cycles = 0;
  /// Read-modify-write fills performed by aggregators (write holes).
  std::uint64_t rmw_reads = 0;
  /// Collective calls that went through ParColl partitioning.
  std::uint64_t parcoll_calls = 0;
  /// Collective calls that used two-level (intra-node aggregated) staging.
  std::uint64_t intranode_calls = 0;
  /// Bytes shipped over the intra-node path (request metadata + payload,
  /// counted at the non-leader side).
  std::uint64_t intranode_bytes = 0;
  /// ParColl calls that switched to an intermediate file view (Fig. 4c).
  std::uint64_t view_switches = 0;
  /// Subgroups used by the most recent ParColl call.
  int last_num_groups = 0;
  /// Degraded-mode events observed during this file's operations (all zero
  /// unless a fault plan is installed).
  std::uint64_t fault_retries = 0;
  std::uint64_t fault_failovers = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_reelections = 0;
  std::uint64_t fault_stalls = 0;
  /// Burst-buffer staging activity (all zero unless bb=enable): merged from
  /// the node-local StagingStore at close by the file's first rank.
  std::uint64_t bb_staged_segments = 0;
  std::uint64_t bb_staged_bytes = 0;
  std::uint64_t bb_drained_bytes = 0;
  std::uint64_t bb_spills = 0;
  std::uint64_t bb_spill_bytes = 0;
  std::uint64_t bb_conflict_flushes = 0;
  std::uint64_t bb_drain_retries = 0;
  std::uint64_t bb_drain_failovers = 0;
  /// Checksum-pipeline activity (all zero unless the integrity hint is on):
  /// merged from the IntegrityManager at close by the file's first rank.
  std::uint64_t integrity_blocks = 0;
  std::uint64_t integrity_bytes = 0;
  std::uint64_t corrupt_detected = 0;
  std::uint64_t corrupt_repaired = 0;
  std::uint64_t scrub_repairs = 0;
  std::uint64_t integrity_errors = 0;

  FileStats& operator+=(const FileStats& other);

  /// The close-time summary (single line per category plus counters).
  [[nodiscard]] std::string summary(const std::string& name) const;
};

std::ostream& operator<<(std::ostream& os, const FileStats& stats);

}  // namespace parcoll::mpiio
