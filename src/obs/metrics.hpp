// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// The registry is owned by the World and is null when observability is
// off; every instrumentation site guards with `if (auto* m = ...)` so the
// disabled path costs one pointer test and never perturbs simulated time.
// Instrument names use dotted paths ("parcoll.sync_wait_s"); per-index
// series (one counter per OST, per subgroup, ...) get a zero-padded
// "[0003]" suffix so exports sort naturally. Storage is an ordered map,
// making every export deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/quantile.hpp"

namespace parcoll::obs {

/// Fixed-bucket histogram: counts[i] holds observations <= bounds[i], the
/// final slot is the overflow bucket. Also tracks count/sum/min/max so
/// means and extremes survive coarse bucketing.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 slots
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;

  void observe(double value);
  [[nodiscard]] double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

class MetricsRegistry {
 public:
  /// Monotonic counter; creates it at zero on first use.
  std::uint64_t& counter(const std::string& name);
  /// Indexed counter series, e.g. counter("fs.ost.bytes", ost_index).
  std::uint64_t& counter(const std::string& name, std::size_t index);

  /// Last-value gauge.
  double& gauge(const std::string& name);
  /// Indexed gauge series, e.g. gauge("fs.ost.service_s", ost_index).
  double& gauge(const std::string& name, std::size_t index);
  /// Running-maximum gauge (e.g. peak queue depth).
  void gauge_max(const std::string& name, double value);
  void gauge_max(const std::string& name, std::size_t index, double value);

  /// Histogram with the given bucket bounds; bounds are fixed on first
  /// use. A later call with the same name must pass the same bounds —
  /// mismatched bounds throw std::invalid_argument instead of being
  /// silently ignored (two call sites disagreeing on the layout is a bug,
  /// and the loser's data would land in buckets it never asked for).
  HistogramData& histogram(const std::string& name,
                           const std::vector<double>& bounds);

  /// Log-bucketed quantile histogram (~1% relative error); created empty
  /// on first use. The standard latency instruments (RPC, OST service,
  /// collective cycles, drain waits) record here.
  QuantileHistogram& quantile(const std::string& name);

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, HistogramData>& histograms() const {
    return histograms_;
  }
  [[nodiscard]] const std::map<std::string, QuantileHistogram>& quantiles()
      const {
    return quantiles_;
  }

  /// "name[0003]": zero-padded so lexicographic order == numeric order.
  [[nodiscard]] static std::string indexed(const std::string& name,
                                           std::size_t index);

  /// "name{job=astro}": the per-tenant slice of an instrument. Every
  /// job-attributed series/counter/histogram uses this suffix so exports
  /// group naturally and downstream tooling can split on "{job=".
  [[nodiscard]] static std::string job_key(const std::string& name,
                                           std::string_view job);

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramData> histograms_;
  std::map<std::string, QuantileHistogram> quantiles_;
};

/// Shared bucket layouts (seconds) for the standard latency histograms.
[[nodiscard]] const std::vector<double>& latency_bounds_s();

}  // namespace parcoll::obs
