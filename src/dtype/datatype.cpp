#include "dtype/datatype.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace parcoll::dtype {

namespace {

/// Append `base`'s segments shifted by `disp`, and widen [lb, ub].
void place(std::vector<Segment>& out, std::int64_t& lb, std::int64_t& ub,
           bool& first, const Datatype& base, std::int64_t disp) {
  for (const Segment& seg : base.segments()) {
    out.push_back(Segment{seg.disp + disp, seg.length});
  }
  const std::int64_t copy_lb = disp + base.lb();
  const std::int64_t copy_ub = disp + base.ub();
  if (first) {
    lb = copy_lb;
    ub = copy_ub;
    first = false;
  } else {
    lb = std::min(lb, copy_lb);
    ub = std::max(ub, copy_ub);
  }
}

}  // namespace

Datatype::Datatype() { state_ = std::make_shared<const State>(); }

Datatype Datatype::make(std::vector<Segment> segments, std::int64_t lb,
                        std::int64_t ub) {
  coalesce(segments);
  auto state = std::make_shared<State>();
  state->size = total_length(segments);
  state->segments = std::move(segments);
  state->lb = lb;
  state->ub = ub;
  return Datatype(std::move(state));
}

Datatype Datatype::bytes(std::uint64_t n) {
  if (n == 0) return Datatype();
  return make({Segment{0, n}}, 0, static_cast<std::int64_t>(n));
}

Datatype Datatype::contiguous(std::uint64_t count, const Datatype& base) {
  return hvector(count, 1, base.extent(), base);
}

Datatype Datatype::vec(std::uint64_t count, std::uint64_t blocklen,
                       std::int64_t stride, const Datatype& base) {
  return hvector(count, blocklen, stride * base.extent(), base);
}

Datatype Datatype::hvector(std::uint64_t count, std::uint64_t blocklen,
                           std::int64_t stride_bytes, const Datatype& base) {
  std::vector<Segment> segments;
  segments.reserve(count * blocklen * base.segments().size());
  std::int64_t lb = 0;
  std::int64_t ub = 0;
  bool first = true;
  for (std::uint64_t k = 0; k < count; ++k) {
    const std::int64_t block_disp = static_cast<std::int64_t>(k) * stride_bytes;
    for (std::uint64_t j = 0; j < blocklen; ++j) {
      place(segments, lb, ub, first, base,
            block_disp + static_cast<std::int64_t>(j) * base.extent());
    }
  }
  return make(std::move(segments), lb, ub);
}

Datatype Datatype::indexed(std::span<const IndexedBlock> blocks,
                           const Datatype& base) {
  std::vector<IndexedBlock> byte_blocks(blocks.begin(), blocks.end());
  for (IndexedBlock& block : byte_blocks) {
    block.disp *= base.extent();
  }
  return hindexed(byte_blocks, base);
}

Datatype Datatype::hindexed(std::span<const IndexedBlock> blocks,
                            const Datatype& base) {
  std::vector<Segment> segments;
  std::int64_t lb = 0;
  std::int64_t ub = 0;
  bool first = true;
  for (const IndexedBlock& block : blocks) {
    for (std::uint64_t j = 0; j < block.count; ++j) {
      place(segments, lb, ub, first, base,
            block.disp + static_cast<std::int64_t>(j) * base.extent());
    }
  }
  return make(std::move(segments), lb, ub);
}

Datatype Datatype::structured(std::span<const StructField> fields) {
  std::vector<Segment> segments;
  std::int64_t lb = 0;
  std::int64_t ub = 0;
  bool first = true;
  for (const StructField& field : fields) {
    for (std::uint64_t j = 0; j < field.count; ++j) {
      place(segments, lb, ub, first, *field.type,
            field.disp + static_cast<std::int64_t>(j) * field.type->extent());
    }
  }
  return make(std::move(segments), lb, ub);
}

Datatype Datatype::subarray(std::span<const std::int64_t> sizes,
                            std::span<const std::int64_t> subsizes,
                            std::span<const std::int64_t> starts,
                            const Datatype& element, Order order) {
  const std::size_t ndims = sizes.size();
  if (subsizes.size() != ndims || starts.size() != ndims || ndims == 0) {
    throw std::invalid_argument("subarray: dimension mismatch");
  }
  std::vector<std::int64_t> dim_sizes(sizes.begin(), sizes.end());
  std::vector<std::int64_t> dim_subsizes(subsizes.begin(), subsizes.end());
  std::vector<std::int64_t> dim_starts(starts.begin(), starts.end());
  if (order == Order::Fortran) {
    // Fortran order: first dimension varies fastest. Equivalent to C order
    // with the dimension lists reversed.
    std::reverse(dim_sizes.begin(), dim_sizes.end());
    std::reverse(dim_subsizes.begin(), dim_subsizes.end());
    std::reverse(dim_starts.begin(), dim_starts.end());
  }
  std::int64_t total_elems = 1;
  for (std::size_t d = 0; d < ndims; ++d) {
    if (dim_sizes[d] <= 0 || dim_subsizes[d] < 0 || dim_starts[d] < 0 ||
        dim_starts[d] + dim_subsizes[d] > dim_sizes[d]) {
      throw std::invalid_argument("subarray: bad sizes/subsizes/starts");
    }
    total_elems *= dim_sizes[d];
  }
  // Row strides in elements (C order: last dim stride 1).
  std::vector<std::int64_t> stride(ndims, 1);
  for (std::size_t d = ndims - 1; d > 0; --d) {
    stride[d - 1] = stride[d] * dim_sizes[d];
  }
  const std::int64_t elem_extent = element.extent();
  const bool dense_element = element.segments().size() == 1 &&
                             element.segments()[0].disp == 0 &&
                             static_cast<std::int64_t>(element.size()) ==
                                 elem_extent &&
                             element.lb() == 0;

  std::vector<Segment> segments;
  std::int64_t lb = 0;
  std::int64_t ub = total_elems * elem_extent;
  bool first = true;

  // Iterate all positions in the sub-block over the outer ndims-1 dims;
  // the innermost dim is a run.
  std::vector<std::int64_t> index(ndims, 0);
  bool empty = false;
  for (std::size_t d = 0; d < ndims; ++d) {
    if (dim_subsizes[d] == 0) empty = true;
  }
  while (!empty) {
    std::int64_t elem_offset = 0;
    for (std::size_t d = 0; d < ndims; ++d) {
      elem_offset += (dim_starts[d] + index[d]) * stride[d];
    }
    const std::int64_t byte_offset = elem_offset * elem_extent;
    const auto run = static_cast<std::uint64_t>(dim_subsizes[ndims - 1]);
    if (dense_element) {
      segments.push_back(Segment{
          byte_offset, run * static_cast<std::uint64_t>(elem_extent)});
      if (first) first = false;
    } else {
      for (std::uint64_t j = 0; j < run; ++j) {
        place(segments, lb, ub, first, element,
              byte_offset + static_cast<std::int64_t>(j) * elem_extent);
      }
    }
    // Advance the multi-index over the outer dims (innermost handled above).
    std::size_t d = ndims - 1;
    while (true) {
      if (d == 0) {
        empty = true;  // done
        break;
      }
      --d;
      if (++index[d] < dim_subsizes[d]) break;
      index[d] = 0;
    }
    if (ndims == 1) break;
  }
  // The subarray's extent is always the full global array regardless of
  // where the data sits.
  lb = 0;
  ub = total_elems * elem_extent;
  return make(std::move(segments), lb, ub);
}

Datatype Datatype::resized(const Datatype& base, std::int64_t lb,
                           std::uint64_t extent) {
  std::vector<Segment> segments = base.segments();
  return make(std::move(segments), lb, lb + static_cast<std::int64_t>(extent));
}

Datatype Datatype::from_segments(std::vector<Segment> segments,
                                 std::int64_t lb, std::int64_t ub) {
  return make(std::move(segments), lb, ub);
}

Datatype Datatype::darray(int rank, std::span<const std::int64_t> sizes,
                          std::span<const Distribution> dists,
                          std::span<const std::int64_t> dargs,
                          std::span<const std::int64_t> psizes,
                          const Datatype& element) {
  const std::size_t ndims = sizes.size();
  if (dists.size() != ndims || dargs.size() != ndims ||
      psizes.size() != ndims || ndims == 0) {
    throw std::invalid_argument("darray: dimension mismatch");
  }
  std::int64_t nprocs = 1;
  for (std::int64_t p : psizes) {
    if (p <= 0) throw std::invalid_argument("darray: bad process grid");
    nprocs *= p;
  }
  if (rank < 0 || rank >= nprocs) {
    throw std::invalid_argument("darray: rank outside the process grid");
  }
  // C-order decomposition of the rank into grid coordinates.
  std::vector<std::int64_t> coords(ndims);
  {
    std::int64_t rest = rank;
    for (std::size_t d = ndims; d-- > 0;) {
      coords[d] = rest % psizes[d];
      rest /= psizes[d];
    }
  }
  // Owned global indices per dimension.
  std::vector<std::vector<std::int64_t>> owned(ndims);
  for (std::size_t d = 0; d < ndims; ++d) {
    if (sizes[d] <= 0) throw std::invalid_argument("darray: bad array size");
    switch (dists[d]) {
      case Distribution::None:
        if (psizes[d] != 1) {
          throw std::invalid_argument(
              "darray: DISTRIBUTE_NONE requires a process-grid extent of 1");
        }
        for (std::int64_t i = 0; i < sizes[d]; ++i) owned[d].push_back(i);
        break;
      case Distribution::Block: {
        const std::int64_t block =
            dargs[d] > 0 ? dargs[d]
                         : (sizes[d] + psizes[d] - 1) / psizes[d];
        const std::int64_t begin = coords[d] * block;
        const std::int64_t end = std::min(sizes[d], begin + block);
        for (std::int64_t i = begin; i < end; ++i) owned[d].push_back(i);
        break;
      }
      case Distribution::Cyclic: {
        const std::int64_t block = dargs[d] > 0 ? dargs[d] : 1;
        for (std::int64_t i = 0; i < sizes[d]; ++i) {
          if ((i / block) % psizes[d] == coords[d]) owned[d].push_back(i);
        }
        break;
      }
    }
  }
  // Row strides in elements (C order).
  std::vector<std::int64_t> stride(ndims, 1);
  for (std::size_t d = ndims - 1; d > 0; --d) {
    stride[d - 1] = stride[d] * sizes[d];
  }
  const std::int64_t elem_extent = element.extent();
  std::int64_t total_elems = 1;
  for (std::int64_t s : sizes) total_elems *= s;

  // Emit segments: iterate the owned outer indices; merge consecutive
  // owned indices of the innermost dimension into runs.
  std::vector<Segment> segments;
  std::vector<std::size_t> pick(ndims, 0);
  bool any_empty = false;
  for (const auto& dim : owned) {
    if (dim.empty()) any_empty = true;
  }
  const std::uint64_t elem_size = element.size();
  const bool dense_element =
      element.segments().size() == 1 && element.segments()[0].disp == 0 &&
      static_cast<std::int64_t>(elem_size) == elem_extent;
  while (!any_empty) {
    std::int64_t base = 0;
    for (std::size_t d = 0; d + 1 < ndims; ++d) {
      base += owned[d][pick[d]] * stride[d];
    }
    // Runs along the innermost dimension.
    const auto& inner = owned[ndims - 1];
    std::size_t i = 0;
    while (i < inner.size()) {
      std::size_t j = i + 1;
      while (j < inner.size() && inner[j] == inner[j - 1] + 1) ++j;
      const std::int64_t elem_offset = base + inner[i];
      const auto run = static_cast<std::uint64_t>(j - i);
      if (dense_element) {
        segments.push_back(
            Segment{elem_offset * elem_extent,
                    run * static_cast<std::uint64_t>(elem_extent)});
      } else {
        std::int64_t lb_unused = 0;
        std::int64_t ub_unused = 0;
        bool first = true;
        for (std::uint64_t k = 0; k < run; ++k) {
          place(segments, lb_unused, ub_unused, first, element,
                (elem_offset + static_cast<std::int64_t>(k)) * elem_extent);
        }
      }
      i = j;
    }
    if (ndims == 1) break;
    std::size_t d = ndims - 1;
    while (true) {
      if (d == 0) {
        any_empty = true;  // done
        break;
      }
      --d;
      if (++pick[d] < owned[d].size()) break;
      pick[d] = 0;
    }
  }
  return make(std::move(segments), 0, total_elems * elem_extent);
}

std::vector<Segment> Datatype::tiled_segments(std::uint64_t count) const {
  std::vector<Segment> result;
  result.reserve(segments().size() * count);
  const std::int64_t ext = extent();
  for (std::uint64_t k = 0; k < count; ++k) {
    const std::int64_t shift = static_cast<std::int64_t>(k) * ext;
    for (const Segment& seg : segments()) {
      result.push_back(Segment{seg.disp + shift, seg.length});
    }
  }
  coalesce(result);
  return result;
}

bool Datatype::monotone() const { return is_monotone(state_->segments); }

std::string Datatype::describe() const {
  std::ostringstream os;
  os << "Datatype{size=" << size() << ", extent=" << extent()
     << ", segments=" << segments().size();
  const std::size_t shown = std::min<std::size_t>(segments().size(), 4);
  for (std::size_t i = 0; i < shown; ++i) {
    os << (i == 0 ? ": " : ", ") << "[" << segments()[i].disp << "+"
       << segments()[i].length << ")";
  }
  if (segments().size() > shown) {
    os << ", ...";
  }
  os << "}";
  return os.str();
}

}  // namespace parcoll::dtype
