// Tile overlap (halo reads), deferred open, and additional datatype
// coverage (2-D cyclic darray, Fortran subarray pack round trip, nested
// structs).
#include <gtest/gtest.h>

#include <numeric>

#include "dtype/pack.hpp"
#include "mpi/collectives.hpp"
#include "mpiio/file.hpp"
#include "workloads/tileio.hpp"

namespace parcoll {
namespace {

using dtype::Datatype;

TEST(TileOverlap, FiletypeExtendsIntoNeighboursClampedAtEdges) {
  workloads::TileIOConfig config;
  config.tiles_x = 2;
  config.tile_w = 8;
  config.tile_h = 4;
  config.elem_size = 1;
  config.overlap_x = 2;
  config.overlap_y = 1;
  // 2x2 grid of 8x4 tiles => 8x16 global. Rank 0 at the corner: clamped
  // to [0..5) rows x [0..10) cols.
  const auto corner = config.filetype(0, 4);
  EXPECT_EQ(corner.size(), 5u * 10u);
  // Rank 3 at the opposite corner: rows [3..8), cols [6..16).
  const auto far = config.filetype(3, 4);
  EXPECT_EQ(far.size(), 5u * 10u);
  EXPECT_EQ(config.rank_bytes_overlapped(0, 4), 50u);
}

TEST(TileOverlap, OverlappedReadVerifies) {
  workloads::TileIOConfig config;
  config.tiles_x = 2;
  config.tile_w = 8;
  config.tile_h = 4;
  config.elem_size = 8;
  config.overlap_x = 2;
  config.overlap_y = 1;
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::ParColl;
  spec.parcoll_groups = 2;
  spec.min_group_size = 2;
  spec.byte_true = true;
  spec.cb_buffer_size = 512;
  const auto result = workloads::run_tileio(config, 4, spec, /*write=*/false);
  EXPECT_TRUE(result.verified);
}

TEST(TileOverlap, OverlappedWriteIsRejected) {
  workloads::TileIOConfig config;
  config.tiles_x = 2;
  config.tile_w = 8;
  config.tile_h = 4;
  config.overlap_x = 1;
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::Ext2ph;
  EXPECT_THROW(workloads::run_tileio(config, 4, spec, /*write=*/true),
               std::invalid_argument);
}

TEST(DeferredOpen, NonAggregatorsSkipTheMetadataCost) {
  const auto open_time = [](bool no_indep_rw, int rank_to_probe) {
    mpi::World world(machine::MachineModel::jaguar(8));
    mpiio::Hints hints;
    hints.cb_nodes = 1;  // only node 0 (ranks 0,1) aggregates
    hints.no_indep_rw = no_indep_rw;
    double opened_at = 0;
    world.run([&](mpi::Rank& self) {
      mpiio::FileHandle file(self, self.comm_world(), "defer.dat", hints);
      if (self.rank() == rank_to_probe) opened_at = self.now();
      file.close();
    });
    return opened_at;
  };
  // With deferred open, the collective open completes faster for everyone
  // (the barrier no longer waits on 8 serialized-ish metadata RTTs).
  EXPECT_LE(open_time(true, 7), open_time(false, 7));
  // And the hint round-trips.
  mpiio::Hints hints;
  hints.set("romio_no_indep_rw", "true");
  EXPECT_TRUE(hints.no_indep_rw);
  EXPECT_EQ(hints.get("romio_no_indep_rw"), "true");
}

TEST(DarrayExtra, TwoDimensionalCyclicCyclic) {
  const std::int64_t sizes[] = {4, 4};
  const Datatype::Distribution dists[] = {Datatype::Distribution::Cyclic,
                                          Datatype::Distribution::Cyclic};
  const std::int64_t dargs[] = {0, 0};
  const std::int64_t psizes[] = {2, 2};
  // Rank 0 (coords 0,0): even rows, even cols.
  const auto type =
      Datatype::darray(0, sizes, dists, dargs, psizes, Datatype::bytes(1));
  EXPECT_EQ(type.size(), 4u);
  ASSERT_EQ(type.segments().size(), 4u);
  EXPECT_EQ(type.segments()[0], (dtype::Segment{0, 1}));
  EXPECT_EQ(type.segments()[1], (dtype::Segment{2, 1}));
  EXPECT_EQ(type.segments()[2], (dtype::Segment{8, 1}));
  EXPECT_EQ(type.segments()[3], (dtype::Segment{10, 1}));
}

TEST(DatatypeExtra, FortranSubarrayPackRoundTrip) {
  // A Fortran-order subarray must pack column-runs.
  const std::int64_t sizes[] = {4, 3};     // 4 (fastest) x 3, Fortran
  const std::int64_t subsizes[] = {2, 2};
  const std::int64_t starts[] = {1, 1};
  const Datatype type = Datatype::subarray(
      sizes, subsizes, starts, Datatype::bytes(1), Datatype::Order::Fortran);
  // Column-major 4x3 array, bytes 0..11. Selected: rows 1..2 of cols 1..2
  // = positions {5,6} and {9,10}.
  std::vector<unsigned char> memory(12);
  std::iota(memory.begin(), memory.end(), 0);
  std::vector<unsigned char> stream(4);
  dtype::pack(memory.data(), type, 1,
              reinterpret_cast<std::byte*>(stream.data()));
  EXPECT_EQ(stream, (std::vector<unsigned char>{5, 6, 9, 10}));
}

TEST(DatatypeExtra, NestedStructOfVectors) {
  const Datatype inner = Datatype::vec(2, 1, 2, Datatype::bytes(2));
  const Datatype spaced = Datatype::resized(inner, 0, 16);
  const dtype::StructField fields[] = {{0, 2, &spaced}, {40, 1, &inner}};
  const Datatype type = Datatype::structured(fields);
  EXPECT_EQ(type.size(), 2u * 4 + 4);
  // Two spaced copies at 0 and 16, then the raw inner at 40.
  EXPECT_EQ(type.segments()[0], (dtype::Segment{0, 2}));
  EXPECT_EQ(type.segments()[2], (dtype::Segment{16, 2}));
  EXPECT_EQ(type.segments()[4], (dtype::Segment{40, 2}));
  EXPECT_EQ(type.segments()[5], (dtype::Segment{44, 2}));
}

}  // namespace
}  // namespace parcoll
