// Cooperative fibers.
//
// Every simulated process (an MPI rank in this codebase) runs ordinary
// blocking C++ code on its own fiber stack. The discrete-event engine owns
// the scheduler context; a fiber runs until it blocks (yield) and is later
// resumed at a new point in virtual time. Everything is single-threaded, so
// no locking is needed anywhere in the simulator.
//
// Two context-switch backends:
//  - On x86-64 ELF targets a hand-rolled switch (callee-saved registers +
//    mxcsr/x87 control word, ~20 ns) replaces swapcontext, whose mandatory
//    sigprocmask syscalls dominated the engine's event loop.
//  - Everywhere else (or with -DPARCOLL_FORCE_UCONTEXT) the original POSIX
//    ucontext path remains.
// Both backends carry the AddressSanitizer fiber-switch annotations.
//
// Stacks come from an optional FiberStackPool (the engine passes one) so
// finished fibers donate their stacks to later spawns, and the low 64
// bytes of every stack hold a canary pattern: a fiber that runs off the
// end of an undersized stack tramples it, which Engine::run turns into a
// hard error instead of silent corruption.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>

#if !defined(PARCOLL_FAST_CONTEXT) && !defined(PARCOLL_FORCE_UCONTEXT)
#if defined(__x86_64__) && defined(__ELF__)
#define PARCOLL_FAST_CONTEXT 1
#endif
#endif

#if !defined(PARCOLL_FAST_CONTEXT)
#include <ucontext.h>
#endif

namespace parcoll::sim {

class FiberStackPool;

/// A single cooperative execution context with its own stack.
///
/// Lifecycle: construct with a body, call resume() repeatedly from the
/// scheduler until finished(). The body calls yield() to give control back.
/// Fibers are not copyable or movable (the saved context points into the
/// stack).
class Fiber {
 public:
  using Body = std::function<void()>;

  explicit Fiber(Body body, std::size_t stack_bytes = kDefaultStackBytes,
                 FiberStackPool* pool = nullptr);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the caller into the fiber. Returns when the fiber yields
  /// or its body returns. Must not be called on a finished fiber, nor from
  /// inside any fiber (only the scheduler resumes). If the body exited with
  /// an exception, it is rethrown here (exceptions cannot unwind across a
  /// context switch) with the fiber marked finished.
  void resume();

  /// Switch from inside the fiber back to whoever resumed it.
  void yield();

  /// True once the body has returned. A finished fiber must not be resumed.
  [[nodiscard]] bool finished() const { return finished_; }

  /// True while the canary at the deep end of the stack is unscathed. A
  /// trampled canary means the fiber overflowed its stack; the engine
  /// checks at fiber exit and refuses to continue on corruption.
  [[nodiscard]] bool stack_intact() const;

  /// The fiber currently executing on this thread, or nullptr when the
  /// scheduler context is running.
  static Fiber* current() { return current_; }

  /// Stack pointer this fiber will resume from (fast backend only;
  /// nullptr under ucontext). The engine prefetches around it so the
  /// restore of the next fiber overlaps the current event's execution.
  [[nodiscard]] void* saved_sp() const {
#if defined(PARCOLL_FAST_CONTEXT)
    return ctx_sp_;
#else
    return nullptr;
#endif
  }

  /// Default for bare fibers constructed outside the engine. Engine-spawned
  /// rank fibers default far lower (Engine::kDefaultStackBytes) and pool
  /// their stacks.
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  /// Bytes at the deep end of every stack reserved for the overflow canary.
  static constexpr std::size_t kCanaryBytes = 64;

 private:
#if defined(PARCOLL_FAST_CONTEXT)
  friend void fiber_entry_thunk(Fiber* self);
#else
  static void trampoline(unsigned int ptr_hi, unsigned int ptr_lo);
#endif
  void run_body();

#if defined(PARCOLL_FAST_CONTEXT)
  void* ctx_sp_ = nullptr;     // fiber's saved stack pointer
  void* link_sp_ = nullptr;    // scheduler's saved stack pointer
#else
  ucontext_t context_{};
  ucontext_t return_point_{};
#endif
  char* stack_ = nullptr;                // usable stack memory
  std::unique_ptr<char[]> owned_stack_;  // backing when no pool is attached
  std::size_t stack_bytes_ = 0;
  FiberStackPool* pool_ = nullptr;
  Body body_;
  std::exception_ptr exception_;
  bool started_ = false;
  bool finished_ = false;
  // Bookkeeping for the AddressSanitizer fiber-switch annotations (unused in
  // non-sanitized builds): the fiber's saved fake stack and the scheduler
  // stack bounds learned on first entry, needed to switch back legally.
  void* asan_fake_stack_ = nullptr;
  const void* asan_sched_stack_bottom_ = nullptr;
  std::size_t asan_sched_stack_size_ = 0;

  static thread_local Fiber* current_;
};

}  // namespace parcoll::sim
