// Extended two-phase collective I/O (ext2ph), ROMIO-style.
//
// This is the paper's baseline protocol and the inner aggregation engine
// that ParColl retains per subgroup (paper §4: "The original ext2ph
// protocol is still retained as a part of ParColl"). The processing phases
// match the paper's dissection (§2.2):
//
//   1. file-range gathering      — Allgather of each rank's [start, end)
//   2. file-domain partitioning  — the range is divided evenly among the
//                                  I/O aggregators (deterministic, local)
//   3. request dissemination     — Alltoall of per-aggregator request
//                                  counts + point-to-point offset lists
//   4. interleaved data exchange and file I/O — for each cycle, an
//      Allreduce'd number of times: Alltoall of cycle sizes (the per-cycle
//      synchronization that builds the collective wall), isend/irecv data
//      exchange, and aggregator reads/writes of its collective-buffer
//      window, with read-modify-write when the received data has holes.
//
// Extents are expressed in "target space" via the IoTarget seam: the
// physical file for plain collective I/O, or intermediate-view coordinates
// under ParColl's file-view switch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fs/lustre.hpp"
#include "fs/stripe.hpp"
#include "machine/topology.hpp"
#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "mpiio/hints.hpp"

namespace parcoll::mpiio {

/// Where aggregators perform their reads and writes.
class IoTarget {
 public:
  virtual ~IoTarget() = default;
  /// Write `extents` (data = concatenated payload, may be nullptr) and
  /// charge the calling rank's IO time.
  virtual void write(mpi::Rank& self, std::span<const fs::Extent> extents,
                     const std::byte* data) = 0;
  virtual void read(mpi::Rank& self, std::span<const fs::Extent> extents,
                    std::byte* out) = 0;
};

/// Reads/writes the physical file.
class DirectTarget final : public IoTarget {
 public:
  DirectTarget(fs::LustreSim& fs, int file_id)
      : fs_(fs), file_id_(file_id) {}
  void write(mpi::Rank& self, std::span<const fs::Extent> extents,
             const std::byte* data) override;
  void read(mpi::Rank& self, std::span<const fs::Extent> extents,
            std::byte* out) override;

 private:
  fs::LustreSim& fs_;
  int file_id_;
};

/// One rank's contribution to a collective call: its file extents (target
/// space, monotone, coalesced) and the matching packed data stream.
struct CollRequest {
  std::vector<fs::Extent> extents;
  std::byte* data = nullptr;  // write: source; read: destination; may be null

  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t total = 0;
    for (const fs::Extent& e : extents) total += e.length;
    return total;
  }
};

struct Ext2phOptions {
  std::uint64_t cb_buffer_size = 4ull << 20;
  /// Aggregators as local ranks in the calling communicator, sorted
  /// ascending. Must not be empty.
  std::vector<int> aggregators;
  /// When nonzero, file-domain boundaries are rounded up to multiples of
  /// this (the stripe size): the Lustre-aware ADIO optimization that keeps
  /// any one stripe inside a single aggregator's domain, avoiding shared
  /// extent locks at domain boundaries.
  std::uint64_t fd_alignment = 0;
};

struct Ext2phOutcome {
  std::uint64_t cycles = 0;     // data-exchange/file-I/O cycles executed
  std::uint64_t rmw_reads = 0;  // aggregator read-modify-write fills (this rank)
};

/// Collective write over `comm`. Every member must call with the same
/// options. Returns per-rank outcome counters.
Ext2phOutcome ext2ph_write(mpi::Rank& self, const mpi::Comm& comm,
                           IoTarget& target, const CollRequest& request,
                           const Ext2phOptions& options);

/// Collective read over `comm`.
Ext2phOutcome ext2ph_read(mpi::Rank& self, const mpi::Comm& comm,
                          IoTarget& target, const CollRequest& request,
                          const Ext2phOptions& options);

/// The default aggregator set for `comm` under `hints` (paper §4.2): one
/// aggregator per node (the lowest comm rank on it), nodes taken from
/// hints.cb_node_list if given, else all nodes hosting comm members in node
/// order; truncated to hints.cb_nodes if positive. Result: sorted local ranks.
std::vector<int> default_aggregators(const machine::Topology& topology,
                                     const mpi::Comm& comm,
                                     const Hints& hints);

}  // namespace parcoll::mpiio
