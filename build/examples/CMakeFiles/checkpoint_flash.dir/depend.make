# Empty dependencies file for checkpoint_flash.
# This may be replaced when dependencies are built.
