// Timeline trace: render where every rank's time goes during one
// collective write, baseline vs ParColl — the collective wall, visually.
//
// Sync intervals ('S') are ranks waiting at the per-cycle coordination
// points for the slowest storage target of the moment; ParColl's subgroups
// shrink and decouple those waits.
#include <cstdio>

#include "core/parcoll.hpp"
#include "mpi/collectives.hpp"
#include "mpi/trace.hpp"
#include "mpiio/file.hpp"
#include "workloads/tileio.hpp"

namespace {

void trace_run(int groups) {
  using namespace parcoll;
  const int nprocs = 32;
  const auto config = workloads::TileIOConfig::paper(nprocs);
  mpi::World world(machine::MachineModel::jaguar(nprocs), /*byte_true=*/false);
  auto& tracer = world.enable_tracing();
  mpiio::Hints hints;
  hints.parcoll_num_groups = groups;
  hints.parcoll_min_group_size = 4;

  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "timeline.dat", hints);
    file.set_view(0, config.elem_size, config.filetype(self.rank(), nprocs));
    core::write_at_all(file, 0, nullptr, 1,
                       dtype::Datatype::bytes(config.rank_bytes()));
    file.close();
  });

  std::printf("%s\n", tracer.gantt(/*width=*/96, /*max_ranks=*/16).c_str());
}

}  // namespace

int main() {
  std::printf("=== MPI-Tile-IO collective write, 32 ranks, baseline ===\n");
  trace_run(0);
  std::printf("=== same write, ParColl-4 ===\n");
  trace_run(4);
  std::printf("note how the long 'S' stretches (everyone waiting on the\n"
              "slowest target each cycle) shrink under partitioning.\n");
  return 0;
}
