
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptive_and_cb.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_adaptive_and_cb.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_adaptive_and_cb.cpp.o.d"
  "/root/repo/tests/test_aggregator_dist.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_aggregator_dist.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_aggregator_dist.cpp.o.d"
  "/root/repo/tests/test_async_atomic.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_async_atomic.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_async_atomic.cpp.o.d"
  "/root/repo/tests/test_collectives_extended.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_collectives_extended.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_collectives_extended.cpp.o.d"
  "/root/repo/tests/test_darray_filepointer.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_darray_filepointer.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_darray_filepointer.cpp.o.d"
  "/root/repo/tests/test_datatype.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_datatype.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_datatype.cpp.o.d"
  "/root/repo/tests/test_ext2ph.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_ext2ph.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_ext2ph.cpp.o.d"
  "/root/repo/tests/test_ext2ph_edge.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_ext2ph_edge.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_ext2ph_edge.cpp.o.d"
  "/root/repo/tests/test_fiber.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_fiber.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_fiber.cpp.o.d"
  "/root/repo/tests/test_file_area.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_file_area.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_file_area.cpp.o.d"
  "/root/repo/tests/test_fs.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_fs.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_fs.cpp.o.d"
  "/root/repo/tests/test_h5lite.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_h5lite.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_h5lite.cpp.o.d"
  "/root/repo/tests/test_intermediate_view.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_intermediate_view.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_intermediate_view.cpp.o.d"
  "/root/repo/tests/test_ior_options.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_ior_options.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_ior_options.cpp.o.d"
  "/root/repo/tests/test_machine.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_machine.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_machine.cpp.o.d"
  "/root/repo/tests/test_model_sanity.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_model_sanity.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_model_sanity.cpp.o.d"
  "/root/repo/tests/test_mpi_collectives.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_mpi_collectives.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_mpi_collectives.cpp.o.d"
  "/root/repo/tests/test_mpi_p2p.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_mpi_p2p.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_mpi_p2p.cpp.o.d"
  "/root/repo/tests/test_mpiio_file.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_mpiio_file.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_mpiio_file.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_overlap_deferred.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_overlap_deferred.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_overlap_deferred.cpp.o.d"
  "/root/repo/tests/test_parcoll.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_parcoll.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_parcoll.cpp.o.d"
  "/root/repo/tests/test_property_random.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_property_random.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_property_random.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_segments_flatten_pack.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_segments_flatten_pack.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_segments_flatten_pack.cpp.o.d"
  "/root/repo/tests/test_sieve.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_sieve.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_sieve.cpp.o.d"
  "/root/repo/tests/test_sim_engine.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_sim_engine.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_sim_engine.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_split_modes_shared.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_split_modes_shared.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_split_modes_shared.cpp.o.d"
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_stress.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_view.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_view.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_view.cpp.o.d"
  "/root/repo/tests/test_workload_equivalence.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_workload_equivalence.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_workload_equivalence.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/parcoll_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/parcoll_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/parcoll.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
