#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace parcoll::net {

Network::Network(const machine::Topology& topology,
                 const machine::NetworkParams& params,
                 const machine::MemoryParams& mem)
    : params_(params),
      mem_(mem),
      tx_busy_until_(static_cast<std::size_t>(topology.num_nodes()), 0.0),
      rx_busy_until_(static_cast<std::size_t>(topology.num_nodes()), 0.0) {}

double Network::transfer(double ready, int src_node, int dst_node,
                         std::uint64_t bytes) {
  if (src_node < 0 || dst_node < 0 ||
      static_cast<std::size_t>(src_node) >= tx_busy_until_.size() ||
      static_cast<std::size_t>(dst_node) >= rx_busy_until_.size()) {
    throw std::out_of_range("Network::transfer: bad node id");
  }
  if (src_node == dst_node) {
    // Intra-node: a memory copy between the two processes' address spaces
    // (Catamount delivers user-space to user-space without kernel buffering).
    // Calibrated by the explicit intranode_* parameters; an unset bandwidth
    // inherits the node's memcpy bandwidth.
    const double bw = params_.intranode_bandwidth > 0
                          ? params_.intranode_bandwidth
                          : mem_.memcpy_bandwidth;
    return ready + params_.intranode_latency + static_cast<double>(bytes) / bw;
  }
  auto& tx = tx_busy_until_[static_cast<std::size_t>(src_node)];
  auto& rx = rx_busy_until_[static_cast<std::size_t>(dst_node)];
  const double start = std::max({ready, tx, rx});
  const double done =
      start + params_.p2p_latency +
      static_cast<double>(bytes) / params_.p2p_bandwidth;
  tx = done;
  rx = done;
  return done;
}

}  // namespace parcoll::net
