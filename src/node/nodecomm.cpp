#include "node/nodecomm.hpp"

#include <algorithm>
#include <stdexcept>

#include "mpi/collectives.hpp"

namespace parcoll::node {

namespace {
// Context-derivation salts for the two derived communicators. Arbitrary but
// fixed: every rank must derive the same ids from the same parent context.
constexpr std::uint64_t kNodeSeq = 0x6e6f6465;    // "node"
constexpr std::uint64_t kLeaderSeq = 0x6c646572;  // "lder"
}  // namespace

bool two_level_applicable(const machine::Topology& topology,
                          const mpi::Comm& comm) {
  if (!comm.valid() || comm.size() < 2) {
    return false;
  }
  std::vector<int> seen;
  seen.reserve(static_cast<std::size_t>(comm.size()));
  for (int world : comm.members()) {
    const int node = topology.node_of(world);
    if (std::find(seen.begin(), seen.end(), node) != seen.end()) {
      return true;  // second member on the same node
    }
    seen.push_back(node);
  }
  return false;
}

bool two_level_active(IntranodeMode mode, const machine::Topology& topology,
                      const mpi::Comm& comm) {
  if (mode == IntranodeMode::Off) {
    return false;
  }
  return two_level_applicable(topology, comm);
}

std::vector<int> NodeComm::to_leader_locals(
    const std::vector<int>& parent_locals) const {
  std::vector<int> locals;
  locals.reserve(parent_locals.size());
  for (int parent_local : parent_locals) {
    locals.push_back(node_index_of[static_cast<std::size_t>(parent_local)]);
  }
  std::sort(locals.begin(), locals.end());
  locals.erase(std::unique(locals.begin(), locals.end()), locals.end());
  return locals;
}

NodeComm make_node_comm(mpi::Rank& self, const mpi::Comm& comm,
                        const machine::Topology& topology,
                        LeaderPolicy policy) {
  NodeComm nc;
  nc.parent = comm;
  nc.my_parent_local_ = comm.local_rank(self.rank());
  if (nc.my_parent_local_ < 0) {
    throw std::logic_error("make_node_comm: caller not a member of comm");
  }

  // Group parent members by physical node, dense-indexed in ascending
  // physical-node order. Members of comm are visited in local-rank order,
  // so each node's member list comes out ascending by parent local rank.
  std::vector<int> node_ids;  // physical id per node index
  for (int local = 0; local < comm.size(); ++local) {
    const int node = topology.node_of(comm.world_rank(local));
    auto it = std::lower_bound(node_ids.begin(), node_ids.end(), node);
    if (it == node_ids.end() || *it != node) {
      const auto at = static_cast<std::size_t>(it - node_ids.begin());
      node_ids.insert(it, node);
      nc.node_members.insert(
          nc.node_members.begin() + static_cast<std::ptrdiff_t>(at),
          std::vector<int>{});
    }
  }
  nc.node_index_of.resize(static_cast<std::size_t>(comm.size()), -1);
  for (int local = 0; local < comm.size(); ++local) {
    const int node = topology.node_of(comm.world_rank(local));
    const auto at = static_cast<std::size_t>(
        std::lower_bound(node_ids.begin(), node_ids.end(), node) -
        node_ids.begin());
    nc.node_index_of[static_cast<std::size_t>(local)] = static_cast<int>(at);
    nc.node_members[at].push_back(local);
  }

  // Elect one leader per node.
  nc.leaders.reserve(node_ids.size());
  for (std::size_t n = 0; n < node_ids.size(); ++n) {
    const auto& members = nc.node_members[n];
    std::size_t pick = 0;
    if (policy == LeaderPolicy::Spread) {
      pick = n % members.size();
    }
    nc.leaders.push_back(members[pick]);
    if (members.size() > 1) {
      nc.multi = true;
    }
  }

  nc.my_node_index =
      nc.node_index_of[static_cast<std::size_t>(nc.my_parent_local_)];
  const auto& my_members =
      nc.node_members[static_cast<std::size_t>(nc.my_node_index)];
  nc.i_lead_ =
      nc.leaders[static_cast<std::size_t>(nc.my_node_index)] ==
      nc.my_parent_local_;
  nc.leader_node_local = static_cast<int>(
      std::find(my_members.begin(), my_members.end(),
                nc.leaders[static_cast<std::size_t>(nc.my_node_index)]) -
      my_members.begin());

  // Materialize the derived communicators. Context ids are deterministic
  // functions of the parent context, so no exchange is needed; repeated
  // construction over the same parent reuses the same contexts, which is
  // equivalent to caching the communicators.
  const auto& colls = self.world().colls();
  std::vector<int> node_world;
  node_world.reserve(my_members.size());
  for (int local : my_members) {
    node_world.push_back(comm.world_rank(local));
  }
  nc.node_comm = mpi::Comm(
      colls.derive_context(comm.context_id(), kNodeSeq, nc.my_node_index),
      std::move(node_world));

  std::vector<int> leader_world;
  leader_world.reserve(nc.leaders.size());
  for (int local : nc.leaders) {
    leader_world.push_back(comm.world_rank(local));
  }
  nc.leader_comm =
      mpi::Comm(colls.derive_context(comm.context_id(), kLeaderSeq, 0),
                std::move(leader_world));
  return nc;
}

}  // namespace parcoll::node
