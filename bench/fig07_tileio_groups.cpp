// Figure 7 — "Performance of MPI-Tile-IO" vs the number of subgroups.
//
// MPI-Tile-IO at 512 processes, the file divided into a varying number of
// File Areas (equivalently, the processes into that many subgroups), for
// both collective write and read. The paper: comparable to the baseline at
// 1-2 subgroups, best at 64 subgroups (+210% write / +180% read), then a
// sharp drop when over-partitioned — fine-grained I/O relinquishes the
// benefits of aggregation. (Beyond the 64 clean tile-row boundaries the
// partition switches to the intermediate file view, whose scattered
// physical windows are exactly that fine-grained regime.)
#include "bench/common.hpp"
#include "workloads/tileio.hpp"

int main(int argc, char** argv) {
  using namespace parcoll;
  using namespace parcoll::bench;
  BenchReport report("fig07_tileio_groups", argc, argv);

  const int nprocs = 512;
  const auto config = workloads::TileIOConfig::paper(nprocs);
  header("Figure 7", "MPI-Tile-IO bandwidth vs number of subgroups (P=512)");

  for (const bool write : {true, false}) {
    std::printf("  --- collective %s ---\n", write ? "write" : "read");
    const std::string mode = write ? "write" : "read";
    const auto base =
        workloads::run_tileio(config, nprocs, baseline_spec(), write);
    row("Cray (ext2ph)", base);
    report.add(mode + "/cray", nprocs, base);
    for (int groups : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
      // min group size 2 so the over-partitioned regime is reachable.
      auto spec = parcoll_spec(groups, /*min_group_size=*/2);
      const auto result = workloads::run_tileio(config, nprocs, spec, write);
      std::string label = "ParColl-" + std::to_string(groups);
      if (result.stats.view_switches > 0) label += " (interm.)";
      row(label, result);
      report.add(mode + "/parcoll-" + std::to_string(groups), nprocs, result);
    }
  }
  footnote("paper: best at 64 subgroups (+210% write, +180% read); sharp");
  footnote("drop when partitioned into an extreme number of subgroups");
  return 0;
}
