// Model checker: schedule tokens, tie-break policies, invariant checking,
// bug-injection self-tests, and degraded-mode file-content equivalence.
#include <gtest/gtest.h>

#include <stdexcept>

#include "check/explore.hpp"
#include "check/invariants.hpp"
#include "sim/random.hpp"
#include "sim/schedule.hpp"
#include "workloads/ior.hpp"
#include "workloads/tileio.hpp"

namespace {

using namespace parcoll;
using check::CheckConfig;
using check::InjectedBug;
using check::ScheduleOutcome;
using sim::ScheduleChoice;
using sim::SchedulePolicy;
using sim::TieBreak;

// ---------------------------------------------------------------------------
// Schedule tokens
// ---------------------------------------------------------------------------

TEST(ScheduleToken, RoundTrips) {
  EXPECT_EQ(SchedulePolicy::program().token(), "p");
  EXPECT_EQ(SchedulePolicy::random(42).token(), "r42");
  EXPECT_EQ(SchedulePolicy::dfs({}).token(), "d");
  EXPECT_EQ(SchedulePolicy::dfs({0, 2, 1}).token(), "d0.2.1");

  for (const std::string token : {"p", "r42", "r0", "d", "d0.2.1", "d7"}) {
    EXPECT_EQ(SchedulePolicy::parse(token).token(), token) << token;
  }
  const SchedulePolicy random = SchedulePolicy::parse("r99");
  EXPECT_EQ(random.kind, TieBreak::Random);
  EXPECT_EQ(random.seed, 99u);
  const SchedulePolicy dfs = SchedulePolicy::parse("d1.0.3");
  EXPECT_EQ(dfs.kind, TieBreak::Dfs);
  EXPECT_EQ(dfs.choices, (std::vector<std::uint32_t>{1, 0, 3}));
}

TEST(ScheduleToken, RejectsMalformedInput) {
  for (const std::string token :
       {"", "q", "px", "r", "r12x", "d1.", "d.", "d1..2", "dx"}) {
    EXPECT_THROW((void)SchedulePolicy::parse(token), std::invalid_argument)
        << "token: '" << token << "'";
  }
}

TEST(SchedulePolicy, PickSemantics) {
  // Program: always the first (sequence-ordered) event.
  EXPECT_EQ(SchedulePolicy::program().pick(0, 5), 0u);
  EXPECT_EQ(SchedulePolicy::program().pick(99, 2), 0u);
  // Dfs: forced within the prefix (clamped), program order beyond it.
  const SchedulePolicy dfs = SchedulePolicy::dfs({3, 1});
  EXPECT_EQ(dfs.pick(0, 5), 3u);
  EXPECT_EQ(dfs.pick(0, 2), 1u);  // clamped to alternatives - 1
  EXPECT_EQ(dfs.pick(1, 5), 1u);
  EXPECT_EQ(dfs.pick(2, 5), 0u);  // beyond the prefix
  // Random: deterministic in (seed, step), bounded by alternatives.
  const SchedulePolicy random = SchedulePolicy::random(7);
  for (std::uint64_t step = 0; step < 50; ++step) {
    const std::uint32_t pick = random.pick(step, 3);
    EXPECT_LT(pick, 3u);
    EXPECT_EQ(pick, SchedulePolicy::random(7).pick(step, 3));
  }
}

TEST(DfsNext, EnumeratesTheBoundedTree) {
  // Log: two choice points with 2 and 3 alternatives, all chosen 0.
  const std::vector<ScheduleChoice> root = {{0, 2}, {0, 3}};
  auto next = sim::dfs_next(root, 8);
  ASSERT_TRUE(next.has_value());
  // Deepest-first: bump the last in-bounds choice point.
  EXPECT_EQ(*next, (std::vector<std::uint32_t>{0, 1}));

  // Exhausted last position: backtracks to the first.
  const std::vector<ScheduleChoice> deep_done = {{0, 2}, {2, 3}};
  next = sim::dfs_next(deep_done, 8);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, (std::vector<std::uint32_t>{1}));

  // Fully exhausted tree.
  const std::vector<ScheduleChoice> all_done = {{1, 2}, {2, 3}};
  EXPECT_FALSE(sim::dfs_next(all_done, 8).has_value());

  // Depth limit: choice points past the horizon never branch.
  const std::vector<ScheduleChoice> beyond = {{1, 2}, {0, 3}};
  EXPECT_FALSE(sim::dfs_next(beyond, 1).has_value());

  // Singleton choice points (alternatives == 1) cannot branch.
  const std::vector<ScheduleChoice> singleton = {{0, 1}, {0, 1}};
  EXPECT_FALSE(sim::dfs_next(singleton, 8).has_value());
}

TEST(ScheduleSignature, DistinguishesLogs) {
  const std::vector<ScheduleChoice> a = {{0, 2}, {1, 3}};
  const std::vector<ScheduleChoice> b = {{1, 2}, {1, 3}};
  const std::vector<ScheduleChoice> c = {{1, 3}, {0, 2}};
  EXPECT_NE(sim::schedule_signature(a), sim::schedule_signature(b));
  EXPECT_NE(sim::schedule_signature(a), sim::schedule_signature(c));
  EXPECT_EQ(sim::schedule_signature(a), sim::schedule_signature(a));
}

// ---------------------------------------------------------------------------
// Bit-identity of the default tie-break
// ---------------------------------------------------------------------------

// The Program policy must keep the engine on the historical fast path.
// These exact doubles were captured against the pre-schedule-policy engine;
// any drift means the default schedule changed behavior.
TEST(ScheduleBitIdentity, TileIoParCollMatchesPreChangeEngine) {
  workloads::TileIOConfig config;
  config.tiles_x = 4;
  config.tile_w = 8;
  config.tile_h = 4;
  config.elem_size = 8;
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::ParColl;
  spec.parcoll_groups = 2;
  spec.min_group_size = 2;
  spec.byte_true = true;
  spec.cb_buffer_size = 4096;
  const workloads::RunResult result = run_tileio(config, 8, spec, true);
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(result.elapsed, 0.015066419635764825);
  EXPECT_EQ(result.sum.total(), 0.12125135708611859);
  EXPECT_EQ(result.fs_rpcs, 8u);
  // And the default policy records no choice points at all.
  EXPECT_EQ(result.schedule_token, "p");
  EXPECT_EQ(result.choice_points, 0u);
}

TEST(ScheduleBitIdentity, IorExt2phMatchesPreChangeEngine) {
  workloads::IorConfig config;
  config.block_size = 1 << 16;
  config.xfer_size = 1 << 14;
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::Ext2ph;
  spec.byte_true = true;
  spec.cb_buffer_size = 4096;
  const workloads::RunResult result = run_ior(config, 8, spec, true);
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(result.elapsed, 0.14066181123837801);
  EXPECT_EQ(result.sum.total(), 1.1260144899070235);
  EXPECT_EQ(result.fs_rpcs, 128u);
}

TEST(ScheduleBitIdentity, FaultInjectedRunMatchesPreChangeEngine) {
  workloads::TileIOConfig config;
  config.tiles_x = 4;
  config.tile_w = 8;
  config.tile_h = 4;
  config.elem_size = 8;
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::ParColl;
  spec.parcoll_groups = 2;
  spec.min_group_size = 2;
  spec.byte_true = true;
  spec.cb_buffer_size = 4096;
  spec.fault = fault::FaultPlan::parse(
      "seed=9;ost-outage=1:0:0.05;rpc-drop=0.05;rank-stall=0:0:0.2");
  const workloads::RunResult result = run_tileio(config, 8, spec, true);
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(result.elapsed, 0.015086432969098174);
  EXPECT_EQ(result.sum.total(), 1.7214114637527851);
}

// ---------------------------------------------------------------------------
// Schedule replay determinism
// ---------------------------------------------------------------------------

TEST(ScheduleReplay, SameSeedReproducesSameRun) {
  const CheckConfig config{"t", "tileio", 8, workloads::Impl::ParColl, 2};
  const ScheduleOutcome a =
      check::run_schedule(config, SchedulePolicy::random(1234));
  const ScheduleOutcome b =
      check::run_schedule(config, SchedulePolicy::random(1234));
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_GT(a.log.size(), 0u);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(sim::schedule_signature(a.log), sim::schedule_signature(b.log));
}

TEST(ScheduleReplay, DifferentSeedsExploreDifferentSchedules) {
  const CheckConfig config{"t", "tileio", 8, workloads::Impl::ParColl, 2};
  const ScheduleOutcome a =
      check::run_schedule(config, SchedulePolicy::random(1));
  const ScheduleOutcome b =
      check::run_schedule(config, SchedulePolicy::random(2));
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_NE(sim::schedule_signature(a.log), sim::schedule_signature(b.log));
  // ... and still byte-identical file contents.
  EXPECT_EQ(a.digest, b.digest);
}

TEST(ScheduleReplay, DfsRootEqualsProgramOrder) {
  const CheckConfig config{"t", "tileio", 8, workloads::Impl::Ext2ph};
  const ScheduleOutcome program =
      check::run_schedule(config, SchedulePolicy::program());
  const ScheduleOutcome root =
      check::run_schedule(config, SchedulePolicy::dfs({}));
  ASSERT_TRUE(program.completed);
  ASSERT_TRUE(root.completed);
  EXPECT_EQ(program.digest, root.digest);
  // The root records its (all-zero) picks; program order records nothing.
  EXPECT_EQ(program.log.size(), 0u);
  EXPECT_GT(root.log.size(), 0u);
  for (const ScheduleChoice& choice : root.log) {
    EXPECT_EQ(choice.chosen, 0u);
  }
}

// ---------------------------------------------------------------------------
// Invariant checker unit tests
// ---------------------------------------------------------------------------

TEST(InvariantChecker, FlagsKindMismatch) {
  check::InvariantChecker checker;
  checker.on_collective(0, /*ctx=*/1, /*seq=*/0, /*kind=*/5, 4, 0xabc);
  checker.on_collective(1, 1, 0, /*kind=*/0, 4, 0xabc);
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.violations()[0].invariant, "collective-match");
}

TEST(InvariantChecker, FlagsMembershipDisagreement) {
  check::InvariantChecker checker;
  checker.on_collective(0, 1, 0, 5, 4, 0xabc);
  checker.on_collective(1, 1, 0, 5, 4, 0xdef);
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.violations()[0].invariant, "collective-match");
}

TEST(InvariantChecker, FinalizeFlagsIncompleteCollectives) {
  check::InvariantChecker checker;
  checker.on_collective(0, 1, 0, 5, 4, 0xabc);
  checker.on_collective(1, 1, 0, 5, 4, 0xabc);
  EXPECT_TRUE(checker.ok());
  checker.finalize();  // only 2 of 4 members arrived
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.violations()[0].invariant, "collective-complete");
}

TEST(InvariantChecker, CleanRunPasses) {
  check::InvariantChecker checker;
  for (int rank = 0; rank < 4; ++rank) {
    checker.on_collective(rank, 1, 0, 5, 4, 0xabc);
    checker.on_partition(rank, 1, 4, 0x123);
    checker.on_reelection(rank, 1, 4, 0x456);
  }
  EXPECT_EQ(checker.checks(), 12u);  // one per hook call
  checker.finalize();
  EXPECT_TRUE(checker.ok());
}

TEST(InvariantChecker, FlagsSplitBrainReelection) {
  check::InvariantChecker checker;
  checker.on_reelection(0, 1, 4, 0x111);
  checker.on_reelection(1, 1, 4, 0x222);  // different roster: split-brain
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.violations()[0].invariant, "reelection-agreement");
}

// ---------------------------------------------------------------------------
// Bug injection: the checker catches planted interleaving bugs
// ---------------------------------------------------------------------------

ScheduleOutcome find_bug(InjectedBug bug) {
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t seed =
        sim::hash_combine(1, static_cast<std::uint64_t>(i));
    ScheduleOutcome outcome =
        check::run_bug_schedule(SchedulePolicy::random(seed), bug);
    if (!outcome.violations.empty() || outcome.deadlock) {
      return outcome;
    }
  }
  return {};
}

TEST(BugInjection, ProgramOrderStaysClean) {
  const ScheduleOutcome outcome =
      check::run_bug_schedule(SchedulePolicy::program(), InjectedBug::Mismatch);
  EXPECT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.violations.empty());
}

TEST(BugInjection, MismatchIsCaughtAndReplayReproduces) {
  const ScheduleOutcome caught = find_bug(InjectedBug::Mismatch);
  ASSERT_FALSE(caught.violations.empty())
      << "planted mismatch not found in 64 random schedules";
  EXPECT_EQ(caught.violations[0].invariant, "collective-match");
  // The escaping error names the schedule token for replay.
  EXPECT_NE(caught.error.find(caught.token), std::string::npos);

  // Replaying the printed token reproduces the identical outcome.
  const ScheduleOutcome replay = check::run_bug_schedule(
      SchedulePolicy::parse(caught.token), InjectedBug::Mismatch);
  EXPECT_EQ(replay.log, caught.log);
  EXPECT_EQ(replay.error, caught.error);
  ASSERT_FALSE(replay.violations.empty());
  EXPECT_EQ(replay.violations[0].detail, caught.violations[0].detail);
}

TEST(BugInjection, DeadlockCarriesScheduleToken) {
  const ScheduleOutcome caught = find_bug(InjectedBug::Deadlock);
  ASSERT_TRUE(caught.deadlock)
      << "planted deadlock not found in 64 random schedules";
  // DeadlockError embeds the schedule token and the blocked-rank reasons.
  EXPECT_NE(caught.error.find(caught.token), std::string::npos);
  EXPECT_NE(caught.error.find("blocked"), std::string::npos);
  EXPECT_NE(caught.error.find("collective"), std::string::npos);

  const ScheduleOutcome replay = check::run_bug_schedule(
      SchedulePolicy::parse(caught.token), InjectedBug::Deadlock);
  EXPECT_TRUE(replay.deadlock);
  EXPECT_EQ(replay.error, caught.error);
}

// ---------------------------------------------------------------------------
// Degraded-mode file-content equivalence
// ---------------------------------------------------------------------------

/// Clean program-order digest for a degraded config's workload shape.
std::uint64_t clean_digest(CheckConfig config) {
  config.fault_spec.clear();
  const ScheduleOutcome clean =
      check::run_schedule(config, SchedulePolicy::program());
  EXPECT_TRUE(clean.completed);
  EXPECT_TRUE(clean.verified);
  return clean.digest;
}

TEST(ContentEquivalence, DegradedSmokeConfigsMatchCleanRun) {
  for (const CheckConfig& config : check::smoke_configs()) {
    if (config.fault_spec.empty()) {
      continue;
    }
    const std::uint64_t reference = clean_digest(config);
    const ScheduleOutcome degraded =
        check::run_schedule(config, SchedulePolicy::program());
    ASSERT_TRUE(degraded.completed) << config.name << ": " << degraded.error;
    EXPECT_TRUE(degraded.verified) << config.name;
    EXPECT_TRUE(degraded.faults.any())
        << config.name << ": fault plan did not engage";
    EXPECT_EQ(degraded.digest, reference) << config.name;
    EXPECT_TRUE(degraded.violations.empty()) << config.name;
  }
}

TEST(ContentEquivalence, DegradedModeActuallyDegrades) {
  // The smoke matrix must exercise the recovery paths it claims to cover:
  // retries/failovers from the outage plan, a re-election from the stall
  // plan. (Guards against plans that silently stop engaging.)
  fault::FaultCounters seen;
  for (const CheckConfig& config : check::smoke_configs()) {
    if (config.fault_spec.empty()) {
      continue;
    }
    const ScheduleOutcome outcome =
        check::run_schedule(config, SchedulePolicy::program());
    ASSERT_TRUE(outcome.completed) << config.name;
    seen += outcome.faults;
  }
  EXPECT_GT(seen.retries, 0u);
  EXPECT_GT(seen.failovers, 0u);
  EXPECT_GT(seen.reelections, 0u);
  EXPECT_GT(seen.stalls, 0u);
  EXPECT_GT(seen.drops, 0u);
}

TEST(ContentEquivalence, DegradedRunsUnderRandomSchedulesMatchToo) {
  // The core tentpole property at test scale: fault plan x schedule
  // permutation still lands the same bytes.
  for (const CheckConfig& config : check::smoke_configs()) {
    if (config.fault_spec.empty()) {
      continue;
    }
    const std::uint64_t reference = clean_digest(config);
    for (std::uint64_t seed : {11u, 12u}) {
      const ScheduleOutcome outcome =
          check::run_schedule(config, SchedulePolicy::random(seed));
      ASSERT_TRUE(outcome.completed)
          << config.name << " r" << seed << ": " << outcome.error;
      EXPECT_EQ(outcome.digest, reference) << config.name << " r" << seed;
      EXPECT_TRUE(outcome.violations.empty()) << config.name << " r" << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

TEST(Explore, SmokeConfigCompletesCleanWithDistinctSchedules) {
  const CheckConfig config{"t", "tileio", 8, workloads::Impl::ParColl, 2};
  check::ExploreOptions options;
  options.budget = 24;
  const check::ExploreStats stats = check::explore(config, options);
  EXPECT_TRUE(stats.ok()) << stats.violations[0].invariant << ": "
                          << stats.violations[0].detail;
  // budget runs + the reference run, every one a distinct interleaving.
  EXPECT_EQ(stats.schedules, 25u);
  EXPECT_EQ(stats.distinct, 25u);
  EXPECT_GT(stats.invariant_checks, 0u);
}

TEST(Explore, ReplayCommandNamesConfigAndToken) {
  const check::ExploreViolation violation{"cfg", "deadlock", "detail", "r7"};
  const std::string command = check::replay_command(violation);
  EXPECT_NE(command.find("--config cfg"), std::string::npos);
  EXPECT_NE(command.find("r7"), std::string::npos);
}

}  // namespace
