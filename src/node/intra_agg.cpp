#include "node/intra_agg.hpp"

#include <algorithm>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "mpi/p2p.hpp"
#include "mpi/trace.hpp"

namespace parcoll::node {

namespace {

// Tags for the intra-node shipping protocol. They live on the node_comm
// context, so they can never collide with ext2ph's tags (which flow over
// the parent or leader communicator contexts).
constexpr int kTagHeader = 9001;
constexpr int kTagExtents = 9002;
constexpr int kTagData = 9003;
constexpr int kTagReply = 9004;

struct WireHeader {
  std::uint64_t n_extents = 0;
  std::uint64_t total_bytes = 0;
};

/// One node member's request as the leader sees it.
struct MemberReq {
  std::vector<fs::Extent> extents;
  std::uint64_t total_bytes = 0;         // announced payload size
  std::vector<std::byte> recv_data;      // shipped payload (writes, byte-true)
  const std::byte* data = nullptr;       // payload to merge from (may be null)
};

/// The node-level union request: sorted, coalesced extents plus prefix
/// sums locating each extent in the packed node stream.
struct Merged {
  std::vector<fs::Extent> extents;
  std::vector<std::uint64_t> prefix;
  std::uint64_t total = 0;

  /// Packed-stream position of file offset `off` (must lie inside an
  /// extent; every member piece does, by construction of the union).
  [[nodiscard]] std::uint64_t stream_pos(std::uint64_t off) const {
    auto it = std::upper_bound(
        extents.begin(), extents.end(), off,
        [](std::uint64_t v, const fs::Extent& e) { return v < e.offset; });
    const auto k = static_cast<std::size_t>(it - extents.begin()) - 1;
    return prefix[k] + (off - extents[k].offset);
  }
};

Merged merge_extents(const std::vector<MemberReq>& members) {
  Merged merged;
  std::size_t count = 0;
  for (const MemberReq& m : members) count += m.extents.size();
  std::vector<fs::Extent> all;
  all.reserve(count);
  for (const MemberReq& m : members) {
    all.insert(all.end(), m.extents.begin(), m.extents.end());
  }
  std::sort(all.begin(), all.end(),
            [](const fs::Extent& a, const fs::Extent& b) {
              return a.offset != b.offset ? a.offset < b.offset
                                          : a.length < b.length;
            });
  for (const fs::Extent& e : all) {
    if (e.length == 0) continue;
    if (!merged.extents.empty() && e.offset <= merged.extents.back().end()) {
      fs::Extent& last = merged.extents.back();
      last.length = std::max(last.end(), e.end()) - last.offset;
    } else {
      merged.extents.push_back(e);
    }
  }
  merged.prefix.reserve(merged.extents.size());
  for (const fs::Extent& e : merged.extents) {
    merged.prefix.push_back(merged.total);
    merged.total += e.length;
  }
  return merged;
}

/// Copy every member's packed stream into the union stream (later members
/// deterministically overwrite on overlap). Returns only the *leader's own*
/// staged bytes for the Intra time charge: shipped members already paid
/// their copy in the kTagData transfer — this models the shared-memory
/// window of the two-level design, where each member places its data
/// directly at its merged position, so shipping and staging are one copy,
/// not two. The leader stages its own request itself.
std::uint64_t stage_into(const std::vector<MemberReq>& members,
                         const Merged& merged, int leader_node_local,
                         std::byte* out) {
  std::uint64_t own_staged = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const MemberReq& m = members[i];
    std::uint64_t pos = 0;
    for (const fs::Extent& e : m.extents) {
      if (static_cast<int>(i) == leader_node_local) {
        own_staged += e.length;
      }
      if (out != nullptr && m.data != nullptr && e.length > 0) {
        std::memcpy(out + merged.stream_pos(e.offset), m.data + pos, e.length);
      }
      pos += e.length;
    }
  }
  return own_staged;
}

/// Copy one member's slices back out of the union stream (reads). Returns
/// bytes sliced; copies only when buffers are real.
std::uint64_t slice_from(const MemberReq& m, const Merged& merged,
                         const std::byte* in, std::byte* out) {
  std::uint64_t pos = 0;
  for (const fs::Extent& e : m.extents) {
    if (in != nullptr && out != nullptr && e.length > 0) {
      std::memcpy(out + pos, in + merged.stream_pos(e.offset), e.length);
    }
    pos += e.length;
  }
  return pos;
}

double memcpy_seconds(mpi::Rank& self, std::uint64_t bytes) {
  return static_cast<double>(bytes) /
         self.world().model().mem.memcpy_bandwidth;
}

/// Sole-leader fast path: when the whole communicator lives on one node,
/// the staged union request IS the group's file view — there is nobody to
/// exchange with, so the leader writes (or reads) it directly in
/// collective-buffer-sized batches instead of running a degenerate
/// self-exchange. This is the full payoff of intra-node aggregation for
/// single-node subgroups: collective I/O collapses into local I/O.
std::uint64_t run_sole_leader(mpi::Rank& self, mpiio::IoTarget& target,
                              const Merged& merged, std::byte* stream,
                              std::uint64_t cb_buffer_size, bool is_write) {
  std::uint64_t cycles = 0;
  std::size_t i = 0;
  std::uint64_t stream_off = 0;
  while (i < merged.extents.size()) {
    mpi::SpanGuard cycle_span(self, obs::SpanKind::Stage, "local-cycle",
                              /*group=*/-1,
                              static_cast<std::int64_t>(cycles));
    std::uint64_t batch = 0;
    std::size_t j = i;
    while (j < merged.extents.size() &&
           (batch == 0 ||
            batch + merged.extents[j].length <= cb_buffer_size)) {
      batch += merged.extents[j].length;
      ++j;
    }
    self.touch_bytes(static_cast<double>(batch));  // assembly cost
    const std::span<const fs::Extent> span(&merged.extents[i], j - i);
    std::byte* at = stream == nullptr ? nullptr : stream + stream_off;
    if (is_write) {
      target.write(self, span, at);
    } else {
      target.read(self, span, at);
    }
    stream_off += batch;
    i = j;
    ++cycles;
  }
  return cycles;
}

/// Leader side: collect every node member's request. Slot order is
/// node_comm local rank order (the leader's own request included), so the
/// merge is deterministic.
std::vector<MemberReq> gather_member_requests(
    mpi::Rank& self, const NodeComm& nodes,
    const mpiio::CollRequest& own_request, bool expect_data) {
  mpi::P2PEngine& p2p = self.world().p2p();
  const bool byte_true = self.world().byte_true();
  const auto n = static_cast<std::size_t>(nodes.node_comm.size());
  std::vector<MemberReq> members(n);
  for (std::size_t m = 0; m < n; ++m) {
    if (static_cast<int>(m) == nodes.leader_node_local) {
      members[m].extents = own_request.extents;
      members[m].data = own_request.data;
      continue;
    }
    WireHeader hdr;
    p2p.recv(self, nodes.node_comm, static_cast<int>(m), kTagHeader, &hdr,
             sizeof hdr, mpi::TimeCat::Intra);
    members[m].extents.resize(hdr.n_extents);
    p2p.recv(self, nodes.node_comm, static_cast<int>(m), kTagExtents,
             members[m].extents.data(), hdr.n_extents * sizeof(fs::Extent),
             mpi::TimeCat::Intra);
    members[m].total_bytes = hdr.total_bytes;
  }
  if (expect_data) {
    // The payloads arrive overlapped: each member copies into the node's
    // shared staging window from its own core, concurrently — the wall time
    // is the slowest member's copy, not the sum.
    std::vector<mpi::Request> pending;
    for (std::size_t m = 0; m < n; ++m) {
      if (static_cast<int>(m) == nodes.leader_node_local ||
          members[m].total_bytes == 0) {
        continue;
      }
      if (byte_true) {
        members[m].recv_data.resize(members[m].total_bytes);
      }
      pending.push_back(p2p.irecv(
          self, nodes.node_comm, static_cast<int>(m), kTagData,
          byte_true ? members[m].recv_data.data() : nullptr,
          members[m].total_bytes, mpi::TimeCat::Intra));
      members[m].data = members[m].recv_data.data();
    }
    p2p.waitall(self, pending, mpi::TimeCat::Intra);
  }
  return members;
}

/// Non-leader side: ship the request description (and payload when
/// `with_data`) to the node leader. Returns the bytes shipped.
std::uint64_t ship_to_leader(mpi::Rank& self, const NodeComm& nodes,
                             const mpiio::CollRequest& request,
                             bool with_data) {
  mpi::P2PEngine& p2p = self.world().p2p();
  const WireHeader hdr{request.extents.size(), request.total_bytes()};
  const std::uint64_t extent_bytes = hdr.n_extents * sizeof(fs::Extent);
  p2p.send(self, nodes.node_comm, nodes.leader_node_local, kTagHeader, &hdr,
           sizeof hdr, mpi::TimeCat::Intra);
  p2p.send(self, nodes.node_comm, nodes.leader_node_local, kTagExtents,
           request.extents.data(), extent_bytes, mpi::TimeCat::Intra);
  std::uint64_t shipped = extent_bytes;
  if (with_data && hdr.total_bytes > 0) {
    p2p.send(self, nodes.node_comm, nodes.leader_node_local, kTagData,
             request.data, hdr.total_bytes, mpi::TimeCat::Intra);
    shipped += hdr.total_bytes;
  }
  return shipped;
}

}  // namespace

TwoLevelOutcome two_level_write(mpi::Rank& self, const NodeComm& nodes,
                                mpiio::IoTarget& target,
                                const mpiio::CollRequest& request,
                                const mpiio::Ext2phOptions& leader_options) {
  TwoLevelOutcome outcome;
  if (!nodes.i_lead()) {
    mpi::SpanGuard ship_span(self, obs::SpanKind::Stage, "intra-ship");
    outcome.intra_bytes = ship_to_leader(self, nodes, request, true);
    return outcome;
  }
  if (nodes.node_comm.size() == 1) {
    // Lone member: nothing to merge, join the inter-node exchange as-is.
    const auto r = mpiio::ext2ph_write(self, nodes.leader_comm, target,
                                       request, leader_options);
    outcome.cycles = r.cycles;
    outcome.rmw_reads = r.rmw_reads;
    return outcome;
  }
  const bool byte_true = self.world().byte_true();
  std::vector<MemberReq> members;
  Merged merged;
  std::vector<std::byte> stream;
  {
    mpi::SpanGuard gather_span(self, obs::SpanKind::Stage, "intra-gather");
    members = gather_member_requests(self, nodes, request, true);
    merged = merge_extents(members);
    if (byte_true && merged.total > 0) {
      stream.assign(merged.total, std::byte{0});
    }
    const std::uint64_t own_staged =
        stage_into(members, merged, nodes.leader_node_local,
                   stream.empty() ? nullptr : stream.data());
    self.busy(mpi::TimeCat::Intra, memcpy_seconds(self, own_staged));
  }

  if (nodes.leader_comm.size() == 1) {
    outcome.cycles = run_sole_leader(self, target, merged,
                                     stream.empty() ? nullptr : stream.data(),
                                     leader_options.cb_buffer_size, true);
    return outcome;
  }
  const mpiio::CollRequest node_request{
      merged.extents, stream.empty() ? nullptr : stream.data()};
  const auto r = mpiio::ext2ph_write(self, nodes.leader_comm, target,
                                     node_request, leader_options);
  outcome.cycles = r.cycles;
  outcome.rmw_reads = r.rmw_reads;
  return outcome;
}

TwoLevelOutcome two_level_read(mpi::Rank& self, const NodeComm& nodes,
                               mpiio::IoTarget& target,
                               const mpiio::CollRequest& request,
                               const mpiio::Ext2phOptions& leader_options) {
  TwoLevelOutcome outcome;
  mpi::P2PEngine& p2p = self.world().p2p();
  if (!nodes.i_lead()) {
    mpi::SpanGuard ship_span(self, obs::SpanKind::Stage, "intra-ship");
    outcome.intra_bytes = ship_to_leader(self, nodes, request, false);
    const std::uint64_t total = request.total_bytes();
    if (total > 0) {
      p2p.recv(self, nodes.node_comm, nodes.leader_node_local, kTagReply,
               request.data, total, mpi::TimeCat::Intra);
      outcome.intra_bytes += total;
    }
    return outcome;
  }
  if (nodes.node_comm.size() == 1) {
    const auto r = mpiio::ext2ph_read(self, nodes.leader_comm, target,
                                      request, leader_options);
    outcome.cycles = r.cycles;
    outcome.rmw_reads = r.rmw_reads;
    return outcome;
  }
  const bool byte_true = self.world().byte_true();
  std::vector<MemberReq> members;
  Merged merged;
  std::vector<std::byte> stream;
  {
    mpi::SpanGuard gather_span(self, obs::SpanKind::Stage, "intra-gather");
    members = gather_member_requests(self, nodes, request, false);
    merged = merge_extents(members);
    if (byte_true && merged.total > 0) {
      stream.assign(merged.total, std::byte{0});
    }
  }
  if (nodes.leader_comm.size() == 1) {
    outcome.cycles = run_sole_leader(self, target, merged,
                                     stream.empty() ? nullptr : stream.data(),
                                     leader_options.cb_buffer_size, false);
  } else {
    const mpiio::CollRequest node_request{
        merged.extents, stream.empty() ? nullptr : stream.data()};
    const auto r = mpiio::ext2ph_read(self, nodes.leader_comm, target,
                                      node_request, leader_options);
    outcome.cycles = r.cycles;
    outcome.rmw_reads = r.rmw_reads;
  }

  // Scatter each member's slice of the node stream back, overlapped: like
  // the inbound staging, each member pulls its slice out of the shared
  // window from its own core, so the reply transfers carry the copy cost
  // and run concurrently. The leader only pays for its own local slice.
  mpi::SpanGuard scatter_span(self, obs::SpanKind::Stage, "intra-scatter");
  std::uint64_t own_sliced = 0;
  std::vector<std::vector<std::byte>> replies(members.size());
  std::vector<mpi::Request> pending;
  for (std::size_t m = 0; m < members.size(); ++m) {
    const std::uint64_t member_bytes = [&] {
      std::uint64_t t = 0;
      for (const fs::Extent& e : members[m].extents) t += e.length;
      return t;
    }();
    if (static_cast<int>(m) == nodes.leader_node_local) {
      own_sliced += slice_from(members[m], merged,
                               stream.empty() ? nullptr : stream.data(),
                               request.data);
      continue;
    }
    if (member_bytes == 0) continue;
    auto& reply = replies[m];
    if (byte_true) {
      reply.resize(member_bytes);
      slice_from(members[m], merged, stream.data(), reply.data());
    }
    pending.push_back(p2p.isend(self, nodes.node_comm, static_cast<int>(m),
                                kTagReply,
                                reply.empty() ? nullptr : reply.data(),
                                member_bytes, mpi::TimeCat::Intra));
  }
  p2p.waitall(self, pending, mpi::TimeCat::Intra);
  self.busy(mpi::TimeCat::Intra, memcpy_seconds(self, own_sliced));
  return outcome;
}

}  // namespace parcoll::node
