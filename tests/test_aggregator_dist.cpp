// Aggregator distribution: the paper's Fig. 5 examples verified exactly,
// plus the three requirements of §4.2.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/aggregator_dist.hpp"

namespace parcoll::core {
namespace {

mpi::Comm world_comm(int n) {
  std::vector<int> members(static_cast<std::size_t>(n));
  std::iota(members.begin(), members.end(), 0);
  return mpi::Comm(1, std::move(members));
}

TEST(AggregatorDist, PaperFig5BlockMapping) {
  // Block: N0(P0,P1) N1(P2,P3) N2(P4,P5) N3(P6,P7); aggregators N0..N3;
  // SubGroup1 = P0..P3, SubGroup2 = P4..P7.
  const machine::Topology topo(8, 2, machine::Mapping::Block);
  const auto comm = world_comm(8);
  const std::vector<int> nodes{0, 1, 2, 3};
  const std::vector<int> groups{0, 0, 0, 0, 1, 1, 1, 1};
  const auto result = distribute_aggregators(topo, comm, nodes, groups, 2);
  // Paper: SubGroup1 -> N0(P0), N1(P2); SubGroup2 -> N2(P4), N3(P6).
  EXPECT_EQ(result[0], (std::vector<int>{0, 2}));
  EXPECT_EQ(result[1], (std::vector<int>{4, 6}));
}

TEST(AggregatorDist, PaperFig5CyclicMapping) {
  // Cyclic: N0(P0,P4) N1(P1,P5) N2(P2,P6) N3(P3,P7); aggregators N0,N2,N3.
  const machine::Topology topo(8, 2, machine::Mapping::Cyclic);
  const auto comm = world_comm(8);
  const std::vector<int> nodes{0, 2, 3};
  const std::vector<int> groups{0, 0, 0, 0, 1, 1, 1, 1};
  const auto result = distribute_aggregators(topo, comm, nodes, groups, 2);
  // Paper: SubGroup1 -> N0(P0), N3(P3); SubGroup2 -> N2(P6).
  EXPECT_EQ(result[0], (std::vector<int>{0, 3}));
  EXPECT_EQ(result[1], (std::vector<int>{6}));
}

TEST(AggregatorDist, RequirementEverySubgroupGetsAtLeastOne) {
  // All aggregator nodes host only group-0 processes; group 1 must still
  // get an aggregator via promotion.
  const machine::Topology topo(8, 2, machine::Mapping::Block);
  const auto comm = world_comm(8);
  const std::vector<int> nodes{0, 1};  // nodes of ranks 0..3 only
  const std::vector<int> groups{0, 0, 0, 0, 1, 1, 1, 1};
  const auto result = distribute_aggregators(topo, comm, nodes, groups, 2);
  ASSERT_FALSE(result[1].empty());
  EXPECT_EQ(result[1], (std::vector<int>{4}));  // lowest member promoted
}

TEST(AggregatorDist, RequirementNoNodeServesTwoSubgroups) {
  // Cyclic mapping puts both groups on every node; each node must still be
  // assigned to exactly one subgroup.
  const machine::Topology topo(16, 2, machine::Mapping::Cyclic);
  const auto comm = world_comm(16);
  std::vector<int> nodes(8);
  std::iota(nodes.begin(), nodes.end(), 0);
  std::vector<int> groups(16);
  for (int r = 0; r < 16; ++r) groups[static_cast<std::size_t>(r)] = r / 4;
  const auto result = distribute_aggregators(topo, comm, nodes, groups, 4);
  std::set<int> used_nodes;
  for (const auto& group_aggs : result) {
    for (int local : group_aggs) {
      const int node = topo.node_of(comm.world_rank(local));
      EXPECT_TRUE(used_nodes.insert(node).second)
          << "node " << node << " serves two subgroups";
    }
  }
}

TEST(AggregatorDist, RequirementEvenDistribution) {
  const machine::Topology topo(32, 2, machine::Mapping::Block);
  const auto comm = world_comm(32);
  std::vector<int> nodes(16);
  std::iota(nodes.begin(), nodes.end(), 0);
  std::vector<int> groups(32);
  for (int r = 0; r < 32; ++r) groups[static_cast<std::size_t>(r)] = r / 8;
  const auto result = distribute_aggregators(topo, comm, nodes, groups, 4);
  for (const auto& group_aggs : result) {
    EXPECT_EQ(group_aggs.size(), 4u);  // 16 nodes over 4 groups
  }
}

TEST(AggregatorDist, RoundRobinLeavesExtraToEarlierGroups) {
  // 3 nodes, 2 groups: first round gives one each, the remainder goes to
  // the earlier group (paper: "the third one is then left to Subgroup 1").
  const machine::Topology topo(6, 2, machine::Mapping::Block);
  const auto comm = world_comm(6);
  const std::vector<int> nodes{0, 1, 2};
  const std::vector<int> groups{0, 0, 0, 1, 1, 1};
  // Block: N0(P0,P1) N1(P2,P3) N2(P4,P5); group0 = {0,1,2}, group1 = {3,4,5}.
  const auto result = distribute_aggregators(topo, comm, nodes, groups, 2);
  // g0: N0(P0); g1: N1(P3); round 2: g0 cannot take N2 (hosts only P4,P5 of
  // g1)... so N2 goes to g1 in a later round.
  EXPECT_EQ(result[0], (std::vector<int>{0}));
  EXPECT_EQ(result[1], (std::vector<int>{3, 4}));
}

TEST(AggregatorDist, AggregatorIsLowestRankedMemberOnItsNode) {
  const machine::Topology topo(8, 4, machine::Mapping::Block);  // 2 nodes
  const auto comm = world_comm(8);
  const std::vector<int> nodes{0, 1};
  const std::vector<int> groups{0, 1, 0, 1, 0, 1, 0, 1};
  const auto result = distribute_aggregators(topo, comm, nodes, groups, 2);
  // Node 0 hosts {0,1,2,3}: group 0's lowest there is 0.
  EXPECT_EQ(result[0], (std::vector<int>{0}));
  // Node 1 hosts {4,5,6,7}: group 1's lowest there is 5.
  EXPECT_EQ(result[1], (std::vector<int>{5}));
}

TEST(AggregatorDist, SingleGroupTakesAllNodes) {
  const machine::Topology topo(8, 2, machine::Mapping::Block);
  const auto comm = world_comm(8);
  const std::vector<int> nodes{0, 1, 2, 3};
  const std::vector<int> groups(8, 0);
  const auto result = distribute_aggregators(topo, comm, nodes, groups, 1);
  EXPECT_EQ(result[0], (std::vector<int>{0, 2, 4, 6}));
}

TEST(AggregatorDist, GroupMapSizeMismatchThrows) {
  const machine::Topology topo(8, 2, machine::Mapping::Block);
  const auto comm = world_comm(8);
  EXPECT_THROW(
      distribute_aggregators(topo, comm, {0}, std::vector<int>(4, 0), 1),
      std::invalid_argument);
}

TEST(AggregatorNodeList, DefaultAllNodesInOrder) {
  const machine::Topology topo(8, 2, machine::Mapping::Block);
  const auto comm = world_comm(8);
  EXPECT_EQ(aggregator_node_list(topo, comm, {}, 0),
            (std::vector<int>{0, 1, 2, 3}));
}

TEST(AggregatorNodeList, CbNodesTruncatesAndListOverrides) {
  const machine::Topology topo(8, 2, machine::Mapping::Block);
  const auto comm = world_comm(8);
  EXPECT_EQ(aggregator_node_list(topo, comm, {}, 2), (std::vector<int>{0, 1}));
  EXPECT_EQ(aggregator_node_list(topo, comm, {3, 1, 2}, 2),
            (std::vector<int>{3, 1}));
}

}  // namespace
}  // namespace parcoll::core
