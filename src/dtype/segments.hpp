// Segment algebra for flattened datatypes.
//
// A flattened datatype is a list of (displacement, length) segments in
// *type-map order* — the order in which the type's bytes appear in a packed
// stream. For memory types the displacements may be in any order; a type
// used as an MPI file view must have monotonically non-decreasing
// displacements, which callers check with is_monotone().
#pragma once

#include <cstdint>
#include <vector>

namespace parcoll::dtype {

struct Segment {
  std::int64_t disp = 0;      // byte displacement from the type's origin
  std::uint64_t length = 0;   // bytes

  [[nodiscard]] std::int64_t end() const {
    return disp + static_cast<std::int64_t>(length);
  }
  bool operator==(const Segment&) const = default;
};

/// Sum of segment lengths.
[[nodiscard]] std::uint64_t total_length(const std::vector<Segment>& segs);

/// Merge segments that are adjacent both in stream order and displacement
/// (in place, preserving type-map order). Drops zero-length segments.
void coalesce(std::vector<Segment>& segs);

/// True if displacements never decrease along the list (requirement for
/// file views).
[[nodiscard]] bool is_monotone(const std::vector<Segment>& segs);

/// Intersect `segs` (assumed monotone) with the displacement window
/// [lo, hi); returns the clipped segments in order.
[[nodiscard]] std::vector<Segment> clip(const std::vector<Segment>& segs,
                                        std::int64_t lo, std::int64_t hi);

}  // namespace parcoll::dtype
