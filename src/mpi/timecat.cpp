#include "mpi/timecat.hpp"

#include "mpi/trace.hpp"

namespace parcoll::mpi {

void TimeAccount::add(TimeCat cat, double dt) {
  breakdown_.seconds[static_cast<std::size_t>(cat)] += dt;
  if (tracer_ != nullptr && now_ != nullptr) {
    tracer_->record(stream_, rank_, cat, *now_ - dt, *now_);
  }
}

const char* to_string(TimeCat cat) {
  switch (cat) {
    case TimeCat::Compute:
      return "compute";
    case TimeCat::P2P:
      return "p2p";
    case TimeCat::Sync:
      return "sync";
    case TimeCat::IO:
      return "io";
    case TimeCat::Faulted:
      return "faulted";
    case TimeCat::Intra:
      return "intra";
    case TimeCat::Drain:
      return "drain";
    case TimeCat::DrainWait:
      return "drain_wait";
    case TimeCat::Integrity:
      return "integrity";
  }
  return "?";
}

}  // namespace parcoll::mpi
