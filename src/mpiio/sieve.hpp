// Data-sieving independent I/O (ROMIO's ADIOI_GEN_WriteStrided /
// ADIOI_GEN_ReadStrided).
//
// Non-contiguous independent requests are serviced through a sieve buffer:
// the covering file window is read whole, the request's pieces are merged
// in, and the window is written back. Writes bracket each window with an
// advisory byte-range lock so the read-modify-write stays atomic against
// other writers. This is what an un-aggregated MPI-IO (or HDF5) strided
// write actually does — and for interleaved shared-file patterns the
// window locking plus doubled volume is exactly what makes "without
// collective I/O" collapse (paper Fig. 11, "Cray w/o Coll").
#pragma once

#include <cstdint>

#include "dtype/datatype.hpp"
#include "mpiio/file.hpp"

namespace parcoll::mpiio {

inline constexpr std::uint64_t kDefaultSieveBuffer = 512 * 1024;

/// Strided independent write through a sieve buffer (lock, read window,
/// merge, write back). Contiguous requests bypass the sieve.
void sieve_write_at(FileHandle& file, std::uint64_t offset, const void* buffer,
                    std::uint64_t count, const dtype::Datatype& memtype,
                    std::uint64_t sieve_buffer_size = kDefaultSieveBuffer);

/// Strided independent read through a sieve buffer (read windows, extract
/// the requested pieces). No locking needed.
void sieve_read_at(FileHandle& file, std::uint64_t offset, void* buffer,
                   std::uint64_t count, const dtype::Datatype& memtype,
                   std::uint64_t sieve_buffer_size = kDefaultSieveBuffer);

/// Service an already-prepared non-contiguous request by sieving (used by
/// the collective layer when collective buffering is disabled by hint).
/// Handle-independent so helper fibers (split collectives) can call it.
void sieve_rmw(mpi::Rank& self, int fs_id, PreparedRequest& request,
               bool is_write,
               std::uint64_t sieve_buffer_size = kDefaultSieveBuffer);

}  // namespace parcoll::mpiio
