#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace parcoll::obs {

void HistogramData::observe(double value) {
  if (counts.empty()) {
    counts.resize(bounds.size() + 1, 0);
  }
  std::size_t bucket = bounds.size();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (value <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++counts[bucket];
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
}

std::uint64_t& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

std::uint64_t& MetricsRegistry::counter(const std::string& name,
                                        std::size_t index) {
  return counters_[indexed(name, index)];
}

double& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

double& MetricsRegistry::gauge(const std::string& name, std::size_t index) {
  return gauges_[indexed(name, index)];
}

void MetricsRegistry::gauge_max(const std::string& name, double value) {
  auto [it, inserted] = gauges_.try_emplace(name, value);
  if (!inserted) {
    it->second = std::max(it->second, value);
  }
}

void MetricsRegistry::gauge_max(const std::string& name, std::size_t index,
                                double value) {
  gauge_max(indexed(name, index), value);
}

HistogramData& MetricsRegistry::histogram(const std::string& name,
                                          const std::vector<double>& bounds) {
  auto [it, inserted] = histograms_.try_emplace(name);
  if (inserted) {
    it->second.bounds = bounds;
    it->second.counts.resize(bounds.size() + 1, 0);
  } else if (it->second.bounds != bounds) {
    throw std::invalid_argument("MetricsRegistry::histogram(\"" + name +
                                "\"): bucket bounds differ from first use");
  }
  return it->second;
}

QuantileHistogram& MetricsRegistry::quantile(const std::string& name) {
  return quantiles_[name];
}

std::string MetricsRegistry::indexed(const std::string& name,
                                     std::size_t index) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), "[%04zu]", index);
  return name + suffix;
}

std::string MetricsRegistry::job_key(const std::string& name,
                                     std::string_view job) {
  std::string key = name;
  key += "{job=";
  key += job;
  key += '}';
  return key;
}

const std::vector<double>& latency_bounds_s() {
  // Decade-ish buckets from 1 µs to 100 s: wide enough for sync waits on
  // the fig-2 workloads and fault-injected runs alike.
  static const std::vector<double> kBounds = {
      1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0};
  return kBounds;
}

}  // namespace parcoll::obs
