// Figure 2 — "Collective I/O Time Breakdown".
//
// The same MPI-Tile-IO sweep as Figure 1, decomposed into the paper's
// processing components: point-to-point data exchange, file I/O, and
// process synchronization (plus local compute). Synchronization must grow
// much faster than the other components as the process count rises.
#include "bench/common.hpp"
#include "workloads/tileio.hpp"

int main(int argc, char** argv) {
  using namespace parcoll;
  using namespace parcoll::bench;
  BenchReport report("fig02_time_breakdown", argc, argv);

  header("Figure 2",
         "MPI-Tile-IO time breakdown (seconds, summed over ranks)");
  std::printf("  %6s %10s %10s %10s %10s %10s %6s\n", "nprocs", "compute",
              "p2p", "sync", "io", "total", "sync%");
  double prev_sync = 0;
  double prev_io = 0;
  for (int nprocs : {32, 64, 128, 256, 512}) {
    const auto config = workloads::TileIOConfig::paper(nprocs);
    const auto result =
        workloads::run_tileio(config, nprocs, baseline_spec(), /*write=*/true);
    breakdown_row(nprocs, result);
    report.add("cray", nprocs, result);
    prev_sync = result.sum[mpi::TimeCat::Sync];
    prev_io = result.sum[mpi::TimeCat::IO];
  }
  (void)prev_sync;
  (void)prev_io;
  footnote("paper: sync grows much faster than p2p and file I/O with nprocs");
  return 0;
}
