// File Area (FA) partitioning — paper §4.1, Fig. 4.
//
// ParColl divides the process group into subgroups and the file into one
// File Area per subgroup. FAs must be (close to) evenly loaded and must not
// overlap, or uncoordinated subgroups could not maintain consistency.
//
// Three access patterns drive the algorithm:
//  (a) serial     — per-rank ranges are disjoint: any boundary between
//                   ranks (sorted by start offset) is a valid split.
//  (b) tiled      — ranges interleave locally but "clean" boundaries exist
//                   where no rank's range crosses (e.g. between tile rows).
//  (c) scattered  — every rank's range spans (nearly) the whole file; no
//                   clean boundary exists. ParColl switches to an
//                   intermediate file view, in which each rank's segments
//                   are virtually concatenated rank-major — pattern (a) by
//                   construction.
//
// partition_file_areas() finds the clean split points, uses them if enough
// exist for the requested group count, and otherwise reports the
// intermediate-view switch (or falls back to fewer groups if the switch is
// disabled).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace parcoll::core {

/// One rank's access summary: the byte range its request touches and the
/// amount of data in it. Ranks with no data have bytes == 0.
struct RankAccess {
  std::uint64_t st = 0;
  std::uint64_t end = 0;  // exclusive
  std::uint64_t bytes = 0;
};

enum class PartitionMode {
  SingleGroup,   // no partitioning possible/requested: plain ext2ph
  Direct,        // FAs carved from the physical file (patterns a/b)
  Intermediate,  // FAs carved from the intermediate view (pattern c)
};

struct FileAreaPlan {
  PartitionMode mode = PartitionMode::SingleGroup;
  int num_groups = 1;
  /// Group id per comm-local rank.
  std::vector<int> group_of_rank;
  /// [lo, hi) per group — physical offsets in Direct mode, intermediate
  /// offsets in Intermediate mode. Non-overlapping and ordered.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> areas;
  /// Intermediate-view start offset per comm-local rank (valid in
  /// Intermediate mode): the rank-major prefix sum of bytes.
  std::vector<std::uint64_t> inter_start;
};

/// Requesting this many groups asks the planner to pick the count itself:
/// as many clean-split (direct) groups as the least group size permits, or
/// about sqrt(P) groups when the pattern forces the intermediate view.
/// This implements the paper's future-work item of "adaptively choosing
/// the best group size"; bench abl_adaptive evaluates the heuristic.
inline constexpr int kAutoGroups = -1;

/// Compute the FA partition for `ranks` (indexed by comm-local rank).
/// `requested_groups` is the ParColl-N hint (or kAutoGroups); the result
/// uses at most that many groups, at least min_group_size ranks each
/// (best effort).
FileAreaPlan partition_file_areas(const std::vector<RankAccess>& ranks,
                                  int requested_groups, int min_group_size,
                                  bool allow_view_switch);

/// The clean split points of `order` (rank indices sorted by start offset):
/// positions p such that splitting the sorted list after the first p ranks
/// yields non-overlapping halves. Exposed for testing.
std::vector<std::size_t> clean_split_points(const std::vector<RankAccess>& ranks,
                                            const std::vector<int>& order);

}  // namespace parcoll::core
