# Empty dependencies file for parcoll_sweep.
# This may be replaced when dependencies are built.
