// Per-rank time accounting, mirroring the paper's run-time profiler.
//
// The paper dissects collective I/O into point-to-point communication,
// file I/O, and process synchronization (Fig. 2), reporting a summary when
// a file is closed. Every blocking operation in the simulated MPI/MPI-IO
// stack charges its wait time to one of these categories.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace parcoll::mpi {

enum class TimeCat : std::size_t {
  Compute = 0,  // CPU work: packing, flattening, request math
  P2P = 1,      // blocked in send/recv/wait (data exchange phases)
  Sync = 2,     // blocked in collective operations (the collective wall)
  IO = 3,       // blocked in file-system reads/writes
  Faulted = 4,  // degraded mode: RPC timeouts, retry backoff, rank stalls
  Intra = 5,    // two-level collective I/O: intra-node request aggregation
  Drain = 6,    // burst buffer: hidden write-behind of staged segments
  DrainWait = 7,  // burst buffer: exposed waits (flush, spill, read-through)
  Integrity = 8,  // checksum pipeline: block CRCs, verify passes, scrubbing
};
inline constexpr std::size_t kNumTimeCats = 9;

struct TimeBreakdown {
  std::array<double, kNumTimeCats> seconds{};

  [[nodiscard]] double operator[](TimeCat cat) const {
    return seconds[static_cast<std::size_t>(cat)];
  }
  [[nodiscard]] double total() const {
    double sum = 0;
    for (double s : seconds) sum += s;
    return sum;
  }
  TimeBreakdown& operator+=(const TimeBreakdown& other) {
    for (std::size_t i = 0; i < kNumTimeCats; ++i) {
      seconds[i] += other.seconds[i];
    }
    return *this;
  }
};

class Tracer;

class TimeAccount {
 public:
  /// Route every subsequent charge into `tracer` as an interval ending at
  /// the current value of *now (the engine clock). `stream` identifies the
  /// recording fiber (defaults to the rank id for single-fiber ranks), so
  /// helper fibers sharing a rank id keep their own span nesting.
  void attach_tracer(Tracer* tracer, const double* now, int rank,
                     std::uint64_t stream) {
    tracer_ = tracer;
    now_ = now;
    rank_ = rank;
    stream_ = stream;
  }
  void attach_tracer(Tracer* tracer, const double* now, int rank) {
    attach_tracer(tracer, now, rank, static_cast<std::uint64_t>(rank));
  }

  void add(TimeCat cat, double dt);

  void reset() { breakdown_ = TimeBreakdown{}; }
  [[nodiscard]] const TimeBreakdown& breakdown() const { return breakdown_; }

 private:
  TimeBreakdown breakdown_;
  Tracer* tracer_ = nullptr;
  const double* now_ = nullptr;
  int rank_ = 0;
  std::uint64_t stream_ = 0;
};

[[nodiscard]] const char* to_string(TimeCat cat);

}  // namespace parcoll::mpi
