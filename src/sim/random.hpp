// Deterministic, stateless pseudo-randomness for the simulator.
//
// Every source of "noise" in the simulation (OST service jitter, etc.)
// is a pure hash of (seed, stream identifiers, sequence number), so a run
// is reproducible bit-for-bit regardless of event interleaving and no
// mutable RNG state has to be threaded through the model.
#pragma once

#include <cstdint>

namespace parcoll::sim {

/// splitmix64 finalizer: a strong 64-bit mixing function.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x);

/// Combine hash values (boost::hash_combine style, 64-bit).
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

/// Uniform double in [0, 1) derived from a hash value.
[[nodiscard]] double uniform01(std::uint64_t h);

/// Convenience: uniform double in [0,1) from up to three stream ids.
[[nodiscard]] double jitter01(std::uint64_t seed, std::uint64_t stream,
                              std::uint64_t seq);

}  // namespace parcoll::sim
