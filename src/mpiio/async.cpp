#include "mpiio/async.hpp"

#include <stdexcept>

#include "mpiio/ext2ph.hpp"

namespace parcoll::mpiio {

namespace detail {

struct AsyncIoState {
  PreparedRequest prep;
  void* user_buffer = nullptr;
  std::uint64_t count = 0;
  dtype::Datatype memtype;
  bool is_write = true;
  bool done = false;
  mpi::TimeBreakdown helper_time;
  std::vector<sim::ProcId> waiters;
};

}  // namespace detail

bool IoRequest::done() const { return state_ && state_->done; }

namespace {

IoRequest start(FileHandle& file, std::uint64_t offset, const void* wbuffer,
                void* rbuffer, std::uint64_t count,
                const dtype::Datatype& memtype, bool is_write) {
  auto& self = file.self();
  auto& world = self.world();

  auto state = std::make_shared<detail::AsyncIoState>();
  state->is_write = is_write;
  state->user_buffer = rbuffer;
  state->count = count;
  state->memtype = memtype;
  state->prep = is_write
                    ? file.prepare_write(offset, wbuffer, count, memtype)
                    : file.prepare_read(offset, rbuffer, count, memtype);

  const int rank_id = self.rank();
  const int fs_id = file.fs_id();
  world.engine().spawn([state, &world, rank_id, fs_id] {
    mpi::Rank helper(world, rank_id);
    DirectTarget target(world.fs(), fs_id);
    if (state->is_write) {
      target.write(helper, state->prep.extents, state->prep.data());
    } else {
      target.read(helper, state->prep.extents,
                  state->prep.packed.empty() ? nullptr
                                             : state->prep.packed.data());
    }
    state->helper_time = helper.times().breakdown();
    state->done = true;
    for (sim::ProcId pid : state->waiters) {
      world.engine().wake(pid);
    }
    state->waiters.clear();
  });
  return IoRequest(std::move(state));
}

}  // namespace

IoRequest iwrite_at(FileHandle& file, std::uint64_t offset, const void* buffer,
                    std::uint64_t count, const dtype::Datatype& memtype) {
  file.require_writable();
  return start(file, offset, buffer, nullptr, count, memtype, true);
}

IoRequest iread_at(FileHandle& file, std::uint64_t offset, void* buffer,
                   std::uint64_t count, const dtype::Datatype& memtype) {
  file.require_readable();
  return start(file, offset, nullptr, buffer, count, memtype, false);
}

void io_wait(FileHandle& file, IoRequest& request) {
  if (!request.valid()) {
    throw std::logic_error("io_wait: invalid request");
  }
  auto& state = *request.state_;
  auto& self = file.self();
  if (!state.done) {
    const double blocked_at = self.now();
    state.waiters.push_back(self.pid());
    self.engine().suspend("async I/O wait");
    self.times().add(mpi::TimeCat::IO, self.now() - blocked_at);
  }
  if (!state.is_write) {
    file.finish_read(state.prep, state.user_buffer, state.count,
                     state.memtype);
  }
  FileStats delta;
  delta.time = state.helper_time;
  if (state.is_write) {
    delta.bytes_written = state.prep.bytes;
    delta.independent_writes = 1;
  } else {
    delta.bytes_read = state.prep.bytes;
    delta.independent_reads = 1;
  }
  file.add_stats(delta);
  request.state_.reset();
}

}  // namespace parcoll::mpiio
