// Object Storage Target server model.
//
// Three effects shape OST service time, each with a real-Lustre analogue:
//
// 1. FIFO service: (request_overhead + bytes / ost_bandwidth) per RPC; the
//    OST reserves busy time, clients sleep until completion.
//
// 2. DLM extent locks with grant extension. Lustre grants a writer the
//    largest free extent around its request (often to infinity), so a
//    *different* client writing nearby must revoke that grant — and
//    revocation forces the holder to flush dirty pages, costing
//    lock_switch_overhead. Writers that stream disjoint ranges settle into
//    stable grants and stop paying; fine-grained interleaved writers from
//    many clients pay on almost every RPC. This is what separates
//    aggregated collective I/O from uncoordinated shared-file writes.
//
// 3. Heavy-tailed, time-correlated service slowdowns. Real OSTs under load
//    have stretches (congestion, RAID activity) where service is several
//    times slower. We model per-(OST, epoch) slowdown factors drawn from a
//    deterministic heavy-tailed hash. Because the two-phase protocol
//    synchronizes all ranks every cycle, the *slowest* OST of each instant
//    stalls everyone — the straggler component of the collective wall.
//    Partitioned subgroups drift apart in time and average over the slow
//    epochs instead of aligning with the worst one.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>

#include "fault/fault.hpp"
#include "machine/machine_model.hpp"

namespace parcoll::fs {

/// Result of one RPC service attempt. `ok` is false when a fault swallowed
/// the request (OST outage or random drop): the OST never saw it, `done`
/// echoes the arrival time, and the client's timeout machinery takes over.
struct ServeOutcome {
  double done = 0.0;
  bool ok = true;
};

class OstModel {
 public:
  OstModel(int id, const machine::StorageParams& params)
      : id_(id), params_(params) {}

  /// Reserve service of one RPC carrying `bytes` of payload whose pieces
  /// span the object range [lock_lo, lock_hi) of `file_id` (Lustre BRW
  /// RPCs carry discontiguous pages, so the locked span can exceed the
  /// payload), from `client`, arriving at `ready`. Returns the completion
  /// time and whether the request was accepted; `force` serves even under
  /// an active fault (the last-resort path that guarantees progress).
  ServeOutcome serve(double ready, int file_id, int client,
                     std::uint64_t lock_lo, std::uint64_t lock_hi,
                     std::uint64_t bytes, bool is_write,
                     std::uint64_t fragments = 1, bool force = false);

  /// Attach a fault plan (both pointers may be null to detach).
  void set_fault(const fault::FaultPlan* plan, fault::FaultState* state) {
    fault_plan_ = plan;
    fault_state_ = state;
  }

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] std::uint64_t rpcs_served() const { return request_seq_; }
  [[nodiscard]] std::uint64_t lock_switches() const { return lock_switches_; }
  [[nodiscard]] double busy_until() const { return busy_until_; }
  /// Total seconds of service time reserved so far (cumulative busy time).
  [[nodiscard]] double service_seconds() const { return service_seconds_; }
  [[nodiscard]] std::uint64_t bytes_served() const { return bytes_served_; }
  /// Payload bytes of accepted RPCs that have not completed by `now`.
  /// Prunes completed entries, so calls with non-decreasing `now` stay
  /// amortized O(1).
  [[nodiscard]] std::uint64_t inflight_bytes(double now);

  /// The service-time multiplier in effect at virtual time `at` (>= 1).
  [[nodiscard]] double slowdown(double at) const;

 private:
  struct Grant {
    std::uint64_t end = 0;
    int client = -1;
    std::uint64_t dirty = 0;  // bytes written under this grant (capped)
  };
  /// Non-overlapping granted ranges per file: start -> (end, client).
  using GrantMap = std::map<std::uint64_t, Grant>;

  /// Revokes conflicting foreign grants and installs an extended grant for
  /// `client`, accumulating `bytes` as dirty under it. Returns the total
  /// revocation cost in seconds.
  double acquire_write_lock(GrantMap& grants, int client, std::uint64_t offset,
                            std::uint64_t end, std::uint64_t bytes);

  int id_;
  machine::StorageParams params_;
  double busy_until_ = 0.0;
  std::uint64_t request_seq_ = 0;
  std::uint64_t lock_switches_ = 0;
  double service_seconds_ = 0.0;
  std::uint64_t bytes_served_ = 0;
  /// (completion time, payload bytes) of accepted RPCs, completion order.
  std::deque<std::pair<double, std::uint64_t>> inflight_;
  std::uint64_t inflight_sum_ = 0;
  std::unordered_map<int, GrantMap> grants_by_file_;
  const fault::FaultPlan* fault_plan_ = nullptr;
  fault::FaultState* fault_state_ = nullptr;
  std::uint64_t fault_draws_ = 0;  // monotone: retries get fresh randomness
};

}  // namespace parcoll::fs
