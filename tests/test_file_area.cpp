// File Area partitioning: the three paper patterns (serial, tiled,
// scattered), clean-split detection, balance, and the view-switch decision.
#include <gtest/gtest.h>

#include <numeric>

#include "core/file_area.hpp"

namespace parcoll::core {
namespace {

std::vector<RankAccess> serial_ranks(int n, std::uint64_t bytes) {
  std::vector<RankAccess> ranks;
  for (int r = 0; r < n; ++r) {
    ranks.push_back(RankAccess{static_cast<std::uint64_t>(r) * bytes,
                               static_cast<std::uint64_t>(r + 1) * bytes,
                               bytes});
  }
  return ranks;
}

/// Tiled pattern: groups of `per_row` ranks share an interleaved row range.
std::vector<RankAccess> tiled_ranks(int rows, int per_row,
                                    std::uint64_t row_bytes) {
  std::vector<RankAccess> ranks;
  for (int row = 0; row < rows; ++row) {
    const std::uint64_t lo = static_cast<std::uint64_t>(row) * row_bytes;
    for (int i = 0; i < per_row; ++i) {
      // Every tile in a row spans nearly the whole row (interleaved).
      ranks.push_back(RankAccess{lo + static_cast<std::uint64_t>(i) * 64,
                                 lo + row_bytes -
                                     static_cast<std::uint64_t>(per_row - 1 - i) * 64,
                                 row_bytes / per_row});
    }
  }
  return ranks;
}

/// Scattered pattern: every rank spans the whole file.
std::vector<RankAccess> scattered_ranks(int n, std::uint64_t file_bytes) {
  std::vector<RankAccess> ranks;
  for (int r = 0; r < n; ++r) {
    ranks.push_back(RankAccess{static_cast<std::uint64_t>(r) * 8,
                               file_bytes - (static_cast<std::uint64_t>(n - r)) * 8,
                               file_bytes / n});
  }
  return ranks;
}

void expect_non_overlapping(const FileAreaPlan& plan) {
  for (std::size_t g = 1; g < plan.areas.size(); ++g) {
    EXPECT_LE(plan.areas[g - 1].second, plan.areas[g].first)
        << "areas " << g - 1 << " and " << g << " overlap";
  }
}

void expect_groups_contiguous_and_sized(const FileAreaPlan& plan,
                                        int min_size) {
  std::vector<int> counts(static_cast<std::size_t>(plan.num_groups), 0);
  for (int g : plan.group_of_rank) {
    ASSERT_GE(g, 0);
    ASSERT_LT(g, plan.num_groups);
    ++counts[static_cast<std::size_t>(g)];
  }
  for (int count : counts) {
    EXPECT_GE(count, min_size);
  }
}

TEST(FileArea, SerialPatternSplitsAnywhere) {
  const auto ranks = serial_ranks(16, 1000);
  const auto plan = partition_file_areas(ranks, 4, 2, true);
  EXPECT_EQ(plan.mode, PartitionMode::Direct);
  EXPECT_EQ(plan.num_groups, 4);
  expect_non_overlapping(plan);
  expect_groups_contiguous_and_sized(plan, 2);
  // Balanced: each group covers ~4 ranks.
  EXPECT_EQ(plan.areas[0], (std::pair<std::uint64_t, std::uint64_t>{0, 4000}));
  EXPECT_EQ(plan.areas[3].second, 16000u);
}

TEST(FileArea, SerialSplitPointsAreAllBoundaries) {
  const auto ranks = serial_ranks(8, 100);
  std::vector<int> order(8);
  std::iota(order.begin(), order.end(), 0);
  const auto splits = clean_split_points(ranks, order);
  EXPECT_EQ(splits.size(), 7u);
}

TEST(FileArea, TiledPatternSplitsBetweenRows) {
  // 8 rows of 4 interleaved tiles: splits only at row boundaries.
  const auto ranks = tiled_ranks(8, 4, 4096);
  std::vector<int> order(32);
  std::iota(order.begin(), order.end(), 0);
  const auto splits = clean_split_points(ranks, order);
  EXPECT_EQ(splits.size(), 7u);  // between the 8 rows
  for (std::size_t i = 0; i < splits.size(); ++i) {
    EXPECT_EQ(splits[i] % 4, 0u);  // only at multiples of per_row
  }
  const auto plan = partition_file_areas(ranks, 8, 4, true);
  EXPECT_EQ(plan.mode, PartitionMode::Direct);
  EXPECT_EQ(plan.num_groups, 8);
  expect_non_overlapping(plan);
  // Every row forms one group.
  for (int r = 0; r < 32; ++r) {
    EXPECT_EQ(plan.group_of_rank[static_cast<std::size_t>(r)], r / 4);
  }
}

TEST(FileArea, TiledRequestingTooManyGroupsSwitchesToIntermediate) {
  const auto ranks = tiled_ranks(4, 4, 4096);  // only 3 clean splits
  const auto plan = partition_file_areas(ranks, 8, 2, true);
  EXPECT_EQ(plan.mode, PartitionMode::Intermediate);
  EXPECT_EQ(plan.num_groups, 8);
  expect_non_overlapping(plan);
  ASSERT_EQ(plan.inter_start.size(), 16u);
  // Intermediate starts are the rank-major byte prefix sums.
  std::uint64_t expected = 0;
  for (std::size_t r = 0; r < 16; ++r) {
    EXPECT_EQ(plan.inter_start[r], expected);
    expected += ranks[r].bytes;
  }
}

TEST(FileArea, ScatteredPatternSwitchesToIntermediate) {
  const auto ranks = scattered_ranks(12, 1 << 20);
  const auto plan = partition_file_areas(ranks, 4, 2, true);
  EXPECT_EQ(plan.mode, PartitionMode::Intermediate);
  EXPECT_EQ(plan.num_groups, 4);
  expect_non_overlapping(plan);
  expect_groups_contiguous_and_sized(plan, 2);
}

TEST(FileArea, ScatteredWithViewSwitchDisabledFallsBack) {
  const auto ranks = scattered_ranks(12, 1 << 20);
  const auto plan = partition_file_areas(ranks, 4, 2, false);
  EXPECT_EQ(plan.mode, PartitionMode::SingleGroup);
  EXPECT_EQ(plan.num_groups, 1);
}

TEST(FileArea, TiledWithViewSwitchDisabledUsesAvailableSplits) {
  const auto ranks = tiled_ranks(4, 4, 4096);  // 3 clean splits
  const auto plan = partition_file_areas(ranks, 8, 2, false);
  EXPECT_EQ(plan.mode, PartitionMode::Direct);
  EXPECT_EQ(plan.num_groups, 4);  // as many as the splits allow
  expect_non_overlapping(plan);
}

TEST(FileArea, MinGroupSizeClampsGroupCount) {
  const auto ranks = serial_ranks(16, 1000);
  const auto plan = partition_file_areas(ranks, 16, 8, true);
  EXPECT_EQ(plan.num_groups, 2);  // 16 ranks / min 8
  expect_groups_contiguous_and_sized(plan, 8);
}

TEST(FileArea, OneGroupRequestedIsSingleGroup) {
  const auto ranks = serial_ranks(8, 100);
  const auto plan = partition_file_areas(ranks, 1, 1, true);
  EXPECT_EQ(plan.mode, PartitionMode::SingleGroup);
  EXPECT_EQ(plan.areas[0], (std::pair<std::uint64_t, std::uint64_t>{0, 800}));
}

TEST(FileArea, UnsortedRankOrderIsHandled) {
  // Ranks in reverse file order: grouping must follow offsets, not ids.
  std::vector<RankAccess> ranks;
  for (int r = 0; r < 8; ++r) {
    const int pos = 7 - r;
    ranks.push_back(RankAccess{static_cast<std::uint64_t>(pos) * 100,
                               static_cast<std::uint64_t>(pos + 1) * 100, 100});
  }
  const auto plan = partition_file_areas(ranks, 2, 2, true);
  EXPECT_EQ(plan.mode, PartitionMode::Direct);
  EXPECT_EQ(plan.num_groups, 2);
  // Rank 7 has the lowest offsets -> group 0; rank 0 the highest -> group 1.
  EXPECT_EQ(plan.group_of_rank[7], 0);
  EXPECT_EQ(plan.group_of_rank[0], 1);
  expect_non_overlapping(plan);
}

TEST(FileArea, EmptyRanksJoinGroupsHarmlessly) {
  auto ranks = serial_ranks(6, 1000);
  ranks.push_back(RankAccess{});  // two idle ranks
  ranks.push_back(RankAccess{});
  const auto plan = partition_file_areas(ranks, 2, 2, true);
  EXPECT_EQ(plan.mode, PartitionMode::Direct);
  EXPECT_EQ(plan.num_groups, 2);
  expect_non_overlapping(plan);
}

TEST(FileArea, AllEmptyIsSingleGroup) {
  const std::vector<RankAccess> ranks(8);
  const auto plan = partition_file_areas(ranks, 4, 2, true);
  EXPECT_EQ(plan.mode, PartitionMode::SingleGroup);
}

TEST(FileArea, ByteBalancedSplitsWithUnevenSizes) {
  // One huge rank and many small: the huge rank should sit alone-ish.
  std::vector<RankAccess> ranks;
  ranks.push_back(RankAccess{0, 1000000, 1000000});
  for (int r = 0; r < 7; ++r) {
    ranks.push_back(RankAccess{1000000 + static_cast<std::uint64_t>(r) * 10,
                               1000000 + static_cast<std::uint64_t>(r + 1) * 10,
                               10});
  }
  const auto plan = partition_file_areas(ranks, 2, 1, true);
  EXPECT_EQ(plan.num_groups, 2);
  EXPECT_EQ(plan.group_of_rank[0], 0);
  for (int r = 1; r < 8; ++r) {
    EXPECT_EQ(plan.group_of_rank[static_cast<std::size_t>(r)], 1);
  }
}

TEST(FileArea, IntermediateAreasTileTheWholeStream) {
  const auto ranks = scattered_ranks(10, 1 << 16);
  const auto plan = partition_file_areas(ranks, 5, 2, true);
  ASSERT_EQ(plan.mode, PartitionMode::Intermediate);
  std::uint64_t total = 0;
  for (const auto& rank : ranks) total += rank.bytes;
  EXPECT_EQ(plan.areas.front().first, 0u);
  EXPECT_EQ(plan.areas.back().second, total);
  for (std::size_t g = 1; g < plan.areas.size(); ++g) {
    EXPECT_EQ(plan.areas[g - 1].second, plan.areas[g].first);
  }
}

}  // namespace
}  // namespace parcoll::core
