// Extended two-phase engine: edge cases and stress shapes beyond the main
// correctness suite.
#include <gtest/gtest.h>

#include <numeric>

#include "mpi/collectives.hpp"
#include "mpiio/ext2ph.hpp"
#include "workloads/pattern.hpp"

namespace parcoll::mpiio {
namespace {

constexpr std::uint64_t kSalt = 0xED6E;

struct Harness {
  explicit Harness(int nranks)
      : world(machine::MachineModel::jaguar(nranks)) {}

  void write_and_verify(
      const std::function<std::vector<fs::Extent>(int)>& extents_of,
      Ext2phOptions options) {
    bool ok = true;
    world.run([&](mpi::Rank& self) {
      const int fs_id = self.world().fs().open("edge.dat", 8, 4096);
      DirectTarget target(self.world().fs(), fs_id);
      const auto extents = extents_of(self.rank());
      std::uint64_t bytes = 0;
      for (const auto& extent : extents) bytes += extent.length;
      std::vector<std::byte> packed(bytes);
      workloads::fill_stream(packed.data(), extents, kSalt);
      ext2ph_write(self, self.comm_world(), target,
                   CollRequest{extents, packed.empty() ? nullptr
                                                       : packed.data()},
                   options);
      mpi::barrier(self, self.comm_world());
      auto* store =
          dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
      ok = ok && store &&
           workloads::verify_store(*store, fs_id, extents, kSalt);
    });
    EXPECT_TRUE(ok);
  }

  mpi::World world;
};

Ext2phOptions all_aggs(int nranks, std::uint64_t cb = 4096) {
  Ext2phOptions options;
  options.aggregators.resize(static_cast<std::size_t>(nranks));
  std::iota(options.aggregators.begin(), options.aggregators.end(), 0);
  options.cb_buffer_size = cb;
  return options;
}

TEST(Ext2phEdge, SingleRankWorld) {
  Harness harness(1);
  harness.write_and_verify(
      [](int) {
        return std::vector<fs::Extent>{{100, 300}, {1000, 24}};
      },
      all_aggs(1));
}

TEST(Ext2phEdge, TinyCollectiveBuffer) {
  // A 64-byte collective buffer forces dozens of cycles; placement must
  // still be exact.
  Harness harness(3);
  harness.write_and_verify(
      [](int r) {
        std::vector<fs::Extent> extents;
        for (int k = 0; k < 6; ++k) {
          extents.push_back(fs::Extent{
              static_cast<std::uint64_t>((k * 3 + r)) * 100, 77});
        }
        return extents;
      },
      all_aggs(3, /*cb=*/64));
}

TEST(Ext2phEdge, MoreAggregatorsThanData) {
  // 16 aggregators for a 64-byte total request: most domains are empty.
  Harness harness(16);
  harness.write_and_verify(
      [](int r) {
        if (r != 5) return std::vector<fs::Extent>{};
        return std::vector<fs::Extent>{{10, 64}};
      },
      all_aggs(16));
}

TEST(Ext2phEdge, AggregatorsAreASubsetWithoutData) {
  // The two aggregators have no data of their own.
  Harness harness(6);
  Ext2phOptions options;
  options.aggregators = {0, 1};
  options.cb_buffer_size = 512;
  harness.write_and_verify(
      [](int r) {
        if (r < 2) return std::vector<fs::Extent>{};
        return std::vector<fs::Extent>{
            {static_cast<std::uint64_t>(r) * 1000, 900}};
      },
      options);
}

TEST(Ext2phEdge, WidelySeparatedRequests) {
  // Two clusters gigabytes apart: covered-range windows must skip the gap
  // (bounded cycles) and still place bytes exactly.
  Harness harness(4);
  mpi::World& world = harness.world;
  std::uint64_t cycles = 0;
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    const int fs_id = self.world().fs().open("gap.dat", 8, 1 << 20);
    DirectTarget target(self.world().fs(), fs_id);
    const std::uint64_t far = 4ull << 30;  // 4 GiB away
    const std::vector<fs::Extent> extents{
        {static_cast<std::uint64_t>(self.rank()) * 512, 512},
        {far + static_cast<std::uint64_t>(self.rank()) * 512, 512}};
    std::vector<std::byte> packed(1024);
    workloads::fill_stream(packed.data(), extents, kSalt);
    auto options = all_aggs(4, 1024);
    const auto outcome = ext2ph_write(self, self.comm_world(), target,
                                      CollRequest{extents, packed.data()},
                                      options);
    if (self.rank() == 0) cycles = outcome.cycles;
    mpi::barrier(self, self.comm_world());
    auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
    ok = ok && store && workloads::verify_store(*store, fs_id, extents, kSalt);
  });
  EXPECT_TRUE(ok);
  // Without covered-range windows this would be ~4 GiB / 1 KiB cycles.
  EXPECT_LE(cycles, 8u);
}

TEST(Ext2phEdge, ReadFromUnwrittenRegionsReturnsZeros) {
  mpi::World world(machine::MachineModel::jaguar(2));
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    const int fs_id = self.world().fs().open("zeros.dat", 8, 4096);
    DirectTarget target(self.world().fs(), fs_id);
    const std::vector<fs::Extent> extents{
        {static_cast<std::uint64_t>(self.rank()) * 4096 + 128, 256}};
    std::vector<std::byte> packed(256, std::byte{0xAA});
    auto options = all_aggs(2);
    ext2ph_read(self, self.comm_world(), target,
                CollRequest{extents, packed.data()}, options);
    for (std::byte b : packed) {
      if (b != std::byte{0}) ok = false;
    }
  });
  EXPECT_TRUE(ok);
}

TEST(Ext2phEdge, RepeatedCallsOnSameCommAreIndependent) {
  Harness harness(4);
  bool ok = true;
  harness.world.run([&](mpi::Rank& self) {
    const int fs_id = self.world().fs().open("repeat.dat", 8, 4096);
    DirectTarget target(self.world().fs(), fs_id);
    auto options = all_aggs(4, 512);
    for (int call = 0; call < 5; ++call) {
      const std::vector<fs::Extent> extents{
          {static_cast<std::uint64_t>(call) * 8192 +
               static_cast<std::uint64_t>(self.rank()) * 2048,
           2048}};
      std::vector<std::byte> packed(2048);
      workloads::fill_stream(packed.data(), extents, kSalt + call);
      ext2ph_write(self, self.comm_world(), target,
                   CollRequest{extents, packed.data()}, options);
      mpi::barrier(self, self.comm_world());
      auto* store =
          dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
      ok = ok && store &&
           workloads::verify_store(*store, fs_id, extents, kSalt + call);
    }
  });
  EXPECT_TRUE(ok);
}

TEST(Ext2phEdge, FdAlignmentPreservesCorrectness) {
  Harness harness(8);
  auto options = all_aggs(8, 4096);
  options.fd_alignment = 4096;
  harness.write_and_verify(
      [](int r) {
        return std::vector<fs::Extent>{
            {static_cast<std::uint64_t>(r) * 3000, 3000}};
      },
      options);
}

TEST(Ext2phEdge, SubCommunicatorCollective) {
  // ext2ph on a split communicator: only members participate.
  mpi::World world(machine::MachineModel::jaguar(8));
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    const mpi::Comm half =
        mpi::comm_split(self, self.comm_world(), self.rank() % 2, self.rank());
    const int fs_id = self.world().fs().open(
        self.rank() % 2 == 0 ? "even.dat" : "odd.dat", 4, 4096);
    DirectTarget target(self.world().fs(), fs_id);
    const int local = half.local_rank(self.rank());
    const std::vector<fs::Extent> extents{
        {static_cast<std::uint64_t>(local) * 1024, 1024}};
    std::vector<std::byte> packed(1024);
    const std::uint64_t salt = kSalt + (self.rank() % 2);
    workloads::fill_stream(packed.data(), extents, salt);
    Ext2phOptions options;
    options.aggregators = {0, 2};
    options.cb_buffer_size = 512;
    ext2ph_write(self, half, target, CollRequest{extents, packed.data()},
                 options);
    mpi::barrier(self, self.comm_world());
    auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
    ok = ok && store && workloads::verify_store(*store, fs_id, extents, salt);
  });
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace parcoll::mpiio
