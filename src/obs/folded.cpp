#include "obs/folded.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "obs/span.hpp"

namespace parcoll::obs {

namespace {

/// One flamegraph frame for a span: structural spans show their kind and
/// name (plus subgroup/cycle labels), Phase leaves show the time category.
std::string frame_of(const Span& span) {
  char buf[64];
  switch (span.kind) {
    case SpanKind::Phase:
      return mpi::to_string(span.cat);
    case SpanKind::Subgroup:
      std::snprintf(buf, sizeof(buf), "subgroup#%lld",
                    static_cast<long long>(span.group));
      return buf;
    case SpanKind::Stage:
      if (span.cycle >= 0) {
        std::snprintf(buf, sizeof(buf), "%s#%lld", span.name,
                      static_cast<long long>(span.cycle));
        return buf;
      }
      return span.name;
    case SpanKind::Call:
    case SpanKind::Drain:
    case SpanKind::Scrub:
      return span.name;
  }
  return span.name;
}

}  // namespace

std::string folded_stacks(const SpanStore& store,
                          const std::vector<std::string>* rank_jobs) {
  const std::vector<Span>& spans = store.spans();
  // Self time = duration - sum of direct children's durations. Index 0 is
  // the virtual root (parent of top-level spans).
  std::vector<double> child_sum(spans.size() + 1, 0.0);
  for (const Span& span : spans) {
    child_sum[static_cast<std::size_t>(span.parent)] += span.end - span.begin;
  }
  std::map<std::string, unsigned long long> lines;
  std::vector<const Span*> chain;
  for (const Span& span : spans) {
    const double self =
        (span.end - span.begin) - child_sum[static_cast<std::size_t>(span.id)];
    if (self <= 0.0) continue;
    const auto weight =
        static_cast<unsigned long long>(std::llround(self * 1e9));
    if (weight == 0) continue;
    chain.clear();
    for (const Span* s = &span;;) {
      chain.push_back(s);
      if (s->parent == kNoSpan) break;
      s = &store.at(s->parent);
    }
    std::string stack;
    if (rank_jobs != nullptr && span.rank >= 0 &&
        static_cast<std::size_t>(span.rank) < rank_jobs->size() &&
        !(*rank_jobs)[static_cast<std::size_t>(span.rank)].empty()) {
      stack += "job:";
      stack += (*rank_jobs)[static_cast<std::size_t>(span.rank)];
      stack += ';';
    }
    char rank_frame[24];
    std::snprintf(rank_frame, sizeof(rank_frame), "rank_%04d", span.rank);
    stack += rank_frame;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      stack += ';';
      stack += frame_of(**it);
    }
    lines[stack] += weight;
  }
  std::string out;
  for (const auto& [stack, weight] : lines) {
    out += stack;
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %llu\n", weight);
    out += buf;
  }
  return out;
}

unsigned long long folded_total_weight(const std::string& text) {
  unsigned long long total = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::size_t space = text.rfind(' ', eol);
    if (space != std::string::npos && space >= pos) {
      total += std::strtoull(text.c_str() + space + 1, nullptr, 10);
    }
    pos = eol + 1;
  }
  return total;
}

}  // namespace parcoll::obs
