// Point-to-point messaging: isend/irecv with tag matching, wait/waitall,
// and blocking send/recv built on top.
//
// Timing model: posting a send or receive costs cpu_msg_overhead of CPU.
// The wire transfer is reserved on the network when the send meets a
// matching receive; both requests complete at the delivery time. Waiting on
// an incomplete request blocks the fiber and charges the wait to TimeCat::P2P.
//
// Payloads: a send may carry real bytes (copied eagerly, MPI eager-protocol
// style) or be a phantom of a given size; a receive may supply a real buffer
// or a null one. Bytes are copied only when both sides are real.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "machine/machine_model.hpp"
#include "mpi/comm.hpp"
#include "mpi/timecat.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace parcoll::mpi {

class Rank;

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

namespace detail {
struct ReqState {
  bool complete = false;
  double complete_time = 0.0;
  std::uint64_t transferred = 0;  // bytes actually moved (recv side)
  int matched_source = -1;        // local rank in the comm (recv side)
  int matched_tag = -1;
  std::vector<sim::ProcId> waiters;
};
}  // namespace detail

/// Handle to an outstanding isend/irecv. Cheap to copy.
class Request {
 public:
  Request() = default;
  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool done() const { return state_ && state_->complete; }
  /// Bytes delivered (receive side), valid once done().
  [[nodiscard]] std::uint64_t transferred() const { return state_->transferred; }
  /// Matched source local rank (receive side), valid once done().
  [[nodiscard]] int source() const { return state_->matched_source; }

 private:
  friend class P2PEngine;
  explicit Request(std::shared_ptr<detail::ReqState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::ReqState> state_;
};

class P2PEngine {
 public:
  P2PEngine(sim::Engine& engine, net::Network& network,
            const machine::Topology& topology);

  /// Post a send of `bytes` to `dst` (local rank in `comm`) with `tag`.
  /// `data` may be nullptr for a phantom payload. Posting overhead is
  /// charged to `cat` (the intra-node aggregation stage accounts its
  /// shipping as TimeCat::Intra; everything else keeps the P2P default).
  Request isend(Rank& self, const Comm& comm, int dst, int tag,
                const void* data, std::uint64_t bytes,
                TimeCat cat = TimeCat::P2P);

  /// Post a receive into `buffer` (may be nullptr) of up to `capacity`
  /// bytes from `src` (local rank, or kAnySource) with `tag` (or kAnyTag).
  Request irecv(Rank& self, const Comm& comm, int src, int tag, void* buffer,
                std::uint64_t capacity, TimeCat cat = TimeCat::P2P);

  /// Block until `request` completes; charges the wait to `cat`.
  void wait(Rank& self, Request& request, TimeCat cat = TimeCat::P2P);

  void waitall(Rank& self, std::span<Request> requests,
               TimeCat cat = TimeCat::P2P);

  /// Blocking convenience wrappers.
  void send(Rank& self, const Comm& comm, int dst, int tag, const void* data,
            std::uint64_t bytes, TimeCat cat = TimeCat::P2P);
  /// Returns the number of bytes received.
  std::uint64_t recv(Rank& self, const Comm& comm, int src, int tag,
                     void* buffer, std::uint64_t capacity,
                     TimeCat cat = TimeCat::P2P);

 private:
  struct PendingSend {
    int src_local;
    int tag;
    std::uint64_t bytes;
    std::shared_ptr<std::vector<std::byte>> data;  // null for phantom
    int src_node;
    std::shared_ptr<detail::ReqState> state;
  };
  struct PendingRecv {
    int src_local;  // kAnySource allowed
    int tag;        // kAnyTag allowed
    void* buffer;
    std::uint64_t capacity;
    int dst_node;
    std::shared_ptr<detail::ReqState> state;
  };
  // Queues keyed by (context_id, destination world rank).
  struct Key {
    std::uint64_t ctx;
    int dst;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>()(k.ctx * 1000003u +
                                        static_cast<std::uint64_t>(k.dst));
    }
  };

  void complete_pair(const PendingSend& send, const PendingRecv& recv);
  static void finish(sim::Engine& engine,
                     const std::shared_ptr<detail::ReqState>& state);

  sim::Engine& engine_;
  net::Network& network_;
  const machine::Topology& topology_;
  std::unordered_map<Key, std::deque<PendingSend>, KeyHash> unexpected_;
  std::unordered_map<Key, std::deque<PendingRecv>, KeyHash> posted_;
};

}  // namespace parcoll::mpi
