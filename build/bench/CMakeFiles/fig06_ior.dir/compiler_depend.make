# Empty compiler generated dependencies file for fig06_ior.
# This may be replaced when dependencies are built.
