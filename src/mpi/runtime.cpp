#include "mpi/runtime.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "fs/integrity.hpp"
#include "fs/lustre.hpp"
#include "mpi/collectives.hpp"
#include "mpi/p2p.hpp"
#include "mpi/trace.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace parcoll::mpi {

World::World(machine::MachineModel model, bool byte_true)
    : model_(std::move(model)),
      network_(model_.topology, model_.net, model_.mem),
      byte_true_(byte_true) {
  p2p_ = std::make_unique<P2PEngine>(engine_, network_, model_.topology);
  colls_ = std::make_unique<CollEngine>(engine_, model_.net);
  fs_ = std::make_unique<fs::LustreSim>(
      engine_, model_.storage,
      byte_true ? fs::StoreMode::Memory : fs::StoreMode::Phantom);
  std::vector<int> members(static_cast<std::size_t>(model_.topology.nranks()));
  std::iota(members.begin(), members.end(), 0);
  world_comm_ = Comm(/*context_id=*/1, std::move(members));
}

World::~World() = default;

void World::run(std::function<void(Rank&)> program) {
  if (ran_) {
    throw std::logic_error("World::run: a World can only run one program");
  }
  ran_ = true;
  const int nranks = model_.topology.nranks();
  rank_times_.resize(static_cast<std::size_t>(nranks));
  if (fault_plan_ != nullptr && !fault_plan_->media.empty()) {
    // Latent media corruption fires on engine timers, independent of any
    // rank's progress. When the scrubber is on, it visits shortly after
    // each event; the close-time sweep remains the hard guarantee.
    // Synthetic client ids sit past the ranks and the per-node drain
    // agents so nobody's snapshot-and-diff counters see this activity.
    const int media_client = nranks + model_.topology.num_nodes();
    for (std::size_t i = 0; i < fault_plan_->media.size(); ++i) {
      const fault::MediaCorrupt event = fault_plan_->media[i];
      engine_.post(event.at, [this, event, i, media_client] {
        fs_->corrupt_media(event, i, media_client);
        // Only a Repair-level scrubber runs mid-run: it can heal, and a
        // spurious mismatch on a block that is registered but not yet
        // landed just writes the very bytes that are about to land. A
        // Detect-level pass could record that transient as a hard error,
        // so detection of media corruption waits for read/close passes.
        if (integrity_ != nullptr && integrity_->config().scrub &&
            integrity_->config().level == fs::IntegrityLevel::Repair) {
          schedule_scrub(event.at + integrity_->config().scrub_delay);
        }
      });
    }
  }
  for (int r = 0; r < nranks; ++r) {
    engine_.spawn([this, r, program] {
      Rank self(*this, r);
      program(self);
      rank_times_[static_cast<std::size_t>(r)] = self.times().breakdown();
    });
  }
  if (sampler_ != nullptr) {
    schedule_sample(0.0);
  }
  engine_.run();
  elapsed_ = engine_.now();
}

obs::TimeSeriesSampler& World::enable_sampler(double interval) {
  if (ran_) {
    throw std::logic_error(
        "World::enable_sampler: enable the sampler before run()");
  }
  if (sampler_) {
    return *sampler_;
  }
  sampler_ = std::make_unique<obs::TimeSeriesSampler>(interval);
  const int nranks = model_.topology.nranks();
  live_times_.assign(static_cast<std::size_t>(nranks), nullptr);

  // Engine throughput: cumulative events, exported as events/s.
  sampler_->add_probe(
      "engine.events",
      [this] { return static_cast<double>(engine_.stats().events_executed); },
      /*rate=*/true);

  // Per-OST pressure: seconds of backlog, payload bytes in flight, and
  // cumulative service seconds (exported as utilization via the rate).
  for (int i = 0; i < model_.storage.num_osts; ++i) {
    const auto index = static_cast<std::size_t>(i);
    sampler_->add_probe(
        obs::MetricsRegistry::indexed("fs.ost.queue_depth_s", index),
        [this, index] {
          return std::max(0.0,
                          fs_->ost(index).busy_until() - engine_.now());
        });
    sampler_->add_probe(
        obs::MetricsRegistry::indexed("fs.ost.inflight_bytes", index),
        [this, index] {
          return static_cast<double>(
              fs_->ost(index).inflight_bytes(engine_.now()));
        });
    sampler_->add_probe(
        obs::MetricsRegistry::indexed("fs.ost.util", index),
        [this, index] { return fs_->ost(index).service_seconds(); },
        /*rate=*/true);
  }

  // Per-rank blocked-time categories: cumulative seconds per category,
  // read from the live account while the rank runs and from the collected
  // breakdown after it finishes.
  for (int r = 0; r < nranks; ++r) {
    for (std::size_t c = 0; c < kNumTimeCats; ++c) {
      sampler_->add_probe(
          obs::MetricsRegistry::indexed(
              std::string("mpi.rank.") +
                  to_string(static_cast<TimeCat>(c)) + "_s",
              static_cast<std::size_t>(r)),
          [this, r, c] {
            const TimeBreakdown* live =
                live_times_[static_cast<std::size_t>(r)];
            if (live != nullptr) return live->seconds[c];
            return rank_times_.empty()
                       ? 0.0
                       : rank_times_[static_cast<std::size_t>(r)].seconds[c];
          });
    }
  }
  return *sampler_;
}

void World::schedule_sample(double at) {
  engine_.post(at, [this, at] {
    sampler_->sample(engine_.now());
    // Re-post only while fibers are live: the run ends when the queue
    // drains, so an unconditional tick would keep it alive forever. One
    // trailing tick may land after the last rank finishes, rounding the
    // engine's final time up by at most one interval — acceptable, since
    // bit-identity pins apply to unsampled runs only.
    if (engine_.live_processes() > 0) {
      schedule_sample(at + sampler_->interval());
    }
  });
}

void World::set_job(int client, const std::string& job) {
  if (client < 0) {
    throw std::invalid_argument("World::set_job: negative client id");
  }
  if (client_jobs_.size() <= static_cast<std::size_t>(client)) {
    client_jobs_.resize(static_cast<std::size_t>(client) + 1);
  }
  client_jobs_[static_cast<std::size_t>(client)] = job;
  fs_->set_jobs(&client_jobs_);
}

void World::set_job_all(const std::string& job) {
  for (int r = 0; r < nranks(); ++r) {
    set_job(r, job);
  }
}

const std::string& World::job_of(int client) const {
  static const std::string kEmpty;
  if (client < 0 || static_cast<std::size_t>(client) >= client_jobs_.size()) {
    return kEmpty;
  }
  return client_jobs_[static_cast<std::size_t>(client)];
}

bool World::register_times(int rank, const TimeBreakdown* times) {
  if (rank < 0 || static_cast<std::size_t>(rank) >= live_times_.size() ||
      live_times_[static_cast<std::size_t>(rank)] != nullptr) {
    return false;
  }
  live_times_[static_cast<std::size_t>(rank)] = times;
  return true;
}

void World::unregister_times(int rank, const TimeBreakdown* times) {
  if (rank >= 0 && static_cast<std::size_t>(rank) < live_times_.size() &&
      live_times_[static_cast<std::size_t>(rank)] == times) {
    live_times_[static_cast<std::size_t>(rank)] = nullptr;
  }
}

Rank::Rank(World& world, int rank)
    : world_(world), rank_(rank), pid_(world.engine().current()) {
  if (pid_ == sim::kNoProc) {
    throw std::logic_error("Rank must be constructed on a process fiber");
  }
  if (world.tracer() != nullptr) {
    times_.attach_tracer(world.tracer(), world.engine().now_address(), rank,
                         static_cast<std::uint64_t>(pid_));
  }
  // The account lives on this fiber's stack; expose it to the sampler for
  // exactly the Rank's lifetime.
  world.register_times(rank, &times_.breakdown());
}

Rank::~Rank() { world_.unregister_times(rank_, &times_.breakdown()); }

Tracer& World::enable_tracing() {
  if (!tracer_) {
    tracer_ = std::make_unique<Tracer>();
  }
  return *tracer_;
}

fs::IntegrityManager& World::enable_integrity(
    const fs::IntegrityConfig& config) {
  if (!integrity_) {
    integrity_ = std::make_unique<fs::IntegrityManager>(config, &fault_state_);
    fs_->set_integrity(integrity_.get());
  }
  return *integrity_;
}

void World::schedule_scrub(double at) {
  engine_.post(at, [this] {
    engine_.spawn([this] {
      const int client = nranks() + model_.topology.num_nodes() + 1;
      const auto stream = static_cast<std::uint64_t>(engine_.current());
      const double begin = engine_.now();
      obs::SpanId span = obs::kNoSpan;
      if (tracer_ != nullptr) {
        span = tracer_->spans().open(stream, client, obs::SpanKind::Scrub,
                                     "scrub", begin);
      }
      const double seconds =
          integrity_->scrub_all(client, fs_->store(), /*by_scrubber=*/true);
      if (seconds > 0) engine_.sleep(seconds);
      if (tracer_ != nullptr) {
        tracer_->spans().close(stream, span, engine_.now());
      }
      if (metrics_ != nullptr) {
        ++metrics_->counter("integrity.scrub_passes");
      }
    });
  });
}

obs::MetricsRegistry& World::enable_metrics() {
  if (!metrics_) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    fs_->set_metrics(metrics_.get());
  }
  return *metrics_;
}

void World::set_fault(const fault::FaultPlan& plan) {
  if (ran_) {
    throw std::logic_error("World::set_fault: install the plan before run()");
  }
  if (plan.empty()) {
    return;  // keep every hook a plain null-pointer check
  }
  fault_plan_ = std::make_unique<fault::FaultPlan>(plan);
  fs_->set_fault(fault_plan_.get(), &fault_state_);
}

void Rank::maybe_fault_stall() {
  const fault::FaultPlan* plan = world_.fault_plan();
  if (plan == nullptr || plan->stalls.empty()) {
    return;
  }
  if (stalls_applied_.size() < plan->stalls.size()) {
    stalls_applied_.resize(plan->stalls.size(), 0);
  }
  for (std::size_t i = 0; i < plan->stalls.size(); ++i) {
    const fault::RankStall& stall = plan->stalls[i];
    if (stalls_applied_[i] != 0 || stall.rank != rank_ || now() < stall.at) {
      continue;
    }
    stalls_applied_[i] = 1;
    busy(TimeCat::Faulted, stall.duration);
    fault::FaultCounters& mine = world_.fault_state().of(rank_);
    ++mine.stalls;
    mine.faulted_seconds += stall.duration;
  }
}

void Rank::busy(TimeCat cat, double seconds) {
  world_.engine().sleep(seconds);
  times_.add(cat, seconds);
}

void Rank::touch_bytes(double bytes) {
  busy(TimeCat::Compute, bytes / world_.model().mem.memcpy_bandwidth);
}

}  // namespace parcoll::mpi
