# Empty dependencies file for parcoll.
# This may be replaced when dependencies are built.
