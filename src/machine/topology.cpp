#include "machine/topology.hpp"

namespace parcoll::machine {

Topology::Topology(int nranks, int cores_per_node, Mapping mapping)
    : nranks_(nranks), cores_per_node_(cores_per_node), mapping_(mapping) {
  if (nranks <= 0 || cores_per_node <= 0) {
    throw std::invalid_argument("Topology: nranks and cores_per_node must be positive");
  }
  num_nodes_ = (nranks + cores_per_node - 1) / cores_per_node;
}

int Topology::node_of(int rank) const {
  if (rank < 0 || rank >= nranks_) {
    throw std::out_of_range("Topology::node_of: bad rank");
  }
  if (mapping_ == Mapping::Block) {
    return rank / cores_per_node_;
  }
  return rank % num_nodes_;
}

std::vector<int> Topology::ranks_on_node(int node) const {
  if (node < 0 || node >= num_nodes_) {
    throw std::out_of_range("Topology::ranks_on_node: bad node");
  }
  std::vector<int> ranks;
  if (mapping_ == Mapping::Block) {
    for (int r = node * cores_per_node_;
         r < (node + 1) * cores_per_node_ && r < nranks_; ++r) {
      ranks.push_back(r);
    }
  } else {
    for (int r = node; r < nranks_; r += num_nodes_) {
      ranks.push_back(r);
    }
  }
  return ranks;
}

}  // namespace parcoll::machine
