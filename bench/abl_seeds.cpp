// Ablation — robustness to the stochastic environment (the paper:
// "experiment results were collected with repeated measurements to
// eliminate any significant interference").
//
// The simulator's only stochastic input is the deterministic jitter seed
// (OST service variation and heavy-tail epochs). The headline conclusion —
// the ParColl/baseline ratio — must hold across seeds.
#include <algorithm>

#include "bench/common.hpp"
#include "workloads/tileio.hpp"

int main(int argc, char** argv) {
  const bool smoke = parcoll::bench::smoke_requested(argc, argv);
  using namespace parcoll;
  using namespace parcoll::bench;

  BenchReport report("abl_seeds", argc, argv);
  header("Ablation: seed robustness",
         "Tile-IO P=256, baseline vs ParColl-32 across jitter seeds");
  std::printf("  %-8s %14s %14s %8s\n", "seed", "Cray (MiB/s)",
              "ParColl (MiB/s)", "ratio");

  const int nprocs = parcoll::bench::scaled(smoke, 256);
  const auto config = workloads::TileIOConfig::paper(nprocs);
  double min_ratio = 1e30;
  double max_ratio = 0;
  for (std::uint64_t seed : {42ull, 7ull, 1234ull, 98765ull, 31415ull}) {
    auto base = baseline_spec();
    base.tweak_model = [seed](machine::MachineModel& model) {
      model.storage.seed = seed;
    };
    auto parcoll = parcoll_spec(32);
    parcoll.tweak_model = base.tweak_model;
    const auto b = workloads::run_tileio(config, nprocs, base, true);
    const auto p = workloads::run_tileio(config, nprocs, parcoll, true);
    const double ratio = p.bandwidth() / b.bandwidth();
    min_ratio = std::min(min_ratio, ratio);
    max_ratio = std::max(max_ratio, ratio);
    std::printf("  %-8llu %14.1f %14.1f %7.2fx\n",
                static_cast<unsigned long long>(seed), b.bandwidth_mib(),
                p.bandwidth_mib(), ratio);
    report.add("cray/seed=" + std::to_string(seed), nprocs, b);
    report.add("parcoll-32/seed=" + std::to_string(seed), nprocs, p);
  }
  std::printf("  ratio range across seeds: %.2fx .. %.2fx\n", min_ratio,
              max_ratio);
  footnote("the conclusion is not an artifact of one jitter realization");
  return 0;
}
