# Empty dependencies file for abl_seeds.
# This may be replaced when dependencies are built.
