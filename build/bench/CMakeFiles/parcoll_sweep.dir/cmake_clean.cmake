file(REMOVE_RECURSE
  "CMakeFiles/parcoll_sweep.dir/__/tools/parcoll_sweep.cpp.o"
  "CMakeFiles/parcoll_sweep.dir/__/tools/parcoll_sweep.cpp.o.d"
  "parcoll_sweep"
  "parcoll_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcoll_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
