#include "fs/object_store.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace parcoll::fs {

void MemoryStore::write(int file_id, std::uint64_t offset,
                        const std::byte* data, std::uint64_t length) {
  auto& file = files_[file_id];
  const std::uint64_t end = offset + length;
  if (file.size() < end) {
    file.resize(end, std::byte{0});
  }
  if (data != nullptr && length > 0) {
    std::memcpy(file.data() + offset, data, length);
  }
}

void MemoryStore::read(int file_id, std::uint64_t offset, std::byte* out,
                       std::uint64_t length) {
  if (out == nullptr || length == 0) {
    return;
  }
  auto it = files_.find(file_id);
  const std::vector<std::byte>* file = it == files_.end() ? nullptr : &it->second;
  // Bytes beyond the written size read as zeros (sparse-file semantics).
  std::uint64_t have = 0;
  if (file != nullptr && offset < file->size()) {
    have = std::min<std::uint64_t>(length, file->size() - offset);
    std::memcpy(out, file->data() + offset, have);
  }
  if (have < length) {
    std::memset(out + have, 0, length - have);
  }
}

std::uint64_t MemoryStore::size(int file_id) const {
  auto it = files_.find(file_id);
  return it == files_.end() ? 0 : it->second.size();
}

std::uint64_t MemoryStore::content_digest() const {
  // FNV-1a over (id, size, bytes) in ascending file-id order, so the value
  // does not depend on hash-map iteration order.
  std::vector<int> ids;
  ids.reserve(files_.size());
  for (const auto& [id, bytes] : files_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      h = (h ^ ((value >> shift) & 0xff)) * 1099511628211ull;
    }
  };
  for (int id : ids) {
    const std::vector<std::byte>& bytes = files_.at(id);
    mix(static_cast<std::uint64_t>(id));
    mix(bytes.size());
    for (std::byte b : bytes) {
      h = (h ^ static_cast<std::uint64_t>(b)) * 1099511628211ull;
    }
  }
  return h;
}

const std::vector<std::byte>& MemoryStore::contents(int file_id) const {
  auto it = files_.find(file_id);
  if (it == files_.end()) {
    throw std::out_of_range("MemoryStore::contents: unknown file");
  }
  return it->second;
}

void PhantomStore::write(int file_id, std::uint64_t offset,
                         const std::byte* /*data*/, std::uint64_t length) {
  auto& high = high_water_[file_id];
  high = std::max(high, offset + length);
  bytes_written_ += length;
  ++write_ops_;
}

void PhantomStore::read(int file_id, std::uint64_t offset, std::byte* out,
                        std::uint64_t length) {
  (void)file_id;
  (void)offset;
  if (out != nullptr && length > 0) {
    std::memset(out, 0, length);
  }
  bytes_read_ += length;
  ++read_ops_;
}

std::uint64_t PhantomStore::size(int file_id) const {
  auto it = high_water_.find(file_id);
  return it == high_water_.end() ? 0 : it->second;
}

}  // namespace parcoll::fs
