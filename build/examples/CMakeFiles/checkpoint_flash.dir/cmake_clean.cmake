file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_flash.dir/checkpoint_flash.cpp.o"
  "CMakeFiles/checkpoint_flash.dir/checkpoint_flash.cpp.o.d"
  "checkpoint_flash"
  "checkpoint_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
