// Experiment runner: one place that turns (workload, implementation,
// machine) into the numbers the paper's figures plot.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "fault/fault.hpp"
#include "machine/machine_model.hpp"
#include "mpi/runtime.hpp"
#include "mpi/timecat.hpp"
#include "mpi/trace.hpp"
#include "mpiio/hints.hpp"
#include "mpiio/stats.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "sim/engine.hpp"
#include "sim/schedule.hpp"

namespace parcoll::check {
class InvariantChecker;
}  // namespace parcoll::check

namespace parcoll::workloads {

/// Which I/O implementation a run exercises. The paper's series names:
///   "Cray"          -> Ext2ph (plain extended two-phase, default hints)
///   "ParColl-N"     -> ParColl with N subgroups
///   "Cray w/o Coll" -> PosixIndependent
enum class Impl {
  PosixIndependent,  // one blocking call per contiguous extent
  Sieving,           // ROMIO data-sieving independent I/O (locked RMW)
  Independent,       // batched independent I/O (pipelined RPCs)
  Ext2ph,            // collective, plain extended two-phase
  ParColl,           // collective, partitioned (needs parcoll_groups)
};

[[nodiscard]] const char* to_string(Impl impl);

struct RunSpec {
  Impl impl = Impl::Ext2ph;
  int parcoll_groups = 0;  // ParColl-N
  int min_group_size = 8;  // paper: "a least group size of 8"
  bool view_switch = true;
  bool persistent_groups = true;
  int cb_nodes = 0;  // 0 = all nodes
  std::vector<int> cb_node_list;
  std::uint64_t cb_buffer_size = 4ull << 20;
  /// Move and verify real bytes (tests) or run phantom payloads (benches).
  bool byte_true = false;
  /// Record per-rank time intervals; the result carries the trace.
  bool trace = false;
  /// Record counters/gauges/histograms; the result carries the registry.
  bool metrics = false;
  /// Virtual-time telemetry sampling interval in seconds; 0 (the default)
  /// disables the sampler entirely, keeping the run bit-identical. When
  /// set, the result carries the timeline snapshot.
  double sample_interval = 0;
  /// Tenant name applied to every rank of the run ("" = untagged). Flows
  /// into per-job metric slices and the folded-stack exporter.
  std::string job;
  machine::Mapping mapping = machine::Mapping::Block;
  /// Processes per physical node (the paper's dual-core PEs).
  int cores_per_node = 2;
  /// Two-level collective I/O: aggregate requests within each node before
  /// the inter-node exchange. Off keeps the historical single-level runs.
  node::IntranodeMode intranode = node::IntranodeMode::Off;
  node::LeaderPolicy intranode_leader = node::LeaderPolicy::Lowest;
  /// Burst-buffer staging tier (disabled keeps the historical direct
  /// writes; see bb/options.hpp for the policy knobs).
  bb::BbConfig bb;
  /// End-to-end checksum pipeline (Off keeps the historical runs
  /// bit-identical; see fs/integrity.hpp for the knobs).
  fs::IntegrityConfig integrity;
  /// Optional calibration tweak applied to the machine model before a run.
  std::function<void(machine::MachineModel&)> tweak_model;
  /// Deterministic fault plan injected into the run (empty = fault-free;
  /// an empty plan leaves the run bit-for-bit identical to no plan).
  fault::FaultPlan fault;
  /// Event tie-break policy. Program order (the default) keeps the engine's
  /// historical fast path; Random/Dfs make the run a model-checking probe.
  sim::SchedulePolicy schedule;
  /// Non-owning invariant sink; null (the default) disables all hooks.
  check::InvariantChecker* checker = nullptr;
  /// Per-rank fiber stack size in bytes; 0 keeps the engine default
  /// (Engine::kDefaultStackBytes). Values below Engine::kMinStackBytes are
  /// rejected with std::invalid_argument before any fiber is spawned.
  std::size_t stack_bytes = 0;

  [[nodiscard]] mpiio::Hints hints() const;
  [[nodiscard]] machine::MachineModel model(int nranks) const;
};

struct RunResult {
  double elapsed = 0;        // virtual seconds of the measured I/O phase
  /// Virtual seconds until everything (including trailing burst-buffer
  /// drains and timers) went quiet: the time-to-durability of the run.
  /// Equals the wall clock at collect time; without bb it tracks the
  /// workload's own span.
  double total_elapsed = 0;
  std::uint64_t bytes = 0;   // total bytes moved by the measured phase
  mpi::TimeBreakdown sum;    // per-category time, summed over ranks
  mpiio::FileStats stats;    // the file's close-time summary
  bool verified = false;     // byte-true runs: did the file audit pass
  std::uint64_t fs_rpcs = 0;          // RPCs served across OSTs
  std::uint64_t fs_lock_switches = 0; // DLM revocations across OSTs
  std::shared_ptr<mpi::Tracer> trace; // set when RunSpec::trace was on
  /// Set when RunSpec::metrics was on; also mirrors FileStats ("stats.*")
  /// and fault counters ("fault.*") at collect time.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Set when RunSpec::sample_interval was > 0: the run's time-series
  /// telemetry snapshot (per-OST pressure, bb occupancy, per-rank time).
  std::shared_ptr<obs::TimeSeries> timeline;
  /// Rank -> job table of the run (empty when no tenant tags were set).
  std::vector<std::string> jobs;
  fault::FaultCounters faults;        // degraded-mode events, all ranks
  std::string schedule_token;         // replay token of the executed schedule
  std::uint64_t choice_points = 0;    // equal-time ties the policy resolved
  /// MemoryStore content digest at collect time (0 for phantom stores);
  /// equal digests mean byte-identical file contents across runs.
  std::uint64_t file_digest = 0;
  /// Engine self-instrumentation (events, throughput, queue and stack-pool
  /// behavior) snapshotted at collect time.
  sim::EngineStats engine;

  [[nodiscard]] double bandwidth() const {
    return elapsed > 0 ? static_cast<double>(bytes) / elapsed : 0.0;
  }
  [[nodiscard]] double bandwidth_mib() const {
    return bandwidth() / (1024.0 * 1024.0);
  }
  /// Share of summed rank time spent in synchronization (the paper's
  /// collective-wall metric, Fig. 1/2/8).
  [[nodiscard]] double sync_fraction() const {
    const double total = sum.total();
    return total > 0 ? sum[mpi::TimeCat::Sync] / total : 0.0;
  }
};

/// Shared measured-phase bookkeeping: ranks call phase_begin after setup
/// and phase_end after their last I/O; the runner reads the window.
class PhaseClock {
 public:
  void begin(double now) {
    if (!started_) {
      t0_ = now;
      started_ = true;
    }
  }
  void end(double now) { t1_ = now > t1_ ? now : t1_; }
  [[nodiscard]] double elapsed() const { return t1_ - t0_; }

 private:
  double t0_ = 0;
  double t1_ = 0;
  bool started_ = false;
};

/// Turn on the observers a spec asks for (tracing and/or metrics) before
/// World::run. A no-op for the default spec, keeping the simulated run
/// bit-identical to an unobserved one.
void apply_observability(mpi::World& world, const RunSpec& spec);

/// Collect the per-rank breakdowns of a finished world into a RunResult.
RunResult collect(const mpi::World& world, const PhaseClock& clock,
                  std::uint64_t bytes, const mpiio::FileStats& stats);

/// The result's "parcoll-run" JSON fragment (elapsed, bandwidth, time
/// breakdown, file stats, fault counters, metrics dump when present).
[[nodiscard]] obs::JsonValue run_result_json(const RunResult& result);

}  // namespace parcoll::workloads
