#include "mpiio/file.hpp"

#include <algorithm>
#include <stdexcept>

#include "bb/staging.hpp"
#include "dtype/pack.hpp"
#include "fs/integrity.hpp"
#include "obs/metrics.hpp"
#include "mpi/collectives.hpp"
#include "mpiio/ext2ph.hpp"

namespace parcoll::mpiio {

FileHandle::FileHandle(mpi::Rank& self, const mpi::Comm& comm,
                       const std::string& name, const Hints& hints,
                       unsigned amode)
    : self_(self), amode_(amode) {
  const int rw_bits = (amode & kModeRdonly ? 1 : 0) +
                      (amode & kModeWronly ? 1 : 0) +
                      (amode & kModeRdwr ? 1 : 0);
  if (rw_bits != 1) {
    throw std::invalid_argument(
        "FileHandle: exactly one of RDONLY/WRONLY/RDWR must be given");
  }
  // Reject impossible hints up front, before any simulated time is spent
  // (pure CPU check: identical on every rank, no communication).
  hints.validate(comm.size());
  auto& fs = self.world().fs();
  const bool existed = fs.exists(name);
  if ((amode & kModeCreate) && (amode & kModeExcl) && existed) {
    throw std::invalid_argument("FileHandle: MODE_EXCL but the file exists");
  }
  if (!(amode & kModeCreate) && !existed) {
    throw std::invalid_argument("FileHandle: no MODE_CREATE and no such file");
  }
  // Every rank contacts the metadata server; the file is created once.
  // With romio_no_indep_rw and an explicit aggregator set, non-aggregators
  // defer their open (ROMIO's deferred-open optimization): they skip the
  // metadata round trip since only aggregators will touch the file.
  bool deferred = false;
  if (hints.no_indep_rw &&
      (hints.cb_nodes > 0 || !hints.cb_node_list.empty())) {
    const auto aggregators =
        default_aggregators(self.world().model().topology, comm, hints);
    const int local = comm.local_rank(self.rank());
    deferred = !std::binary_search(aggregators.begin(), aggregators.end(),
                                   local);
  }
  const int fs_id = fs.open(name, hints.striping_factor, hints.striping_unit,
                            /*charge_metadata=*/!deferred);
  // Keyed by the underlying file id (not the name): deleting and
  // re-creating a file must not resurrect the old shared state.
  const std::string key = "mpiio:" + std::to_string(comm.context_id()) + ":" +
                          std::to_string(fs_id);
  common_ = self.world().shared_object<FileCommon>(
      key, [&]() {
        auto common = std::make_shared<FileCommon>();
        common->fs_id = fs_id;
        common->name = name;
        common->hints = hints;
        common->comm = comm;
        return common;
      });
  if (common_->hints.bb.enabled) {
    common_->bb = bb::shared_store(self.world(), comm.context_id(), fs_id,
                                   common_->hints.bb);
  }
  if (common_->hints.integrity.enabled()) {
    // World-wide singleton; the first opener's config wins (enable_integrity
    // is idempotent). With the hint off nothing is ever installed, so the
    // default path stays bit-identical.
    self.world().enable_integrity(common_->hints.integrity);
  }
  // Collective open semantics: nobody proceeds until everyone has opened.
  mpi::barrier(self, comm);
  if (amode & kModeAppend) {
    position_ = self.world().fs().file_size(common_->fs_id) /
                view_.etype_size();
  }
}

void FileHandle::require_writable() const {
  if (amode_ & kModeRdonly) {
    throw std::logic_error("FileHandle: write on a read-only handle");
  }
}

void FileHandle::require_readable() const {
  if (amode_ & kModeWronly) {
    throw std::logic_error("FileHandle: read on a write-only handle");
  }
}

void FileHandle::set_view(std::uint64_t disp, std::uint64_t etype_size,
                          const dtype::Datatype& filetype) {
  view_ = FileView(disp, etype_size, filetype);
  engine_cache_.reset();  // the access pattern may change with the view
  position_ = 0;          // MPI_File_set_view resets the file pointers
}

void FileHandle::seek(std::int64_t offset, Whence whence) {
  std::int64_t base = 0;
  switch (whence) {
    case Whence::Set:
      base = 0;
      break;
    case Whence::Cur:
      base = static_cast<std::int64_t>(position_);
      break;
    case Whence::End: {
      if (!view_.contiguous()) {
        throw std::logic_error(
            "FileHandle::seek: Whence::End requires a contiguous view");
      }
      const std::uint64_t bytes = size() > view_.disp() ? size() - view_.disp() : 0;
      base = static_cast<std::int64_t>(bytes / view_.etype_size());
      break;
    }
  }
  const std::int64_t target = base + offset;
  if (target < 0) {
    throw std::invalid_argument("FileHandle::seek: negative file position");
  }
  position_ = static_cast<std::uint64_t>(target);
}

void FileHandle::advance_bytes(std::uint64_t bytes) {
  position_ += bytes / view_.etype_size();
}

void FileHandle::write(const void* buffer, std::uint64_t count,
                       const dtype::Datatype& memtype) {
  write_at(position_, buffer, count, memtype);
  advance_bytes(count * memtype.size());
}

void FileHandle::read(void* buffer, std::uint64_t count,
                      const dtype::Datatype& memtype) {
  read_at(position_, buffer, count, memtype);
  advance_bytes(count * memtype.size());
}

void FileHandle::sync() {
  // MPI_File_sync promises durability, so staged burst-buffer data must
  // land first (wait charged to DrainWait by the store).
  if (common_->bb) {
    common_->bb->flush_all(self_);
  }
  // A flush round trip to the servers; data is already durable in the
  // simulated store, so only the latency matters.
  const double start = self_.now();
  self_.engine().sleep(0.5e-3);
  self_.times().add(mpi::TimeCat::IO, self_.now() - start);
}

namespace {
/// Fetch-and-add on the shared pointer: one metadata server round trip.
std::uint64_t claim_shared(mpi::Rank& self, FileCommon& common,
                           std::uint64_t etypes) {
  self.busy(mpi::TimeCat::IO, 0.25e-3);  // pointer-server round trip
  const std::uint64_t at = common.shared_position;
  common.shared_position += etypes;
  return at;
}
}  // namespace

void FileHandle::write_shared(const void* buffer, std::uint64_t count,
                              const dtype::Datatype& memtype) {
  const std::uint64_t etypes = count * memtype.size() / view_.etype_size();
  const std::uint64_t at = claim_shared(self_, *common_, etypes);
  write_at(at, buffer, count, memtype);
}

void FileHandle::read_shared(void* buffer, std::uint64_t count,
                             const dtype::Datatype& memtype) {
  const std::uint64_t etypes = count * memtype.size() / view_.etype_size();
  const std::uint64_t at = claim_shared(self_, *common_, etypes);
  read_at(at, buffer, count, memtype);
}

mpi::TimeBreakdown FileHandle::time_delta(const mpi::TimeBreakdown& before,
                                          const mpi::TimeBreakdown& after) {
  mpi::TimeBreakdown delta;
  for (std::size_t i = 0; i < mpi::kNumTimeCats; ++i) {
    delta.seconds[i] = after.seconds[i] - before.seconds[i];
  }
  return delta;
}

PreparedRequest FileHandle::prepare_write(std::uint64_t offset,
                                          const void* buffer,
                                          std::uint64_t count,
                                          const dtype::Datatype& memtype) {
  PreparedRequest request;
  request.bytes = count * memtype.size();
  request.extents = view_.map(offset, request.bytes);
  if (buffer != nullptr && request.bytes > 0) {
    request.packed.resize(request.bytes);
    dtype::pack(buffer, memtype, count, request.packed.data());
  }
  self_.touch_bytes(static_cast<double>(request.bytes));  // pack cost
  return request;
}

PreparedRequest FileHandle::prepare_read(std::uint64_t offset,
                                         const void* buffer,
                                         std::uint64_t count,
                                         const dtype::Datatype& memtype) {
  PreparedRequest request;
  request.bytes = count * memtype.size();
  request.extents = view_.map(offset, request.bytes);
  if (buffer != nullptr && request.bytes > 0) {
    request.packed.resize(request.bytes);
  }
  return request;
}

void FileHandle::finish_read(PreparedRequest& request, void* buffer,
                             std::uint64_t count,
                             const dtype::Datatype& memtype) {
  if (buffer != nullptr && !request.packed.empty()) {
    dtype::unpack(request.packed.data(), memtype, count, buffer);
  }
  self_.touch_bytes(static_cast<double>(request.bytes));  // unpack cost
}

void FileHandle::write_at(std::uint64_t offset, const void* buffer,
                          std::uint64_t count, const dtype::Datatype& memtype) {
  require_writable();
  const auto before = time_snapshot();
  PreparedRequest request = prepare_write(offset, buffer, count, memtype);
  if (auto* integ = self_.world().integrity()) {
    const double seconds = integ->register_write(self_.rank(), fs_id(),
                                                 request.extents,
                                                 request.data());
    if (seconds > 0) self_.busy(mpi::TimeCat::Integrity, seconds);
  }
  // Independent writes go straight to the filesystem; overlapping staged
  // burst-buffer data must land first so the later write still wins.
  if (common_->bb && !common_->bb->idle()) {
    common_->bb->flush_overlapping(self_, request.extents);
  }
  DirectTarget target(self_.world().fs(), fs_id());
  const bool lock = atomic_ && !request.extents.empty();
  fs::Extent span{};
  if (lock) {
    span = fs::Extent{request.extents.front().offset,
                      request.extents.back().end() -
                          request.extents.front().offset};
    self_.world().fs().range_locks().lock(self_.rank(), fs_id(), span);
  }
  target.write(self_, request.extents, request.data());
  if (lock) {
    self_.world().fs().range_locks().unlock(self_.rank(), fs_id(), span);
  }
  FileStats delta;
  delta.time = time_delta(before, time_snapshot());
  delta.bytes_written = request.bytes;
  delta.independent_writes = 1;
  add_stats(delta);
}

void FileHandle::read_at(std::uint64_t offset, void* buffer,
                         std::uint64_t count, const dtype::Datatype& memtype) {
  require_readable();
  const auto before = time_snapshot();
  PreparedRequest request = prepare_read(offset, buffer, count, memtype);
  // Read-your-writes: staged data covering these extents must land first.
  if (common_->bb && !common_->bb->idle()) {
    common_->bb->flush_overlapping(self_, request.extents);
  }
  // Client-side read verification, after the bb flush (staged-undrained
  // data would otherwise mismatch the registered checksums): latent store
  // corruption under these extents is healed (Repair) or recorded (Detect)
  // before the bytes are returned.
  if (auto* integ = self_.world().integrity()) {
    const double seconds = integ->verify_ranges(
        self_.rank(), fs_id(), request.extents, self_.world().fs().store());
    if (seconds > 0) self_.busy(mpi::TimeCat::Integrity, seconds);
  }
  DirectTarget target(self_.world().fs(), fs_id());
  target.read(self_, request.extents, request.packed.empty()
                                          ? nullptr
                                          : request.packed.data());
  finish_read(request, buffer, count, memtype);
  FileStats delta;
  delta.time = time_delta(before, time_snapshot());
  delta.bytes_read = request.bytes;
  delta.independent_reads = 1;
  add_stats(delta);
}

void FileHandle::close() {
  if (!open_) {
    throw std::logic_error("FileHandle::close: already closed");
  }
  open_ = false;
  if (common_->bb) {
    // Everyone arrives before the final flush, so no rank can still be
    // staging writes while the drain completes. Close-time durability:
    // every staged byte reaches Lustre before close returns.
    mpi::barrier(self_, common_->comm);
    common_->bb->flush_all(self_);
    if (common_->comm.local_rank(self_.rank()) == 0) {
      // One rank folds the store's hidden drain time and event counters
      // into the file stats (deltas: the store outlives handles).
      FileStats delta;
      delta.time = common_->bb->harvest_drain_time();
      const bb::BbCounters counters = common_->bb->harvest_counters();
      delta.bb_staged_segments = counters.staged_segments;
      delta.bb_staged_bytes = counters.staged_bytes;
      delta.bb_drained_bytes = counters.drained_bytes;
      delta.bb_spills = counters.spills;
      delta.bb_spill_bytes = counters.spill_bytes;
      delta.bb_conflict_flushes = counters.conflict_flushes;
      delta.bb_drain_retries = counters.drain_retries;
      delta.bb_drain_failovers = counters.drain_failovers;
      add_stats(delta);
    }
  }
  if (auto* integ = self_.world().integrity()) {
    // Close-time integrity sweep: everyone arrives first so no rank can
    // still be writing, then one rank re-verifies every registered block
    // (the hard guarantee behind the scrubber's best-effort passes) and
    // folds the pipeline counters into the file stats.
    mpi::barrier(self_, common_->comm);
    if (common_->comm.local_rank(self_.rank()) == 0) {
      const double seconds = integ->scrub_all(
          self_.rank(), self_.world().fs().store(), /*by_scrubber=*/false);
      if (seconds > 0) self_.busy(mpi::TimeCat::Integrity, seconds);
      const fs::IntegrityCounters harvest = integ->harvest();
      FileStats delta;
      delta.integrity_blocks = harvest.blocks;
      delta.integrity_bytes = harvest.bytes_checksummed;
      delta.corrupt_detected = harvest.detected;
      delta.corrupt_repaired = harvest.repaired;
      delta.scrub_repairs = harvest.scrub_repairs;
      delta.integrity_errors = harvest.errors;
      add_stats(delta);
      if (auto* metrics = self_.world().metrics()) {
        metrics->counter("integrity.blocks") += harvest.blocks;
        metrics->counter("integrity.bytes") += harvest.bytes_checksummed;
        metrics->counter("integrity.detected") += harvest.detected;
        metrics->counter("integrity.repaired") += harvest.repaired;
        metrics->counter("integrity.scrub_repairs") += harvest.scrub_repairs;
        metrics->counter("integrity.errors") += harvest.errors;
      }
    }
    // Collective error agreement: recovery-exhausted extents surface as
    // the identical CollectiveIoError on every rank, or on none.
    const std::uint64_t word =
        mpi::allreduce_max(self_, common_->comm, integ->pending_word());
    if (word != 0) {
      mpi::barrier(self_, common_->comm);
      throw integ->error_of(word);
    }
  }
  mpi::barrier(self_, common_->comm);
}

}  // namespace parcoll::mpiio
