// Periodic checkpointing, Flash-style: an AMR "simulation" holds guarded
// blocks of zones in memory and periodically dumps every variable to a
// shared checkpoint file with partitioned collective I/O.
//
// Demonstrates: non-contiguous memory datatypes (guard-cell interiors),
// interleaved dataset layouts via file views, repeated collective calls
// reusing one persistent subgroup partition, and the per-file close
// summary.
#include <cstdio>
#include <vector>

#include "core/parcoll.hpp"
#include "mpi/collectives.hpp"
#include "mpi/runtime.hpp"
#include "mpiio/file.hpp"

namespace {

constexpr int kRanks = 32;
constexpr int kZones = 8;    // interior zones per block side
constexpr int kGuard = 2;    // guard cells per side
constexpr int kBlocks = 4;   // blocks per rank
constexpr int kVars = 6;     // checkpointed variables
constexpr int kSteps = 3;    // checkpoints written

using parcoll::dtype::Datatype;

/// The nxb^3 interior of a guarded block.
Datatype interior() {
  const std::int64_t full = kZones + 2 * kGuard;
  const std::int64_t sizes[3] = {full, full, full};
  const std::int64_t subsizes[3] = {kZones, kZones, kZones};
  const std::int64_t starts[3] = {kGuard, kGuard, kGuard};
  return Datatype::subarray(sizes, subsizes, starts, Datatype::bytes(8));
}

/// One variable's dataset: this rank's blocks interleave with everyone
/// else's by global block id (AMR ordering).
Datatype dataset_slots(int rank) {
  const std::uint64_t block_bytes =
      static_cast<std::uint64_t>(kZones) * kZones * kZones * 8;
  std::vector<parcoll::dtype::Segment> slots;
  for (int b = 0; b < kBlocks; ++b) {
    const std::int64_t slot = static_cast<std::int64_t>(b) * kRanks + rank;
    slots.push_back({slot * static_cast<std::int64_t>(block_bytes),
                     block_bytes});
  }
  return Datatype::from_segments(
      std::move(slots), 0,
      static_cast<std::int64_t>(block_bytes) * kRanks * kBlocks);
}

}  // namespace

int main() {
  using namespace parcoll;
  mpi::World world(machine::MachineModel::jaguar(kRanks));

  mpiio::Hints hints;
  hints.parcoll_num_groups = 8;
  hints.parcoll_min_group_size = 4;

  world.run([&](mpi::Rank& self) {
    const Datatype memtype = interior();
    const std::uint64_t guarded =
        static_cast<std::uint64_t>(memtype.extent()) * kBlocks;
    std::vector<double> zones(guarded / sizeof(double), 0.0);
    const std::uint64_t var_etypes =
        static_cast<std::uint64_t>(kZones) * kZones * kZones * kBlocks;

    for (int step = 0; step < kSteps; ++step) {
      // "Advance the simulation": touch the interior zones.
      for (auto& z : zones) z += 1.0;

      char name[64];
      std::snprintf(name, sizeof(name), "flash_chk_%04d", step);
      mpiio::FileHandle file(self, self.comm_world(), name, hints);
      file.set_view(0, 8, dataset_slots(self.rank()));

      const double t0 = self.now();
      for (int v = 0; v < kVars; ++v) {
        core::write_at_all(file, static_cast<std::uint64_t>(v) * var_etypes,
                           zones.data(), kBlocks, memtype);
      }
      mpi::barrier(self, self.comm_world());
      if (self.rank() == 0) {
        const auto& stats = file.stats();
        std::printf("checkpoint %d: %.1f MiB in %.4f s (groups=%d)\n", step,
                    static_cast<double>(stats.bytes_written) / (1 << 20),
                    self.now() - t0, stats.last_num_groups);
      }
      if (step == kSteps - 1 && self.rank() == 0) {
        std::printf("%s\n", file.stats().summary(name).c_str());
      }
      file.close();
    }

    // Restart: read the last checkpoint back collectively and check that
    // the recovered zones match the final simulation state.
    {
      char name[64];
      std::snprintf(name, sizeof(name), "flash_chk_%04d", kSteps - 1);
      mpiio::FileHandle file(self, self.comm_world(), name, hints,
                             mpiio::kModeRdonly);
      file.set_view(0, 8, dataset_slots(self.rank()));
      std::vector<double> recovered(zones.size(), 0.0);
      core::read_at_all(file, 0, recovered.data(), kBlocks, memtype);
      // Interior zones must equal the written state (kSteps increments);
      // guard cells were never written and stay zero.
      bool ok = true;
      const auto interior_type = interior();
      for (const auto& seg : interior_type.segments()) {
        for (std::uint64_t b = 0; ok && b < seg.length / 8; ++b) {
          const auto index =
              (static_cast<std::uint64_t>(seg.disp) + b * 8) / 8;
          if (recovered[index] != static_cast<double>(kSteps)) ok = false;
        }
      }
      if (self.rank() == 0) {
        std::printf("restart: recovered state %s\n",
                    ok ? "verified" : "MISMATCH");
      }
      file.close();
    }
  });
  std::printf("simulated wall time: %.4f s\n", world.elapsed());
  return 0;
}
