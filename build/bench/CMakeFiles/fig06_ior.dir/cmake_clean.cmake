file(REMOVE_RECURSE
  "CMakeFiles/fig06_ior.dir/fig06_ior.cpp.o"
  "CMakeFiles/fig06_ior.dir/fig06_ior.cpp.o.d"
  "fig06_ior"
  "fig06_ior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_ior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
