// Execution tracing: per-rank timelines of where virtual time goes.
//
// When enabled on a World, every charge to a rank's TimeAccount records a
// Phase leaf in a hierarchical span store (obs::SpanStore): collective
// calls, ParColl subgroups, and exchange/I-O cycles open enclosing spans,
// so each interval knows *which cycle of which call* produced it. The
// original flat TraceEvent list, the CSV export, and the text Gantt chart
// survive as views over the Phase leaves — which still make the collective
// wall visible: synchronization intervals piling up behind the slowest
// rank of each cycle. The span tree additionally feeds the Chrome-trace
// exporter and the wall-report analysis (src/obs/).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mpi/timecat.hpp"
#include "obs/span.hpp"

namespace parcoll::mpi {

class Rank;

struct TraceEvent {
  int rank = 0;
  TimeCat cat = TimeCat::Compute;
  double begin = 0;
  double end = 0;
};

class Tracer {
 public:
  /// Record a completed interval (a Phase leaf under the stream's
  /// currently open span). Empty and negative intervals are dropped. The
  /// stream identifies the recording fiber; the two-argument form uses the
  /// rank id, which is only correct when the rank runs a single fiber
  /// (tests and hand-rolled traces).
  void record(std::uint64_t stream, int rank, TimeCat cat, double begin,
              double end) {
    store_.leaf(stream, rank, cat, begin, end);
    dirty_ = true;
  }
  void record(int rank, TimeCat cat, double begin, double end) {
    record(static_cast<std::uint64_t>(rank), rank, cat, begin, end);
  }

  /// The structured span tree (calls, subgroups, stages, phase leaves).
  [[nodiscard]] const obs::SpanStore& spans() const { return store_; }
  [[nodiscard]] obs::SpanStore& spans() { return store_; }

  /// Flat view of the Phase leaves, in recording order — the historical
  /// TraceEvent interface. Rebuilt lazily after new recordings.
  [[nodiscard]] const std::vector<TraceEvent>& events() const;

  void clear() {
    store_.clear();
    events_.clear();
    dirty_ = false;
  }

  /// CSV: rank,category,begin,end (header included).
  void write_csv(std::ostream& os) const;

  /// Text Gantt chart: one row per rank (up to `max_ranks`), `width` time
  /// bins from 0 to the last event. Each cell shows the category that
  /// dominates the bin: '.' idle, 'c' compute, 'p' p2p, 'S' sync, 'I' io,
  /// 'F' faulted, 'n' intra-node aggregation.
  [[nodiscard]] std::string gantt(int width = 72, int max_ranks = 16) const;

 private:
  obs::SpanStore store_;
  mutable std::vector<TraceEvent> events_;
  mutable bool dirty_ = false;
};

/// RAII structural span: opens a Call/Subgroup/Stage span on construction
/// and closes it on destruction. A no-op when the world's tracer is off,
/// so protocol code can scope spans unconditionally. Never advances the
/// simulated clock.
class SpanGuard {
 public:
  SpanGuard(Rank& self, obs::SpanKind kind, const char* name,
            std::int64_t group = -1, std::int64_t cycle = -1);
  ~SpanGuard();

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  Rank* rank_ = nullptr;
  obs::SpanId id_ = obs::kNoSpan;
};

}  // namespace parcoll::mpi
