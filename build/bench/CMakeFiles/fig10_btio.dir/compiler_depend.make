# Empty compiler generated dependencies file for fig10_btio.
# This may be replaced when dependencies are built.
