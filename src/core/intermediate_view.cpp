#include "core/intermediate_view.hpp"

#include <algorithm>
#include <stdexcept>

namespace parcoll::core {

IntermediateMap::IntermediateMap(std::vector<MemberSegments> members) {
  members_.reserve(members.size());
  std::uint64_t expected_start = members.empty() ? 0 : members[0].inter_start;
  for (MemberSegments& in : members) {
    Member member;
    member.inter_start = in.inter_start;
    if (member.inter_start != expected_start) {
      throw std::invalid_argument(
          "IntermediateMap: member ranges must be contiguous and sorted");
    }
    member.extents = std::move(in.extents);
    member.prefix.reserve(member.extents.size());
    std::uint64_t pos = 0;
    for (const fs::Extent& extent : member.extents) {
      member.prefix.push_back(pos);
      pos += extent.length;
    }
    member.inter_end = member.inter_start + pos;
    expected_start = member.inter_end;
    total_bytes_ += pos;
    members_.push_back(std::move(member));
  }
}

std::vector<fs::Extent> IntermediateMap::translate(const fs::Extent& span) const {
  std::vector<fs::Extent> physical;
  if (span.length == 0) return physical;
  const std::uint64_t lo = span.offset;
  const std::uint64_t hi = span.end();
  // First member whose range ends beyond lo.
  auto it = std::partition_point(
      members_.begin(), members_.end(),
      [lo](const Member& m) { return m.inter_end <= lo; });
  for (; it != members_.end() && it->inter_start < hi; ++it) {
    const std::uint64_t m_lo = std::max(lo, it->inter_start) - it->inter_start;
    const std::uint64_t m_hi = std::min(hi, it->inter_end) - it->inter_start;
    if (m_lo >= m_hi) continue;
    // Walk this member's extents covering stream range [m_lo, m_hi).
    auto seg = std::upper_bound(it->prefix.begin(), it->prefix.end(), m_lo);
    std::size_t i = static_cast<std::size_t>(seg - it->prefix.begin()) - 1;
    for (; i < it->extents.size() && it->prefix[i] < m_hi; ++i) {
      const std::uint64_t seg_lo = std::max(m_lo, it->prefix[i]);
      const std::uint64_t seg_hi =
          std::min(m_hi, it->prefix[i] + it->extents[i].length);
      physical.push_back(
          fs::Extent{it->extents[i].offset + (seg_lo - it->prefix[i]),
                     seg_hi - seg_lo});
    }
  }
  std::uint64_t translated = 0;
  for (const fs::Extent& extent : physical) translated += extent.length;
  if (translated != hi - lo) {
    throw std::out_of_range(
        "IntermediateMap::translate: range not fully covered by members");
  }
  return physical;
}

std::vector<fs::Extent> IntermediateTarget::translate_all(
    std::span<const fs::Extent> extents) const {
  std::vector<fs::Extent> physical;
  for (const fs::Extent& extent : extents) {
    auto part = map_.translate(extent);
    physical.insert(physical.end(), part.begin(), part.end());
  }
  return physical;
}

void IntermediateTarget::write(mpi::Rank& self,
                               std::span<const fs::Extent> extents,
                               const std::byte* data) {
  const auto physical = translate_all(extents);
  inner_.write(self, physical, data);
}

void IntermediateTarget::read(mpi::Rank& self,
                              std::span<const fs::Extent> extents,
                              std::byte* out) {
  const auto physical = translate_all(extents);
  inner_.read(self, physical, out);
}

}  // namespace parcoll::core
