// Two-level process organization: per-node sub-communicators and leaders.
//
// Kang et al. ("Improving MPI Collective I/O Performance With Intra-node
// Request Aggregation") observe that the global coordination cost of
// two-phase collective I/O is a function of the number of *participants*,
// and that processes sharing a physical node can combine their requests
// over memory first, so only one process per node joins the inter-node
// exchange. A NodeComm captures the structure that makes that possible:
//
//   parent       the communicator a collective call runs over
//   node_comm    the parent members hosted on my physical node
//   leader_comm  one elected leader per node (the inter-node participants)
//
// Construction is deterministic and communication-free: node membership is
// a pure function of the parent communicator and the machine topology
// (correct under both Block and Cyclic mappings), and the derived context
// ids are stable hashes of the parent context — every member computes the
// identical communicators without exchanging a byte, exactly like ROMIO
// deriving its aggregator layout from the static process map.
#pragma once

#include <vector>

#include "machine/topology.hpp"
#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "node/options.hpp"

namespace parcoll::node {

struct NodeComm {
  mpi::Comm parent;
  /// Members of `parent` on my physical node, ordered by parent rank.
  mpi::Comm node_comm;
  /// One leader per occupied node, ordered by node index. Every rank holds
  /// the same member list, but only leaders participate in its traffic.
  mpi::Comm leader_comm;

  /// True when some node hosts >= 2 parent members (two-level staging has
  /// something to aggregate).
  bool multi = false;
  /// Dense index (leader_comm local rank of my node's leader) of my node.
  int my_node_index = -1;
  /// My node's leader as a node_comm local rank.
  int leader_node_local = 0;
  /// Per node index: the leader's parent-local rank.
  std::vector<int> leaders;
  /// Per node index: all members' parent-local ranks, ascending.
  std::vector<std::vector<int>> node_members;
  /// Parent-local rank -> node index.
  std::vector<int> node_index_of;

  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(leaders.size());
  }
  [[nodiscard]] bool is_leader(int parent_local) const {
    return leaders[static_cast<std::size_t>(
               node_index_of[static_cast<std::size_t>(parent_local)])] ==
           parent_local;
  }
  /// Whether the calling rank (parent local rank stored at construction)
  /// leads its node.
  [[nodiscard]] bool i_lead() const { return i_lead_; }
  [[nodiscard]] int my_parent_local() const { return my_parent_local_; }

  /// Map a set of parent-local ranks to the leader_comm-local ranks of the
  /// nodes hosting them (sorted, deduplicated). This is how an aggregator
  /// roster chosen over the parent (ParColl's Fig. 5 distribution, or a
  /// fault re-election) is carried into the leader-only inter-node stage.
  [[nodiscard]] std::vector<int> to_leader_locals(
      const std::vector<int>& parent_locals) const;

  // Filled in by make_node_comm.
  bool i_lead_ = false;
  int my_parent_local_ = -1;
};

/// True when two-level staging would aggregate anything: some physical node
/// hosts at least two members of `comm`.
[[nodiscard]] bool two_level_applicable(const machine::Topology& topology,
                                        const mpi::Comm& comm);

/// The activation rule shared by every call site: Off disables; On and
/// Auto enable exactly when applicable (so cores_per_node == 1 machines
/// never pay a structural change).
[[nodiscard]] bool two_level_active(IntranodeMode mode,
                                    const machine::Topology& topology,
                                    const mpi::Comm& comm);

/// Build the two-level structure for `comm`. Deterministic and local:
/// every member computes identical communicators. `self` supplies the
/// context-derivation service and the caller's identity.
[[nodiscard]] NodeComm make_node_comm(mpi::Rank& self, const mpi::Comm& comm,
                                      const machine::Topology& topology,
                                      LeaderPolicy policy);

}  // namespace parcoll::node
