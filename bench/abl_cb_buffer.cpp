// Ablation — the collective buffer size (cb_buffer_size).
//
// The buffer sets the exchange/I-O window: bigger windows mean fewer
// cycles (fewer per-cycle global collectives — less wall) but larger
// staging memory per aggregator and coarser pipelining. ROMIO's default,
// 4 MB, is the paper's configuration; the sweep shows how much of the
// baseline's wall could be bought back with (unaffordable, at the era's
// 2 GB nodes) staging memory, and that ParColl keeps its edge at every
// size.
#include "bench/common.hpp"
#include "workloads/tileio.hpp"

int main(int argc, char** argv) {
  const bool smoke = parcoll::bench::smoke_requested(argc, argv);
  using namespace parcoll;
  using namespace parcoll::bench;

  BenchReport report("abl_cb_buffer", argc, argv);
  const int nprocs = parcoll::bench::scaled(smoke, 256);
  const auto config = workloads::TileIOConfig::paper(nprocs);
  header("Ablation: collective buffer size",
         "Tile-IO (P=256), bandwidth vs cb_buffer_size");
  std::printf("  %-12s %14s %14s\n", "cb_buffer", "Cray (MiB/s)",
              "ParColl-32 (MiB/s)");
  for (std::uint64_t cb : {512ull << 10, 1ull << 20, 4ull << 20, 16ull << 20,
                           64ull << 20}) {
    auto base = baseline_spec();
    base.cb_buffer_size = cb;
    auto parcoll = parcoll_spec(32);
    parcoll.cb_buffer_size = cb;
    const auto b = workloads::run_tileio(config, nprocs, base, true);
    const auto p = workloads::run_tileio(config, nprocs, parcoll, true);
    std::printf("  %8llu KiB %14.1f %14.1f\n",
                static_cast<unsigned long long>(cb >> 10), b.bandwidth_mib(),
                p.bandwidth_mib());
    const std::string suffix = "/cb=" + std::to_string(cb >> 10) + "KiB";
    report.add("cray" + suffix, nprocs, b);
    report.add("parcoll-32" + suffix, nprocs, p);
  }
  footnote("bigger windows buy both fewer synchronizations at the cost of");
  footnote("per-aggregator staging memory; ParColl leads at every size and");
  footnote("reaches the same bandwidth with 16x less buffer");
  return 0;
}
