# Empty compiler generated dependencies file for abl_filesystems.
# This may be replaced when dependencies are built.
