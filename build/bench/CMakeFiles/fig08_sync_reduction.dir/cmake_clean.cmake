file(REMOVE_RECURSE
  "CMakeFiles/fig08_sync_reduction.dir/fig08_sync_reduction.cpp.o"
  "CMakeFiles/fig08_sync_reduction.dir/fig08_sync_reduction.cpp.o.d"
  "fig08_sync_reduction"
  "fig08_sync_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_sync_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
