#include "workloads/ior.hpp"

#include <stdexcept>

#include "core/parcoll.hpp"
#include "mpi/collectives.hpp"
#include "mpiio/file.hpp"
#include "mpiio/independent.hpp"
#include "mpiio/sieve.hpp"
#include "sim/random.hpp"
#include "workloads/pattern.hpp"

namespace parcoll::workloads {

namespace {
constexpr std::uint64_t kSalt = 0x10A;
}

std::vector<std::uint64_t> IorConfig::transfer_order(int rank) const {
  std::vector<std::uint64_t> order(transfers());
  for (std::uint64_t t = 0; t < order.size(); ++t) order[t] = t;
  if (random_offsets) {
    // Deterministic Fisher-Yates from the hash stream.
    for (std::uint64_t i = order.size(); i > 1; --i) {
      const std::uint64_t j =
          sim::hash_combine(sim::hash_combine(order_seed,
                                              static_cast<std::uint64_t>(rank)),
                            i) %
          i;
      std::swap(order[i - 1], order[j]);
    }
  }
  return order;
}

RunResult run_ior(const IorConfig& config, int nranks, const RunSpec& spec,
                  bool write) {
  if (config.xfer_size == 0 || config.block_size % config.xfer_size != 0) {
    throw std::invalid_argument("IorConfig: xfer_size must divide block_size");
  }
  mpi::World world(spec.model(nranks), spec.byte_true);
  world.set_fault(spec.fault);
  apply_observability(world, spec);
  const mpiio::Hints hints = spec.hints();
  PhaseClock clock;
  mpiio::FileStats final_stats;
  bool verified = true;

  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "ior.dat", hints);
    // Default (contiguous byte) view; offsets are absolute bytes.
    const dtype::Datatype memtype = dtype::Datatype::bytes(config.xfer_size);
    const std::uint64_t base =
        static_cast<std::uint64_t>(self.rank()) * config.block_size;

    std::vector<std::byte> buffer;
    if (spec.byte_true) {
      buffer.resize(config.xfer_size);
      if (!write) {
        // Pre-populate my block so the measured read returns the pattern.
        for (std::uint64_t t = 0; t < config.transfers(); ++t) {
          const fs::Extent extent{base + t * config.xfer_size,
                                  config.xfer_size};
          fill_stream(buffer.data(), std::span(&extent, 1), kSalt);
          file.write_at(extent.offset, buffer.data(), 1, memtype);
        }
      }
    }

    // IOR -C: read the block of a shifted task instead of our own.
    const std::uint64_t access_base =
        write ? base
              : static_cast<std::uint64_t>(
                    (self.rank() + config.reorder_tasks) % self.size()) *
                    config.block_size;
    const auto order = config.transfer_order(self.rank());
    mpi::barrier(self, file.comm());
    clock.begin(self.now());
    for (std::uint64_t t : order) {
      const fs::Extent extent{access_base + t * config.xfer_size,
                              config.xfer_size};
      if (spec.byte_true && write) {
        fill_stream(buffer.data(), std::span(&extent, 1), kSalt);
      }
      void* data = buffer.empty() ? nullptr : buffer.data();
      switch (spec.impl) {
        case Impl::PosixIndependent:
          write ? mpiio::posix_write_at(file, extent.offset, data, 1, memtype)
                : mpiio::posix_read_at(file, extent.offset, data, 1, memtype);
          break;
        case Impl::Sieving:
          write ? mpiio::sieve_write_at(file, extent.offset, data, 1, memtype)
                : mpiio::sieve_read_at(file, extent.offset, data, 1, memtype);
          break;
        case Impl::Independent:
          write ? file.write_at(extent.offset, data, 1, memtype)
                : file.read_at(extent.offset, data, 1, memtype);
          break;
        case Impl::Ext2ph:
        case Impl::ParColl:
          if (write) {
            core::write_at_all(file, extent.offset, data, 1, memtype);
          } else {
            core::read_at_all(file, extent.offset, data, 1, memtype);
          }
          break;
      }
      if (spec.byte_true && !write) {
        verified = verified &&
                   check_stream(buffer.data(), std::span(&extent, 1), kSalt);
      }
    }
    if (config.fsync_per_phase) {
      file.sync();
    }
    mpi::barrier(self, file.comm());
    clock.end(self.now());

    // Close before auditing and snapshotting: close drains any staged
    // burst-buffer data (making the store contents final) and folds the
    // hidden drain time and bb counters into the file stats.
    file.close();
    if (spec.byte_true && write) {
      auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
      const fs::Extent mine{base, config.block_size};
      verified = verified && store != nullptr &&
                 verify_store(*store, file.fs_id(), std::span(&mine, 1), kSalt);
    }
    if (self.rank() == 0) {
      final_stats = file.stats();
    }
  });

  RunResult result = collect(world, clock, config.file_bytes(nranks),
                             final_stats);
  result.verified = verified;
  return result;
}

}  // namespace parcoll::workloads
