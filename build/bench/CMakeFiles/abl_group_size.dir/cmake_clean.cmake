file(REMOVE_RECURSE
  "CMakeFiles/abl_group_size.dir/abl_group_size.cpp.o"
  "CMakeFiles/abl_group_size.dir/abl_group_size.cpp.o.d"
  "abl_group_size"
  "abl_group_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_group_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
