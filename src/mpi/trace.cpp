#include "mpi/trace.hpp"

#include <algorithm>
#include <array>
#include <ostream>
#include <sstream>

#include "mpi/runtime.hpp"

namespace parcoll::mpi {

const std::vector<TraceEvent>& Tracer::events() const {
  if (dirty_) {
    events_.clear();
    for (const obs::Span& span : store_.spans()) {
      if (span.kind == obs::SpanKind::Phase) {
        events_.push_back(
            TraceEvent{span.rank, span.cat, span.begin, span.end});
      }
    }
    dirty_ = false;
  }
  return events_;
}

void Tracer::write_csv(std::ostream& os) const {
  os << "rank,category,begin,end\n";
  for (const TraceEvent& event : events()) {
    os << event.rank << ',' << to_string(event.cat) << ',' << event.begin
       << ',' << event.end << '\n';
  }
}

std::string Tracer::gantt(int width, int max_ranks) const {
  const std::vector<TraceEvent>& evs = events();
  if (evs.empty() || width <= 0) {
    return "(no trace events)\n";
  }
  double horizon = 0;
  int nranks = 0;
  for (const TraceEvent& event : evs) {
    horizon = std::max(horizon, event.end);
    nranks = std::max(nranks, event.rank + 1);
  }
  const int rows = std::min(nranks, max_ranks);
  const double bin = horizon / width;

  // Per (row, bin): time per category; pick the dominant one.
  std::vector<std::array<double, kNumTimeCats>> cells(
      static_cast<std::size_t>(rows * width));
  for (const TraceEvent& event : evs) {
    if (event.rank >= rows) continue;
    const int first = std::min(width - 1, static_cast<int>(event.begin / bin));
    const int last = std::min(width - 1, static_cast<int>(event.end / bin));
    for (int b = first; b <= last; ++b) {
      const double lo = std::max(event.begin, b * bin);
      const double hi = std::min(event.end, (b + 1) * bin);
      if (hi > lo) {
        cells[static_cast<std::size_t>(event.rank * width + b)]
             [static_cast<std::size_t>(event.cat)] += hi - lo;
      }
    }
  }

  static constexpr char kGlyph[kNumTimeCats] = {'c', 'p', 'S', 'I',
                                                'F', 'n', 'd', 'D', 'k'};
  std::ostringstream os;
  os << "time 0.." << horizon
     << "s  (c=compute p=p2p S=sync I=io F=faulted n=intra d=drain "
        "D=drain_wait k=integrity .=idle)\n";
  for (int r = 0; r < rows; ++r) {
    os << "r";
    os.width(4);
    os << std::left << r << "|";
    for (int b = 0; b < width; ++b) {
      const auto& cell = cells[static_cast<std::size_t>(r * width + b)];
      double best = 0;
      int best_cat = -1;
      for (std::size_t c = 0; c < kNumTimeCats; ++c) {
        if (cell[c] > best) {
          best = cell[c];
          best_cat = static_cast<int>(c);
        }
      }
      os << (best_cat < 0 ? '.' : kGlyph[best_cat]);
    }
    os << "|\n";
  }
  if (nranks > rows) {
    os << "(+" << nranks - rows << " more ranks)\n";
  }
  return os.str();
}

SpanGuard::SpanGuard(Rank& self, obs::SpanKind kind, const char* name,
                     std::int64_t group, std::int64_t cycle) {
  Tracer* tracer = self.world().tracer();
  if (tracer == nullptr) {
    return;
  }
  tracer_ = tracer;
  rank_ = &self;
  id_ = tracer->spans().open(static_cast<std::uint64_t>(self.pid()),
                             self.rank(), kind, name, self.now(), group,
                             cycle);
}

SpanGuard::~SpanGuard() {
  if (tracer_ != nullptr) {
    tracer_->spans().close(static_cast<std::uint64_t>(rank_->pid()), id_,
                           rank_->now());
  }
}

}  // namespace parcoll::mpi
