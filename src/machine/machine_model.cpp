#include "machine/machine_model.hpp"

namespace parcoll::machine {

MachineModel MachineModel::jaguar(int nranks, Mapping mapping,
                                  int cores_per_node) {
  MachineModel model;
  model.topology = Topology(nranks, cores_per_node, mapping);
  return model;
}

MachineModel MachineModel::gpfs_like(int nranks, Mapping mapping) {
  MachineModel model = jaguar(nranks, mapping);
  auto& storage = model.storage;
  storage.num_osts = 32;                    // fewer, fatter NSD servers
  storage.default_stripe_count = 32;
  storage.default_stripe_size = 1ull << 20; // GPFS-ish block size
  storage.ost_bandwidth = 800e6;
  storage.request_overhead = 0.5e-3;
  storage.lock_revoke_overhead = 0.3e-3;    // token passing, no data flush
  storage.lock_dirty_cap = 0;
  storage.fragment_overhead = 40e-6;        // block-granular back end
  return model;
}

MachineModel MachineModel::pvfs_like(int nranks, Mapping mapping) {
  MachineModel model = jaguar(nranks, mapping);
  auto& storage = model.storage;
  storage.num_osts = 64;
  storage.default_stripe_count = 64;
  storage.default_stripe_size = 64ull << 10;  // PVFS default strip size
  storage.ost_bandwidth = 300e6;
  storage.request_overhead = 0.9e-3;
  storage.lock_revoke_overhead = 0.0;  // no client locking at all
  storage.lock_dirty_cap = 0;
  storage.flock_server_time = 0.0;
  return model;
}

}  // namespace parcoll::machine
