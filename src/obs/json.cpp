#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace parcoll::obs {

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  auto& object = std::get<Object>(value_);
  for (auto& [k, v] : object) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object.emplace_back(std::move(key), std::move(value));
  return *this;
}

void JsonValue::push(JsonValue value) {
  std::get<Array>(value_).push_back(std::move(value));
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const auto& [k, v] : std::get<Object>(value_)) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

std::int64_t JsonValue::as_int() const {
  if (type() == Type::Uint) {
    return static_cast<std::int64_t>(std::get<std::uint64_t>(value_));
  }
  if (type() == Type::Double) {
    return static_cast<std::int64_t>(std::get<double>(value_));
  }
  return std::get<std::int64_t>(value_);
}

std::uint64_t JsonValue::as_uint() const {
  if (type() == Type::Int) {
    return static_cast<std::uint64_t>(std::get<std::int64_t>(value_));
  }
  if (type() == Type::Double) {
    return static_cast<std::uint64_t>(std::get<double>(value_));
  }
  return std::get<std::uint64_t>(value_);
}

double JsonValue::as_double() const {
  switch (type()) {
    case Type::Int:
      return static_cast<double>(std::get<std::int64_t>(value_));
    case Type::Uint:
      return static_cast<double>(std::get<std::uint64_t>(value_));
    default:
      return std::get<double>(value_);
  }
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    double back = 0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) {
      out += shorter;
      return;
    }
  }
  out += buf;
}

}  // namespace

std::string JsonValue::dump(int indent) const {
  std::string out;
  // Recursive serializer shared by compact and pretty forms.
  auto emit = [&](auto&& self, const JsonValue& v, int depth) -> void {
    const bool pretty = indent >= 0;
    auto newline_pad = [&](int d) {
      if (pretty) {
        out += '\n';
        out.append(static_cast<std::size_t>(d * indent), ' ');
      }
    };
    switch (v.type()) {
      case Type::Null: out += "null"; break;
      case Type::Bool: out += v.as_bool() ? "true" : "false"; break;
      case Type::Int: out += std::to_string(std::get<std::int64_t>(v.value_)); break;
      case Type::Uint: out += std::to_string(std::get<std::uint64_t>(v.value_)); break;
      case Type::Double: append_double(out, std::get<double>(v.value_)); break;
      case Type::String: append_escaped(out, v.as_string()); break;
      case Type::Array: {
        const auto& items = v.items();
        out += '[';
        for (std::size_t i = 0; i < items.size(); ++i) {
          if (i > 0) out += ',';
          newline_pad(depth + 1);
          self(self, items[i], depth + 1);
        }
        if (!items.empty()) newline_pad(depth);
        out += ']';
        break;
      }
      case Type::Object: {
        const auto& members = v.members();
        out += '{';
        for (std::size_t i = 0; i < members.size(); ++i) {
          if (i > 0) out += ',';
          newline_pad(depth + 1);
          append_escaped(out, members[i].first);
          out += pretty ? ": " : ":";
          self(self, members[i].second, depth + 1);
        }
        if (!members.empty()) newline_pad(depth);
        out += '}';
        break;
      }
    }
  };
  emit(emit, *this, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue(string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("bad literal");
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through individually; the exporters only emit ASCII anyway).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    try {
      if (!is_double) {
        if (token[0] == '-') {
          return JsonValue(static_cast<std::int64_t>(std::stoll(token)));
        }
        return JsonValue(static_cast<std::uint64_t>(std::stoull(token)));
      }
    } catch (const std::out_of_range&) {
      // Falls through to double below.
    }
    return JsonValue(std::stod(token));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace parcoll::obs
