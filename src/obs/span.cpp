#include "obs/span.hpp"

#include <stdexcept>

namespace parcoll::obs {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::Call:     return "call";
    case SpanKind::Subgroup: return "subgroup";
    case SpanKind::Stage:    return "stage";
    case SpanKind::Phase:    return "phase";
    case SpanKind::Drain:    return "drain";
    case SpanKind::Scrub:    return "scrub";
  }
  return "?";
}

Span& SpanStore::grow(int rank) {
  if (rank < 0) {
    throw std::out_of_range("SpanStore: negative rank");
  }
  if (call_ordinals_.size() <= static_cast<std::size_t>(rank)) {
    call_ordinals_.resize(static_cast<std::size_t>(rank) + 1, 0);
  }
  Span& span = spans_.emplace_back();
  span.id = static_cast<SpanId>(spans_.size());
  span.rank = rank;
  return span;
}

SpanId SpanStore::open(std::uint64_t stream, int rank, SpanKind kind,
                       const char* name, double at, std::int64_t group,
                       std::int64_t cycle) {
  if (kind == SpanKind::Phase) {
    throw std::logic_error("SpanStore::open: Phase leaves use leaf()");
  }
  Span& span = grow(rank);
  span.kind = kind;
  span.name = name;
  span.begin = at;
  span.end = at;
  auto& stack = stacks_[stream];
  if (!stack.empty()) {
    const Span& parent = spans_[static_cast<std::size_t>(stack.back()) - 1];
    span.parent = parent.id;
    span.call = parent.call;
    span.group = parent.group;
    span.cycle = parent.cycle;
  }
  if (kind == SpanKind::Call) {
    span.call = call_ordinals_[static_cast<std::size_t>(rank)]++;
  }
  if (group >= 0) span.group = group;
  if (cycle >= 0) span.cycle = cycle;
  stack.push_back(span.id);
  return span.id;
}

void SpanStore::close(std::uint64_t stream, SpanId id, double at) {
  Span& span = spans_[static_cast<std::size_t>(id) - 1];
  auto& stack = stacks_[stream];
  if (stack.empty() || stack.back() != id) {
    throw std::logic_error(
        "SpanStore::close: spans must close LIFO per stream");
  }
  stack.pop_back();
  span.end = at;
}

void SpanStore::leaf(std::uint64_t stream, int rank, mpi::TimeCat cat,
                     double begin, double end) {
  if (end <= begin) {
    return;
  }
  Span& span = grow(rank);
  span.kind = SpanKind::Phase;
  span.cat = cat;
  span.name = mpi::to_string(cat);
  span.begin = begin;
  span.end = end;
  auto it = stacks_.find(stream);
  if (it != stacks_.end() && !it->second.empty()) {
    const Span& parent =
        spans_[static_cast<std::size_t>(it->second.back()) - 1];
    span.parent = parent.id;
    span.call = parent.call;
    span.group = parent.group;
    span.cycle = parent.cycle;
  }
}

bool SpanStore::in_call(std::uint64_t stream) const {
  const auto it = stacks_.find(stream);
  if (it == stacks_.end() || it->second.empty()) {
    return false;
  }
  return spans_[static_cast<std::size_t>(it->second.back()) - 1].call >= 0;
}

void SpanStore::clear() {
  spans_.clear();
  stacks_.clear();
  call_ordinals_.clear();
}

}  // namespace parcoll::obs
