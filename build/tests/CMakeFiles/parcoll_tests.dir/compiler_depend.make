# Empty compiler generated dependencies file for parcoll_tests.
# This may be replaced when dependencies are built.
