
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregator_dist.cpp" "src/CMakeFiles/parcoll.dir/core/aggregator_dist.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/core/aggregator_dist.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/parcoll.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/core/config.cpp.o.d"
  "/root/repo/src/core/file_area.cpp" "src/CMakeFiles/parcoll.dir/core/file_area.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/core/file_area.cpp.o.d"
  "/root/repo/src/core/intermediate_view.cpp" "src/CMakeFiles/parcoll.dir/core/intermediate_view.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/core/intermediate_view.cpp.o.d"
  "/root/repo/src/core/parcoll.cpp" "src/CMakeFiles/parcoll.dir/core/parcoll.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/core/parcoll.cpp.o.d"
  "/root/repo/src/core/split.cpp" "src/CMakeFiles/parcoll.dir/core/split.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/core/split.cpp.o.d"
  "/root/repo/src/core/subgroup.cpp" "src/CMakeFiles/parcoll.dir/core/subgroup.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/core/subgroup.cpp.o.d"
  "/root/repo/src/dtype/datatype.cpp" "src/CMakeFiles/parcoll.dir/dtype/datatype.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/dtype/datatype.cpp.o.d"
  "/root/repo/src/dtype/flatten.cpp" "src/CMakeFiles/parcoll.dir/dtype/flatten.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/dtype/flatten.cpp.o.d"
  "/root/repo/src/dtype/pack.cpp" "src/CMakeFiles/parcoll.dir/dtype/pack.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/dtype/pack.cpp.o.d"
  "/root/repo/src/dtype/segments.cpp" "src/CMakeFiles/parcoll.dir/dtype/segments.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/dtype/segments.cpp.o.d"
  "/root/repo/src/fs/lustre.cpp" "src/CMakeFiles/parcoll.dir/fs/lustre.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/fs/lustre.cpp.o.d"
  "/root/repo/src/fs/object_store.cpp" "src/CMakeFiles/parcoll.dir/fs/object_store.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/fs/object_store.cpp.o.d"
  "/root/repo/src/fs/ost.cpp" "src/CMakeFiles/parcoll.dir/fs/ost.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/fs/ost.cpp.o.d"
  "/root/repo/src/fs/range_lock.cpp" "src/CMakeFiles/parcoll.dir/fs/range_lock.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/fs/range_lock.cpp.o.d"
  "/root/repo/src/fs/stripe.cpp" "src/CMakeFiles/parcoll.dir/fs/stripe.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/fs/stripe.cpp.o.d"
  "/root/repo/src/h5lite/h5lite.cpp" "src/CMakeFiles/parcoll.dir/h5lite/h5lite.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/h5lite/h5lite.cpp.o.d"
  "/root/repo/src/machine/machine_model.cpp" "src/CMakeFiles/parcoll.dir/machine/machine_model.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/machine/machine_model.cpp.o.d"
  "/root/repo/src/machine/topology.cpp" "src/CMakeFiles/parcoll.dir/machine/topology.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/machine/topology.cpp.o.d"
  "/root/repo/src/mpi/collectives.cpp" "src/CMakeFiles/parcoll.dir/mpi/collectives.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/mpi/collectives.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/CMakeFiles/parcoll.dir/mpi/comm.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/mpi/comm.cpp.o.d"
  "/root/repo/src/mpi/p2p.cpp" "src/CMakeFiles/parcoll.dir/mpi/p2p.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/mpi/p2p.cpp.o.d"
  "/root/repo/src/mpi/runtime.cpp" "src/CMakeFiles/parcoll.dir/mpi/runtime.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/mpi/runtime.cpp.o.d"
  "/root/repo/src/mpi/timecat.cpp" "src/CMakeFiles/parcoll.dir/mpi/timecat.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/mpi/timecat.cpp.o.d"
  "/root/repo/src/mpi/trace.cpp" "src/CMakeFiles/parcoll.dir/mpi/trace.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/mpi/trace.cpp.o.d"
  "/root/repo/src/mpiio/async.cpp" "src/CMakeFiles/parcoll.dir/mpiio/async.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/mpiio/async.cpp.o.d"
  "/root/repo/src/mpiio/ext2ph.cpp" "src/CMakeFiles/parcoll.dir/mpiio/ext2ph.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/mpiio/ext2ph.cpp.o.d"
  "/root/repo/src/mpiio/file.cpp" "src/CMakeFiles/parcoll.dir/mpiio/file.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/mpiio/file.cpp.o.d"
  "/root/repo/src/mpiio/hints.cpp" "src/CMakeFiles/parcoll.dir/mpiio/hints.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/mpiio/hints.cpp.o.d"
  "/root/repo/src/mpiio/independent.cpp" "src/CMakeFiles/parcoll.dir/mpiio/independent.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/mpiio/independent.cpp.o.d"
  "/root/repo/src/mpiio/sieve.cpp" "src/CMakeFiles/parcoll.dir/mpiio/sieve.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/mpiio/sieve.cpp.o.d"
  "/root/repo/src/mpiio/stats.cpp" "src/CMakeFiles/parcoll.dir/mpiio/stats.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/mpiio/stats.cpp.o.d"
  "/root/repo/src/mpiio/view.cpp" "src/CMakeFiles/parcoll.dir/mpiio/view.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/mpiio/view.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/parcoll.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/net/network.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/parcoll.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/fiber.cpp" "src/CMakeFiles/parcoll.dir/sim/fiber.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/sim/fiber.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/CMakeFiles/parcoll.dir/sim/random.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/sim/random.cpp.o.d"
  "/root/repo/src/workloads/btio.cpp" "src/CMakeFiles/parcoll.dir/workloads/btio.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/workloads/btio.cpp.o.d"
  "/root/repo/src/workloads/flashio.cpp" "src/CMakeFiles/parcoll.dir/workloads/flashio.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/workloads/flashio.cpp.o.d"
  "/root/repo/src/workloads/ior.cpp" "src/CMakeFiles/parcoll.dir/workloads/ior.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/workloads/ior.cpp.o.d"
  "/root/repo/src/workloads/pattern.cpp" "src/CMakeFiles/parcoll.dir/workloads/pattern.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/workloads/pattern.cpp.o.d"
  "/root/repo/src/workloads/runner.cpp" "src/CMakeFiles/parcoll.dir/workloads/runner.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/workloads/runner.cpp.o.d"
  "/root/repo/src/workloads/tileio.cpp" "src/CMakeFiles/parcoll.dir/workloads/tileio.cpp.o" "gcc" "src/CMakeFiles/parcoll.dir/workloads/tileio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
