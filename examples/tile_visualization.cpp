// Tiled visualization output — the access pattern the paper's MPI-Tile-IO
// experiments model (Fig. 4b): each rank renders one tile of a 2-D frame
// and all ranks dump the frame with one collective write.
//
// Demonstrates: subarray file views, the FA partition decision
// (plan_decision), and the baseline-vs-ParColl comparison on one pattern.
#include <cstdio>
#include <vector>

#include "core/parcoll.hpp"
#include "mpi/collectives.hpp"
#include "mpi/runtime.hpp"
#include "mpiio/file.hpp"
#include "workloads/pattern.hpp"

namespace {

constexpr int kRanks = 64;
constexpr int kTilesX = 8;                      // 8x8 tile grid
constexpr std::uint64_t kTileW = 64;            // pixels
constexpr std::uint64_t kTileH = 48;
constexpr std::uint64_t kPixel = 16;            // bytes per pixel

parcoll::dtype::Datatype tile_view(int rank) {
  using parcoll::dtype::Datatype;
  const std::int64_t sizes[2] = {(kRanks / kTilesX) * kTileH,
                                 kTilesX * kTileW};
  const std::int64_t subsizes[2] = {kTileH, kTileW};
  const std::int64_t starts[2] = {
      static_cast<std::int64_t>(rank / kTilesX) *
          static_cast<std::int64_t>(kTileH),
      static_cast<std::int64_t>(rank % kTilesX) *
          static_cast<std::int64_t>(kTileW)};
  return Datatype::subarray(sizes, subsizes, starts, Datatype::bytes(kPixel));
}

double render_frame(int groups) {
  using namespace parcoll;
  mpi::World world(machine::MachineModel::jaguar(kRanks));
  mpiio::Hints hints;
  hints.parcoll_num_groups = groups;
  hints.parcoll_min_group_size = 4;
  double elapsed = 0;
  bool first = true;

  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "frame.raw", hints);
    file.set_view(0, kPixel, tile_view(self.rank()));

    // "Render" the tile: deterministic pixels so the file can be audited.
    const std::uint64_t tile_bytes = kTileW * kTileH * kPixel;
    const dtype::Datatype memtype = dtype::Datatype::bytes(tile_bytes);
    std::vector<std::byte> pixels(tile_bytes);
    const auto extents = file.view().map(0, tile_bytes);
    workloads::fill_buffer_for_extents(pixels.data(), memtype, 1, extents, 99);

    if (groups > 1 && self.rank() == 0 && first) {
      first = false;
      const auto decision = core::plan_decision(file, 0, 1, memtype);
      std::printf("    partition: %s\n", decision.describe().c_str());
    } else if (groups > 1) {
      // plan_decision is collective: everyone participates.
      core::plan_decision(file, 0, 1, memtype);
    }

    mpi::barrier(self, self.comm_world());
    const double t0 = self.now();
    core::write_at_all(file, 0, pixels.data(), 1, memtype);
    mpi::barrier(self, self.comm_world());
    if (self.rank() == 0) elapsed = self.now() - t0;

    auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
    if (!workloads::verify_store(*store, file.fs_id(), extents, 99)) {
      std::printf("    !! tile of rank %d verified wrong\n", self.rank());
    }
    file.close();
  });
  return elapsed;
}

}  // namespace

int main() {
  std::printf("tiled frame dump, %d ranks, %llux%llu tiles of %llu B pixels\n",
              kRanks, static_cast<unsigned long long>(kTileW),
              static_cast<unsigned long long>(kTileH),
              static_cast<unsigned long long>(kPixel));
  const double base = render_frame(0);
  std::printf("  baseline (ext2ph): %8.3f ms per frame\n", base * 1e3);
  for (int groups : {2, 4, 8}) {
    const double t = render_frame(groups);
    std::printf("  ParColl-%d:         %8.3f ms per frame (%.2fx)\n", groups,
                t * 1e3, base / t);
  }
  return 0;
}
