#include "sim/fiber.hpp"

#include <cstdint>
#include <stdexcept>
#include <utility>

// ucontext swaps stacks behind AddressSanitizer's back. Without the fiber
// annotations ASan believes the OS thread stack is still current, so an
// exception thrown on a fiber stack (__asan_handle_no_return) unpoisons the
// wrong region and aborts with a bogus stack-use-after-scope. Announce every
// switch when compiled with ASan; plain builds compile the hooks away.
#if defined(__SANITIZE_ADDRESS__)
#define PARCOLL_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PARCOLL_ASAN_FIBERS 1
#endif
#endif

#if defined(PARCOLL_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

namespace parcoll::sim {
namespace {

inline void asan_start_switch([[maybe_unused]] void** save,
                              [[maybe_unused]] const void* target_bottom,
                              [[maybe_unused]] std::size_t target_size) {
#if defined(PARCOLL_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(save, target_bottom, target_size);
#endif
}

inline void asan_finish_switch([[maybe_unused]] void* saved,
                               [[maybe_unused]] const void** old_bottom,
                               [[maybe_unused]] std::size_t* old_size) {
#if defined(PARCOLL_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(saved, old_bottom, old_size);
#endif
}

}  // namespace

thread_local Fiber* Fiber::current_ = nullptr;

Fiber::Fiber(Body body, std::size_t stack_bytes)
    : stack_(new char[stack_bytes]),
      stack_bytes_(stack_bytes),
      body_(std::move(body)) {
  if (getcontext(&context_) != 0) {
    throw std::runtime_error("Fiber: getcontext failed");
  }
  context_.uc_stack.ss_sp = stack_.get();
  context_.uc_stack.ss_size = stack_bytes;
  context_.uc_link = &return_point_;
  // makecontext only passes ints, so smuggle `this` through two halves.
  auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned int>(self >> 32),
              static_cast<unsigned int>(self & 0xffffffffu));
}

Fiber::~Fiber() = default;

void Fiber::trampoline(unsigned int ptr_hi, unsigned int ptr_lo) {
  auto self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(ptr_hi) << 32) |
      static_cast<std::uintptr_t>(ptr_lo));
  // First time on this stack: complete the switch the scheduler started and
  // learn the scheduler stack bounds for the trips back.
  asan_finish_switch(nullptr, &self->asan_sched_stack_bottom_,
                     &self->asan_sched_stack_size_);
  self->run_body();
  // Returning lets ucontext follow uc_link back to return_point_. The fiber
  // is done for good, so pass no save slot: ASan frees its fake stack.
  asan_start_switch(nullptr, self->asan_sched_stack_bottom_,
                    self->asan_sched_stack_size_);
}

void Fiber::run_body() {
  try {
    body_();
  } catch (...) {
    exception_ = std::current_exception();
  }
  finished_ = true;
  current_ = nullptr;
}

void Fiber::resume() {
  if (finished_) {
    throw std::logic_error("Fiber::resume on finished fiber");
  }
  if (current_ != nullptr) {
    throw std::logic_error("Fiber::resume called from inside a fiber");
  }
  started_ = true;
  current_ = this;
  void* sched_fake_stack = nullptr;
  asan_start_switch(&sched_fake_stack, stack_.get(), stack_bytes_);
  swapcontext(&return_point_, &context_);
  asan_finish_switch(sched_fake_stack, nullptr, nullptr);
  // Back on the scheduler: either the fiber yielded or it finished.
  if (finished_ && exception_) {
    std::exception_ptr rethrown = std::exchange(exception_, nullptr);
    std::rethrow_exception(rethrown);
  }
}

void Fiber::yield() {
  if (current_ != this) {
    throw std::logic_error("Fiber::yield called from the wrong context");
  }
  current_ = nullptr;
  asan_start_switch(&asan_fake_stack_, asan_sched_stack_bottom_,
                    asan_sched_stack_size_);
  swapcontext(&context_, &return_point_);
  asan_finish_switch(asan_fake_stack_, &asan_sched_stack_bottom_,
                     &asan_sched_stack_size_);
  current_ = this;
}

}  // namespace parcoll::sim
