#include "workloads/pattern.hpp"

#include <stdexcept>

#include "dtype/pack.hpp"
#include "sim/random.hpp"

namespace parcoll::workloads {

std::byte pattern_byte(std::uint64_t salt, std::uint64_t position) {
  // Cheap but position-sensitive: adjacent offsets give different bytes, so
  // any misplacement (off-by-one, swapped pieces) is caught.
  const std::uint64_t h = sim::mix64(salt * 0x9e3779b97f4a7c15ull + position);
  return static_cast<std::byte>(h & 0xff);
}

void fill_stream(std::byte* stream, std::span<const fs::Extent> extents,
                 std::uint64_t salt) {
  std::uint64_t pos = 0;
  for (const fs::Extent& extent : extents) {
    for (std::uint64_t i = 0; i < extent.length; ++i) {
      stream[pos++] = pattern_byte(salt, extent.offset + i);
    }
  }
}

bool check_stream(const std::byte* stream, std::span<const fs::Extent> extents,
                  std::uint64_t salt) {
  std::uint64_t pos = 0;
  for (const fs::Extent& extent : extents) {
    for (std::uint64_t i = 0; i < extent.length; ++i) {
      if (stream[pos++] != pattern_byte(salt, extent.offset + i)) {
        return false;
      }
    }
  }
  return true;
}

void fill_buffer_for_extents(void* buffer, const dtype::Datatype& memtype,
                             std::uint64_t count,
                             std::span<const fs::Extent> extents,
                             std::uint64_t salt) {
  std::uint64_t total = 0;
  for (const fs::Extent& extent : extents) total += extent.length;
  if (total != count * memtype.size()) {
    throw std::invalid_argument(
        "fill_buffer_for_extents: extent total != buffer data size");
  }
  std::vector<std::byte> stream(total);
  fill_stream(stream.data(), extents, salt);
  dtype::unpack(stream.data(), memtype, count, buffer);
}

bool check_buffer_for_extents(const void* buffer,
                              const dtype::Datatype& memtype,
                              std::uint64_t count,
                              std::span<const fs::Extent> extents,
                              std::uint64_t salt) {
  std::uint64_t total = 0;
  for (const fs::Extent& extent : extents) total += extent.length;
  std::vector<std::byte> stream(total);
  dtype::pack(buffer, memtype, count, stream.data());
  return check_stream(stream.data(), extents, salt);
}

bool verify_store(const fs::MemoryStore& store, int file_id,
                  std::span<const fs::Extent> extents, std::uint64_t salt) {
  std::uint64_t total = 0;
  for (const fs::Extent& extent : extents) total += extent.length;
  if (total == 0) return true;  // nothing to check, file may not even exist
  const auto& contents = store.contents(file_id);
  for (const fs::Extent& extent : extents) {
    if (extent.end() > contents.size()) return false;
    for (std::uint64_t i = 0; i < extent.length; ++i) {
      if (contents[extent.offset + i] !=
          pattern_byte(salt, extent.offset + i)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace parcoll::workloads
