// Interconnect model.
//
// Point-to-point transfers follow the classic alpha-beta model with one
// extra realism that matters for collective I/O: each node's NIC serializes
// its injections and extractions. An aggregator receiving from many ranks
// therefore drains them one after another, which is exactly why request
// aggregation pays off only while synchronization cost stays small.
//
// The network does not run simulated processes of its own: a transfer is a
// pure reservation on the sender's TX queue and the receiver's RX queue,
// returning the completion time; callers sleep until then.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/machine_model.hpp"

namespace parcoll::net {

class Network {
 public:
  Network(const machine::Topology& topology,
          const machine::NetworkParams& params,
          const machine::MemoryParams& mem);

  /// Reserve the path for a `bytes`-long message from `src_node` to
  /// `dst_node`, earliest start `ready`. Returns the delivery time.
  /// Same-node transfers go through memory at memcpy bandwidth.
  double transfer(double ready, int src_node, int dst_node,
                  std::uint64_t bytes);

  [[nodiscard]] const machine::NetworkParams& params() const { return params_; }

 private:
  machine::NetworkParams params_;
  machine::MemoryParams mem_;
  std::vector<double> tx_busy_until_;
  std::vector<double> rx_busy_until_;
};

}  // namespace parcoll::net
