// Nonblocking independent I/O, atomic mode, and the randomized datatype
// pack/unpack round-trip property.
#include <gtest/gtest.h>

#include "dtype/pack.hpp"
#include "mpi/collectives.hpp"
#include "mpiio/async.hpp"
#include "mpiio/file.hpp"
#include "sim/random.hpp"
#include "workloads/pattern.hpp"

namespace parcoll {
namespace {

using dtype::Datatype;

TEST(AsyncIo, IwriteOverlapsWithComputation) {
  mpi::World world(machine::MachineModel::jaguar(1), /*byte_true=*/false);
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "async1.dat");
    const double t0 = self.now();
    auto request = mpiio::iwrite_at(file, 0, nullptr, 1,
                                    Datatype::bytes(64ull << 20));
    self.busy(mpi::TimeCat::Compute, 1.0);
    mpiio::io_wait(file, request);
    const double overlapped = self.now() - t0;

    // Sequential version for comparison.
    const double t1 = self.now();
    file.write_at(0, nullptr, 1, Datatype::bytes(64ull << 20));
    self.busy(mpi::TimeCat::Compute, 1.0);
    const double sequential = self.now() - t1;
    EXPECT_LT(overlapped, sequential);
    file.close();
  });
}

TEST(AsyncIo, IwriteDeliversCorrectBytes) {
  mpi::World world(machine::MachineModel::jaguar(2));
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "async2.dat");
    const fs::Extent mine{static_cast<std::uint64_t>(self.rank()) * 1024,
                          1024};
    std::vector<std::byte> data(1024);
    workloads::fill_stream(data.data(), std::span(&mine, 1), 51);
    auto request =
        mpiio::iwrite_at(file, mine.offset, data.data(), 1,
                         Datatype::bytes(1024));
    mpiio::io_wait(file, request);
    mpi::barrier(self, self.comm_world());
    auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
    ok = ok && store &&
         workloads::verify_store(*store, file.fs_id(), std::span(&mine, 1),
                                 51);
    file.close();
  });
  EXPECT_TRUE(ok);
}

TEST(AsyncIo, IreadDeliversAfterWait) {
  mpi::World world(machine::MachineModel::jaguar(1));
  bool ok = false;
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "async3.dat");
    const fs::Extent whole{0, 2048};
    std::vector<std::byte> seed(2048);
    workloads::fill_stream(seed.data(), std::span(&whole, 1), 52);
    file.write_at(0, seed.data(), 1, Datatype::bytes(2048));

    std::vector<std::byte> back(2048);
    auto request =
        mpiio::iread_at(file, 0, back.data(), 1, Datatype::bytes(2048));
    self.busy(mpi::TimeCat::Compute, 0.01);
    mpiio::io_wait(file, request);
    ok = workloads::check_stream(back.data(), std::span(&whole, 1), 52);
    file.close();
  });
  EXPECT_TRUE(ok);
}

TEST(AsyncIo, WaitOnInvalidThrows) {
  mpi::World world(machine::MachineModel::jaguar(1));
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "async4.dat");
    mpiio::IoRequest request;
    EXPECT_THROW(mpiio::io_wait(file, request), std::logic_error);
    file.close();
  });
}

TEST(AtomicMode, TogglesAndCostsLockTime) {
  mpi::World world(machine::MachineModel::jaguar(1), /*byte_true=*/false);
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "atomic.dat");
    EXPECT_FALSE(file.atomicity());
    const double t0 = self.now();
    file.write_at(0, nullptr, 1, Datatype::bytes(4096));
    const double plain = self.now() - t0;

    file.set_atomicity(true);
    EXPECT_TRUE(file.atomicity());
    const double t1 = self.now();
    file.write_at(8192, nullptr, 1, Datatype::bytes(4096));
    const double atomic = self.now() - t1;
    EXPECT_GT(atomic, plain);  // lock round trips added
    file.close();
  });
}

TEST(AtomicMode, OverlappingAtomicWritersSerializeConsistently) {
  // Two ranks write the same range atomically: the result must be one
  // writer's bytes entirely (no interleaving), whichever ran last.
  mpi::World world(machine::MachineModel::jaguar(2));
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "atomic2.dat");
    file.set_atomicity(true);
    std::vector<unsigned char> data(4096,
                                    static_cast<unsigned char>(self.rank() + 1));
    file.write_at(0, data.data(), 1, Datatype::bytes(4096));
    mpi::barrier(self, self.comm_world());
    if (self.rank() == 0) {
      auto* store =
          dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
      const auto& bytes = store->contents(file.fs_id());
      const auto first = static_cast<unsigned char>(bytes[0]);
      EXPECT_TRUE(first == 1 || first == 2);
      for (std::size_t i = 0; i < 4096; ++i) {
        ASSERT_EQ(static_cast<unsigned char>(bytes[i]), first);
      }
    }
    file.close();
  });
}

TEST(DatatypeDescribe, SummarizesLayout) {
  const auto type = Datatype::vec(3, 1, 2, Datatype::bytes(4));
  const std::string text = type.describe();
  EXPECT_NE(text.find("size=12"), std::string::npos);
  EXPECT_NE(text.find("segments=3"), std::string::npos);
  EXPECT_NE(text.find("[0+4)"), std::string::npos);
}

/// Random nested datatype built from a seed: a few levels of vec /
/// contiguous / resized over a byte base. Displacements stay non-negative
/// so pack/unpack can run against a flat buffer.
Datatype random_type(std::uint64_t seed, int depth = 2) {
  Datatype type = Datatype::bytes(1 + sim::mix64(seed) % 16);
  for (int level = 0; level < depth; ++level) {
    const std::uint64_t h = sim::mix64(seed ^ (level * 1315423911ull));
    switch (h % 3) {
      case 0:
        type = Datatype::contiguous(1 + h / 7 % 4, type);
        break;
      case 1:
        type = Datatype::vec(1 + h / 11 % 3, 1 + h / 13 % 2,
                             static_cast<std::int64_t>(2 + h / 17 % 3), type);
        break;
      default:
        type = Datatype::resized(type, 0,
                                 static_cast<std::uint64_t>(type.extent()) +
                                     h / 19 % 32);
        break;
    }
  }
  return type;
}

class PackRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PackRoundTrip, PackThenUnpackIsIdentityOnTheTypeMap) {
  const std::uint64_t seed = GetParam();
  const Datatype type = random_type(seed);
  const std::uint64_t count = 1 + sim::mix64(seed ^ 0xC0FFEE) % 3;
  const std::uint64_t footprint =
      static_cast<std::uint64_t>(type.extent()) * count + 64;

  std::vector<unsigned char> original(footprint);
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<unsigned char>(sim::mix64(seed + i));
  }
  std::vector<std::byte> stream(type.size() * count);
  dtype::pack(original.data(), type, count,
              stream.data());

  std::vector<unsigned char> reconstructed(footprint, 0xEE);
  dtype::unpack(stream.data(), type, count, reconstructed.data());

  // Every byte inside the type map must round-trip; bytes outside must be
  // untouched (still 0xEE).
  std::vector<bool> in_map(footprint, false);
  for (std::uint64_t k = 0; k < count; ++k) {
    for (const auto& seg : type.segments()) {
      const auto base = static_cast<std::uint64_t>(
          seg.disp + static_cast<std::int64_t>(k) * type.extent());
      for (std::uint64_t i = 0; i < seg.length; ++i) {
        in_map[base + i] = true;
      }
    }
  }
  for (std::size_t i = 0; i < footprint; ++i) {
    if (in_map[i]) {
      ASSERT_EQ(reconstructed[i], original[i]) << "seed " << seed << " @" << i;
    } else {
      ASSERT_EQ(reconstructed[i], 0xEE) << "seed " << seed << " @" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace parcoll
